package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Verify a built-in protocol and inspect the headline numbers.
func ExampleVerify() {
	p, err := repro.ProtocolByName("illinois")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := repro.Verify(p, repro.VerifyOptions{BuildGraph: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("permissible:", rep.OK())
	fmt.Println("essential states:", len(rep.Symbolic.Essential))
	fmt.Println("state visits:", rep.Symbolic.Visits)
	fmt.Println("global edges:", len(rep.Graph.Edges))
	// Output:
	// permissible: true
	// essential states: 5
	// state visits: 23
	// global edges: 23
}

// Define a protocol in the specification language and verify it.
func ExampleParseSpec() {
	const spec = `
protocol Tiny-WT
characteristic null

states {
  Invalid initial
  Valid   valid readable clean
}

rule read-hit   { from Valid on R
                  next Valid
                  data keep }
rule read-miss  { from Invalid on R
                  next Valid
                  data memory }
rule write-hit  { from Valid on W
                  next Valid
                  observe Valid -> Invalid
                  data keep store write-through }
rule write-miss { from Invalid on W
                  next Valid
                  observe Valid -> Invalid
                  data memory store write-through }
rule replace    { from Valid on Z
                  next Invalid
                  data keep drop }
`
	p, err := repro.ParseSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := repro.Verify(p, repro.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Name, "permissible:", rep.OK())
	// Output:
	// Tiny-WT permissible: true
}

// Inject a design fault and watch the verifier refute it.
func ExampleMutants() {
	p, err := repro.ProtocolByName("msi")
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range repro.Mutants(p) {
		if m.Kind != "drop-invalidation" {
			continue
		}
		rep, err := repro.Verify(m.Protocol, repro.VerifyOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("fault:", m.Detail)
		fmt.Println("refuted:", !rep.Symbolic.OK())
	}
	// Output:
	// fault: write no longer invalidates remote copies
	// refuted: true
}
