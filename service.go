package repro

import (
	"repro/internal/cluster"
	"repro/internal/serve"
)

// Service is the embeddable verification service behind the ccserved
// daemon: a content-addressed result cache (Theorem 1 makes verdicts
// deterministic, hence perfectly cacheable), request coalescing, and a
// bounded worker pool with admission control. Create with NewService,
// start the pool with Start, mount Handler on any HTTP server, and stop
// with Drain. See docs/service.md for the HTTP and schema contracts.
type Service = serve.Server

// ServiceConfig tunes a Service; the zero value is fully usable.
type ServiceConfig = serve.Config

// ServiceStats is the /statsz document of a Service.
type ServiceStats = serve.Stats

// ServiceJobOptions are the engine-facing options of one service request;
// they participate in the result's content address.
type ServiceJobOptions = serve.JobOptions

// NewService builds a verification service (workers not yet started).
func NewService(cfg ServiceConfig) (*Service, error) { return serve.New(cfg) }

// ServiceBatchRequest is the body of POST /v1/verify/batch: an explicit
// job list and/or a server-side protocol×mutation sweep, streamed back as
// NDJSON verdict lines plus a summary.
type ServiceBatchRequest = serve.BatchRequest

// ServiceSweepSpec is the server-side batch expansion: library protocols
// (all when unset) × optional mutation catalog, under one set of engine
// options.
type ServiceSweepSpec = serve.SweepSpec

// ServiceBatchLine is one streamed batch verdict line; its Disposition
// records how the verdict was obtained (cached, computed, forwarded,
// retried, failed).
type ServiceBatchLine = serve.BatchLine

// ServiceBatchSummary is the final line of a batch stream.
type ServiceBatchSummary = serve.BatchSummary

// CanonicalServiceTenant maps a raw X-CC-Tenant header value to the
// tenant identity used for rate limits, queue shares and metric names.
func CanonicalServiceTenant(raw string) string { return serve.CanonicalTenant(raw) }

// ClusterConfig tunes a peer cache-fill client: the static peer list,
// hedging deadline, retry shape, failure-detection thresholds and circuit
// breaker. The zero value plus Peers is fully usable; every knob has a
// production-shaped default.
type ClusterConfig = cluster.Config

// ClusterClient fetches cached verification results from the peers of a
// ccserved cluster, with rendezvous-hashed owner selection, hedged
// lookups, per-peer health tracking and circuit breaking. Every failure
// mode degrades to a cache miss — never a wrong answer — so the embedding
// node falls back to local compute. Attach one to a Service with
// SetCluster (sharing the service's Metrics registry surfaces the peer
// counters in GET /v1/metrics), and Close it on shutdown.
type ClusterClient = cluster.Client

// ClusterStats is a ClusterClient's snapshot: per-peer health and breaker
// states plus the fill/hedge/corruption counters.
type ClusterStats = cluster.Stats

// NewClusterClient builds a peer cache-fill client; call Start to launch
// the background health prober.
func NewClusterClient(cfg ClusterConfig) (*ClusterClient, error) { return cluster.New(cfg) }

// RankClusterOwners orders a cluster's node addresses by rendezvous-hash
// preference for one cache key — the agreement function every node
// evaluates independently, with no coordination, to decide which peers to
// ask first. Exposed for operators placing or debugging key ownership.
func RankClusterOwners(nodes []string, key string) []string { return cluster.Rank(nodes, key) }
