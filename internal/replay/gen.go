package replay

import (
	"compress/gzip"
	"fmt"
	"io"
	"strings"

	"repro/internal/protocols"
	"repro/internal/trace"
)

// Workload kinds understood by NewWorkload and Materialize. They map 1:1
// onto the internal/trace generators.
const (
	KindUniform          = "uniform"
	KindHotBlock         = "hot-block"
	KindMigratory        = "migratory"
	KindProducerConsumer = "producer-consumer"
	KindFalseSharing     = "false-sharing"
	KindLock             = "lock"
)

// Kinds lists the workload kinds in canonical order.
func Kinds() []string {
	return []string{KindUniform, KindHotBlock, KindMigratory, KindProducerConsumer, KindFalseSharing, KindLock}
}

// WorkloadSpec is a fully deterministic description of a synthetic
// workload: kind, seed, shape and per-kind tuning parameters. Its
// Canonical rendering is stable, so a spec can serve as a content address
// (the service digests it in place of trace bytes) and as trace-file
// provenance.
type WorkloadSpec struct {
	// Kind selects the generator (see Kinds).
	Kind string `json:"kind"`
	// Seed seeds the generator's RNG; equal specs produce byte-identical
	// traces.
	Seed int64 `json:"seed"`
	// Caches and Blocks shape the machine the workload targets.
	Caches int `json:"caches"`
	Blocks int `json:"blocks"`
	// Ops is how many references to materialize or replay.
	Ops int `json:"ops"`

	// PWrite is the write probability (uniform, hot-block, false-sharing;
	// 0 defaults to 0.3).
	PWrite float64 `json:"p_write,omitempty"`
	// HotFrac is the fraction of references hitting the hot block
	// (hot-block; 0 defaults to 0.5).
	HotFrac float64 `json:"hot_frac,omitempty"`
	// Burst is the read-modify-write pairs per ownership period
	// (migratory; 0 defaults to 4).
	Burst int `json:"burst,omitempty"`
	// ReadsPerWrite is the consumer reads per producer write
	// (producer-consumer; 0 defaults to 4).
	ReadsPerWrite int `json:"reads_per_write,omitempty"`
	// WorkLen is the references per critical section (lock; 0 defaults
	// to 4).
	WorkLen int `json:"work_len,omitempty"`
}

// Normalize fills defaults and validates the spec in place, so equal
// effective workloads share one canonical rendering.
func (s *WorkloadSpec) Normalize() error {
	switch s.Kind {
	case KindUniform, KindHotBlock, KindMigratory, KindProducerConsumer, KindFalseSharing, KindLock:
	case "":
		return fmt.Errorf("replay: workload spec needs a kind (have %s)", strings.Join(Kinds(), ", "))
	default:
		return fmt.Errorf("replay: unknown workload kind %q (have %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	if s.Caches < 1 || s.Blocks < 1 {
		return fmt.Errorf("replay: workload needs at least one cache and one block")
	}
	if s.Ops < 1 {
		return fmt.Errorf("replay: workload needs ops >= 1")
	}
	if s.PWrite < 0 || s.PWrite > 1 {
		return fmt.Errorf("replay: invalid p_write %v", s.PWrite)
	}
	if s.PWrite == 0 {
		s.PWrite = 0.3
	}
	if s.HotFrac < 0 || s.HotFrac > 1 {
		return fmt.Errorf("replay: invalid hot_frac %v", s.HotFrac)
	}
	if s.HotFrac == 0 {
		s.HotFrac = 0.5
	}
	if s.Burst == 0 {
		s.Burst = 4
	}
	if s.ReadsPerWrite == 0 {
		s.ReadsPerWrite = 4
	}
	if s.WorkLen == 0 {
		s.WorkLen = 4
	}
	if s.Burst < 1 || s.ReadsPerWrite < 1 || s.WorkLen < 1 {
		return fmt.Errorf("replay: burst, reads_per_write and work_len must be >= 1")
	}
	// Zero the parameters the kind does not read, so requests differing
	// only in an irrelevant knob share a canonical rendering.
	if s.Kind != KindUniform && s.Kind != KindHotBlock && s.Kind != KindFalseSharing {
		s.PWrite = 0
	}
	if s.Kind != KindHotBlock {
		s.HotFrac = 0
	}
	if s.Kind != KindMigratory {
		s.Burst = 0
	}
	if s.Kind != KindProducerConsumer {
		s.ReadsPerWrite = 0
	}
	if s.Kind != KindLock {
		s.WorkLen = 0
	}
	return nil
}

// Canonical renders the normalized spec deterministically; it is the
// digestable identity of the workload.
func (s WorkloadSpec) Canonical() string {
	return fmt.Sprintf("cctrace-workload-v1 kind=%s seed=%d caches=%d blocks=%d ops=%d pwrite=%g hotfrac=%g burst=%d rpw=%d worklen=%d",
		s.Kind, s.Seed, s.Caches, s.Blocks, s.Ops, s.PWrite, s.HotFrac, s.Burst, s.ReadsPerWrite, s.WorkLen)
}

// openLoopLock adapts the closed-loop CriticalSection generator to an
// open-loop stream for materialization: every emitted acquire is assumed
// to succeed. Replaying such a trace against a lock protocol may spin on
// contended acquires — the protocol reports those steps as incomplete —
// which is exactly the contention the statistics should expose.
type openLoopLock struct{ cs *trace.CriticalSection }

func (o openLoopLock) Name() string { return o.cs.Name() }

func (o openLoopLock) Next() trace.Ref {
	r := o.cs.Next()
	if r.Op == protocols.OpAcquire {
		o.cs.Acquired()
	}
	return r
}

// NewWorkload instantiates the generator a normalized spec describes.
func NewWorkload(s WorkloadSpec) (trace.Workload, error) {
	switch s.Kind {
	case KindUniform:
		return trace.NewUniform(s.Seed, s.Caches, s.Blocks, s.PWrite, 0.02)
	case KindHotBlock:
		return trace.NewHotBlock(s.Seed, s.Caches, s.Blocks, s.PWrite, s.HotFrac)
	case KindMigratory:
		return trace.NewMigratory(s.Seed, s.Caches, s.Blocks, s.Burst)
	case KindProducerConsumer:
		return trace.NewProducerConsumer(s.Seed, s.Caches, s.Blocks, s.ReadsPerWrite)
	case KindFalseSharing:
		// Blocks here is the group count; the generator emits word indexes.
		fs, err := trace.NewFalseSharing(s.Seed, s.Caches, s.Blocks, s.PWrite)
		if err != nil {
			return nil, err
		}
		return fs, nil
	case KindLock:
		cs, err := trace.NewCriticalSection(s.Seed, s.Caches, s.Blocks, s.WorkLen, protocols.OpAcquire, protocols.OpRelease)
		if err != nil {
			return nil, err
		}
		return openLoopLock{cs}, nil
	default:
		return nil, fmt.Errorf("replay: unknown workload kind %q", s.Kind)
	}
}

// wordStride is the address stride for word-granularity generators: 8-byte
// words, so a 64-byte replay block folds 8 words — false sharing emerges
// from the address mapping exactly as it does in hardware.
const wordStride = 8

// Materialize writes the spec's trace to w in cctrace v1 format. The
// output is deterministic: equal specs produce byte-identical files.
// Compression is the caller's concern (wrap w in gzip.Writer or use
// MaterializeFile).
func Materialize(w io.Writer, spec WorkloadSpec) (int64, error) {
	if err := spec.Normalize(); err != nil {
		return 0, err
	}
	gen, err := NewWorkload(spec)
	if err != nil {
		return 0, err
	}
	stride := 0 // block-aligned
	if spec.Kind == KindFalseSharing {
		stride = wordStride
	}
	tw, err := NewWriter(w, Meta{
		Caches:    spec.Caches,
		BlockSize: DefaultBlockSize,
		Workload:  spec.Canonical(),
	}, stride)
	if err != nil {
		return 0, err
	}
	for i := 0; i < spec.Ops; i++ {
		if err := tw.WriteRef(gen.Next()); err != nil {
			return tw.Refs(), err
		}
	}
	return tw.Refs(), tw.Flush()
}

// MaterializeTo writes the spec's trace through w, gzip-compressing when
// gz is set.
func MaterializeTo(w io.Writer, spec WorkloadSpec, gz bool) (int64, error) {
	if !gz {
		return Materialize(w, spec)
	}
	zw := gzip.NewWriter(w)
	n, err := Materialize(zw, spec)
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	return n, err
}
