// Package replay is the trace-driven workload engine: it materializes the
// synthetic generators of internal/trace into a versioned on-disk trace
// format, streams trace files back through the concrete multiprocessor
// simulator (internal/sim) at millions of operations per second, and
// renders deterministic per-protocol comparison reports on the classic
// Archibald & Baer axes (miss ratio, bus transactions per operation,
// invalidations versus broadcast updates).
//
// The paper's evaluation is analytic, but its protocol suite descends from
// the trace-driven simulation tradition: "processor op address" lines
// replayed through a set of private caches with hit/miss/invalidation
// statistics, compared protocol against protocol on one identical
// reference stream. This package is that methodology as a subsystem:
//
//   - format.go: the cctrace v1 text format (a "#"-comment header carrying
//     schema and cache-count metadata, then one "<cache> <op> <hex-addr>"
//     line per reference) plus a Writer that materializes any
//     trace.Workload deterministically.
//   - scanner.go: a streaming parser with line-numbered typed errors,
//     transparent gzip decompression, and address→block mapping with a
//     configurable block size.
//   - gen.go: a registry of the synthetic generators (uniform, hot-block,
//     migratory, producer-consumer, false-sharing, lock) behind a
//     canonical, digestable WorkloadSpec.
//   - replay.go: the replay engine — batched decoding into pooled slices
//     feeding sim.Machine.RunRefs, runctl budgets and cancellation at
//     operation boundaries, periodic obs progress events, and a fan-out
//     mode replaying one decoded stream through N protocols concurrently.
//   - report.go: the deterministic JSON + table comparison report.
//
// The same engine backs the cctrace CLI (gen/replay/compare), ccsim
// -trace, and the verification service's POST /v1/simulate job type.
package replay
