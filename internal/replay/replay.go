package replay

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compile"
	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options tune a replay run. The zero value replays the whole trace with
// the header's geometry, unbounded and unobserved.
type Options struct {
	// RunConfig carries the run-control and observability knobs shared
	// with every other engine: Budget.Deadline and Budget.MaxStates (read
	// as a maximum operation count here) stop the run at an operation
	// boundary with partial statistics; Observer and Metrics receive the
	// progress events.
	runctl.RunConfig

	// BlockSize overrides the address→block mapping granularity (0: the
	// trace header's blocksize, or DefaultBlockSize).
	BlockSize int
	// MaxBlocks caps the dense block table (0: DefaultMaxBlocks); it is
	// also the simulated machine's block count.
	MaxBlocks int
	// Capacity bounds blocks resident per cache, LRU-replaced (0:
	// unbounded).
	Capacity int
	// MaxOps replays at most this many references (0: the whole trace).
	MaxOps int64
	// SkipOps discards this many leading references before replaying —
	// the resume knob: a run stopped at operation k continues with
	// SkipOps=k on the same trace.
	SkipOps int64
	// Strict enables the CleanShared extension in the final invariant
	// check.
	Strict bool
	// ProgressEvery is the operations between progress callbacks and
	// metric flushes (0: 1<<20).
	ProgressEvery int64
}

// withDefaults resolves the zero values.
func (o Options) withDefaults() Options {
	if o.MaxBlocks <= 0 {
		o.MaxBlocks = DefaultMaxBlocks
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 1 << 20
	}
	return o
}

// Result is one protocol's replay outcome.
type Result struct {
	// Protocol names the protocol replayed.
	Protocol string
	// Ops is the number of references applied.
	Ops int64
	// Stats are the machine's cumulative coherence-traffic counters.
	Stats sim.Stats
	// Caches and Blocks are the replayed machine's geometry (distinct
	// blocks actually touched, not the table cap).
	Caches int
	Blocks int
	// BlockSize is the address→block granularity the run mapped with.
	BlockSize int
	// TraceDigest is the SHA-256 of the raw trace bytes, available once
	// the trace has been fully consumed ("" on truncated runs).
	TraceDigest string
	// Truncated reports an early stop; StopReason is the runctl sentinel.
	Truncated  bool
	StopReason error
	// Violations are final-state invariant violations (a coherent
	// protocol leaves none).
	Violations []fsm.Violation
}

// batchSize is the decode batch: large enough to amortize channel and
// call overhead in fan-out mode, small enough to keep cancellation
// latency and pooled memory modest.
const batchSize = 4096

// refPool recycles decode batches across runs and protocols.
var refPool = sync.Pool{
	New: func() any { return make([]trace.Ref, batchSize) },
}

// Replay streams one trace through one protocol. The reader may be plain
// or gzipped cctrace text; geometry comes from the trace header unless
// overridden in opts.
func Replay(ctx context.Context, r io.Reader, p *fsm.Protocol, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	sc, err := NewScanner(r, ScanOptions{BlockSize: opts.BlockSize, MaxBlocks: opts.MaxBlocks})
	if err != nil {
		return nil, err
	}
	rep := newReplayer(p, sc.Meta(), opts)
	m, err := rep.machine()
	if err != nil {
		return nil, err
	}
	buf := refPool.Get().([]trace.Ref)
	defer refPool.Put(buf)
	for {
		n, serr := sc.NextBatch(buf)
		if n > 0 {
			stop, aerr := rep.apply(ctx, m, buf[:n])
			if aerr != nil {
				return nil, aerr
			}
			if stop {
				return rep.finish(m, sc, true), nil
			}
		}
		if serr == io.EOF {
			break
		}
		if serr != nil {
			return nil, serr
		}
	}
	return rep.finish(m, sc, false), nil
}

// replayer is the per-protocol replay state shared by the single and
// fan-out paths: skip/limit bookkeeping, budget checks at operation
// boundaries, and progress emission.
type replayer struct {
	p *fsm.Protocol
	// compiled is this lane's one lowering of p (internal/compile), built
	// lazily by machine() and handed to every machine the lane creates.
	compiled *compile.Protocol
	meta     Meta
	opts     Options

	ops        int64 // applied
	seen       int64 // decoded (includes skipped)
	stopReason error

	observed  bool // opts has an Observer or Metrics
	ticks     int  // progress callbacks emitted
	lastOps   int64
	lastMiss  int64
	nextFlush int64
}

// newReplayer builds the per-protocol state.
func newReplayer(p *fsm.Protocol, meta Meta, opts Options) *replayer {
	return &replayer{
		p: p, meta: meta, opts: opts,
		observed:  opts.Observer != nil || opts.Metrics != nil,
		nextFlush: opts.ProgressEvery,
	}
}

// machine builds the simulated multiprocessor for this trace, compiling the
// protocol on first use so every machine of the lane shares one lowering.
func (r *replayer) machine() (*sim.Machine, error) {
	if r.compiled == nil {
		cp, err := compile.Compile(r.p)
		if err != nil {
			return nil, err
		}
		r.compiled = cp
	}
	caches := r.meta.Caches
	return sim.New(sim.Config{
		Protocol: r.p,
		Compiled: r.compiled,
		Caches:   caches,
		Blocks:   r.opts.MaxBlocks,
		Capacity: r.opts.Capacity,
		Strict:   r.opts.Strict,
	})
}

// apply replays one decoded batch, honoring skip, limits and budgets.
// stop=true means the run should end now (budget/limit/cancel), with the
// reason recorded; the caller still gets partial statistics.
func (r *replayer) apply(ctx context.Context, m *sim.Machine, refs []trace.Ref) (stop bool, err error) {
	// Resume skip: discard leading refs without applying them.
	if skip := r.opts.SkipOps - r.seen; skip > 0 {
		if skip >= int64(len(refs)) {
			r.seen += int64(len(refs))
			return false, nil
		}
		refs = refs[skip:]
		r.seen += skip
	}
	// Operation budget: MaxOps and Budget.MaxStates both bound applied ops.
	limit := int64(len(refs))
	if r.opts.MaxOps > 0 && r.ops+limit > r.opts.MaxOps {
		limit = r.opts.MaxOps - r.ops
	}
	if mx := int64(r.opts.Budget.MaxStates); mx > 0 && r.ops+limit > mx {
		limit = mx - r.ops
	}
	if limit < 0 {
		limit = 0
	}
	// Apply in chunks bounded by the next progress boundary, so observed
	// runs tick at exactly ProgressEvery ops regardless of batch size.
	for applied := int64(0); applied < limit; {
		chunk := limit - applied
		if r.observed {
			if boundary := r.nextFlush - r.ops; boundary < chunk {
				chunk = boundary
			}
		}
		if _, err := m.RunRefs(ctx, refs[applied:applied+chunk]); err != nil {
			if runctl.IsStop(err) {
				r.stopReason = err
				return true, nil
			}
			return false, err
		}
		applied += chunk
		r.ops += chunk
		r.seen += chunk
		if r.observed && r.ops >= r.nextFlush {
			r.nextFlush += r.opts.ProgressEvery
			r.progress(m, 0)
		}
	}
	if int64(len(refs)) > limit {
		// The limit fired mid-batch: the run is complete-by-budget.
		if r.opts.MaxOps > 0 && r.ops >= r.opts.MaxOps {
			return true, nil // MaxOps is a request, not an exhaustion
		}
		r.stopReason = runctl.ErrStateBudget
		return true, nil
	}
	if err := r.opts.Budget.CheckDeadline(time.Now()); err != nil {
		r.stopReason = err
		return true, nil
	}
	return false, nil
}

// progress emits one periodic observability tick: an OnLevel callback in
// the shared LevelStats vocabulary (Visits = applied operations, Pruned =
// misses, Essential = bus transactions) plus the replay_* counters.
func (r *replayer) progress(m *sim.Machine, blocks int) {
	if !r.observed {
		return
	}
	st := m.Stats()
	misses := st.ReadMisses + st.WriteMisses
	deltaOps, deltaMiss := r.ops-r.lastOps, misses-r.lastMiss
	if deltaOps <= 0 {
		return
	}
	r.lastOps, r.lastMiss = r.ops, misses
	r.ticks++
	if o := r.opts.Observer; o != nil {
		o.OnLevel(obs.LevelStats{
			Engine:    "replay",
			Protocol:  r.p.Name,
			Level:     r.ticks,
			Visits:    int(r.ops),
			Pruned:    int(misses),
			Essential: int(st.BusTransactions),
			Frontier:  blocks,
		})
	}
	if reg := r.opts.Metrics; reg != nil {
		reg.Counter("replay_ops_total").Add(deltaOps)
		reg.Counter("replay_misses_total").Add(deltaMiss)
		reg.Gauge("replay_blocks").Set(int64(blocks))
	}
}

// finish assembles the Result.
func (r *replayer) finish(m *sim.Machine, sc *Scanner, truncated bool) *Result {
	res := &Result{
		Protocol:   r.p.Name,
		Ops:        r.ops,
		Stats:      m.Stats(),
		Caches:     r.meta.Caches,
		Blocks:     sc.Blocks(),
		BlockSize:  sc.Meta().BlockSize,
		Truncated:  truncated,
		StopReason: r.stopReason,
		Violations: m.CheckInvariants(),
	}
	if !truncated {
		res.TraceDigest = sc.Digest()
	}
	r.progress(m, res.Blocks) // final flush of whatever accrued since the last tick
	return res
}

// Fan-out mode: one decoded stream, N protocols.

// sharedBatch is one decoded batch broadcast to every protocol goroutine;
// the last consumer returns the buffer to the pool.
type sharedBatch struct {
	refs []trace.Ref
	left atomic.Int32
}

// release returns the batch to the pool once every consumer is done.
func (b *sharedBatch) release() {
	if b.left.Add(-1) == 0 {
		refPool.Put(b.refs[:cap(b.refs)])
	}
}

// CompareResult is the outcome of a fan-out replay.
type CompareResult struct {
	// Results are per-protocol outcomes in the caller's protocol order.
	Results []*Result
	// TraceDigest is the SHA-256 of the raw trace bytes.
	TraceDigest string
	// Meta is the trace header (BlockSize resolved).
	Meta Meta
}

// Compare replays one trace through every protocol concurrently — one
// goroutine per protocol consuming the same decoded reference stream, so
// the comparison is apples-to-apples by construction: every machine sees
// the identical reference sequence. The first error (parse failure,
// ill-formed protocol) fails the whole comparison; runs stopped by budget
// or cancellation return partial results flagged Truncated.
func Compare(ctx context.Context, r io.Reader, protos []*fsm.Protocol, opts Options) (*CompareResult, error) {
	opts = opts.withDefaults()
	if len(protos) == 0 {
		return nil, fmt.Errorf("replay: compare needs at least one protocol")
	}
	sc, err := NewScanner(r, ScanOptions{BlockSize: opts.BlockSize, MaxBlocks: opts.MaxBlocks})
	if err != nil {
		return nil, err
	}
	meta := sc.Meta()

	type lane struct {
		ch  chan *sharedBatch
		rep *replayer
		m   *sim.Machine
		res *Result
		err error
		// stopped: this lane hit its budget; it keeps draining (and
		// releasing) batches without applying them.
		stopped bool
	}
	lanes := make([]*lane, len(protos))
	for i, p := range protos {
		rep := newReplayer(p, meta, opts)
		m, err := rep.machine()
		if err != nil {
			return nil, err
		}
		lanes[i] = &lane{ch: make(chan *sharedBatch, 4), rep: rep, m: m}
	}

	var wg sync.WaitGroup
	for _, ln := range lanes {
		wg.Add(1)
		go func(ln *lane) {
			defer wg.Done()
			for b := range ln.ch {
				if !ln.stopped && ln.err == nil {
					stop, aerr := ln.rep.apply(ctx, ln.m, b.refs)
					if aerr != nil {
						ln.err = aerr
					} else if stop {
						ln.stopped = true
					}
				}
				b.release()
			}
		}(ln)
	}

	var scanErr error
	for {
		buf := refPool.Get().([]trace.Ref)
		n, serr := sc.NextBatch(buf)
		if n > 0 {
			b := &sharedBatch{refs: buf[:n]}
			b.left.Store(int32(len(lanes)))
			for _, ln := range lanes {
				ln.ch <- b
			}
		} else {
			refPool.Put(buf)
		}
		if serr != nil {
			if serr != io.EOF {
				scanErr = serr
			}
			break
		}
	}
	for _, ln := range lanes {
		close(ln.ch)
	}
	wg.Wait()
	if scanErr != nil {
		return nil, scanErr
	}
	for _, ln := range lanes {
		if ln.err != nil {
			return nil, fmt.Errorf("replay: %s: %w", ln.rep.p.Name, ln.err)
		}
	}
	out := &CompareResult{TraceDigest: sc.Digest(), Meta: meta}
	for _, ln := range lanes {
		res := ln.rep.finish(ln.m, sc, ln.stopped)
		res.TraceDigest = out.TraceDigest
		out.Results = append(out.Results, res)
	}
	return out, nil
}
