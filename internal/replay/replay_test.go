package replay

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/runctl"
	"repro/internal/sim"
)

// materialized builds an in-memory trace for spec.
func materialized(t testing.TB, spec WorkloadSpec, gz bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := MaterializeTo(&buf, spec, gz); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplayMatchesDirectSimulation(t *testing.T) {
	// Replaying a materialized trace must reproduce the statistics of
	// running the generator directly against the machine: materialization
	// is lossless for block-granularity workloads.
	spec := WorkloadSpec{Kind: KindMigratory, Seed: 11, Caches: 4, Blocks: 8, Ops: 20000}
	data := materialized(t, spec, false)

	res, err := Replay(context.Background(), bytes.NewReader(data), protocols.MESI(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	norm := spec
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	gen, err := NewWorkload(norm)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(sim.Config{Protocol: protocols.MESI(), Caches: spec.Caches, Blocks: DefaultMaxBlocks})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.Run(gen, spec.Ops)
	if err != nil {
		t.Fatal(err)
	}

	if res.Stats != direct {
		t.Fatalf("replay stats diverge from direct simulation:\nreplay: %+v\ndirect: %+v", res.Stats, direct)
	}
	if res.Ops != int64(spec.Ops) {
		t.Fatalf("replayed %d ops, want %d", res.Ops, spec.Ops)
	}
	if res.Blocks != spec.Blocks {
		t.Fatalf("touched %d blocks, want %d", res.Blocks, spec.Blocks)
	}
	if res.TraceDigest == "" {
		t.Fatal("complete replay has no trace digest")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestReplayGzipSameStats(t *testing.T) {
	spec := WorkloadSpec{Kind: KindProducerConsumer, Seed: 5, Caches: 4, Blocks: 8, Ops: 5000}
	plain := materialized(t, spec, false)
	zipped := materialized(t, spec, true)
	a, err := Replay(context.Background(), bytes.NewReader(plain), protocols.Dragon(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(context.Background(), bytes.NewReader(zipped), protocols.Dragon(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("gzip replay diverges:\nplain: %+v\ngzip:  %+v", a.Stats, b.Stats)
	}
}

func TestReplayMaxOpsAndSkip(t *testing.T) {
	spec := WorkloadSpec{Kind: KindUniform, Seed: 9, Caches: 2, Blocks: 8, Ops: 10000}
	data := materialized(t, spec, false)

	head, err := Replay(context.Background(), bytes.NewReader(data), protocols.MSI(), Options{MaxOps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if head.Ops != 1000 {
		t.Fatalf("MaxOps run applied %d ops, want 1000", head.Ops)
	}
	if !head.Truncated {
		t.Fatal("MaxOps run not flagged truncated")
	}
	if head.StopReason != nil {
		t.Fatalf("MaxOps is a request, not a budget violation; got stop reason %v", head.StopReason)
	}

	tail, err := Replay(context.Background(), bytes.NewReader(data), protocols.MSI(), Options{SkipOps: 9000})
	if err != nil {
		t.Fatal(err)
	}
	if tail.Ops != 1000 {
		t.Fatalf("SkipOps run applied %d ops, want 1000", tail.Ops)
	}
	if tail.Truncated {
		t.Fatal("SkipOps run reached EOF but is flagged truncated")
	}
}

func TestReplayStateBudget(t *testing.T) {
	spec := WorkloadSpec{Kind: KindUniform, Seed: 9, Caches: 2, Blocks: 8, Ops: 10000}
	data := materialized(t, spec, false)
	res, err := Replay(context.Background(), bytes.NewReader(data), protocols.MSI(), Options{
		RunConfig: runctl.RunConfig{Budget: runctl.Budget{MaxStates: 2500}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2500 {
		t.Fatalf("budgeted run applied %d ops, want 2500", res.Ops)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrStateBudget) {
		t.Fatalf("truncated=%v stop=%v, want state-budget stop", res.Truncated, res.StopReason)
	}
}

func TestReplayCancellation(t *testing.T) {
	spec := WorkloadSpec{Kind: KindUniform, Seed: 9, Caches: 2, Blocks: 8, Ops: 50000}
	data := materialized(t, spec, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Replay(ctx, bytes.NewReader(data), protocols.MSI(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrCanceled) {
		t.Fatalf("truncated=%v stop=%v, want canceled stop", res.Truncated, res.StopReason)
	}
	if res.Ops >= int64(spec.Ops) {
		t.Fatalf("canceled run applied all %d ops", res.Ops)
	}
}

func TestReplayEmitsProgress(t *testing.T) {
	spec := WorkloadSpec{Kind: KindHotBlock, Seed: 2, Caches: 2, Blocks: 8, Ops: 5000}
	data := materialized(t, spec, false)
	var levels []obs.LevelStats
	reg := obs.NewRegistry()
	_, err := Replay(context.Background(), bytes.NewReader(data), protocols.MSI(), Options{
		RunConfig: runctl.RunConfig{
			Observer: obs.Funcs{Level: func(ls obs.LevelStats) { levels = append(levels, ls) }},
			Metrics:  reg,
		},
		ProgressEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) < 5 {
		t.Fatalf("got %d progress callbacks, want >= 5", len(levels))
	}
	last := levels[len(levels)-1]
	if last.Engine != "replay" || last.Protocol != "MSI" || last.Visits != spec.Ops {
		t.Fatalf("final level %+v", last)
	}
	if got := reg.Counter("replay_ops_total").Value(); got != int64(spec.Ops) {
		t.Fatalf("replay_ops_total = %d, want %d", got, spec.Ops)
	}
}

func TestCompareIdenticalStreams(t *testing.T) {
	// Fan-out compare must give each protocol exactly the stats a solo
	// replay of the same trace gives it.
	spec := WorkloadSpec{Kind: KindMigratory, Seed: 1993, Caches: 4, Blocks: 64, Ops: 30000}
	data := materialized(t, spec, false)
	protos := []*fsm.Protocol{protocols.MSI(), protocols.MESI(), protocols.MOESI(), protocols.Dragon()}

	cr, err := Compare(context.Background(), bytes.NewReader(data), protos, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Results) != len(protos) {
		t.Fatalf("%d results, want %d", len(cr.Results), len(protos))
	}
	for i, p := range protos {
		if cr.Results[i].Protocol != p.Name {
			t.Fatalf("result %d is %s, want caller order %s", i, cr.Results[i].Protocol, p.Name)
		}
		solo, err := Replay(context.Background(), bytes.NewReader(data), p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if cr.Results[i].Stats != solo.Stats {
			t.Fatalf("%s: fan-out stats diverge from solo replay:\nfan-out: %+v\nsolo:    %+v",
				p.Name, cr.Results[i].Stats, solo.Stats)
		}
	}
}

func TestCompareMESIBeatsMSIOnMigratory(t *testing.T) {
	// The classic result the CI smoke job asserts: on a migratory workload
	// with enough blocks that ownership periods start unshared, MESI's
	// silent E→M upgrade saves the broadcast MSI pays on every first write.
	spec := WorkloadSpec{Kind: KindMigratory, Seed: 1993, Caches: 4, Blocks: 64, Ops: 100000}
	data := materialized(t, spec, false)
	cr, err := Compare(context.Background(), bytes.NewReader(data),
		[]*fsm.Protocol{protocols.MSI(), protocols.MESI()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	msi, mesi := cr.Results[0].Stats, cr.Results[1].Stats
	if mesi.BusTransactions >= msi.BusTransactions {
		t.Fatalf("MESI bus %d >= MSI bus %d on migratory workload", mesi.BusTransactions, msi.BusTransactions)
	}
}

func TestReportDeterministicEncoding(t *testing.T) {
	spec := WorkloadSpec{Kind: KindProducerConsumer, Seed: 6, Caches: 4, Blocks: 16, Ops: 10000}
	data := materialized(t, spec, false)
	protos := func() []*fsm.Protocol {
		return []*fsm.Protocol{protocols.MSI(), protocols.MESI(), protocols.Dragon()}
	}
	encode := func() []byte {
		cr, err := Compare(context.Background(), bytes.NewReader(data), protos(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewReport(cr).Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("report encoding not byte-identical:\n%s\n---\n%s", a, b)
	}
	rep, err := DecodeReport(a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || len(rep.Results) != 3 || rep.Ops != int64(spec.Ops) {
		t.Fatalf("decoded report %+v", rep)
	}
	if rep.Table() == "" {
		t.Fatal("empty table rendering")
	}
}

func TestLockTraceReplaysThroughLockMSI(t *testing.T) {
	spec := WorkloadSpec{Kind: KindLock, Seed: 4, Caches: 4, Blocks: 2, Ops: 8000}
	data := materialized(t, spec, false)
	res, err := Replay(context.Background(), bytes.NewReader(data), protocols.LockMSI(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != int64(spec.Ops) {
		t.Fatalf("replayed %d ops, want %d", res.Ops, spec.Ops)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestFalseSharingFoldsWordsIntoBlocks(t *testing.T) {
	// 4 groups × 4 caches of 8-byte words at blocksize 64 fold into
	// ceil(16 words / 8 per block) = 2 blocks... but grouped per cache:
	// what matters is blocks < distinct words, proving the fold happens.
	spec := WorkloadSpec{Kind: KindFalseSharing, Seed: 8, Caches: 4, Blocks: 4, Ops: 10000}
	data := materialized(t, spec, false)
	res, err := Replay(context.Background(), bytes.NewReader(data), protocols.MESI(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	words := spec.Blocks * spec.Caches
	if res.Blocks >= words {
		t.Fatalf("replay saw %d blocks for %d words: no false-sharing fold", res.Blocks, words)
	}
}

// BenchmarkReplayThroughput is the PR's throughput gate: the streaming
// parser plus RunRefs must replay well above a million operations per
// second. CI publishes it as BENCH_PR9.json.
func BenchmarkReplayThroughput(b *testing.B) {
	spec := WorkloadSpec{Kind: KindMigratory, Seed: 1, Caches: 4, Blocks: 64, Ops: 200000}
	data := materialized(b, spec, false)
	p := protocols.MESI()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res, err := Replay(context.Background(), bytes.NewReader(data), p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		total += int(res.Ops)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "ops/s")
}
