package replay

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/trace"
)

// The cctrace v1 text format.
//
//	# cctrace v1
//	# caches: 8
//	# blocksize: 64
//	# workload: migratory seed=1993 ops=100000   (optional, free text)
//	0 r 1a40
//	3 w 1a40
//	1 z 80
//
// The first line must be the magic "# cctrace v1". Header lines are "#"
// comments of the form "# key: value"; "caches" is mandatory and must
// appear before the first reference, "blocksize" records the recommended
// block size in bytes for replay (default 64 when absent), and unknown
// keys are ignored for forward compatibility. Blank lines and further "#"
// comments are permitted anywhere. Each reference line is
// "<cache> <op> <hex-address>": a decimal cache index in [0, caches), a
// one-letter operation, and a block-address in lowercase hex without a 0x
// prefix. Files whose content starts with the gzip magic bytes are
// decompressed transparently.
const (
	// Magic is the mandatory first line of a cctrace file.
	Magic = "# cctrace v1"
	// DefaultBlockSize is the address→block mapping granularity used when
	// neither the header nor the caller specifies one.
	DefaultBlockSize = 64
)

// Operation letters. Lowercase is canonical on write; the parser accepts
// uppercase too.
const (
	opRead    = 'r' // fsm.OpRead
	opWrite   = 'w' // fsm.OpWrite
	opReplace = 'z' // fsm.OpReplace
	opAcquire = 'l' // protocols.OpAcquire (lock traces)
	opRelease = 'u' // protocols.OpRelease (lock traces)
)

// Typed parse failures. Every parsing error is a *ParseError wrapping one
// of these sentinels (match with errors.Is) and naming the offending line.
var (
	// ErrHeader: the magic line or the mandatory "# caches:" metadata is
	// missing or malformed.
	ErrHeader = errors.New("replay: bad cctrace header")
	// ErrEmpty: the trace contains no references at all.
	ErrEmpty = errors.New("replay: trace contains no references")
	// ErrBadLine: a reference line does not have the three expected fields.
	ErrBadLine = errors.New("replay: malformed reference line")
	// ErrCacheRange: a reference names a cache index outside [0, caches).
	ErrCacheRange = errors.New("replay: cache index out of range")
	// ErrBadOp: a reference uses an unknown operation letter.
	ErrBadOp = errors.New("replay: unknown operation")
	// ErrBadAddress: a reference address is not valid hex.
	ErrBadAddress = errors.New("replay: malformed address")
	// ErrTruncated: the gzip stream ended mid-member or is corrupt.
	ErrTruncated = errors.New("replay: truncated or corrupt gzip stream")
	// ErrTooManyBlocks: the trace touches more distinct blocks than the
	// scanner's block table admits (ScanOptions.MaxBlocks).
	ErrTooManyBlocks = errors.New("replay: distinct blocks exceed the block table")
)

// ParseError is a parse failure pinned to a 1-based line number of the
// (decompressed) trace text.
type ParseError struct {
	// Line is the 1-based line number the failure was detected at.
	Line int
	// Err is the sentinel classifying the failure.
	Err error
	// Detail narrows the failure ("" when the sentinel says it all).
	Detail string
}

// Error implements error.
func (e *ParseError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%v (line %d: %s)", e.Err, e.Line, e.Detail)
	}
	return fmt.Sprintf("%v (line %d)", e.Err, e.Line)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *ParseError) Unwrap() error { return e.Err }

// parseErr builds a *ParseError.
func parseErr(line int, sentinel error, format string, args ...any) error {
	return &ParseError{Line: line, Err: sentinel, Detail: fmt.Sprintf(format, args...)}
}

// opByte maps an fsm operation to its trace letter.
func opByte(op fsm.Op) (byte, error) {
	switch op {
	case fsm.OpRead:
		return opRead, nil
	case fsm.OpWrite:
		return opWrite, nil
	case fsm.OpReplace:
		return opReplace, nil
	case protocols.OpAcquire:
		return opAcquire, nil
	case protocols.OpRelease:
		return opRelease, nil
	default:
		return 0, fmt.Errorf("replay: operation %q has no trace encoding", op)
	}
}

// byteOp maps a trace letter to its fsm operation.
func byteOp(b byte) (fsm.Op, bool) {
	switch b {
	case opRead, 'R':
		return fsm.OpRead, true
	case opWrite, 'W':
		return fsm.OpWrite, true
	case opReplace, 'Z':
		return fsm.OpReplace, true
	case opAcquire, 'L':
		return protocols.OpAcquire, true
	case opRelease, 'U':
		return protocols.OpRelease, true
	default:
		return "", false
	}
}

// Meta is the header metadata of a cctrace file.
type Meta struct {
	// Caches is the number of processors/private caches the trace was
	// generated for; references are validated against it.
	Caches int
	// BlockSize is the recommended replay block size in bytes (0 in a
	// parsed Meta means the header had none; writers default it to
	// DefaultBlockSize).
	BlockSize int
	// Workload is free-text provenance (generator spec, origin, ...).
	Workload string
}

// Writer materializes references into the cctrace v1 text format. It
// buffers internally; call Flush when done. Addresses are derived from
// Ref.Block as block*stride, so a workload emitting block (or word)
// indexes becomes a stream of properly strided byte addresses.
type Writer struct {
	w      *bufio.Writer
	caches int
	stride int64
	n      int64
	buf    []byte
}

// NewWriter writes the header for meta and returns a Writer. stride is the
// byte distance between consecutive Ref.Block indexes; 0 defaults it to
// the meta's block size (so block indexes become block-aligned
// addresses). Word-granularity generators (false sharing) pass a stride
// smaller than the block size, making several indexes fold into one block
// on replay.
func NewWriter(w io.Writer, meta Meta, stride int) (*Writer, error) {
	if meta.Caches < 1 {
		return nil, fmt.Errorf("replay: writer needs at least one cache, got %d", meta.Caches)
	}
	if meta.BlockSize <= 0 {
		meta.BlockSize = DefaultBlockSize
	}
	if stride <= 0 {
		stride = meta.BlockSize
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "%s\n", Magic)
	fmt.Fprintf(bw, "# caches: %d\n", meta.Caches)
	fmt.Fprintf(bw, "# blocksize: %d\n", meta.BlockSize)
	if meta.Workload != "" {
		fmt.Fprintf(bw, "# workload: %s\n", meta.Workload)
	}
	return &Writer{w: bw, caches: meta.Caches, stride: int64(stride)}, nil
}

// WriteRef appends one reference.
func (w *Writer) WriteRef(r trace.Ref) error {
	if r.Cache < 0 || r.Cache >= w.caches {
		return fmt.Errorf("replay: ref cache %d out of range [0, %d)", r.Cache, w.caches)
	}
	if r.Block < 0 {
		return fmt.Errorf("replay: ref block %d negative", r.Block)
	}
	op, err := opByte(r.Op)
	if err != nil {
		return err
	}
	b := w.buf[:0]
	b = strconv.AppendInt(b, int64(r.Cache), 10)
	b = append(b, ' ', op, ' ')
	b = strconv.AppendInt(b, int64(r.Block)*w.stride, 16)
	b = append(b, '\n')
	w.buf = b
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	w.n++
	return nil
}

// Refs returns the number of references written.
func (w *Writer) Refs() int64 { return w.n }

// Flush drains the internal buffer to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }
