package replay

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/trace"
)

// scanAll builds a scanner over src and drains it, returning the first
// error (construction or scan).
func scanAll(t *testing.T, src string) ([]trace.Ref, error) {
	t.Helper()
	sc, err := NewScanner(strings.NewReader(src), ScanOptions{})
	if err != nil {
		return nil, err
	}
	var out []trace.Ref
	buf := make([]trace.Ref, 8)
	for {
		n, err := sc.NextBatch(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}

// wantParseError asserts err is a *ParseError wrapping sentinel at line.
func wantParseError(t *testing.T, err, sentinel error, line int) {
	t.Helper()
	if err == nil {
		t.Fatalf("no error, want %v at line %d", sentinel, line)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v, want sentinel %v", err, sentinel)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *ParseError", err)
	}
	if pe.Line != line {
		t.Fatalf("error at line %d, want %d: %v", pe.Line, line, err)
	}
}

func TestScannerEmptyInput(t *testing.T) {
	_, err := scanAll(t, "")
	wantParseError(t, err, ErrHeader, 1)
}

func TestScannerMissingMagic(t *testing.T) {
	_, err := scanAll(t, "0 r 40\n")
	wantParseError(t, err, ErrHeader, 1)
}

func TestScannerMissingCaches(t *testing.T) {
	_, err := scanAll(t, Magic+"\n# blocksize: 64\n0 r 40\n")
	wantParseError(t, err, ErrHeader, 2)
}

func TestScannerHeaderOnly(t *testing.T) {
	_, err := scanAll(t, Magic+"\n# caches: 2\n")
	wantParseError(t, err, ErrEmpty, 2)
}

func TestScannerCommentOnly(t *testing.T) {
	_, err := scanAll(t, Magic+"\n# caches: 2\n# a comment\n\n# another\n")
	wantParseError(t, err, ErrEmpty, 5)
}

func TestScannerCacheOutOfRange(t *testing.T) {
	_, err := scanAll(t, Magic+"\n# caches: 2\n0 r 40\n2 w 40\n")
	wantParseError(t, err, ErrCacheRange, 4)
}

func TestScannerNegativeCache(t *testing.T) {
	_, err := scanAll(t, Magic+"\n# caches: 2\n-1 r 40\n")
	wantParseError(t, err, ErrCacheRange, 3)
}

func TestScannerMalformedHex(t *testing.T) {
	_, err := scanAll(t, Magic+"\n# caches: 2\n0 r 40\n1 w 0xGG\n")
	wantParseError(t, err, ErrBadAddress, 4)
}

func TestScannerUnknownOp(t *testing.T) {
	_, err := scanAll(t, Magic+"\n# caches: 2\n0 q 40\n")
	wantParseError(t, err, ErrBadOp, 3)
}

func TestScannerShortLine(t *testing.T) {
	_, err := scanAll(t, Magic+"\n# caches: 2\n0 r\n")
	wantParseError(t, err, ErrBadLine, 3)
}

func TestScannerTruncatedGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	io.WriteString(zw, Magic+"\n# caches: 2\n0 r 40\n1 w 40\n0 r 80\n")
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-6] // drop part of the gzip trailer

	sc, err := NewScanner(bytes.NewReader(cut), ScanOptions{})
	if err != nil {
		// Acceptable: truncation detected at construction.
		wantParseErrorAny(t, err, ErrTruncated)
		return
	}
	refs := make([]trace.Ref, 8)
	for {
		_, err = sc.NextBatch(refs)
		if err != nil {
			break
		}
	}
	if err == io.EOF {
		t.Fatal("truncated gzip scanned to clean EOF")
	}
	wantParseErrorAny(t, err, ErrTruncated)
}

// wantParseErrorAny asserts the sentinel and ParseError shape without
// pinning the line (truncation can surface at different read points).
func wantParseErrorAny(t *testing.T, err, sentinel error) {
	t.Helper()
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v, want sentinel %v", err, sentinel)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *ParseError", err)
	}
}

func TestScannerGzipTransparent(t *testing.T) {
	text := Magic + "\n# caches: 2\n0 r 40\n1 w 40\n"
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	io.WriteString(zw, text)
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()), ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]trace.Ref, 8)
	n, err := sc.NextBatch(refs)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("decoded %d refs, want 2", n)
	}
}

func TestScannerBlockMapping(t *testing.T) {
	// blocksize 64: 0x00 and 0x3f share block 0; 0x40 is block 1; first
	// touch order assigns dense indexes.
	src := Magic + "\n# caches: 2\n# blocksize: 64\n0 r 3f\n1 w 0\n0 r 40\n1 r 0x3F\n"
	refs, err := scanAll(t, src)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 0}
	for i, r := range refs {
		if r.Block != want[i] {
			t.Fatalf("ref %d block %d, want %d", i, r.Block, want[i])
		}
	}
}

func TestScannerBlockSizeOverride(t *testing.T) {
	src := Magic + "\n# caches: 1\n# blocksize: 64\n0 r 0\n0 r 20\n"
	sc, err := NewScanner(strings.NewReader(src), ScanOptions{BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Meta().BlockSize != 32 {
		t.Fatalf("blocksize %d, want override 32", sc.Meta().BlockSize)
	}
	refs := make([]trace.Ref, 4)
	n, _ := sc.NextBatch(refs)
	if n != 2 || refs[0].Block != 0 || refs[1].Block != 1 {
		t.Fatalf("refs %+v, want 0x0→block0 0x20→block1 at blocksize 32", refs[:n])
	}
}

func TestScannerTooManyBlocks(t *testing.T) {
	var b strings.Builder
	b.WriteString(Magic + "\n# caches: 1\n")
	for i := 0; i < 5; i++ {
		b.WriteString("0 r " + hexAddr(i*64) + "\n")
	}
	sc, err := NewScanner(strings.NewReader(b.String()), ScanOptions{MaxBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]trace.Ref, 16)
	_, err = sc.NextBatch(refs)
	wantParseError(t, err, ErrTooManyBlocks, 7)
}

func hexAddr(v int) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var out []byte
	for v > 0 {
		out = append([]byte{digits[v&15]}, out...)
		v >>= 4
	}
	return string(out)
}

func TestScannerDigestMatchesRawBytes(t *testing.T) {
	spec := WorkloadSpec{Kind: KindUniform, Seed: 3, Caches: 2, Blocks: 4, Ops: 100}
	var plain, zipped bytes.Buffer
	if _, err := MaterializeTo(&plain, spec, false); err != nil {
		t.Fatal(err)
	}
	if _, err := MaterializeTo(&zipped, spec, true); err != nil {
		t.Fatal(err)
	}
	digest := func(b []byte) string {
		sc, err := NewScanner(bytes.NewReader(b), ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]trace.Ref, 64)
		for {
			if _, err := sc.NextBatch(refs); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		return sc.Digest()
	}
	dp, dz := digest(plain.Bytes()), digest(zipped.Bytes())
	if dp == dz {
		t.Fatal("plain and gzip digests equal: digest must cover raw bytes")
	}
	if dp != digest(plain.Bytes()) {
		t.Fatal("digest not deterministic")
	}
}
