package replay

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/trace"
)

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Caches: 4, Workload: "hand-rolled"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	refs := []trace.Ref{
		{Cache: 0, Op: fsm.OpRead, Block: 0},
		{Cache: 3, Op: fsm.OpWrite, Block: 7},
		{Cache: 1, Op: fsm.OpReplace, Block: 7},
	}
	for _, r := range refs {
		if err := w.WriteRef(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Refs() != int64(len(refs)) {
		t.Fatalf("Refs() = %d, want %d", w.Refs(), len(refs))
	}

	sc, err := NewScanner(bytes.NewReader(buf.Bytes()), ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m := sc.Meta(); m.Caches != 4 || m.BlockSize != DefaultBlockSize || m.Workload != "hand-rolled" {
		t.Fatalf("meta = %+v", m)
	}
	out := make([]trace.Ref, 16)
	n, err := sc.NextBatch(out)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if n != len(refs) {
		t.Fatalf("decoded %d refs, want %d", n, len(refs))
	}
	// The scanner assigns dense first-touch block indexes, so written
	// blocks {0, 7, 7} come back as {0, 1, 1}.
	want := []trace.Ref{
		{Cache: 0, Op: fsm.OpRead, Block: 0},
		{Cache: 3, Op: fsm.OpWrite, Block: 1},
		{Cache: 1, Op: fsm.OpReplace, Block: 1},
	}
	for i, r := range want {
		if out[i] != r {
			t.Fatalf("ref %d = %+v, want %+v", i, out[i], r)
		}
	}
}

func TestWriterRejectsBadRefs(t *testing.T) {
	w, err := NewWriter(io.Discard, Meta{Caches: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRef(trace.Ref{Cache: 2, Op: fsm.OpRead}); err == nil {
		t.Fatal("out-of-range cache accepted")
	}
	if err := w.WriteRef(trace.Ref{Cache: 0, Op: fsm.Op("teleport")}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := w.WriteRef(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: -1}); err == nil {
		t.Fatal("negative block accepted")
	}
}

// TestMaterializeDeterministic pins the contract the service's digest-based
// cache depends on: the same spec (same seed) materializes byte-identical
// files, for every generator kind, plain and gzipped.
func TestMaterializeDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			spec := WorkloadSpec{Kind: kind, Seed: 1993, Caches: 4, Blocks: 16, Ops: 5000}
			var a, b bytes.Buffer
			na, err := MaterializeTo(&a, spec, false)
			if err != nil {
				t.Fatal(err)
			}
			nb, err := MaterializeTo(&b, spec, false)
			if err != nil {
				t.Fatal(err)
			}
			if na != int64(spec.Ops) || nb != na {
				t.Fatalf("materialized %d and %d refs, want %d", na, nb, spec.Ops)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatal("same spec produced different bytes")
			}

			var ga, gb bytes.Buffer
			if _, err := MaterializeTo(&ga, spec, true); err != nil {
				t.Fatal(err)
			}
			if _, err := MaterializeTo(&gb, spec, true); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ga.Bytes(), gb.Bytes()) {
				t.Fatal("same spec produced different gzip bytes")
			}
			zr, err := gzip.NewReader(bytes.NewReader(ga.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			plain, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(plain, a.Bytes()) {
				t.Fatal("gzip materialization decompresses to different text")
			}

			other := spec
			other.Seed = 7
			var c bytes.Buffer
			if _, err := MaterializeTo(&c, other, false); err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(a.Bytes(), c.Bytes()) {
				t.Fatal("different seeds produced identical traces")
			}
		})
	}
}

func TestMaterializedHeaderCarriesCanonicalSpec(t *testing.T) {
	spec := WorkloadSpec{Kind: KindMigratory, Seed: 42, Caches: 4, Blocks: 8, Ops: 100}
	var buf bytes.Buffer
	if _, err := Materialize(&buf, spec); err != nil {
		t.Fatal(err)
	}
	norm := spec
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()), ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Meta().Workload; got != norm.Canonical() {
		t.Fatalf("workload header %q, want %q", got, norm.Canonical())
	}
	if !strings.HasPrefix(buf.String(), Magic+"\n") {
		t.Fatalf("missing magic first line: %q", buf.String()[:40])
	}
}

func TestCanonicalZeroesIrrelevantKnobs(t *testing.T) {
	a := WorkloadSpec{Kind: KindMigratory, Seed: 1, Caches: 2, Blocks: 4, Ops: 10, PWrite: 0.9, HotFrac: 0.7}
	b := WorkloadSpec{Kind: KindMigratory, Seed: 1, Caches: 2, Blocks: 4, Ops: 10}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("irrelevant knobs leaked into canonical form:\n%s\n%s", a.Canonical(), b.Canonical())
	}
}

func TestNormalizeRejectsBadSpecs(t *testing.T) {
	bad := []WorkloadSpec{
		{},
		{Kind: "zipf", Caches: 2, Blocks: 2, Ops: 10},
		{Kind: KindUniform, Caches: 0, Blocks: 2, Ops: 10},
		{Kind: KindUniform, Caches: 2, Blocks: 2, Ops: 0},
		{Kind: KindUniform, Caches: 2, Blocks: 2, Ops: 10, PWrite: 1.5},
		{Kind: KindHotBlock, Caches: 2, Blocks: 2, Ops: 10, HotFrac: -0.1},
	}
	for i, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}
