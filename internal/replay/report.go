package replay

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/report"
)

// ReportSchema versions the comparison report's JSON shape.
const ReportSchema = 1

// ProtocolResult is one protocol's row of a comparison report. All derived
// ratios are rounded to six decimals so the rendering is byte-identical
// across runs and architectures.
type ProtocolResult struct {
	Protocol string `json:"protocol"`
	Ops      int64  `json:"ops"`

	ReadHits    int64 `json:"read_hits"`
	ReadMisses  int64 `json:"read_misses"`
	WriteHits   int64 `json:"write_hits"`
	WriteMisses int64 `json:"write_misses"`

	// MissRatio is (read+write misses) / (reads+writes), rounded.
	MissRatio float64 `json:"miss_ratio"`

	BusTransactions int64 `json:"bus_transactions"`
	// BusPerOp is bus transactions per applied operation, rounded.
	BusPerOp float64 `json:"bus_per_op"`

	Invalidations  int64 `json:"invalidations"`
	Updates        int64 `json:"updates"`
	CacheSupplies  int64 `json:"cache_supplies"`
	MemorySupplies int64 `json:"memory_supplies"`
	WriteBacks     int64 `json:"write_backs"`
	StaleReads     int64 `json:"stale_reads"`

	// Truncated flags a partial run; StopReason names the budget that
	// tripped ("" on complete runs).
	Truncated  bool   `json:"truncated,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
	// Violations counts final-state invariant violations (0 for a coherent
	// protocol).
	Violations int `json:"violations"`
}

// ComparisonReport is the deterministic protocol-comparison document: one
// trace, N protocols, the classic Archibald & Baer comparison axes. Equal
// inputs render byte-identically (insertion-ordered rows, rounded ratios,
// json.MarshalIndent with a trailing newline), so the document is safe to
// cache by content and to diff across runs.
type ComparisonReport struct {
	Schema int `json:"schema"`
	// TraceDigest is the SHA-256 of the raw trace bytes.
	TraceDigest string `json:"trace_digest"`
	// Workload is the trace header's provenance line, if any.
	Workload string `json:"workload,omitempty"`
	// Caches, BlockSize and Blocks are the replayed geometry (Blocks is
	// distinct blocks actually touched).
	Caches    int `json:"caches"`
	BlockSize int `json:"block_size"`
	Blocks    int `json:"blocks"`
	// Ops is the reference count of the full trace (the maximum over rows;
	// rows stopped by a budget may have fewer).
	Ops int64 `json:"ops"`
	// Results hold one row per protocol, in the order requested.
	Results []ProtocolResult `json:"results"`

	// CacheKey is the service's content-addressed cache key when the report
	// was produced by ccserved ("" from the CLI).
	CacheKey string `json:"cache_key,omitempty"`
}

// round6 rounds to six decimals, the report's fixed ratio precision.
func round6(v float64) float64 {
	return float64(int64(v*1e6+0.5)) / 1e6
}

// NewReport assembles a ComparisonReport from a fan-out result.
func NewReport(cr *CompareResult) *ComparisonReport {
	rep := &ComparisonReport{
		Schema:      ReportSchema,
		TraceDigest: cr.TraceDigest,
		Workload:    cr.Meta.Workload,
		Caches:      cr.Meta.Caches,
		BlockSize:   cr.Meta.BlockSize,
	}
	for _, r := range cr.Results {
		rep.AddResult(r)
	}
	return rep
}

// AddResult appends one protocol's replay outcome as a report row.
func (rep *ComparisonReport) AddResult(r *Result) {
	st := r.Stats
	row := ProtocolResult{
		Protocol:        r.Protocol,
		Ops:             r.Ops,
		ReadHits:        st.ReadHits,
		ReadMisses:      st.ReadMisses,
		WriteHits:       st.WriteHits,
		WriteMisses:     st.WriteMisses,
		MissRatio:       round6(st.MissRatio()),
		BusTransactions: st.BusTransactions,
		Invalidations:   st.Invalidations,
		Updates:         st.Updates,
		CacheSupplies:   st.CacheSupplies,
		MemorySupplies:  st.MemorySupplies,
		WriteBacks:      st.WriteBacks,
		StaleReads:      st.StaleReads,
		Truncated:       r.Truncated,
		Violations:      len(r.Violations),
	}
	if r.Ops > 0 {
		row.BusPerOp = round6(float64(st.BusTransactions) / float64(r.Ops))
	}
	if r.StopReason != nil {
		row.StopReason = r.StopReason.Error()
	}
	rep.Results = append(rep.Results, row)
	if r.Ops > rep.Ops {
		rep.Ops = r.Ops
	}
	if r.Blocks > rep.Blocks {
		rep.Blocks = r.Blocks
	}
	if rep.Caches == 0 {
		rep.Caches = r.Caches
	}
	if rep.BlockSize == 0 {
		rep.BlockSize = r.BlockSize
	}
	if rep.TraceDigest == "" {
		rep.TraceDigest = r.TraceDigest
	}
}

// Encode renders the report as deterministic indented JSON with a trailing
// newline — the byte-identical form the service caches and the CLI's
// -json output.
func (rep *ComparisonReport) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeReport parses an encoded ComparisonReport.
func DecodeReport(b []byte) (*ComparisonReport, error) {
	var rep ComparisonReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("replay: bad comparison report: %w", err)
	}
	return &rep, nil
}

// Table renders the human-facing comparison: one row per protocol on the
// classic axes.
func (rep *ComparisonReport) Table() string {
	t := report.NewTable("protocol", "ops", "miss ratio", "bus/op", "inval", "updates", "c2c", "mem", "wb", "note")
	for _, r := range rep.Results {
		note := "ok"
		if r.Violations > 0 {
			note = fmt.Sprintf("VIOLATIONS=%d", r.Violations)
		} else if r.Truncated {
			note = "truncated"
			if r.StopReason != "" {
				note = "truncated: " + r.StopReason
			}
		}
		t.AddRow(r.Protocol, r.Ops,
			fmt.Sprintf("%.4f", r.MissRatio),
			fmt.Sprintf("%.4f", r.BusPerOp),
			r.Invalidations, r.Updates, r.CacheSupplies, r.MemorySupplies, r.WriteBacks, note)
	}
	head := fmt.Sprintf("trace %s  caches=%d blocksize=%d blocks=%d ops=%d",
		shortDigest(rep.TraceDigest), rep.Caches, rep.BlockSize, rep.Blocks, rep.Ops)
	return head + "\n\n" + t.String()
}

// shortDigest abbreviates a hex digest for table headers.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	if d == "" {
		return "(unknown)"
	}
	return d
}
