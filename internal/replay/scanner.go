package replay

import (
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"hash"
	"io"
	"strconv"

	"repro/internal/trace"
)

// ScanOptions tune a Scanner. The zero value follows the trace header.
type ScanOptions struct {
	// BlockSize is the address→block mapping granularity in bytes (0: the
	// header's blocksize, or DefaultBlockSize when the header has none).
	BlockSize int
	// MaxBlocks caps the distinct blocks the scanner will assign dense
	// indexes to (0: 4096). A trace touching more fails with
	// ErrTooManyBlocks rather than silently aliasing blocks.
	MaxBlocks int
}

// DefaultMaxBlocks is the dense block-table cap when ScanOptions leaves
// MaxBlocks zero.
const DefaultMaxBlocks = 4096

// Scanner streams a cctrace file: header first (at construction), then
// references in caller-sized batches. Gzip input is detected by its magic
// bytes and decompressed transparently; line numbers always refer to the
// decompressed text. The scanner maps byte addresses to dense block
// indexes (address/BlockSize, first-touch ordered), so the emitted
// trace.Ref values feed sim.Machine directly.
type Scanner struct {
	br   *bufio.Reader
	meta Meta
	opts ScanOptions

	line   int // 1-based number of the last line read
	refs   int64
	blocks map[int64]int
	order  []int64 // dense index -> address block, first-touch order

	digest hash.Hash // SHA-256 over the raw (possibly compressed) bytes
	eof    bool
}

// NewScanner sniffs compression, reads and validates the header, and
// returns a scanner positioned at the first reference. Errors are
// *ParseError values naming the offending line.
func NewScanner(r io.Reader, opts ScanOptions) (*Scanner, error) {
	if opts.MaxBlocks <= 0 {
		opts.MaxBlocks = DefaultMaxBlocks
	}
	digest := sha256.New()
	br := bufio.NewReaderSize(io.TeeReader(r, digest), 1<<16)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, parseErr(0, ErrTruncated, "gzip header: %v", err)
		}
		br = bufio.NewReaderSize(zr, 1<<16)
	}
	s := &Scanner{
		br:     br,
		opts:   opts,
		blocks: make(map[int64]int),
		digest: digest,
	}
	if err := s.readHeader(); err != nil {
		return nil, err
	}
	if opts.BlockSize > 0 {
		s.meta.BlockSize = opts.BlockSize
	} else if s.meta.BlockSize <= 0 {
		s.meta.BlockSize = DefaultBlockSize
	}
	return s, nil
}

// Meta returns the parsed header (BlockSize resolved to the effective
// mapping granularity).
func (s *Scanner) Meta() Meta { return s.meta }

// Refs returns the number of references decoded so far.
func (s *Scanner) Refs() int64 { return s.refs }

// Blocks returns the number of distinct blocks assigned so far.
func (s *Scanner) Blocks() int { return len(s.order) }

// Digest returns the SHA-256 of the raw input bytes consumed so far,
// lowercase hex. It is the trace's content address once the scanner has
// reached EOF.
func (s *Scanner) Digest() string {
	return hex.EncodeToString(s.digest.Sum(nil))
}

// readLine reads the next line, bumping the line counter. io.EOF is
// returned bare; any other failure is classified (a gzip stream that ends
// mid-member surfaces as ErrTruncated).
func (s *Scanner) readLine() (string, error) {
	line, err := s.br.ReadString('\n')
	if len(line) > 0 {
		s.line++
	}
	if err != nil {
		if err == io.EOF {
			if line == "" {
				return "", io.EOF
			}
			return line, nil // final line without trailing newline
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, gzip.ErrHeader) || errors.Is(err, gzip.ErrChecksum) {
			return "", parseErr(s.line+1, ErrTruncated, "%v", err)
		}
		return "", err
	}
	return line, nil
}

// readHeader consumes the magic line and the metadata comments up to (not
// including) the first reference line, which is pushed back for NextBatch.
func (s *Scanner) readHeader() error {
	first, err := s.readLine()
	if err != nil {
		if err == io.EOF {
			return parseErr(1, ErrHeader, "empty input, expected %q", Magic)
		}
		return err
	}
	if trimEOL(first) != Magic {
		return parseErr(s.line, ErrHeader, "first line %q, expected %q", trimEOL(first), Magic)
	}
	for {
		peek, err := s.br.Peek(1)
		if err != nil {
			break // EOF (or a read error NextBatch will surface): header ends here
		}
		if peek[0] != '#' && peek[0] != '\n' && peek[0] != '\r' {
			break
		}
		line, err := s.readLine()
		if err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		s.headerComment(trimEOL(line))
	}
	if s.meta.Caches < 1 {
		return parseErr(s.line, ErrHeader, "missing '# caches: N' before the first reference")
	}
	return nil
}

// headerComment interprets one "# key: value" comment; unknown keys and
// malformed values are ignored (comments stay comments).
func (s *Scanner) headerComment(line string) {
	if len(line) < 2 || line[0] != '#' {
		return
	}
	rest := trimSpaces(line[1:])
	colon := -1
	for i := 0; i < len(rest); i++ {
		if rest[i] == ':' {
			colon = i
			break
		}
	}
	if colon < 0 {
		return
	}
	key, val := trimSpaces(rest[:colon]), trimSpaces(rest[colon+1:])
	switch key {
	case "caches":
		if n, err := strconv.Atoi(val); err == nil && n > 0 {
			s.meta.Caches = n
		}
	case "blocksize":
		if n, err := strconv.Atoi(val); err == nil && n > 0 {
			s.meta.BlockSize = n
		}
	case "workload":
		s.meta.Workload = val
	}
}

// NextBatch decodes up to len(buf) references into buf and returns how
// many were filled. At the end of the trace it returns (0, io.EOF) — or a
// *ParseError wrapping ErrEmpty when the whole trace contained no
// references. Any malformed line fails the scan with a *ParseError.
func (s *Scanner) NextBatch(buf []trace.Ref) (int, error) {
	if s.eof {
		return 0, io.EOF
	}
	n := 0
	for n < len(buf) {
		line, err := s.readLine()
		if err != nil {
			if err == io.EOF {
				s.eof = true
				if s.refs == 0 {
					return 0, parseErr(s.line, ErrEmpty, "header but no references")
				}
				if n == 0 {
					return 0, io.EOF
				}
				return n, nil
			}
			return n, err
		}
		line = trimEOL(line)
		if line == "" || line[0] == '#' {
			continue
		}
		ref, err := s.parseRef(line)
		if err != nil {
			return n, err
		}
		buf[n] = ref
		n++
		s.refs++
	}
	return n, nil
}

// parseRef decodes one "<cache> <op> <hex-address>" line.
func (s *Scanner) parseRef(line string) (trace.Ref, error) {
	var ref trace.Ref
	f0, rest0, ok := nextField(line)
	f1, rest1, ok1 := nextField(rest0)
	f2, rest2, ok2 := nextField(rest1)
	if !ok || !ok1 || !ok2 || trimSpaces(rest2) != "" {
		return ref, parseErr(s.line, ErrBadLine, "want '<cache> <op> <hex-address>', got %q", line)
	}
	cache, err := strconv.Atoi(f0)
	if err != nil {
		return ref, parseErr(s.line, ErrBadLine, "cache field %q is not a number", f0)
	}
	if cache < 0 || cache >= s.meta.Caches {
		return ref, parseErr(s.line, ErrCacheRange, "cache %d, trace has %d caches", cache, s.meta.Caches)
	}
	if len(f1) != 1 {
		return ref, parseErr(s.line, ErrBadOp, "op field %q", f1)
	}
	op, ok := byteOp(f1[0])
	if !ok {
		return ref, parseErr(s.line, ErrBadOp, "op %q (want r, w, z, l or u)", f1)
	}
	if len(f2) > 2 && f2[0] == '0' && (f2[1] == 'x' || f2[1] == 'X') {
		f2 = f2[2:]
	}
	addr, err := strconv.ParseUint(f2, 16, 63)
	if err != nil {
		return ref, parseErr(s.line, ErrBadAddress, "address %q is not hex", f2)
	}
	block, err := s.blockOf(int64(addr))
	if err != nil {
		return ref, err
	}
	ref = trace.Ref{Cache: cache, Op: op, Block: block}
	return ref, nil
}

// blockOf maps a byte address to its dense block index, assigning a new
// index on first touch.
func (s *Scanner) blockOf(addr int64) (int, error) {
	ab := addr / int64(s.meta.BlockSize)
	if idx, ok := s.blocks[ab]; ok {
		return idx, nil
	}
	if len(s.order) >= s.opts.MaxBlocks {
		return 0, parseErr(s.line, ErrTooManyBlocks, "more than %d distinct blocks at blocksize %d",
			s.opts.MaxBlocks, s.meta.BlockSize)
	}
	idx := len(s.order)
	s.blocks[ab] = idx
	s.order = append(s.order, ab)
	return idx, nil
}

// trimEOL strips a trailing \n and \r.
func trimEOL(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// trimSpaces strips leading and trailing spaces and tabs.
func trimSpaces(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// nextField splits off the next space/tab-separated field.
func nextField(s string) (field, rest string, ok bool) {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	if i == len(s) {
		return "", "", false
	}
	j := i
	for j < len(s) && s[j] != ' ' && s[j] != '\t' {
		j++
	}
	return s[i:j], s[j:], true
}
