// Package report renders fixed-width text tables for the experiment
// harnesses and CLI tools. Only the standard library is used; output is
// plain UTF-8 suitable for terminals and log files.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if w := displayWidth(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			b.WriteString(cell)
			if i < ncol-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(cell)+2))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		var sep []string
		for i := 0; i < ncol; i++ {
			sep = append(sep, strings.Repeat("-", widths[i]))
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// displayWidth approximates the terminal width of a string, counting runes
// rather than bytes so the superscript and set-notation glyphs used in
// composite-state rendering align correctly.
func displayWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Section renders a titled block: the title, an underline, and the body.
func Section(title, body string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", displayWidth(title)))
	b.WriteString("\n\n")
	b.WriteString(body)
	if !strings.HasSuffix(body, "\n") {
		b.WriteByte('\n')
	}
	return b.String()
}
