package report

import (
	"strings"
	"testing"
)

func TestTableAlignsColumns(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("x", 1)
	tb.AddRow("longer-name", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+separator+2 rows, got %d lines:\n%s", len(lines), out)
	}
	// The value column must start at the same offset on every line.
	col := strings.Index(lines[0], "value")
	if col < 0 {
		t.Fatal("header missing")
	}
	if lines[2][col:col+1] != "1" {
		t.Errorf("row 1 misaligned:\n%s", out)
	}
	if lines[3][col:col+2] != "22" {
		t.Errorf("row 2 misaligned:\n%s", out)
	}
}

func TestTableSeparatorMatchesWidths(t *testing.T) {
	tb := NewTable("abc", "de")
	tb.AddRow("x", "y")
	lines := strings.Split(tb.String(), "\n")
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator wrong: %q", lines[1])
	}
}

func TestTableHandlesWideRows(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("x", "extra", "columns")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "columns") {
		t.Errorf("extra columns dropped:\n%s", out)
	}
}

func TestTableUnicodeWidths(t *testing.T) {
	// Composite-state glyphs (superscripts, set notation) are multi-byte
	// but single-column; alignment must count runes.
	tb := NewTable("state", "n")
	tb.AddRow("(Shared⁺, Invalid∗)", 1)
	tb.AddRow("plain", 2)
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	col := strings.IndexRune(lines[0], 'n')
	runesAt := func(s string, want string) bool {
		rs := []rune(s)
		if col >= len(rs) {
			return false
		}
		return string(rs[col:col+1]) == want
	}
	if !runesAt(lines[2], "1") || !runesAt(lines[3], "2") {
		t.Errorf("unicode misalignment:\n%s", tb.String())
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("a", "b")
	out := tb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("empty table must still render headers: %q", out)
	}
}

func TestHeaderlessTable(t *testing.T) {
	tb := NewTable()
	tb.AddRow("x", "y")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Errorf("headerless table must not render a separator: %q", out)
	}
	if !strings.Contains(out, "x") {
		t.Errorf("row missing: %q", out)
	}
}

func TestSection(t *testing.T) {
	s := Section("Title", "body text")
	lines := strings.Split(s, "\n")
	if lines[0] != "Title" {
		t.Errorf("title line %q", lines[0])
	}
	if lines[1] != "=====" {
		t.Errorf("underline %q must match the title width", lines[1])
	}
	if !strings.Contains(s, "body text") {
		t.Error("body missing")
	}
	if !strings.HasSuffix(s, "\n") {
		t.Error("section must end with a newline")
	}
}

func TestDisplayWidthCountsRunes(t *testing.T) {
	if displayWidth("abc") != 3 {
		t.Error("ascii width wrong")
	}
	if displayWidth("⁺∗≥") != 3 {
		t.Error("unicode width must count runes, not bytes")
	}
	if displayWidth("") != 0 {
		t.Error("empty width wrong")
	}
}
