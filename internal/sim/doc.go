// Package sim is a concrete bus-based shared-memory multiprocessor
// simulator: n private caches with finite capacity, a single atomic bus, and
// main memory, running any protocol defined as an fsm.Protocol over multiple
// memory blocks with versioned data values.
//
// The simulator is the executable oracle for the verification results of
// this repository: the exact same protocol rules drive the symbolic
// verifier, so running millions of trace-driven references and observing
// zero stale reads corroborates a PERMISSIBLE verdict, and a protocol that
// the verifier flags erroneous demonstrably returns stale data under
// simulation. The paper assumes atomic accesses (Section 2.4); the bus here
// serializes transactions accordingly.
//
// Besides coherence checking, the simulator collects the bus-traffic
// statistics (hits, misses, invalidations, broadcasts, write-backs,
// cache-to-cache supplies) that Archibald & Baer's study reports, which the
// benchmark harness uses to contrast the protocol suite across workloads.
package sim
