package sim

import (
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/trace"
)

func newMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadConfig(t *testing.T) {
	p := protocols.Illinois()
	cases := []Config{
		{Protocol: nil, Caches: 2, Blocks: 2},
		{Protocol: p, Caches: 0, Blocks: 2},
		{Protocol: p, Caches: 2, Blocks: 0},
		{Protocol: p, Caches: 2, Blocks: 2, Capacity: -1},
		{Protocol: &fsm.Protocol{Name: "broken"}, Caches: 2, Blocks: 2},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v must be rejected", i, cfg)
		}
	}
}

func TestApplyRejectsOutOfRange(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 2, Blocks: 2})
	if _, err := m.Apply(trace.Ref{Cache: 5, Op: fsm.OpRead, Block: 0}); err == nil {
		t.Error("out-of-range cache must be rejected")
	}
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: 9}); err == nil {
		t.Error("out-of-range block must be rejected")
	}
}

func TestStatsAccountingIdentities(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 4, Blocks: 8, Capacity: 4})
	w, err := trace.NewUniform(11, 4, 8, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(w, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Reads+st.Writes+st.Replacements != st.Ops {
		t.Errorf("op classes do not sum: %d+%d+%d != %d", st.Reads, st.Writes, st.Replacements, st.Ops)
	}
	if st.ReadHits+st.ReadMisses != st.Reads {
		t.Errorf("read hits+misses != reads")
	}
	if st.WriteHits+st.WriteMisses != st.Writes {
		t.Errorf("write hits+misses != writes")
	}
	// Replacements triggered internally by capacity evictions are counted
	// on top of the workload's explicit replacement references.
	if st.Replacements < st.CapacityEvictions {
		t.Errorf("capacity evictions (%d) exceed replacements (%d)", st.CapacityEvictions, st.Replacements)
	}
	if st.StaleReads != 0 {
		t.Errorf("correct protocol returned %d stale reads", st.StaleReads)
	}
	if st.MissRatio() <= 0 || st.MissRatio() >= 1 {
		t.Errorf("implausible miss ratio %f", st.MissRatio())
	}
}

func TestCapacityBoundIsRespected(t *testing.T) {
	const capacity = 2
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 2, Blocks: 6, Capacity: capacity})
	for b := 0; b < 6; b++ {
		if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: b}); err != nil {
			t.Fatal(err)
		}
		resident := 0
		for bb := 0; bb < 6; bb++ {
			if m.resident(0, bb) {
				resident++
			}
		}
		if resident > capacity {
			t.Fatalf("after touching block %d: %d resident blocks > capacity %d", b, resident, capacity)
		}
	}
	if m.Stats().CapacityEvictions == 0 {
		t.Error("walking 6 blocks through a 2-block cache must evict")
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 1, Blocks: 3, Capacity: 2})
	mustApply := func(b int) {
		t.Helper()
		if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: b}); err != nil {
			t.Fatal(err)
		}
	}
	mustApply(0)
	mustApply(1)
	mustApply(0) // touch 0: block 1 becomes LRU
	mustApply(2) // must evict block 1
	if !m.resident(0, 0) || m.resident(0, 1) || !m.resident(0, 2) {
		t.Fatalf("LRU eviction wrong: resident = %v %v %v",
			m.resident(0, 0), m.resident(0, 1), m.resident(0, 2))
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 1, Blocks: 2, Capacity: 1})
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpWrite, Block: 0}); err != nil {
		t.Fatal(err)
	}
	if m.Block(0).MemVersion == m.Block(0).Latest {
		t.Fatal("setup: block 0 should be dirty")
	}
	// Touching block 1 evicts dirty block 0, which must write back.
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: 1}); err != nil {
		t.Fatal(err)
	}
	if m.Block(0).MemVersion != m.Block(0).Latest {
		t.Fatal("evicting a dirty block must write it back")
	}
	if m.Stats().WriteBacks == 0 {
		t.Error("write-back not counted")
	}
}

func TestRemoteInvalidationSheddsResidency(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 2, Blocks: 1, Capacity: 1})
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(trace.Ref{Cache: 1, Op: fsm.OpWrite, Block: 0}); err != nil {
		t.Fatal(err)
	}
	if m.resident(0, 0) {
		t.Fatal("cache 0's copy must be gone after the remote write")
	}
	if m.Stats().Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", m.Stats().Invalidations)
	}
	if len(m.lru[0]) != 0 {
		t.Fatal("LRU bookkeeping kept an invalidated block")
	}
}

func TestBroadcastUpdatesCounted(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Firefly(), Caches: 3, Blocks: 1})
	for i := 0; i < 3; i++ {
		if _, err := m.Apply(trace.Ref{Cache: i, Op: fsm.OpRead, Block: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpWrite, Block: 0}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Updates != 2 {
		t.Fatalf("updates = %d, want 2 (both remote sharers refreshed)", st.Updates)
	}
	if st.Invalidations != 0 {
		t.Fatalf("Firefly must not invalidate, got %d", st.Invalidations)
	}
	// Everyone must now read fresh data.
	for i := 0; i < 3; i++ {
		res, err := m.Apply(trace.Ref{Cache: i, Op: fsm.OpRead, Block: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.ReadVersion != m.Block(0).Latest {
			t.Fatalf("cache %d read stale data after the broadcast", i)
		}
	}
}

func TestAllProtocolsAllWorkloadsCoherent(t *testing.T) {
	workloads := []func() (trace.Workload, error){
		func() (trace.Workload, error) { return trace.NewUniform(3, 4, 8, 0.3, 0.05) },
		func() (trace.Workload, error) { return trace.NewHotBlock(4, 4, 8, 0.4, 0.6) },
		func() (trace.Workload, error) { return trace.NewMigratory(5, 4, 8, 3) },
		func() (trace.Workload, error) { return trace.NewProducerConsumer(6, 4, 8, 3) },
	}
	for _, p := range protocols.All() {
		for _, mkw := range workloads {
			w, err := mkw()
			if err != nil {
				t.Fatal(err)
			}
			m := newMachine(t, Config{Protocol: p, Caches: 4, Blocks: 8, Capacity: 4, Strict: true})
			st, err := m.Run(w, 30000)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, w.Name(), err)
			}
			if st.StaleReads != 0 {
				t.Errorf("%s/%s: %d stale reads", p.Name, w.Name(), st.StaleReads)
			}
			if v := m.CheckInvariants(); len(v) != 0 {
				t.Errorf("%s/%s: final-state violation %v", p.Name, w.Name(), v[0])
			}
		}
	}
}

func TestBrokenProtocolShowsStaleReads(t *testing.T) {
	p := protocols.Illinois()
	for i := range p.Rules {
		if p.Rules[i].Name == "write-hit-shared" {
			p.Rules[i].Observe = nil
		}
	}
	p = p.Clone()
	m := newMachine(t, Config{Protocol: p, Caches: 4, Blocks: 4, Capacity: 4})
	w, err := trace.NewUniform(9, 4, 4, 0.4, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(w, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if st.StaleReads == 0 {
		t.Fatal("the broken protocol must return stale data under load")
	}
}

func TestBlocksAreIndependent(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 2, Blocks: 2})
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpWrite, Block: 0}); err != nil {
		t.Fatal(err)
	}
	if m.Block(1).States[0] != "Invalid" {
		t.Fatal("writing block 0 must not disturb block 1")
	}
	if m.Block(0).States[0] != "Dirty" {
		t.Fatal("block 0 should be dirty")
	}
}

func TestBusTransactionAccounting(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 2, Blocks: 1})
	// Read miss from memory: bus.
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: 0}); err != nil {
		t.Fatal(err)
	}
	if m.Stats().BusTransactions != 1 || m.Stats().MemorySupplies != 1 {
		t.Fatalf("miss should use the bus once: %+v", m.Stats())
	}
	// Read hit: silent.
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: 0}); err != nil {
		t.Fatal(err)
	}
	if m.Stats().BusTransactions != 1 {
		t.Fatalf("a hit must not use the bus: %+v", m.Stats())
	}
	// Silent upgrade V-Ex -> Dirty: no bus traffic in Illinois.
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpWrite, Block: 0}); err != nil {
		t.Fatal(err)
	}
	if m.Stats().BusTransactions != 1 {
		t.Fatalf("the silent upgrade must not use the bus: %+v", m.Stats())
	}
	// Remote read miss serviced cache-to-cache: bus.
	if _, err := m.Apply(trace.Ref{Cache: 1, Op: fsm.OpRead, Block: 0}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.BusTransactions != 2 || st.CacheSupplies != 1 || st.WriteBacks != 1 {
		t.Fatalf("dirty supply should be one bus transaction with write-back: %+v", st)
	}
}

func TestUnboundedCapacityNeverEvicts(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 1, Blocks: 16, Capacity: 0})
	for b := 0; b < 16; b++ {
		if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: b}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().CapacityEvictions != 0 {
		t.Fatal("unbounded capacity must never evict")
	}
	for b := 0; b < 16; b++ {
		if !m.resident(0, b) {
			t.Fatalf("block %d not resident", b)
		}
	}
}

func TestRuleCountsDynamicCoverage(t *testing.T) {
	// A sufficiently long random run must exercise every Illinois rule —
	// the dynamic counterpart of core.DeadRules' static liveness.
	p := protocols.Illinois()
	m := newMachine(t, Config{Protocol: p, Caches: 4, Blocks: 4, Capacity: 2})
	w, err := trace.NewUniform(5, 4, 4, 0.4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(w, 100000); err != nil {
		t.Fatal(err)
	}
	counts := m.RuleCounts()
	for i := range p.Rules {
		if counts[p.Rules[i].Name] == 0 {
			t.Errorf("rule %s never fired in 100k references", p.Rules[i].Name)
		}
	}
	// Every operation fires at most one rule; replacements of absent
	// blocks are no-ops and fire none.
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || total > m.Stats().Ops {
		t.Errorf("rule firings (%d) must be positive and at most Ops (%d)", total, m.Stats().Ops)
	}
}

func TestRuleCountsIsolatedCopy(t *testing.T) {
	m := newMachine(t, Config{Protocol: protocols.Illinois(), Caches: 2, Blocks: 1})
	if _, err := m.Apply(trace.Ref{Cache: 0, Op: fsm.OpRead, Block: 0}); err != nil {
		t.Fatal(err)
	}
	counts := m.RuleCounts()
	counts["read-miss-from-memory"] = 999
	if m.RuleCounts()["read-miss-from-memory"] == 999 {
		t.Fatal("RuleCounts must return a copy")
	}
}

func TestLockProtocolCriticalSections(t *testing.T) {
	// Drive Lock-MSI through interleaved critical sections and verify
	// mutual exclusion dynamically: at no point do two caches hold the
	// lock, no read inside a section is stale, and spins are harmless.
	p := protocols.LockMSI()
	m := newMachine(t, Config{Protocol: p, Caches: 4, Blocks: 2})
	w, err := trace.NewCriticalSection(17, 4, 2, 3, protocols.OpAcquire, protocols.OpRelease)
	if err != nil {
		t.Fatal(err)
	}
	acquires, spins := 0, 0
	for k := 0; k < 60000; k++ {
		ref := w.Next()
		res, err := m.Apply(ref)
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if ref.Op == protocols.OpAcquire && res.Rule != nil {
			if res.Rule.Data.Spin {
				spins++
			} else {
				acquires++
				w.Acquired()
			}
		}
		for b := 0; b < 2; b++ {
			locked := 0
			for _, s := range m.Block(b).States {
				if s == protocols.LkLocked {
					locked++
				}
			}
			if locked > 1 {
				t.Fatalf("step %d: mutual exclusion violated on block %d", k, b)
			}
		}
	}
	if m.Stats().StaleReads != 0 {
		t.Fatalf("%d stale reads inside critical sections", m.Stats().StaleReads)
	}
	if acquires == 0 || spins == 0 {
		t.Fatalf("workload did not exercise contention: %d acquires, %d spins", acquires, spins)
	}
	if v := m.CheckInvariants(); len(v) != 0 {
		t.Fatalf("final state: %v", v[0])
	}
}
