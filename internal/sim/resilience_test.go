package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/protocols"
	"repro/internal/runctl"
	"repro/internal/trace"
)

func TestRunContextCanceled(t *testing.T) {
	m, err := New(Config{Protocol: protocols.Illinois(), Caches: 4, Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewUniform(1, 4, 8, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := m.RunContext(ctx, w, 100000)
	if !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if stats.Ops != 0 {
		t.Fatalf("pre-canceled run executed %d ops", stats.Ops)
	}
}

func TestRunContextDeadlineMidRun(t *testing.T) {
	m, err := New(Config{Protocol: protocols.Illinois(), Caches: 4, Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewUniform(2, 4, 8, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(5*time.Millisecond))
	defer cancel()
	// Effectively unbounded op count: only the deadline can end the run.
	stats, err := m.RunContext(ctx, w, 1<<40)
	if !errors.Is(err, runctl.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if stats.Ops == 0 {
		t.Fatal("run should have made progress before the deadline")
	}
	// The machine must be left in a coherent state.
	if v := m.CheckInvariants(); len(v) != 0 {
		t.Fatalf("invariant violations after interrupted run: %v", v)
	}
}
