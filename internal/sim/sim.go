package sim

import (
	"context"
	"fmt"

	"repro/internal/fsm"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// Config parameterizes a machine.
type Config struct {
	// Protocol drives every cache and the bus.
	Protocol *fsm.Protocol
	// Caches is the number of processors/private caches (n ≥ 1).
	Caches int
	// Blocks is the number of distinct memory blocks (≥ 1). Coherence is
	// tracked per block, as in the paper (footnote 1).
	Blocks int
	// Capacity bounds the number of blocks simultaneously resident in one
	// cache; 0 means unbounded. When an access would exceed the capacity,
	// the least-recently-used resident block is replaced first.
	Capacity int
	// Strict enables the CleanShared extension check in CheckInvariants.
	Strict bool
}

// Stats aggregates the classic coherence-traffic counters.
type Stats struct {
	Ops          int64
	Reads        int64
	Writes       int64
	Replacements int64

	ReadHits    int64
	ReadMisses  int64
	WriteHits   int64
	WriteMisses int64

	Invalidations  int64 // remote copies killed by coincident transitions
	Updates        int64 // remote copies refreshed by broadcast writes
	CacheSupplies  int64 // misses serviced cache-to-cache
	MemorySupplies int64 // misses serviced from memory
	WriteBacks     int64 // memory updates (supplier, write-back, write-through)
	// BusTransactions counts operations that needed the bus at all: data
	// movement (supply from cache or memory), a memory update, or a
	// snooping broadcast. A rule with observed transitions is a broadcast
	// whether or not a remote copy currently exists — the issuing cache
	// cannot know, which is exactly why MESI's silent E→M upgrade beats
	// MSI's broadcast upgrade on private data.
	BusTransactions   int64
	CapacityEvictions int64 // replacements forced by finite capacity

	StaleReads int64 // reads returning a value older than the last store
}

// MissRatio returns misses/references for reads and writes combined.
func (s *Stats) MissRatio() float64 {
	refs := s.Reads + s.Writes
	if refs == 0 {
		return 0
	}
	return float64(s.ReadMisses+s.WriteMisses) / float64(refs)
}

// Machine is a running simulated multiprocessor.
type Machine struct {
	cfg   Config
	p     *fsm.Protocol
	block []*fsm.Config // per-block coherence state
	// lru[i] lists cache i's resident blocks, most recently used last.
	lru        [][]int
	stats      Stats
	ruleCounts map[string]int64
	// scratch holds the pre-step state snapshot, reused across steps so the
	// hot path stays allocation-free.
	scratch []fsm.State
	// opsSinceCheck counts operations since the last context check in
	// RunRefs, carried across calls so batch size does not change the
	// cancellation cadence.
	opsSinceCheck int
}

// New builds a machine in the initial state: all caches empty, memory fresh.
func New(cfg Config) (*Machine, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("sim: nil protocol")
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, err
	}
	if cfg.Caches < 1 {
		return nil, fmt.Errorf("sim: need at least one cache, got %d", cfg.Caches)
	}
	if cfg.Blocks < 1 {
		return nil, fmt.Errorf("sim: need at least one block, got %d", cfg.Blocks)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("sim: negative capacity")
	}
	m := &Machine{cfg: cfg, p: cfg.Protocol}
	m.block = make([]*fsm.Config, cfg.Blocks)
	for b := range m.block {
		m.block[b] = fsm.NewConfig(cfg.Protocol, cfg.Caches)
	}
	m.lru = make([][]int, cfg.Caches)
	m.ruleCounts = make(map[string]int64, len(cfg.Protocol.Rules))
	return m, nil
}

// RuleCounts returns how often each protocol rule fired, keyed by rule
// name. Rules that never fired are absent; compare against
// core.DeadRules for the static counterpart of this dynamic coverage.
func (m *Machine) RuleCounts() map[string]int64 {
	out := make(map[string]int64, len(m.ruleCounts))
	for k, v := range m.ruleCounts {
		out[k] = v
	}
	return out
}

// Stats returns a copy of the accumulated counters.
func (m *Machine) Stats() Stats { return m.stats }

// Block exposes the coherence state of one block (for inspection/tests).
func (m *Machine) Block(b int) *fsm.Config { return m.block[b] }

// resident reports whether cache i holds a valid copy of block b.
func (m *Machine) resident(i, b int) bool {
	return m.p.IsValidCopy(m.block[b].States[i])
}

// touch moves block b to the MRU position of cache i's LRU list.
func (m *Machine) touch(i, b int) {
	l := m.lru[i]
	for k, x := range l {
		if x == b {
			copy(l[k:], l[k+1:])
			l[len(l)-1] = b
			return
		}
	}
	m.lru[i] = append(l, b)
}

// drop removes block b from cache i's LRU list.
func (m *Machine) drop(i, b int) {
	l := m.lru[i]
	for k, x := range l {
		if x == b {
			m.lru[i] = append(l[:k], l[k+1:]...)
			return
		}
	}
}

// Apply issues one memory reference and returns the step result of the
// protocol rule that fired. A read or write to a non-resident block with a
// full cache first replaces the LRU resident block.
func (m *Machine) Apply(ref trace.Ref) (fsm.StepResult, error) {
	var zero fsm.StepResult
	if ref.Cache < 0 || ref.Cache >= m.cfg.Caches {
		return zero, fmt.Errorf("sim: cache %d out of range", ref.Cache)
	}
	if ref.Block < 0 || ref.Block >= m.cfg.Blocks {
		return zero, fmt.Errorf("sim: block %d out of range", ref.Block)
	}

	// Capacity management for block-allocating operations.
	if ref.Op != fsm.OpReplace && m.cfg.Capacity > 0 && !m.resident(ref.Cache, ref.Block) {
		for len(m.lru[ref.Cache]) >= m.cfg.Capacity {
			victim := m.lru[ref.Cache][0]
			if _, err := m.step(trace.Ref{Cache: ref.Cache, Op: fsm.OpReplace, Block: victim}); err != nil {
				return zero, err
			}
			m.stats.CapacityEvictions++
		}
	}
	return m.step(ref)
}

// step applies the reference to the block's coherence state and updates the
// statistics.
func (m *Machine) step(ref trace.Ref) (fsm.StepResult, error) {
	cfg := m.block[ref.Block]
	before := append(m.scratch[:0], cfg.States...)
	m.scratch = before
	wasResident := m.p.IsValidCopy(before[ref.Cache])

	res, err := fsm.Step(m.p, cfg, ref.Cache, ref.Op)
	if err != nil {
		return res, err
	}

	m.stats.Ops++
	switch ref.Op {
	case fsm.OpRead:
		m.stats.Reads++
		if wasResident {
			m.stats.ReadHits++
		} else {
			m.stats.ReadMisses++
		}
		if res.Rule != nil && !res.Rule.Data.Spin && res.ReadVersion != cfg.Latest {
			m.stats.StaleReads++
		}
	case fsm.OpWrite:
		m.stats.Writes++
		if wasResident {
			m.stats.WriteHits++
		} else {
			m.stats.WriteMisses++
		}
	case fsm.OpReplace:
		m.stats.Replacements++
	}

	if res.Rule != nil {
		m.ruleCounts[res.Rule.Name]++
		d := res.Rule.Data
		// Observed transitions and sharer updates are snooping broadcasts:
		// they occupy the bus even when no remote copy happens to exist.
		bus := len(res.Rule.Observe) > 0 || (d.Store && d.UpdateSharers)
		if res.Supplier >= 0 {
			m.stats.CacheSupplies++
			bus = true
		}
		if d.Source == fsm.SrcMemory {
			m.stats.MemorySupplies++
			bus = true
		}
		if d.SupplierWriteBack || d.WriteBackSelf || (d.Store && d.WriteThrough) {
			m.stats.WriteBacks++
			bus = true
		}
		// Coincident effects on remote copies. Only the referenced block
		// can change residency in one step, so reconciling the remote LRU
		// lists here (rather than rescanning every list) keeps the hot
		// path linear in caches whose state actually moved.
		for j, prev := range before {
			if j == ref.Cache {
				continue
			}
			next := cfg.States[j]
			if prev != next && m.p.IsValidCopy(prev) && !m.p.IsValidCopy(next) {
				m.stats.Invalidations++
				bus = true
				m.drop(j, ref.Block)
			}
		}
		if d.Store && d.UpdateSharers {
			for j := range before {
				if j != ref.Cache && m.p.IsValidCopy(cfg.States[j]) {
					m.stats.Updates++
					bus = true
				}
			}
		}
		if bus {
			m.stats.BusTransactions++
		}
	}

	// Maintain the issuing cache's residency bookkeeping (remote caches
	// were reconciled in the coincident-transition loop above).
	if m.resident(ref.Cache, ref.Block) {
		m.touch(ref.Cache, ref.Block)
	} else {
		m.drop(ref.Cache, ref.Block)
	}
	return res, nil
}

// Run drives the machine with nops references from the workload, stopping
// early on an execution error. The returned stats are the machine's
// cumulative counters.
func (m *Machine) Run(w trace.Workload, nops int) (Stats, error) {
	return m.RunContext(context.Background(), w, nops)
}

// ctxCheckInterval is how many operations run between context checks: a
// power of two so the modulo folds to a mask, coarse enough that the check
// does not perturb the simulator's throughput.
const ctxCheckInterval = 1024

// runRefsBatch is the workload pull-batch size RunContext uses when
// feeding RunRefs: large enough to amortize the call, small enough that a
// canceled run stops promptly.
const runRefsBatch = 1024

// RunContext is Run under a context: cancellation and deadlines are checked
// every ctxCheckInterval operations, returning the cumulative stats so far
// with an error matching runctl.ErrCanceled or runctl.ErrDeadline. It is a
// wrapper over RunRefs, pulling references from the workload in batches.
func (m *Machine) RunContext(ctx context.Context, w trace.Workload, nops int) (Stats, error) {
	var buf [runRefsBatch]trace.Ref
	for done := 0; done < nops; {
		n := nops - done
		if n > runRefsBatch {
			n = runRefsBatch
		}
		batch := buf[:n]
		for i := range batch {
			batch[i] = w.Next()
		}
		if _, err := m.RunRefs(ctx, batch); err != nil {
			return m.stats, err
		}
		done += n
	}
	return m.stats, nil
}

// RunRefs feeds an explicit reference slice to the machine — the step-level
// entry point the trace-replay engine (internal/replay) batches decoded
// references into, with no shim Workload adapter in between. Cancellation
// and deadlines are checked every ctxCheckInterval operations, with the
// cadence carried across calls so batch size does not change it. The
// returned stats are the machine's cumulative counters; on an early stop
// the error matches runctl.ErrCanceled or runctl.ErrDeadline and reports
// the machine's lifetime operation count.
func (m *Machine) RunRefs(ctx context.Context, refs []trace.Ref) (Stats, error) {
	for k := range refs {
		if m.opsSinceCheck <= 0 {
			m.opsSinceCheck = ctxCheckInterval
			if err := runctl.FromContext(ctx); err != nil {
				return m.stats, fmt.Errorf("sim: stopped after %d ops: %w", m.stats.Ops, err)
			}
		}
		m.opsSinceCheck--
		if _, err := m.Apply(refs[k]); err != nil {
			return m.stats, fmt.Errorf("sim: op %d: %w", m.stats.Ops, err)
		}
	}
	return m.stats, nil
}

// CheckInvariants evaluates the protocol invariants over every block's
// current state and returns all violations.
func (m *Machine) CheckInvariants() []fsm.Violation {
	var out []fsm.Violation
	for b := range m.block {
		out = append(out, fsm.CheckConfig(m.p, m.block[b], m.cfg.Strict)...)
	}
	return out
}
