package sim

import (
	"context"
	"fmt"

	"repro/internal/compile"
	"repro/internal/fsm"
	"repro/internal/runctl"
	"repro/internal/trace"
)

// Config parameterizes a machine.
type Config struct {
	// Protocol drives every cache and the bus.
	Protocol *fsm.Protocol
	// Compiled optionally supplies a pre-built compiled form of Protocol
	// (compile.Compile output), letting callers that build many machines —
	// the replay fan-out, repeated service jobs — share one lowering. When
	// nil, or when it was compiled from a different protocol value, New
	// compiles Protocol itself.
	Compiled *compile.Protocol
	// Caches is the number of processors/private caches (n ≥ 1).
	Caches int
	// Blocks is the number of distinct memory blocks (≥ 1). Coherence is
	// tracked per block, as in the paper (footnote 1).
	Blocks int
	// Capacity bounds the number of blocks simultaneously resident in one
	// cache; 0 means unbounded. When an access would exceed the capacity,
	// the least-recently-used resident block is replaced first.
	Capacity int
	// Strict enables the CleanShared extension check in CheckInvariants.
	Strict bool
}

// Stats aggregates the classic coherence-traffic counters.
type Stats struct {
	Ops          int64
	Reads        int64
	Writes       int64
	Replacements int64

	ReadHits    int64
	ReadMisses  int64
	WriteHits   int64
	WriteMisses int64

	Invalidations  int64 // remote copies killed by coincident transitions
	Updates        int64 // remote copies refreshed by broadcast writes
	CacheSupplies  int64 // misses serviced cache-to-cache
	MemorySupplies int64 // misses serviced from memory
	WriteBacks     int64 // memory updates (supplier, write-back, write-through)
	// BusTransactions counts operations that needed the bus at all: data
	// movement (supply from cache or memory), a memory update, or a
	// snooping broadcast. A rule with observed transitions is a broadcast
	// whether or not a remote copy currently exists — the issuing cache
	// cannot know, which is exactly why MESI's silent E→M upgrade beats
	// MSI's broadcast upgrade on private data.
	BusTransactions   int64
	CapacityEvictions int64 // replacements forced by finite capacity

	StaleReads int64 // reads returning a value older than the last store
}

// MissRatio returns misses/references for reads and writes combined.
func (s *Stats) MissRatio() float64 {
	refs := s.Reads + s.Writes
	if refs == 0 {
		return 0
	}
	return float64(s.ReadMisses+s.WriteMisses) / float64(refs)
}

// Machine is a running simulated multiprocessor. Every block's coherence
// state lives in the compiled integer representation (internal/compile);
// stepping is jump-table dispatch with no string comparisons or map lookups,
// and the interpreted fsm.Config form is materialized only at inspection
// points (Block, CheckInvariants, Apply's returned StepResult).
type Machine struct {
	cfg   Config
	p     *fsm.Protocol
	cp    *compile.Protocol
	block []*compile.Config // per-block coherence state
	// opIdx resolves a reference's op to its compiled index once per step;
	// ops absent from the protocol are no-ops, exactly as in fsm.Step.
	opIdx map[fsm.Op]int
	// lru[i] lists cache i's resident blocks, most recently used last.
	lru   [][]int
	stats Stats
	// ruleCounts counts firings by compiled rule ID (declaration index);
	// RuleCounts materializes the name-keyed map on demand.
	ruleCounts []int64
	// scratch holds the pre-step state snapshot, reused across steps so the
	// hot path stays allocation-free.
	scratch []int32
	// opsSinceCheck counts operations since the last context check in
	// RunRefs, carried across calls so batch size does not change the
	// cancellation cadence.
	opsSinceCheck int
}

// New builds a machine in the initial state: all caches empty, memory fresh.
func New(cfg Config) (*Machine, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("sim: nil protocol")
	}
	cp := cfg.Compiled
	if cp == nil || cp.Src != cfg.Protocol {
		var err error
		if cp, err = compile.Compile(cfg.Protocol); err != nil {
			return nil, err
		}
	}
	if cfg.Caches < 1 {
		return nil, fmt.Errorf("sim: need at least one cache, got %d", cfg.Caches)
	}
	if cfg.Blocks < 1 {
		return nil, fmt.Errorf("sim: need at least one block, got %d", cfg.Blocks)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("sim: negative capacity")
	}
	m := &Machine{cfg: cfg, p: cfg.Protocol, cp: cp}
	m.block = make([]*compile.Config, cfg.Blocks)
	for b := range m.block {
		m.block[b] = cp.NewConfig(cfg.Caches)
	}
	m.opIdx = make(map[fsm.Op]int, len(cfg.Protocol.Ops))
	for k, op := range cfg.Protocol.Ops {
		m.opIdx[op] = k
	}
	m.lru = make([][]int, cfg.Caches)
	m.ruleCounts = make([]int64, len(cfg.Protocol.Rules))
	return m, nil
}

// RuleCounts returns how often each protocol rule fired, keyed by rule
// name. Rules that never fired are absent; compare against
// core.DeadRules for the static counterpart of this dynamic coverage.
func (m *Machine) RuleCounts() map[string]int64 {
	out := make(map[string]int64, len(m.ruleCounts))
	for id, v := range m.ruleCounts {
		if v != 0 {
			out[m.p.Rules[id].Name] = v
		}
	}
	return out
}

// Stats returns a copy of the accumulated counters.
func (m *Machine) Stats() Stats { return m.stats }

// Block returns a snapshot of the coherence state of one block (for
// inspection/tests), materialized from the compiled representation.
func (m *Machine) Block(b int) *fsm.Config {
	var c fsm.Config
	m.cp.Decode(m.block[b], &c)
	return &c
}

// resident reports whether cache i holds a valid copy of block b.
func (m *Machine) resident(i, b int) bool {
	return m.cp.ValidCopy[m.block[b].States[i]]
}

// touch moves block b to the MRU position of cache i's LRU list.
func (m *Machine) touch(i, b int) {
	l := m.lru[i]
	for k, x := range l {
		if x == b {
			copy(l[k:], l[k+1:])
			l[len(l)-1] = b
			return
		}
	}
	m.lru[i] = append(l, b)
}

// drop removes block b from cache i's LRU list.
func (m *Machine) drop(i, b int) {
	l := m.lru[i]
	for k, x := range l {
		if x == b {
			m.lru[i] = append(l[:k], l[k+1:]...)
			return
		}
	}
}

// Apply issues one memory reference and returns the step result of the
// protocol rule that fired. A read or write to a non-resident block with a
// full cache first replaces the LRU resident block.
func (m *Machine) Apply(ref trace.Ref) (fsm.StepResult, error) {
	var zero fsm.StepResult
	if ref.Cache < 0 || ref.Cache >= m.cfg.Caches {
		return zero, fmt.Errorf("sim: cache %d out of range", ref.Cache)
	}
	if ref.Block < 0 || ref.Block >= m.cfg.Blocks {
		return zero, fmt.Errorf("sim: block %d out of range", ref.Block)
	}

	// Capacity management for block-allocating operations.
	if ref.Op != fsm.OpReplace && m.cfg.Capacity > 0 && !m.resident(ref.Cache, ref.Block) {
		for len(m.lru[ref.Cache]) >= m.cfg.Capacity {
			victim := m.lru[ref.Cache][0]
			if _, err := m.step(trace.Ref{Cache: ref.Cache, Op: fsm.OpReplace, Block: victim}); err != nil {
				return zero, err
			}
			m.stats.CapacityEvictions++
		}
	}
	return m.step(ref)
}

// step applies the reference to the block's coherence state and updates the
// statistics.
func (m *Machine) step(ref trace.Ref) (fsm.StepResult, error) {
	cfg := m.block[ref.Block]
	before := append(m.scratch[:0], cfg.States...)
	m.scratch = before
	wasResident := m.cp.ValidCopy[before[ref.Cache]]

	cres := compile.StepResult{RuleID: -1, ReadVersion: fsm.NoData, Supplier: -1}
	if k, ok := m.opIdx[ref.Op]; ok {
		var err error
		if cres, err = m.cp.Step(cfg, ref.Cache, k); err != nil {
			return m.cp.Result(cres), err
		}
	} else if ref.Cache >= len(cfg.States) {
		// fsm.Step bounds-checks the cache before dispatching, even for
		// ops the protocol never declares.
		return m.cp.Result(cres), fmt.Errorf("fsm: step: cache index %d out of range", ref.Cache)
	}

	m.stats.Ops++
	switch ref.Op {
	case fsm.OpRead:
		m.stats.Reads++
		if wasResident {
			m.stats.ReadHits++
		} else {
			m.stats.ReadMisses++
		}
		if cres.RuleID >= 0 && !m.cp.Rules[cres.RuleID].Spin && cres.ReadVersion != cfg.Latest {
			m.stats.StaleReads++
		}
	case fsm.OpWrite:
		m.stats.Writes++
		if wasResident {
			m.stats.WriteHits++
		} else {
			m.stats.WriteMisses++
		}
	case fsm.OpReplace:
		m.stats.Replacements++
	}

	if cres.RuleID >= 0 {
		m.ruleCounts[cres.RuleID]++
		r := &m.cp.Rules[cres.RuleID]
		// Observed transitions and sharer updates are snooping broadcasts:
		// they occupy the bus even when no remote copy happens to exist.
		bus := r.HasObserve || (r.Store && r.UpdateSharers)
		if cres.Supplier >= 0 {
			m.stats.CacheSupplies++
			bus = true
		}
		if r.Source == fsm.SrcMemory {
			m.stats.MemorySupplies++
			bus = true
		}
		if r.SupplierWriteBack || r.WriteBackSelf || (r.Store && r.WriteThrough) {
			m.stats.WriteBacks++
			bus = true
		}
		// Coincident effects on remote copies. Only the referenced block
		// can change residency in one step, so reconciling the remote LRU
		// lists here (rather than rescanning every list) keeps the hot
		// path linear in caches whose state actually moved.
		for j, prev := range before {
			if j == ref.Cache {
				continue
			}
			next := cfg.States[j]
			if prev != next && m.cp.ValidCopy[prev] && !m.cp.ValidCopy[next] {
				m.stats.Invalidations++
				bus = true
				m.drop(j, ref.Block)
			}
		}
		if r.Store && r.UpdateSharers {
			for j := range before {
				if j != ref.Cache && m.cp.ValidCopy[cfg.States[j]] {
					m.stats.Updates++
					bus = true
				}
			}
		}
		if bus {
			m.stats.BusTransactions++
		}
	}

	// Maintain the issuing cache's residency bookkeeping (remote caches
	// were reconciled in the coincident-transition loop above).
	if m.resident(ref.Cache, ref.Block) {
		m.touch(ref.Cache, ref.Block)
	} else {
		m.drop(ref.Cache, ref.Block)
	}
	return m.cp.Result(cres), nil
}

// Run drives the machine with nops references from the workload, stopping
// early on an execution error. The returned stats are the machine's
// cumulative counters.
func (m *Machine) Run(w trace.Workload, nops int) (Stats, error) {
	return m.RunContext(context.Background(), w, nops)
}

// ctxCheckInterval is how many operations run between context checks: a
// power of two so the modulo folds to a mask, coarse enough that the check
// does not perturb the simulator's throughput.
const ctxCheckInterval = 1024

// runRefsBatch is the workload pull-batch size RunContext uses when
// feeding RunRefs: large enough to amortize the call, small enough that a
// canceled run stops promptly.
const runRefsBatch = 1024

// RunContext is Run under a context: cancellation and deadlines are checked
// every ctxCheckInterval operations, returning the cumulative stats so far
// with an error matching runctl.ErrCanceled or runctl.ErrDeadline. It is a
// wrapper over RunRefs, pulling references from the workload in batches.
func (m *Machine) RunContext(ctx context.Context, w trace.Workload, nops int) (Stats, error) {
	var buf [runRefsBatch]trace.Ref
	for done := 0; done < nops; {
		n := nops - done
		if n > runRefsBatch {
			n = runRefsBatch
		}
		batch := buf[:n]
		for i := range batch {
			batch[i] = w.Next()
		}
		if _, err := m.RunRefs(ctx, batch); err != nil {
			return m.stats, err
		}
		done += n
	}
	return m.stats, nil
}

// RunRefs feeds an explicit reference slice to the machine — the step-level
// entry point the trace-replay engine (internal/replay) batches decoded
// references into, with no shim Workload adapter in between. Cancellation
// and deadlines are checked every ctxCheckInterval operations, with the
// cadence carried across calls so batch size does not change it. The
// returned stats are the machine's cumulative counters; on an early stop
// the error matches runctl.ErrCanceled or runctl.ErrDeadline and reports
// the machine's lifetime operation count.
func (m *Machine) RunRefs(ctx context.Context, refs []trace.Ref) (Stats, error) {
	for k := range refs {
		if m.opsSinceCheck <= 0 {
			m.opsSinceCheck = ctxCheckInterval
			if err := runctl.FromContext(ctx); err != nil {
				return m.stats, fmt.Errorf("sim: stopped after %d ops: %w", m.stats.Ops, err)
			}
		}
		m.opsSinceCheck--
		if _, err := m.Apply(refs[k]); err != nil {
			return m.stats, fmt.Errorf("sim: op %d: %w", m.stats.Ops, err)
		}
	}
	return m.stats, nil
}

// CheckInvariants evaluates the protocol invariants over every block's
// current state and returns all violations.
func (m *Machine) CheckInvariants() []fsm.Violation {
	var out []fsm.Violation
	var c fsm.Config
	for b := range m.block {
		m.cp.Decode(m.block[b], &c)
		out = append(out, fsm.CheckConfig(m.p, &c, m.cfg.Strict)...)
	}
	return out
}
