// Package mutate injects protocol design faults. Each mutation operator
// produces a plausible-but-wrong variant of a correct protocol — the kind of
// bug the paper's verification method is meant to catch at the early design
// stage (a forgotten invalidation, a skipped write-back, a block loaded in
// an exclusive state while copies exist elsewhere). The test suite and the
// mutant-detection experiment verify that the symbolic verifier flags every
// mutant as erroneous while the original verifies cleanly.
package mutate

import (
	"fmt"

	"repro/internal/fsm"
)

// Mutant pairs a mutated protocol with what was broken.
type Mutant struct {
	// Protocol is the mutated clone; its Name is suffixed with the
	// mutation kind.
	Protocol *fsm.Protocol
	// Kind is the mutation operator's name.
	Kind string
	// Rule is the name of the mutated rule.
	Rule string
	// Detail describes the injected fault.
	Detail string
	// NeedsStrict is true when only the strict (CleanShared) extension
	// check can see the fault symbolically.
	NeedsStrict bool
}

// Operator transforms one rule in place, returning a description, or false
// when it does not apply to the rule.
type operator struct {
	kind  string
	apply func(p *fsm.Protocol, r *fsm.Rule) (string, bool)
}

var operators = []operator{
	{
		// A write that forgets to invalidate (or degrade) remote copies:
		// the classic coherence bug. Remote caches keep readable stale
		// copies.
		kind: "drop-invalidation",
		apply: func(p *fsm.Protocol, r *fsm.Rule) (string, bool) {
			if r.On != fsm.OpWrite || len(r.Observe) == 0 {
				return "", false
			}
			killed := false
			for from, to := range r.Observe {
				if p.IsValidCopy(from) && !p.IsValidCopy(to) {
					killed = true
				}
			}
			if !killed {
				return "", false
			}
			r.Observe = nil
			return "write no longer invalidates remote copies", true
		},
	},
	{
		// A replacement that forgets to write a dirty block back: memory
		// keeps the obsolete value and later misses read it.
		kind: "skip-writeback",
		apply: func(p *fsm.Protocol, r *fsm.Rule) (string, bool) {
			if r.On != fsm.OpReplace || !r.Data.WriteBackSelf {
				return "", false
			}
			r.Data.WriteBackSelf = false
			return "dirty replacement no longer updates memory", true
		},
	},
	{
		// A miss serviced by a dirty owner without the simultaneous memory
		// update: the copies are clean-state but memory is stale, and once
		// they are silently replaced the stale memory value resurfaces.
		kind: "skip-supplier-writeback",
		apply: func(p *fsm.Protocol, r *fsm.Rule) (string, bool) {
			if !r.Data.SupplierWriteBack {
				return "", false
			}
			// Only meaningful when the copies end in states that replace
			// silently; keep it general and let the verifier decide.
			if r.Data.Store {
				return "", false // the store already obsoletes memory
			}
			r.Data.SupplierWriteBack = false
			return "dirty supplier no longer updates memory on a read miss", true
		},
	},
	{
		// A broadcast write that forgets to update the other cached
		// copies: sharers keep readable stale data.
		kind: "forget-update-sharers",
		apply: func(p *fsm.Protocol, r *fsm.Rule) (string, bool) {
			if !r.Data.Store || !r.Data.UpdateSharers {
				return "", false
			}
			r.Data.UpdateSharers = false
			return "broadcast write no longer updates remote copies", true
		},
	},
	{
		// A write-through that silently stops reaching memory.
		kind: "forget-write-through",
		apply: func(p *fsm.Protocol, r *fsm.Rule) (string, bool) {
			if !r.Data.Store || !r.Data.WriteThrough {
				return "", false
			}
			r.Data.WriteThrough = false
			return "write-through no longer updates memory", true
		},
	},
	{
		// A read miss that loads the block in an exclusive state although
		// other copies exist (wrong use of the sharing-detection function).
		kind: "exclusive-on-shared-miss",
		apply: func(p *fsm.Protocol, r *fsm.Rule) (string, bool) {
			if p.Characteristic != fsm.CharSharing {
				return "", false // would break CharNull validation
			}
			if r.On != fsm.OpRead || r.Guard.Kind != fsm.GuardAnyOther {
				return "", false
			}
			if len(p.Inv.Exclusive) == 0 || p.IsValidCopy(r.From) {
				return "", false // only read misses qualify
			}
			excl := p.Inv.Exclusive[0]
			if r.Next == excl {
				return "", false
			}
			r.Next = excl
			return fmt.Sprintf("read miss loads %s although remote copies exist", excl), true
		},
	},
}

// Catalog generates every applicable mutant of p. Each mutation changes
// exactly one rule; the first rule each operator applies to is mutated.
// All returned protocols pass Validate (mutations that would not are
// skipped), so the verifier sees them as legitimate — but wrong — designs.
func Catalog(p *fsm.Protocol) []Mutant {
	var out []Mutant
	for _, op := range operators {
		for ri := range p.Rules {
			clone := p.Clone()
			clone.Name = p.Name + "!" + op.kind
			detail, ok := op.apply(clone, &clone.Rules[ri])
			if !ok {
				continue
			}
			if clone.Validate() != nil {
				continue
			}
			out = append(out, Mutant{
				Protocol: clone,
				Kind:     op.kind,
				Rule:     p.Rules[ri].Name,
				Detail:   detail,
			})
			break // one mutant per operator kind
		}
	}
	return out
}
