package mutate

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/symbolic"
)

func TestCatalogProducesMutantsForEveryProtocol(t *testing.T) {
	for _, p := range protocols.All() {
		muts := Catalog(p)
		if len(muts) == 0 {
			t.Errorf("%s: no mutants generated", p.Name)
		}
	}
}

func TestMutantsValidate(t *testing.T) {
	for _, p := range protocols.All() {
		for _, m := range Catalog(p) {
			if err := m.Protocol.Validate(); err != nil {
				t.Errorf("%s: mutant does not validate: %v", m.Protocol.Name, err)
			}
		}
	}
}

func TestMutantsAreNamedAndDescribed(t *testing.T) {
	for _, m := range Catalog(protocols.Illinois()) {
		if !strings.Contains(m.Protocol.Name, "!") {
			t.Errorf("mutant name %q lacks the kind suffix", m.Protocol.Name)
		}
		if m.Kind == "" || m.Rule == "" || m.Detail == "" {
			t.Errorf("mutant %q incompletely described: %+v", m.Protocol.Name, m)
		}
	}
}

func TestCatalogDoesNotMutateOriginal(t *testing.T) {
	p := protocols.Illinois()
	before := len(p.Rules)
	var observeBefore []int
	for _, r := range p.Rules {
		observeBefore = append(observeBefore, len(r.Observe))
	}
	_ = Catalog(p)
	if len(p.Rules) != before {
		t.Fatal("catalog changed the rule count of the original")
	}
	for i, r := range p.Rules {
		if len(r.Observe) != observeBefore[i] {
			t.Fatalf("catalog mutated rule %s of the original", r.Name)
		}
	}
	res, err := symbolic.Expand(p, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatal("original corrupted by Catalog")
	}
}

func TestOneMutantPerKind(t *testing.T) {
	seen := map[string]int{}
	for _, m := range Catalog(protocols.Firefly()) {
		seen[m.Kind]++
	}
	for kind, n := range seen {
		if n != 1 {
			t.Errorf("kind %s appears %d times for one protocol", kind, n)
		}
	}
}

func TestExpectedKindsPerProtocol(t *testing.T) {
	kindSet := func(name string) map[string]bool {
		p, err := protocols.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, m := range Catalog(p) {
			out[m.Kind] = true
		}
		return out
	}
	ill := kindSet("illinois")
	for _, want := range []string{"drop-invalidation", "skip-writeback",
		"skip-supplier-writeback", "exclusive-on-shared-miss"} {
		if !ill[want] {
			t.Errorf("illinois: missing mutant kind %s", want)
		}
	}
	ff := kindSet("firefly")
	for _, want := range []string{"forget-update-sharers", "forget-write-through"} {
		if !ff[want] {
			t.Errorf("firefly: missing mutant kind %s", want)
		}
	}
	// CharNull protocols must not receive the sharing-dependent mutant.
	if kindSet("msi")["exclusive-on-shared-miss"] {
		t.Error("msi: exclusive-on-shared-miss requires a sharing-detection protocol")
	}
}

func TestEveryMutantIsRefutedSymbolically(t *testing.T) {
	total := 0
	for _, p := range protocols.All() {
		for _, m := range Catalog(p) {
			total++
			res, err := symbolic.Expand(m.Protocol, symbolic.Options{Strict: true})
			if err != nil {
				t.Fatalf("%s: %v", m.Protocol.Name, err)
			}
			if res.OK() {
				t.Errorf("mutant %s (%s on rule %s) escaped detection",
					m.Protocol.Name, m.Detail, m.Rule)
			}
		}
	}
	if total < 20 {
		t.Errorf("only %d mutants across the suite; expected a larger catalog", total)
	}
}

func TestMutantsChangeBehavior(t *testing.T) {
	// Each mutant must actually differ from its original in the rule it
	// claims to break.
	for _, p := range protocols.All() {
		orig := map[string]string{}
		for i := range p.Rules {
			orig[p.Rules[i].Name] = ruleFingerprint(&p.Rules[i])
		}
		for _, m := range Catalog(p) {
			changed := false
			for i := range m.Protocol.Rules {
				r := &m.Protocol.Rules[i]
				if orig[r.Name] != ruleFingerprint(r) {
					changed = true
				}
			}
			if !changed {
				t.Errorf("mutant %s does not differ from the original", m.Protocol.Name)
			}
		}
	}
}

// ruleFingerprint summarizes the behaviorally relevant fields of a rule.
func ruleFingerprint(r *fsm.Rule) string {
	keys := make([]string, 0, len(r.Observe))
	for from, to := range r.Observe {
		keys = append(keys, string(from)+">"+string(to))
	}
	sort.Strings(keys)
	return fmt.Sprintf("%s|%s|%v|%v|%v", r.Next, strings.Join(keys, ","), r.Guard, r.Data.Suppliers,
		[]bool{r.Data.Store, r.Data.WriteThrough, r.Data.UpdateSharers,
			r.Data.SupplierWriteBack, r.Data.WriteBackSelf, r.Data.DropSelf})
}
