package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/protocols"
)

func TestFig1HasFullIllinoisRuleSet(t *testing.T) {
	l, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Edges) != 15 {
		t.Fatalf("Figure 1 diagram has %d edges, want 15 (one per rule)", len(l.Edges))
	}
}

func TestFig4HeadlineNumbers(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Graph.Nodes) != 5 {
		t.Fatalf("essential states = %d, paper says 5", len(r.Graph.Nodes))
	}
	if v := r.Report.Symbolic.Visits; v != 23 {
		t.Fatalf("visits = %d, expected 23 (paper: 22, see EXPERIMENTS.md)", v)
	}
	if len(r.Report.Symbolic.Log) == 0 {
		t.Fatal("Fig4 must record the expansion log for A.2")
	}
}

func TestComplexityGrowthShape(t *testing.T) {
	p := protocols.Illinois()
	rows, err := Complexity(p, []int{2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].StrictStates <= rows[i-1].StrictStates {
			t.Errorf("strict states must grow with n: %+v", rows)
		}
		if rows[i].StrictVisits <= rows[i-1].StrictVisits {
			t.Errorf("strict visits must grow with n: %+v", rows)
		}
		if rows[i].SymbolicStates != rows[0].SymbolicStates ||
			rows[i].SymbolicVisits != rows[0].SymbolicVisits {
			t.Errorf("symbolic cost must be independent of n: %+v", rows)
		}
	}
	// The §3.1 shape: strict grows super-linearly (roughly mⁿ); by n=6 it
	// must dwarf the constant symbolic visit count.
	last := rows[len(rows)-1]
	if last.StrictVisits < 10*last.SymbolicVisits {
		t.Errorf("by n=6 enumeration (%d visits) should dwarf symbolic (%d visits)",
			last.StrictVisits, last.SymbolicVisits)
	}
	if last.CountingStates >= last.StrictStates {
		t.Errorf("counting equivalence must compress the strict space: %+v", last)
	}
}

func TestComplexityExponentialRatio(t *testing.T) {
	// Strict-state growth factor must approach m=4 per added cache for
	// Illinois as n grows (the mⁿ claim of Section 3.1).
	p := protocols.Illinois()
	rows, err := Complexity(p, []int{6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	r1 := float64(rows[1].StrictStates) / float64(rows[0].StrictStates)
	r2 := float64(rows[2].StrictStates) / float64(rows[1].StrictStates)
	if r1 < 1.5 || r2 < 1.5 {
		t.Errorf("growth factors %.2f, %.2f: not exponential-shaped", r1, r2)
	}
}

func TestSuiteAllPermissible(t *testing.T) {
	rows, err := Suite([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("suite has %d protocols, want 12", len(rows))
	}
	for _, r := range rows {
		if !r.Report.OK() {
			t.Errorf("%s failed verification", r.Report.Protocol.Name)
		}
	}
}

func TestMutantsAllDetected(t *testing.T) {
	rows, err := MutantsExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 20 {
		t.Fatalf("only %d mutants", len(rows))
	}
	for _, r := range rows {
		if !r.Detected {
			t.Errorf("mutant %s (%s) escaped", r.Mutant.Protocol.Name, r.Mutant.Detail)
		}
	}
}

func TestWorkloadsCoherent(t *testing.T) {
	rows, err := Workloads(4, 8, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12*4 {
		t.Fatalf("want 12 protocols × 4 workloads, got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Stats.StaleReads != 0 {
			t.Errorf("%s/%s: stale reads", r.Protocol, r.Workload)
		}
		if r.Stats.Ops == 0 {
			t.Errorf("%s/%s: no operations recorded", r.Protocol, r.Workload)
		}
	}
}

func TestWorkloadsShowProtocolContrasts(t *testing.T) {
	// The qualitative contrast from Archibald & Baer: on producer-consumer
	// sharing, write-broadcast protocols (Firefly, Dragon) never invalidate
	// — consumers keep their copies — while write-invalidate protocols
	// (Illinois) invalidate on every producer store.
	rows, err := Workloads(8, 8, 50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	get := func(proto, wl string) WorkloadRow {
		for _, r := range rows {
			if r.Protocol == proto && r.Workload == wl {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", proto, wl)
		return WorkloadRow{}
	}
	ill := get("Illinois", "producer-consumer")
	ff := get("Firefly", "producer-consumer")
	dr := get("Dragon", "producer-consumer")
	if ff.Stats.Invalidations != 0 || dr.Stats.Invalidations != 0 {
		t.Errorf("broadcast protocols must not invalidate: firefly=%d dragon=%d",
			ff.Stats.Invalidations, dr.Stats.Invalidations)
	}
	if ill.Stats.Invalidations == 0 {
		t.Error("Illinois must invalidate under producer-consumer sharing")
	}
	if ff.Stats.Updates == 0 || dr.Stats.Updates == 0 {
		t.Error("broadcast protocols must record update traffic")
	}
	// Consumers keep their copies under broadcast: the miss ratio must be
	// lower than under invalidation.
	if ff.Stats.MissRatio() >= ill.Stats.MissRatio() {
		t.Errorf("firefly miss ratio %.4f should beat illinois %.4f on producer-consumer",
			ff.Stats.MissRatio(), ill.Stats.MissRatio())
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	renders := []struct {
		name string
		f    func() (string, error)
	}{
		{"fig1", func() (string, error) { var b bytes.Buffer; err := RenderFig1(&b); return b.String(), err }},
		{"fig4", func() (string, error) { var b bytes.Buffer; err := RenderFig4(&b); return b.String(), err }},
		{"fig4table", func() (string, error) { var b bytes.Buffer; err := RenderFig4Table(&b); return b.String(), err }},
		{"a2", func() (string, error) { var b bytes.Buffer; err := RenderA2(&b); return b.String(), err }},
		{"suite", func() (string, error) { var b bytes.Buffer; err := RenderSuite(&b); return b.String(), err }},
		{"mutants", func() (string, error) { var b bytes.Buffer; err := RenderMutants(&b); return b.String(), err }},
		{"complexity", func() (string, error) {
			var b bytes.Buffer
			err := RenderComplexity(&b, []string{"illinois"}, []int{2, 3})
			return b.String(), err
		}},
		{"workloads", func() (string, error) {
			var b bytes.Buffer
			err := RenderWorkloads(&b, 2, 4, 2000, 1)
			return b.String(), err
		}},
	}
	for _, r := range renders {
		t.Run(r.name, func(t *testing.T) {
			out, err := r.f()
			if err != nil {
				t.Fatal(err)
			}
			if len(strings.TrimSpace(out)) == 0 {
				t.Fatal("renderer produced no output")
			}
		})
	}
}

func TestRenderFig4MentionsPaperNumbers(t *testing.T) {
	var b bytes.Buffer
	if err := RenderFig4(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"paper: 5", "paper: 22", "(Invalid+)", "digraph"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}
