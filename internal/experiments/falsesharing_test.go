package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFalseSharingBlockSizeEffect(t *testing.T) {
	rows, err := FalseSharingSweep([]string{"illinois", "firefly"},
		4, 4, 30000, 11, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	get := func(proto string, wpb int) FalseSharingRow {
		for _, r := range rows {
			if r.Protocol == proto && r.WordsPerBlock == wpb {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", proto, wpb)
		return FalseSharingRow{}
	}

	// One word per block: processors never share a block, so there is no
	// coherence traffic at all (only cold misses).
	for _, proto := range []string{"Illinois", "Firefly"} {
		r := get(proto, 1)
		if r.Stats.Invalidations != 0 || r.Stats.Updates != 0 {
			t.Errorf("%s wpb=1: coherence traffic without sharing (%d inv, %d upd)",
				proto, r.Stats.Invalidations, r.Stats.Updates)
		}
	}

	// Invalidation protocol: false sharing turns into invalidations and
	// misses, growing with the block size.
	i2, i4 := get("Illinois", 2), get("Illinois", 4)
	if !(i4.Stats.Invalidations > i2.Stats.Invalidations && i2.Stats.Invalidations > 0) {
		t.Errorf("Illinois invalidations must grow with block size: %d then %d",
			i2.Stats.Invalidations, i4.Stats.Invalidations)
	}
	ill4, ill1 := get("Illinois", 4).Stats, get("Illinois", 1).Stats
	if ill4.MissRatio() <= ill1.MissRatio() {
		t.Error("Illinois miss ratio must degrade under false sharing")
	}

	// Update protocol: no invalidations ever; update traffic grows instead,
	// and the miss ratio stays flat.
	f2, f4 := get("Firefly", 2), get("Firefly", 4)
	if f2.Stats.Invalidations != 0 || f4.Stats.Invalidations != 0 {
		t.Error("Firefly must not invalidate")
	}
	if !(f4.Stats.Updates > f2.Stats.Updates && f2.Stats.Updates > 0) {
		t.Errorf("Firefly updates must grow with block size: %d then %d",
			f2.Stats.Updates, f4.Stats.Updates)
	}
	f4s, f1s := f4.Stats, get("Firefly", 1).Stats
	if f4s.MissRatio() > 2*f1s.MissRatio()+0.01 {
		t.Error("Firefly miss ratio must stay flat under false sharing")
	}
}

func TestRenderFalseSharing(t *testing.T) {
	var b bytes.Buffer
	if err := RenderFalseSharing(&b, 4, 4, 5000, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "false sharing") {
		t.Error("render incomplete")
	}
}
