package experiments

import (
	"fmt"
	"io"

	"repro/internal/enum"
	"repro/internal/protocols"
	"repro/internal/report"
	"repro/internal/symbolic"
)

// ScalingRow is one line of experiment E11: symbolic verification cost as
// the number of per-cache states grows (the paper's closing claim that the
// method extends to "much more complex protocols with large numbers of
// cache states"), against explicit enumeration at a fixed cache count.
type ScalingRow struct {
	Levels         int
	States         int // |Q| = Levels + 2
	Essential      int
	SymbolicVisits int
	EnumN          int
	EnumStates     int
	EnumVisits     int
}

// Scaling verifies the synthetic protocol family for each level count and
// enumerates it explicitly with enumN caches for comparison (enumN = 0
// skips the enumeration for large |Q| where mⁿ becomes impractical).
func Scaling(levels []int, enumN int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, k := range levels {
		p, err := protocols.Synthetic(k)
		if err != nil {
			return nil, err
		}
		res, err := symbolic.Expand(p, symbolic.Options{Strict: true})
		if err != nil {
			return nil, err
		}
		if !res.OK() {
			return nil, fmt.Errorf("experiments: synthetic(%d) unexpectedly erroneous", k)
		}
		row := ScalingRow{
			Levels:         k,
			States:         p.NumStates(),
			Essential:      len(res.Essential),
			SymbolicVisits: res.Visits,
			EnumN:          enumN,
		}
		if enumN > 0 {
			er, err := enum.Exhaustive(p, enumN, enum.Options{})
			if err != nil {
				return nil, err
			}
			row.EnumStates = er.Unique
			row.EnumVisits = er.Visits
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScaling prints E11.
func RenderScaling(w io.Writer, levels []int, enumN int) error {
	rows, err := Scaling(levels, enumN)
	if err != nil {
		return err
	}
	t := report.NewTable("levels k", "|Q|", "essential states", "symbolic visits",
		fmt.Sprintf("enum states (n=%d)", enumN), "enum visits")
	for _, r := range rows {
		t.AddRow(r.Levels, r.States, r.Essential, r.SymbolicVisits, r.EnumStates, r.EnumVisits)
	}
	fmt.Fprint(w, report.Section(
		"E11 — scaling with the number of per-cache states (synthetic family)", t.String()))
	return nil
}
