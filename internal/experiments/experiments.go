// Package experiments regenerates every figure and table of the paper's
// evaluation (see DESIGN.md section 4 for the experiment index E1-E10).
// Each experiment has a structured form consumed by the test suite and the
// benchmark harness, and a rendered form printed by cmd/ccexperiments.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/protocols"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/symbolic"
	"repro/internal/trace"
)

// Fig1 is experiment E1: the per-cache (local) transition diagram of the
// Illinois protocol, Figure 1 of the paper.
func Fig1() (*graph.Local, error) {
	p := protocols.Illinois()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return graph.BuildLocal(p), nil
}

// RenderFig1 prints E1 as a table plus DOT.
func RenderFig1(w io.Writer) error {
	l, err := Fig1()
	if err != nil {
		return err
	}
	t := report.NewTable("from", "op", "guard", "to", "rule")
	for _, e := range l.Edges {
		t.AddRow(e.From, e.Op, e.Guard, e.To, e.Rule)
	}
	fmt.Fprint(w, report.Section(
		"E1 / Figure 1 — Illinois per-cache transition diagram", t.String()))
	fmt.Fprintln(w, "\nGraphviz DOT:")
	fmt.Fprintln(w, l.DOT())
	return nil
}

// Fig4Result bundles experiment E4/E5/E6: the Illinois global diagram, its
// context table, and the expansion visit log.
type Fig4Result struct {
	Report *core.Report
	Graph  *graph.Global
}

// Fig4 runs the symbolic verification of the Illinois protocol with the
// full expansion log.
func Fig4() (*Fig4Result, error) {
	p := protocols.Illinois()
	rep, err := core.Verify(p, core.Options{RecordLog: true, BuildGraph: true})
	if err != nil {
		return nil, err
	}
	if !rep.OK() {
		return nil, fmt.Errorf("experiments: Illinois unexpectedly erroneous")
	}
	return &Fig4Result{Report: rep, Graph: rep.Graph}, nil
}

// RenderFig4 prints E4: essential states and the labelled global edges.
func RenderFig4(w io.Writer) error {
	r, err := Fig4()
	if err != nil {
		return err
	}
	p := r.Report.Protocol
	g := r.Graph
	var b strings.Builder
	fmt.Fprintf(&b, "essential states: %d (paper: 5)   state visits: %d (paper: 22)\n\n",
		len(g.Nodes), r.Report.Symbolic.Visits)
	t := report.NewTable("node", "composite state")
	for i, n := range g.Nodes {
		t.AddRow(g.NodeName(i), n.StructureString(p))
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
	et := report.NewTable("from", "label", "to")
	for _, e := range g.Edges {
		et.AddRow(g.NodeName(e.From), e.Label(), g.NodeName(e.To))
	}
	b.WriteString(et.String())
	fmt.Fprint(w, report.Section("E4 / Figure 4 — Illinois global transition diagram", b.String()))
	fmt.Fprintln(w, "\nGraphviz DOT:")
	fmt.Fprintln(w, g.DOT())
	return nil
}

// RenderFig4Table prints E5: the sharing/cdata/mdata table of Figure 4.
func RenderFig4Table(w io.Writer) error {
	r, err := Fig4()
	if err != nil {
		return err
	}
	p := r.Report.Protocol
	t := report.NewTable("state", "composite", "sharing (F)", "cdata", "mdata")
	for i, n := range r.Graph.Nodes {
		t.AddRow(r.Graph.NodeName(i), n.StructureString(p),
			n.Attr(), cdataString(p, n), n.MData())
	}
	fmt.Fprint(w, report.Section("E5 / Figure 4 table — context variables per essential state", t.String()))
	return nil
}

func cdataString(p *fsm.Protocol, n *symbolic.CState) string {
	var parts []string
	for i := 0; i < n.NumClasses(); i++ {
		if n.Rep(i) == symbolic.RZero {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s:%s", p.States[i], n.CData(i)))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// RenderA2 prints E6: the expansion visit log, the analogue of the paper's
// Appendix A.2 (22 state visits for Illinois).
func RenderA2(w io.Writer) error {
	r, err := Fig4()
	if err != nil {
		return err
	}
	p := r.Report.Protocol
	t := report.NewTable("#", "from", "event", "to", "disposition")
	for i, v := range r.Report.Symbolic.Log {
		t.AddRow(i+1, v.From.StructureString(p), v.Label, v.To.StructureString(p), v.Outcome)
	}
	body := fmt.Sprintf("state visits: %d (paper: 22; see EXPERIMENTS.md for the accounting difference)\n\n%s",
		r.Report.Symbolic.Visits, t.String())
	fmt.Fprint(w, report.Section("E6 / Appendix A.2 — Illinois expansion steps", body))
	return nil
}

// ComplexityRow is one line of experiment E7: explicit-state costs for a
// fixed cache count against the constant symbolic cost.
type ComplexityRow struct {
	N              int
	StrictStates   int
	StrictVisits   int
	CountingStates int
	CountingVisits int
	TupleStates    int
	SymbolicStates int
	SymbolicVisits int
}

// Complexity sweeps the cache count for one protocol (E7, the §3.1 claim:
// enumeration costs grow like mⁿ while the symbolic expansion is constant
// and independent of n).
func Complexity(p *fsm.Protocol, ns []int) ([]ComplexityRow, error) {
	sym, err := symbolic.Expand(p, symbolic.Options{})
	if err != nil {
		return nil, err
	}
	var rows []ComplexityRow
	for _, n := range ns {
		ex, err := enum.Exhaustive(p, n, enum.Options{})
		if err != nil {
			return nil, err
		}
		ct, err := enum.Counting(p, n, enum.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ComplexityRow{
			N:              n,
			StrictStates:   ex.Unique,
			StrictVisits:   ex.Visits,
			CountingStates: ct.Unique,
			CountingVisits: ct.Visits,
			TupleStates:    ex.TupleStates,
			SymbolicStates: len(sym.Essential),
			SymbolicVisits: sym.Visits,
		})
	}
	return rows, nil
}

// RenderComplexity prints E7 for the given protocols and cache counts.
func RenderComplexity(w io.Writer, names []string, ns []int) error {
	for _, name := range names {
		p, err := protocols.ByName(name)
		if err != nil {
			return err
		}
		rows, err := Complexity(p, ns)
		if err != nil {
			return err
		}
		t := report.NewTable("n", "strict states", "strict visits", "counting states",
			"counting visits", "state tuples", "symbolic essential", "symbolic visits")
		for _, r := range rows {
			t.AddRow(r.N, r.StrictStates, r.StrictVisits, r.CountingStates,
				r.CountingVisits, r.TupleStates, r.SymbolicStates, r.SymbolicVisits)
		}
		fmt.Fprint(w, report.Section(
			fmt.Sprintf("E7 / §3.1 — state-space growth, %s (enumeration ∝ mⁿ vs constant symbolic)", p.Name),
			t.String()))
		fmt.Fprintln(w)
	}
	return nil
}

// SuiteRow is one protocol's verification summary (E8).
type SuiteRow struct {
	Report *core.Report
}

// Suite verifies every built-in protocol (E8: the companion TR's result
// that the method applies to all protocols of Archibald & Baer's survey).
func Suite(crossCheckN []int) ([]SuiteRow, error) {
	var rows []SuiteRow
	for _, p := range protocols.All() {
		rep, err := core.Verify(p, core.Options{BuildGraph: true, CrossCheckN: crossCheckN})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SuiteRow{Report: rep})
	}
	return rows, nil
}

// RenderSuite prints E8.
func RenderSuite(w io.Writer) error {
	rows, err := Suite([]int{2, 3, 4})
	if err != nil {
		return err
	}
	t := report.NewTable("protocol", "F", "essential", "visits", "edges", "verdict", "cross-checks n=2,3,4")
	for _, r := range rows {
		rep := r.Report
		verdict := "permissible"
		if !rep.Symbolic.OK() {
			verdict = "ERRONEOUS"
		}
		edges := 0
		if rep.Graph != nil {
			edges = len(rep.Graph.Edges)
		}
		var ccs []string
		for i := range rep.CrossChecks {
			cc := &rep.CrossChecks[i]
			s := "ok"
			if !cc.OK() {
				s = "FAIL"
			}
			ccs = append(ccs, fmt.Sprintf("%s(%d states)", s, cc.Enum.Unique))
		}
		t.AddRow(rep.Protocol.Name, rep.Protocol.Characteristic,
			len(rep.Symbolic.Essential), rep.Symbolic.Visits, edges, verdict, strings.Join(ccs, " "))
	}
	fmt.Fprint(w, report.Section("E8 — verification of the Archibald & Baer protocol suite", t.String()))
	return nil
}

// MutantRow is one fault-injection outcome (E9).
type MutantRow struct {
	Mutant   mutate.Mutant
	Report   *core.Report
	Detected bool
}

// MutantsExperiment verifies every mutant of every protocol (E9).
func MutantsExperiment() ([]MutantRow, error) {
	var rows []MutantRow
	for _, p := range protocols.All() {
		for _, m := range mutate.Catalog(p) {
			rep, err := core.Verify(m.Protocol, core.Options{Strict: true})
			if err != nil {
				return nil, err
			}
			rows = append(rows, MutantRow{
				Mutant:   m,
				Report:   rep,
				Detected: !rep.Symbolic.OK(),
			})
		}
	}
	return rows, nil
}

// RenderMutants prints E9 with one witness path per detected mutant.
func RenderMutants(w io.Writer) error {
	rows, err := MutantsExperiment()
	if err != nil {
		return err
	}
	detected := 0
	t := report.NewTable("mutant", "mutated rule", "fault", "verdict", "violations")
	for _, r := range rows {
		verdict := "MISSED"
		if r.Detected {
			verdict = "detected"
			detected++
		}
		t.AddRow(r.Mutant.Protocol.Name, r.Mutant.Rule, r.Mutant.Detail, verdict,
			len(r.Report.Symbolic.Violations))
	}
	body := fmt.Sprintf("detected %d/%d injected faults\n\n%s", detected, len(rows), t.String())
	fmt.Fprint(w, report.Section("E9 — erroneous-state detection on fault-injected protocols", body))

	fmt.Fprintln(w, "\nSample witnesses:")
	for _, r := range rows {
		if !r.Detected || len(r.Report.Symbolic.Violations) == 0 {
			continue
		}
		sv := r.Report.Symbolic.Violations[0]
		fmt.Fprintf(w, "  %s: %s\n    %s\n", r.Mutant.Protocol.Name,
			sv.Violations[0].Error(),
			core.FormatWitness(r.Mutant.Protocol, r.Report.Engine(), sv.Path))
	}
	return nil
}

// WorkloadRow is one simulator run (the Archibald & Baer-style protocol
// comparison, an extension experiment).
type WorkloadRow struct {
	Protocol string
	Workload string
	Stats    sim.Stats
}

// Workloads runs every protocol against the canonical sharing patterns and
// collects bus-traffic statistics.
func Workloads(caches, blocks, ops int, seed int64) ([]WorkloadRow, error) {
	mk := func(kind string) (trace.Workload, error) {
		switch kind {
		case "uniform":
			return trace.NewUniform(seed, caches, blocks, 0.3, 0.02)
		case "hot-block":
			return trace.NewHotBlock(seed, caches, blocks, 0.3, 0.5)
		case "migratory":
			return trace.NewMigratory(seed, caches, blocks, 4)
		case "producer-consumer":
			return trace.NewProducerConsumer(seed, caches, blocks, 4)
		default:
			return nil, fmt.Errorf("experiments: unknown workload %q", kind)
		}
	}
	var rows []WorkloadRow
	for _, p := range protocols.All() {
		for _, kind := range []string{"uniform", "hot-block", "migratory", "producer-consumer"} {
			w, err := mk(kind)
			if err != nil {
				return nil, err
			}
			m, err := sim.New(sim.Config{Protocol: p, Caches: caches, Blocks: blocks, Capacity: blocks})
			if err != nil {
				return nil, err
			}
			st, err := m.Run(w, ops)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", p.Name, kind, err)
			}
			if v := m.CheckInvariants(); len(v) > 0 {
				return nil, fmt.Errorf("experiments: %s/%s: invariant violation: %v", p.Name, kind, v[0])
			}
			rows = append(rows, WorkloadRow{Protocol: p.Name, Workload: kind, Stats: st})
		}
	}
	return rows, nil
}

// RenderWorkloads prints the simulator comparison.
func RenderWorkloads(w io.Writer, caches, blocks, ops int, seed int64) error {
	rows, err := Workloads(caches, blocks, ops, seed)
	if err != nil {
		return err
	}
	t := report.NewTable("protocol", "workload", "miss ratio", "invalidations",
		"updates", "cache-to-cache", "write-backs", "bus txns", "stale reads")
	for _, r := range rows {
		t.AddRow(r.Protocol, r.Workload, fmt.Sprintf("%.4f", r.Stats.MissRatio()),
			r.Stats.Invalidations, r.Stats.Updates, r.Stats.CacheSupplies,
			r.Stats.WriteBacks, r.Stats.BusTransactions, r.Stats.StaleReads)
	}
	fmt.Fprint(w, report.Section(
		fmt.Sprintf("Extension — simulated bus traffic (%d caches, %d blocks, %d refs)", caches, blocks, ops),
		t.String()))
	return nil
}
