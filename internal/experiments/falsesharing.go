package experiments

import (
	"fmt"
	"io"

	"repro/internal/protocols"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FalseSharingRow is one cell of the block-size experiment: a protocol run
// under the false-sharing workload with a given coherence block size.
type FalseSharingRow struct {
	Protocol      string
	WordsPerBlock int
	Stats         sim.Stats
}

// FalseSharingSweep runs the false-sharing workload (processors touching
// only their own word) across block sizes. Archibald & Baer's block-size
// observation falls out: with one word per block there is no coherence
// traffic at all, and every doubling of the block size multiplies the
// invalidation (or update) traffic although the program's true sharing is
// unchanged.
func FalseSharingSweep(names []string, caches, groups, ops int, seed int64, blockSizes []int) ([]FalseSharingRow, error) {
	var rows []FalseSharingRow
	for _, name := range names {
		p, err := protocols.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, wpb := range blockSizes {
			fs, err := trace.NewFalseSharing(seed, caches, groups, 0.5)
			if err != nil {
				return nil, err
			}
			w, err := trace.NewBlockMapper(fs, wpb)
			if err != nil {
				return nil, err
			}
			blocks := (fs.Words() + wpb - 1) / wpb
			m, err := sim.New(sim.Config{Protocol: p, Caches: caches, Blocks: blocks, Capacity: blocks})
			if err != nil {
				return nil, err
			}
			st, err := m.Run(w, ops)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s wpb=%d: %w", name, wpb, err)
			}
			if st.StaleReads != 0 {
				return nil, fmt.Errorf("experiments: %s wpb=%d: stale reads under false sharing", name, wpb)
			}
			rows = append(rows, FalseSharingRow{Protocol: p.Name, WordsPerBlock: wpb, Stats: st})
		}
	}
	return rows, nil
}

// RenderFalseSharing prints the block-size sweep.
func RenderFalseSharing(w io.Writer, caches, groups, ops int, seed int64) error {
	rows, err := FalseSharingSweep(
		[]string{"illinois", "firefly", "dragon"},
		caches, groups, ops, seed, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	t := report.NewTable("protocol", "words/block", "miss ratio", "invalidations",
		"updates", "bus txns")
	for _, r := range rows {
		t.AddRow(r.Protocol, r.WordsPerBlock, fmt.Sprintf("%.4f", r.Stats.MissRatio()),
			r.Stats.Invalidations, r.Stats.Updates, r.Stats.BusTransactions)
	}
	fmt.Fprint(w, report.Section(
		"Extension — false sharing vs coherence block size", t.String()))
	return nil
}
