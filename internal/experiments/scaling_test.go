package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestScalingLinearEssentialGrowth(t *testing.T) {
	rows, err := Scaling([]int{1, 2, 4, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The synthetic family's essential-state count is exactly |Q|:
		// one family per populated "highest" state class.
		if r.Essential != r.States {
			t.Errorf("levels=%d: %d essential states, want |Q|=%d",
				r.Levels, r.Essential, r.States)
		}
	}
	// Visits grow with |Q| but stay polynomial; spot-check monotonicity.
	for i := 1; i < len(rows); i++ {
		if rows[i].SymbolicVisits <= rows[i-1].SymbolicVisits {
			t.Errorf("symbolic visits must grow with |Q|: %+v", rows)
		}
		if rows[i].EnumStates <= rows[i-1].EnumStates {
			t.Errorf("enumeration must grow with |Q|: %+v", rows)
		}
	}
}

func TestScalingEnumerationOutpacesSymbolic(t *testing.T) {
	// With n=4 caches, the explicit space grows like (k+2)⁴ while the
	// symbolic cost grows polynomially in k alone; by k=8 enumeration
	// visits must exceed symbolic visits.
	rows, err := Scaling([]int{8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.EnumVisits <= r.SymbolicVisits {
		t.Errorf("enum visits %d should exceed symbolic visits %d at k=8, n=4",
			r.EnumVisits, r.SymbolicVisits)
	}
}

func TestScalingSkipsEnumWhenDisabled(t *testing.T) {
	rows, err := Scaling([]int{2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].EnumStates != 0 || rows[0].EnumVisits != 0 {
		t.Error("enumN=0 must skip the enumeration")
	}
}

func TestRenderScaling(t *testing.T) {
	var b bytes.Buffer
	if err := RenderScaling(&b, []int{1, 2}, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "E11") {
		t.Error("scaling render incomplete")
	}
}
