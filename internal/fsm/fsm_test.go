package fsm

import (
	"strings"
	"testing"
)

// miniProtocol returns a small, valid two-state protocol used as a baseline
// for the validation tests. Tests mutate clones of it to provoke specific
// validation failures.
func miniProtocol() *Protocol {
	return &Protocol{
		Name:    "Mini",
		States:  []State{"I", "V"},
		Initial: "I",
		Ops:     []Op{OpRead, OpWrite, OpReplace},
		Inv: Invariants{
			ValidCopy: []State{"V"},
			Readable:  []State{"V"},
			Exclusive: []State{"V"},
		},
		Rules: []Rule{
			{
				Name: "read-miss", From: "I", On: OpRead, Guard: Always(),
				Next: "V", Data: DataEffect{Source: SrcMemory},
			},
			{
				Name: "read-hit", From: "V", On: OpRead, Guard: Always(),
				Next: "V", Data: DataEffect{Source: SrcKeep},
			},
			{
				Name: "write", From: "V", On: OpWrite, Guard: Always(),
				Next: "V", Observe: map[State]State{"V": "I"},
				Data: DataEffect{Source: SrcKeep, Store: true, WriteThrough: true},
			},
			{
				Name: "write-miss", From: "I", On: OpWrite, Guard: Always(),
				Next: "V", Observe: map[State]State{"V": "I"},
				Data: DataEffect{Source: SrcMemory, Store: true, WriteThrough: true},
			},
			{
				Name: "replace", From: "V", On: OpReplace, Guard: Always(),
				Next: "I", Data: DataEffect{Source: SrcKeep, DropSelf: true},
			},
		},
	}
}

func TestMiniProtocolValidates(t *testing.T) {
	if err := miniProtocol().Validate(); err != nil {
		t.Fatalf("baseline protocol should validate, got %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Protocol)
		wantSub string
	}{
		{
			name:    "no name",
			mutate:  func(p *Protocol) { p.Name = "" },
			wantSub: "no name",
		},
		{
			name:    "single state",
			mutate:  func(p *Protocol) { p.States = []State{"I"} },
			wantSub: "at least two states",
		},
		{
			name:    "no operations",
			mutate:  func(p *Protocol) { p.Ops = nil },
			wantSub: "no operations",
		},
		{
			name:    "duplicate state",
			mutate:  func(p *Protocol) { p.States = []State{"I", "V", "I"} },
			wantSub: "duplicate state",
		},
		{
			name:    "empty state name",
			mutate:  func(p *Protocol) { p.States = []State{"I", "V", ""} },
			wantSub: "empty state name",
		},
		{
			name:    "duplicate op",
			mutate:  func(p *Protocol) { p.Ops = []Op{OpRead, OpRead} },
			wantSub: "duplicate operation",
		},
		{
			name:    "empty op",
			mutate:  func(p *Protocol) { p.Ops = append(p.Ops, "") },
			wantSub: "empty operation",
		},
		{
			name:    "undeclared initial",
			mutate:  func(p *Protocol) { p.Initial = "X" },
			wantSub: "initial state",
		},
		{
			name:    "empty valid-copy set",
			mutate:  func(p *Protocol) { p.Inv.ValidCopy = nil },
			wantSub: "ValidCopy",
		},
		{
			name:    "initial is a valid copy",
			mutate:  func(p *Protocol) { p.Inv.ValidCopy = []State{"I", "V"} },
			wantSub: "must not be a valid-copy state",
		},
		{
			name:    "undeclared invariant state",
			mutate:  func(p *Protocol) { p.Inv.Exclusive = []State{"Z"} },
			wantSub: "undeclared state",
		},
		{
			name:    "undeclared owners state",
			mutate:  func(p *Protocol) { p.Inv.Owners = []State{"Z"} },
			wantSub: "undeclared state",
		},
		{
			name:    "undeclared clean state",
			mutate:  func(p *Protocol) { p.Inv.CleanShared = []State{"Z"} },
			wantSub: "undeclared state",
		},
		{
			name:    "rule without name",
			mutate:  func(p *Protocol) { p.Rules[0].Name = "" },
			wantSub: "has no name",
		},
		{
			name:    "rule undeclared from",
			mutate:  func(p *Protocol) { p.Rules[0].From = "X" },
			wantSub: "undeclared From",
		},
		{
			name:    "rule undeclared op",
			mutate:  func(p *Protocol) { p.Rules[0].On = "Q" },
			wantSub: "undeclared operation",
		},
		{
			name:    "rule undeclared next",
			mutate:  func(p *Protocol) { p.Rules[0].Next = "X" },
			wantSub: "undeclared Next",
		},
		{
			name:    "guard with undeclared state",
			mutate:  func(p *Protocol) { p.Rules[0].Guard = AnyOther("X") },
			wantSub: "undeclared state",
		},
		{
			name:    "conditional guard with empty set",
			mutate:  func(p *Protocol) { p.Rules[0].Guard = Guard{Kind: GuardAnyOther} },
			wantSub: "empty state set",
		},
		{
			name: "observe undeclared state",
			mutate: func(p *Protocol) {
				p.Rules[0].Observe = map[State]State{"V": "X"}
			},
			wantSub: "observe",
		},
		{
			name: "cache source without suppliers",
			mutate: func(p *Protocol) {
				p.Rules[0].Data = DataEffect{Source: SrcCache}
			},
			wantSub: "no supplier states",
		},
		{
			name: "suppliers without cache source",
			mutate: func(p *Protocol) {
				p.Rules[0].Data.Suppliers = []State{"V"}
			},
			wantSub: "suppliers given but Source",
		},
		{
			name: "drop to a valid-copy state",
			mutate: func(p *Protocol) {
				p.Rules[4].Next = "V" // replace rule keeps DropSelf
			},
			wantSub: "DropSelf",
		},
		{
			name: "always rule alongside guarded rule",
			mutate: func(p *Protocol) {
				p.Rules = append(p.Rules, Rule{
					Name: "extra", From: "I", On: OpRead,
					Guard: AnyOther("V"), Next: "V",
					Data: DataEffect{Source: SrcMemory},
				})
			},
			wantSub: "unconditional rule",
		},
		{
			name: "cascade without fallback",
			mutate: func(p *Protocol) {
				p.Rules[0].Guard = AnyOther("V")
				p.Rules = append(p.Rules, Rule{
					Name: "extra", From: "I", On: OpRead,
					Guard: AnyOther("I"), Next: "V",
					Data: DataEffect{Source: SrcMemory},
				})
			},
			wantSub: "no NoOther fallback",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := miniProtocol()
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("expected validation error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestCharNullRequiresGuardIndependentNext(t *testing.T) {
	p := miniProtocol()
	p.Characteristic = CharNull
	p.Rules[0].Guard = AnyOther("V")
	p.Rules = append(p.Rules, Rule{
		Name: "read-miss-alone", From: "I", On: OpRead,
		Guard: NoOther("V"), Next: "I", // diverging next state
		Data: DataEffect{Source: SrcMemory},
	})
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "different next states") {
		t.Fatalf("want next-state divergence error, got %v", err)
	}
}

func TestCharNullRequiresGuardIndependentObserve(t *testing.T) {
	p := miniProtocol()
	p.Characteristic = CharNull
	p.Rules[0].Guard = AnyOther("V")
	p.Rules[0].Observe = map[State]State{"V": "I"}
	p.Rules = append(p.Rules, Rule{
		Name: "read-miss-alone", From: "I", On: OpRead,
		Guard: NoOther("V"), Next: "V",
		Data: DataEffect{Source: SrcMemory},
	})
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "observe differently") {
		t.Fatalf("want observe divergence error, got %v", err)
	}
}

func TestCharSharingAllowsGuardDependentNext(t *testing.T) {
	p := miniProtocol()
	p.Characteristic = CharSharing
	p.Rules[0].Guard = AnyOther("V")
	p.Rules = append(p.Rules, Rule{
		Name: "read-miss-alone", From: "I", On: OpRead,
		Guard: NoOther("V"), Next: "I",
		Data: DataEffect{Source: SrcMemory},
	})
	if err := p.Validate(); err != nil {
		t.Fatalf("sharing-detection protocols may branch on guards: %v", err)
	}
}

func TestStateIndexAndValidCopy(t *testing.T) {
	p := miniProtocol()
	if got := p.StateIndex("I"); got != 0 {
		t.Errorf("StateIndex(I) = %d, want 0", got)
	}
	if got := p.StateIndex("V"); got != 1 {
		t.Errorf("StateIndex(V) = %d, want 1", got)
	}
	if got := p.StateIndex("missing"); got != -1 {
		t.Errorf("StateIndex(missing) = %d, want -1", got)
	}
	if p.IsValidCopy("I") {
		t.Error("I must not be a valid copy")
	}
	if !p.IsValidCopy("V") {
		t.Error("V must be a valid copy")
	}
	set := p.ValidCopySet()
	if len(set) != 1 || !set["V"] {
		t.Errorf("ValidCopySet = %v, want {V}", set)
	}
	if p.NumStates() != 2 {
		t.Errorf("NumStates = %d, want 2", p.NumStates())
	}
}

func TestRulesForLookup(t *testing.T) {
	p := miniProtocol()
	rules := p.RulesFor("I", OpRead)
	if len(rules) != 1 || rules[0].Name != "read-miss" {
		t.Fatalf("RulesFor(I, R) = %v", rules)
	}
	if got := p.RulesFor("I", OpReplace); len(got) != 0 {
		t.Fatalf("RulesFor(I, Z) should be empty, got %v", got)
	}
}

func TestObservedNextDefaultsToIdentity(t *testing.T) {
	r := &Rule{Observe: map[State]State{"V": "I"}}
	if got := r.ObservedNext("V"); got != "I" {
		t.Errorf("ObservedNext(V) = %s, want I", got)
	}
	if got := r.ObservedNext("X"); got != "X" {
		t.Errorf("ObservedNext(X) = %s, want X (identity)", got)
	}
	empty := &Rule{}
	if got := empty.ObservedNext("V"); got != "V" {
		t.Errorf("nil observe map must be identity, got %s", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := miniProtocol()
	q := p.Clone()
	q.Rules[2].Observe["V"] = "V"
	q.Inv.ValidCopy[0] = "I"
	q.States[0] = "Z"
	if p.Rules[2].Observe["V"] != "I" {
		t.Error("clone shares observe map with original")
	}
	if p.Inv.ValidCopy[0] != "V" {
		t.Error("clone shares invariant slice with original")
	}
	if p.States[0] != "I" {
		t.Error("clone shares state slice with original")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("original corrupted by clone mutation: %v", err)
	}
}

func TestSortedStates(t *testing.T) {
	p := &Protocol{States: []State{"Z", "A", "M"}}
	got := p.SortedStates()
	want := []State{"A", "M", "Z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedStates = %v, want %v", got, want)
		}
	}
	// The original order must be preserved.
	if p.States[0] != "Z" {
		t.Error("SortedStates mutated the protocol's state order")
	}
}

func TestGuardStringForms(t *testing.T) {
	cases := []struct {
		g    Guard
		want string
	}{
		{Always(), "true"},
		{AnyOther("A", "B"), "∃other∈{A,B}"},
		{NoOther("C"), "∄other∈{C}"},
	}
	for _, tc := range cases {
		if got := tc.g.String(); got != tc.want {
			t.Errorf("Guard.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestEnumStringers(t *testing.T) {
	if CharNull.String() != "null" || CharSharing.String() != "sharing-detection" {
		t.Error("CharKind strings wrong")
	}
	if SrcNone.String() != "none" || SrcKeep.String() != "keep" ||
		SrcMemory.String() != "memory" || SrcCache.String() != "cache" {
		t.Error("DataSource strings wrong")
	}
	if GuardAlways.String() != "always" || GuardAnyOther.String() != "any-other" ||
		GuardNoOther.String() != "no-other" {
		t.Error("GuardKind strings wrong")
	}
	for _, k := range []ViolationKind{ViolationNone, ViolationExclusive,
		ViolationOwners, ViolationStaleRead, ViolationCleanShared} {
		if strings.Contains(k.String(), "ViolationKind(") {
			t.Errorf("missing String case for %d", int(k))
		}
	}
}
