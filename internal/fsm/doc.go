// Package fsm defines the finite-state-machine protocol model of Pong and
// Dubois, "The Verification of Cache Coherence Protocols" (SPAA 1993),
// Section 2.
//
// A cache coherence protocol is modeled as a deterministic finite state
// machine M = (Q, Σ, F, δ) (Definition 1 of the paper):
//
//   - Q is a finite set of per-cache state symbols (e.g. Invalid, Shared,
//     Dirty for a block copy in one cache),
//   - Σ is the set of operations causing state transitions (read, write,
//     replacement),
//   - F is a characteristic function, either null or the sharing-detection
//     function (does any other cache hold a valid copy?), and
//   - δ gives the transition functions F × Q × Σ → Q.
//
// The model in this package is richer than the bare automaton because a
// single protocol definition drives three different interpreters in this
// repository: the symbolic composite-state expansion engine
// (internal/symbolic), the explicit-state enumerators (internal/enum), and
// the concrete data-carrying multiprocessor simulator (internal/sim).
// Each transition Rule therefore records, besides the originator's next
// state, the coincident ("observed") transitions forced on all other caches
// and the data-transfer effects used to track the context variables of
// Definition 4 (cdata per cache, mdata for memory).
//
// Protocols also declare their correctness invariants (Section 2.1 and
// Definition 3): which states must be exclusive, which states denote block
// ownership, and which states allow a processor to read the local copy.
package fsm
