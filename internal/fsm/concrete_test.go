package fsm

import (
	"strings"
	"testing"
)

// illinois builds the Illinois protocol locally to avoid an import cycle
// with internal/protocols (which imports this package). Keeping a second,
// independently written copy here also guards against accidental edits to
// the canonical definition: the behavioral tests below would diverge.
func illinois() *Protocol {
	const (
		inv = State("Invalid")
		vex = State("Valid-Exclusive")
		shd = State("Shared")
		dty = State("Dirty")
	)
	valid := []State{vex, shd, dty}
	invAll := map[State]State{vex: inv, shd: inv, dty: inv}
	p := &Protocol{
		Name:           "Illinois-local",
		States:         []State{inv, vex, shd, dty},
		Initial:        inv,
		Ops:            []Op{OpRead, OpWrite, OpReplace},
		Characteristic: CharSharing,
		Inv: Invariants{
			Exclusive:   []State{vex, dty},
			Owners:      []State{dty},
			Readable:    valid,
			ValidCopy:   valid,
			CleanShared: []State{vex, shd},
		},
		Rules: []Rule{
			{Name: "rh-v", From: vex, On: OpRead, Guard: Always(), Next: vex, Data: DataEffect{Source: SrcKeep}},
			{Name: "rh-s", From: shd, On: OpRead, Guard: Always(), Next: shd, Data: DataEffect{Source: SrcKeep}},
			{Name: "rh-d", From: dty, On: OpRead, Guard: Always(), Next: dty, Data: DataEffect{Source: SrcKeep}},
			{Name: "rm-d", From: inv, On: OpRead, Guard: AnyOther(dty), Next: shd,
				Observe: map[State]State{dty: shd},
				Data:    DataEffect{Source: SrcCache, Suppliers: []State{dty}, SupplierWriteBack: true}},
			{Name: "rm-c", From: inv, On: OpRead, Guard: AnyOther(shd, vex), Next: shd,
				Observe: map[State]State{vex: shd},
				Data:    DataEffect{Source: SrcCache, Suppliers: []State{shd, vex}}},
			{Name: "rm-m", From: inv, On: OpRead, Guard: NoOther(valid...), Next: vex,
				Data: DataEffect{Source: SrcMemory}},
			{Name: "wh-d", From: dty, On: OpWrite, Guard: Always(), Next: dty,
				Data: DataEffect{Source: SrcKeep, Store: true}},
			{Name: "wh-v", From: vex, On: OpWrite, Guard: Always(), Next: dty,
				Data: DataEffect{Source: SrcKeep, Store: true}},
			{Name: "wh-s", From: shd, On: OpWrite, Guard: Always(), Next: dty, Observe: invAll,
				Data: DataEffect{Source: SrcKeep, Store: true}},
			{Name: "wm-d", From: inv, On: OpWrite, Guard: AnyOther(dty), Next: dty, Observe: invAll,
				Data: DataEffect{Source: SrcCache, Suppliers: []State{dty}, Store: true}},
			{Name: "wm-c", From: inv, On: OpWrite, Guard: AnyOther(shd, vex), Next: dty, Observe: invAll,
				Data: DataEffect{Source: SrcCache, Suppliers: []State{shd, vex}, Store: true}},
			{Name: "wm-m", From: inv, On: OpWrite, Guard: NoOther(valid...), Next: dty,
				Data: DataEffect{Source: SrcMemory, Store: true}},
			{Name: "z-d", From: dty, On: OpReplace, Guard: Always(), Next: inv,
				Data: DataEffect{Source: SrcKeep, WriteBackSelf: true, DropSelf: true}},
			{Name: "z-v", From: vex, On: OpReplace, Guard: Always(), Next: inv,
				Data: DataEffect{Source: SrcKeep, DropSelf: true}},
			{Name: "z-s", From: shd, On: OpReplace, Guard: Always(), Next: inv,
				Data: DataEffect{Source: SrcKeep, DropSelf: true}},
		},
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func mustStep(t *testing.T, p *Protocol, c *Config, i int, op Op) StepResult {
	t.Helper()
	res, err := Step(p, c, i, op)
	if err != nil {
		t.Fatalf("step cache %d op %s on %s: %v", i, op, c, err)
	}
	return res
}

func TestNewConfigInitialState(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 3)
	if c.N() != 3 {
		t.Fatalf("N = %d", c.N())
	}
	for i := 0; i < 3; i++ {
		if c.States[i] != p.Initial {
			t.Errorf("cache %d starts in %s, want %s", i, c.States[i], p.Initial)
		}
		if c.Versions[i] != NoData {
			t.Errorf("cache %d starts with data %d", i, c.Versions[i])
		}
	}
	if c.MemVersion != 0 || c.Latest != 0 {
		t.Errorf("memory should start fresh at version 0")
	}
}

func TestReadMissFromMemoryLoadsExclusive(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 3)
	res := mustStep(t, p, c, 0, OpRead)
	if res.Rule.Name != "rm-m" {
		t.Fatalf("rule %s fired, want rm-m", res.Rule.Name)
	}
	if c.States[0] != "Valid-Exclusive" {
		t.Fatalf("state %s, want Valid-Exclusive", c.States[0])
	}
	if res.ReadVersion != 0 || c.Versions[0] != 0 {
		t.Fatalf("read version %d, want 0 (memory copy)", res.ReadVersion)
	}
	if res.Supplier != -1 {
		t.Fatalf("memory service should have no cache supplier")
	}
}

func TestReadMissFromDirtySupplierUpdatesMemory(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 3)
	mustStep(t, p, c, 0, OpWrite) // cache 0: Dirty with version 1, memory stale
	if c.MemVersion != 0 || c.Latest != 1 {
		t.Fatalf("after write: mem=%d latest=%d", c.MemVersion, c.Latest)
	}
	res := mustStep(t, p, c, 1, OpRead)
	if res.Rule.Name != "rm-d" {
		t.Fatalf("rule %s fired, want rm-d", res.Rule.Name)
	}
	if res.Supplier != 0 {
		t.Fatalf("supplier %d, want cache 0", res.Supplier)
	}
	if c.States[0] != "Shared" || c.States[1] != "Shared" {
		t.Fatalf("states %v, want both Shared", c.States)
	}
	if c.MemVersion != 1 {
		t.Fatalf("memory not updated by the supplying dirty cache: %d", c.MemVersion)
	}
	if res.ReadVersion != c.Latest {
		t.Fatalf("reader got stale version %d", res.ReadVersion)
	}
}

func TestWriteInvalidatesRemoteCopies(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 4)
	mustStep(t, p, c, 0, OpRead) // V-Ex
	mustStep(t, p, c, 1, OpRead) // both Shared
	mustStep(t, p, c, 2, OpRead) // three Shared
	res := mustStep(t, p, c, 1, OpWrite)
	if res.Rule.Name != "wh-s" {
		t.Fatalf("rule %s fired, want wh-s", res.Rule.Name)
	}
	want := []State{"Invalid", "Dirty", "Invalid", "Invalid"}
	for i, s := range want {
		if c.States[i] != s {
			t.Fatalf("states %v, want %v", c.States, want)
		}
	}
	for _, i := range []int{0, 2, 3} {
		if c.Versions[i] != NoData {
			t.Errorf("invalidated cache %d kept data %d", i, c.Versions[i])
		}
	}
	if c.Versions[1] != c.Latest {
		t.Errorf("writer version %d, latest %d", c.Versions[1], c.Latest)
	}
}

func TestReplacementWritesBackDirty(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 2)
	mustStep(t, p, c, 0, OpWrite)
	if c.MemVersion == c.Latest {
		t.Fatal("memory should be stale before the write-back")
	}
	res := mustStep(t, p, c, 0, OpReplace)
	if res.Rule.Name != "z-d" {
		t.Fatalf("rule %s fired, want z-d", res.Rule.Name)
	}
	if c.States[0] != "Invalid" || c.Versions[0] != NoData {
		t.Fatalf("replaced block still present: %s %d", c.States[0], c.Versions[0])
	}
	if c.MemVersion != c.Latest {
		t.Fatal("dirty replacement must write back to memory")
	}
}

func TestReplaceInvalidIsNoOp(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 2)
	res := mustStep(t, p, c, 0, OpReplace)
	if res.Rule != nil {
		t.Fatalf("replacement of an Invalid block fired rule %s", res.Rule.Name)
	}
	if c.States[0] != "Invalid" {
		t.Fatalf("state changed by a no-op: %s", c.States[0])
	}
}

func TestVExSilentUpgradeOnWrite(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 2)
	mustStep(t, p, c, 0, OpRead)
	if c.States[0] != "Valid-Exclusive" {
		t.Fatalf("setup failed: %v", c.States)
	}
	res := mustStep(t, p, c, 0, OpWrite)
	if res.Rule.Name != "wh-v" {
		t.Fatalf("rule %s fired, want wh-v", res.Rule.Name)
	}
	if c.States[0] != "Dirty" {
		t.Fatalf("state %s, want Dirty", c.States[0])
	}
	if c.MemVersion == c.Latest {
		t.Fatal("silent upgrade must leave memory stale")
	}
}

func TestStepOutOfRangeCache(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 2)
	if _, err := Step(p, c, 5, OpRead); err == nil {
		t.Fatal("expected an out-of-range error")
	}
	if _, err := Step(p, c, -1, OpRead); err == nil {
		t.Fatal("expected an out-of-range error")
	}
}

func TestStepMissingSupplierIsSpecError(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 2)
	// Force an inconsistent configuration: the guard says a Dirty copy
	// exists but none does. Step must fail loudly instead of mis-servicing.
	c.States[1] = "Dirty"
	c.Versions[1] = 0
	broken := p.Clone()
	// Make the dirty-owner rule fire unconditionally.
	for i := range broken.Rules {
		if broken.Rules[i].Name == "rm-d" {
			broken.Rules[i].Guard = AnyOther("Dirty", "Shared")
		}
	}
	c2 := NewConfig(broken, 2)
	c2.States[1] = "Shared" // guard true, but no Dirty supplier
	c2.Versions[1] = 0
	if _, err := Step(broken, c2, 0, OpRead); err == nil ||
		!strings.Contains(err.Error(), "no supplier") {
		t.Fatalf("want missing-supplier error, got %v", err)
	}
}

func TestGuardEvaluation(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 3)
	c.States[1] = "Dirty"
	cases := []struct {
		g      Guard
		origin int
		want   bool
	}{
		{Always(), 0, true},
		{AnyOther("Dirty"), 0, true},
		{AnyOther("Dirty"), 1, false}, // the dirty cache itself
		{NoOther("Dirty"), 0, false},
		{NoOther("Dirty"), 1, true},
		{AnyOther("Shared", "Valid-Exclusive"), 0, false},
		{NoOther("Shared", "Valid-Exclusive"), 0, true},
	}
	for i, tc := range cases {
		if got := EvalGuard(tc.g, c, tc.origin); got != tc.want {
			t.Errorf("case %d: EvalGuard(%v, origin=%d) = %v, want %v",
				i, tc.g, tc.origin, got, tc.want)
		}
	}
}

func TestCheckConfigExclusiveViolation(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 3)
	c.States[0], c.Versions[0] = "Dirty", 0
	c.States[1], c.Versions[1] = "Shared", 0
	vs := CheckConfig(p, c, false)
	found := false
	for _, v := range vs {
		if v.Kind == ViolationExclusive {
			found = true
		}
	}
	if !found {
		t.Fatalf("Dirty+Shared must violate exclusivity, got %v", vs)
	}
}

func TestCheckConfigMultipleOwners(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 3)
	c.States[0], c.Versions[0] = "Dirty", 0
	c.States[1], c.Versions[1] = "Dirty", 0
	vs := CheckConfig(p, c, false)
	foundOwners := false
	for _, v := range vs {
		if v.Kind == ViolationOwners {
			foundOwners = true
		}
	}
	if !foundOwners {
		t.Fatalf("two Dirty caches must violate single ownership, got %v", vs)
	}
}

func TestCheckConfigStaleRead(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 2)
	c.States[0], c.Versions[0] = "Shared", 0
	c.Latest = 5 // a newer store happened elsewhere
	vs := CheckConfig(p, c, false)
	if len(vs) == 0 || vs[0].Kind != ViolationStaleRead {
		t.Fatalf("readable stale copy must be flagged, got %v", vs)
	}
}

func TestCheckConfigCleanSharedOnlyWhenStrict(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 2)
	c.States[0], c.Versions[0] = "Shared", 0
	c.MemVersion = -7 // memory disagrees with the clean copy
	if vs := CheckConfig(p, c, false); len(vs) != 0 {
		t.Fatalf("non-strict check should ignore clean/memory mismatch, got %v", vs)
	}
	vs := CheckConfig(p, c, true)
	found := false
	for _, v := range vs {
		if v.Kind == ViolationCleanShared {
			found = true
		}
	}
	if !found {
		t.Fatalf("strict check must flag clean/memory mismatch, got %v", vs)
	}
}

func TestCheckConfigCleanOnPermissibleStates(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 3)
	if vs := CheckConfig(p, c, true); len(vs) != 0 {
		t.Fatalf("initial state must be permissible, got %v", vs)
	}
	mustStep(t, p, c, 0, OpRead)
	mustStep(t, p, c, 1, OpRead)
	mustStep(t, p, c, 2, OpWrite)
	mustStep(t, p, c, 0, OpRead)
	if vs := CheckConfig(p, c, true); len(vs) != 0 {
		t.Fatalf("reachable state must be permissible, got %v", vs)
	}
}

func TestConfigKeyAndClone(t *testing.T) {
	p := illinois()
	c := NewConfig(p, 2)
	mustStep(t, p, c, 0, OpWrite)
	d := c.Clone()
	if c.Key() != d.Key() {
		t.Fatal("clone must have the same key")
	}
	mustStep(t, p, d, 1, OpRead)
	if c.Key() == d.Key() {
		t.Fatal("stepping the clone must not affect the original")
	}
	if c.StateKey() != "Dirty,Invalid" {
		t.Fatalf("StateKey = %q", c.StateKey())
	}
	if c.String() != "(Dirty,Invalid)" {
		t.Fatalf("String = %q", c.String())
	}
}

// TestRandomWalkNeverStale drives long pseudo-random walks and asserts that
// no read ever returns stale data and every intermediate configuration is
// permissible — the concrete counterpart of the paper's Definition 3.
func TestRandomWalkNeverStale(t *testing.T) {
	p := illinois()
	ops := []Op{OpRead, OpRead, OpRead, OpWrite, OpWrite, OpReplace}
	// Small deterministic LCG; math/rand would also do, but this keeps the
	// walk stable across Go versions.
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for n := 1; n <= 5; n++ {
		c := NewConfig(p, n)
		for k := 0; k < 20000; k++ {
			i := next(n)
			op := ops[next(len(ops))]
			res := mustStep(t, p, c, i, op)
			if op == OpRead && res.Rule != nil && res.ReadVersion != c.Latest {
				t.Fatalf("n=%d step %d: stale read (%d != %d)", n, k, res.ReadVersion, c.Latest)
			}
			if vs := CheckConfig(p, c, true); len(vs) != 0 {
				t.Fatalf("n=%d step %d: violation %v in %s", n, k, vs[0], c)
			}
		}
	}
}
