package fsm

import (
	"fmt"
	"sort"
	"strings"
)

// State is a symbolic per-cache state such as "Invalid" or "Dirty".
type State string

// Op is an operation from Σ that a processor applies to its local cache.
type Op string

// The three operations used by every protocol in Archibald & Baer's survey
// and in the paper: processor read, processor write, and block replacement.
const (
	OpRead    Op = "R"
	OpWrite   Op = "W"
	OpReplace Op = "Z"
)

// CharKind identifies the characteristic function F of the protocol
// (Definition 1). The paper restricts F to either the null function or the
// sharing-detection function of Section 2.1.
type CharKind int

const (
	// CharNull means transitions depend only on the local cache state and
	// the operation. Containment degrades to structural covering
	// (Corollary 1).
	CharNull CharKind = iota
	// CharSharing means transitions may depend on the sharing-detection
	// function: whether any OTHER cache holds a valid copy. The symbolic
	// engine then tracks the copy-count classification of Appendix A.1
	// (v1: no copy, v2: one copy, v3: two or more copies).
	CharSharing
)

func (c CharKind) String() string {
	switch c {
	case CharNull:
		return "null"
	case CharSharing:
		return "sharing-detection"
	default:
		return fmt.Sprintf("CharKind(%d)", int(c))
	}
}

// GuardKind classifies the condition under which a Rule fires.
type GuardKind int

const (
	// GuardAlways fires unconditionally.
	GuardAlways GuardKind = iota
	// GuardAnyOther fires when at least one other cache is in one of the
	// guard's states.
	GuardAnyOther
	// GuardNoOther fires when no other cache is in any of the guard's
	// states.
	GuardNoOther
)

func (g GuardKind) String() string {
	switch g {
	case GuardAlways:
		return "always"
	case GuardAnyOther:
		return "any-other"
	case GuardNoOther:
		return "no-other"
	default:
		return fmt.Sprintf("GuardKind(%d)", int(g))
	}
}

// Guard is a predicate over the states of all caches other than the
// originator. It generalizes the sharing-detection function f_i of Section
// 2.1: f_i is GuardAnyOther over the set of valid-copy states.
type Guard struct {
	Kind   GuardKind
	States []State // states tested by AnyOther / NoOther; ignored for Always
}

// Always is the unconditional guard.
func Always() Guard { return Guard{Kind: GuardAlways} }

// AnyOther returns a guard satisfied when another cache is in one of states.
func AnyOther(states ...State) Guard {
	return Guard{Kind: GuardAnyOther, States: states}
}

// NoOther returns a guard satisfied when no other cache is in any of states.
func NoOther(states ...State) Guard {
	return Guard{Kind: GuardNoOther, States: states}
}

func (g Guard) String() string {
	switch g.Kind {
	case GuardAlways:
		return "true"
	case GuardAnyOther:
		return "∃other∈" + stateSetString(g.States)
	case GuardNoOther:
		return "∄other∈" + stateSetString(g.States)
	default:
		return g.Kind.String()
	}
}

func stateSetString(states []State) string {
	parts := make([]string, len(states))
	for i, s := range states {
		parts[i] = string(s)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// DataSource says where the originating cache's data copy comes from when a
// rule fires, before any store is applied. It drives the context-variable
// updates of Definition 4 / Section 2.4.
type DataSource int

const (
	// SrcNone: the originator ends up without a data copy (replacement,
	// invalidation).
	SrcNone DataSource = iota
	// SrcKeep: the originator keeps its current copy (hit).
	SrcKeep
	// SrcMemory: the block is loaded from main memory (cdata := mdata).
	SrcMemory
	// SrcCache: the block is supplied by another cache whose state is in
	// the rule's Suppliers set (cdata_i := cdata_j).
	SrcCache
)

func (s DataSource) String() string {
	switch s {
	case SrcNone:
		return "none"
	case SrcKeep:
		return "keep"
	case SrcMemory:
		return "memory"
	case SrcCache:
		return "cache"
	default:
		return fmt.Sprintf("DataSource(%d)", int(s))
	}
}

// DataEffect specifies the data-transfer semantics of a rule, used to update
// the context variables (cdata_i, mdata) of Definition 4. Effects apply in
// this order:
//
//  1. The originator acquires data per Source (from memory, from a supplier
//     cache, kept, or none). If SupplierWriteBack is set, the supplier also
//     updates memory during the transfer (mdata := cdata_supplier), as in
//     the Illinois read miss serviced by a Dirty cache.
//  2. If Store is set, the processor writes a new value: every fresh copy
//     anywhere (cache or memory) first becomes obsolete, then the
//     originator's copy becomes fresh. WriteThrough additionally makes
//     memory fresh (write-broadcast protocols); UpdateSharers makes every
//     other cache that retains a valid copy fresh as well (Firefly/Dragon
//     bus update).
//  3. If WriteBackSelf is set, the originator flushes its copy to memory
//     (mdata := cdata_i), as on replacement of a Dirty block.
//  4. If DropSelf is set, the originator's copy leaves the cache
//     (cdata_i := nodata).
type DataEffect struct {
	Source            DataSource
	Suppliers         []State // candidate supplier states for SrcCache
	SupplierWriteBack bool
	Store             bool
	WriteThrough      bool
	UpdateSharers     bool
	WriteBackSelf     bool
	DropSelf          bool
	// Spin marks a rule whose operation does NOT complete: the requester
	// backs off and will retry (e.g. a lock acquire finding the block
	// locked elsewhere). A spinning read returns no data, so the stale-read
	// check does not apply to it. Spin rules must leave the originator in
	// its current state.
	Spin bool
}

// Rule is one guarded transition of the protocol from the perspective of the
// originating cache. It combines the paper's transition function δ with the
// coincident transitions forced on the other caches (expansion rules 2 and 3
// of Section 3.2.3) and the data effects of Section 2.4.
type Rule struct {
	// Name identifies the rule in diagnostics, e.g. "read-miss-shared".
	Name string
	// From is the originator's current state; On is the operation.
	From State
	On   Op
	// Guard conditions the rule on the states of the other caches. For a
	// given (From, On) pair the guards of all rules must partition the
	// possible configurations (checked by Validate).
	Guard Guard
	// Next is the originator's next state.
	Next State
	// Observe maps the state of every other cache to its coincident next
	// state. States absent from the map are unchanged. (Example: an
	// Illinois write miss maps every valid state to Invalid.)
	Observe map[State]State
	// Data describes the data-transfer side effects.
	Data DataEffect
}

// ObservedNext returns the coincident next state for another cache currently
// in state s when this rule fires.
func (r *Rule) ObservedNext(s State) State {
	if r.Observe != nil {
		if t, ok := r.Observe[s]; ok {
			return t
		}
	}
	return s
}

// Invariants declares the correctness conditions of a protocol, evaluated
// over every reachable (composite or concrete) global state.
type Invariants struct {
	// Exclusive lists states that must be the unique valid copy: a cache in
	// such a state may not coexist with any other valid copy (Illinois:
	// Dirty and Valid-Exclusive).
	Exclusive []State
	// Owners lists ownership states: at most one cache in total may be in
	// any of them (Berkeley: Dirty, Shared-Dirty).
	Owners []State
	// Readable lists states in which a processor read hits on the local
	// copy; Definition 3 (data consistency) requires that no cache in a
	// readable state holds an obsolete value.
	Readable []State
	// ValidCopy lists every state that denotes "this cache holds a copy of
	// the block"; its complement (typically just Invalid) means the block
	// is absent or invalidated. The sharing-detection function is
	// GuardAnyOther over this set.
	ValidCopy []State
	// CleanShared optionally lists states asserting the copy is identical
	// to main memory (Illinois: Shared, Valid-Exclusive). When non-empty,
	// the verifier additionally flags states where such a copy coexists
	// with obsolete memory. This is a strengthening beyond the paper used
	// by the ablation benchmarks.
	CleanShared []State
}

// Protocol is a complete behavioral protocol specification.
type Protocol struct {
	// Name is the protocol's conventional name, e.g. "Illinois".
	Name string
	// States is Q; the order fixes the canonical class order in composite
	// states and reports.
	States []State
	// Initial is the per-cache initial state; the system starts with every
	// cache in this state and memory fresh (the paper's (Invalid⁺) start).
	Initial State
	// Ops is Σ.
	Ops []Op
	// Rules is the transition relation δ plus coincident and data effects.
	Rules []Rule
	// Characteristic is F (Definition 1).
	Characteristic CharKind
	// Inv declares the correctness invariants.
	Inv Invariants

	index     map[State]int
	ruleIndex map[ruleKey][]*Rule
	validSet  map[State]bool
}

type ruleKey struct {
	from State
	on   Op
}

// StateIndex returns the position of s in the protocol's canonical state
// order, or -1 when s is not a declared state.
func (p *Protocol) StateIndex(s State) int {
	p.ensureIndex()
	if i, ok := p.index[s]; ok {
		return i
	}
	return -1
}

// NumStates returns |Q|.
func (p *Protocol) NumStates() int { return len(p.States) }

// IsValidCopy reports whether state s denotes a held copy of the block.
func (p *Protocol) IsValidCopy(s State) bool {
	p.ensureIndex()
	return p.validSet[s]
}

// ValidCopySet returns the set of valid-copy states as a lookup map.
func (p *Protocol) ValidCopySet() map[State]bool {
	p.ensureIndex()
	out := make(map[State]bool, len(p.validSet))
	for s, ok := range p.validSet {
		if ok {
			out[s] = true
		}
	}
	return out
}

// RulesFor returns the rules matching an originator in state from applying
// op, in declaration order. An empty result means the operation is a no-op
// in that state (e.g. replacement of an Invalid block).
//
// Deprecated for hot paths: engines should dispatch through the shared
// compiled representation (compile.Compile, then Protocol.RuleIDs), which
// resolves this lookup into dense jump tables once per protocol. RulesFor
// remains the authoritative declaration-order index for construction-time
// and diagnostic use, and is what the compiler itself lowers from.
func (p *Protocol) RulesFor(from State, op Op) []*Rule {
	p.ensureIndex()
	return p.ruleIndex[ruleKey{from, op}]
}

func (p *Protocol) ensureIndex() {
	if p.index != nil {
		return
	}
	p.index = make(map[State]int, len(p.States))
	for i, s := range p.States {
		p.index[s] = i
	}
	p.validSet = make(map[State]bool, len(p.Inv.ValidCopy))
	for _, s := range p.Inv.ValidCopy {
		p.validSet[s] = true
	}
	p.ruleIndex = make(map[ruleKey][]*Rule)
	for i := range p.Rules {
		r := &p.Rules[i]
		k := ruleKey{r.From, r.On}
		p.ruleIndex[k] = append(p.ruleIndex[k], r)
	}
}

// Validate checks the well-formedness of the protocol definition and returns
// a descriptive error for the first problem found. A valid protocol:
//
//   - declares at least two states and one operation, with no duplicates;
//   - has an Initial state outside the valid-copy set;
//   - references only declared states in rules, guards, observe maps,
//     suppliers and invariants;
//   - for every (From, On) pair, has guards forming a partition: at most
//     one Always rule and no Always rule alongside conditional ones, and
//     AnyOther/NoOther rules pairing over identical state sets;
//   - if Characteristic is CharNull, has Next and Observe independent of
//     the guard for each (From, On) pair (Corollary 1's premise);
//   - declares a non-empty ValidCopy set disjoint from {Initial}.
func (p *Protocol) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("fsm: protocol has no name")
	}
	if len(p.States) < 2 {
		return fmt.Errorf("fsm: protocol %s: need at least two states", p.Name)
	}
	if len(p.Ops) == 0 {
		return fmt.Errorf("fsm: protocol %s: no operations", p.Name)
	}
	seen := make(map[State]bool)
	for _, s := range p.States {
		if s == "" {
			return fmt.Errorf("fsm: protocol %s: empty state name", p.Name)
		}
		if seen[s] {
			return fmt.Errorf("fsm: protocol %s: duplicate state %q", p.Name, s)
		}
		seen[s] = true
	}
	seenOp := make(map[Op]bool)
	for _, op := range p.Ops {
		if op == "" {
			return fmt.Errorf("fsm: protocol %s: empty operation name", p.Name)
		}
		if seenOp[op] {
			return fmt.Errorf("fsm: protocol %s: duplicate operation %q", p.Name, op)
		}
		seenOp[op] = true
	}
	if !seen[p.Initial] {
		return fmt.Errorf("fsm: protocol %s: initial state %q not declared", p.Name, p.Initial)
	}
	if len(p.Inv.ValidCopy) == 0 {
		return fmt.Errorf("fsm: protocol %s: empty ValidCopy invariant set", p.Name)
	}
	checkSet := func(where string, states []State) error {
		for _, s := range states {
			if !seen[s] {
				return fmt.Errorf("fsm: protocol %s: %s references undeclared state %q", p.Name, where, s)
			}
		}
		return nil
	}
	if err := checkSet("Exclusive", p.Inv.Exclusive); err != nil {
		return err
	}
	if err := checkSet("Owners", p.Inv.Owners); err != nil {
		return err
	}
	if err := checkSet("Readable", p.Inv.Readable); err != nil {
		return err
	}
	if err := checkSet("ValidCopy", p.Inv.ValidCopy); err != nil {
		return err
	}
	if err := checkSet("CleanShared", p.Inv.CleanShared); err != nil {
		return err
	}
	for _, s := range p.Inv.ValidCopy {
		if s == p.Initial {
			return fmt.Errorf("fsm: protocol %s: initial state %q must not be a valid-copy state", p.Name, s)
		}
	}

	byKey := make(map[ruleKey][]*Rule)
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Name == "" {
			return fmt.Errorf("fsm: protocol %s: rule %d has no name", p.Name, i)
		}
		if !seen[r.From] {
			return fmt.Errorf("fsm: protocol %s: rule %s: undeclared From state %q", p.Name, r.Name, r.From)
		}
		if !seenOp[r.On] {
			return fmt.Errorf("fsm: protocol %s: rule %s: undeclared operation %q", p.Name, r.Name, r.On)
		}
		if !seen[r.Next] {
			return fmt.Errorf("fsm: protocol %s: rule %s: undeclared Next state %q", p.Name, r.Name, r.Next)
		}
		if err := checkSet("rule "+r.Name+" guard", r.Guard.States); err != nil {
			return err
		}
		if r.Guard.Kind != GuardAlways && len(r.Guard.States) == 0 {
			return fmt.Errorf("fsm: protocol %s: rule %s: conditional guard with empty state set", p.Name, r.Name)
		}
		for from, to := range r.Observe {
			if !seen[from] || !seen[to] {
				return fmt.Errorf("fsm: protocol %s: rule %s: observe %q->%q references undeclared state", p.Name, r.Name, from, to)
			}
		}
		if err := checkSet("rule "+r.Name+" suppliers", r.Data.Suppliers); err != nil {
			return err
		}
		if r.Data.Source == SrcCache && len(r.Data.Suppliers) == 0 {
			return fmt.Errorf("fsm: protocol %s: rule %s: SrcCache with no supplier states", p.Name, r.Name)
		}
		if r.Data.Source != SrcCache && len(r.Data.Suppliers) != 0 {
			return fmt.Errorf("fsm: protocol %s: rule %s: suppliers given but Source is %v", p.Name, r.Name, r.Data.Source)
		}
		if r.Data.DropSelf && p.IsValidCopy(r.Next) {
			return fmt.Errorf("fsm: protocol %s: rule %s: DropSelf but Next %q is a valid-copy state", p.Name, r.Name, r.Next)
		}
		if r.Data.Spin {
			if r.Next != r.From {
				return fmt.Errorf("fsm: protocol %s: rule %s: Spin rules must stay in place (Next %q != From %q)",
					p.Name, r.Name, r.Next, r.From)
			}
			if r.Data.Store || r.Data.DropSelf || r.Data.WriteBackSelf ||
				r.Data.Source != SrcNone && r.Data.Source != SrcKeep {
				return fmt.Errorf("fsm: protocol %s: rule %s: Spin rules must have no data side effects", p.Name, r.Name)
			}
		}
		k := ruleKey{r.From, r.On}
		byKey[k] = append(byKey[k], r)
	}

	for k, rules := range byKey {
		if err := p.validateGuardPartition(k, rules); err != nil {
			return err
		}
		if p.Characteristic == CharNull && len(rules) > 1 {
			first := rules[0]
			for _, r := range rules[1:] {
				if r.Next != first.Next {
					return fmt.Errorf("fsm: protocol %s: null characteristic function but rules %s and %s give different next states for (%s,%s)",
						p.Name, first.Name, r.Name, k.from, k.on)
				}
				if !sameObserve(first.Observe, r.Observe, p.States) {
					return fmt.Errorf("fsm: protocol %s: null characteristic function but rules %s and %s observe differently for (%s,%s)",
						p.Name, first.Name, r.Name, k.from, k.on)
				}
			}
		}
	}
	return nil
}

func (p *Protocol) validateGuardPartition(k ruleKey, rules []*Rule) error {
	if len(rules) == 1 {
		return nil
	}
	// More than one rule: no Always allowed, and conditional guards must be
	// pairwise disjoint. We accept the common patterns:
	//   {AnyOther(S), NoOther(S)} over the same set S, and
	//   {AnyOther(S1), AnyOther(S2)\S1, ..., NoOther(S1∪S2∪...)} expressed
	// as an ordered cascade (first match wins at evaluation time). To stay
	// simple and safe we only verify that no two rules are both Always and
	// that the final rule set is evaluable in declaration order.
	for _, r := range rules {
		if r.Guard.Kind == GuardAlways {
			return fmt.Errorf("fsm: protocol %s: (%s,%s): unconditional rule %s coexists with other rules; use guards",
				p.Name, k.from, k.on, r.Name)
		}
	}
	// Require that the last rule's guard complements something: at least
	// one NoOther guard must be present so the cascade is total whenever
	// any rule should fire. (Protocols wanting partial applicability
	// simply omit all rules for the pair.)
	hasNoOther := false
	for _, r := range rules {
		if r.Guard.Kind == GuardNoOther {
			hasNoOther = true
		}
	}
	if !hasNoOther {
		return fmt.Errorf("fsm: protocol %s: (%s,%s): guard cascade has no NoOther fallback; cascade may be partial",
			p.Name, k.from, k.on)
	}
	return nil
}

func sameObserve(a, b map[State]State, states []State) bool {
	get := func(m map[State]State, s State) State {
		if m != nil {
			if t, ok := m[s]; ok {
				return t
			}
		}
		return s
	}
	for _, s := range states {
		if get(a, s) != get(b, s) {
			return false
		}
	}
	return true
}

// SortedStates returns the protocol's states sorted lexically; useful for
// deterministic reporting independent of declaration order.
func (p *Protocol) SortedStates() []State {
	out := make([]State, len(p.States))
	copy(out, p.States)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy of the protocol, detached from the receiver's
// internal indexes. Mutation operators (internal/mutate) work on clones.
func (p *Protocol) Clone() *Protocol {
	q := &Protocol{
		Name:           p.Name,
		States:         append([]State(nil), p.States...),
		Initial:        p.Initial,
		Ops:            append([]Op(nil), p.Ops...),
		Characteristic: p.Characteristic,
		Inv: Invariants{
			Exclusive:   append([]State(nil), p.Inv.Exclusive...),
			Owners:      append([]State(nil), p.Inv.Owners...),
			Readable:    append([]State(nil), p.Inv.Readable...),
			ValidCopy:   append([]State(nil), p.Inv.ValidCopy...),
			CleanShared: append([]State(nil), p.Inv.CleanShared...),
		},
	}
	q.Rules = make([]Rule, len(p.Rules))
	for i, r := range p.Rules {
		nr := r
		nr.Guard.States = append([]State(nil), r.Guard.States...)
		nr.Data.Suppliers = append([]State(nil), r.Data.Suppliers...)
		if r.Observe != nil {
			nr.Observe = make(map[State]State, len(r.Observe))
			for k, v := range r.Observe {
				nr.Observe[k] = v
			}
		}
		q.Rules[i] = nr
	}
	return q
}
