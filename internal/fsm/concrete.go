package fsm

import (
	"fmt"
	"strings"
)

// NoData is the version number of a cache that holds no copy of the block.
const NoData int64 = -1

// Config is a concrete global state of one memory block in a system with a
// fixed number of caches: the tuple of per-cache states (Definition 2 of the
// paper) augmented with concrete data versions standing in for the context
// variables of Definition 4. Version numbers replace abstract data values: a
// store creates version Latest+1, and a copy is fresh exactly when its
// version equals Latest.
type Config struct {
	// States[i] is the state of cache i.
	States []State
	// Versions[i] is the data version held by cache i, or NoData.
	Versions []int64
	// MemVersion is the version held by main memory.
	MemVersion int64
	// Latest is the version created by the most recent store (0 before any
	// store; memory initially holds version 0).
	Latest int64
}

// NewConfig returns the initial configuration for n caches of protocol p:
// every cache in the Initial state with no data, memory fresh at version 0.
func NewConfig(p *Protocol, n int) *Config {
	c := &Config{
		States:   make([]State, n),
		Versions: make([]int64, n),
	}
	for i := range c.States {
		c.States[i] = p.Initial
		c.Versions[i] = NoData
	}
	return c
}

// Clone returns an independent deep copy.
func (c *Config) Clone() *Config {
	return &Config{
		States:     append([]State(nil), c.States...),
		Versions:   append([]int64(nil), c.Versions...),
		MemVersion: c.MemVersion,
		Latest:     c.Latest,
	}
}

// CopyFrom overwrites c with a deep copy of src, reusing c's slice capacity
// when possible. It is the allocation-free counterpart of Clone used by the
// enumeration engines' configuration pools.
func (c *Config) CopyFrom(src *Config) {
	c.States = append(c.States[:0], src.States...)
	c.Versions = append(c.Versions[:0], src.Versions...)
	c.MemVersion = src.MemVersion
	c.Latest = src.Latest
}

// N returns the number of caches.
func (c *Config) N() int { return len(c.States) }

// Key returns a canonical string identifying the full configuration
// including data versions.
func (c *Config) Key() string {
	var b strings.Builder
	for i, s := range c.States {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", s, c.Versions[i])
	}
	fmt.Fprintf(&b, "|m:%d|l:%d", c.MemVersion, c.Latest)
	return b.String()
}

// StateKey returns a canonical string identifying only the state tuple,
// ignoring data. This is the strict-equivalence key of Section 3.1.
func (c *Config) StateKey() string {
	parts := make([]string, len(c.States))
	for i, s := range c.States {
		parts[i] = string(s)
	}
	return strings.Join(parts, ",")
}

// String renders the configuration as (q1, q2, ..., qn).
func (c *Config) String() string { return "(" + c.StateKey() + ")" }

// EvalGuard evaluates guard g for originator cache i over configuration c.
func EvalGuard(g Guard, c *Config, origin int) bool {
	switch g.Kind {
	case GuardAlways:
		return true
	case GuardAnyOther, GuardNoOther:
		found := false
		for j, s := range c.States {
			if j == origin {
				continue
			}
			for _, gs := range g.States {
				if s == gs {
					found = true
				}
			}
			if found {
				break
			}
		}
		if g.Kind == GuardAnyOther {
			return found
		}
		return !found
	default:
		return false
	}
}

// StepResult reports what happened during one concrete Step.
type StepResult struct {
	// Rule is the rule that fired, or nil when the operation was a no-op in
	// the originator's state (e.g. replacing an Invalid block).
	Rule *Rule
	// ReadVersion is the version the processor observed on OpRead, or
	// NoData for other operations.
	ReadVersion int64
	// Supplier is the index of the cache that supplied data, or -1.
	Supplier int
}

// Step applies operation op issued by cache origin to configuration c under
// protocol p, mutating c in place. The bus transaction is atomic, matching
// the paper's assumption of atomic accesses (Section 2.4).
//
// Step returns an error only for specification-level problems (no rule's
// guard matched although rules exist for the pair, or a SrcCache rule fired
// with no available supplier); such errors indicate an ill-formed protocol,
// not a coherence violation. Coherence violations are detected by CheckConfig.
//
// Step is the reference semantics. Hot paths (the simulator, the enumeration
// engines, trace replay) step through the compiled form instead —
// compile.Compile then compile.Protocol.Step — which is pinned bit-for-bit
// against this function, including error text, by the compile parity suite.
func Step(p *Protocol, c *Config, origin int, op Op) (StepResult, error) {
	res := StepResult{ReadVersion: NoData, Supplier: -1}
	if origin < 0 || origin >= len(c.States) {
		return res, fmt.Errorf("fsm: step: cache index %d out of range", origin)
	}
	rules := p.RulesFor(c.States[origin], op)
	if len(rules) == 0 {
		return res, nil // no-op in this state
	}
	var rule *Rule
	for _, r := range rules {
		if EvalGuard(r.Guard, c, origin) {
			rule = r
			break
		}
	}
	if rule == nil {
		return res, fmt.Errorf("fsm: protocol %s: no guard matched for cache %d in state %s on %s of %s",
			p.Name, origin, c.States[origin], op, c.String())
	}
	res.Rule = rule

	// 1. Locate a supplier and capture its data before any state changes.
	origVer := c.Versions[origin]
	switch rule.Data.Source {
	case SrcNone:
		origVer = NoData
	case SrcKeep:
		// unchanged
	case SrcMemory:
		origVer = c.MemVersion
	case SrcCache:
		sup := -1
		for _, ss := range rule.Data.Suppliers {
			for j, s := range c.States {
				if j != origin && s == ss {
					sup = j
					break
				}
			}
			if sup >= 0 {
				break
			}
		}
		if sup < 0 {
			return res, fmt.Errorf("fsm: protocol %s: rule %s fired with no supplier in %v for %s",
				p.Name, rule.Name, rule.Data.Suppliers, c.String())
		}
		res.Supplier = sup
		origVer = c.Versions[sup]
		if rule.Data.SupplierWriteBack {
			c.MemVersion = c.Versions[sup]
		}
	}

	// 2. Coincident (observed) transitions on all other caches.
	for j := range c.States {
		if j == origin {
			continue
		}
		next := rule.ObservedNext(c.States[j])
		c.States[j] = next
		if !p.IsValidCopy(next) {
			c.Versions[j] = NoData
		}
	}

	// 3. Originator transition.
	c.States[origin] = rule.Next

	// 4. Store semantics: a new value is created; every copy not explicitly
	// updated becomes stale relative to it.
	if rule.Data.Store {
		c.Latest++
		origVer = c.Latest
		if rule.Data.WriteThrough {
			c.MemVersion = c.Latest
		}
		if rule.Data.UpdateSharers {
			for j := range c.States {
				if j != origin && p.IsValidCopy(c.States[j]) {
					c.Versions[j] = c.Latest
				}
			}
		}
	}

	// 5. Write-back and drop.
	if rule.Data.WriteBackSelf {
		c.MemVersion = origVer
	}
	if rule.Data.DropSelf {
		origVer = NoData
	}
	c.Versions[origin] = origVer

	if op == OpRead {
		res.ReadVersion = c.Versions[origin]
	}
	return res, nil
}

// Violation describes a correctness violation found in a configuration.
type Violation struct {
	Kind   ViolationKind
	Detail string
}

// ViolationKind classifies concrete and symbolic invariant violations.
type ViolationKind int

const (
	// ViolationNone means the state is permissible.
	ViolationNone ViolationKind = iota
	// ViolationExclusive: a cache in an exclusive state coexists with
	// another valid copy.
	ViolationExclusive
	// ViolationOwners: two or more caches hold ownership states.
	ViolationOwners
	// ViolationStaleRead: a cache in a readable state holds an obsolete
	// value (Definition 3).
	ViolationStaleRead
	// ViolationCleanShared: a clean-shared copy coexists with obsolete
	// memory (extension check, not part of the paper's Definition 3).
	ViolationCleanShared
)

func (k ViolationKind) String() string {
	switch k {
	case ViolationNone:
		return "none"
	case ViolationExclusive:
		return "exclusive-state-conflict"
	case ViolationOwners:
		return "multiple-owners"
	case ViolationStaleRead:
		return "stale-readable-copy"
	case ViolationCleanShared:
		return "clean-shared-vs-stale-memory"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

func (v Violation) Error() string {
	return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
}

// CheckConfig evaluates the protocol invariants (Section 5.4 of DESIGN.md)
// over a concrete configuration and returns every violation found. The
// strict flag additionally enables the CleanShared memory check.
func CheckConfig(p *Protocol, c *Config, strict bool) []Violation {
	var out []Violation
	inSet := func(s State, set []State) bool {
		for _, t := range set {
			if s == t {
				return true
			}
		}
		return false
	}

	// Exclusive: cache in exclusive state must be the sole valid copy.
	for i, s := range c.States {
		if !inSet(s, p.Inv.Exclusive) {
			continue
		}
		for j, t := range c.States {
			if j != i && p.IsValidCopy(t) {
				out = append(out, Violation{
					Kind:   ViolationExclusive,
					Detail: fmt.Sprintf("cache %d in exclusive state %s coexists with cache %d in %s", i, s, j, t),
				})
			}
		}
	}

	// Owners: at most one cache across all owner states.
	owners := 0
	for _, s := range c.States {
		if inSet(s, p.Inv.Owners) {
			owners++
		}
	}
	if owners > 1 {
		out = append(out, Violation{
			Kind:   ViolationOwners,
			Detail: fmt.Sprintf("%d caches hold ownership states", owners),
		})
	}

	// Data consistency (Definition 3): readable copies must be fresh.
	for i, s := range c.States {
		if inSet(s, p.Inv.Readable) && c.Versions[i] != c.Latest {
			out = append(out, Violation{
				Kind: ViolationStaleRead,
				Detail: fmt.Sprintf("cache %d in readable state %s holds version %d but latest is %d",
					i, s, c.Versions[i], c.Latest),
			})
		}
	}

	if strict && len(p.Inv.CleanShared) > 0 {
		for i, s := range c.States {
			if inSet(s, p.Inv.CleanShared) && c.MemVersion != c.Versions[i] {
				out = append(out, Violation{
					Kind: ViolationCleanShared,
					Detail: fmt.Sprintf("cache %d in clean state %s holds version %d but memory holds %d",
						i, s, c.Versions[i], c.MemVersion),
				})
			}
		}
	}
	return out
}
