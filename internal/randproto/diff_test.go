package randproto

import (
	"math/rand"
	"testing"

	"repro/internal/enum"
	"repro/internal/symbolic"
)

const fuzzRounds = 300

// TestDifferentialSoundness fuzzes the verifier: for hundreds of random
// protocols, any violation reachable concretely (n = 2..3 caches) must also
// be reported by the symbolic expansion. A failure here would mean the
// symbolic abstraction can hide real coherence bugs — the one thing a
// verifier must never do.
func TestDifferentialSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(1993))
	concreteBuggy, symbolicOnly := 0, 0
	for round := 0; round < fuzzRounds; round++ {
		p := New(rng, 1+rng.Intn(3))
		sym, err := symbolic.Expand(p, symbolic.Options{MaxVisits: 50000})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(sym.SpecErrors) > 0 {
			t.Fatalf("round %d: generated protocol has spec errors: %v", round, sym.SpecErrors)
		}
		symBad := len(sym.Violations) > 0

		concBad := false
		for _, n := range []int{2, 3} {
			res, err := enum.Exhaustive(p, n, enum.Options{MaxStates: 200000})
			if err != nil {
				t.Fatalf("round %d n=%d: %v", round, n, err)
			}
			if len(res.SpecErrors) > 0 {
				t.Fatalf("round %d n=%d: concrete spec errors: %v", round, n, res.SpecErrors)
			}
			if len(res.Violations) > 0 {
				concBad = true
			}
		}
		if concBad {
			concreteBuggy++
			if !symBad {
				t.Fatalf("round %d: UNSOUND — protocol %s has a concrete violation at n≤3 that the symbolic verifier missed",
					round, p.Name)
			}
		}
		if symBad && !concBad {
			// Legitimate: the symbolic family covers arbitrary n, and some
			// violations need more than 3 caches (or are over-approximation
			// artifacts of the pessimistic class-data merge). Track the
			// rate for information only.
			symbolicOnly++
		}
	}
	if concreteBuggy == 0 {
		t.Fatal("the fuzzer generated no buggy protocols; it is not exercising anything")
	}
	t.Logf("fuzzed %d protocols: %d concretely buggy (all caught symbolically), %d flagged only symbolically",
		fuzzRounds, concreteBuggy, symbolicOnly)
}

// TestDifferentialCompleteness: protocols the symbolic verifier declares
// permissible must enumerate clean for every tested cache count, and every
// reachable concrete state must be covered by an essential state (Theorem 1
// on random protocols).
func TestDifferentialCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cleanCount := 0
	for round := 0; round < fuzzRounds; round++ {
		p := New(rng, 1+rng.Intn(3))
		eng, err := symbolic.NewEngine(p)
		if err != nil {
			t.Fatal(err)
		}
		sym := eng.Expand(symbolic.Options{MaxVisits: 50000})
		for _, n := range []int{2, 3} {
			res, err := enum.Counting(p, n, enum.Options{KeepReachable: true, MaxStates: 200000})
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				continue
			}
			if sym.OK() && len(res.Violations) > 0 {
				t.Fatalf("round %d: symbolic said permissible but n=%d found %v",
					round, n, res.Violations[0].Violations[0])
			}
			for _, cfg := range res.Reachable {
				a, err := eng.Abstract(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, ok := symbolic.CoveredBy(a, sym.Essential); !ok {
					t.Fatalf("round %d: reachable state %s not covered by essential states (protocol %s)",
						round, cfg, p.Name)
				}
			}
		}
		if sym.OK() {
			cleanCount++
		}
	}
	t.Logf("fuzzed %d protocols, %d verified permissible", fuzzRounds, cleanCount)
}

func TestGeneratorDeterministic(t *testing.T) {
	a := New(rand.New(rand.NewSource(7)), 3)
	b := New(rand.New(rand.NewSource(7)), 3)
	if a.Name != b.Name || len(a.Rules) != len(b.Rules) {
		t.Fatal("same seed must generate the same protocol")
	}
	for i := range a.Rules {
		if a.Rules[i].Next != b.Rules[i].Next {
			t.Fatal("same seed must generate the same rules")
		}
	}
}

func TestGeneratorBoundsStates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := len(New(rng, 0).States); got != 2 {
		t.Errorf("clamped low: %d states", got)
	}
	if got := len(New(rng, 99).States); got != 5 {
		t.Errorf("clamped high: %d states", got)
	}
}
