package randproto

import (
	"math/rand"
	"testing"

	"repro/internal/enum"
	"repro/internal/symbolic"
)

// FuzzDifferentialAgreement is the native fuzz entry point for the
// differential property: run with
//
//	go test -fuzz=FuzzDifferentialAgreement ./internal/randproto
//
// Each input seeds the protocol generator; the symbolic verifier and the
// n=3 explicit enumeration must agree (soundness direction) and coverage
// must hold.
func FuzzDifferentialAgreement(f *testing.F) {
	for _, seed := range []int64{0, 1, 42, 1993, -7, 1 << 40} {
		f.Add(seed, uint8(2))
	}
	f.Fuzz(func(t *testing.T, seed int64, nStates uint8) {
		p := New(rand.New(rand.NewSource(seed)), int(nStates%4)+1)
		eng, err := symbolic.NewEngine(p)
		if err != nil {
			t.Fatal(err)
		}
		sym := eng.Expand(symbolic.Options{MaxVisits: 50000})
		if len(sym.SpecErrors) > 0 {
			t.Fatalf("generated protocol has spec errors: %v", sym.SpecErrors)
		}

		res, err := enum.Counting(p, 3, enum.Options{KeepReachable: true, MaxStates: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Truncated {
			t.Skip("state space truncated")
		}
		if len(res.Violations) > 0 && len(sym.Violations) == 0 {
			t.Fatalf("UNSOUND: concrete violation missed symbolically (protocol %s)", p.Name)
		}
		for _, cfg := range res.Reachable {
			a, err := eng.Abstract(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := symbolic.CoveredBy(a, sym.Essential); !ok {
				t.Fatalf("coverage hole: %s not covered (protocol %s)", cfg, p.Name)
			}
		}
	})
}
