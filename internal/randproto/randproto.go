// Package randproto generates random — but well-formed — cache coherence
// protocols for differential testing of the verifier. Most generated
// protocols are incoherent by accident, which is exactly the point: the
// symbolic verifier and the explicit-state enumerator must AGREE on every
// one of them. Concretely (see the tests):
//
//   - soundness: a violation reachable with a fixed number of caches must
//     also be found symbolically;
//   - completeness: a protocol the symbolic verifier declares permissible
//     must enumerate clean for every tested cache count; and
//   - coverage: every enumerated state must abstract into some essential
//     state (Theorem 1 must hold even for erroneous protocols, because the
//     expansion does not stop at violations).
package randproto

import (
	"fmt"
	"math/rand"

	"repro/internal/fsm"
)

// New generates a random protocol with the given number of valid states
// (1..4 is sensible). The generated protocol always passes
// (*fsm.Protocol).Validate: guard cascades are total, suppliers are
// guaranteed by their guards, and CharNull protocols keep their next states
// and observe maps guard-independent. Everything else — next states,
// coincident transitions, data flags, invariant declarations — is drawn at
// random, so the protocol is usually incoherent.
func New(rng *rand.Rand, validStates int) *fsm.Protocol {
	if validStates < 1 {
		validStates = 1
	}
	if validStates > 4 {
		validStates = 4
	}
	const inv = fsm.State("I")
	valid := make([]fsm.State, validStates)
	for i := range valid {
		valid[i] = fsm.State(fmt.Sprintf("V%d", i+1))
	}
	states := append([]fsm.State{inv}, valid...)

	char := fsm.CharNull
	if rng.Intn(2) == 0 {
		char = fsm.CharSharing
	}

	pickValid := func() fsm.State { return valid[rng.Intn(len(valid))] }
	subset := func() []fsm.State {
		var out []fsm.State
		for _, s := range valid {
			if rng.Intn(2) == 0 {
				out = append(out, s)
			}
		}
		if len(out) == 0 {
			out = append(out, pickValid())
		}
		return out
	}
	randomObserve := func() map[fsm.State]fsm.State {
		obs := map[fsm.State]fsm.State{}
		for _, s := range valid {
			switch rng.Intn(3) {
			case 0: // identity
			case 1:
				obs[s] = inv
			case 2:
				obs[s] = pickValid()
			}
		}
		if len(obs) == 0 {
			return nil
		}
		return obs
	}

	p := &fsm.Protocol{
		Name:           fmt.Sprintf("Random-%d", rng.Int31()),
		States:         states,
		Initial:        inv,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: char,
		Inv: fsm.Invariants{
			ValidCopy: valid,
			Readable:  valid,
			Exclusive: subset(),
			Owners:    subset(),
		},
	}

	// Hits: every valid state handles R and W locally (possibly moving to
	// another valid state — most bugs come from here and from forgotten
	// invalidations).
	for _, s := range valid {
		p.Rules = append(p.Rules, fsm.Rule{
			Name: fmt.Sprintf("read-hit-%s", s), From: s, On: fsm.OpRead,
			Guard: fsm.Always(), Next: pickValid(),
			Data: fsm.DataEffect{Source: fsm.SrcKeep},
		})
		w := fsm.Rule{
			Name: fmt.Sprintf("write-hit-%s", s), From: s, On: fsm.OpWrite,
			Guard: fsm.Always(), Next: pickValid(),
			Observe: randomObserve(),
			Data: fsm.DataEffect{
				Source: fsm.SrcKeep, Store: true,
				WriteThrough:  rng.Intn(3) == 0,
				UpdateSharers: rng.Intn(3) == 0,
			},
		}
		p.Rules = append(p.Rules, w)
		p.Rules = append(p.Rules, fsm.Rule{
			Name: fmt.Sprintf("replace-%s", s), From: s, On: fsm.OpReplace,
			Guard: fsm.Always(), Next: inv,
			Data: fsm.DataEffect{
				Source: fsm.SrcKeep, DropSelf: true,
				WriteBackSelf: rng.Intn(2) == 0,
			},
		})
	}

	// Misses: a two-rule cascade per operation — suppliers when a guarded
	// subset is populated, memory otherwise. CharNull protocols must keep
	// next/observe guard-independent (Validate enforces it).
	addMiss := func(op fsm.Op, store bool) {
		guardSet := subset()
		nextA, nextB := pickValid(), pickValid()
		obsA, obsB := randomObserve(), randomObserve()
		if char == fsm.CharNull {
			nextB = nextA
			obsB = obsA
		}
		p.Rules = append(p.Rules,
			fsm.Rule{
				Name: fmt.Sprintf("%s-miss-cache", op), From: inv, On: op,
				Guard: fsm.AnyOther(guardSet...), Next: nextA,
				Observe: obsA,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: guardSet,
					SupplierWriteBack: rng.Intn(2) == 0,
					Store:             store,
					WriteThrough:      store && rng.Intn(3) == 0,
					UpdateSharers:     store && rng.Intn(3) == 0,
				},
			},
			fsm.Rule{
				Name: fmt.Sprintf("%s-miss-memory", op), From: inv, On: op,
				Guard: fsm.NoOther(guardSet...), Next: nextB,
				Observe: obsB,
				Data: fsm.DataEffect{
					Source:       fsm.SrcMemory,
					Store:        store,
					WriteThrough: store && rng.Intn(3) == 0,
				},
			},
		)
	}
	addMiss(fsm.OpRead, false)
	addMiss(fsm.OpWrite, true)

	if err := p.Validate(); err != nil {
		// The construction above satisfies every Validate rule; a failure
		// is a bug in this generator.
		panic(fmt.Sprintf("randproto: generated protocol invalid: %v", err))
	}
	return p
}
