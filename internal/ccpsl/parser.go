package ccpsl

import (
	"fmt"

	"repro/internal/fsm"
)

// Parse compiles a ccpsl specification into a validated protocol.
func Parse(src string) (*fsm.Protocol, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	pr := &parser{toks: toks}
	p, err := pr.spec()
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("ccpsl: %w", err)
	}
	return p, nil
}

type parser struct {
	toks []token
	pos  int
}

func (pr *parser) peek() token { return pr.toks[pr.pos] }

func (pr *parser) next() token {
	t := pr.toks[pr.pos]
	if t.kind != tokEOF {
		pr.pos++
	}
	return t
}

func (pr *parser) skipNewlines() {
	for pr.peek().kind == tokNewline {
		pr.pos++
	}
}

func (pr *parser) expect(k tokenKind) (token, error) {
	t := pr.next()
	if t.kind != k {
		return t, errf(t.line, "expected %v, found %v %q", k, t.kind, t.text)
	}
	return t, nil
}

func (pr *parser) keyword(word string) error {
	t := pr.next()
	if t.kind != tokIdent || t.text != word {
		return errf(t.line, "expected %q, found %q", word, t.text)
	}
	return nil
}

func (pr *parser) ident() (token, error) {
	t := pr.next()
	if t.kind != tokIdent {
		return t, errf(t.line, "expected identifier, found %v %q", t.kind, t.text)
	}
	return t, nil
}

// identList parses IDENT { "," IDENT }.
func (pr *parser) identList() ([]token, error) {
	var out []token
	for {
		t, err := pr.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if pr.peek().kind != tokComma {
			return out, nil
		}
		pr.next()
	}
}

func (pr *parser) spec() (*fsm.Protocol, error) {
	pr.skipNewlines()
	if err := pr.keyword("protocol"); err != nil {
		return nil, err
	}
	nameTok, err := pr.ident()
	if err != nil {
		return nil, err
	}
	if _, err := pr.expect(tokNewline); err != nil {
		return nil, err
	}

	p := &fsm.Protocol{
		Name: nameTok.text,
		Ops:  []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
	}

	pr.skipNewlines()
	// Optional characteristic and ops declarations, in either order.
	for pr.peek().kind == tokIdent && (pr.peek().text == "characteristic" || pr.peek().text == "ops") {
		t := pr.next()
		switch t.text {
		case "characteristic":
			v, err := pr.ident()
			if err != nil {
				return nil, err
			}
			switch v.text {
			case "null":
				p.Characteristic = fsm.CharNull
			case "sharing":
				p.Characteristic = fsm.CharSharing
			default:
				return nil, errf(v.line, "characteristic must be \"null\" or \"sharing\", found %q", v.text)
			}
		case "ops":
			p.Ops = nil
			for pr.peek().kind == tokIdent {
				p.Ops = append(p.Ops, fsm.Op(pr.next().text))
			}
			if len(p.Ops) == 0 {
				return nil, errf(t.line, "ops declaration needs at least one operation")
			}
		}
		if _, err := pr.expect(tokNewline); err != nil {
			return nil, err
		}
		pr.skipNewlines()
	}

	if err := pr.statesBlock(p); err != nil {
		return nil, err
	}

	pr.skipNewlines()
	for pr.peek().kind != tokEOF {
		if err := pr.ruleBlock(p); err != nil {
			return nil, err
		}
		pr.skipNewlines()
	}
	return p, nil
}

func (pr *parser) statesBlock(p *fsm.Protocol) error {
	if err := pr.keyword("states"); err != nil {
		return err
	}
	if _, err := pr.expect(tokLBrace); err != nil {
		return err
	}
	haveInitial := false
	for {
		pr.skipNewlines()
		if pr.peek().kind == tokRBrace {
			pr.next()
			break
		}
		nameTok, err := pr.ident()
		if err != nil {
			return err
		}
		st := fsm.State(nameTok.text)
		p.States = append(p.States, st)
		for pr.peek().kind == tokIdent {
			flag := pr.next()
			switch flag.text {
			case "initial":
				if haveInitial {
					return errf(flag.line, "duplicate initial state %q", nameTok.text)
				}
				haveInitial = true
				p.Initial = st
			case "valid":
				p.Inv.ValidCopy = append(p.Inv.ValidCopy, st)
			case "readable":
				p.Inv.Readable = append(p.Inv.Readable, st)
			case "exclusive":
				p.Inv.Exclusive = append(p.Inv.Exclusive, st)
			case "owner":
				p.Inv.Owners = append(p.Inv.Owners, st)
			case "clean":
				p.Inv.CleanShared = append(p.Inv.CleanShared, st)
			default:
				return errf(flag.line, "unknown state flag %q (want %s)", flag.text,
					quoteList([]string{"initial", "valid", "readable", "exclusive", "owner", "clean"}))
			}
		}
		if _, err := pr.expect(tokNewline); err != nil {
			return err
		}
	}
	if !haveInitial {
		return errf(pr.peek().line, "no state is marked initial")
	}
	return nil
}

func (pr *parser) ruleBlock(p *fsm.Protocol) error {
	if err := pr.keyword("rule"); err != nil {
		return err
	}
	nameTok, err := pr.ident()
	if err != nil {
		return err
	}
	if _, err := pr.expect(tokLBrace); err != nil {
		return err
	}
	r := fsm.Rule{Name: nameTok.text, Guard: fsm.Always()}
	haveFrom, haveNext, haveData := false, false, false

	for {
		pr.skipNewlines()
		if pr.peek().kind == tokRBrace {
			pr.next()
			break
		}
		clause, err := pr.ident()
		if err != nil {
			return err
		}
		switch clause.text {
		case "from":
			if haveFrom {
				return errf(clause.line, "rule %s: duplicate from clause", r.Name)
			}
			haveFrom = true
			st, err := pr.ident()
			if err != nil {
				return err
			}
			r.From = fsm.State(st.text)
			if err := pr.keyword("on"); err != nil {
				return err
			}
			op, err := pr.ident()
			if err != nil {
				return err
			}
			r.On = fsm.Op(op.text)
			if pr.peek().kind == tokIdent && pr.peek().text == "when" {
				pr.next()
				kindTok, err := pr.ident()
				if err != nil {
					return err
				}
				var kind fsm.GuardKind
				switch kindTok.text {
				case "any-other":
					kind = fsm.GuardAnyOther
				case "no-other":
					kind = fsm.GuardNoOther
				default:
					return errf(kindTok.line, "guard must be \"any-other\" or \"no-other\", found %q", kindTok.text)
				}
				list, err := pr.identList()
				if err != nil {
					return err
				}
				g := fsm.Guard{Kind: kind}
				for _, t := range list {
					g.States = append(g.States, fsm.State(t.text))
				}
				r.Guard = g
			}
		case "next":
			if haveNext {
				return errf(clause.line, "rule %s: duplicate next clause", r.Name)
			}
			haveNext = true
			st, err := pr.ident()
			if err != nil {
				return err
			}
			r.Next = fsm.State(st.text)
		case "observe":
			if r.Observe == nil {
				r.Observe = make(map[fsm.State]fsm.State)
			}
			for {
				from, err := pr.ident()
				if err != nil {
					return err
				}
				if _, err := pr.expect(tokArrow); err != nil {
					return err
				}
				to, err := pr.ident()
				if err != nil {
					return err
				}
				if _, dup := r.Observe[fsm.State(from.text)]; dup {
					return errf(from.line, "rule %s: duplicate observe source %q", r.Name, from.text)
				}
				r.Observe[fsm.State(from.text)] = fsm.State(to.text)
				if pr.peek().kind != tokComma {
					break
				}
				pr.next()
			}
		case "data":
			if haveData {
				return errf(clause.line, "rule %s: duplicate data clause", r.Name)
			}
			haveData = true
			if err := pr.dataClause(&r); err != nil {
				return err
			}
		default:
			return errf(clause.line, "unknown clause %q in rule %s (want %s)", clause.text, r.Name,
				quoteList([]string{"from", "next", "observe", "data"}))
		}
		if _, err := pr.expect(tokNewline); err != nil {
			return err
		}
	}
	if !haveFrom {
		return errf(nameTok.line, "rule %s: missing from clause", r.Name)
	}
	if !haveNext {
		return errf(nameTok.line, "rule %s: missing next clause", r.Name)
	}
	if !haveData {
		return errf(nameTok.line, "rule %s: missing data clause", r.Name)
	}
	p.Rules = append(p.Rules, r)
	return nil
}

func (pr *parser) dataClause(r *fsm.Rule) error {
	src, err := pr.ident()
	if err != nil {
		return err
	}
	switch src.text {
	case "none":
		r.Data.Source = fsm.SrcNone
	case "keep":
		r.Data.Source = fsm.SrcKeep
	case "memory":
		r.Data.Source = fsm.SrcMemory
	case "from-cache":
		r.Data.Source = fsm.SrcCache
		for pr.peek().kind == tokIdent && !isDataFlag(pr.peek().text) {
			r.Data.Suppliers = append(r.Data.Suppliers, fsm.State(pr.next().text))
			if pr.peek().kind == tokComma {
				pr.next() // commas between suppliers are optional
			}
		}
		if len(r.Data.Suppliers) == 0 {
			return errf(src.line, "rule %s: from-cache needs at least one supplier state", r.Name)
		}
	default:
		return errf(src.line, "data source must be one of %s, found %q",
			quoteList([]string{"none", "keep", "memory", "from-cache"}), src.text)
	}
	for pr.peek().kind == tokIdent {
		flag := pr.next()
		switch flag.text {
		case "store":
			r.Data.Store = true
		case "write-through":
			r.Data.WriteThrough = true
		case "update-sharers":
			r.Data.UpdateSharers = true
		case "writeback-supplier":
			r.Data.SupplierWriteBack = true
		case "writeback-self":
			r.Data.WriteBackSelf = true
		case "drop":
			r.Data.DropSelf = true
		case "spin":
			r.Data.Spin = true
		default:
			return errf(flag.line, "unknown data flag %q (want %s)", flag.text,
				quoteList([]string{"store", "write-through", "update-sharers", "writeback-supplier", "writeback-self", "drop", "spin"}))
		}
	}
	return nil
}

func isDataFlag(word string) bool {
	switch word {
	case "store", "write-through", "update-sharers", "writeback-supplier", "writeback-self", "drop", "spin":
		return true
	}
	return false
}
