package ccpsl

import (
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/symbolic"
)

const msiSpec = `
# A minimal MSI protocol.
protocol MSI-spec
characteristic null

states {
  Invalid  initial
  Shared   valid readable clean
  Modified valid readable exclusive owner
}

rule read-hit-shared   { from Shared on R
                         next Shared
                         data keep }
rule read-hit-modified { from Modified on R
                         next Modified
                         data keep }
rule read-miss-owned   { from Invalid on R when any-other Modified
                         next Shared
                         observe Modified -> Shared
                         data from-cache Modified writeback-supplier }
rule read-miss-clean   { from Invalid on R when no-other Modified
                         next Shared
                         observe Modified -> Shared
                         data memory }
rule write-hit-mod     { from Modified on W
                         next Modified
                         data keep store }
rule write-hit-shared  { from Shared on W
                         next Modified
                         observe Shared -> Invalid, Modified -> Invalid
                         data keep store }
rule write-miss-owned  { from Invalid on W when any-other Modified
                         next Modified
                         observe Shared -> Invalid, Modified -> Invalid
                         data from-cache Modified writeback-supplier store }
rule write-miss-clean  { from Invalid on W when no-other Modified
                         next Modified
                         observe Shared -> Invalid, Modified -> Invalid
                         data memory store }
rule replace-modified  { from Modified on Z
                         next Invalid
                         data keep writeback-self drop }
rule replace-shared    { from Shared on Z
                         next Invalid
                         data keep drop }
`

func TestParseMSISpec(t *testing.T) {
	p, err := Parse(msiSpec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "MSI-spec" {
		t.Errorf("name = %s", p.Name)
	}
	if p.Characteristic != fsm.CharNull {
		t.Errorf("characteristic = %v", p.Characteristic)
	}
	if len(p.States) != 3 || len(p.Rules) != 10 {
		t.Errorf("%d states, %d rules", len(p.States), len(p.Rules))
	}
	if p.Initial != "Invalid" {
		t.Errorf("initial = %s", p.Initial)
	}
	if len(p.Inv.ValidCopy) != 2 || len(p.Inv.Exclusive) != 1 || len(p.Inv.Owners) != 1 {
		t.Errorf("invariants wrong: %+v", p.Inv)
	}
}

func TestParsedSpecVerifiesLikeBuiltin(t *testing.T) {
	p, err := Parse(msiSpec)
	if err != nil {
		t.Fatal(err)
	}
	specRes, err := symbolic.Expand(p, symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	builtinRes, err := symbolic.Expand(protocols.MSI(), symbolic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !specRes.OK() {
		t.Fatalf("spec MSI refuted: %v", specRes.Violations)
	}
	if len(specRes.Essential) != len(builtinRes.Essential) {
		t.Fatalf("spec gives %d essential states, builtin %d",
			len(specRes.Essential), len(builtinRes.Essential))
	}
}

func TestRoundTripAllBuiltins(t *testing.T) {
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			spec := Format(p)
			q, err := Parse(spec)
			if err != nil {
				t.Fatalf("re-parse failed: %v\nspec:\n%s", err, spec)
			}
			// Formatting the parsed protocol must be a fixpoint.
			if spec2 := Format(q); spec2 != spec {
				t.Fatalf("Format∘Parse is not a fixpoint:\n--- first\n%s\n--- second\n%s", spec, spec2)
			}
			// And it must verify identically.
			a, err := symbolic.Expand(p, symbolic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := symbolic.Expand(q, symbolic.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Essential) != len(b.Essential) || a.Visits != b.Visits || a.OK() != b.OK() {
				t.Fatalf("round-tripped protocol verifies differently: %d/%d vs %d/%d",
					len(a.Essential), a.Visits, len(b.Essential), b.Visits)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", `expected "protocol"`},
		{"missing states", "protocol P\n", `expected "states"`},
		{"bad characteristic", "protocol P\ncharacteristic magic\nstates {\n I initial\n V valid readable\n}\n", "characteristic must be"},
		{"no initial", "protocol P\nstates {\n I\n V valid readable\n}\n", "no state is marked initial"},
		{"duplicate initial", "protocol P\nstates {\n I initial\n V initial valid\n}\n", "duplicate initial"},
		{"unknown flag", "protocol P\nstates {\n I initial frozen\n}\n", "unknown state flag"},
		{"unknown clause", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n whence I\n}\n", "unknown clause"},
		{"missing from", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n next V\n data memory\n}\n", "missing from clause"},
		{"missing next", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n from I on R\n data memory\n}\n", "missing next clause"},
		{"missing data", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n from I on R\n next V\n}\n", "missing data clause"},
		{"bad guard kind", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n from I on R when somebody V\n next V\n data memory\n}\n", "guard must be"},
		{"bad data source", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n from I on R\n next V\n data teleport\n}\n", "data source must be"},
		{"bad data flag", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n from I on R\n next V\n data memory loudly\n}\n", "unknown data flag"},
		{"from-cache no suppliers", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n from I on R\n next V\n data from-cache store\n}\n", "at least one supplier"},
		{"duplicate observe", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n from I on R\n next V\n observe V -> I, V -> V\n data memory\n}\n", "duplicate observe"},
		{"duplicate from", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n from I on R\n from I on W\n next V\n data memory\n}\n", "duplicate from"},
		{"stray character", "protocol P$\n", "unexpected character"},
		{"undeclared rule state", "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n from Q on R\n next V\n data memory\n}\n", "undeclared From state"},
		{"empty ops", "protocol P\nops\nstates {\n I initial\n V valid readable\n}\n", "at least one operation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	src := "protocol P\nstates {\n I initial\n V valid readable\n}\nrule r {\n whence I\n}\n"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 7") {
		t.Fatalf("error should point at line 7: %v", err)
	}
}

func TestParseComments(t *testing.T) {
	src := `# heading comment
protocol P  # trailing comment
characteristic null
# comment between declarations
states {
  I initial   # the invalid state
  V valid readable
}
rule miss { from I on R
            next V
            data memory }
rule hit  { from V on R
            next V
            data keep }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.States) != 2 || len(p.Rules) != 2 {
		t.Fatalf("comments disturbed parsing: %d states, %d rules", len(p.States), len(p.Rules))
	}
}

func TestParseCustomOps(t *testing.T) {
	src := `protocol P
ops R F
states {
  I initial
  V valid readable
}
rule miss  { from I on R
             next V
             data memory }
rule flush { from V on F
             next I
             data keep drop }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Ops) != 2 || p.Ops[1] != "F" {
		t.Fatalf("ops = %v", p.Ops)
	}
}

func TestParseGuardLists(t *testing.T) {
	src := `protocol P
characteristic sharing
states {
  I initial
  A valid readable
  B valid readable
}
rule rm-any { from I on R when any-other A, B
              next A
              data from-cache A, B }
rule rm-no  { from I on R when no-other A, B
              next B
              data memory }
rule ha     { from A on R
              next A
              data keep }
rule hb     { from B on R
              next B
              data keep }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := p.RulesFor("I", fsm.OpRead)[0]
	if r.Guard.Kind != fsm.GuardAnyOther || len(r.Guard.States) != 2 {
		t.Fatalf("guard = %+v", r.Guard)
	}
	if len(r.Data.Suppliers) != 2 {
		t.Fatalf("suppliers = %v", r.Data.Suppliers)
	}
}

func TestFormatStableOrdering(t *testing.T) {
	p := protocols.Illinois()
	a, b := Format(p), Format(p)
	if a != b {
		t.Fatal("Format must be deterministic (observe map ordering)")
	}
}

func TestLexerArrowVersusHyphen(t *testing.T) {
	toks, err := lex("Valid-Exclusive -> Shared-Dirty")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	if kinds[0] != tokIdent || texts[0] != "Valid-Exclusive" {
		t.Fatalf("first token %v %q", kinds[0], texts[0])
	}
	if kinds[1] != tokArrow {
		t.Fatalf("second token %v, want arrow", kinds[1])
	}
	if kinds[2] != tokIdent || texts[2] != "Shared-Dirty" {
		t.Fatalf("third token %v %q", kinds[2], texts[2])
	}
}

func TestParseRejectsSemanticErrorsViaValidate(t *testing.T) {
	// Syntactically fine, semantically broken: the initial state is a
	// valid copy. Parse must surface the fsm.Validate error.
	src := `protocol P
states {
  I initial valid readable
  V valid readable
}
rule hit { from V on R
           next V
           data keep }
`
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "must not be a valid-copy state") {
		t.Fatalf("want validation error, got %v", err)
	}
}

func TestSpinFlagRoundTrips(t *testing.T) {
	// The spin flag must survive Format → Parse: a lost spin flag would
	// silently turn a blocking lock acquire into a stale-read false
	// positive in the simulator.
	p, err := protocols.ByName("lock-msi")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(Format(p))
	if err != nil {
		t.Fatal(err)
	}
	spins := 0
	for i := range q.Rules {
		if q.Rules[i].Data.Spin {
			spins++
			if q.Rules[i].Next != q.Rules[i].From {
				t.Errorf("rule %s: spin rule moved", q.Rules[i].Name)
			}
		}
	}
	if spins != 3 {
		t.Fatalf("round-tripped Lock-MSI has %d spin rules, want 3", spins)
	}
}
