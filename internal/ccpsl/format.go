package ccpsl

import (
	"fmt"
	"strings"

	"repro/internal/fsm"
)

// Format renders a protocol as a ccpsl specification. Parse(Format(p))
// yields a protocol equivalent to p (same states, rules, invariants and
// characteristic function).
func Format(p *fsm.Protocol) string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s\n", p.Name)
	switch p.Characteristic {
	case fsm.CharSharing:
		b.WriteString("characteristic sharing\n")
	default:
		b.WriteString("characteristic null\n")
	}
	if !defaultOps(p.Ops) {
		b.WriteString("ops")
		for _, op := range p.Ops {
			b.WriteString(" " + string(op))
		}
		b.WriteByte('\n')
	}

	inSet := func(s fsm.State, set []fsm.State) bool {
		for _, t := range set {
			if s == t {
				return true
			}
		}
		return false
	}

	b.WriteString("\nstates {\n")
	for _, s := range p.States {
		var flags []string
		if s == p.Initial {
			flags = append(flags, "initial")
		}
		if inSet(s, p.Inv.ValidCopy) {
			flags = append(flags, "valid")
		}
		if inSet(s, p.Inv.Readable) {
			flags = append(flags, "readable")
		}
		if inSet(s, p.Inv.Exclusive) {
			flags = append(flags, "exclusive")
		}
		if inSet(s, p.Inv.Owners) {
			flags = append(flags, "owner")
		}
		if inSet(s, p.Inv.CleanShared) {
			flags = append(flags, "clean")
		}
		fmt.Fprintf(&b, "  %s", s)
		if len(flags) > 0 {
			fmt.Fprintf(&b, " %s", strings.Join(flags, " "))
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")

	for i := range p.Rules {
		r := &p.Rules[i]
		fmt.Fprintf(&b, "\nrule %s {\n", r.Name)
		fmt.Fprintf(&b, "  from %s on %s", r.From, r.On)
		switch r.Guard.Kind {
		case fsm.GuardAnyOther:
			fmt.Fprintf(&b, " when any-other %s", joinStates(r.Guard.States))
		case fsm.GuardNoOther:
			fmt.Fprintf(&b, " when no-other %s", joinStates(r.Guard.States))
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  next %s\n", r.Next)
		if len(r.Observe) > 0 {
			var pairs []string
			for _, s := range p.States { // deterministic order
				if t, ok := r.Observe[s]; ok {
					pairs = append(pairs, fmt.Sprintf("%s -> %s", s, t))
				}
			}
			fmt.Fprintf(&b, "  observe %s\n", strings.Join(pairs, ", "))
		}
		b.WriteString("  data ")
		switch r.Data.Source {
		case fsm.SrcNone:
			b.WriteString("none")
		case fsm.SrcKeep:
			b.WriteString("keep")
		case fsm.SrcMemory:
			b.WriteString("memory")
		case fsm.SrcCache:
			b.WriteString("from-cache")
			for _, s := range r.Data.Suppliers {
				b.WriteString(" " + string(s))
			}
		}
		if r.Data.Store {
			b.WriteString(" store")
		}
		if r.Data.WriteThrough {
			b.WriteString(" write-through")
		}
		if r.Data.UpdateSharers {
			b.WriteString(" update-sharers")
		}
		if r.Data.SupplierWriteBack {
			b.WriteString(" writeback-supplier")
		}
		if r.Data.WriteBackSelf {
			b.WriteString(" writeback-self")
		}
		if r.Data.DropSelf {
			b.WriteString(" drop")
		}
		if r.Data.Spin {
			b.WriteString(" spin")
		}
		b.WriteString("\n}\n")
	}
	return b.String()
}

func joinStates(states []fsm.State) string {
	parts := make([]string, len(states))
	for i, s := range states {
		parts[i] = string(s)
	}
	return strings.Join(parts, ", ")
}

func defaultOps(ops []fsm.Op) bool {
	return len(ops) == 3 && ops[0] == fsm.OpRead && ops[1] == fsm.OpWrite && ops[2] == fsm.OpReplace
}
