package ccpsl

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokIdent tokenKind = iota
	tokLBrace
	tokRBrace
	tokArrow
	tokComma
	tokNewline
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokArrow:
		return "'->'"
	case tokComma:
		return "','"
	case tokNewline:
		return "newline"
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
}

// Error is a specification error with a source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("ccpsl: line %d: %s", e.Line, e.Msg)
	}
	return "ccpsl: " + e.Msg
}

func errf(line int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the specification. Identifiers are letter-led words that may
// contain letters, digits, '-' and '_'. Newlines are significant (statement
// terminators); consecutive newlines collapse into one token.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	emit := func(k tokenKind, text string) {
		// Collapse runs of newlines and suppress leading newlines.
		if k == tokNewline {
			if len(toks) == 0 || toks[len(toks)-1].kind == tokNewline ||
				toks[len(toks)-1].kind == tokLBrace {
				return
			}
		}
		toks = append(toks, token{kind: k, text: text, line: line})
	}

	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(tokNewline, "\\n")
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{':
			emit(tokLBrace, "{")
			i++
		case c == '}':
			// A closing brace also terminates the statement before it.
			emit(tokNewline, "\\n")
			emit(tokRBrace, "}")
			i++
		case c == ',':
			emit(tokComma, ",")
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			emit(tokArrow, "->")
			i += 2
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				// Do not swallow "->" into an identifier.
				if src[j] == '-' && j+1 < len(src) && src[j+1] == '>' {
					break
				}
				j++
			}
			emit(tokIdent, src[i:j])
			i = j
		default:
			return nil, errf(line, "unexpected character %q", string(c))
		}
	}
	emit(tokNewline, "\\n")
	toks = append(toks, token{kind: tokEOF, text: "", line: line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-'
}

// quoteList renders identifiers for error messages.
func quoteList(words []string) string {
	qs := make([]string, len(words))
	for i, w := range words {
		qs[i] = fmt.Sprintf("%q", w)
	}
	return strings.Join(qs, ", ")
}
