package ccpsl

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse feeds arbitrary input to the ccpsl parser. Two properties must
// hold for every input: the parser never panics (malformed specs are
// rejected with an error), and any spec it accepts survives a
// parse → Format → parse round-trip with a stable rendering — so the
// formatter emits exactly the language the parser reads.
//
// Run with: go test ./internal/ccpsl -run='^$' -fuzz=FuzzParse
func FuzzParse(f *testing.F) {
	specs, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.ccpsl"))
	if err != nil {
		f.Fatal(err)
	}
	if len(specs) == 0 {
		f.Fatal("no seed specs found under specs/")
	}
	for _, path := range specs {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	// Handcrafted seeds steering the fuzzer at parser corners: guards,
	// observers, custom ops, supplier lists, comments, and states whose
	// names collide with data-clause keywords.
	f.Add("protocol P\nstates {\n  I initial\n  V valid readable\n}\nrule r { from I on R\n  next V\n  data memory }\n")
	f.Add("protocol G\nops R W\nstates {\n  I initial\n  S valid readable clean\n}\n" +
		"rule g { from I on R when any-other S\n  next S\n  observe S -> S\n  data from-cache S, S store }\n")
	f.Add("# comment\nprotocol C\ncharacteristic sharing\nstates {\n  I initial\n  store valid readable\n}\n" +
		"rule k { from I on R\n  next store\n  data from-cache store }\n")
	f.Add("protocol X\nstates {\n  I initial\n}\nrule bad { from I on R\n  next I\n  data none spin drop }\n")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		p, err := Parse(src)
		if err != nil {
			return // rejected cleanly; the property is "no panic"
		}
		out := Format(p)
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted spec does not re-parse after Format: %v\nformatted:\n%s", err, out)
		}
		if out2 := Format(p2); out2 != out {
			t.Fatalf("Format is not a fixpoint after one round-trip:\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
	})
}
