// Package ccpsl implements the Cache Coherence Protocol Specification
// Language, a small text format for defining protocols without writing Go.
// The paper's conclusion calls for "a formal specification language capable
// of describing both the protocol behavior and the processes implementing
// it" to automate verification; ccpsl is that extension: specs parse into
// the same fsm.Protocol values that drive the symbolic verifier, the
// enumerators and the simulator.
//
// A specification looks like:
//
//	protocol Illinois
//	characteristic sharing
//
//	states {
//	  Invalid          initial
//	  Valid-Exclusive  valid readable exclusive clean
//	  Shared           valid readable clean
//	  Dirty            valid readable exclusive owner
//	}
//
//	rule read-miss-dirty-owner {
//	  from Invalid on R when any-other Dirty
//	  next Shared
//	  observe Dirty -> Shared
//	  data from-cache Dirty writeback-supplier
//	}
//
//	rule write-hit-shared {
//	  from Shared on W
//	  next Dirty
//	  observe Shared -> Invalid, Valid-Exclusive -> Invalid, Dirty -> Invalid
//	  data keep store
//	}
//
// Grammar (statements are newline-terminated; '#' starts a comment):
//
//	spec           = "protocol" IDENT
//	                 [ "characteristic" ("null" | "sharing") ]
//	                 [ "ops" IDENT+ ]
//	                 "states" "{" stateDecl* "}"
//	                 rule*
//	stateDecl      = IDENT flag*           ; flags: initial valid readable
//	                                       ;        exclusive owner clean
//	rule           = "rule" IDENT "{" clause* "}"
//	clause         = "from" IDENT "on" IDENT [ "when" guard ]
//	               | "next" IDENT
//	               | "observe" IDENT "->" IDENT { "," IDENT "->" IDENT }
//	               | "data" source flag*
//	guard          = ("any-other" | "no-other") IDENT { "," IDENT }
//	source         = "none" | "keep" | "memory" | "from-cache" IDENT+
//	dataflag       = "store" | "write-through" | "update-sharers"
//	               | "writeback-supplier" | "writeback-self" | "drop"
//
// Parse compiles and validates a spec; Format renders an fsm.Protocol back
// into the language, and the two round-trip.
package ccpsl
