package ccpsl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/symbolic"
)

// TestShippedSpecsMatchBuiltins loads every .ccpsl file under specs/ and
// verifies that it parses, validates and verifies identically to the
// built-in protocol of the same name — keeping the shipped specifications
// from drifting out of sync with the Go definitions.
func TestShippedSpecsMatchBuiltins(t *testing.T) {
	dir := filepath.Join("..", "..", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("specs directory missing: %v", err)
	}
	count := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".ccpsl") {
			continue
		}
		count++
		name := strings.TrimSuffix(e.Name(), ".ccpsl")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Parse(string(src))
			if err != nil {
				t.Fatalf("shipped spec does not parse: %v", err)
			}
			builtin, err := protocols.ByName(name)
			if err != nil {
				t.Fatalf("no built-in protocol for spec %s: %v", name, err)
			}
			if spec.Name != builtin.Name {
				t.Errorf("spec name %q, built-in %q", spec.Name, builtin.Name)
			}
			if Format(spec) != Format(builtin) {
				t.Error("shipped spec drifted from the built-in definition; regenerate specs/")
			}
			a, err := symbolic.Expand(spec, symbolic.Options{Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			b, err := symbolic.Expand(builtin, symbolic.Options{Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if !a.OK() || len(a.Essential) != len(b.Essential) || a.Visits != b.Visits {
				t.Errorf("spec verifies differently: %d/%d vs %d/%d",
					len(a.Essential), a.Visits, len(b.Essential), b.Visits)
			}
		})
	}
	if count != len(protocols.Names()) {
		t.Errorf("specs/ holds %d files, registry has %d protocols", count, len(protocols.Names()))
	}
}
