package compile

import (
	"testing"

	"repro/internal/fsm"
)

// benchOps is a fixed reference pattern that exercises misses, hits,
// upgrades and replacements across four caches.
var benchOps = []struct {
	cache int
	op    int
}{
	{0, 0}, {1, 0}, {2, 1}, {0, 0}, {3, 1}, {1, 2}, {2, 0}, {0, 1},
	{3, 0}, {1, 1}, {2, 2}, {0, 0}, {3, 2}, {1, 0}, {2, 0}, {3, 1},
}

// BenchmarkStepCompiled and BenchmarkStepInterpreted pin the per-step cost
// of the shared compiled representation against the interpreted fsm.Step
// reference it is parity-tested against. CI publishes the pair as part of
// BENCH_PR10.json.
func BenchmarkStepCompiled(b *testing.B) {
	p := specProtocol(b, "mesi")
	cp, err := Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	c := cp.NewConfig(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := benchOps[i%len(benchOps)]
		if _, err := cp.Step(c, ref.cache, ref.op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepInterpreted(b *testing.B) {
	p := specProtocol(b, "mesi")
	c := fsm.NewConfig(p, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := benchOps[i%len(benchOps)]
		if _, err := fsm.Step(p, c, ref.cache, p.Ops[ref.op]); err != nil {
			b.Fatal(err)
		}
	}
}
