package compile

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ccpsl"
	"repro/internal/ckptio"
	"repro/internal/fsm"
	"repro/internal/mutate"
)

// specProtocol loads one shipped spec by file name. The specs are pinned
// in sync with the built-in Go definitions, and loading them directly
// keeps this package's tests free of the protocols registry (which imports
// this package for .ccfsm corpus loading).
func specProtocol(t testing.TB, name string) *fsm.Protocol {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "specs", name+".ccpsl"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ccpsl.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p
}

// corpus returns every shipped spec plus every mutant of it — the full
// population the compile-parity guarantees are pinned over.
func corpus(t testing.TB) []*fsm.Protocol {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.ccpsl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	sort.Strings(paths)
	var out []*fsm.Protocol
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ccpsl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out = append(out, p)
		for _, m := range mutate.Catalog(p) {
			out = append(out, m.Protocol)
		}
	}
	return out
}

// TestStepParity drives the interpreted fsm.Step and the compiled Step
// through identical random walks over every spec and every mutant,
// asserting identical configurations, step results and error text after
// every reference. This is the ground truth the engine-level parity suites
// (enum, symbolic) build on.
func TestStepParity(t *testing.T) {
	for _, p := range corpus(t) {
		cp, err := Compile(p)
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		rng := rand.New(rand.NewSource(int64(len(p.Name)) * 7919))
		for _, n := range []int{1, 2, 4} {
			ic := fsm.NewConfig(p, n)
			cc := cp.NewConfig(n)
			for step := 0; step < 400; step++ {
				origin := rng.Intn(n)
				op := p.Ops[rng.Intn(len(p.Ops))]
				iw := ic.Clone()
				ires, ierr := fsm.Step(p, iw, origin, op)
				cw := &Config{}
				cw.CopyFrom(cc)
				cres, cerr := cp.Step(cw, origin, cp.OpIndex(op))
				if (ierr == nil) != (cerr == nil) {
					t.Fatalf("%s n=%d step %d: error mismatch: interpreted=%v compiled=%v", p.Name, n, step, ierr, cerr)
				}
				if ierr != nil {
					if ierr.Error() != cerr.Error() {
						t.Fatalf("%s n=%d step %d: error text drift:\n  interpreted: %s\n  compiled:    %s",
							p.Name, n, step, ierr, cerr)
					}
					continue // both paths leave their configs unchanged
				}
				got := cp.Result(cres)
				if got.ReadVersion != ires.ReadVersion || got.Supplier != ires.Supplier ||
					(got.Rule == nil) != (ires.Rule == nil) ||
					(got.Rule != nil && got.Rule.Name != ires.Rule.Name) {
					t.Fatalf("%s n=%d step %d: result mismatch: interpreted=%+v compiled=%+v", p.Name, n, step, ires, got)
				}
				var back fsm.Config
				cp.Decode(cw, &back)
				if back.Key() != iw.Key() {
					t.Fatalf("%s n=%d step %d (%s@%d): config drift:\n  interpreted: %s\n  compiled:    %s",
						p.Name, n, step, op, origin, iw.Key(), back.Key())
				}
				ic, cc = iw, cw
			}
		}
	}
}

// TestEncodeDecodeIdentity asserts Encode∘Decode is the identity on
// configurations reached by real walks.
func TestEncodeDecodeIdentity(t *testing.T) {
	p := specProtocol(t, "illinois")
	cp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	ic := fsm.NewConfig(p, 3)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		if _, err := fsm.Step(p, ic, rng.Intn(3), p.Ops[rng.Intn(len(p.Ops))]); err != nil {
			t.Fatal(err)
		}
		var enc Config
		if err := cp.Encode(ic, &enc); err != nil {
			t.Fatal(err)
		}
		var dec fsm.Config
		cp.Decode(&enc, &dec)
		if dec.Key() != ic.Key() {
			t.Fatalf("round trip drift: %s vs %s", ic.Key(), dec.Key())
		}
	}
}

// TestJumpTablesMatchRulesFor pins the compiled dispatch against the
// interpreted index for every (state, op) pair of every protocol.
func TestJumpTablesMatchRulesFor(t *testing.T) {
	for _, p := range corpus(t) {
		cp, err := Compile(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for si, s := range p.States {
			for oi, op := range p.Ops {
				want := p.RulesFor(s, op)
				got := cp.RuleIDs(si, oi)
				if len(want) != len(got) {
					t.Fatalf("%s (%s,%s): %d interpreted rules vs %d compiled", p.Name, s, op, len(want), len(got))
				}
				for k, r := range want {
					if cp.RulePtr(got[k]) != r {
						t.Fatalf("%s (%s,%s): rule %d order drift", p.Name, s, op, k)
					}
				}
			}
		}
	}
}

// TestBinaryRoundTrip: encode → decode → re-encode must be byte-identical
// for every spec and every mutant, and the decoded protocol must be deeply
// equal to the source (up to the unexported lazy indexes, hence Clone).
func TestBinaryRoundTrip(t *testing.T) {
	for _, p := range corpus(t) {
		data, err := EncodeBinary(p)
		if err != nil {
			t.Fatalf("%s: encode: %v", p.Name, err)
		}
		q, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", p.Name, err)
		}
		if ccpsl.Format(p) != ccpsl.Format(q) {
			t.Fatalf("%s: canonical rendering drifted through the binary round trip", p.Name)
		}
		if !reflect.DeepEqual(p.Clone(), q.Clone()) {
			t.Fatalf("%s: decoded protocol differs structurally", p.Name)
		}
		again, err := EncodeBinary(q)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", p.Name, err)
		}
		if string(again) != string(data) {
			t.Fatalf("%s: re-encode is not byte-identical (%d vs %d bytes)", p.Name, len(again), len(data))
		}
	}
}

// TestBinaryGolden pins the exact .ccfsm bytes of the illinois spec via the
// ckptio envelope header (which embeds the payload CRC32 and length): any
// unintentional format change breaks this test, and an intentional one must
// bump BinaryVersion and re-pin.
func TestBinaryGolden(t *testing.T) {
	p := specProtocol(t, "illinois")
	data, err := EncodeBinary(p)
	if err != nil {
		t.Fatal(err)
	}
	nl := 0
	for nl < len(data) && data[nl] != '\n' {
		nl++
	}
	const want = "ccckpt v1 crc32=372bcba5 len=543"
	if got := string(data[:nl]); got != want {
		t.Fatalf(".ccfsm golden drift for illinois:\n  got  %q\n  want %q\n"+
			"(an intentional format change must bump compile.BinaryVersion and re-pin this header)", got, want)
	}
}

// TestDecodeRejectsUnknownVersion checks the typed version error.
func TestDecodeRejectsUnknownVersion(t *testing.T) {
	p := specProtocol(t, "msi")
	data, err := EncodeBinary(p)
	if err != nil {
		t.Fatal(err)
	}
	payload, _, err := ckptio.Decode("t", data)
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), payload...)
	raw[len(ccfsmMagic)] = 99 // version byte
	_, err = DecodeBinary(ckptio.Encode(raw))
	var uv *UnsupportedVersionError
	if !errors.As(err, &uv) || uv.Version != 99 {
		t.Fatalf("want *UnsupportedVersionError{99}, got %v", err)
	}
}

// TestDecodeRejectsGarbage checks the typed corruption errors on the easy
// cases; FuzzDecodeBinary covers the long tail.
func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBinary([]byte("not an envelope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeBinary(ckptio.Encode([]byte("WRONG magic here"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	p := specProtocol(t, "msi")
	data, _ := EncodeBinary(p)
	payload, _, _ := ckptio.Decode("t", data)
	for cut := len(ccfsmMagic) + 1; cut < len(payload); cut += 13 {
		truncated := ckptio.Encode(payload[:cut])
		if _, err := DecodeBinary(truncated); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// FuzzDecodeBinary asserts the decoder never panics and either returns a
// valid protocol or an error, for arbitrary payload bytes (the envelope is
// applied so the fuzzer exercises the format decoder, not just the CRC).
func FuzzDecodeBinary(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.ccpsl"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no specs found: %v", err)
	}
	sort.Strings(paths)
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		p, err := ccpsl.Parse(string(src))
		if err != nil {
			f.Fatal(err)
		}
		data, err := EncodeBinary(p)
		if err != nil {
			f.Fatal(err)
		}
		payload, _, err := ckptio.Decode("seed", data)
		if err != nil {
			f.Fatal(err)
		}
		f.Add([]byte(payload))
	}
	f.Add([]byte(ccfsmMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		p, err := DecodeBinary(ckptio.Encode(payload))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder returned invalid protocol: %v", err)
		}
	})
}
