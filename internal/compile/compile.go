// Package compile lowers an fsm.Protocol into the one shared compiled
// representation every execution layer runs on: dense integer-indexed jump
// tables ([state][op] → rule IDs) with flat guard, observe and data-source
// arrays. The interpreted protocol keeps string states and lazy map indexes,
// which is the right shape for authoring and reporting; the compiled form is
// the right shape for the hot loops — the simulator's per-reference step
// (millions of refs/sec in trace replay), the enumeration engines'
// successor expansion, and the symbolic engine's pre-resolved rule tables
// all read from it, so a protocol is lowered exactly once per run instead
// of once per consumer.
//
// The semantics of Step are a transliteration of fsm.Step onto integer
// states: identical transition order, identical data-version bookkeeping
// and identical error text, which the compile-parity suite pins across
// every library spec and every mutant. The package also defines the .ccfsm
// binary interchange format (binary.go) so compiled corpora can be shipped
// between processes without re-parsing ccpsl.
package compile

import (
	"fmt"
	"strings"

	"repro/internal/fsm"
)

// Rule is the index-resolved form of one transition rule. The ID doubles as
// the index into both Protocol.Rules and the source fsm.Protocol.Rules, so
// a compiled result can always be mapped back to its declaration.
type Rule struct {
	// ID is the rule's declaration index.
	ID int32
	// From and Next are the originator's state indexes; Op indexes
	// Protocol.Ops.
	From, Next int32
	Op         int32

	// GuardKind with GuardStates (state indexes) mirrors fsm.Guard.
	// guardMask caches the same set as a bitmask when the protocol has at
	// most 64 states (every library protocol and every randproto sweep so
	// far); GuardIsValidSet records whether the set equals the valid-copy
	// set, which lets the symbolic engine's copy-count attribute decide the
	// guard outright.
	GuardKind       fsm.GuardKind
	GuardStates     []int32
	GuardIsValidSet bool
	guardMask       uint64

	// Obs[c] is the coincident next state of a cache observed in state c;
	// identity entries are materialized so the hot path never consults a
	// map. HasObserve preserves len(rule.Observe) > 0 — the simulator's
	// "this rule broadcasts on the bus" predicate — which is NOT implied by
	// Obs being non-identity (an explicit identity observe still snoops).
	Obs        []int32
	HasObserve bool

	// Data-effect fields, flattened from fsm.DataEffect. Suppliers keeps
	// the declared candidate order: supplier choice is order-sensitive.
	Source            fsm.DataSource
	Suppliers         []int32
	SupplierWriteBack bool
	Store             bool
	WriteThrough      bool
	UpdateSharers     bool
	WriteBackSelf     bool
	DropSelf          bool
	Spin              bool
}

// Protocol is the compiled representation of one protocol: every state, op
// and rule resolved to a dense integer index, with the per-(state, op)
// dispatch precomputed. Build one with Compile; the zero value is unusable.
type Protocol struct {
	// Src is the source definition, retained for reporting, error text and
	// mapping rule IDs back to *fsm.Rule. The compiled tables never read
	// its lazy map indexes.
	Src *fsm.Protocol

	// States and Ops alias the canonical declaration order; NumStates and
	// NumOps are their lengths.
	States    []fsm.State
	Ops       []fsm.Op
	NumStates int
	NumOps    int

	// Initial is the per-cache initial state index.
	Initial int32

	// Rules holds the compiled rules in declaration order (Rules[i].ID == i).
	Rules []Rule

	// rulesFor[from*NumOps+op] lists the applicable rule IDs in declaration
	// order; an empty list means the operation is a no-op in that state.
	rulesFor [][]int32

	// Per-state invariant membership, indexed by state.
	ValidCopy   []bool
	Exclusive   []bool
	Owner       []bool
	Readable    []bool
	CleanShared []bool
	// HasExclusive etc. record whether the corresponding set is non-empty,
	// so invariant checks can skip whole passes.
	HasExclusive   bool
	HasOwners      bool
	HasCleanShared bool

	// opIsRead[k] reports Ops[k] == fsm.OpRead (the read-version probe of
	// StepResult applies only to reads).
	opIsRead []bool

	stateIdx map[fsm.State]int32
}

// Compile validates p and lowers it into the compiled representation. The
// result shares p's state and op slices but never mutates them; p itself is
// retained as Src.
func Compile(p *fsm.Protocol) (*Protocol, error) {
	if p == nil {
		return nil, fmt.Errorf("compile: nil protocol")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ns, no := len(p.States), len(p.Ops)
	cp := &Protocol{
		Src:       p,
		States:    p.States,
		Ops:       p.Ops,
		NumStates: ns,
		NumOps:    no,
		rulesFor:  make([][]int32, ns*no),
		stateIdx:  make(map[fsm.State]int32, ns),
		opIsRead:  make([]bool, no),
	}
	for i, s := range p.States {
		cp.stateIdx[s] = int32(i)
	}
	opIdx := make(map[fsm.Op]int32, no)
	for k, op := range p.Ops {
		opIdx[op] = int32(k)
		cp.opIsRead[k] = op == fsm.OpRead
	}
	cp.ValidCopy = cp.stateSet(p.Inv.ValidCopy)
	cp.Exclusive = cp.stateSet(p.Inv.Exclusive)
	cp.Owner = cp.stateSet(p.Inv.Owners)
	cp.Readable = cp.stateSet(p.Inv.Readable)
	cp.CleanShared = cp.stateSet(p.Inv.CleanShared)
	cp.HasExclusive = len(p.Inv.Exclusive) > 0
	cp.HasOwners = len(p.Inv.Owners) > 0
	cp.HasCleanShared = len(p.Inv.CleanShared) > 0

	validCount := 0
	for _, v := range cp.ValidCopy {
		if v {
			validCount++
		}
	}

	cp.Rules = make([]Rule, len(p.Rules))
	obsSlab := make([]int32, len(p.Rules)*ns)
	for i := range p.Rules {
		r := &p.Rules[i]
		cr := &cp.Rules[i]
		cr.ID = int32(i)
		cr.From = cp.stateIdx[r.From]
		cr.Next = cp.stateIdx[r.Next]
		cr.Op = opIdx[r.On]
		cr.GuardKind = r.Guard.Kind
		for _, gs := range r.Guard.States {
			gi := cp.stateIdx[gs]
			cr.GuardStates = append(cr.GuardStates, gi)
			if ns <= 64 {
				cr.guardMask |= uint64(1) << uint(gi)
			}
		}
		cr.GuardIsValidSet = len(cr.GuardStates) == validCount && cp.allValid(cr.GuardStates)
		cr.Obs = obsSlab[i*ns : (i+1)*ns]
		for c := 0; c < ns; c++ {
			cr.Obs[c] = cp.stateIdx[r.ObservedNext(p.States[c])]
		}
		cr.HasObserve = len(r.Observe) > 0
		cr.Source = r.Data.Source
		for _, ss := range r.Data.Suppliers {
			cr.Suppliers = append(cr.Suppliers, cp.stateIdx[ss])
		}
		cr.SupplierWriteBack = r.Data.SupplierWriteBack
		cr.Store = r.Data.Store
		cr.WriteThrough = r.Data.WriteThrough
		cr.UpdateSharers = r.Data.UpdateSharers
		cr.WriteBackSelf = r.Data.WriteBackSelf
		cr.DropSelf = r.Data.DropSelf
		cr.Spin = r.Data.Spin

		slot := int(cr.From)*no + int(cr.Op)
		cp.rulesFor[slot] = append(cp.rulesFor[slot], cr.ID)
	}
	cp.Initial = cp.stateIdx[p.Initial]
	return cp, nil
}

// stateSet renders a state list as a per-state membership array.
func (cp *Protocol) stateSet(states []fsm.State) []bool {
	out := make([]bool, cp.NumStates)
	for _, s := range states {
		out[cp.stateIdx[s]] = true
	}
	return out
}

func (cp *Protocol) allValid(idxs []int32) bool {
	for _, i := range idxs {
		if !cp.ValidCopy[i] {
			return false
		}
	}
	return true
}

// StateIndex resolves a state name to its index, or -1 when undeclared.
// Boundary-conversion helper; the hot paths never call it.
func (cp *Protocol) StateIndex(s fsm.State) int {
	if i, ok := cp.stateIdx[s]; ok {
		return int(i)
	}
	return -1
}

// OpIndex resolves an operation to its index in Ops, or -1 when undeclared.
func (cp *Protocol) OpIndex(op fsm.Op) int {
	for k, o := range cp.Ops {
		if o == op {
			return k
		}
	}
	return -1
}

// RuleIDs returns the applicable rule IDs for an originator in state from
// applying op, in declaration order. The returned slice is shared; callers
// must not mutate it.
func (cp *Protocol) RuleIDs(from, op int) []int32 {
	return cp.rulesFor[from*cp.NumOps+op]
}

// HasRules reports whether (from, op) dispatches to at least one rule —
// the no-op skip of the enumeration engines.
func (cp *Protocol) HasRules(from, op int) bool {
	return len(cp.rulesFor[from*cp.NumOps+op]) != 0
}

// RulePtr maps a rule ID back to the source declaration.
func (cp *Protocol) RulePtr(id int32) *fsm.Rule { return &cp.Src.Rules[id] }

// Config is the integer-state counterpart of fsm.Config: the same concrete
// global state of one block, with per-cache states held as indexes instead
// of strings so the step hot path does no map lookups and no string
// comparisons.
type Config struct {
	States     []int32
	Versions   []int64
	MemVersion int64
	Latest     int64
}

// NewConfig returns the initial compiled configuration for n caches: every
// cache in the initial state with no data, memory fresh at version 0.
func (cp *Protocol) NewConfig(n int) *Config {
	c := &Config{
		States:   make([]int32, n),
		Versions: make([]int64, n),
	}
	for i := range c.States {
		c.States[i] = cp.Initial
		c.Versions[i] = fsm.NoData
	}
	return c
}

// CopyFrom overwrites c with src, reusing c's capacity.
func (c *Config) CopyFrom(src *Config) {
	c.States = append(c.States[:0], src.States...)
	c.Versions = append(c.Versions[:0], src.Versions...)
	c.MemVersion = src.MemVersion
	c.Latest = src.Latest
}

// N returns the number of caches.
func (c *Config) N() int { return len(c.States) }

// Encode converts an interpreted configuration into compiled form, reusing
// dst's capacity. It errors on states outside the compiled protocol — the
// only place a name lookup happens, once per conversion rather than once
// per step.
func (cp *Protocol) Encode(src *fsm.Config, dst *Config) error {
	dst.States = dst.States[:0]
	for _, s := range src.States {
		i, ok := cp.stateIdx[s]
		if !ok {
			return fmt.Errorf("compile: protocol %s: state %q not declared", cp.Src.Name, s)
		}
		dst.States = append(dst.States, i)
	}
	dst.Versions = append(dst.Versions[:0], src.Versions...)
	dst.MemVersion = src.MemVersion
	dst.Latest = src.Latest
	return nil
}

// Decode converts a compiled configuration back to the interpreted form,
// reusing dst's capacity. State strings come from the canonical declaration
// slice, so decoded configurations share storage with the protocol.
func (cp *Protocol) Decode(src *Config, dst *fsm.Config) {
	dst.States = dst.States[:0]
	for _, i := range src.States {
		dst.States = append(dst.States, cp.States[i])
	}
	dst.Versions = append(dst.Versions[:0], src.Versions...)
	dst.MemVersion = src.MemVersion
	dst.Latest = src.Latest
}

// String renders the configuration as (q1, q2, ..., qn), matching
// fsm.Config.String for the same state tuple. Error-path only.
func (cp *Protocol) String(c *Config) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, s := range c.States {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(cp.States[s]))
	}
	b.WriteByte(')')
	return b.String()
}

// StepResult reports what happened during one compiled Step; it carries the
// rule by ID so hot-path callers can count without touching the source
// declaration.
type StepResult struct {
	// RuleID is the declaration index of the rule that fired, or -1 when
	// the operation was a no-op in the originator's state.
	RuleID int32
	// ReadVersion is the version the processor observed on a read, or
	// fsm.NoData for other operations.
	ReadVersion int64
	// Supplier is the index of the cache that supplied data, or -1.
	Supplier int
}

// Result converts to the interpreted fsm.StepResult.
func (cp *Protocol) Result(r StepResult) fsm.StepResult {
	out := fsm.StepResult{ReadVersion: r.ReadVersion, Supplier: r.Supplier}
	if r.RuleID >= 0 {
		out.Rule = &cp.Src.Rules[r.RuleID]
	}
	return out
}

// evalGuard decides a compiled guard for originator origin: the exact
// semantics of fsm.EvalGuard, on indexes. The bitmask path covers every
// protocol with at most 64 states; larger ones scan the guard set.
func (cp *Protocol) evalGuard(r *Rule, states []int32, origin int) bool {
	switch r.GuardKind {
	case fsm.GuardAlways:
		return true
	case fsm.GuardAnyOther, fsm.GuardNoOther:
		found := false
		if cp.NumStates <= 64 {
			for j, s := range states {
				if j != origin && r.guardMask&(uint64(1)<<uint(s)) != 0 {
					found = true
					break
				}
			}
		} else {
			for j, s := range states {
				if j == origin {
					continue
				}
				for _, gs := range r.GuardStates {
					if s == gs {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
		}
		if r.GuardKind == fsm.GuardAnyOther {
			return found
		}
		return !found
	default:
		return false
	}
}

// Step applies operation op (by index) issued by cache origin to
// configuration c, mutating it in place. It is the compiled transliteration
// of fsm.Step: same transition order, same version bookkeeping, and —
// because spec-level errors surface in enumeration reports — the same error
// text, rendered from the pre-step configuration exactly as the interpreted
// path renders it. On error c is unchanged.
func (cp *Protocol) Step(c *Config, origin, op int) (StepResult, error) {
	res := StepResult{RuleID: -1, ReadVersion: fsm.NoData, Supplier: -1}
	if origin < 0 || origin >= len(c.States) {
		return res, fmt.Errorf("fsm: step: cache index %d out of range", origin)
	}
	rules := cp.rulesFor[int(c.States[origin])*cp.NumOps+op]
	if len(rules) == 0 {
		return res, nil // no-op in this state
	}
	var rule *Rule
	for _, id := range rules {
		r := &cp.Rules[id]
		if cp.evalGuard(r, c.States, origin) {
			rule = r
			break
		}
	}
	if rule == nil {
		return res, fmt.Errorf("fsm: protocol %s: no guard matched for cache %d in state %s on %s of %s",
			cp.Src.Name, origin, cp.States[c.States[origin]], cp.Ops[op], cp.String(c))
	}
	res.RuleID = rule.ID

	// 1. Locate a supplier and capture its data before any state changes.
	origVer := c.Versions[origin]
	switch rule.Source {
	case fsm.SrcNone:
		origVer = fsm.NoData
	case fsm.SrcKeep:
		// unchanged
	case fsm.SrcMemory:
		origVer = c.MemVersion
	case fsm.SrcCache:
		sup := -1
		for _, ss := range rule.Suppliers {
			for j, s := range c.States {
				if j != origin && s == ss {
					sup = j
					break
				}
			}
			if sup >= 0 {
				break
			}
		}
		if sup < 0 {
			src := cp.Src.Rules[rule.ID]
			return res, fmt.Errorf("fsm: protocol %s: rule %s fired with no supplier in %v for %s",
				cp.Src.Name, src.Name, src.Data.Suppliers, cp.String(c))
		}
		res.Supplier = sup
		origVer = c.Versions[sup]
		if rule.SupplierWriteBack {
			c.MemVersion = c.Versions[sup]
		}
	}

	// 2. Coincident (observed) transitions on all other caches.
	for j := range c.States {
		if j == origin {
			continue
		}
		next := rule.Obs[c.States[j]]
		c.States[j] = next
		if !cp.ValidCopy[next] {
			c.Versions[j] = fsm.NoData
		}
	}

	// 3. Originator transition.
	c.States[origin] = rule.Next

	// 4. Store semantics: a new value is created; every copy not explicitly
	// updated becomes stale relative to it.
	if rule.Store {
		c.Latest++
		origVer = c.Latest
		if rule.WriteThrough {
			c.MemVersion = c.Latest
		}
		if rule.UpdateSharers {
			for j := range c.States {
				if j != origin && cp.ValidCopy[c.States[j]] {
					c.Versions[j] = c.Latest
				}
			}
		}
	}

	// 5. Write-back and drop.
	if rule.WriteBackSelf {
		c.MemVersion = origVer
	}
	if rule.DropSelf {
		origVer = fsm.NoData
	}
	c.Versions[origin] = origVer

	if cp.opIsRead[op] {
		res.ReadVersion = c.Versions[origin]
	}
	return res, nil
}
