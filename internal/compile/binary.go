package compile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"repro/internal/ckptio"
	"repro/internal/fsm"
)

// The .ccfsm interchange format carries one protocol specification in a
// compact, versioned binary layout so corpora of thousands of protocols
// (randproto sweeps) load without re-parsing ccpsl. The payload is
//
//	magic "CCFSM" | u8 version | string table | protocol sections
//
// wrapped in the ckptio CRC32 envelope, so corruption is detected the same
// way engine checkpoints detect it. All integers are unsigned varints; all
// state references are indexes into the state section, all strings are
// indexes into the string table. Encoding is deterministic: encoding the
// decode of an encoding reproduces the bytes exactly (pinned by the
// round-trip golden test). Decoders reject unknown format versions with a
// typed *UnsupportedVersionError, never by guessing.

// ccfsmMagic opens every .ccfsm payload (inside the envelope).
const ccfsmMagic = "CCFSM"

// BinaryVersion is the current .ccfsm format version.
const BinaryVersion = 1

// ErrBadMagic reports bytes that are not a .ccfsm payload at all.
var ErrBadMagic = errors.New("compile: not a .ccfsm payload (bad magic)")

// UnsupportedVersionError reports a .ccfsm payload written by a newer (or
// unknown) format version.
type UnsupportedVersionError struct {
	Version int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("compile: unsupported .ccfsm format version %d (this build reads version %d)",
		e.Version, BinaryVersion)
}

// CorruptError reports a structurally invalid .ccfsm payload: truncated
// sections, out-of-range indexes, or a decoded protocol that fails
// validation.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string {
	return "compile: corrupt .ccfsm payload: " + e.Reason
}

// guard flag bits of the rule data-effect section.
const (
	flagSupplierWriteBack = 1 << iota
	flagStore
	flagWriteThrough
	flagUpdateSharers
	flagWriteBackSelf
	flagDropSelf
	flagSpin
)

// binWriter accumulates the payload.
type binWriter struct {
	buf []byte
}

func (w *binWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *binWriter) byte(b byte) { w.buf = append(w.buf, b) }

func (w *binWriter) bytes(b []byte) { w.buf = append(w.buf, b...) }

// strTab interns strings in first-use order, the deterministic layout the
// round-trip golden pins.
type strTab struct {
	order []string
	idx   map[string]uint64
}

func (t *strTab) intern(s string) uint64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	if t.idx == nil {
		t.idx = map[string]uint64{}
	}
	i := uint64(len(t.order))
	t.order = append(t.order, s)
	t.idx[s] = i
	return i
}

// EncodeBinary renders a validated protocol as a .ccfsm byte stream,
// including the ckptio envelope. The encoding is deterministic: the string
// table interns the protocol name, states, ops and rule names in first-use
// order, and observe maps are serialized in canonical state order.
func EncodeBinary(p *fsm.Protocol) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	stateIdx := make(map[fsm.State]uint64, len(p.States))
	for i, s := range p.States {
		stateIdx[s] = uint64(i)
	}
	opIdx := make(map[fsm.Op]uint64, len(p.Ops))
	for i, o := range p.Ops {
		opIdx[o] = uint64(i)
	}

	var tab strTab
	tab.intern(p.Name)
	for _, s := range p.States {
		tab.intern(string(s))
	}
	for _, o := range p.Ops {
		tab.intern(string(o))
	}
	for i := range p.Rules {
		tab.intern(p.Rules[i].Name)
	}

	var w binWriter
	w.bytes([]byte(ccfsmMagic))
	w.byte(BinaryVersion)

	w.uvarint(uint64(len(tab.order)))
	for _, s := range tab.order {
		w.uvarint(uint64(len(s)))
		w.bytes([]byte(s))
	}

	w.uvarint(tab.intern(p.Name))
	w.byte(byte(p.Characteristic))
	w.uvarint(uint64(len(p.States)))
	for _, s := range p.States {
		w.uvarint(tab.intern(string(s)))
	}
	w.uvarint(stateIdx[p.Initial])
	w.uvarint(uint64(len(p.Ops)))
	for _, o := range p.Ops {
		w.uvarint(tab.intern(string(o)))
	}

	writeSet := func(states []fsm.State) {
		w.uvarint(uint64(len(states)))
		for _, s := range states {
			w.uvarint(stateIdx[s])
		}
	}
	writeSet(p.Inv.Exclusive)
	writeSet(p.Inv.Owners)
	writeSet(p.Inv.Readable)
	writeSet(p.Inv.ValidCopy)
	writeSet(p.Inv.CleanShared)

	w.uvarint(uint64(len(p.Rules)))
	for i := range p.Rules {
		r := &p.Rules[i]
		w.uvarint(tab.intern(r.Name))
		w.uvarint(stateIdx[r.From])
		w.uvarint(opIdx[r.On])
		w.byte(byte(r.Guard.Kind))
		writeSet(r.Guard.States)
		w.uvarint(stateIdx[r.Next])
		// Observe pairs in canonical state order; identity entries present
		// in the source map are preserved so re-encoding is byte-identical.
		pairs := 0
		for _, s := range p.States {
			if _, ok := r.Observe[s]; ok {
				pairs++
			}
		}
		w.uvarint(uint64(pairs))
		for _, s := range p.States {
			if to, ok := r.Observe[s]; ok {
				w.uvarint(stateIdx[s])
				w.uvarint(stateIdx[to])
			}
		}
		w.byte(byte(r.Data.Source))
		writeSet(r.Data.Suppliers)
		var flags byte
		if r.Data.SupplierWriteBack {
			flags |= flagSupplierWriteBack
		}
		if r.Data.Store {
			flags |= flagStore
		}
		if r.Data.WriteThrough {
			flags |= flagWriteThrough
		}
		if r.Data.UpdateSharers {
			flags |= flagUpdateSharers
		}
		if r.Data.WriteBackSelf {
			flags |= flagWriteBackSelf
		}
		if r.Data.DropSelf {
			flags |= flagDropSelf
		}
		if r.Data.Spin {
			flags |= flagSpin
		}
		w.byte(flags)
	}

	return ckptio.Encode(w.buf), nil
}

// binReader walks the payload with bounds checking; every failure is a
// *CorruptError.
type binReader struct {
	buf []byte
	off int
}

func (r *binReader) fail(reason string) error { return &CorruptError{Reason: reason} }

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, r.fail("truncated varint")
	}
	r.off += n
	return v, nil
}

func (r *binReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, r.fail("truncated byte")
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *binReader) take(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)-r.off) {
		return nil, r.fail("truncated section")
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// maxDecodeItems bounds every decoded count so a malicious or fuzzed
// payload cannot force pathological allocations before the bounds checks
// catch the truncation.
const maxDecodeItems = 1 << 20

func (r *binReader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxDecodeItems {
		return 0, r.fail(fmt.Sprintf("%s count %d exceeds limit", what, v))
	}
	return int(v), nil
}

// DecodeBinary parses a .ccfsm byte stream (envelope included) back into a
// validated fsm.Protocol. Unknown envelope or format versions fail with the
// corresponding typed error; structural damage fails with *CorruptError or
// ckptio's *CorruptError.
func DecodeBinary(data []byte) (*fsm.Protocol, error) {
	payload, legacy, err := ckptio.Decode(".ccfsm", data)
	if err != nil {
		return nil, err
	}
	if legacy {
		return nil, ErrBadMagic
	}
	r := &binReader{buf: payload}
	magic, err := r.take(uint64(len(ccfsmMagic)))
	if err != nil || string(magic) != ccfsmMagic {
		return nil, ErrBadMagic
	}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver != BinaryVersion {
		return nil, &UnsupportedVersionError{Version: int(ver)}
	}

	nstr, err := r.count("string table")
	if err != nil {
		return nil, err
	}
	strs := make([]string, nstr)
	for i := range strs {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(n)
		if err != nil {
			return nil, err
		}
		strs[i] = string(b)
	}
	str := func() (string, error) {
		i, err := r.uvarint()
		if err != nil {
			return "", err
		}
		if i >= uint64(len(strs)) {
			return "", r.fail("string index out of range")
		}
		return strs[i], nil
	}

	p := &fsm.Protocol{}
	if p.Name, err = str(); err != nil {
		return nil, err
	}
	ch, err := r.byte()
	if err != nil {
		return nil, err
	}
	p.Characteristic = fsm.CharKind(ch)
	if p.Characteristic != fsm.CharNull && p.Characteristic != fsm.CharSharing {
		return nil, r.fail(fmt.Sprintf("unknown characteristic %d", ch))
	}

	nstates, err := r.count("state")
	if err != nil {
		return nil, err
	}
	p.States = make([]fsm.State, nstates)
	for i := range p.States {
		s, err := str()
		if err != nil {
			return nil, err
		}
		p.States[i] = fsm.State(s)
	}
	state := func() (fsm.State, error) {
		i, err := r.uvarint()
		if err != nil {
			return "", err
		}
		if i >= uint64(len(p.States)) {
			return "", r.fail("state index out of range")
		}
		return p.States[i], nil
	}
	if p.Initial, err = state(); err != nil {
		return nil, err
	}

	nops, err := r.count("op")
	if err != nil {
		return nil, err
	}
	p.Ops = make([]fsm.Op, nops)
	for i := range p.Ops {
		s, err := str()
		if err != nil {
			return nil, err
		}
		p.Ops[i] = fsm.Op(s)
	}

	readSet := func(what string) ([]fsm.State, error) {
		n, err := r.count(what)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]fsm.State, n)
		for i := range out {
			if out[i], err = state(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if p.Inv.Exclusive, err = readSet("exclusive set"); err != nil {
		return nil, err
	}
	if p.Inv.Owners, err = readSet("owners set"); err != nil {
		return nil, err
	}
	if p.Inv.Readable, err = readSet("readable set"); err != nil {
		return nil, err
	}
	if p.Inv.ValidCopy, err = readSet("valid-copy set"); err != nil {
		return nil, err
	}
	if p.Inv.CleanShared, err = readSet("clean-shared set"); err != nil {
		return nil, err
	}

	nrules, err := r.count("rule")
	if err != nil {
		return nil, err
	}
	p.Rules = make([]fsm.Rule, nrules)
	for i := range p.Rules {
		rl := &p.Rules[i]
		if rl.Name, err = str(); err != nil {
			return nil, err
		}
		if rl.From, err = state(); err != nil {
			return nil, err
		}
		oi, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if oi >= uint64(len(p.Ops)) {
			return nil, r.fail("op index out of range")
		}
		rl.On = p.Ops[oi]
		gk, err := r.byte()
		if err != nil {
			return nil, err
		}
		rl.Guard.Kind = fsm.GuardKind(gk)
		switch rl.Guard.Kind {
		case fsm.GuardAlways, fsm.GuardAnyOther, fsm.GuardNoOther:
		default:
			return nil, r.fail(fmt.Sprintf("unknown guard kind %d", gk))
		}
		if rl.Guard.States, err = readSet("guard set"); err != nil {
			return nil, err
		}
		if rl.Next, err = state(); err != nil {
			return nil, err
		}
		npairs, err := r.count("observe")
		if err != nil {
			return nil, err
		}
		if npairs > 0 {
			rl.Observe = make(map[fsm.State]fsm.State, npairs)
			for k := 0; k < npairs; k++ {
				from, err := state()
				if err != nil {
					return nil, err
				}
				to, err := state()
				if err != nil {
					return nil, err
				}
				rl.Observe[from] = to
			}
		}
		src, err := r.byte()
		if err != nil {
			return nil, err
		}
		rl.Data.Source = fsm.DataSource(src)
		switch rl.Data.Source {
		case fsm.SrcNone, fsm.SrcKeep, fsm.SrcMemory, fsm.SrcCache:
		default:
			return nil, r.fail(fmt.Sprintf("unknown data source %d", src))
		}
		if rl.Data.Suppliers, err = readSet("suppliers set"); err != nil {
			return nil, err
		}
		flags, err := r.byte()
		if err != nil {
			return nil, err
		}
		rl.Data.SupplierWriteBack = flags&flagSupplierWriteBack != 0
		rl.Data.Store = flags&flagStore != 0
		rl.Data.WriteThrough = flags&flagWriteThrough != 0
		rl.Data.UpdateSharers = flags&flagUpdateSharers != 0
		rl.Data.WriteBackSelf = flags&flagWriteBackSelf != 0
		rl.Data.DropSelf = flags&flagDropSelf != 0
		rl.Data.Spin = flags&flagSpin != 0
	}
	if r.off != len(r.buf) {
		return nil, r.fail(fmt.Sprintf("%d trailing bytes after protocol", len(r.buf)-r.off))
	}
	if err := p.Validate(); err != nil {
		return nil, &CorruptError{Reason: "decoded protocol invalid: " + err.Error()}
	}
	return p, nil
}

// WriteFile encodes p and writes it to path.
func WriteFile(path string, p *fsm.Protocol) error {
	data, err := EncodeBinary(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile decodes a protocol from a .ccfsm file.
func ReadFile(path string) (*fsm.Protocol, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := DecodeBinary(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
