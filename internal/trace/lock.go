package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/fsm"
)

// CriticalSection drives a lock-based protocol (e.g. protocols.LockMSI):
// each processor loops acquire → a few reads and writes of the protected
// block → release. Acquires may spin (the protocol reports them as
// incomplete); the generator retries the acquire until the machine actually
// holds the lock, which the caller signals through Acquired.
//
// The generator is structured as a per-processor script so that the global
// reference stream interleaves critical sections from all processors — the
// pattern that makes mutual exclusion worth verifying.
type CriticalSection struct {
	rng      *rand.Rand
	caches   int
	blocks   int
	workLen  int
	acquire  fsm.Op
	release  fsm.Op
	phase    []int // per processor: 0 = acquiring, 1..workLen = in section, workLen+1 = releasing
	lockOf   []int // block each processor is working on
	lastProc int
}

// NewCriticalSection builds the workload. acquireOp/releaseOp are the
// protocol's lock operations (protocols.OpAcquire / protocols.OpRelease).
func NewCriticalSection(seed int64, caches, blocks, workLen int, acquireOp, releaseOp fsm.Op) (*CriticalSection, error) {
	if caches < 2 || blocks < 1 || workLen < 1 {
		return nil, fmt.Errorf("trace: critical section needs ≥2 caches, ≥1 block, ≥1 work refs")
	}
	cs := &CriticalSection{
		rng:    rand.New(rand.NewSource(seed)),
		caches: caches, blocks: blocks, workLen: workLen,
		acquire: acquireOp, release: releaseOp,
		phase:  make([]int, caches),
		lockOf: make([]int, caches),
	}
	for p := range cs.lockOf {
		cs.lockOf[p] = cs.rng.Intn(blocks)
	}
	return cs, nil
}

// Name implements Workload.
func (cs *CriticalSection) Name() string { return "critical-section" }

// Next implements Workload.
func (cs *CriticalSection) Next() Ref {
	p := cs.rng.Intn(cs.caches)
	cs.lastProc = p
	b := cs.lockOf[p]
	switch {
	case cs.phase[p] == 0:
		return Ref{Cache: p, Op: cs.acquire, Block: b}
	case cs.phase[p] <= cs.workLen:
		cs.phase[p]++
		op := fsm.OpRead
		if cs.rng.Intn(2) == 0 {
			op = fsm.OpWrite
		}
		return Ref{Cache: p, Op: op, Block: b}
	default:
		cs.phase[p] = 0
		cs.lockOf[p] = cs.rng.Intn(cs.blocks)
		return Ref{Cache: p, Op: cs.release, Block: b}
	}
}

// Acquired tells the generator that the last emitted acquire succeeded (the
// machine holds the lock), moving the processor into its critical section.
// Call it after applying an acquire reference that did not spin.
func (cs *CriticalSection) Acquired() {
	if cs.phase[cs.lastProc] == 0 {
		cs.phase[cs.lastProc] = 1
	}
}
