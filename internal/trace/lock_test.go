package trace

import (
	"testing"

	"repro/internal/fsm"
)

const (
	opL fsm.Op = "L"
	opU fsm.Op = "U"
)

func TestCriticalSectionLifecycle(t *testing.T) {
	w, err := NewCriticalSection(3, 2, 1, 2, opL, opU)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "critical-section" {
		t.Error("name wrong")
	}
	// Track per-processor protocol: acquire (possibly repeated) → exactly
	// workLen work refs → release.
	inSection := map[int]bool{}
	work := map[int]int{}
	for i := 0; i < 20000; i++ {
		r := w.Next()
		switch r.Op {
		case opL:
			if inSection[r.Cache] {
				t.Fatalf("ref %d: acquire inside a critical section", i)
			}
			// Simulate a successful acquire every time (single lock, but
			// the generator does not know the machine state).
			w.Acquired()
			inSection[r.Cache] = true
			work[r.Cache] = 0
		case opU:
			if !inSection[r.Cache] {
				t.Fatalf("ref %d: release outside a critical section", i)
			}
			if work[r.Cache] != 2 {
				t.Fatalf("ref %d: released after %d work refs, want 2", i, work[r.Cache])
			}
			inSection[r.Cache] = false
		case fsm.OpRead, fsm.OpWrite:
			if !inSection[r.Cache] {
				t.Fatalf("ref %d: work outside a critical section", i)
			}
			work[r.Cache]++
		default:
			t.Fatalf("unexpected op %s", r.Op)
		}
	}
}

func TestCriticalSectionSpinsRepeatAcquire(t *testing.T) {
	w, err := NewCriticalSection(9, 2, 1, 1, opL, opU)
	if err != nil {
		t.Fatal(err)
	}
	// Never call Acquired: every reference must remain an acquire attempt.
	for i := 0; i < 100; i++ {
		if r := w.Next(); r.Op != opL {
			t.Fatalf("ref %d: got %s while spinning, want acquire", i, r.Op)
		}
	}
}

func TestCriticalSectionRejectsBadParameters(t *testing.T) {
	if _, err := NewCriticalSection(1, 1, 1, 1, opL, opU); err == nil {
		t.Error("one cache must be rejected")
	}
	if _, err := NewCriticalSection(1, 2, 0, 1, opL, opU); err == nil {
		t.Error("zero blocks must be rejected")
	}
	if _, err := NewCriticalSection(1, 2, 1, 0, opL, opU); err == nil {
		t.Error("zero work refs must be rejected")
	}
}
