// Package trace generates synthetic memory-reference workloads for the
// concrete multiprocessor simulator (internal/sim). The paper's evaluation
// is analytic, but its protocol suite comes from Archibald & Baer's
// simulation study; these generators provide the canonical sharing patterns
// of that literature (uniform random access, hot blocks, migratory sharing,
// producer–consumer) with deterministic seeding so every experiment is
// reproducible.
package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/fsm"
)

// Ref is one memory reference: cache (processor) index, operation, block.
type Ref struct {
	Cache int
	Op    fsm.Op
	Block int
}

// Workload produces an endless stream of references.
type Workload interface {
	// Next returns the next reference.
	Next() Ref
	// Name identifies the workload in reports.
	Name() string
}

// Uniform issues independent uniformly-random references.
type Uniform struct {
	rng    *rand.Rand
	caches int
	blocks int
	// PWrite and PReplace are the probabilities of a write and of an
	// explicit replacement; the remainder are reads.
	pWrite   float64
	pReplace float64
}

// NewUniform builds a uniform workload. pWrite+pReplace must be ≤ 1.
func NewUniform(seed int64, caches, blocks int, pWrite, pReplace float64) (*Uniform, error) {
	if caches < 1 || blocks < 1 {
		return nil, fmt.Errorf("trace: need at least one cache and one block")
	}
	if pWrite < 0 || pReplace < 0 || pWrite+pReplace > 1 {
		return nil, fmt.Errorf("trace: invalid probabilities pWrite=%v pReplace=%v", pWrite, pReplace)
	}
	return &Uniform{
		rng:    rand.New(rand.NewSource(seed)),
		caches: caches, blocks: blocks,
		pWrite: pWrite, pReplace: pReplace,
	}, nil
}

// Name implements Workload.
func (u *Uniform) Name() string { return "uniform" }

// Next implements Workload.
func (u *Uniform) Next() Ref {
	r := Ref{Cache: u.rng.Intn(u.caches), Block: u.rng.Intn(u.blocks)}
	switch x := u.rng.Float64(); {
	case x < u.pWrite:
		r.Op = fsm.OpWrite
	case x < u.pWrite+u.pReplace:
		r.Op = fsm.OpReplace
	default:
		r.Op = fsm.OpRead
	}
	return r
}

// HotBlock concentrates a fraction of the references on a single shared
// block, the classic contended-lock / shared-counter pattern.
type HotBlock struct {
	inner   *Uniform
	hotFrac float64
	hot     int
}

// NewHotBlock builds a hot-block workload: hotFrac of references target
// block 0.
func NewHotBlock(seed int64, caches, blocks int, pWrite, hotFrac float64) (*HotBlock, error) {
	if hotFrac < 0 || hotFrac > 1 {
		return nil, fmt.Errorf("trace: invalid hotFrac %v", hotFrac)
	}
	u, err := NewUniform(seed, caches, blocks, pWrite, 0.02)
	if err != nil {
		return nil, err
	}
	return &HotBlock{inner: u, hotFrac: hotFrac}, nil
}

// Name implements Workload.
func (h *HotBlock) Name() string { return "hot-block" }

// Next implements Workload.
func (h *HotBlock) Next() Ref {
	r := h.inner.Next()
	if h.inner.rng.Float64() < h.hotFrac {
		r.Block = h.hot
	}
	return r
}

// Migratory models data that migrates between processors: each block is
// owned by one cache for a burst of read-modify-write pairs, then ownership
// moves to another cache. This is the access pattern that ownership
// protocols (Berkeley, Dragon) are designed for.
type Migratory struct {
	rng    *rand.Rand
	caches int
	blocks int
	burst  int

	owner   []int // current owner per block
	left    []int // references left in the current burst per block
	pending []Ref // queued second half of a read-modify-write
}

// NewMigratory builds a migratory workload with the given burst length
// (read-modify-write pairs per ownership period).
func NewMigratory(seed int64, caches, blocks, burst int) (*Migratory, error) {
	if caches < 1 || blocks < 1 || burst < 1 {
		return nil, fmt.Errorf("trace: invalid migratory parameters")
	}
	m := &Migratory{
		rng:    rand.New(rand.NewSource(seed)),
		caches: caches, blocks: blocks, burst: burst,
		owner: make([]int, blocks),
		left:  make([]int, blocks),
	}
	for b := range m.owner {
		m.owner[b] = m.rng.Intn(caches)
		m.left[b] = burst
	}
	return m, nil
}

// Name implements Workload.
func (m *Migratory) Name() string { return "migratory" }

// Next implements Workload.
func (m *Migratory) Next() Ref {
	if len(m.pending) > 0 {
		r := m.pending[0]
		m.pending = m.pending[1:]
		return r
	}
	b := m.rng.Intn(m.blocks)
	if m.left[b] == 0 {
		// Ownership migrates.
		next := m.rng.Intn(m.caches)
		if m.caches > 1 {
			for next == m.owner[b] {
				next = m.rng.Intn(m.caches)
			}
		}
		m.owner[b] = next
		m.left[b] = m.burst
	}
	m.left[b]--
	owner := m.owner[b]
	m.pending = append(m.pending, Ref{Cache: owner, Op: fsm.OpWrite, Block: b})
	return Ref{Cache: owner, Op: fsm.OpRead, Block: b}
}

// ProducerConsumer models one writer and many readers per block: cache
// (block mod caches) periodically writes, all others read. This is the
// pattern where write-broadcast protocols (Firefly, Dragon) excel and
// write-invalidate protocols ping-pong.
type ProducerConsumer struct {
	rng    *rand.Rand
	caches int
	blocks int
	// readsPerWrite is the expected number of consumer reads between
	// producer writes.
	readsPerWrite int
}

// NewProducerConsumer builds a producer–consumer workload.
func NewProducerConsumer(seed int64, caches, blocks, readsPerWrite int) (*ProducerConsumer, error) {
	if caches < 2 || blocks < 1 || readsPerWrite < 1 {
		return nil, fmt.Errorf("trace: producer-consumer needs ≥2 caches, ≥1 block, ≥1 reads/write")
	}
	return &ProducerConsumer{
		rng:    rand.New(rand.NewSource(seed)),
		caches: caches, blocks: blocks, readsPerWrite: readsPerWrite,
	}, nil
}

// Name implements Workload.
func (pc *ProducerConsumer) Name() string { return "producer-consumer" }

// Next implements Workload.
func (pc *ProducerConsumer) Next() Ref {
	b := pc.rng.Intn(pc.blocks)
	producer := b % pc.caches
	if pc.rng.Intn(pc.readsPerWrite+1) == 0 {
		return Ref{Cache: producer, Op: fsm.OpWrite, Block: b}
	}
	consumer := pc.rng.Intn(pc.caches)
	if pc.caches > 1 {
		for consumer == producer {
			consumer = pc.rng.Intn(pc.caches)
		}
	}
	return Ref{Cache: consumer, Op: fsm.OpRead, Block: b}
}

// Fixed replays a fixed sequence of references, cycling; useful in tests.
type Fixed struct {
	refs []Ref
	pos  int
	name string
}

// NewFixed builds a cyclic fixed workload.
func NewFixed(name string, refs []Ref) (*Fixed, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("trace: fixed workload needs at least one reference")
	}
	return &Fixed{refs: refs, name: name}, nil
}

// Name implements Workload.
func (f *Fixed) Name() string { return f.name }

// Next implements Workload.
func (f *Fixed) Next() Ref {
	r := f.refs[f.pos%len(f.refs)]
	f.pos++
	return r
}
