package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/fsm"
)

// FalseSharing models the classic false-sharing pattern: every processor
// reads and writes ONLY its own word, but neighboring processors' words sit
// in consecutive addresses. With one word per coherence block there is no
// sharing at all; once blocks span several words the processors fight over
// block ownership despite never touching each other's data. References are
// emitted at WORD granularity (Ref.Block is a word index); compose with
// BlockMapper to fold words into blocks of a chosen size.
type FalseSharing struct {
	rng    *rand.Rand
	caches int
	groups int
	pWrite float64
}

// NewFalseSharing builds the workload: `groups` independent groups of
// `caches` consecutive words, processor p touching word group*caches+p.
func NewFalseSharing(seed int64, caches, groups int, pWrite float64) (*FalseSharing, error) {
	if caches < 2 || groups < 1 {
		return nil, fmt.Errorf("trace: false sharing needs ≥2 caches and ≥1 group")
	}
	if pWrite < 0 || pWrite > 1 {
		return nil, fmt.Errorf("trace: invalid pWrite %v", pWrite)
	}
	return &FalseSharing{
		rng:    rand.New(rand.NewSource(seed)),
		caches: caches, groups: groups, pWrite: pWrite,
	}, nil
}

// Name implements Workload.
func (f *FalseSharing) Name() string { return "false-sharing" }

// Next implements Workload. The emitted Block field is a WORD index.
func (f *FalseSharing) Next() Ref {
	p := f.rng.Intn(f.caches)
	g := f.rng.Intn(f.groups)
	r := Ref{Cache: p, Block: g*f.caches + p, Op: fsm.OpRead}
	if f.rng.Float64() < f.pWrite {
		r.Op = fsm.OpWrite
	}
	return r
}

// Words returns the total number of distinct word addresses the workload
// touches.
func (f *FalseSharing) Words() int { return f.caches * f.groups }

// BlockMapper folds the word addresses of an inner workload into coherence
// blocks of WordsPerBlock consecutive words, modelling the cache block
// size. Coherence (and therefore invalidation and update traffic) acts at
// block granularity while the program's true sharing is at word
// granularity.
type BlockMapper struct {
	Inner         Workload
	WordsPerBlock int
}

// NewBlockMapper wraps a word-granular workload.
func NewBlockMapper(inner Workload, wordsPerBlock int) (*BlockMapper, error) {
	if wordsPerBlock < 1 {
		return nil, fmt.Errorf("trace: words per block must be positive, got %d", wordsPerBlock)
	}
	return &BlockMapper{Inner: inner, WordsPerBlock: wordsPerBlock}, nil
}

// Name implements Workload.
func (b *BlockMapper) Name() string {
	return fmt.Sprintf("%s/wpb=%d", b.Inner.Name(), b.WordsPerBlock)
}

// Next implements Workload.
func (b *BlockMapper) Next() Ref {
	r := b.Inner.Next()
	r.Block /= b.WordsPerBlock
	return r
}
