package trace

import (
	"testing"

	"repro/internal/fsm"
)

func TestUniformDeterministicWithSeed(t *testing.T) {
	a, err := NewUniform(42, 4, 8, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewUniform(42, 4, 8, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at reference %d", i)
		}
	}
	c, err := NewUniform(43, 4, 8, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestUniformRespectsRanges(t *testing.T) {
	w, err := NewUniform(7, 3, 5, 0.3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		r := w.Next()
		if r.Cache < 0 || r.Cache >= 3 {
			t.Fatalf("cache %d out of range", r.Cache)
		}
		if r.Block < 0 || r.Block >= 5 {
			t.Fatalf("block %d out of range", r.Block)
		}
		if r.Op != fsm.OpRead && r.Op != fsm.OpWrite && r.Op != fsm.OpReplace {
			t.Fatalf("unexpected op %s", r.Op)
		}
	}
}

func TestUniformOperationMix(t *testing.T) {
	w, err := NewUniform(1, 4, 8, 0.3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	counts := map[fsm.Op]int{}
	for i := 0; i < n; i++ {
		counts[w.Next().Op]++
	}
	frac := func(op fsm.Op) float64 { return float64(counts[op]) / n }
	if f := frac(fsm.OpWrite); f < 0.27 || f > 0.33 {
		t.Errorf("write fraction %f, want ≈0.3", f)
	}
	if f := frac(fsm.OpReplace); f < 0.08 || f > 0.12 {
		t.Errorf("replace fraction %f, want ≈0.1", f)
	}
}

func TestUniformRejectsBadParameters(t *testing.T) {
	if _, err := NewUniform(1, 0, 8, 0.3, 0.1); err == nil {
		t.Error("zero caches must be rejected")
	}
	if _, err := NewUniform(1, 4, 0, 0.3, 0.1); err == nil {
		t.Error("zero blocks must be rejected")
	}
	if _, err := NewUniform(1, 4, 8, 0.8, 0.5); err == nil {
		t.Error("probabilities summing over 1 must be rejected")
	}
	if _, err := NewUniform(1, 4, 8, -0.1, 0); err == nil {
		t.Error("negative probability must be rejected")
	}
}

func TestHotBlockConcentration(t *testing.T) {
	w, err := NewHotBlock(5, 4, 16, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	hot := 0
	for i := 0; i < n; i++ {
		if w.Next().Block == 0 {
			hot++
		}
	}
	frac := float64(hot) / n
	// 50% forced plus ~1/16 of the remaining background traffic.
	if frac < 0.45 || frac > 0.62 {
		t.Errorf("hot-block fraction %f, want ≈0.53", frac)
	}
	if w.Name() != "hot-block" {
		t.Error("name wrong")
	}
	if _, err := NewHotBlock(1, 4, 8, 0.3, 1.5); err == nil {
		t.Error("hotFrac > 1 must be rejected")
	}
}

func TestMigratoryReadModifyWritePairs(t *testing.T) {
	w, err := NewMigratory(9, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		r1 := w.Next()
		if r1.Op != fsm.OpRead {
			t.Fatalf("reference %d: migratory must issue R then W, got %s first", i, r1.Op)
		}
		r2 := w.Next()
		if r2.Op != fsm.OpWrite || r2.Cache != r1.Cache || r2.Block != r1.Block {
			t.Fatalf("reference %d: W half mismatched: %+v then %+v", i, r1, r2)
		}
	}
}

func TestMigratoryOwnershipMigrates(t *testing.T) {
	w, err := NewMigratory(3, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	owners := map[int]bool{}
	for i := 0; i < 2000; i++ {
		owners[w.Next().Cache] = true
	}
	if len(owners) < 2 {
		t.Fatalf("ownership never migrated: %v", owners)
	}
	if _, err := NewMigratory(1, 0, 1, 1); err == nil {
		t.Error("bad parameters must be rejected")
	}
}

func TestProducerConsumerRoles(t *testing.T) {
	w, err := NewProducerConsumer(11, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		r := w.Next()
		producer := r.Block % 4
		if r.Op == fsm.OpWrite && r.Cache != producer {
			t.Fatalf("block %d written by non-producer cache %d", r.Block, r.Cache)
		}
		if r.Op == fsm.OpRead && r.Cache == producer {
			t.Fatalf("block %d read by its producer", r.Block)
		}
	}
	if _, err := NewProducerConsumer(1, 1, 4, 3); err == nil {
		t.Error("single-cache producer-consumer must be rejected")
	}
}

func TestProducerConsumerHasBothOps(t *testing.T) {
	w, err := NewProducerConsumer(2, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := 0, 0
	for i := 0; i < 10000; i++ {
		switch w.Next().Op {
		case fsm.OpRead:
			reads++
		case fsm.OpWrite:
			writes++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d: both must occur", reads, writes)
	}
	if writes > reads {
		t.Fatalf("reads should dominate with readsPerWrite=4: %d vs %d", reads, writes)
	}
}

func TestFixedCyclesDeterministically(t *testing.T) {
	refs := []Ref{
		{Cache: 0, Op: fsm.OpRead, Block: 0},
		{Cache: 1, Op: fsm.OpWrite, Block: 0},
	}
	w, err := NewFixed("pingpong", refs)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "pingpong" {
		t.Error("name wrong")
	}
	for i := 0; i < 10; i++ {
		if got := w.Next(); got != refs[i%2] {
			t.Fatalf("cycle broken at %d: %+v", i, got)
		}
	}
	if _, err := NewFixed("empty", nil); err == nil {
		t.Error("empty fixed workload must be rejected")
	}
}

func TestWorkloadNames(t *testing.T) {
	u, _ := NewUniform(1, 2, 2, 0.1, 0)
	m, _ := NewMigratory(1, 2, 2, 1)
	pc, _ := NewProducerConsumer(1, 2, 2, 1)
	if u.Name() != "uniform" || m.Name() != "migratory" || pc.Name() != "producer-consumer" {
		t.Error("workload names wrong")
	}
}
