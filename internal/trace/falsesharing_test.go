package trace

import (
	"testing"

	"repro/internal/fsm"
)

func TestFalseSharingEachProcessorOwnsItsWord(t *testing.T) {
	w, err := NewFalseSharing(7, 4, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if w.Words() != 12 {
		t.Fatalf("Words() = %d, want 12", w.Words())
	}
	for i := 0; i < 20000; i++ {
		r := w.Next()
		if r.Block%4 != r.Cache {
			t.Fatalf("processor %d touched word %d (owner %d)", r.Cache, r.Block, r.Block%4)
		}
		if r.Block < 0 || r.Block >= 12 {
			t.Fatalf("word %d out of range", r.Block)
		}
		if r.Op != fsm.OpRead && r.Op != fsm.OpWrite {
			t.Fatalf("unexpected op %s", r.Op)
		}
	}
}

func TestFalseSharingWriteMix(t *testing.T) {
	w, err := NewFalseSharing(3, 2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if w.Next().Op == fsm.OpWrite {
			writes++
		}
	}
	if frac := float64(writes) / n; frac < 0.45 || frac > 0.55 {
		t.Errorf("write fraction %f, want ≈0.5", frac)
	}
}

func TestFalseSharingRejectsBadParameters(t *testing.T) {
	if _, err := NewFalseSharing(1, 1, 2, 0.5); err == nil {
		t.Error("one cache must be rejected")
	}
	if _, err := NewFalseSharing(1, 2, 0, 0.5); err == nil {
		t.Error("zero groups must be rejected")
	}
	if _, err := NewFalseSharing(1, 2, 2, 1.5); err == nil {
		t.Error("pWrite > 1 must be rejected")
	}
}

func TestBlockMapperFoldsWords(t *testing.T) {
	inner, err := NewFixed("words", []Ref{
		{Cache: 0, Op: fsm.OpRead, Block: 0},
		{Cache: 1, Op: fsm.OpRead, Block: 3},
		{Cache: 2, Op: fsm.OpRead, Block: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewBlockMapper(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1}
	for i, wb := range want {
		if got := m.Next().Block; got != wb {
			t.Errorf("ref %d: block %d, want %d", i, got, wb)
		}
	}
	if m.Name() != "words/wpb=4" {
		t.Errorf("name = %q", m.Name())
	}
	if _, err := NewBlockMapper(inner, 0); err == nil {
		t.Error("zero words per block must be rejected")
	}
}
