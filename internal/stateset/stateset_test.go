package stateset

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// randomKeys returns count distinct random keys of the given width.
func randomKeys(rng *rand.Rand, width, count int) [][]byte {
	seen := make(map[string]bool, count)
	keys := make([][]byte, 0, count)
	for len(keys) < count {
		k := make([]byte, width)
		rng.Read(k)
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
	}
	return keys
}

// TestSetMatchesMapReference drives the set against a map[string]uint32
// reference across widths and sizes that exercise log scans, run
// flushes, and multi-level merges.
func TestSetMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{1, 3, 8, 33} {
		for _, count := range []int{0, 1, 127, 128, 1000, 5000} {
			if width == 1 && count > 100 {
				continue // only 256 distinct 1-byte keys exist
			}
			s := New(width)
			keys := randomKeys(rng, width, count)
			ref := make(map[string]uint32, count)
			for i, k := range keys {
				if s.Has(k) {
					t.Fatalf("width=%d count=%d: key %x present before insert", width, count, k)
				}
				r := s.Insert(k)
				if r != uint32(i) {
					t.Fatalf("width=%d count=%d: insert %d returned rank %d", width, count, i, r)
				}
				ref[string(k)] = r
			}
			if s.Len() != count || s.Resident() != count {
				t.Fatalf("width=%d count=%d: Len=%d Resident=%d", width, count, s.Len(), s.Resident())
			}
			for ks, want := range ref {
				got, ok := s.Rank([]byte(ks))
				if !ok || got != want {
					t.Fatalf("width=%d count=%d: Rank(%x) = %d,%v want %d,true", width, count, ks, got, ok, want)
				}
			}
			for _, probe := range randomKeys(rng, width, 50) {
				_, ok := s.Rank(probe)
				if ok != (func() bool { _, hit := ref[string(probe)]; return hit }()) {
					t.Fatalf("width=%d count=%d: Rank(%x) membership mismatch", width, count, probe)
				}
			}
			seen := 0
			s.ForEach(func(k []byte, r uint32) {
				if want, ok := ref[string(k)]; !ok || want != r {
					t.Fatalf("width=%d count=%d: ForEach yielded %x rank %d", width, count, k, r)
				}
				seen++
			})
			if seen != count {
				t.Fatalf("width=%d count=%d: ForEach yielded %d entries", width, count, seen)
			}
		}
	}
}

// TestSpillRoundTrip checks that spilling moves every entry into the
// blob with ranks intact, that inserts continue with increasing ranks
// afterwards, and that a second spill covers only the new entries.
func TestSpillRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const width = 5
	s := New(width)
	first := randomKeys(rng, width, 700)
	for _, k := range first {
		s.Insert(k)
	}
	blob := s.Spill()
	if blob == nil {
		t.Fatal("Spill returned nil with resident entries")
	}
	if s.Resident() != 0 || s.Len() != len(first) {
		t.Fatalf("after spill: Resident=%d Len=%d", s.Resident(), s.Len())
	}
	br, err := NewBlobReader(blob)
	if err != nil {
		t.Fatalf("NewBlobReader: %v", err)
	}
	if br.Len() != len(first) || br.Width() != width {
		t.Fatalf("blob Len=%d Width=%d", br.Len(), br.Width())
	}
	for i, k := range first {
		r, ok := br.Rank(k)
		if !ok || r != uint32(i) {
			t.Fatalf("blob Rank(%x) = %d,%v want %d,true", k, r, ok, i)
		}
		if s.Has(k) {
			t.Fatalf("spilled key %x still resident", k)
		}
	}
	// Blob shard sections must be sorted (binary-search invariant).
	br.ForEach(func(k []byte, r uint32) {})
	for si, sec := range br.sections {
		for i := br.esize; i+br.esize <= len(sec); i += br.esize {
			if bytes.Compare(sec[i-br.esize:i-br.esize+width], sec[i:i+width]) >= 0 {
				t.Fatalf("shard %d not strictly sorted", si)
			}
		}
	}

	second := randomKeys(rng, width, 300)
	for i, k := range second {
		if r := s.Insert(k); r != uint32(len(first)+i) {
			t.Fatalf("post-spill insert rank %d, want %d", r, len(first)+i)
		}
	}
	blob2 := s.Spill()
	br2, err := NewBlobReader(blob2)
	if err != nil {
		t.Fatalf("NewBlobReader(second): %v", err)
	}
	if br2.Len() != len(second) {
		t.Fatalf("second blob Len=%d want %d", br2.Len(), len(second))
	}
	if br2.Has(first[0]) {
		t.Fatal("second blob contains a first-spill key")
	}
	if s.Spill() != nil {
		t.Fatal("Spill with nothing resident should return nil")
	}
}

// TestBlobReaderRejectsCorruptBlobs exercises the framing checks.
func TestBlobReaderRejectsCorruptBlobs(t *testing.T) {
	s := New(4)
	rng := rand.New(rand.NewSource(3))
	for _, k := range randomKeys(rng, 4, 64) {
		s.Insert(k)
	}
	blob := s.Spill()
	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:3],
		"bad magic": append([]byte("XXXX"), blob[4:]...),
		"truncated": blob[:len(blob)-5],
		"trailing":  append(append([]byte{}, blob...), 0xFF),
	}
	// Inflate a shard count beyond the available bytes.
	huge := append([]byte{}, blob...)
	binary.LittleEndian.PutUint32(huge[5:9], 1<<30)
	cases["huge count"] = huge
	for name, b := range cases {
		if _, err := NewBlobReader(b); err == nil {
			t.Errorf("%s: NewBlobReader accepted a corrupt blob", name)
		}
	}
	if _, err := NewBlobReader(blob); err != nil {
		t.Errorf("valid blob rejected: %v", err)
	}
}

// TestBytesGrowsLinearly pins the footprint estimate to the flat-slab
// model: esize bytes per resident entry plus the fixed allowance.
func TestBytesGrowsLinearly(t *testing.T) {
	s := New(8)
	base := s.Bytes()
	rng := rand.New(rand.NewSource(5))
	keys := randomKeys(rng, 8, 10000)
	for _, k := range keys {
		s.Insert(k)
	}
	got := s.Bytes() - base
	want := int64(len(keys)) * int64(8+4)
	if got != want {
		t.Fatalf("Bytes grew by %d for %d entries, want %d", got, len(keys), want)
	}
	s.Spill()
	if s.Bytes() != base {
		t.Fatalf("Bytes after spill = %d, want %d", s.Bytes(), base)
	}
}
