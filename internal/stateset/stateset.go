// Package stateset provides a compact, prefix-sharded set over
// fixed-width byte keys, built for the enumeration engine's visited and
// tuple-census sets where a Go map's ~100+ bytes of per-entry overhead
// dominates the footprint long before the state space itself does.
//
// Keys are sharded by their first byte into 256 shards. Each shard is an
// append log of recent insertions plus a stack of sorted runs merged with
// a binary-counter discipline (two runs of similar size merge into one,
// like an LSM level), so memory is a flat byte slab: width+4 bytes per
// entry — the key plus its 32-bit insertion rank — with no per-entry
// allocation, pointer, or hash-bucket overhead.
//
// The set is insert-only (the engines never delete states) and keys are
// assumed distinct by contract: the caller deduplicates via Has/Rank
// before Insert, exactly as the engines deduplicate before admission.
//
// Spill support: Spill serializes every resident entry into a sorted
// blob and drops them from memory; BlobReader answers Has/Rank against
// such a blob with binary search and no decode step, so cold entries can
// live on disk (through any envelope the caller likes — the enumeration
// uses ckptio's CRC32 envelope) and stream back for dedup at level
// boundaries.
package stateset

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

const (
	numShards = 256

	// flushEntries is the append-log length at which a shard sorts its
	// log into a run. Small enough that Has scans stay cheap, large
	// enough that runs merge geometrically rather than per-insert.
	flushEntries = 128

	// setOverhead approximates the fixed cost of the shard table, slice
	// headers, and append-log capacity slack so Bytes() stays honest
	// for small sets.
	setOverhead = 64 * 1024
)

// blobMagic prefixes a spill blob: "SSP" + format version 1.
var blobMagic = [4]byte{'S', 'S', 'P', '1'}

type shard struct {
	log  []byte   // unsorted recent entries, flushed at flushEntries
	runs [][]byte // sorted runs, newest last, geometrically sized
}

// Set is a compact insert-only set of fixed-width byte keys. Not safe
// for concurrent mutation; concurrent Has/Rank calls are safe between
// mutations (the engines read lock-free during a BFS level and insert
// only at the reconcile barrier).
type Set struct {
	width    int // key bytes
	esize    int // entry bytes: width + 4-byte rank
	count    int // total inserted, including spilled entries
	resident int // entries currently in memory
	shards   [numShards]shard
}

// New returns an empty set over keys of exactly width bytes (1..255).
func New(width int) *Set {
	if width < 1 || width > 255 {
		panic(fmt.Sprintf("stateset: key width %d out of range [1,255]", width))
	}
	return &Set{width: width, esize: width + 4}
}

// Width reports the key width the set was built with.
func (s *Set) Width() int { return s.width }

// Len reports the total number of keys ever inserted, including entries
// moved out of memory by Spill.
func (s *Set) Len() int { return s.count }

// Resident reports the number of keys currently held in memory.
func (s *Set) Resident() int { return s.resident }

// Bytes estimates the resident heap footprint in bytes. Entries are
// stored in flat slabs, so the estimate is esize per resident entry
// plus a fixed allowance for the shard table and log slack.
func (s *Set) Bytes() int64 {
	return int64(s.resident)*int64(s.esize) + setOverhead
}

// Insert adds k (which must not already be present — check with Has or
// Rank first) and returns its rank: a dense id equal to the number of
// keys inserted before it, stable across Spill.
func (s *Set) Insert(k []byte) uint32 {
	s.checkWidth(k)
	r := uint32(s.count)
	s.count++
	s.resident++
	sh := &s.shards[k[0]]
	sh.log = append(sh.log, k...)
	var rb [4]byte
	binary.LittleEndian.PutUint32(rb[:], r)
	sh.log = append(sh.log, rb[:]...)
	if len(sh.log) >= flushEntries*s.esize {
		s.flush(sh)
	}
	return r
}

// Has reports whether k is resident in the set. Spilled entries are not
// consulted — use a BlobReader over the spill blob for those.
func (s *Set) Has(k []byte) bool {
	_, ok := s.Rank(k)
	return ok
}

// Rank returns the insertion rank of a resident key.
func (s *Set) Rank(k []byte) (uint32, bool) {
	s.checkWidth(k)
	sh := &s.shards[k[0]]
	for i := 0; i+s.esize <= len(sh.log); i += s.esize {
		if bytes.Equal(sh.log[i:i+s.width], k) {
			return binary.LittleEndian.Uint32(sh.log[i+s.width : i+s.esize]), true
		}
	}
	for j := len(sh.runs) - 1; j >= 0; j-- {
		if r, ok := searchRun(sh.runs[j], s.width, s.esize, k); ok {
			return r, true
		}
	}
	return 0, false
}

// ForEach calls f for every resident key with its rank, in unspecified
// order. The key slice aliases internal storage: it is valid only for
// the duration of the call and must not be mutated or retained.
func (s *Set) ForEach(f func(key []byte, rank uint32)) {
	for si := range s.shards {
		sh := &s.shards[si]
		forEachEntry(sh.log, s.width, s.esize, f)
		for _, run := range sh.runs {
			forEachEntry(run, s.width, s.esize, f)
		}
	}
}

// Spill serializes every resident entry into a self-describing sorted
// blob, drops them from memory, and returns the blob. Ranks keep
// increasing across spills, so a key's rank is unique over the union of
// the resident set and all spill blobs. Returns nil when nothing is
// resident.
func (s *Set) Spill() []byte {
	if s.resident == 0 {
		return nil
	}
	blob := make([]byte, 0, len(blobMagic)+1+numShards*4+s.resident*s.esize)
	blob = append(blob, blobMagic[:]...)
	blob = append(blob, byte(s.width))
	for si := range s.shards {
		sh := &s.shards[si]
		merged := s.mergedShard(sh)
		var cb [4]byte
		binary.LittleEndian.PutUint32(cb[:], uint32(len(merged)/s.esize))
		blob = append(blob, cb[:]...)
		blob = append(blob, merged...)
		sh.log = nil
		sh.runs = nil
	}
	s.resident = 0
	return blob
}

// Restore re-adds the entries of a spill blob produced by this set's
// own Spill, preserving their recorded ranks (Len is unchanged — the
// entries were already counted when first inserted). It exists so a
// caller whose spill write failed can roll the entries back into memory
// instead of losing them.
func (s *Set) Restore(blob []byte) error {
	br, err := NewBlobReader(blob)
	if err != nil {
		return err
	}
	if br.width != s.width {
		return fmt.Errorf("stateset: restoring blob of width %d into set of width %d", br.width, s.width)
	}
	br.ForEach(func(k []byte, r uint32) {
		s.resident++
		sh := &s.shards[k[0]]
		sh.log = append(sh.log, k...)
		var rb [4]byte
		binary.LittleEndian.PutUint32(rb[:], r)
		sh.log = append(sh.log, rb[:]...)
		if len(sh.log) >= flushEntries*s.esize {
			s.flush(sh)
		}
	})
	return nil
}

// mergedShard returns all entries of sh as one sorted run without
// mutating the shard.
func (s *Set) mergedShard(sh *shard) []byte {
	total := len(sh.log)
	for _, run := range sh.runs {
		total += len(run)
	}
	if total == 0 {
		return nil
	}
	out := make([]byte, 0, total)
	out = append(out, sh.log...)
	for _, run := range sh.runs {
		out = append(out, run...)
	}
	sortEntries(out, s.width, s.esize)
	return out
}

// flush sorts the shard's log into a run and merges runs while the top
// of the stack is no larger than the run being pushed (binary-counter
// merging keeps the stack logarithmic and total merge work O(n log n)).
func (s *Set) flush(sh *shard) {
	run := make([]byte, len(sh.log))
	copy(run, sh.log)
	sh.log = sh.log[:0]
	sortEntries(run, s.width, s.esize)
	for len(sh.runs) > 0 && len(sh.runs[len(sh.runs)-1]) <= len(run) {
		top := sh.runs[len(sh.runs)-1]
		sh.runs = sh.runs[:len(sh.runs)-1]
		run = mergeRuns(top, run, s.width, s.esize)
	}
	sh.runs = append(sh.runs, run)
}

func (s *Set) checkWidth(k []byte) {
	if len(k) != s.width {
		panic(fmt.Sprintf("stateset: key length %d, set width %d", len(k), s.width))
	}
}

func forEachEntry(buf []byte, width, esize int, f func(key []byte, rank uint32)) {
	for i := 0; i+esize <= len(buf); i += esize {
		f(buf[i:i+width], binary.LittleEndian.Uint32(buf[i+width:i+esize]))
	}
}

// searchRun binary-searches a sorted run for key k.
func searchRun(run []byte, width, esize int, k []byte) (uint32, bool) {
	n := len(run) / esize
	i := sort.Search(n, func(i int) bool {
		return bytes.Compare(run[i*esize:i*esize+width], k) >= 0
	})
	if i < n && bytes.Equal(run[i*esize:i*esize+width], k) {
		return binary.LittleEndian.Uint32(run[i*esize+width : i*esize+esize]), true
	}
	return 0, false
}

// mergeRuns merges two sorted runs of distinct keys into one.
func mergeRuns(a, b []byte, width, esize int) []byte {
	out := make([]byte, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if bytes.Compare(a[i:i+width], b[j:j+width]) <= 0 {
			out = append(out, a[i:i+esize]...)
			i += esize
		} else {
			out = append(out, b[j:j+esize]...)
			j += esize
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// sortEntries sorts width+4-byte entries in buf by key bytes in place.
func sortEntries(buf []byte, width, esize int) {
	sort.Sort(&entrySorter{buf: buf, width: width, esize: esize})
}

type entrySorter struct {
	buf   []byte
	width int
	esize int
	tmp   [260]byte // max esize: 255-byte key + 4-byte rank
}

func (e *entrySorter) Len() int { return len(e.buf) / e.esize }

func (e *entrySorter) Less(i, j int) bool {
	return bytes.Compare(e.buf[i*e.esize:i*e.esize+e.width], e.buf[j*e.esize:j*e.esize+e.width]) < 0
}

func (e *entrySorter) Swap(i, j int) {
	a := e.buf[i*e.esize : (i+1)*e.esize]
	b := e.buf[j*e.esize : (j+1)*e.esize]
	t := e.tmp[:e.esize]
	copy(t, a)
	copy(a, b)
	copy(b, t)
}

// BlobReader answers membership and rank queries against a spill blob
// produced by Spill, without decoding it into per-entry structures.
type BlobReader struct {
	width    int
	esize    int
	count    int
	sections [numShards][]byte // sorted entries per shard, aliasing blob
}

// NewBlobReader validates blob framing and returns a reader over it.
// The reader aliases blob; the caller must keep blob alive and
// unmodified.
func NewBlobReader(blob []byte) (*BlobReader, error) {
	if len(blob) < len(blobMagic)+1 {
		return nil, fmt.Errorf("stateset: spill blob too short (%d bytes)", len(blob))
	}
	if !bytes.Equal(blob[:len(blobMagic)], blobMagic[:]) {
		return nil, fmt.Errorf("stateset: bad spill blob magic %q", blob[:len(blobMagic)])
	}
	r := &BlobReader{width: int(blob[len(blobMagic)])}
	if r.width < 1 {
		return nil, fmt.Errorf("stateset: spill blob key width %d out of range", r.width)
	}
	r.esize = r.width + 4
	rest := blob[len(blobMagic)+1:]
	for si := 0; si < numShards; si++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("stateset: spill blob truncated at shard %d header", si)
		}
		n := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		size := n * r.esize
		if n < 0 || size < 0 || size > len(rest) {
			return nil, fmt.Errorf("stateset: spill blob truncated at shard %d (%d entries)", si, n)
		}
		r.sections[si] = rest[:size]
		r.count += n
		rest = rest[size:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("stateset: %d trailing bytes after spill blob shards", len(rest))
	}
	return r, nil
}

// Width reports the key width the blob was written with.
func (r *BlobReader) Width() int { return r.width }

// Len reports the number of entries in the blob.
func (r *BlobReader) Len() int { return r.count }

// Has reports whether k is present in the blob.
func (r *BlobReader) Has(k []byte) bool {
	_, ok := r.Rank(k)
	return ok
}

// Rank returns the insertion rank recorded for k in the blob.
func (r *BlobReader) Rank(k []byte) (uint32, bool) {
	if len(k) != r.width {
		panic(fmt.Sprintf("stateset: key length %d, blob width %d", len(k), r.width))
	}
	return searchRun(r.sections[k[0]], r.width, r.esize, k)
}

// ForEach calls f for every entry in the blob with its rank. The key
// slice aliases the blob and must not be mutated or retained.
func (r *BlobReader) ForEach(f func(key []byte, rank uint32)) {
	for si := range r.sections {
		forEachEntry(r.sections[si], r.width, r.esize, f)
	}
}
