package ckptio

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func storeAt(t *testing.T, keep int) *Store {
	t.Helper()
	return &Store{Path: filepath.Join(t.TempDir(), "run.ckpt"), Keep: keep}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := storeAt(t, 3)
	payload := []byte(`{"version":2,"hello":"world"}`)
	if err := s.Save(payload); err != nil {
		t.Fatal(err)
	}
	got, info, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	if info.Generation != 0 || info.Legacy || len(info.Skipped) != 0 {
		t.Fatalf("info = %+v, want pristine generation 0", info)
	}
}

func TestRotationKeepsLastK(t *testing.T) {
	s := storeAt(t, 3)
	for i := 1; i <= 5; i++ {
		if err := s.Save([]byte(fmt.Sprintf(`{"gen":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// Newest three snapshots survive: 5 at .0, 4 at .1, 3 at .2.
	for gen, want := range map[int]string{0: `{"gen":5}`, 1: `{"gen":4}`, 2: `{"gen":3}`} {
		data, err := os.ReadFile(s.GenPath(gen))
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		payload, _, err := Decode(s.GenPath(gen), data)
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		if string(payload) != want {
			t.Fatalf("generation %d = %s, want %s", gen, payload, want)
		}
	}
	// Nothing beyond Keep generations.
	if _, err := os.Stat(s.GenPath(3)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("generation 3 should not exist, stat err = %v", err)
	}
}

func TestLoadFallsBackPastCorruptNewest(t *testing.T) {
	s := storeAt(t, 3)
	if err := s.Save([]byte(`{"gen":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte(`{"gen":2}`)); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the newest snapshot.
	data, err := os.ReadFile(s.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(s.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	payload, info, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != `{"gen":1}` {
		t.Fatalf("payload = %s, want the prior generation", payload)
	}
	if info.Generation != 1 || len(info.Skipped) != 1 {
		t.Fatalf("info = %+v, want generation 1 with one skip", info)
	}
	if !errors.Is(info.Skipped[0], ErrCorrupt) {
		t.Fatalf("skip reason = %v, want ErrCorrupt", info.Skipped[0])
	}
}

func TestLoadFallsBackPastDeletedNewest(t *testing.T) {
	s := storeAt(t, 3)
	if err := s.Save([]byte(`{"gen":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte(`{"gen":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.Path); err != nil {
		t.Fatal(err)
	}
	payload, info, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != `{"gen":1}` || info.Generation != 1 {
		t.Fatalf("payload = %s (gen %d), want prior generation", payload, info.Generation)
	}
}

func TestLoadNoSnapshot(t *testing.T) {
	s := storeAt(t, 3)
	_, info, err := s.Load()
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	if info == nil {
		t.Fatal("info must be non-nil on failure")
	}
}

func TestLegacyBarePayload(t *testing.T) {
	s := storeAt(t, 3)
	legacy := []byte(`{"version":2,"plain":"pre-envelope checkpoint"}`)
	if err := os.WriteFile(s.Path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, info, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, legacy) || !info.Legacy {
		t.Fatalf("payload = %q legacy = %v, want the bare file flagged legacy", payload, info.Legacy)
	}
}

func TestUnsupportedEnvelopeVersion(t *testing.T) {
	s := storeAt(t, 1)
	future := fmt.Sprintf("%sv%d crc32=00000000 len=0\n", headerMagic, EnvelopeVersion+1)
	if err := os.WriteFile(s.Path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	_, info, err := s.Load()
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	if len(info.Skipped) != 1 || !errors.Is(info.Skipped[0], ErrUnsupportedVersion) {
		t.Fatalf("skipped = %v, want one ErrUnsupportedVersion", info.Skipped)
	}
	var ve *UnsupportedVersionError
	if !errors.As(info.Skipped[0], &ve) || ve.Version != EnvelopeVersion+1 {
		t.Fatalf("skip error %v should carry the found version", info.Skipped[0])
	}
}

// TestCrashRecoveryAtEveryBoundary is the crash-recovery coverage test:
// with two good snapshots on disk, truncating the newest at every 64-byte
// boundary — or flipping a byte there — must either recover the prior good
// snapshot or fail with the typed, versioned corruption error. Garbage
// must never be returned as a valid payload.
func TestCrashRecoveryAtEveryBoundary(t *testing.T) {
	prior := []byte(`{"version":2,"gen":"prior","pad":"` + string(bytes.Repeat([]byte("p"), 200)) + `"}`)
	newest := []byte(`{"version":2,"gen":"newest","pad":"` + string(bytes.Repeat([]byte("n"), 200)) + `"}`)

	for _, damage := range []string{"truncate", "flip"} {
		s := storeAt(t, 2)
		if err := s.Save(prior); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(newest); err != nil {
			t.Fatal(err)
		}
		pristine, err := os.ReadFile(s.Path)
		if err != nil {
			t.Fatal(err)
		}

		for off := 0; off < len(pristine); off += 64 {
			var damaged []byte
			switch damage {
			case "truncate":
				damaged = pristine[:off]
			case "flip":
				damaged = append([]byte(nil), pristine...)
				damaged[off] ^= 0x01
			}
			if err := os.WriteFile(s.Path, damaged, 0o644); err != nil {
				t.Fatal(err)
			}

			payload, info, err := s.Load()
			switch {
			case err == nil && bytes.Equal(payload, newest) && info.Generation == 0:
				// Damage missed anything load-bearing (possible for a bit
				// flip in padding? — CRC makes this impossible; truncation
				// at len(pristine) is the undamaged file).
				if damage == "flip" && off < len(pristine) {
					t.Errorf("%s at %d: corrupt newest validated", damage, off)
				}
			case err == nil:
				// Recovered: must be exactly the prior good snapshot.
				if !bytes.Equal(payload, prior) {
					t.Errorf("%s at %d: recovered payload = %q, want prior snapshot", damage, off, payload)
				}
				if info.Generation != 1 || len(info.Skipped) == 0 {
					t.Errorf("%s at %d: info = %+v, want fallback to generation 1", damage, off, info)
				}
				if !errors.Is(info.Skipped[0], ErrCorrupt) {
					t.Errorf("%s at %d: skip reason = %v, want typed ErrCorrupt", damage, off, info.Skipped[0])
				}
				var ce *CorruptError
				if !errors.As(info.Skipped[0], &ce) {
					t.Errorf("%s at %d: skip reason %T is not a *CorruptError", damage, off, info.Skipped[0])
				}
			default:
				t.Errorf("%s at %d: no recovery although a good prior snapshot exists: %v", damage, off, err)
			}

			// Restore the newest generation for the next boundary.
			if err := os.WriteFile(s.Path, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCrashRecoveryWithoutFallback: same damage sweep with Keep=1 (no
// rotated generation to fall back to) must always fail with a typed error,
// never return damaged bytes.
func TestCrashRecoveryWithoutFallback(t *testing.T) {
	payload := []byte(`{"version":2,"pad":"` + string(bytes.Repeat([]byte("x"), 200)) + `"}`)
	s := storeAt(t, 1)
	if err := s.Save(payload); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(s.Path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(pristine); off += 64 {
		damaged := append([]byte(nil), pristine...)
		damaged[off] ^= 0x01
		if err := os.WriteFile(s.Path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		_, info, err := s.Load()
		if !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("flip at %d: err = %v, want ErrNoSnapshot", off, err)
		}
		if len(info.Skipped) != 1 || !errors.Is(info.Skipped[0], ErrCorrupt) {
			t.Fatalf("flip at %d: skipped = %v, want one typed ErrCorrupt", off, info.Skipped)
		}
	}
}

func TestSaveTwiceOverSamePath(t *testing.T) {
	s := storeAt(t, 1)
	if err := s.Save([]byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save([]byte(`{"a":2}`)); err != nil {
		t.Fatal(err)
	}
	payload, _, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != `{"a":2}` {
		t.Fatalf("payload = %s, want the overwrite", payload)
	}
}

func TestRemove(t *testing.T) {
	s := storeAt(t, 3)
	for i := 0; i < 3; i++ {
		if err := s.Save([]byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err after Remove = %v, want ErrNoSnapshot", err)
	}
	// Removing an empty store is fine.
	if err := s.Remove(); err != nil {
		t.Fatal(err)
	}
}
