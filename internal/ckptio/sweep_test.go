package ckptio

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeAged writes a file and pins its mtime so the test controls the
// eviction order precisely.
func writeAged(t *testing.T, dir, name string, size int, age time.Duration) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(path, when, when); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSweepDirEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	oldest := writeAged(t, dir, "a.ccres", 100, 3*time.Hour)
	middle := writeAged(t, dir, "b.ccres", 100, 2*time.Hour)
	newest := writeAged(t, dir, "c.ccres", 100, 1*time.Hour)

	stats, err := SweepDir(dir, ".ccres", 250)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 3 || stats.Removed != 1 || stats.FreedBytes != 100 || stats.KeptBytes != 200 {
		t.Fatalf("stats = %+v, want scanned 3, removed 1, freed 100, kept 200", stats)
	}
	if _, err := os.Stat(oldest); !os.IsNotExist(err) {
		t.Errorf("oldest file survived the sweep (err %v)", err)
	}
	for _, p := range []string{middle, newest} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s evicted, should have been kept: %v", p, err)
		}
	}
}

func TestSweepDirUnderBudgetRemovesNothing(t *testing.T) {
	dir := t.TempDir()
	writeAged(t, dir, "a.ccres", 64, time.Hour)
	writeAged(t, dir, "b.ccres", 64, time.Minute)
	stats, err := SweepDir(dir, ".ccres", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 0 || stats.KeptBytes != 128 {
		t.Fatalf("stats = %+v, want nothing removed, 128 kept", stats)
	}
}

func TestSweepDirIgnoresForeignEntries(t *testing.T) {
	dir := t.TempDir()
	writeAged(t, dir, "victim.ccres", 200, 2*time.Hour)
	foreign := writeAged(t, dir, "notes.txt", 500, 10*time.Hour)
	dotfile := writeAged(t, dir, ".hidden.ccres", 500, 10*time.Hour)
	if err := os.Mkdir(filepath.Join(dir, "sub.ccres"), 0o755); err != nil {
		t.Fatal(err)
	}

	stats, err := SweepDir(dir, ".ccres", 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 1 || stats.Removed != 1 {
		t.Fatalf("stats = %+v, want exactly the one matching file scanned and removed", stats)
	}
	for _, p := range []string{foreign, dotfile} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("sweep touched foreign entry %s: %v", p, err)
		}
	}
}

func TestSweepDirZeroBudgetScansOnly(t *testing.T) {
	dir := t.TempDir()
	keep := writeAged(t, dir, "a.ccres", 100, time.Hour)
	stats, err := SweepDir(dir, ".ccres", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 1 || stats.Removed != 0 {
		t.Fatalf("stats = %+v, want scan-only", stats)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("zero budget must disable eviction: %v", err)
	}
}

// TestSweepDirBoundsServeStyleStores: envelope files written through Store
// (the disk tier's real format) sweep just like plain files.
func TestSweepDirBoundsServeStyleStores(t *testing.T) {
	dir := t.TempDir()
	var total int64
	for i := 0; i < 8; i++ {
		s := &Store{Path: filepath.Join(dir, string(rune('a'+i))+".ccres"), Keep: 1}
		if err := s.Save(make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
		// Space the mtimes out so eviction order is stable even on
		// coarse-grained filesystems.
		when := time.Now().Add(time.Duration(i-8) * time.Hour)
		if err := os.Chtimes(s.Path, when, when); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(s.Path)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	budget := total / 2
	stats, err := SweepDir(dir, ".ccres", budget)
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeptBytes > budget {
		t.Fatalf("kept %d bytes, budget %d", stats.KeptBytes, budget)
	}
	if stats.Removed == 0 || stats.Removed == stats.Scanned {
		t.Fatalf("stats = %+v, want a partial eviction", stats)
	}
	// The survivors are the newest stores, and they still load.
	for i := stats.Removed; i < 8; i++ {
		s := &Store{Path: filepath.Join(dir, string(rune('a'+i))+".ccres"), Keep: 1}
		if _, _, err := s.Load(); err != nil {
			t.Errorf("surviving store %c failed to load: %v", 'a'+i, err)
		}
	}
}
