package ckptio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPreflightDirOK(t *testing.T) {
	dir := t.TempDir()
	if err := PreflightDir(dir); err != nil {
		t.Fatalf("PreflightDir(%s): %v", dir, err)
	}
	// The probe file must not linger.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("preflight left %d files behind", len(ents))
	}
}

func TestPreflightDirMissing(t *testing.T) {
	err := PreflightDir(filepath.Join(t.TempDir(), "does-not-exist"))
	if !errors.Is(err, ErrUnwritable) {
		t.Fatalf("error %v, want ErrUnwritable", err)
	}
	var ue *UnwritableError
	if !errors.As(err, &ue) || ue.Dir == "" {
		t.Fatalf("error %v does not carry the directory", err)
	}
}

func TestPreflightDirNotADirectory(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := PreflightDir(file); !errors.Is(err, ErrUnwritable) {
		t.Fatalf("error %v, want ErrUnwritable", err)
	}
}

func TestStorePreflight(t *testing.T) {
	var empty Store
	if err := empty.Preflight(); err == nil {
		t.Error("Preflight on a pathless store must error")
	}
	s := &Store{Path: filepath.Join(t.TempDir(), "snap.ckpt")}
	if err := s.Preflight(); err != nil {
		t.Errorf("Preflight: %v", err)
	}
	bad := &Store{Path: filepath.Join(t.TempDir(), "missing", "snap.ckpt")}
	if err := bad.Preflight(); !errors.Is(err, ErrUnwritable) {
		t.Errorf("error %v, want ErrUnwritable", err)
	}
}
