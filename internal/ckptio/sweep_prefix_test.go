package ckptio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSweepPrefixRemovesOnlyMatchingFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, n int) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), make([]byte, n), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("spill-visited-0000.bin", 100)
	write("spill-tuples-0000.bin", 50)
	write("result.ccres", 10)  // different prefix: must survive
	write(".spill-hidden", 10) // dotfile: never touched
	if err := os.Mkdir(filepath.Join(dir, "spill-subdir"), 0o755); err != nil {
		t.Fatal(err)
	}

	stats, err := SweepPrefix(dir, "spill-")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 2 || stats.Removed != 2 || stats.FreedBytes != 150 {
		t.Fatalf("stats = %+v, want 2 scanned, 2 removed, 150 bytes freed", stats)
	}
	for _, name := range []string{"spill-visited-0000.bin", "spill-tuples-0000.bin"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s survived the sweep", name)
		}
	}
	for _, name := range []string{"result.ccres", ".spill-hidden", "spill-subdir"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s should have survived: %v", name, err)
		}
	}
}

func TestSweepPrefixMissingDirIsEmptyNotError(t *testing.T) {
	stats, err := SweepPrefix(filepath.Join(t.TempDir(), "nope"), "spill-")
	if err != nil {
		t.Fatalf("missing directory must sweep to nothing, got %v", err)
	}
	if stats != (SweepStats{}) {
		t.Fatalf("stats = %+v, want zero", stats)
	}
}
