package ckptio

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SweepStats reports what a SweepDir retention pass found and removed.
type SweepStats struct {
	// Scanned is the number of matching files considered.
	Scanned int
	// Removed is the number of files evicted.
	Removed int
	// FreedBytes is the total size of evicted files.
	FreedBytes int64
	// KeptBytes is the total size of the files left resident.
	KeptBytes int64
}

// SweepDir bounds the total size of the files in dir whose names end with
// suffix ("" matches every regular file) to maxBytes, deleting the files
// with the oldest modification times first until the remainder fits. It is
// the startup retention pass for ccserved's disk cache tier: result files
// are written once and never touched again, so modification time orders
// them by write recency — an LRU over cache fills, which is exactly the
// eviction order a content-addressed cache wants.
//
// maxBytes <= 0 disables eviction (the stats still report the scan).
// Subdirectories, dotfiles and non-regular files are never touched, and a
// file that disappears mid-sweep (a concurrent evictor, a manual cleanup)
// is skipped rather than failing the sweep. Removal errors abort the sweep
// with the stats accumulated so far: an undeletable directory would
// otherwise loop forever on the same victim.
func SweepDir(dir, suffix string, maxBytes int64) (SweepStats, error) {
	var stats SweepStats
	entries, err := os.ReadDir(dir)
	if err != nil {
		return stats, err
	}
	type candidate struct {
		path  string
		size  int64
		mtime int64
	}
	var files []candidate
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() || strings.HasPrefix(name, ".") {
			continue
		}
		if suffix != "" && !strings.HasSuffix(name, suffix) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // vanished mid-sweep
		}
		files = append(files, candidate{
			path:  filepath.Join(dir, name),
			size:  fi.Size(),
			mtime: fi.ModTime().UnixNano(),
		})
		stats.Scanned++
		stats.KeptBytes += fi.Size()
	}
	if maxBytes <= 0 {
		return stats, nil
	}
	// Oldest write first; ties break on path so the sweep is deterministic.
	sort.Slice(files, func(a, b int) bool {
		if files[a].mtime != files[b].mtime {
			return files[a].mtime < files[b].mtime
		}
		return files[a].path < files[b].path
	})
	for _, f := range files {
		if stats.KeptBytes <= maxBytes {
			break
		}
		if err := os.Remove(f.path); err != nil {
			if os.IsNotExist(err) {
				// Someone else removed it; count it as gone.
				stats.KeptBytes -= f.size
				continue
			}
			return stats, err
		}
		stats.Removed++
		stats.FreedBytes += f.size
		stats.KeptBytes -= f.size
	}
	return stats, nil
}

// SweepPrefix removes every regular file in dir whose name starts with
// prefix, returning what it found and freed. It is the startup cleanup for
// directories that hold strictly run-scoped scratch files — ccenum's
// out-of-core spill directory, where spill-visited-*.bin / spill-tuples-*.bin
// left behind by a budgeted run that failed or was killed are garbage by
// construction (enumeration checkpoints are self-contained, so no resume
// ever reads an earlier run's spill files). Subdirectories, dotfiles and
// non-regular files are never touched; a file vanishing mid-sweep is
// skipped. A removal error aborts the sweep with the stats accumulated so
// far, mirroring SweepDir.
func SweepPrefix(dir, prefix string) (SweepStats, error) {
	var stats SweepStats
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return stats, nil // nothing to sweep
		}
		return stats, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() || strings.HasPrefix(name, ".") || !strings.HasPrefix(name, prefix) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // vanished mid-sweep
		}
		stats.Scanned++
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return stats, err
		}
		stats.Removed++
		stats.FreedBytes += fi.Size()
	}
	return stats, nil
}
