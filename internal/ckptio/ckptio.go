// Package ckptio is the durable checkpoint store shared by the
// enumeration and symbolic checkpoint layers (internal/enum,
// internal/symbolic) and the campaign runner (internal/campaign).
//
// A checkpoint is only useful if it survives the very failures it exists
// for: a machine losing power mid-write, a disk filling up, a file
// truncated by a crashed copy, a stray editor corrupting a byte. The store
// therefore never trusts a file it did not validate:
//
//   - Writes are atomic and durable: the payload is wrapped in a
//     checksummed envelope, written to a temp file in the target
//     directory, fsynced, renamed into place, and the directory is
//     fsynced, so a crash at any instant leaves either the old snapshot
//     or the new one — never a torn file.
//   - Every snapshot carries a CRC32 (IEEE) over the payload plus the
//     payload length; Load refuses truncated or bit-flipped files with a
//     typed, versioned error instead of handing garbage to the decoder.
//   - Save rotates generations: the previous snapshot becomes <path>.1,
//     the one before it <path>.2, ..., keeping the last Keep good
//     snapshots. Load falls back automatically to the newest generation
//     that validates, so one corrupt file costs a little progress, not
//     the whole run.
//
// The store is payload-agnostic: it persists opaque bytes. Checkpoint
// semantics (JSON schema, format versions, resume validation) stay in the
// engine packages.
package ckptio

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// EnvelopeVersion is the on-disk envelope format version; Load rejects
// envelopes written by future builds with an UnsupportedVersionError.
const EnvelopeVersion = 1

// DefaultKeep is the number of good snapshot generations retained when
// Store.Keep is zero.
const DefaultKeep = 3

// headerMagic starts every enveloped snapshot. A file without it is
// treated as a bare legacy payload (pre-envelope checkpoints began with
// '{'), so checkpoints written by older builds still load.
const headerMagic = "ccckpt "

// Sentinel errors, matchable with errors.Is.
var (
	// ErrCorrupt: a snapshot file exists but fails envelope validation
	// (bad magic, truncation, length mismatch, checksum mismatch). The
	// concrete error is a *CorruptError carrying the path and reason.
	ErrCorrupt = errors.New("ckptio: corrupt snapshot")
	// ErrUnsupportedVersion: the envelope was written by a newer build.
	// The concrete error is an *UnsupportedVersionError.
	ErrUnsupportedVersion = errors.New("ckptio: unsupported snapshot envelope version")
	// ErrNoSnapshot: no generation of the store validates (including
	// "no file exists at all").
	ErrNoSnapshot = errors.New("ckptio: no usable snapshot")
	// ErrUnwritable: the snapshot directory failed the preflight
	// writability probe, so no Save can ever succeed there. The concrete
	// error is an *UnwritableError carrying the directory and cause.
	ErrUnwritable = errors.New("ckptio: snapshot directory not writable")
)

// UnwritableError reports a snapshot directory that failed the preflight
// probe of PreflightDir. It unwraps to ErrUnwritable.
type UnwritableError struct {
	// Dir is the directory that was probed.
	Dir string
	// Err is the underlying filesystem error.
	Err error
}

func (e *UnwritableError) Error() string {
	return fmt.Sprintf("ckptio: snapshot directory %s is not writable: %v", e.Dir, e.Err)
}

func (e *UnwritableError) Unwrap() error { return ErrUnwritable }

// PreflightDir probes that dir can actually host durable snapshots — it
// exists, is a directory, and a file can be created, written and removed in
// it — before any long run starts. Save performs the same operations, so a
// run whose store passes preflight cannot discover an unwritable directory
// only at its first mid-run snapshot, hours in. Failures are typed: the
// returned error unwraps to ErrUnwritable.
func PreflightDir(dir string) error {
	fi, err := os.Stat(dir)
	if err != nil {
		return &UnwritableError{Dir: dir, Err: err}
	}
	if !fi.IsDir() {
		return &UnwritableError{Dir: dir, Err: fmt.Errorf("not a directory")}
	}
	f, err := os.CreateTemp(dir, ".ckptio-preflight-*")
	if err != nil {
		return &UnwritableError{Dir: dir, Err: err}
	}
	name := f.Name()
	_, werr := f.Write([]byte("preflight"))
	cerr := f.Close()
	rerr := os.Remove(name)
	for _, e := range []error{werr, cerr, rerr} {
		if e != nil {
			return &UnwritableError{Dir: dir, Err: e}
		}
	}
	return nil
}

// Preflight probes the store's directory with PreflightDir; call it at
// store creation to fail fast instead of at the first Save.
func (s *Store) Preflight() error {
	if s.Path == "" {
		return fmt.Errorf("ckptio: store has no path")
	}
	return PreflightDir(filepath.Dir(s.Path))
}

// CorruptError reports a snapshot that failed envelope validation. It
// unwraps to ErrCorrupt.
type CorruptError struct {
	// Path is the offending file.
	Path string
	// Version is the envelope version the header claimed, or 0 when the
	// header itself was unreadable.
	Version int
	// Reason describes the validation failure.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ckptio: %s: corrupt snapshot (envelope v%d): %s", e.Path, e.Version, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// UnsupportedVersionError reports an envelope from a future build. It
// unwraps to ErrUnsupportedVersion.
type UnsupportedVersionError struct {
	Path    string
	Version int
}

func (e *UnsupportedVersionError) Error() string {
	return fmt.Sprintf("ckptio: %s: snapshot envelope version %d (this build reads version %d)",
		e.Path, e.Version, EnvelopeVersion)
}

func (e *UnsupportedVersionError) Unwrap() error { return ErrUnsupportedVersion }

// Store persists rotating snapshot generations under one base path. The
// newest snapshot lives at Path, the previous one at Path.1, and so on up
// to Path.<Keep-1>. The zero-value-with-Path store keeps DefaultKeep
// generations.
type Store struct {
	// Path is the base file path of the newest snapshot.
	Path string
	// Keep is the total number of good generations retained, including
	// the newest (<=0: DefaultKeep, 1: no rotation).
	Keep int
}

// keep returns the effective generation count.
func (s *Store) keep() int {
	if s.Keep <= 0 {
		return DefaultKeep
	}
	return s.Keep
}

// GenPath returns the path of generation gen: the base path for 0, the
// rotated "<path>.<gen>" for older generations.
func (s *Store) GenPath(gen int) string {
	if gen == 0 {
		return s.Path
	}
	return s.Path + "." + strconv.Itoa(gen)
}

// Encode wraps a payload in the checksummed envelope.
func Encode(payload []byte) []byte {
	header := fmt.Sprintf("%sv%d crc32=%08x len=%d\n",
		headerMagic, EnvelopeVersion, crc32.ChecksumIEEE(payload), len(payload))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// Decode validates an enveloped snapshot and returns its payload. Files
// without the envelope magic are returned whole when they plausibly are a
// bare legacy payload (leading '{' of the pre-envelope JSON checkpoints);
// legacy reports true for them. Anything else fails with a *CorruptError
// or *UnsupportedVersionError; path only labels the error.
func Decode(path string, data []byte) (payload []byte, legacy bool, err error) {
	if !strings.HasPrefix(string(data), headerMagic) {
		if len(data) > 0 && data[0] == '{' {
			// Pre-envelope checkpoint: no checksum to verify; the format
			// decoder downstream is the only validation.
			return data, true, nil
		}
		return nil, false, &CorruptError{Path: path, Reason: "missing envelope header"}
	}
	nl := strings.IndexByte(string(data), '\n')
	if nl < 0 {
		return nil, false, &CorruptError{Path: path, Reason: "unterminated envelope header"}
	}
	var version, length int
	var sum uint32
	if _, err := fmt.Sscanf(string(data[:nl]), headerMagic+"v%d crc32=%x len=%d", &version, &sum, &length); err != nil {
		return nil, false, &CorruptError{Path: path, Reason: "malformed envelope header"}
	}
	if version != EnvelopeVersion {
		return nil, false, &UnsupportedVersionError{Path: path, Version: version}
	}
	payload = data[nl+1:]
	if len(payload) != length {
		return nil, false, &CorruptError{Path: path, Version: version,
			Reason: fmt.Sprintf("payload is %d bytes, envelope says %d (truncated or padded)", len(payload), length)}
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, false, &CorruptError{Path: path, Version: version,
			Reason: fmt.Sprintf("checksum %08x does not match envelope %08x", got, sum)}
	}
	return payload, false, nil
}

// Save durably writes payload as the newest generation: envelope + temp
// file + fsync + rotation + rename + directory fsync. Existing
// generations shift up one slot; the oldest beyond Keep is dropped.
func (s *Store) Save(payload []byte) error {
	if s.Path == "" {
		return fmt.Errorf("ckptio: store has no path")
	}
	dir := filepath.Dir(s.Path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(s.Path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(Encode(payload)); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Shift the existing generations up. A crash mid-rotation leaves every
	// snapshot intact under some name Load checks, so nothing is lost.
	for gen := s.keep() - 2; gen >= 0; gen-- {
		if err := rename(s.GenPath(gen), s.GenPath(gen+1)); err != nil && !errors.Is(err, os.ErrNotExist) {
			os.Remove(tmpName)
			return err
		}
	}
	if err := rename(tmpName, s.Path); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}

// LoadInfo describes which generation Load returned and what it skipped.
type LoadInfo struct {
	// Path and Generation identify the snapshot that validated.
	Path       string
	Generation int
	// Legacy reports a bare pre-envelope payload (no checksum verified).
	Legacy bool
	// Skipped collects the validation errors of newer generations that
	// were passed over, newest first. Non-empty Skipped with a nil Load
	// error means the store recovered from corruption.
	Skipped []error
}

// Load returns the payload of the newest generation that validates,
// falling back through rotated generations. When none validates it
// returns an error wrapping ErrNoSnapshot (with the per-generation
// failures in the LoadInfo, which is non-nil in both cases).
func (s *Store) Load() ([]byte, *LoadInfo, error) {
	info := &LoadInfo{}
	for gen := 0; gen < s.keep(); gen++ {
		path := s.GenPath(gen)
		data, err := os.ReadFile(path)
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				info.Skipped = append(info.Skipped, err)
			}
			continue
		}
		payload, legacy, err := Decode(path, data)
		if err != nil {
			info.Skipped = append(info.Skipped, err)
			continue
		}
		info.Path, info.Generation, info.Legacy = path, gen, legacy
		return payload, info, nil
	}
	return nil, info, fmt.Errorf("%w at %s (%d generation(s) rejected)", ErrNoSnapshot, s.Path, len(info.Skipped))
}

// Remove deletes every generation of the store, ignoring missing files.
func (s *Store) Remove() error {
	var first error
	for gen := 0; gen < s.keep(); gen++ {
		if err := os.Remove(s.GenPath(gen)); err != nil && !errors.Is(err, os.ErrNotExist) && first == nil {
			first = err
		}
	}
	return first
}

// rename moves old to new, replacing new. On Windows the replace needs
// the target removed first.
func rename(oldPath, newPath string) error {
	err := os.Rename(oldPath, newPath)
	if err != nil && runtime.GOOS == "windows" {
		os.Remove(newPath)
		return os.Rename(oldPath, newPath)
	}
	return err
}

// syncDir fsyncs a directory so a rename survives power loss; best-effort
// because not every platform supports it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
