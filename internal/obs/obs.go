// Package obs is the zero-dependency observability layer shared by every
// engine of the verifier: the explicit-state enumerators (internal/enum),
// the symbolic expansion (internal/symbolic), the verification pipeline
// (internal/core), the campaign runner (internal/campaign) and the
// verification service (internal/serve).
//
// The paper's algorithms (Figure 2 breadth-first enumeration, Figure 3
// worklist expansion with ⊆_F containment pruning) are long-running
// searches whose behavior is invisible from the outside: a run either
// returns or it does not. Parameterized-verification practice leans on
// per-phase state counts and pruning statistics to understand and tune
// runs, so the engines report three kinds of signals through this package:
//
//   - Metrics: a Registry of typed counters, gauges and histograms with a
//     deterministic snapshot-as-JSON rendering (the -metrics-json flag and
//     the service's /v1/metrics endpoint).
//   - Phases: monotonic span timings around the pipeline's stages (parse,
//     expand, reconcile, prune, graph, crosscheck, audit).
//   - Levels: one structured callback per expansion level with live stats
//     (frontier size, essential states, states discarded by pruning).
//
// Engines accept an Observer plus a *Registry through their options
// (runctl.RunConfig); both default to nil, and the nil path is
// allocation-free — a single nil check per level boundary — so
// uninstrumented runs keep their benchmarked cost.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Phase names, keyed to the stages of the paper's algorithm. Engines pass
// these to Run.Phase; the registry records one "phase_seconds.<name>"
// histogram per phase.
const (
	// PhaseParse: compiling a ccpsl specification into a protocol.
	PhaseParse = "parse"
	// PhaseExpand: the main state-space search (Figure 2 or Figure 3).
	PhaseExpand = "expand"
	// PhaseReconcile: the parallel BFS's post-level rank-ordered merge.
	PhaseReconcile = "reconcile"
	// PhasePrune: containment pruning work (Definition 9).
	PhasePrune = "prune"
	// PhaseGraph: building the global transition diagram.
	PhaseGraph = "graph"
	// PhaseCrossCheck: explicit-state cross-validation (Theorem 1).
	PhaseCrossCheck = "crosscheck"
	// PhaseAudit: independent witness confirmation by concrete replay.
	PhaseAudit = "audit"
)

// PhaseEvent is one edge of a phase span.
type PhaseEvent struct {
	// Engine identifies the reporting engine ("symbolic", "enum-strict",
	// "enum-counting", "core", "campaign", ...).
	Engine string
	// Protocol is the protocol under verification ("" when not applicable).
	Protocol string
	// Phase is one of the Phase* constants (or an engine-specific name).
	Phase string
	// End marks the closing edge of the span; Elapsed is set only then,
	// measured on the monotonic clock.
	End     bool
	Elapsed time.Duration
}

// LevelStats is the per-expansion-level progress report. All counts are
// cumulative over the run, so an observer can render either totals or
// per-level deltas.
type LevelStats struct {
	// Engine and Protocol identify the run (see PhaseEvent).
	Engine   string
	Protocol string
	// Level is the expansion ordinal: the BFS depth for the enumerators,
	// the number of fully expanded worklist states for the symbolic engine.
	Level int
	// Frontier is the number of states admitted but not yet expanded (the
	// working list W of Figure 3, the next BFS level for Figure 2).
	Frontier int
	// Essential is the retained-state count: the history list H for the
	// symbolic engine, distinct visited states for the enumerators.
	Essential int
	// Visits counts generated successor states (the paper's state-visit
	// metric).
	Visits int
	// Pruned counts generated states discarded without expansion:
	// ⊆_F-contained states for the symbolic engine (Definition 9),
	// identity duplicates for the enumerators.
	Pruned int
	// Superseded counts worklist states discarded because a successor
	// contained them (symbolic engine only).
	Superseded int
	// EstBytes is the engine's estimated resident footprint.
	EstBytes int64
}

// Observer receives engine progress callbacks. Implementations must be
// safe for concurrent use when shared across runs. Engines call OnPhase at
// phase boundaries, OnLevel once per expansion level, and OnEvent for
// out-of-band counters; a nil Observer disables all three with a single
// nil check (the allocation-free fast path).
type Observer interface {
	// OnPhase is called at the opening and closing edge of every phase.
	OnPhase(PhaseEvent)
	// OnLevel is called after every completed expansion level.
	OnLevel(LevelStats)
	// OnEvent is called for discrete occurrences outside the level cadence
	// (violations found, checkpoints saved, retries, ...).
	OnEvent(name string, delta int64)
}

// Funcs adapts plain functions to the Observer interface; nil fields are
// no-ops.
type Funcs struct {
	Phase func(PhaseEvent)
	Level func(LevelStats)
	Event func(name string, delta int64)
}

// OnPhase implements Observer.
func (f Funcs) OnPhase(ev PhaseEvent) {
	if f.Phase != nil {
		f.Phase(ev)
	}
}

// OnLevel implements Observer.
func (f Funcs) OnLevel(st LevelStats) {
	if f.Level != nil {
		f.Level(st)
	}
}

// OnEvent implements Observer.
func (f Funcs) OnEvent(name string, delta int64) {
	if f.Event != nil {
		f.Event(name, delta)
	}
}

// multi fans callbacks out to several observers.
type multi []Observer

func (m multi) OnPhase(ev PhaseEvent) {
	for _, o := range m {
		o.OnPhase(ev)
	}
}

func (m multi) OnLevel(st LevelStats) {
	for _, o := range m {
		o.OnLevel(st)
	}
}

func (m multi) OnEvent(name string, delta int64) {
	for _, o := range m {
		o.OnEvent(name, delta)
	}
}

// Multi combines observers into one; nil entries are dropped. It returns
// nil when every entry is nil, preserving the engines' nil fast path.
func Multi(obs ...Observer) Observer {
	var out multi
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// progress is the human-facing Observer behind the binaries' -progress
// flag: one line per expansion level, one line per closed phase.
type progress struct {
	mu sync.Mutex
	w  io.Writer
}

// Progress returns an Observer that writes one human-readable line per
// expansion level (and per completed phase) to w, in the format
//
//	progress: symbolic illinois level=3 frontier=4 essential=2 pruned=5 visits=11 superseded=1
//
// Lines are written under a mutex so concurrent engines interleave whole
// lines.
func Progress(w io.Writer) Observer {
	return &progress{w: w}
}

func (p *progress) OnPhase(ev PhaseEvent) {
	if !ev.End {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "progress: %s %s phase=%s elapsed=%s\n", ev.Engine, ev.Protocol, ev.Phase, ev.Elapsed)
}

func (p *progress) OnLevel(st LevelStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "progress: %s %s level=%d frontier=%d essential=%d pruned=%d visits=%d superseded=%d\n",
		st.Engine, st.Protocol, st.Level, st.Frontier, st.Essential, st.Pruned, st.Visits, st.Superseded)
}

func (p *progress) OnEvent(name string, delta int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "progress: event %s +%d\n", name, delta)
}
