package obs

import (
	"encoding/json"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SnapshotSchema versions the JSON layout produced by Snapshot. Bump it on
// any incompatible change to the snapshot shape (see docs/observability.md
// for the compatibility contract).
const SnapshotSchema = 1

// A Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta; negative deltas are ignored so the
// counter stays monotonic.
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a metric that can go up and down (frontier size, resident
// bytes). Obtain gauges from a Registry; all methods are safe for
// concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultSecondsBuckets are the histogram bounds used for the
// "*_seconds.*" timing histograms: 1ms to 60s, roughly logarithmic.
var DefaultSecondsBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// A Histogram records the distribution of observed float64 values over
// fixed bucket bounds. Obtain histograms from a Registry; Observe is safe
// for concurrent use (bucket counts are atomic, the sum is CAS-updated).
type Histogram struct {
	bounds  []float64 // immutable after construction, sorted ascending
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Find the first bound >= v; the final bucket is the +Inf overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry is a get-or-create store of named metrics. The zero value is
// ready to use; NewRegistry is provided for symmetry. All methods are safe
// for concurrent use, and a nil *Registry is a valid no-op receiver (every
// getter returns nil, and nil metrics ignore updates), so engines can
// thread an optional registry without branching.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (DefaultSecondsBuckets when bounds
// is empty). Bounds are fixed at creation; later calls with different
// bounds return the existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h := r.histograms[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = DefaultSecondsBuckets
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum is the sum of observed values.
	Sum float64 `json:"sum"`
	// Bounds are the upper bucket bounds; Buckets has len(Bounds)+1 entries,
	// the last being the overflow (+Inf) bucket.
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Snapshot is a frozen, JSON-serializable view of a Registry. Map keys
// serialize in sorted order (encoding/json), so two snapshots of the same
// state render byte-identically.
type Snapshot struct {
	Schema     int                          `json:"schema"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state. A nil registry yields an
// empty (but schema-stamped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Schema:     SnapshotSchema,
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: h.bounds,
		}
		hs.Buckets = make([]int64, len(h.buckets))
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// ZeroTimings zeroes the time-dependent parts of the snapshot — the sum
// and bucket spread of every histogram whose name contains "seconds"
// (observation counts are kept: they are deterministic). Golden tests pin
// -metrics-json output this way.
func (s *Snapshot) ZeroTimings() {
	for name, h := range s.Histograms {
		if !strings.Contains(name, "seconds") {
			continue
		}
		h.Sum = 0
		h.Buckets = make([]int64, len(h.Buckets))
		s.Histograms[name] = h
	}
}

// Merge folds src into s: counters and gauges accumulate by name, and
// histograms with identical bucket bounds accumulate bucket-wise (count and
// sum always accumulate, even when the bounds disagree — the merged
// distribution is then approximate but the totals stay exact). The cluster
// metrics rollup uses it to present one fleet-wide snapshot assembled from
// per-node scrapes; a node that cannot be scraped simply contributes
// nothing, so the merge degrades gracefully under partial failure.
func (s *Snapshot) Merge(src Snapshot) {
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for name, v := range src.Counters {
		s.Counters[name] += v
	}
	for name, v := range src.Gauges {
		s.Gauges[name] += v
	}
	for name, sh := range src.Histograms {
		dh, ok := s.Histograms[name]
		if !ok {
			// Copy so later merges never alias src's slices.
			nh := HistogramSnapshot{Count: sh.Count, Sum: sh.Sum}
			nh.Bounds = append([]float64(nil), sh.Bounds...)
			nh.Buckets = append([]int64(nil), sh.Buckets...)
			s.Histograms[name] = nh
			continue
		}
		dh.Count += sh.Count
		dh.Sum += sh.Sum
		if len(dh.Buckets) == len(sh.Buckets) && equalBounds(dh.Bounds, sh.Bounds) {
			for i := range dh.Buckets {
				dh.Buckets[i] += sh.Buckets[i]
			}
		}
		s.Histograms[name] = dh
	}
}

// equalBounds reports whether two bucket-bound slices match exactly.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MarshalIndent renders the snapshot as deterministic, indented JSON with
// a trailing newline.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the registry's snapshot to path as indented JSON (the
// -metrics-json flag of the binaries).
func WriteFile(path string, r *Registry) error {
	b, err := r.Snapshot().MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
