package obs

import (
	"reflect"
	"testing"
)

func TestSnapshotMergeAccumulates(t *testing.T) {
	a := NewRegistry()
	a.Counter("requests_total").Add(3)
	a.Counter("only_a_total").Add(1)
	a.Gauge("queued").Set(2)
	a.Histogram("lat_seconds", 1, 10).Observe(0.5)

	b := NewRegistry()
	b.Counter("requests_total").Add(4)
	b.Counter("only_b_total").Add(9)
	b.Gauge("queued").Set(5)
	b.Histogram("lat_seconds", 1, 10).Observe(20)

	s := a.Snapshot()
	s.Merge(b.Snapshot())

	if s.Counters["requests_total"] != 7 || s.Counters["only_a_total"] != 1 || s.Counters["only_b_total"] != 9 {
		t.Fatalf("counters = %v, want sums by name", s.Counters)
	}
	if s.Gauges["queued"] != 7 {
		t.Fatalf("gauges = %v, want 7", s.Gauges)
	}
	h := s.Histograms["lat_seconds"]
	if h.Count != 2 || h.Sum != 20.5 {
		t.Fatalf("histogram count=%d sum=%v, want 2 and 20.5", h.Count, h.Sum)
	}
	// Bounds [1, 10] → buckets [<=1, <=10, +Inf]: one observation at 0.5,
	// one at 20.
	if want := []int64{1, 0, 1}; !reflect.DeepEqual(h.Buckets, want) {
		t.Fatalf("buckets = %v, want %v", h.Buckets, want)
	}
}

func TestSnapshotMergeMismatchedBoundsKeepsTotalsExact(t *testing.T) {
	a := NewRegistry()
	a.Histogram("h", 1, 2).Observe(0.5)
	b := NewRegistry()
	b.Histogram("h", 5, 50).Observe(7)

	s := a.Snapshot()
	src := b.Snapshot()
	s.Merge(src)

	h := s.Histograms["h"]
	if h.Count != 2 || h.Sum != 7.5 {
		t.Fatalf("count=%d sum=%v, want totals exact despite bound mismatch", h.Count, h.Sum)
	}
	// The bucket spread cannot be merged across different bounds; the
	// destination's spread stays as-is (approximate distribution, exact
	// totals).
	if want := []int64{1, 0, 0}; !reflect.DeepEqual(h.Buckets, want) {
		t.Fatalf("buckets = %v, want destination spread untouched", h.Buckets)
	}
}

func TestSnapshotMergeDoesNotAliasSource(t *testing.T) {
	b := NewRegistry()
	b.Histogram("h", 1).Observe(0.5)
	src := b.Snapshot()

	var s Snapshot
	s.Merge(src)
	s.Histograms["h"].Buckets[0] = 99
	if src.Histograms["h"].Buckets[0] == 99 {
		t.Fatal("merge aliased the source snapshot's bucket slice")
	}
}
