package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers a shared registry from 8 goroutines while
// a reader takes snapshots, asserting counters only ever move forward and
// every snapshot marshals to valid JSON. Run under -race this doubles as
// the data-race proof for the whole metrics layer.
func TestRegistryConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Reader: snapshot continuously, checking monotonicity + JSON validity.
	readerDone := make(chan error, 1)
	go func() {
		var last int64
		for {
			s := r.Snapshot()
			b, err := json.Marshal(s)
			if err != nil {
				readerDone <- err
				return
			}
			if !json.Valid(b) {
				t.Error("snapshot produced invalid JSON")
			}
			if v := s.Counters["hits_total"]; v < last {
				t.Errorf("counter went backwards: %d -> %d", last, v)
			} else {
				last = v
			}
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r.Counter("hits_total").Inc()
				r.Counter("hits_total").Add(2)
				r.Counter("hits_total").Add(-5) // ignored: counters are monotonic
				r.Gauge("frontier_states").Set(int64(i))
				r.Gauge("bytes").Add(int64(w))
				r.Histogram("latency_seconds").Observe(float64(i) / 1000)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if err := <-readerDone; err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}

	s := r.Snapshot()
	if got, want := s.Counters["hits_total"], int64(workers*rounds*3); got != want {
		t.Errorf("hits_total = %d, want %d", got, want)
	}
	if got, want := s.Histograms["latency_seconds"].Count, int64(workers*rounds); got != want {
		t.Errorf("latency count = %d, want %d", got, want)
	}
	var sum int64
	for _, b := range s.Histograms["latency_seconds"].Buckets {
		sum += b
	}
	if sum != s.Histograms["latency_seconds"].Count {
		t.Errorf("bucket sum %d != count %d", sum, s.Histograms["latency_seconds"].Count)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z").Observe(1)
	s := r.Snapshot()
	if s.Schema != SnapshotSchema {
		t.Errorf("nil snapshot schema = %d, want %d", s.Schema, SnapshotSchema)
	}
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Add(7)
		r.Gauge("g_" + name).Set(1)
	}
	r.Histogram("phase_seconds.expand").Observe(0.002)
	a, err := r.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ:\n%s\n---\n%s", a, b)
	}
	if i := bytes.Index(a, []byte("alpha")); i < 0 || i > bytes.Index(a, []byte("zeta")) {
		t.Errorf("keys not sorted in snapshot:\n%s", a)
	}
}

func TestZeroTimings(t *testing.T) {
	r := NewRegistry()
	r.Histogram("phase_seconds.expand").Observe(1.5)
	r.Histogram("sizes", 1, 10, 100).Observe(5)
	s := r.Snapshot()
	s.ZeroTimings()
	ph := s.Histograms["phase_seconds.expand"]
	if ph.Sum != 0 {
		t.Errorf("seconds sum not zeroed: %v", ph.Sum)
	}
	for i, b := range ph.Buckets {
		if b != 0 {
			t.Errorf("seconds bucket %d not zeroed: %d", i, b)
		}
	}
	if ph.Count != 1 {
		t.Errorf("seconds count should be kept, got %d", ph.Count)
	}
	if s.Histograms["sizes"].Sum != 5 {
		t.Errorf("non-seconds histogram was zeroed: %+v", s.Histograms["sizes"])
	}
}

// TestRunLevelDeltas checks that Run.Level feeds cumulative stats to the
// registry as monotonic deltas.
func TestRunLevelDeltas(t *testing.T) {
	r := NewRegistry()
	run := Sink{Metrics: r}.Run("symbolic", "illinois")
	run.Level(LevelStats{Level: 0, Visits: 4, Pruned: 1, Frontier: 3, Essential: 1})
	run.Level(LevelStats{Level: 1, Visits: 9, Pruned: 3, Frontier: 2, Essential: 2})
	s := r.Snapshot()
	if got := s.Counters[MetricExpandLevels]; got != 2 {
		t.Errorf("expand_levels_total = %d, want 2", got)
	}
	if got := s.Counters[MetricVisits]; got != 9 {
		t.Errorf("visits_total = %d, want 9", got)
	}
	if got := s.Counters[MetricContainedDiscarded]; got != 3 {
		t.Errorf("contained_discarded_total = %d, want 3", got)
	}
	if got := s.Gauges[MetricFrontier]; got != 2 {
		t.Errorf("frontier_states = %d, want 2", got)
	}
}

func TestRunPhaseSpan(t *testing.T) {
	r := NewRegistry()
	var events []PhaseEvent
	run := Sink{
		Observer: Funcs{Phase: func(ev PhaseEvent) { events = append(events, ev) }},
		Metrics:  r,
	}.Run("core", "illinois")
	sp := run.Phase(PhaseExpand)
	time.Sleep(time.Millisecond)
	sp.End()
	if len(events) != 2 || events[0].End || !events[1].End {
		t.Fatalf("expected open+close phase events, got %+v", events)
	}
	if events[1].Elapsed <= 0 {
		t.Errorf("elapsed not positive: %v", events[1].Elapsed)
	}
	h := r.Snapshot().Histograms[MetricPhasePrefix+PhaseExpand]
	if h.Count != 1 || h.Sum <= 0 {
		t.Errorf("phase histogram not recorded: %+v", h)
	}
}

// TestNilRunAllocFree pins the acceptance criterion that the no-observer
// path is allocation-free: every hook on a nil *Run must cost zero
// allocations.
func TestNilRunAllocFree(t *testing.T) {
	var run *Run = Sink{}.Run("enum-strict", "illinois")
	if run != nil {
		t.Fatal("disabled sink must yield a nil run")
	}
	st := LevelStats{Level: 1, Visits: 10}
	allocs := testing.AllocsPerRun(100, func() {
		run.Level(st)
		run.Event("violations_total", 1)
		sp := run.Phase(PhaseExpand)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-run hooks allocated %v times per call, want 0", allocs)
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	var a, b int
	oa := Funcs{Event: func(string, int64) { a++ }}
	ob := Funcs{Event: func(string, int64) { b++ }}
	if got := Multi(nil, oa); got == nil {
		t.Error("Multi dropped a live observer")
	}
	Multi(oa, ob).OnEvent("x", 1)
	if a != 1 || b != 1 {
		t.Errorf("fan-out failed: a=%d b=%d", a, b)
	}
}

func TestProgressFormat(t *testing.T) {
	var buf bytes.Buffer
	p := Progress(&buf)
	p.OnLevel(LevelStats{Engine: "symbolic", Protocol: "illinois", Level: 3,
		Frontier: 4, Essential: 2, Pruned: 5, Visits: 11, Superseded: 1})
	p.OnPhase(PhaseEvent{Engine: "core", Protocol: "illinois", Phase: PhaseCrossCheck}) // open edge: silent
	p.OnPhase(PhaseEvent{Engine: "core", Protocol: "illinois", Phase: PhaseCrossCheck, End: true, Elapsed: time.Millisecond})
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d:\n%s", len(lines), out)
	}
	want := "progress: symbolic illinois level=3 frontier=4 essential=2 pruned=5 visits=11 superseded=1"
	if lines[0] != want {
		t.Errorf("level line:\n got %q\nwant %q", lines[0], want)
	}
	if !strings.Contains(lines[1], "phase=crosscheck") {
		t.Errorf("phase line missing phase name: %q", lines[1])
	}
}
