package obs

import "time"

// Canonical metric names recorded by Run. Binaries and tests reference
// these; see docs/observability.md for the full catalog.
const (
	// MetricExpandLevels counts completed expansion levels across engines.
	MetricExpandLevels = "expand_levels_total"
	// MetricVisits counts generated successor states.
	MetricVisits = "visits_total"
	// MetricContainedDiscarded counts states discarded without expansion
	// (⊆_F containment for the symbolic engine, identity duplicates for
	// the enumerators).
	MetricContainedDiscarded = "contained_discarded_total"
	// MetricSuperseded counts retained states evicted by a containing
	// successor (symbolic engine).
	MetricSuperseded = "superseded_total"
	// MetricViolations counts protocol-invariant violations found.
	MetricViolations = "violations_total"
	// MetricFrontier / MetricEssential / MetricEstBytes are gauges tracking
	// the live search shape.
	MetricFrontier  = "frontier_states"
	MetricEssential = "essential_states"
	MetricEstBytes  = "est_bytes"
	// MetricPhasePrefix prefixes per-phase timing histograms
	// ("phase_seconds.expand", "phase_seconds.crosscheck", ...).
	MetricPhasePrefix = "phase_seconds."
)

// Sink bundles the two observability outputs an engine can feed: a
// callback Observer and a metrics Registry. Either or both may be nil.
type Sink struct {
	Observer Observer
	Metrics  *Registry
}

// Enabled reports whether the sink has anywhere to deliver signals.
func (s Sink) Enabled() bool { return s.Observer != nil || s.Metrics != nil }

// Run opens a per-run handle for an engine verifying protocol. It returns
// nil when the sink is disabled; every method on a nil *Run is a no-op
// that performs no allocation, so engines call handle methods
// unconditionally and uninstrumented runs stay on the benchmarked fast
// path.
func (s Sink) Run(engine, protocol string) *Run {
	if !s.Enabled() {
		return nil
	}
	return &Run{sink: s, engine: engine, protocol: protocol}
}

// Run is one engine run's observability handle. Its methods are intended
// to be called from the run's coordinating goroutine (the worklist loop or
// the level barrier), not from parallel workers.
type Run struct {
	sink     Sink
	engine   string
	protocol string
	// prev remembers the last cumulative LevelStats so registry counters
	// advance by deltas and stay monotonic.
	prev LevelStats
}

// Level reports a completed expansion level. st carries cumulative counts;
// Level forwards them to the observer verbatim and advances the registry
// counters by the delta since the previous call.
func (r *Run) Level(st LevelStats) {
	if r == nil {
		return
	}
	st.Engine, st.Protocol = r.engine, r.protocol
	if o := r.sink.Observer; o != nil {
		o.OnLevel(st)
	}
	if m := r.sink.Metrics; m != nil {
		m.Counter(MetricExpandLevels).Inc()
		m.Counter(MetricVisits).Add(int64(st.Visits - r.prev.Visits))
		m.Counter(MetricContainedDiscarded).Add(int64(st.Pruned - r.prev.Pruned))
		m.Counter(MetricSuperseded).Add(int64(st.Superseded - r.prev.Superseded))
		m.Gauge(MetricFrontier).Set(int64(st.Frontier))
		m.Gauge(MetricEssential).Set(int64(st.Essential))
		m.Gauge(MetricEstBytes).Set(st.EstBytes)
	}
	r.prev = st
}

// Event reports a discrete occurrence: the observer sees OnEvent and the
// registry counter of the same name advances by delta (if positive).
func (r *Run) Event(name string, delta int64) {
	if r == nil {
		return
	}
	if o := r.sink.Observer; o != nil {
		o.OnEvent(name, delta)
	}
	if m := r.sink.Metrics; m != nil {
		m.Counter(name).Add(delta)
	}
}

// Phase opens a timing span for one of the Phase* constants. The returned
// span is nil (and End a no-op) on a nil run.
func (r *Run) Phase(phase string) *Span {
	if r == nil {
		return nil
	}
	if o := r.sink.Observer; o != nil {
		o.OnPhase(PhaseEvent{Engine: r.engine, Protocol: r.protocol, Phase: phase})
	}
	return &Span{run: r, phase: phase, start: time.Now()}
}

// Span is an open phase timing; see Run.Phase.
type Span struct {
	run   *Run
	phase string
	start time.Time
}

// End closes the span: the observer sees the closing PhaseEvent and the
// registry's "phase_seconds.<phase>" histogram records the elapsed time
// (monotonic clock). End is safe on a nil span and idempotent only in the
// sense that callers are expected to End once (typically via defer).
func (s *Span) End() {
	if s == nil {
		return
	}
	elapsed := time.Since(s.start)
	r := s.run
	if o := r.sink.Observer; o != nil {
		o.OnPhase(PhaseEvent{Engine: r.engine, Protocol: r.protocol, Phase: s.phase, End: true, Elapsed: elapsed})
	}
	if m := r.sink.Metrics; m != nil {
		m.Histogram(MetricPhasePrefix + s.phase).Observe(elapsed.Seconds())
	}
}
