// Package enum implements the explicit-state baselines that the paper's
// symbolic method is measured against (Section 3.1):
//
//   - Exhaustive search (Figure 2 of the paper): breadth-first exploration
//     of the global state space for a FIXED number of caches n, where a
//     global state is the tuple (q1, ..., qn). Strict equivalence prunes
//     only identical tuples, so the space grows like mⁿ and the visit count
//     like n·k·mⁿ.
//   - Counting equivalence (Definition 5): tuples that are permutations of
//     one another are identified by their per-state cache counts, shrinking
//     the space to multisets (at most C(n+m-1, m-1) states).
//
// Both enumerators run from the same fsm.Protocol definitions as the
// symbolic engine and evaluate the same invariants (including Definition 3
// data consistency, via the concrete versioned-data semantics of
// internal/fsm), so a protocol bug is observable in all three analyzers.
// The enumerators also export the reachable state sets so the
// cross-validation harness can confirm Theorem 1: every reachable concrete
// state is covered by a symbolic essential state.
package enum
