package enum

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/protocols"
)

// captureCheckpoint interrupts a real run at its first periodic snapshot
// and returns the serialized checkpoint, so the fuzz corpus starts from a
// genuine well-formed file.
func captureCheckpoint(t testing.TB, mode string) []byte {
	t.Helper()
	p, err := protocols.ByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	var captured []byte
	opts := Options{
		CheckpointEvery: 1,
		OnCheckpoint: func(cp *Checkpoint) error {
			captured, err = cp.Encode()
			if err != nil {
				return err
			}
			return context.Canceled // stop the run; the snapshot is what we came for
		},
	}
	if mode == ModeCounting {
		_, _ = CountingContext(context.Background(), p, 3, opts)
	} else {
		_, _ = ExhaustiveContext(context.Background(), p, 3, opts)
	}
	if captured == nil {
		t.Fatal("run never produced a periodic checkpoint")
	}
	return captured
}

// FuzzDecodeCheckpoint hardens the resume path against hostile checkpoint
// files: whatever the bytes, DecodeCheckpoint and a subsequent resume
// must return errors — never panic. Malformed JSON, wrong versions and
// bad key grammar all came up as seeds.
func FuzzDecodeCheckpoint(f *testing.F) {
	var seeds [][]byte
	seeds = append(seeds, captureCheckpoint(f, ModeStrict))
	seeds = append(seeds, captureCheckpoint(f, ModeCounting))
	seeds = append(seeds,
		[]byte(`{`),               // truncated JSON
		[]byte(`not json at all`), // not JSON
		[]byte(`{"version":1}`),   // stale version
		[]byte(`{"version":2}`),   // stale version (pre rank-ordered lists)
		[]byte(`{"version":99}`),  // future version
		[]byte(`{"version":3,"protocol":"Illinois","n":3,"mode":"strict","visited":["garbage key grammar"],"parents":[{"parent":-1}],"frontier":[{"states":["Invalid"],"versions":[0],"mem":0,"latest":0}]}`),
		[]byte(`{"version":3,"protocol":"Illinois","n":-1,"mode":"strict"}`),
		[]byte(`{"version":3,"protocol":"Illinois","n":3,"mode":"no-such-mode"}`),
		[]byte(`{"version":3,"protocol":"Illinois","n":3,"mode":"strict","frontier":[{"states":["Invalid","Shared"],"versions":[0],"mem":0,"latest":0}]}`),
		// Rank-structure corruption: parents/visited misalignment, a
		// repeated visited key, a forward parent rank, an unknown op and
		// an out-of-range cache index must all be rejected on resume.
		[]byte(`{"version":3,"protocol":"Illinois","n":3,"mode":"strict","visited":["I,I,I|m:0"],"parents":[]}`),
		[]byte(`{"version":3,"protocol":"Illinois","n":3,"mode":"strict","visited":["I,I,I|m:0","I,I,I|m:0"],"parents":[{"parent":-1},{"parent":0,"cache":0,"op":"read"}]}`),
		[]byte(`{"version":3,"protocol":"Illinois","n":3,"mode":"strict","visited":["I,I,I|m:0"],"parents":[{"parent":5,"cache":0,"op":"read"}]}`),
		[]byte(`{"version":3,"protocol":"Illinois","n":3,"mode":"strict","visited":["I,I,I|m:0"],"parents":[{"parent":0,"cache":0,"op":"no-such-op"}]}`),
		[]byte(`{"version":3,"protocol":"Illinois","n":3,"mode":"strict","visited":["I,I,I|m:0"],"parents":[{"parent":0,"cache":9,"op":"read"}]}`),
	)
	// A structurally valid checkpoint with one field scrambled, to steer
	// the fuzzer toward deep decode paths.
	if base := seeds[0]; json.Valid(base) {
		mangled := append([]byte(nil), base...)
		for i := range mangled {
			if mangled[i] == ':' {
				mangled[i] = ';'
				break
			}
		}
		seeds = append(seeds, mangled)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	p, err := protocols.ByName("illinois")
	if err != nil {
		f.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return // rejecting is the job; panicking is the bug
		}
		if cp.Version != CheckpointVersion {
			t.Fatalf("decoder accepted version %d", cp.Version)
		}
		// A decoded checkpoint must either resume (the canceled context
		// stops the run at the first boundary) or fail with an error —
		// never panic on smuggled-in inconsistencies.
		_, _ = ResumeContext(canceled, p, cp, Options{})
	})
}
