package enum

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/randproto"
	"repro/internal/runctl"
)

// resultSignature flattens the run outcomes that must be bit-identical
// across engines and store implementations: the state counts and every
// violation with its rendered witness path.
func resultSignature(r *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "unique=%d visits=%d tuples=%d specErrs=%d\n",
		r.Unique, r.Visits, r.TupleStates, len(r.SpecErrors))
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "viol %s:", v.Config.Key())
		for _, d := range v.Violations {
			fmt.Fprintf(&sb, " [%d %s]", d.Kind, d.Detail)
		}
		for _, ps := range v.Path {
			fmt.Fprintf(&sb, " (%d %s -> %s)", ps.Cache, ps.Op, ps.To)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestCompactStoreMatchesLegacyStore is the correctness property of the
// compact visited set: over random well-formed protocols, an enumeration
// backed by the prefix-sharded stateset must admit exactly the same state
// partition — same unique states, visit counts, tuple census, violations
// and witness paths — as the legacy map-backed store it replaced. The
// legacy path is forced via testForceLegacyStore, which newStores
// consults, so both runs execute the identical engine code around the
// store boundary.
func TestCompactStoreMatchesLegacyStore(t *testing.T) {
	defer func() { testForceLegacyStore = false }()
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randproto.New(rng, 1+rng.Intn(4))
		n := 2 + rng.Intn(3)
		for _, mode := range []string{ModeStrict, ModeCounting} {
			run := func(forceLegacy bool) *Result {
				testForceLegacyStore = forceLegacy
				defer func() { testForceLegacyStore = false }()
				var r *Result
				var err error
				if mode == ModeCounting {
					r, err = Counting(p, n, Options{Strict: true})
				} else {
					r, err = Exhaustive(p, n, Options{Strict: true})
				}
				if err != nil {
					t.Fatalf("seed %d mode %s legacy=%t: %v", seed, mode, forceLegacy, err)
				}
				return r
			}
			compact := run(false)
			legacy := run(true)
			if got, want := resultSignature(compact), resultSignature(legacy); got != want {
				t.Fatalf("seed %d mode %s: compact store diverges from legacy map store\ncompact: %s\nlegacy:  %s",
					seed, mode, got, want)
			}
		}
	}
}

// spillFileCount counts the spill files currently in dir.
func spillFileCount(t *testing.T, dir, prefix string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), prefix) {
			n++
		}
	}
	return n
}

// TestSpillEnumerationBitIdentical runs an enumeration whose resident
// footprint cannot fit the memory budget, with a spill directory
// configured: instead of stopping with ErrMemBudget the run must spill
// the visited and tuple sets out of core, complete the exploration, and
// report results bit-identical to an unconstrained run (the delayed
// duplicate detection drops exactly the successors an in-memory run
// would have deduplicated).
func TestSpillEnumerationBitIdentical(t *testing.T) {
	p, err := protocols.Synthetic(6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5 // 16812 strict states; peak in-memory footprint ~800 KiB

	ref, err := Exhaustive(p, n, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Truncated {
		t.Fatal("reference run truncated")
	}

	// Sanity: the budget alone (no spill dir) must stop the run.
	budget := runctl.Budget{MaxBytes: 768 << 10}
	capped, err := ExhaustiveParallel(p, n, Options{
		Strict:    true,
		RunConfig: runctl.RunConfig{Budget: budget},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Truncated || !errors.Is(capped.StopReason, runctl.ErrMemBudget) {
		t.Fatalf("budget-only run must stop on ErrMemBudget, got truncated=%t reason=%v",
			capped.Truncated, capped.StopReason)
	}

	dir := t.TempDir()
	spilled, err := ExhaustiveParallel(p, n, Options{
		Strict:    true,
		RunConfig: runctl.RunConfig{Budget: budget, SpillDir: dir},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if spilled.Truncated {
		t.Fatalf("spilling run truncated: %v", spilled.StopReason)
	}
	if got := spillFileCount(t, dir, "spill-visited-"); got == 0 {
		t.Fatal("run completed without writing any spill files; the budget no longer forces out-of-core operation")
	}
	if got, want := resultSignature(spilled), resultSignature(ref); got != want {
		t.Fatalf("out-of-core run diverges from in-memory run\nspilled: %s\nref:     %s", got, want)
	}
}

// TestSpillCheckpointResumeAtBoundary kills an out-of-core run at a
// checkpoint boundary after it has spilled, then resumes from the
// captured snapshot. The snapshot must fold the spilled entries back in
// (it is self-contained — the resume uses a fresh spill directory and
// never sees the first run's files) and the resumed run must land on
// exactly the unconstrained run's counts.
func TestSpillCheckpointResumeAtBoundary(t *testing.T) {
	p, err := protocols.Synthetic(6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5

	ref, err := Exhaustive(p, n, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}

	budget := runctl.Budget{MaxBytes: 768 << 10}
	dir1 := t.TempDir()
	killed := fmt.Errorf("killed at spill boundary")
	var captured []byte
	_, err = ExhaustiveParallel(p, n, Options{
		Strict: true,
		RunConfig: runctl.RunConfig{
			Budget:          budget,
			SpillDir:        dir1,
			CheckpointEvery: 1, // every level
		},
		OnCheckpoint: func(cp *Checkpoint) error {
			if spillFileCount(t, dir1, "spill-visited-") == 0 {
				return nil // keep running until the first spill has happened
			}
			data, err := cp.Encode()
			if err != nil {
				return err
			}
			captured = data
			return killed
		},
	}, 4)
	if err != killed {
		t.Fatalf("run should have died with the injected kill, got: %v", err)
	}
	if captured == nil {
		t.Fatal("no checkpoint captured after the first spill")
	}

	cp, err := DecodeCheckpoint(captured)
	if err != nil {
		t.Fatalf("decoding the spill-boundary checkpoint: %v", err)
	}
	if got, want := len(cp.Visited), len(cp.Parents); got != want {
		t.Fatalf("checkpoint has %d visited but %d parents", got, want)
	}

	// Resume out-of-core in a fresh directory; the original spill files
	// are not consulted.
	dir2 := t.TempDir()
	resumed, err := ResumeParallelContext(context.Background(), p, cp, Options{
		RunConfig: runctl.RunConfig{Budget: budget, SpillDir: dir2},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Truncated {
		t.Fatalf("resumed run truncated: %v", resumed.StopReason)
	}
	if got, want := resultSignature(resumed), resultSignature(ref); got != want {
		t.Fatalf("killed-and-resumed run diverges from uninterrupted run\nresumed: %s\nref:     %s", got, want)
	}
}

// TestSpillRequiresWritableDir pins the fail-fast behavior: a spill
// directory that cannot be created fails the run before exploration
// starts, not at the first spill attempt deep into a long run.
func TestSpillRequiresWritableDir(t *testing.T) {
	p := protocols.Illinois()
	blocked := t.TempDir() + "/file"
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ExhaustiveParallel(p, 3, Options{
		RunConfig: runctl.RunConfig{
			Budget:   runctl.Budget{MaxBytes: 1 << 20},
			SpillDir: blocked + "/sub",
		},
	}, 2)
	if err == nil {
		t.Fatal("unusable spill directory must fail the run up front")
	}
}
