package enum

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/ccpsl"
	"repro/internal/fsm"
	"repro/internal/mutate"
)

// parityCorpus returns every shipped spec plus every mutant of it.
func parityCorpus(t *testing.T) []*fsm.Protocol {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.ccpsl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	sort.Strings(paths)
	var out []*fsm.Protocol
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ccpsl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out = append(out, p)
		for _, m := range mutate.Catalog(p) {
			out = append(out, m.Protocol)
		}
	}
	return out
}

// renderResult flattens everything observable about a run — counts,
// violations with their full witness paths, spec errors and the reachable
// set in discovery order — into one string, so two runs can be compared
// byte for byte.
func renderResult(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "unique=%d visits=%d tuples=%d truncated=%v\n",
		res.Unique, res.Visits, res.TupleStates, res.Truncated)
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "violation %s:", v.Config)
		for _, viol := range v.Violations {
			fmt.Fprintf(&b, " [%s]", viol.Error())
		}
		for _, s := range v.Path {
			fmt.Fprintf(&b, " %s%d->%s", s.Op, s.Cache, s.To)
		}
		b.WriteByte('\n')
	}
	for _, err := range res.SpecErrors {
		fmt.Fprintf(&b, "specerr %v\n", err)
	}
	for _, c := range res.Reachable {
		fmt.Fprintf(&b, "reach %s\n", c)
	}
	return b.String()
}

// TestCompiledExpandMatchesInterpreted runs full enumerations — strict and
// counting, at n=3, violations and reachable sets retained — over every
// shipped spec and every mutant, once through the compiled jump tables and
// once through the interpreted fsm.Step reference path, and requires the
// rendered results to be byte-identical. This is the engine-level half of
// the compile-parity pin; the per-step half lives in internal/compile.
func TestCompiledExpandMatchesInterpreted(t *testing.T) {
	if testing.Short() {
		t.Skip("full specs x mutants sweep")
	}
	const n = 3
	opts := Options{KeepReachable: true}
	for _, p := range parityCorpus(t) {
		for _, mode := range []string{ModeStrict, ModeCounting} {
			runOne := func(interpreted bool) string {
				useInterpretedExpand = interpreted
				defer func() { useInterpretedExpand = false }()
				var res *Result
				var err error
				if mode == ModeCounting {
					res, err = CountingContext(context.Background(), p, n, opts)
				} else {
					res, err = ExhaustiveContext(context.Background(), p, n, opts)
				}
				if err != nil {
					t.Fatalf("%s %s (interpreted=%v): %v", p.Name, mode, interpreted, err)
				}
				return renderResult(res)
			}
			compiled, interpreted := runOne(false), runOne(true)
			if compiled != interpreted {
				t.Errorf("%s %s: compiled expansion diverges from interpreted:\ncompiled:\n%s\ninterpreted:\n%s",
					p.Name, mode, compiled, interpreted)
			}
		}
	}
}
