package enum

import (
	"testing"

	"repro/internal/protocols"
)

// TestParallelMatchesSequential: the level-synchronous parallel BFS must be
// observationally identical to the sequential algorithm — same distinct
// states, same visit count, same tuple census — for any worker count.
func TestParallelMatchesSequential(t *testing.T) {
	for _, name := range []string{"illinois", "dragon", "berkeley"} {
		p, err := protocols.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 4, 6} {
			seq, err := Exhaustive(p, n, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				par, err := ExhaustiveParallel(p, n, Options{}, workers)
				if err != nil {
					t.Fatal(err)
				}
				if par.Unique != seq.Unique || par.Visits != seq.Visits ||
					par.TupleStates != seq.TupleStates {
					t.Errorf("%s n=%d workers=%d: parallel (%d/%d/%d) != sequential (%d/%d/%d)",
						name, n, workers,
						par.Unique, par.Visits, par.TupleStates,
						seq.Unique, seq.Visits, seq.TupleStates)
				}
			}
		}
	}
}

func TestParallelCountingMatchesSequential(t *testing.T) {
	p := protocols.Illinois()
	seq, err := Counting(p, 8, Options{KeepReachable: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CountingParallel(p, 8, Options{KeepReachable: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Unique != seq.Unique || par.Visits != seq.Visits {
		t.Fatalf("parallel counting diverged: %d/%d vs %d/%d",
			par.Unique, par.Visits, seq.Unique, seq.Visits)
	}
	if len(par.Reachable) != len(seq.Reachable) {
		t.Fatalf("reachable sets differ in size")
	}
	for i := range par.Reachable {
		if countingKey(par.Reachable[i]) != countingKey(seq.Reachable[i]) {
			t.Fatalf("reachable order diverged at %d", i)
		}
	}
}

func TestParallelFindsViolations(t *testing.T) {
	p := brokenIllinois()
	seq, err := Exhaustive(p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExhaustiveParallel(p, 3, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Violations) != len(seq.Violations) {
		t.Fatalf("parallel found %d violations, sequential %d",
			len(par.Violations), len(seq.Violations))
	}
	if len(par.Violations) == 0 {
		t.Fatal("broken protocol must be refuted")
	}
	// Witness paths must still replay.
	v := par.Violations[0]
	if len(v.Path) == 0 {
		t.Fatal("missing witness")
	}
}

func TestParallelStopOnViolation(t *testing.T) {
	p := brokenIllinois()
	par, err := ExhaustiveParallel(p, 3, Options{StopOnViolation: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Violations) != 1 {
		t.Fatalf("want exactly one violation, got %d", len(par.Violations))
	}
}

func TestParallelTruncation(t *testing.T) {
	par, err := ExhaustiveParallel(protocols.Illinois(), 6, Options{MaxStates: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Truncated {
		t.Fatal("cap must truncate")
	}
}

func TestParallelArgumentChecks(t *testing.T) {
	if _, err := ExhaustiveParallel(protocols.Illinois(), 0, Options{}, 4); err == nil {
		t.Error("n=0 must be rejected")
	}
	// workers <= 0 selects GOMAXPROCS and must still work.
	if _, err := ExhaustiveParallel(protocols.Illinois(), 2, Options{}, 0); err != nil {
		t.Errorf("workers=0 must default, got %v", err)
	}
	if _, err := ExhaustiveParallel(protocols.Illinois(), 2, Options{}, -1); err != nil {
		t.Errorf("workers=-1 must default, got %v", err)
	}
}
