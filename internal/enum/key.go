package enum

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/compile"
	"repro/internal/fsm"
)

// This file is the state-identity layer of the explicit-state engines.
//
// The mⁿ spaces of Section 3.1 make the per-successor cost of computing a
// visited-set key the dominant term of an enumeration run. The original
// implementation keyed every successor by a freshly built string
// (fmt.Sprintf per cache, plus a string sort for counting equivalence);
// this file replaces it with an allocation-free packed encoding: after
// Canonicalize, every cache is exactly one byte (state index in the high
// six bits, the 3-value abstract data domain of Definition 4 in the low
// two), and a whole configuration is a fixed-width comparable value usable
// directly as a map key. Counting equivalence (Definition 5) becomes an
// in-place byte sort instead of a string sort.
//
// Packing applies when the protocol has at most maxPackedStates states and
// the run has at most maxPackedCaches caches; beyond that the codec falls
// back transparently to the legacy canonical strings, so results never
// depend on which representation a run used.

const (
	// maxPackedCaches is the largest cache count the packed encoding can
	// hold: one byte per cache, with the final byte reserved for the memory
	// data class and the packed marker.
	maxPackedCaches = 31
	// maxPackedStates is the largest per-cache state count encodable in the
	// six high bits of a packed byte.
	maxPackedStates = 63
	// packedMark is set in the reserved byte of every packed key so that no
	// valid packed key equals the zero Key (the "no parent" sentinel).
	packedMark = 0x80
	// tupleMark distinguishes state-only tuple keys from full keys.
	tupleMark = 0x40
)

// Abstract data classes of the packed encoding. They mirror the canonical
// version numbers: NoData, canonFresh and canonObsolete.
const (
	classNone     = 0
	classFresh    = 1
	classObsolete = 2
)

// Key is the comparable identity of a canonical configuration under one
// equivalence mode. In packed mode the identity lives entirely in the
// fixed-width byte array and building a Key allocates nothing; in fallback
// mode (very large protocols or cache counts) the identity is the legacy
// canonical string. The zero Key is reserved as the "no parent" sentinel of
// the provenance map.
type Key struct {
	packed [32]byte
	str    string
}

// isZero reports whether k is the zero sentinel.
func (k Key) isZero() bool { return k == Key{} }

// hash folds the key into a shard selector (FNV-1a). It only needs to
// distribute well; it is not part of the key's identity.
func (k Key) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	if k.str != "" {
		for i := 0; i < len(k.str); i++ {
			h ^= uint64(k.str[i])
			h *= prime64
		}
		return h
	}
	for _, b := range k.packed {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// keyCodec computes, renders and parses the keys of one run. A codec is
// specific to a (protocol, cache count, mode) triple; both engines and the
// checkpoint layer of a run share one instance.
type keyCodec struct {
	p      *fsm.Protocol
	n      int
	mode   string
	packed bool
	// cp is the compiled protocol expandOne steps through: the run's one
	// lowering, shared by the sequential loop and every parallel worker.
	cp     *compile.Protocol
	// index maps a state to its packed byte prefix (index << 2).
	index map[fsm.State]byte
}

func newKeyCodec(p *fsm.Protocol, n int, mode string) *keyCodec {
	kc := &keyCodec{p: p, n: n, mode: mode}
	// Compilation fails only for protocols that fail Validate, which every
	// caller has already checked (newBFS, checkpoint restore, tests on
	// library protocols); a failure here is therefore a program bug.
	cp, err := compile.Compile(p)
	if err != nil {
		panic(fmt.Sprintf("enum: compiling validated protocol %s: %v", p.Name, err))
	}
	kc.cp = cp
	kc.packed = n >= 1 && n <= maxPackedCaches && p.NumStates() <= maxPackedStates
	if kc.packed {
		kc.index = make(map[fsm.State]byte, p.NumStates())
		for i, s := range p.States {
			kc.index[s] = byte(i) << 2
		}
	}
	return kc
}

// class maps a canonical version number to its packed data class. The
// engines only key canonicalized configurations, for which v is one of
// {NoData, Latest, canonObsolete}; any other stale version classifies as
// obsolete exactly like Canonicalize would.
func class(v, latest int64) byte {
	switch {
	case v == fsm.NoData:
		return classNone
	case v == latest:
		return classFresh
	default:
		return classObsolete
	}
}

// classVersion is the inverse of class over the canonical domain.
func classVersion(c byte) int64 {
	switch c {
	case classNone:
		return fsm.NoData
	case classFresh:
		return canonFresh
	default:
		return canonObsolete
	}
}

// key returns the equivalence-class key of a canonicalized configuration:
// strict tuple identity (Section 3.1) for ModeStrict, multiset identity
// (Definition 5) for ModeCounting.
func (kc *keyCodec) key(c *fsm.Config) Key {
	if !kc.packed {
		if kc.mode == ModeCounting {
			return Key{str: countingKey(c)}
		}
		return Key{str: strictKey(c)}
	}
	var k Key
	for i, s := range c.States {
		k.packed[i] = kc.index[s] | class(c.Versions[i], c.Latest)
	}
	if kc.mode == ModeCounting {
		sortBytes(k.packed[:len(c.States)])
	}
	k.packed[maxPackedCaches] = packedMark | class(c.MemVersion, c.Latest)
	return k
}

// tupleKey returns the state-only tuple identity (data ignored), the strict
// tuple census key of Result.TupleStates. It is order-sensitive in both
// modes, exactly like the legacy Config.StateKey.
func (kc *keyCodec) tupleKey(c *fsm.Config) Key {
	if !kc.packed {
		return Key{str: c.StateKey()}
	}
	var k Key
	for i, s := range c.States {
		k.packed[i] = kc.index[s]
	}
	k.packed[maxPackedCaches] = packedMark | tupleMark
	return k
}

// sortBytes sorts a small byte slice in place (insertion sort: n ≤ 31).
func sortBytes(b []byte) {
	for i := 1; i < len(b); i++ {
		v := b[i]
		j := i - 1
		for j >= 0 && b[j] > v {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = v
	}
}

// render returns the human-readable canonical string of a key, in exactly
// the format the legacy string keys used (and that checkpoints store):
// "State:v,State:v|m:v|l:0" for strict mode and the sorted
// "State:v,...|m:v" form for counting mode, with v one of the canonical
// version numbers {-1 nodata, 0 fresh, -2 obsolete}.
func (kc *keyCodec) render(k Key) string {
	if k.str != "" {
		return k.str
	}
	if k.isZero() {
		return ""
	}
	pairs := make([]string, kc.n)
	for i := 0; i < kc.n; i++ {
		b := k.packed[i]
		pairs[i] = string(kc.p.States[b>>2]) + ":" + strconv.FormatInt(classVersion(b&3), 10)
	}
	mem := strconv.FormatInt(classVersion(k.packed[maxPackedCaches]&3), 10)
	if kc.mode == ModeCounting {
		sort.Strings(pairs)
		return strings.Join(pairs, ",") + "|m:" + mem
	}
	return strings.Join(pairs, ",") + "|m:" + mem + "|l:0"
}

// renderTuple returns the state-only tuple string ("S1,S2,..."), matching
// the legacy Config.StateKey format.
func (kc *keyCodec) renderTuple(k Key) string {
	if k.str != "" {
		return k.str
	}
	parts := make([]string, kc.n)
	for i := 0; i < kc.n; i++ {
		parts[i] = string(kc.p.States[k.packed[i]>>2])
	}
	return strings.Join(parts, ",")
}

// parse is the inverse of render: it rebuilds a Key from its canonical
// string, validating state names and version numbers against the codec's
// protocol. Checkpoints store keys as rendered strings; parse restores
// them on resume.
func (kc *keyCodec) parse(s string) (Key, error) {
	if s == "" {
		return Key{}, fmt.Errorf("enum: empty state key")
	}
	if !kc.packed {
		return Key{str: s}, nil
	}
	fields := strings.Split(s, "|")
	pairs := strings.Split(fields[0], ",")
	if len(pairs) != kc.n {
		return Key{}, fmt.Errorf("enum: state key %q has %d caches, want %d", s, len(pairs), kc.n)
	}
	var k Key
	for i, pair := range pairs {
		name, ver, err := splitPair(pair)
		if err != nil {
			return Key{}, fmt.Errorf("enum: state key %q: %w", s, err)
		}
		idx, ok := kc.index[fsm.State(name)]
		if !ok {
			return Key{}, fmt.Errorf("enum: state key %q references unknown state %q", s, name)
		}
		k.packed[i] = idx | versionClass(ver)
	}
	mem := int64(canonFresh)
	for _, f := range fields[1:] {
		if rest, ok := strings.CutPrefix(f, "m:"); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return Key{}, fmt.Errorf("enum: state key %q: bad memory version %q", s, rest)
			}
			mem = v
		}
	}
	if kc.mode == ModeCounting {
		sortBytes(k.packed[:kc.n])
	}
	k.packed[maxPackedCaches] = packedMark | versionClass(mem)
	return k, nil
}

// parseTuple restores a state-only tuple key from its rendered string.
func (kc *keyCodec) parseTuple(s string) (Key, error) {
	if !kc.packed {
		return Key{str: s}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != kc.n {
		return Key{}, fmt.Errorf("enum: tuple key %q has %d caches, want %d", s, len(parts), kc.n)
	}
	var k Key
	for i, name := range parts {
		idx, ok := kc.index[fsm.State(name)]
		if !ok {
			return Key{}, fmt.Errorf("enum: tuple key %q references unknown state %q", s, name)
		}
		k.packed[i] = idx
	}
	k.packed[maxPackedCaches] = packedMark | tupleMark
	return k, nil
}

func splitPair(pair string) (string, int64, error) {
	i := strings.LastIndexByte(pair, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("malformed pair %q", pair)
	}
	v, err := strconv.ParseInt(pair[i+1:], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("malformed version in pair %q", pair)
	}
	return pair[:i], v, nil
}

func versionClass(v int64) byte {
	return class(v, canonFresh)
}

// cfgPool recycles fsm.Config allocations across expansion steps: a
// successor that deduplicates against the visited set, and a frontier state
// that has been fully expanded, return their backing slices to the pool for
// the next Step to reuse. sync.Pool empties itself under GC pressure, so
// the pool never pins memory.
var cfgPool = sync.Pool{New: func() any { return new(fsm.Config) }}

// cloneConfig returns a pooled deep copy of src.
func cloneConfig(src *fsm.Config) *fsm.Config {
	c := cfgPool.Get().(*fsm.Config)
	c.CopyFrom(src)
	return c
}

// releaseConfig returns a configuration that no longer escapes to the pool.
func releaseConfig(c *fsm.Config) {
	if c != nil {
		cfgPool.Put(c)
	}
}
