package enum

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/ckptio"
	"repro/internal/fsm"
	"repro/internal/stateset"
)

// Out-of-core enumeration. When RunConfig.SpillDir is set together with
// a memory budget, the parallel engine watches the estimated resident
// footprint at every level boundary and, as it approaches the budget,
// spills the entire resident visited and tuple sets to CRC-checked
// files instead of stopping with ErrMemBudget. Spilled entries keep
// their admission ranks, and the reconcile step filters each level's
// pending successors against the spill files (delayed duplicate
// detection, one file resident at a time), so the run's admissions —
// and therefore its Result — stay bit-identical to an in-memory run.
//
// Only the parallel engine spills: it already batches dedup at level
// boundaries, which is what makes one sequential pass per spill file
// affordable. Sequential runs ignore SpillDir. Spilling requires the
// packed key codec (the compact store); runs the codec cannot pack fall
// back to in-memory maps and the plain memory budget.

// spillState tracks one run's spill files.
type spillState struct {
	dir string
	// threshold is the estimated-bytes level at which the run spills:
	// 3/4 of Budget.MaxBytes, leaving headroom for the level in flight.
	threshold int64
	// visitedFiles and tupleFiles list the spill files written so far.
	// They advance independently (a spill event with no new tuples
	// writes no tuple file).
	visitedFiles []string
	tupleFiles   []string
	seq          int
}

// initSpill arms out-of-core mode for a parallel run when configured
// and supported; it verifies the directory is writable up front so
// misconfiguration fails the run at level 0, not mid-exploration.
func (b *bfs) initSpill(frontier []*fsm.Config) error {
	if b.rc.SpillDir == "" || b.rc.Budget.MaxBytes <= 0 {
		return nil
	}
	if _, ok := b.visited.(*compactStore); !ok {
		return nil
	}
	if err := os.MkdirAll(b.rc.SpillDir, 0o755); err != nil {
		return fmt.Errorf("enum: creating spill directory: %w", err)
	}
	if err := ckptio.PreflightDir(b.rc.SpillDir); err != nil {
		return fmt.Errorf("enum: spill directory: %w", err)
	}
	// A budgeted run that failed or was killed leaves its spill files
	// behind; they are garbage by construction (checkpoints are
	// self-contained, so a resume never reads an earlier run's files) and
	// would otherwise accumulate forever in a long-lived spill directory.
	// Sweep them before the first write, mirroring the disk cache tier's
	// startup retention pass. A spill directory belongs to one run at a
	// time — concurrent runs must use distinct directories, as the
	// sequential file numbering would collide regardless of this sweep.
	if swept, err := ckptio.SweepPrefix(b.rc.SpillDir, "spill-"); err != nil {
		return fmt.Errorf("enum: sweeping stale spill files: %w", err)
	} else if swept.Removed > 0 {
		b.orun.Event("spill_stale_swept_total", int64(swept.Removed))
		b.orun.Event("spill_stale_swept_bytes_total", swept.FreedBytes)
	}
	b.spill = &spillState{
		dir:       b.rc.SpillDir,
		threshold: b.rc.Budget.MaxBytes - b.rc.Budget.MaxBytes/4,
	}
	// Rank lookups for provenance cannot read spilled entries, so the
	// current frontier's ranks are pinned in memory across levels (the
	// only parents a level references are its own frontier).
	b.frontRanks = make(map[Key]uint32, len(frontier))
	for _, c := range frontier {
		k := b.kc.key(c)
		if r, ok := b.visited.rank(k); ok {
			b.frontRanks[k] = r
		}
	}
	return nil
}

// maybeSpill spills the resident sets when the footprint estimate has
// crossed the threshold. Called at level boundaries before the budget
// check, so a run that can spill never trips ErrMemBudget on visited
// bytes. A failed write rolls the entries back into memory and returns
// the error (the run then stops on the memory budget instead of
// continuing with silently wrong dedup).
func (b *bfs) maybeSpill() error {
	sp := b.spill
	if sp == nil || b.estBytes() <= sp.threshold || b.visited.resident() == 0 {
		return nil
	}
	freed := b.visited.bytes() + b.tuples.bytes()
	if vb := b.visited.spill(); vb != nil {
		path := filepath.Join(sp.dir, fmt.Sprintf("spill-visited-%04d.bin", sp.seq))
		if err := (&ckptio.Store{Path: path, Keep: 1}).Save(vb); err != nil {
			if rerr := b.visited.restore(vb); rerr != nil {
				return fmt.Errorf("enum: spill write failed (%v) and rollback failed: %w", err, rerr)
			}
			return fmt.Errorf("enum: writing spill file: %w", err)
		}
		sp.visitedFiles = append(sp.visitedFiles, path)
	}
	if tb := b.tuples.spill(); tb != nil {
		path := filepath.Join(sp.dir, fmt.Sprintf("spill-tuples-%04d.bin", sp.seq))
		if err := (&ckptio.Store{Path: path, Keep: 1}).Save(tb); err != nil {
			if rerr := b.tuples.restore(tb); rerr != nil {
				return fmt.Errorf("enum: tuple spill write failed (%v) and rollback failed: %w", err, rerr)
			}
			return fmt.Errorf("enum: writing tuple spill file: %w", err)
		}
		sp.tupleFiles = append(sp.tupleFiles, path)
	}
	sp.seq++
	freed -= b.visited.bytes() + b.tuples.bytes()
	b.orun.Event("spill_files_total", 1)
	b.orun.Event("spilled_bytes_total", freed)
	return nil
}

// loadSpillBlob reads one spill file back through the CRC envelope.
func loadSpillBlob(path string) (*stateset.BlobReader, error) {
	data, _, err := (&ckptio.Store{Path: path, Keep: 1}).Load()
	if err != nil {
		return nil, fmt.Errorf("enum: reading spill file %s: %w", filepath.Base(path), err)
	}
	br, err := stateset.NewBlobReader(data)
	if err != nil {
		return nil, fmt.Errorf("enum: spill file %s: %w", filepath.Base(path), err)
	}
	return br, nil
}

// spillFilter performs the delayed duplicate detection of out-of-core
// BFS: it drops pending admissions whose key lives in a spill file and
// marks entries whose state tuple is already in the spilled tuple
// census. One file is resident at a time, so the transient memory is
// bounded by the largest single spill. The surviving entries, still in
// rank order, are exactly the set an in-memory run would admit.
func (b *bfs) spillFilter(entries []*pendEntry) ([]*pendEntry, error) {
	sp := b.spill
	if sp == nil || (len(sp.visitedFiles) == 0 && len(sp.tupleFiles) == 0) || len(entries) == 0 {
		return entries, nil
	}
	var buf [maxPackedCaches + 1]byte
	for _, path := range sp.visitedFiles {
		br, err := loadSpillBlob(path)
		if err != nil {
			return nil, err
		}
		for i, e := range entries {
			if e == nil {
				continue
			}
			if br.Has(packKeyBytes(e.it.key, b.n, buf[:])) {
				releaseConfig(e.it.cfg)
				entries[i] = nil
			}
		}
	}
	if len(sp.tupleFiles) > 0 {
		// Tuple keys of the survivors, aligned with entries.
		tks := make([]Key, len(entries))
		for i, e := range entries {
			if e != nil {
				tks[i] = b.kc.tupleKey(e.it.cfg)
			}
		}
		for _, path := range sp.tupleFiles {
			br, err := loadSpillBlob(path)
			if err != nil {
				return nil, err
			}
			for i, e := range entries {
				if e == nil || e.it.tupleDup {
					continue
				}
				if br.Has(packKeyBytes(tks[i], b.n, buf[:])) {
					e.it.tupleDup = true
				}
			}
		}
	}
	out := entries[:0]
	for _, e := range entries {
		if e != nil {
			out = append(out, e)
		}
	}
	return out, nil
}

// forEachSpilled streams every entry of the given spill files through f
// with its admission rank, loading one file at a time. Checkpoint
// snapshots and witness reconstruction use it to cover spilled states.
func (b *bfs) forEachSpilled(files []string, f func(k Key, rank uint32)) error {
	for _, path := range files {
		br, err := loadSpillBlob(path)
		if err != nil {
			return err
		}
		br.ForEach(func(kb []byte, r uint32) { f(unpackKeyBytes(kb, b.n), r) })
	}
	return nil
}
