package enum

import (
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
)

func TestCanonicalizeMapsVersionsToDataClasses(t *testing.T) {
	p := protocols.Illinois()
	c := fsm.NewConfig(p, 3)
	c.States = []fsm.State{"Dirty", "Shared", "Invalid"}
	c.Versions = []int64{7, 3, fsm.NoData}
	c.MemVersion = 3
	c.Latest = 7
	Canonicalize(c)
	if c.Versions[0] != canonFresh {
		t.Errorf("latest version must canonicalize to fresh, got %d", c.Versions[0])
	}
	if c.Versions[1] != canonObsolete {
		t.Errorf("older version must canonicalize to obsolete, got %d", c.Versions[1])
	}
	if c.Versions[2] != fsm.NoData {
		t.Errorf("NoData must be preserved, got %d", c.Versions[2])
	}
	if c.MemVersion != canonObsolete || c.Latest != canonFresh {
		t.Errorf("memory %d latest %d", c.MemVersion, c.Latest)
	}
}

func TestCanonicalizeIdempotent(t *testing.T) {
	p := protocols.Illinois()
	c := fsm.NewConfig(p, 2)
	if _, err := fsm.Step(p, c, 0, fsm.OpWrite); err != nil {
		t.Fatal(err)
	}
	Canonicalize(c)
	k := c.Key()
	Canonicalize(c)
	if c.Key() != k {
		t.Fatal("canonicalization must be idempotent")
	}
}

func TestCanonicalizePreservesStaleness(t *testing.T) {
	// The stale-read predicate (version != Latest) must be invariant under
	// canonicalization.
	p := protocols.Illinois()
	c := fsm.NewConfig(p, 2)
	c.States[0] = "Shared"
	c.Versions[0] = 3
	c.Latest = 9
	c.MemVersion = 9
	before := fsm.CheckConfig(p, c, false)
	Canonicalize(c)
	after := fsm.CheckConfig(p, c, false)
	if len(before) != len(after) {
		t.Fatalf("canonicalization changed violations: %v vs %v", before, after)
	}
	if len(after) == 0 {
		t.Fatal("stale shared copy must be flagged")
	}
}

func TestExhaustiveIllinoisSmallCounts(t *testing.T) {
	// Locked-in values for the Illinois protocol (abstract data domain).
	// n=2: (I,I) (V,I) (I,V) (D,I) (I,D) (S,S) (S,I) (I,S) = 8 states.
	cases := []struct {
		n         int
		wantState int
	}{
		// n=1: Invalid, Valid-Exclusive, Dirty — a lone cache never loads
		// Shared because the sharing line is always low.
		{1, 3},
		{2, 8},
		{3, 14},
		{4, 24},
	}
	p := protocols.Illinois()
	for _, tc := range cases {
		res, err := Exhaustive(p, tc.n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Unique != tc.wantState {
			t.Errorf("n=%d: unique = %d, want %d", tc.n, res.Unique, tc.wantState)
		}
		if !res.OK() {
			t.Errorf("n=%d: unexpected violations %v", tc.n, res.Violations)
		}
		if res.Truncated {
			t.Errorf("n=%d: unexpectedly truncated", tc.n)
		}
	}
}

func TestCountingCollapsesPermutations(t *testing.T) {
	p := protocols.Illinois()
	for n := 2; n <= 5; n++ {
		ex, err := Exhaustive(p, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ct, err := Counting(p, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ct.Unique > ex.Unique {
			t.Errorf("n=%d: counting (%d) found more states than strict (%d)", n, ct.Unique, ex.Unique)
		}
		if n >= 3 && ct.Unique >= ex.Unique {
			t.Errorf("n=%d: counting equivalence should strictly compress, %d vs %d", n, ct.Unique, ex.Unique)
		}
		if ct.Visits > ex.Visits {
			t.Errorf("n=%d: counting visits (%d) exceed strict visits (%d)", n, ct.Visits, ex.Visits)
		}
	}
}

func TestExhaustiveGrowsWithN(t *testing.T) {
	// The Section 3.1 claim: strict enumeration grows with n (≈ mⁿ shape),
	// while the number of counting states grows only linearly here.
	p := protocols.Illinois()
	prev := 0
	for n := 2; n <= 7; n++ {
		res, err := Exhaustive(p, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Unique <= prev {
			t.Fatalf("n=%d: strict state count %d did not grow (prev %d)", n, res.Unique, prev)
		}
		prev = res.Unique
	}
}

func TestAllProtocolsEnumerateClean(t *testing.T) {
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for n := 1; n <= 4; n++ {
				res, err := Counting(p, n, Options{Strict: true})
				if err != nil {
					t.Fatal(err)
				}
				if !res.OK() {
					t.Fatalf("n=%d: %v", n, res.Violations)
				}
			}
		})
	}
}

func brokenIllinois() *fsm.Protocol {
	p := protocols.Illinois()
	for i := range p.Rules {
		if p.Rules[i].Name == "write-hit-shared" {
			p.Rules[i].Observe = nil
		}
	}
	return p.Clone()
}

func TestEnumerationDetectsBrokenProtocol(t *testing.T) {
	res, err := Exhaustive(brokenIllinois(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("the broken protocol must be refuted at n=2")
	}
	v := res.Violations[0]
	if len(v.Path) == 0 {
		t.Fatal("violations must carry witness paths")
	}
	// Replay the witness concretely.
	p := brokenIllinois()
	c := fsm.NewConfig(p, 2)
	Canonicalize(c)
	for _, step := range v.Path {
		if _, err := fsm.Step(p, c, step.Cache, step.Op); err != nil {
			t.Fatalf("witness replay failed: %v", err)
		}
		Canonicalize(c)
		if c.Key() != step.To {
			t.Fatalf("witness step mismatch: got %s want %s", c.Key(), step.To)
		}
	}
}

func TestStopOnViolationShortCircuits(t *testing.T) {
	p := brokenIllinois()
	full, err := Exhaustive(p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	early, err := Exhaustive(p, 3, Options{StopOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(early.Violations) != 1 {
		t.Fatalf("early run reported %d violations", len(early.Violations))
	}
	if early.Visits > full.Visits {
		t.Fatal("early stop must not visit more states")
	}
}

func TestMaxStatesTruncates(t *testing.T) {
	res, err := Exhaustive(protocols.Illinois(), 6, Options{MaxStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("a 10-state cap must truncate the n=6 space")
	}
	if res.Unique > 10 {
		t.Fatalf("unique = %d exceeds cap", res.Unique)
	}
}

func TestKeepReachableMatchesUnique(t *testing.T) {
	res, err := Counting(protocols.MSI(), 3, Options{KeepReachable: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reachable) != res.Unique {
		t.Fatalf("reachable %d != unique %d", len(res.Reachable), res.Unique)
	}
	seen := map[string]bool{}
	for _, c := range res.Reachable {
		k := countingKey(c)
		if seen[k] {
			t.Fatalf("duplicate reachable state %s", k)
		}
		seen[k] = true
	}
}

func TestRejectsInvalidArguments(t *testing.T) {
	if _, err := Exhaustive(protocols.Illinois(), 0, Options{}); err == nil {
		t.Error("n=0 must be rejected")
	}
	if _, err := Counting(&fsm.Protocol{Name: "broken"}, 2, Options{}); err == nil {
		t.Error("invalid protocols must be rejected")
	}
}

func TestTupleStatesIgnoreData(t *testing.T) {
	res, err := Exhaustive(protocols.Illinois(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TupleStates > res.Unique {
		t.Fatalf("tuple states %d cannot exceed full states %d", res.TupleStates, res.Unique)
	}
	if res.TupleStates == 0 {
		t.Fatal("tuple accounting missing")
	}
}

func TestCountingKeyIsPermutationInvariant(t *testing.T) {
	p := protocols.Illinois()
	a := fsm.NewConfig(p, 3)
	a.States = []fsm.State{"Shared", "Invalid", "Shared"}
	a.Versions = []int64{0, fsm.NoData, 0}
	b := fsm.NewConfig(p, 3)
	b.States = []fsm.State{"Shared", "Shared", "Invalid"}
	b.Versions = []int64{0, 0, fsm.NoData}
	if countingKey(a) != countingKey(b) {
		t.Fatal("permutations must share a counting key")
	}
	if strictKey(a) == strictKey(b) {
		t.Fatal("strict keys must distinguish permutations")
	}
}

func TestSymmetricExpansionShadowing(t *testing.T) {
	p := protocols.Illinois()
	c := fsm.NewConfig(p, 3)
	c.States = []fsm.State{"Shared", "Shared", "Invalid"}
	c.Versions = []int64{0, 0, fsm.NoData}
	if shadowedBySibling(c, 0) {
		t.Error("first representative must not be shadowed")
	}
	if !shadowedBySibling(c, 1) {
		t.Error("second cache of the same class must be shadowed")
	}
	if shadowedBySibling(c, 2) {
		t.Error("a different class must not be shadowed")
	}
}
