package enum

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/fsm"
)

// ExhaustiveParallel runs the Figure 2 exhaustive search with a
// level-synchronous parallel BFS: each frontier generation is partitioned
// across a worker pool, successors are generated concurrently, and a
// single-threaded merge deduplicates them into the next frontier. The
// result is bit-for-bit identical to Exhaustive (same distinct states, same
// visit count, same violations) because visits count generated successors —
// independent of exploration order — and the merge applies workers' output
// in deterministic worker order.
//
// workers ≤ 0 selects GOMAXPROCS. The mⁿ state spaces of Section 3.1 are
// embarrassingly parallel per level; the speedup benchmark
// (BenchmarkParallelEnumeration) measures the gain on large n.
func ExhaustiveParallel(p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return ExhaustiveParallelContext(context.Background(), p, n, opts, workers)
}

// ExhaustiveParallelContext is ExhaustiveParallel under a context:
// cancellation, deadlines and the memory budget are checked at level
// boundaries, so a stopped run contains whole levels only (its Visits and
// violation sets are a deterministic prefix of the full run's).
func ExhaustiveParallelContext(ctx context.Context, p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return runParallel(ctx, p, n, opts, ModeStrict, workers)
}

// CountingParallel is the counting-equivalence variant of ExhaustiveParallel.
func CountingParallel(p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return CountingParallelContext(context.Background(), p, n, opts, workers)
}

// CountingParallelContext is CountingParallel under a context.
func CountingParallelContext(ctx context.Context, p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return runParallel(ctx, p, n, opts, ModeCounting, workers)
}

// WorkerError records a panic recovered in a parallel BFS worker. The
// worker's frontier slice is re-expanded sequentially after the recovery,
// so a transient panic leaves the run's results bit-for-bit identical to
// the sequential algorithm; a panic that persists in the sequential retry
// is additionally surfaced as a SpecError.
type WorkerError struct {
	// Level is the BFS depth at which the worker panicked.
	Level int
	// Worker is the index of the panicked worker within its level.
	Worker int
	// Value is the rendered panic value.
	Value string
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("enum: worker %d panicked at level %d: %s", e.Worker, e.Level, e.Value)
}

// succItem is one generated successor, tagged with provenance for witness
// reconstruction. The equivalence key is computed inside the worker so the
// sequential merge only performs map operations.
type succItem struct {
	cfg    *fsm.Config
	key    string
	parent string
	cache  int
	op     fsm.Op
}

// workerOut is the deterministic per-worker production of one level.
type workerOut struct {
	items    []succItem
	specErrs []error
}

// expandSlice generates the successors of a frontier slice. It is the
// single expansion routine shared by the sequential engine, the parallel
// workers, and the sequential fallback after a worker panic, which is what
// keeps all three observationally identical.
func expandSlice(p *fsm.Protocol, n int, key keyFunc, symmetric bool, frontier []*fsm.Config) workerOut {
	var out workerOut
	for _, cur := range frontier {
		curKey := key(cur)
		for i := 0; i < n; i++ {
			if symmetric && shadowedBySibling(cur, i) {
				continue
			}
			for _, op := range p.Ops {
				if len(p.RulesFor(cur.States[i], op)) == 0 {
					continue
				}
				next := cur.Clone()
				if _, err := fsm.Step(p, next, i, op); err != nil {
					out.specErrs = append(out.specErrs, err)
					continue
				}
				Canonicalize(next)
				out.items = append(out.items, succItem{
					cfg: next, key: key(next),
					parent: curKey, cache: i, op: op,
				})
			}
		}
	}
	return out
}

// Test hooks. testLevelHook observes each level before its workers fan
// out; testWorkerHook runs inside each worker goroutine (and not in the
// sequential fallback), which is how the tests inject worker panics.
var (
	testLevelHook  func(level int)
	testWorkerHook func(level, worker int)
)

func runParallel(ctx context.Context, p *fsm.Protocol, n int, opts Options, mode string, workers int) (*Result, error) {
	b, init, done, err := newBFS(p, n, opts, mode)
	if err != nil {
		return nil, err
	}
	if done {
		return b.res, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return b.runPar(ctx, []*fsm.Config{init}, workers)
}

// runPar drives the level-synchronous parallel BFS over the shared bfs
// state. Budgets are checked between levels; the merge applies worker
// output in deterministic worker order.
func (b *bfs) runPar(ctx context.Context, frontier []*fsm.Config, workers int) (*Result, error) {
	for level := 0; len(frontier) > 0; level++ {
		if err := b.stopCheck(ctx); err != nil {
			b.stop(err, frontier)
			return b.res, nil
		}
		if err := b.maybeCheckpoint(frontier); err != nil {
			return nil, err
		}
		if testLevelHook != nil {
			testLevelHook(level)
		}

		// Fan out: each worker expands a contiguous slice of the frontier.
		nw := workers
		if nw > len(frontier) {
			nw = len(frontier)
		}
		outs := make([]workerOut, nw)
		panics := make([]*WorkerError, nw)
		chunk := (len(frontier) + nw - 1) / nw
		bounds := func(w int) (int, int) {
			lo := w * chunk
			if lo > len(frontier) {
				lo = len(frontier)
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			return lo, hi
		}
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			lo, hi := bounds(w)
			wg.Add(1)
			go func(w, lo, hi, level int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						outs[w] = workerOut{} // discard partial output
						panics[w] = &WorkerError{
							Level: level, Worker: w,
							Value: fmt.Sprint(r),
							Stack: string(debug.Stack()),
						}
					}
				}()
				if testWorkerHook != nil {
					testWorkerHook(level, w)
				}
				outs[w] = expandSlice(b.p, b.n, b.key, b.symmetric, frontier[lo:hi])
			}(w, lo, hi, level)
		}
		wg.Wait()

		// Panic isolation: a panicked worker's slice is re-expanded
		// sequentially so the merged level stays identical to the
		// sequential algorithm's. A panic that persists outside the
		// worker pool is reported instead of crashing the run.
		for w, we := range panics {
			if we == nil {
				continue
			}
			b.res.WorkerErrors = append(b.res.WorkerErrors, we)
			lo, hi := bounds(w)
			func() {
				defer func() {
					if r := recover(); r != nil {
						b.res.SpecErrors = append(b.res.SpecErrors, fmt.Errorf(
							"enum: panic persisted in sequential retry of level %d slice [%d:%d]: %v",
							we.Level, lo, hi, r))
					}
				}()
				outs[w] = expandSlice(b.p, b.n, b.key, b.symmetric, frontier[lo:hi])
			}()
		}

		// Merge sequentially, in worker order, for determinism.
		var next []*fsm.Config
		for w := range outs {
			b.res.SpecErrors = append(b.res.SpecErrors, outs[w].specErrs...)
			for _, it := range outs[w].items {
				if b.admit(it, &next) {
					return b.res, nil
				}
			}
		}
		b.sinceCp += len(frontier)
		frontier = next
	}
	b.finish()
	return b.res, nil
}
