package enum

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/fsm"
)

// ExhaustiveParallel runs the Figure 2 exhaustive search with a
// level-synchronous parallel BFS: each frontier generation is partitioned
// across a worker pool, successors are generated concurrently, and a
// single-threaded merge deduplicates them into the next frontier. The
// result is bit-for-bit identical to Exhaustive (same distinct states, same
// visit count, same violations) because visits count generated successors —
// independent of exploration order — and the merge applies workers' output
// in deterministic worker order.
//
// workers ≤ 0 selects GOMAXPROCS. The mⁿ state spaces of Section 3.1 are
// embarrassingly parallel per level; the speedup benchmark
// (BenchmarkParallelEnumeration) measures the gain on large n.
func ExhaustiveParallel(p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return runParallel(p, n, opts, strictKey, false, workers)
}

// CountingParallel is the counting-equivalence variant of ExhaustiveParallel.
func CountingParallel(p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return runParallel(p, n, opts, countingKey, true, workers)
}

// succItem is one generated successor, tagged with provenance for witness
// reconstruction. The equivalence key is computed inside the worker so the
// sequential merge only performs map operations.
type succItem struct {
	cfg    *fsm.Config
	key    string
	parent string
	cache  int
	op     fsm.Op
}

// workerOut is the deterministic per-worker production of one level.
type workerOut struct {
	items    []succItem
	specErrs []error
}

func runParallel(p *fsm.Protocol, n int, opts Options, key keyFunc, symmetric bool, workers int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("enum: need at least one cache, got %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	res := &Result{Protocol: p, N: n}

	init := fsm.NewConfig(p, n)
	Canonicalize(init)
	ik := key(init)

	visited := map[string]bool{ik: true}
	parents := map[string]parent{ik: {}}
	tuples := map[string]bool{init.StateKey(): true}
	frontier := []*fsm.Config{init}
	if opts.KeepReachable {
		res.Reachable = append(res.Reachable, init.Clone())
	}
	if v := fsm.CheckConfig(p, init, opts.Strict); len(v) > 0 {
		res.Violations = append(res.Violations, Violation{Config: init.Clone(), Violations: v})
		if opts.StopOnViolation {
			res.Unique = len(visited)
			res.TupleStates = len(tuples)
			return res, nil
		}
	}

	for len(frontier) > 0 {
		// Fan out: each worker expands a contiguous slice of the frontier.
		nw := workers
		if nw > len(frontier) {
			nw = len(frontier)
		}
		outs := make([]workerOut, nw)
		var wg sync.WaitGroup
		chunk := (len(frontier) + nw - 1) / nw
		for w := 0; w < nw; w++ {
			lo := w * chunk
			if lo > len(frontier) {
				lo = len(frontier)
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				out := &outs[w]
				for _, cur := range frontier[lo:hi] {
					curKey := key(cur)
					for i := 0; i < n; i++ {
						if symmetric && shadowedBySibling(cur, i) {
							continue
						}
						for _, op := range p.Ops {
							if len(p.RulesFor(cur.States[i], op)) == 0 {
								continue
							}
							next := cur.Clone()
							if _, err := fsm.Step(p, next, i, op); err != nil {
								out.specErrs = append(out.specErrs, err)
								continue
							}
							Canonicalize(next)
							out.items = append(out.items, succItem{
								cfg: next, key: key(next),
								parent: curKey, cache: i, op: op,
							})
						}
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()

		// Merge sequentially, in worker order, for determinism.
		var next []*fsm.Config
		for w := range outs {
			res.SpecErrors = append(res.SpecErrors, outs[w].specErrs...)
			for _, it := range outs[w].items {
				res.Visits++
				k := it.key
				if visited[k] {
					continue
				}
				visited[k] = true
				parents[k] = parent{key: it.parent, cache: it.cache, op: it.op}
				tuples[it.cfg.StateKey()] = true
				if v := fsm.CheckConfig(p, it.cfg, opts.Strict); len(v) > 0 {
					res.Violations = append(res.Violations, Violation{
						Config:     it.cfg.Clone(),
						Violations: v,
						Path:       witness(parents, k),
					})
					if opts.StopOnViolation {
						res.Unique = len(visited)
						res.TupleStates = len(tuples)
						return res, nil
					}
				}
				if opts.KeepReachable {
					res.Reachable = append(res.Reachable, it.cfg.Clone())
				}
				if len(visited) >= maxStates {
					res.Truncated = true
					res.Unique = len(visited)
					res.TupleStates = len(tuples)
					return res, nil
				}
				next = append(next, it.cfg)
			}
		}
		frontier = next
	}
	res.Unique = len(visited)
	res.TupleStates = len(tuples)
	return res, nil
}
