package enum

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/compile"
	"repro/internal/fsm"
	"repro/internal/obs"
)

// ExhaustiveParallel runs the Figure 2 exhaustive search with a
// level-synchronous parallel BFS. Within a level, workers expand disjoint
// frontier slices and admit successors concurrently into a hash-sharded
// pending set (the committed visited set is read-only during the level, so
// dedup against prior levels is lock-free); the post-level reconcile then
// applies the surviving admissions in a deterministic rank order that
// reproduces the sequential engine's admission order exactly. The result
// is bit-for-bit identical to Exhaustive — same distinct states, same
// visit count, same violations — because visits count generated successors
// (independent of exploration order) and rank order equals the order the
// old single-threaded merge would have used.
//
// workers ≤ 0 selects GOMAXPROCS. The mⁿ state spaces of Section 3.1 are
// embarrassingly parallel per level; the speedup benchmark
// (BenchmarkParallelEnumeration) measures the gain on large n.
func ExhaustiveParallel(p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return ExhaustiveParallelContext(context.Background(), p, n, opts, workers)
}

// ExhaustiveParallelContext is ExhaustiveParallel under a context:
// cancellation, deadlines and the memory budget are checked at level
// boundaries, so a stopped run contains whole levels only (its Visits and
// violation sets are a deterministic prefix of the full run's).
func ExhaustiveParallelContext(ctx context.Context, p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return runParallel(ctx, p, n, opts, ModeStrict, workers)
}

// CountingParallel is the counting-equivalence variant of ExhaustiveParallel.
func CountingParallel(p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return CountingParallelContext(context.Background(), p, n, opts, workers)
}

// CountingParallelContext is CountingParallel under a context.
func CountingParallelContext(ctx context.Context, p *fsm.Protocol, n int, opts Options, workers int) (*Result, error) {
	return runParallel(ctx, p, n, opts, ModeCounting, workers)
}

// WorkerError records a panic recovered in a parallel BFS worker. The
// worker's frontier slice is re-expanded sequentially after the recovery
// (admissions are idempotent under equal ranks, so a partial first attempt
// is harmless), so a transient panic leaves the run's results bit-for-bit
// identical to the sequential algorithm; a panic that persists in the
// sequential retry is additionally surfaced as a SpecError and the
// worker's pending admissions are discarded.
type WorkerError struct {
	// Level is the BFS depth at which the worker panicked.
	Level int
	// Worker is the index of the panicked worker within its level.
	Worker int
	// Value is the rendered panic value.
	Value string
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("enum: worker %d panicked at level %d: %s", e.Worker, e.Level, e.Value)
}

// succItem is one generated successor, tagged with provenance for witness
// reconstruction. The equivalence key is computed at generation time so
// admission only performs map operations.
type succItem struct {
	cfg    *fsm.Config
	key    Key
	parent Key
	cache  int
	op     fsm.Op
	// tupleDup marks a successor whose state tuple is already known to a
	// spilled tuple census (set by spillFilter), so commit must not count
	// it again.
	tupleDup bool
}

// workerOut is a reusable successor buffer, pooled across levels and
// runs so steady-state expansion does not re-grow it.
type workerOut struct {
	items    []succItem
	specErrs []error
	// base and work are the compiled-configuration scratch of expandOne:
	// the dequeued state encoded once, and the per-successor working copy.
	// They live here so both the sequential loop and the pooled parallel
	// workers reuse them across expansions without allocating.
	base, work compile.Config
}

var workerOutPool = sync.Pool{New: func() any { return new(workerOut) }}

func getWorkerOut() *workerOut { return workerOutPool.Get().(*workerOut) }

func putWorkerOut(out *workerOut) {
	out.items = out.items[:0]
	out.specErrs = out.specErrs[:0]
	workerOutPool.Put(out)
}

// frontierPool recycles level slices: each BFS level retires its
// frontier slice and the pool hands it to a later level's next buffer.
var frontierPool = sync.Pool{New: func() any { return new([]*fsm.Config) }}

func getFrontierSlice() []*fsm.Config {
	return (*frontierPool.Get().(*[]*fsm.Config))[:0]
}

func putFrontierSlice(s []*fsm.Config) {
	frontierPool.Put(&s)
}

// useInterpretedExpand, when set by tests, routes expandOne through the
// interpreted fsm.Step reference path instead of the compiled tables. The
// compile-parity suite flips it to assert the two paths produce
// byte-identical results over every spec and every mutant. Never set
// outside tests; it is read without synchronization.
var useInterpretedExpand = false

// expandOne generates the successors of one frontier configuration into
// out. It is the single expansion routine shared by the sequential engine
// and the parallel workers' admission loop, which is what keeps the two
// observationally identical. The hot path steps through the run's compiled
// protocol (kc.cp): the dequeued configuration is encoded to integer states
// once, each successor is generated by a table-driven compiled step, and
// only admitted successors are materialized back to fsm.Config form.
func expandOne(kc *keyCodec, symmetric bool, cur *fsm.Config, out *workerOut) {
	if useInterpretedExpand {
		expandOneInterpreted(kc, symmetric, cur, out)
		return
	}
	curKey := kc.key(cur)
	p, n, cp := kc.p, kc.n, kc.cp
	if err := cp.Encode(cur, &out.base); err != nil {
		out.specErrs = append(out.specErrs, err)
		return
	}
	for i := 0; i < n; i++ {
		if symmetric && shadowedBySibling(cur, i) {
			continue
		}
		st := int(out.base.States[i])
		for k := range p.Ops {
			if !cp.HasRules(st, k) {
				continue
			}
			out.work.CopyFrom(&out.base)
			if _, err := cp.Step(&out.work, i, k); err != nil {
				out.specErrs = append(out.specErrs, err)
				continue
			}
			next := cloneConfig(cur)
			cp.Decode(&out.work, next)
			Canonicalize(next)
			out.items = append(out.items, succItem{
				cfg: next, key: kc.key(next),
				parent: curKey, cache: i, op: p.Ops[k],
			})
		}
	}
}

// expandOneInterpreted is the interpreted reference expansion — the exact
// pre-compilation code path, stepping fsm.Config through fsm.Step. It is
// retained solely as the parity oracle for the compiled path above.
func expandOneInterpreted(kc *keyCodec, symmetric bool, cur *fsm.Config, out *workerOut) {
	curKey := kc.key(cur)
	p, n := kc.p, kc.n
	for i := 0; i < n; i++ {
		if symmetric && shadowedBySibling(cur, i) {
			continue
		}
		for _, op := range p.Ops {
			if len(p.RulesFor(cur.States[i], op)) == 0 {
				continue
			}
			next := cloneConfig(cur)
			if _, err := fsm.Step(p, next, i, op); err != nil {
				out.specErrs = append(out.specErrs, err)
				releaseConfig(next)
				continue
			}
			Canonicalize(next)
			out.items = append(out.items, succItem{
				cfg: next, key: kc.key(next),
				parent: curKey, cache: i, op: op,
			})
		}
	}
}

// rankShift packs (worker, item) into a single admission rank: rank order
// equals the order the old single-threaded merge applied worker output in
// (all of worker 0's items, then worker 1's, ...), which makes the
// reconcile deterministic and identical to the sequential engine.
const rankShift = 40

// pendEntry is one successor admitted into the level's pending set: the
// lowest-ranked generator of its key seen so far, with its invariant
// violations precomputed inside the worker.
type pendEntry struct {
	it   succItem
	rank uint64
	viol []fsm.Violation
}

// pendShard is one lock-striped slice of the pending admission set.
type pendShard struct {
	mu sync.Mutex
	m  map[Key]*pendEntry
}

const numShards = 64 // power of two

// pendSet is the hash-sharded pending set of one BFS level. Workers admit
// concurrently; the minimum-rank entry wins key collisions, so the
// surviving set is independent of goroutine scheduling.
type pendSet struct {
	shards [numShards]pendShard
}

func newPendSet() *pendSet {
	ps := &pendSet{}
	for i := range ps.shards {
		ps.shards[i].m = make(map[Key]*pendEntry)
	}
	return ps
}

func (ps *pendSet) shard(k Key) *pendShard {
	return &ps.shards[k.hash()&(numShards-1)]
}

// admit offers one generated successor to the pending set. Losing
// duplicates return their configuration to the pool; equal ranks keep the
// existing entry, which makes re-running a worker (panic retry) idempotent.
func (ps *pendSet) admit(it succItem, rank uint64, strict bool, p *fsm.Protocol) {
	sh := ps.shard(it.key)
	// Fast pre-check: drop clearly losing duplicates before paying for the
	// invariant check.
	sh.mu.Lock()
	if e := sh.m[it.key]; e != nil && e.rank <= rank {
		sh.mu.Unlock()
		releaseConfig(it.cfg)
		return
	}
	sh.mu.Unlock()
	ent := &pendEntry{it: it, rank: rank, viol: fsm.CheckConfig(p, it.cfg, strict)}
	sh.mu.Lock()
	if e := sh.m[it.key]; e == nil || rank < e.rank {
		if e != nil {
			releaseConfig(e.it.cfg)
		}
		sh.m[it.key] = ent
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	releaseConfig(it.cfg)
}

// purgeWorker discards every pending entry admitted by worker w, used when
// a worker's panic persists through the sequential retry: the degraded
// level then simply excludes that worker's output, like the old engine.
func (ps *pendSet) purgeWorker(w int) {
	for i := range ps.shards {
		sh := &ps.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			if int(e.rank>>rankShift) == w {
				releaseConfig(e.it.cfg)
				delete(sh.m, k)
			}
		}
		sh.mu.Unlock()
	}
}

// entries returns the surviving admissions sorted by rank — the exact
// order the sequential engine would have admitted them in.
func (ps *pendSet) entries() []*pendEntry {
	var out []*pendEntry
	for i := range ps.shards {
		for _, e := range ps.shards[i].m {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rank < out[j].rank })
	return out
}

// Test hooks. testLevelHook observes each level before its workers fan
// out; testWorkerHook runs inside each worker goroutine (and not in the
// sequential fallback), which is how the tests inject worker panics.
var (
	testLevelHook  func(level int)
	testWorkerHook func(level, worker int)
)

func runParallel(ctx context.Context, p *fsm.Protocol, n int, opts Options, mode string, workers int) (*Result, error) {
	b, init, done, err := newBFS(p, n, opts, mode)
	if err != nil {
		return nil, err
	}
	if done {
		return b.res, nil
	}
	if workers <= 0 {
		// The caller didn't pick: fall back to the shared run configuration,
		// then to GOMAXPROCS.
		workers = b.rc.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return b.runPar(ctx, []*fsm.Config{init}, workers)
}

// expandWorker is the body of one level worker: it expands a frontier
// slice via expandOne, deduplicates each successor against the committed
// visited set (read-only during the level, so the read is lock-free) and
// offers the survivors to the sharded pending set under rank
// w<<rankShift|item. It returns the number of successors generated (the
// worker's contribution to Visits) and any specification errors, both in
// deterministic order.
func (b *bfs) expandWorker(w int, frontier []*fsm.Config, ps *pendSet) (int, []error) {
	out := getWorkerOut()
	item := uint64(0)
	for _, cur := range frontier {
		out.items = out.items[:0]
		expandOne(b.kc, b.symmetric, cur, out)
		for _, it := range out.items {
			rank := uint64(w)<<rankShift | item
			item++
			if b.visited.has(it.key) {
				releaseConfig(it.cfg)
				continue
			}
			ps.admit(it, rank, b.opts.Strict, b.p)
		}
	}
	specErrs := out.specErrs
	out.specErrs = nil // retained by the caller; don't recycle the backing array
	putWorkerOut(out)
	return int(item), specErrs
}

// runPar drives the level-synchronous parallel BFS over the shared bfs
// state. Budgets are checked between levels; the reconcile applies the
// pending admissions in rank order, which equals sequential order.
func (b *bfs) runPar(ctx context.Context, frontier []*fsm.Config, workers int) (*Result, error) {
	sp := b.orun.Phase(obs.PhaseExpand)
	defer sp.End()
	if err := b.initSpill(frontier); err != nil {
		return nil, err
	}
	// Bases for run-relative level stats (Visits and the visited set may
	// carry over from a resumed checkpoint).
	visits0, admitted0 := b.res.Visits, b.visited.size()
	for level := 0; len(frontier) > 0; level++ {
		b.frontierLen = len(frontier)
		if err := b.maybeSpill(); err != nil {
			return nil, err
		}
		if err := b.stopCheck(ctx); err != nil {
			b.stop(err, frontier)
			return b.res, nil
		}
		if err := b.maybeCheckpoint(frontier); err != nil {
			return nil, err
		}
		if testLevelHook != nil {
			testLevelHook(level)
		}

		// Fan out: each worker expands a contiguous slice of the frontier
		// and admits into the sharded pending set as it goes.
		nw := workers
		if nw > len(frontier) {
			nw = len(frontier)
		}
		ps := newPendSet()
		gen := make([]int, nw)
		errs := make([][]error, nw)
		panics := make([]*WorkerError, nw)
		chunk := (len(frontier) + nw - 1) / nw
		bounds := func(w int) (int, int) {
			lo := w * chunk
			if lo > len(frontier) {
				lo = len(frontier)
			}
			hi := lo + chunk
			if hi > len(frontier) {
				hi = len(frontier)
			}
			return lo, hi
		}
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			lo, hi := bounds(w)
			wg.Add(1)
			go func(w, lo, hi, level int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						gen[w], errs[w] = 0, nil
						panics[w] = &WorkerError{
							Level: level, Worker: w,
							Value: fmt.Sprint(r),
							Stack: string(debug.Stack()),
						}
					}
				}()
				if testWorkerHook != nil {
					testWorkerHook(level, w)
				}
				gen[w], errs[w] = b.expandWorker(w, frontier[lo:hi], ps)
			}(w, lo, hi, level)
		}
		wg.Wait()

		// Panic isolation: a panicked worker's slice is re-expanded
		// sequentially. Expansion is deterministic and pending admission
		// is idempotent under equal ranks, so entries from the aborted
		// first attempt simply stay and the retry fills in the rest —
		// the merged level is identical to the sequential algorithm's.
		// A panic that persists outside the worker pool is reported (and
		// the worker's partial admissions withdrawn) instead of crashing
		// the run.
		for w, we := range panics {
			if we == nil {
				continue
			}
			b.res.WorkerErrors = append(b.res.WorkerErrors, we)
			b.orun.Event("worker_panics_total", 1)
			lo, hi := bounds(w)
			func() {
				defer func() {
					if r := recover(); r != nil {
						gen[w], errs[w] = 0, nil
						ps.purgeWorker(w)
						b.res.SpecErrors = append(b.res.SpecErrors, fmt.Errorf(
							"enum: panic persisted in sequential retry of level %d slice [%d:%d]: %v",
							we.Level, lo, hi, r))
					}
				}()
				gen[w], errs[w] = b.expandWorker(w, frontier[lo:hi], ps)
			}()
		}

		// Reconcile: apply the surviving admissions in rank order. A
		// mid-level stop (StopOnViolation, state cap) at rank (w, i)
		// counts exactly the successors the sequential merge would have
		// processed by then: all of workers < w plus i+1 of worker w.
		rsp := b.orun.Phase(obs.PhaseReconcile)
		entries := ps.entries()
		if b.spill != nil {
			// Delayed duplicate detection: drop pending successors whose
			// key (or tuple) already lives in a spill file, and collect
			// the surviving frontier's ranks for the next level's
			// provenance lookups.
			var err error
			if entries, err = b.spillFilter(entries); err != nil {
				rsp.End()
				return nil, err
			}
			b.nextRanks = make(map[Key]uint32, len(entries))
		}
		next := getFrontierSlice()
		appended := 0 // workers whose spec errors are already in res
		stopped := false
		for _, e := range entries {
			ew := int(e.rank >> rankShift)
			for ; appended <= ew; appended++ {
				b.res.SpecErrors = append(b.res.SpecErrors, errs[appended]...)
			}
			if b.commit(e.it, e.viol, &next) {
				prior := 0
				for w := 0; w < ew; w++ {
					prior += gen[w]
				}
				b.res.Visits += prior + int(e.rank&(1<<rankShift-1)) + 1
				stopped = true
				break
			}
		}
		rsp.End()
		if stopped {
			return b.res, nil
		}
		for ; appended < nw; appended++ {
			b.res.SpecErrors = append(b.res.SpecErrors, errs[appended]...)
		}
		for _, g := range gen {
			b.res.Visits += g
		}
		for _, cur := range frontier {
			releaseConfig(cur)
		}
		b.sinceCp += len(frontier)
		putFrontierSlice(frontier)
		frontier = next
		b.frontierLen = len(frontier)
		b.bytes = b.estBytes()
		if b.spill != nil {
			b.frontRanks, b.nextRanks = b.nextRanks, nil
		}
		visits := b.res.Visits - visits0
		b.orun.Level(obs.LevelStats{
			Level:     level,
			Frontier:  len(frontier),
			Essential: b.visited.size(),
			Visits:    visits,
			Pruned:    visits - (b.visited.size() - admitted0),
			EstBytes:  b.bytes,
		})
	}
	b.finish()
	return b.res, nil
}
