package enum

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/randproto"
)

// TestPackedKeyPartitionMatchesLegacy is the correctness property of the
// packed state-identity layer: over random well-formed protocols and random
// walks through their concrete state spaces, the packed Keys must induce
// exactly the same partition as the legacy canonical strings in both
// equivalence modes — two configurations collide under kc.key if and only if
// they collide under strictKey/countingKey. Alongside the partition the test
// pins the rendering (render must reproduce the legacy string byte for byte,
// since checkpoints store it) and the parse round-trip.
func TestPackedKeyPartitionMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randproto.New(rng, 1+rng.Intn(4))
		n := 2 + rng.Intn(3)
		for _, mode := range []string{ModeStrict, ModeCounting} {
			kc := newKeyCodec(p, n, mode)
			if !kc.packed {
				t.Fatalf("seed %d: codec unexpectedly unpacked for |Q|=%d n=%d", seed, p.NumStates(), n)
			}
			legacy := func(c *fsm.Config) string {
				if mode == ModeCounting {
					return countingKey(c)
				}
				return strictKey(c)
			}
			byLegacy := map[string]Key{}
			byKey := map[Key]string{}

			c := fsm.NewConfig(p, n)
			Canonicalize(c)
			for step := 0; step < 200; step++ {
				if _, err := fsm.Step(p, c, rng.Intn(n), p.Ops[rng.Intn(len(p.Ops))]); err != nil {
					t.Fatalf("seed %d mode %s: step: %v", seed, mode, err)
				}
				Canonicalize(c)
				k := kc.key(c)
				lk := legacy(c)

				if prev, ok := byLegacy[lk]; ok && prev != k {
					t.Fatalf("seed %d mode %s: legacy key %q maps to two packed keys", seed, mode, lk)
				}
				byLegacy[lk] = k
				if prev, ok := byKey[k]; ok && prev != lk {
					t.Fatalf("seed %d mode %s: packed key of %q collides with %q", seed, mode, lk, prev)
				}
				byKey[k] = lk

				if got := kc.render(k); got != lk {
					t.Fatalf("seed %d mode %s: render = %q, legacy = %q", seed, mode, got, lk)
				}
				rk, err := kc.parse(kc.render(k))
				if err != nil {
					t.Fatalf("seed %d mode %s: parse: %v", seed, mode, err)
				}
				if rk != k {
					t.Fatalf("seed %d mode %s: parse(render) changed key of %q", seed, mode, lk)
				}

				tk := kc.tupleKey(c)
				if got := kc.renderTuple(tk); got != c.StateKey() {
					t.Fatalf("seed %d mode %s: renderTuple = %q, StateKey = %q", seed, mode, got, c.StateKey())
				}
				rtk, err := kc.parseTuple(kc.renderTuple(tk))
				if err != nil {
					t.Fatalf("seed %d mode %s: parseTuple: %v", seed, mode, err)
				}
				if rtk != tk {
					t.Fatalf("seed %d mode %s: parseTuple(renderTuple) changed key", seed, mode)
				}
			}
		}
	}
}

// TestPackedKeyFallbackLargeN checks the transparent fallback: above the
// packed cache limit the codec must still produce the legacy partition (it
// IS the legacy string in that regime).
func TestPackedKeyFallbackLargeN(t *testing.T) {
	p := protocols.Illinois()
	n := maxPackedCaches + 1
	for _, mode := range []string{ModeStrict, ModeCounting} {
		kc := newKeyCodec(p, n, mode)
		if kc.packed {
			t.Fatalf("codec must fall back for n=%d", n)
		}
		c := fsm.NewConfig(p, n)
		Canonicalize(c)
		k := kc.key(c)
		want := strictKey(c)
		if mode == ModeCounting {
			want = countingKey(c)
		}
		if kc.render(k) != want {
			t.Fatalf("fallback render = %q, want %q", kc.render(k), want)
		}
	}
}

// TestOldCheckpointVersionRejected pins the failure mode for checkpoints
// written by builds that keyed states with raw strings (version 1): both the
// decoder and the resume path must fail loudly, naming the found and the
// supported version, instead of misreading the old format.
func TestOldCheckpointVersionRejected(t *testing.T) {
	p := protocols.Illinois()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testItemHook = func(expanded int) {
		if expanded == 5 {
			cancel()
		}
	}
	partial, err := ExhaustiveContext(ctx, p, 4, Options{CheckpointOnStop: true})
	testItemHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if partial.Checkpoint == nil {
		t.Fatal("CheckpointOnStop run carries no checkpoint")
	}

	cp := *partial.Checkpoint
	cp.Version = 1

	if _, err := ResumeContext(context.Background(), p, &cp, Options{}); err == nil {
		t.Fatal("resume accepted a version-1 checkpoint")
	} else if !strings.Contains(err.Error(), "version 1") || !strings.Contains(err.Error(), "version 3") {
		t.Fatalf("resume error must name both versions, got: %v", err)
	}

	data, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(data); err == nil {
		t.Fatal("decoder accepted a version-1 checkpoint")
	} else if !strings.Contains(err.Error(), "version 1") || !strings.Contains(err.Error(), "version 3") {
		t.Fatalf("decode error must name both versions, got: %v", err)
	}
}
