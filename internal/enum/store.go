package enum

import (
	"fmt"

	"repro/internal/fsm"
	"repro/internal/stateset"
)

// visitedStore is the dedup + rank layer under the shared bfs state: an
// insert-only set of Keys where each key's rank is its admission order
// (the initial state is rank 0). Ranks are what provenance records and
// checkpoints reference, so states can be identified by a 4-byte index
// instead of a full Key.
//
// Reads (has/rank) are safe concurrently between mutations — the
// parallel workers dedup lock-free against the committed set during a
// level, exactly as they did against the old Go map.
type visitedStore interface {
	has(k Key) bool
	rank(k Key) (uint32, bool)
	// insert adds a key that must not be present and returns its rank.
	insert(k Key) uint32
	// size counts every key ever inserted, including spilled ones.
	size() int
	// resident counts keys currently held in memory.
	resident() int
	// bytes estimates the resident heap footprint.
	bytes() int64
	// forEach visits every resident key with its rank.
	forEach(f func(k Key, rank uint32))
	// spill serializes and drops all resident entries (nil when the
	// store does not support spilling or nothing is resident).
	spill() []byte
	// restore re-adds the entries of a blob produced by spill with
	// their original ranks, rolling back a failed spill write.
	restore(blob []byte) error
}

// parentRec is the provenance of one admitted state, indexed by its
// rank: the admission rank of the state it was first reached from, the
// acting cache, and the operation (an index into Protocol.Ops). 8 bytes
// per state, vs the old map[Key]parent's ~130.
type parentRec struct {
	parent uint32
	cache  uint16
	op     uint8
}

// noParent marks the initial state's record.
const noParent = ^uint32(0)

// parentRecBytes is the slice cost per provenance record.
const parentRecBytes = 8

// testForceLegacyStore, when set by tests, selects the map-backed
// fallback store even for packable runs, so the compact set can be
// property-tested against the legacy path on identical inputs.
var testForceLegacyStore = false

// newStores picks the visited and tuple store implementation for a run:
// the compact prefix-sharded set when the codec packs keys into
// fixed-width bytes, the map fallback otherwise (huge n or state
// alphabets, where keys carry heap strings a flat slab cannot hold).
func newStores(kc *keyCodec, n int) (visited, tuples visitedStore) {
	if kc.packed && !testForceLegacyStore {
		return newCompactStore(n), newCompactStore(n)
	}
	return newMapStore(), newMapStore()
}

// buildOpIndex maps each operation to its index in p.Ops for the uint8
// op field of parentRec.
func buildOpIndex(p *fsm.Protocol) (map[fsm.Op]uint8, error) {
	if len(p.Ops) > 256 {
		return nil, fmt.Errorf("enum: protocol has %d operations, provenance records support at most 256", len(p.Ops))
	}
	ix := make(map[fsm.Op]uint8, len(p.Ops))
	for i, op := range p.Ops {
		ix[op] = uint8(i)
	}
	return ix, nil
}

// packKeyBytes renders a packed Key into its width-(n+1) byte form for
// the compact store: the n per-cache bytes plus the reserved
// marker/memory byte. buf must have at least n+1 bytes.
func packKeyBytes(k Key, n int, buf []byte) []byte {
	copy(buf[:n], k.packed[:n])
	buf[n] = k.packed[maxPackedCaches]
	return buf[:n+1]
}

// unpackKeyBytes is the inverse of packKeyBytes.
func unpackKeyBytes(b []byte, n int) Key {
	var k Key
	copy(k.packed[:n], b[:n])
	k.packed[maxPackedCaches] = b[n]
	return k
}

// compactStore backs packed runs with the prefix-sharded sorted-run set
// of internal/stateset: n+5 bytes per resident state (key + rank)
// instead of a map entry's ~130, and Spill support for out-of-core
// runs.
type compactStore struct {
	set *stateset.Set
	n   int
}

func newCompactStore(n int) *compactStore {
	return &compactStore{set: stateset.New(n + 1), n: n}
}

func (cs *compactStore) has(k Key) bool {
	var buf [maxPackedCaches + 1]byte
	return cs.set.Has(packKeyBytes(k, cs.n, buf[:]))
}

func (cs *compactStore) rank(k Key) (uint32, bool) {
	var buf [maxPackedCaches + 1]byte
	return cs.set.Rank(packKeyBytes(k, cs.n, buf[:]))
}

func (cs *compactStore) insert(k Key) uint32 {
	var buf [maxPackedCaches + 1]byte
	return cs.set.Insert(packKeyBytes(k, cs.n, buf[:]))
}

func (cs *compactStore) size() int     { return cs.set.Len() }
func (cs *compactStore) resident() int { return cs.set.Resident() }
func (cs *compactStore) bytes() int64  { return cs.set.Bytes() }

func (cs *compactStore) forEach(f func(k Key, rank uint32)) {
	cs.set.ForEach(func(b []byte, r uint32) { f(unpackKeyBytes(b, cs.n), r) })
}

func (cs *compactStore) spill() []byte { return cs.set.Spill() }

func (cs *compactStore) restore(blob []byte) error { return cs.set.Restore(blob) }

// mapStore is the fallback for runs the codec cannot pack. Same
// interface, classic map + slice layout, no spill support.
type mapStore struct {
	ranks    map[Key]uint32
	keys     []Key
	strBytes int64
}

// mapEntryBytes approximates the heap cost of one mapStore entry: the
// 48-byte Key twice (map key and rank-index slice), the rank value and
// map bucket overhead.
const mapEntryBytes = 176

func newMapStore() *mapStore {
	return &mapStore{ranks: make(map[Key]uint32)}
}

func (ms *mapStore) has(k Key) bool {
	_, ok := ms.ranks[k]
	return ok
}

func (ms *mapStore) rank(k Key) (uint32, bool) {
	r, ok := ms.ranks[k]
	return r, ok
}

func (ms *mapStore) insert(k Key) uint32 {
	r := uint32(len(ms.keys))
	ms.ranks[k] = r
	ms.keys = append(ms.keys, k)
	ms.strBytes += int64(len(k.str))
	return r
}

func (ms *mapStore) size() int     { return len(ms.keys) }
func (ms *mapStore) resident() int { return len(ms.keys) }

func (ms *mapStore) bytes() int64 {
	return int64(len(ms.keys))*mapEntryBytes + ms.strBytes
}

func (ms *mapStore) forEach(f func(k Key, rank uint32)) {
	for r, k := range ms.keys {
		f(k, uint32(r))
	}
}

func (ms *mapStore) spill() []byte { return nil }

func (ms *mapStore) restore([]byte) error {
	return fmt.Errorf("enum: map-backed visited store cannot restore a spill blob")
}
