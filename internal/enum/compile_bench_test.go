package enum

import (
	"context"
	"testing"

	"repro/internal/protocols"
)

// benchFig2 runs the Figure 2 exhaustive enumeration of Illinois at n=7
// through the selected expansion path. The compiled/interpreted pair is
// published by CI (BENCH_PR10.json) so the jump-table speedup is tracked
// release over release.
func benchFig2(b *testing.B, interpreted bool) {
	useInterpretedExpand = interpreted
	defer func() { useInterpretedExpand = false }()
	p := protocols.Illinois()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ExhaustiveContext(context.Background(), p, 7, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) != 0 {
			b.Fatal("illinois must verify clean")
		}
	}
}

func BenchmarkEnumFig2Compiled(b *testing.B)    { benchFig2(b, false) }
func BenchmarkEnumFig2Interpreted(b *testing.B) { benchFig2(b, true) }
