package enum

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/protocols"
	"repro/internal/runctl"
)

// TestStaleSpillFilesSweptAtStartup: a budgeted run that failed or was
// killed leaves spill-*.bin files behind; because checkpoints are
// self-contained they are garbage, and a later run pointed at the same
// spill directory must remove them before writing its own (otherwise a
// long-lived spill directory accumulates dead files forever, and colliding
// sequence numbers could mix two runs' visited sets).
func TestStaleSpillFilesSweptAtStartup(t *testing.T) {
	dir := t.TempDir()
	stale := []string{"spill-visited-0003.bin", "spill-tuples-0003.bin"}
	for _, name := range stale {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk from a dead run"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A foreign file in the directory is none of our business.
	keep := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(keep, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := protocols.Synthetic(3)
	if err != nil {
		t.Fatal(err)
	}
	// A generous budget: the run arms out-of-core mode (which sweeps) but
	// never actually spills, keeping the test fast.
	if _, err := ExhaustiveParallel(p, 3, Options{
		Strict:    true,
		RunConfig: runctl.RunConfig{Budget: runctl.Budget{MaxBytes: 1 << 30}, SpillDir: dir},
	}, 2); err != nil {
		t.Fatal(err)
	}

	for _, name := range stale {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("stale %s survived startup", name)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("foreign file was swept: %v", err)
	}
}
