package enum

import (
	"runtime"
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
)

// TestStateBytesEstimate pins the stateBytes memory model against measured
// heap growth. The estimate drives the MaxBytes budget, so it must track what
// one admitted state actually costs: its Key in the visited, parents and
// tuples maps, the parent record, and a frontier configuration. The test
// builds exactly those structures for a large population of distinct
// configurations and requires the estimate to stay within a factor of two of
// the allocator's per-state cost in either direction.
func TestStateBytesEstimate(t *testing.T) {
	p := protocols.Illinois()
	const n = 7
	kc := newKeyCodec(p, n, ModeStrict)

	// Every base-|Q| digit string of length n is a distinct state tuple, so
	// both the full keys and the tuple keys are unique.
	q := len(p.States)
	m := 1
	for i := 0; i < n; i++ {
		m *= q
	}
	mk := func(i int) *fsm.Config {
		c := fsm.NewConfig(p, n)
		for j := 0; j < n; j++ {
			c.States[j] = p.States[i%q]
			i /= q
		}
		return c
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	visited := map[Key]bool{}
	parents := map[Key]parent{}
	tuples := map[Key]bool{}
	frontier := make([]*fsm.Config, 0, m)
	for i := 0; i < m; i++ {
		c := mk(i)
		k := kc.key(c)
		visited[k] = true
		parents[k] = parent{key: k, cache: i % n, op: fsm.OpRead}
		tuples[kc.tupleKey(c)] = true
		frontier = append(frontier, c)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	measured := float64(after.HeapAlloc-before.HeapAlloc) / float64(m)
	est := float64(stateBytes(n))
	if measured < est/2 || measured > est*2 {
		t.Fatalf("stateBytes(%d) = %.0f but measured %.1f B/state over %d states; estimate off by more than 2x",
			n, est, measured, m)
	}
	t.Logf("stateBytes(%d) = %.0f, measured %.1f B/state", n, est, measured)
	runtime.KeepAlive(visited)
	runtime.KeepAlive(parents)
	runtime.KeepAlive(tuples)
	runtime.KeepAlive(frontier)
}
