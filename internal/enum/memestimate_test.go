package enum

import (
	"runtime"
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
)

// TestStateBytesEstimate pins the estBytes memory model against measured
// heap growth. The estimate drives the MaxBytes budget (and the spill
// threshold of out-of-core runs), so it must track what one admitted
// state actually costs under the compact store: its packed key in the
// visited and tuple sets, its provenance record, and a frontier
// configuration. The test builds exactly the structures estBytes sums —
// for a large population of distinct configurations — and requires the
// estimate to stay within a factor of two of the allocator's per-state
// cost in either direction.
func TestStateBytesEstimate(t *testing.T) {
	p := protocols.Illinois()
	const n = 7
	kc := newKeyCodec(p, n, ModeStrict)
	if !kc.packed {
		t.Fatal("illinois n=7 must use the packed codec")
	}

	// Every base-|Q| digit string of length n is a distinct state tuple, so
	// both the full keys and the tuple keys are unique.
	q := len(p.States)
	m := 1
	for i := 0; i < n; i++ {
		m *= q
	}
	mk := func(i int) *fsm.Config {
		c := fsm.NewConfig(p, n)
		for j := 0; j < n; j++ {
			c.States[j] = p.States[i%q]
			i /= q
		}
		return c
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	visited, tuples := newStores(kc, n)
	parents := make([]parentRec, 0, m)
	frontier := make([]*fsm.Config, 0, m)
	for i := 0; i < m; i++ {
		c := mk(i)
		r := visited.insert(kc.key(c))
		parents = append(parents, parentRec{parent: r, cache: uint16(i % n), op: 0})
		if tk := kc.tupleKey(c); !tuples.has(tk) {
			tuples.insert(tk)
		}
		frontier = append(frontier, c)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	measured := float64(after.HeapAlloc-before.HeapAlloc) / float64(m)
	est := float64(visited.bytes()+tuples.bytes()+
		int64(cap(parents))*parentRecBytes+
		int64(len(frontier))*cfgBytes(n)) / float64(m)
	if measured < est/2 || measured > est*2 {
		t.Fatalf("estBytes model says %.1f B/state but measured %.1f B/state over %d states; estimate off by more than 2x",
			est, measured, m)
	}
	t.Logf("estBytes model %.1f B/state, measured %.1f B/state over %d states", est, measured, m)
	runtime.KeepAlive(visited)
	runtime.KeepAlive(parents)
	runtime.KeepAlive(tuples)
	runtime.KeepAlive(frontier)
}

// TestCompactVisitedSetFootprint pins the headline of the compact store:
// at least 4× fewer resident bytes per state than the seed's map-based
// model (24n+560 for visited+parents+tuples+frontier bookkeeping, of
// which the three map entries were ~3×(48+overhead) ≈ 430 bytes at n=7).
// The compact layout stores n+5 bytes per visited entry plus 8 bytes of
// provenance, so the ratio is enormous; the test guards the 4× floor
// with real heap measurements rather than the model.
func TestCompactVisitedSetFootprint(t *testing.T) {
	p := protocols.Illinois()
	const n = 7
	kc := newKeyCodec(p, n, ModeStrict)
	q := len(p.States)
	m := 1
	for i := 0; i < n; i++ {
		m *= q
	}
	keys := make([]Key, 0, m)
	mk := func(i int) Key {
		c := fsm.NewConfig(p, n)
		for j := 0; j < n; j++ {
			c.States[j] = p.States[i%q]
			i /= q
		}
		return kc.key(c)
	}
	for i := 0; i < m; i++ {
		keys = append(keys, mk(i))
	}

	// Both structures are built in sequence and held alive together, so
	// each delta measures only its own build (no interleaved frees). The
	// doubled GC drains sync.Pool victim caches left by earlier tests,
	// which otherwise release memory mid-measurement.
	gc2 := func() { runtime.GC(); runtime.GC() }
	var m0, m1, m2 runtime.MemStats
	gc2()
	runtime.ReadMemStats(&m0)
	legacyVis := make(map[Key]bool)
	legacyPar := make(map[Key]parentRec)
	for _, k := range keys {
		legacyVis[k] = true
		legacyPar[k] = parentRec{}
	}
	gc2()
	runtime.ReadMemStats(&m1)
	cs := newCompactStore(n)
	compactPar := make([]parentRec, 0, m)
	for _, k := range keys {
		compactPar = append(compactPar, parentRec{parent: cs.insert(k)})
	}
	gc2()
	runtime.ReadMemStats(&m2)

	legacy := float64(int64(m1.HeapAlloc)-int64(m0.HeapAlloc)) / float64(m)
	compact := float64(int64(m2.HeapAlloc)-int64(m1.HeapAlloc)) / float64(m)
	runtime.KeepAlive(keys) // dies after the compact loop otherwise, skewing m2
	runtime.KeepAlive(legacyVis)
	runtime.KeepAlive(legacyPar)
	runtime.KeepAlive(cs)
	runtime.KeepAlive(compactPar)
	if compact <= 0 {
		t.Fatalf("implausible compact measurement: %.1f B/state", compact)
	}
	ratio := legacy / compact
	t.Logf("visited-set footprint: legacy map %.1f B/state, compact %.1f B/state (%.1fx)", legacy, compact, ratio)
	if ratio < 4 {
		t.Fatalf("compact visited set saves only %.1fx over the map path, want >= 4x", ratio)
	}
}
