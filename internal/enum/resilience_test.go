package enum

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/protocols"
	"repro/internal/runctl"
)

// sameCounts asserts the count triple that defines observational equality of
// two enumeration runs.
func sameCounts(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if got.Unique != want.Unique || got.Visits != want.Visits || got.TupleStates != want.TupleStates {
		t.Fatalf("%s: unique/visits/tuples = %d/%d/%d, want %d/%d/%d", label,
			got.Unique, got.Visits, got.TupleStates,
			want.Unique, want.Visits, want.TupleStates)
	}
	if len(got.Violations) != len(want.Violations) {
		t.Fatalf("%s: %d violations, want %d", label, len(got.Violations), len(want.Violations))
	}
}

func TestSequentialCancelReturnsPartialResult(t *testing.T) {
	p := protocols.Illinois()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testItemHook = func(expanded int) {
		if expanded == 5 {
			cancel()
		}
	}
	defer func() { testItemHook = nil }()

	res, err := ExhaustiveContext(ctx, p, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("canceled run must be Truncated")
	}
	if !errors.Is(res.StopReason, runctl.ErrCanceled) {
		t.Fatalf("StopReason = %v, want ErrCanceled", res.StopReason)
	}
	full, err := Exhaustive(p, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unique <= 0 || res.Unique >= full.Unique {
		t.Fatalf("partial Unique = %d, want in (0, %d)", res.Unique, full.Unique)
	}
}

func TestSequentialDeadlineStop(t *testing.T) {
	p := protocols.Illinois()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := ExhaustiveContext(ctx, p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrDeadline) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrDeadline", res.Truncated, res.StopReason)
	}
}

func TestBudgetDeadlineStop(t *testing.T) {
	p := protocols.Illinois()
	res, err := Exhaustive(p, 3, Options{
		Budget: runctl.Budget{Deadline: time.Now().Add(-time.Minute)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrDeadline) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrDeadline", res.Truncated, res.StopReason)
	}
}

func TestMemBudgetStop(t *testing.T) {
	p := protocols.Illinois()
	res, err := Exhaustive(p, 5, Options{
		Budget: runctl.Budget{MaxBytes: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrMemBudget) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrMemBudget", res.Truncated, res.StopReason)
	}
	full, err := Exhaustive(p, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unique >= full.Unique {
		t.Fatalf("mem-budgeted run explored %d states, full run %d", res.Unique, full.Unique)
	}
}

func TestBudgetMaxStatesSetsStopReason(t *testing.T) {
	p := protocols.Illinois()
	res, err := Exhaustive(p, 6, Options{Budget: runctl.Budget{MaxStates: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrStateBudget) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrStateBudget", res.Truncated, res.StopReason)
	}
	if res.Unique > 10 {
		t.Fatalf("state budget exceeded: %d > 10", res.Unique)
	}
	if res.Checkpoint != nil {
		t.Fatal("exact state-cap stop must not carry a checkpoint")
	}
}

// TestParallelCancelMidLevel cancels the parallel BFS at a level boundary
// and asserts the partial result is prefix-consistent: it contains whole
// levels only, so the counts are deterministic and identical across worker
// pool sizes.
func TestParallelCancelMidLevel(t *testing.T) {
	p := protocols.Illinois()
	const cancelLevel = 2
	runCanceled := func(workers int) *Result {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		testLevelHook = func(level int) {
			if level == cancelLevel {
				cancel()
			}
		}
		defer func() { testLevelHook = nil }()
		res, err := ExhaustiveParallelContext(ctx, p, 5, Options{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	one := runCanceled(1)
	four := runCanceled(4)
	if !one.Truncated || !errors.Is(one.StopReason, runctl.ErrCanceled) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrCanceled", one.Truncated, one.StopReason)
	}
	// No half-merged level: the same levels were merged regardless of the
	// worker count, so the partial counts agree exactly.
	sameCounts(t, four, one, "workers=4 vs workers=1")

	full, err := Exhaustive(p, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Unique <= 1 || one.Unique >= full.Unique {
		t.Fatalf("partial Unique = %d, want in (1, %d)", one.Unique, full.Unique)
	}
}

// TestWorkerPanicRecovered injects a panic into one parallel worker and
// asserts the run degrades gracefully: the panic is reported as a structured
// WorkerError and the results stay bit-for-bit identical to Exhaustive.
func TestWorkerPanicRecovered(t *testing.T) {
	p := protocols.Illinois()
	testWorkerHook = func(level, worker int) {
		if level == 2 && worker == 0 {
			panic("injected fault")
		}
	}
	defer func() { testWorkerHook = nil }()

	par, err := ExhaustiveParallel(p, 4, Options{KeepReachable: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Exhaustive(p, 4, Options{KeepReachable: true})
	if err != nil {
		t.Fatal(err)
	}

	if len(par.WorkerErrors) == 0 {
		t.Fatal("injected panic was not recorded as a WorkerError")
	}
	we := par.WorkerErrors[0]
	if we.Level != 2 || we.Worker != 0 {
		t.Fatalf("WorkerError at level %d worker %d, want 2/0", we.Level, we.Worker)
	}
	if we.Value != "injected fault" || we.Stack == "" {
		t.Fatalf("WorkerError value %q stack %d bytes", we.Value, len(we.Stack))
	}
	if len(par.SpecErrors) != 0 {
		t.Fatalf("sequential retry must absorb the panic, got SpecErrors %v", par.SpecErrors)
	}

	sameCounts(t, par, seq, "panicked parallel vs sequential")
	if par.Truncated {
		t.Fatal("recovered run must not be Truncated")
	}
	// Bit-for-bit: same distinct states in both runs.
	keys := func(r *Result) map[string]bool {
		m := make(map[string]bool, len(r.Reachable))
		for _, c := range r.Reachable {
			m[c.Key()] = true
		}
		return m
	}
	if !reflect.DeepEqual(keys(par), keys(seq)) {
		t.Fatal("recovered parallel run reached a different state set than Exhaustive")
	}
}

// TestWorkerPanicEveryLevel stresses the recovery path: a worker panics on
// every level and the run still completes with sequential-identical counts.
func TestWorkerPanicEveryLevel(t *testing.T) {
	p := protocols.Illinois()
	testWorkerHook = func(level, worker int) {
		if worker == 1 {
			panic(fmt.Sprintf("fault at level %d", level))
		}
	}
	defer func() { testWorkerHook = nil }()

	par, err := ExhaustiveParallel(p, 3, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Exhaustive(p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameCounts(t, par, seq, "repeated panics vs sequential")
	if len(par.WorkerErrors) == 0 || len(par.SpecErrors) != 0 {
		t.Fatalf("worker errors %d, spec errors %v", len(par.WorkerErrors), par.SpecErrors)
	}
}

// TestCheckpointResumeSequential interrupts a sequential run, resumes it
// from the checkpoint, and asserts the final counts match an uninterrupted
// run exactly.
func TestCheckpointResumeSequential(t *testing.T) {
	p := protocols.Illinois()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testItemHook = func(expanded int) {
		if expanded == 7 {
			cancel()
		}
	}
	partial, err := ExhaustiveContext(ctx, p, 4, Options{CheckpointOnStop: true})
	testItemHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if partial.Checkpoint == nil {
		t.Fatal("CheckpointOnStop run carries no checkpoint")
	}

	resumed, err := ResumeContext(context.Background(), p, partial.Checkpoint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Truncated {
		t.Fatal("resumed run must complete")
	}
	full, err := Exhaustive(p, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameCounts(t, resumed, full, "resumed vs uninterrupted")
}

// TestCheckpointResumeParallel interrupts the parallel engine at a level
// boundary and resumes with both engines; each must reach the
// uninterrupted counts.
func TestCheckpointResumeParallel(t *testing.T) {
	p := protocols.MOESI()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testLevelHook = func(level int) {
		if level == 2 {
			cancel()
		}
	}
	partial, err := CountingParallelContext(ctx, p, 4, Options{CheckpointOnStop: true}, 4)
	testLevelHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if partial.Checkpoint == nil {
		t.Fatal("no checkpoint on stop")
	}
	if partial.Checkpoint.Mode != ModeCounting {
		t.Fatalf("checkpoint mode %q, want counting", partial.Checkpoint.Mode)
	}

	full, err := Counting(p, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := ResumeContext(context.Background(), p, partial.Checkpoint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameCounts(t, seqRes, full, "parallel checkpoint resumed sequentially")
	parRes, err := ResumeParallelContext(context.Background(), p, partial.Checkpoint, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameCounts(t, parRes, full, "parallel checkpoint resumed in parallel")
}

// TestPeriodicCheckpointResume drives the OnCheckpoint hook and resumes
// from the last periodic snapshot.
func TestPeriodicCheckpointResume(t *testing.T) {
	p := protocols.Illinois()
	var last *Checkpoint
	count := 0
	res, err := Exhaustive(p, 3, Options{
		CheckpointEvery: 5,
		OnCheckpoint: func(cp *Checkpoint) error {
			last = cp
			count++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 || last == nil {
		t.Fatal("periodic checkpoints never fired")
	}
	resumed, err := ResumeContext(context.Background(), p, last, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameCounts(t, resumed, res, "resume from periodic checkpoint")
}

func TestOnCheckpointErrorAborts(t *testing.T) {
	p := protocols.Illinois()
	boom := errors.New("sink failed")
	_, err := Exhaustive(p, 3, Options{
		CheckpointEvery: 1,
		OnCheckpoint:    func(*Checkpoint) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink error", err)
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	p := protocols.Illinois()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testItemHook = func(expanded int) {
		if expanded == 4 {
			cancel()
		}
	}
	partial, err := ExhaustiveContext(ctx, p, 3, Options{CheckpointOnStop: true})
	testItemHook = nil
	if err != nil {
		t.Fatal(err)
	}
	cp := partial.Checkpoint
	if cp == nil {
		t.Fatal("no checkpoint")
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, loaded) {
		t.Fatal("checkpoint did not survive the file round trip")
	}
	// Saving twice over the same path must succeed (atomic replace).
	if err := SaveCheckpoint(path, loaded); err != nil {
		t.Fatal(err)
	}
}

func TestResumeValidation(t *testing.T) {
	p := protocols.Illinois()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testItemHook = func(expanded int) {
		if expanded == 3 {
			cancel()
		}
	}
	partial, err := ExhaustiveContext(ctx, p, 3, Options{CheckpointOnStop: true})
	testItemHook = nil
	if err != nil {
		t.Fatal(err)
	}
	good := partial.Checkpoint

	cases := []struct {
		name   string
		mutate func(cp *Checkpoint)
	}{
		{"wrong version", func(cp *Checkpoint) { cp.Version = 99 }},
		{"wrong protocol", func(cp *Checkpoint) { cp.Protocol = "other" }},
		{"bad cache count", func(cp *Checkpoint) { cp.N = 0 }},
		{"unknown mode", func(cp *Checkpoint) { cp.Mode = "fancy" }},
		{"unknown state", func(cp *Checkpoint) { cp.Frontier[0].States[0] = "Bogus" }},
		{"torn config", func(cp *Checkpoint) { cp.Frontier[0].Versions = cp.Frontier[0].Versions[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := good.Encode()
			if err != nil {
				t.Fatal(err)
			}
			cp, err := DecodeCheckpoint(data)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(cp)
			if _, err := ResumeContext(context.Background(), p, cp, Options{}); err == nil {
				t.Fatal("corrupted checkpoint was accepted")
			}
		})
	}
}

func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	if _, err := DecodeCheckpoint([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeCheckpoint([]byte(`{"version": 42}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
}
