package enum

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/ckptio"
	"repro/internal/fsm"
)

// CheckpointVersion is the format version of serialized checkpoints;
// Decode rejects other versions.
//
// Version history:
//   - 1: string-keyed engine state (pre packed keys).
//   - 2: the engines key states by packed Keys; checkpoints render them
//     back to the version-1 canonical strings on save (snapshots stay
//     human-debuggable JSON) but the accepted key grammar is validated on
//     resume, so version-1 files are rejected rather than reinterpreted.
//   - 3: rank-ordered state lists (compact visited set): Visited[i] is the
//     state admitted at rank i and Parents[i] its provenance, with the
//     parent referenced by rank instead of by key string. Version-2 files
//     stored Visited sorted and Parents as a key-to-key map, so they are
//     rejected rather than reinterpreted.
const CheckpointVersion = 3

// Checkpoint is a resumable snapshot of an enumeration run, taken at a
// worklist/level boundary: every state is either fully expanded (in
// Visited with its provenance in Parents) or waiting on the Frontier, so a
// resumed run reaches exactly the counts an uninterrupted run would. The
// JSON encoding is stable and deterministic (Visited in admission-rank
// order, Tuples sorted) so checkpoints can be diffed and tested
// byte-for-byte.
type Checkpoint struct {
	Version  int    `json:"version"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	// Mode is ModeStrict or ModeCounting; a resumed run re-selects the
	// interrupted run's equivalence from it.
	Mode   string `json:"mode"`
	Strict bool   `json:"strict"`
	Visits int    `json:"visits"`

	// Visited[i] is the canonical key of the state admitted at rank i;
	// Parents[i] is its provenance. A resumed run re-inserts the list in
	// order, reproducing the interrupted run's ranks exactly (including
	// the ranks of states sitting in spill files when the snapshot was
	// taken — the snapshot folds them back in, so a resumed run starts
	// fully resident).
	Visited  []string      `json:"visited"`
	Tuples   []string      `json:"tuples"`
	Parents  []ParentState `json:"parents"`
	Frontier []ConfigState `json:"frontier"`

	Reachable  []ConfigState    `json:"reachable,omitempty"`
	Violations []ViolationState `json:"violations,omitempty"`
	SpecErrors []string         `json:"spec_errors,omitempty"`
}

// ConfigState is the serialized form of one concrete configuration.
type ConfigState struct {
	States   []string `json:"states"`
	Versions []int64  `json:"versions"`
	Mem      int64    `json:"mem"`
	Latest   int64    `json:"latest"`
}

// ParentState is one provenance record: how the state at its rank was
// first reached. Parent is the admission rank of the predecessor state
// (-1 for the initial state, whose Cache and Op are meaningless and
// omitted).
type ParentState struct {
	Parent int    `json:"parent"`
	Cache  int    `json:"cache,omitempty"`
	Op     string `json:"op,omitempty"`
}

// ViolationState is one recorded violation with its witness path.
type ViolationState struct {
	Config     ConfigState       `json:"config"`
	Violations []ViolationDetail `json:"violations"`
	Path       []PathState       `json:"path,omitempty"`
}

// ViolationDetail is one fsm.Violation.
type ViolationDetail struct {
	Kind   int    `json:"kind"`
	Detail string `json:"detail"`
}

// PathState is one witness path step.
type PathState struct {
	Cache int    `json:"cache"`
	Op    string `json:"op"`
	To    string `json:"to"`
}

func configState(c *fsm.Config) ConfigState {
	cs := ConfigState{
		States:   make([]string, len(c.States)),
		Versions: append([]int64(nil), c.Versions...),
		Mem:      c.MemVersion,
		Latest:   c.Latest,
	}
	for i, s := range c.States {
		cs.States[i] = string(s)
	}
	return cs
}

func (cs ConfigState) config() (*fsm.Config, error) {
	if len(cs.States) != len(cs.Versions) {
		return nil, fmt.Errorf("enum: checkpoint config has %d states but %d versions", len(cs.States), len(cs.Versions))
	}
	c := &fsm.Config{
		States:     make([]fsm.State, len(cs.States)),
		Versions:   append([]int64(nil), cs.Versions...),
		MemVersion: cs.Mem,
		Latest:     cs.Latest,
	}
	for i, s := range cs.States {
		c.States[i] = fsm.State(s)
	}
	return c, nil
}

// snapshot captures the run at a clean boundary; frontier lists the
// admitted-but-unexpanded states. An out-of-core run's spilled entries
// are folded back in (rank order makes the merge trivial: every rank
// indexes its slot), so the snapshot is self-contained and resuming it
// needs no spill files.
func (b *bfs) snapshot(frontier []*fsm.Config) (*Checkpoint, error) {
	cp := &Checkpoint{
		Version:  CheckpointVersion,
		Protocol: b.p.Name,
		N:        b.n,
		Mode:     b.mode,
		Strict:   b.opts.Strict,
		Visits:   b.res.Visits,
		Visited:  make([]string, b.visited.size()),
		Tuples:   make([]string, 0, b.tuples.size()),
		Parents:  make([]ParentState, len(b.parents)),
		Frontier: make([]ConfigState, len(frontier)),
	}
	fillVisited := func(k Key, r uint32) { cp.Visited[r] = b.kc.render(k) }
	b.visited.forEach(fillVisited)
	addTuple := func(k Key, _ uint32) { cp.Tuples = append(cp.Tuples, b.kc.renderTuple(k)) }
	b.tuples.forEach(addTuple)
	if b.spill != nil {
		if err := b.forEachSpilled(b.spill.visitedFiles, fillVisited); err != nil {
			return nil, err
		}
		if err := b.forEachSpilled(b.spill.tupleFiles, addTuple); err != nil {
			return nil, err
		}
	}
	sort.Strings(cp.Tuples)
	for i, rec := range b.parents {
		if rec.parent == noParent {
			cp.Parents[i] = ParentState{Parent: -1}
			continue
		}
		cp.Parents[i] = ParentState{
			Parent: int(rec.parent),
			Cache:  int(rec.cache),
			Op:     string(b.p.Ops[rec.op]),
		}
	}
	for i, c := range frontier {
		cp.Frontier[i] = configState(c)
	}
	for _, rc := range b.res.Reachable {
		cp.Reachable = append(cp.Reachable, configState(rc))
	}
	for _, v := range b.res.Violations {
		vs := ViolationState{Config: configState(v.Config)}
		for _, d := range v.Violations {
			vs.Violations = append(vs.Violations, ViolationDetail{Kind: int(d.Kind), Detail: d.Detail})
		}
		for _, ps := range v.Path {
			vs.Path = append(vs.Path, PathState{Cache: ps.Cache, Op: string(ps.Op), To: ps.To})
		}
		cp.Violations = append(cp.Violations, vs)
	}
	for _, e := range b.res.SpecErrors {
		cp.SpecErrors = append(cp.SpecErrors, e.Error())
	}
	return cp, nil
}

// Encode renders the checkpoint as indented, deterministic JSON.
func (cp *Checkpoint) Encode() ([]byte, error) {
	return json.MarshalIndent(cp, "", " ")
}

// DecodeCheckpoint parses and version-checks a serialized checkpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("enum: decoding checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("enum: unsupported checkpoint version %d (this build reads version %d; checkpoints from older builds cannot be resumed — re-run the enumeration)", cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// SaveCheckpoint writes the checkpoint through the durable snapshot store
// (internal/ckptio): checksummed envelope, atomic temp-file + rename with
// fsync. A crash during the write can never leave a torn checkpoint
// behind, and a later bit flip is detected on load instead of being fed to
// the decoder. Callers wanting rotation across several good snapshots use
// a ckptio.Store with Keep > 1 around Encode/DecodeCheckpoint directly
// (as cmd/ccenum and internal/campaign do).
func SaveCheckpoint(path string, cp *Checkpoint) error {
	data, err := cp.Encode()
	if err != nil {
		return err
	}
	return (&ckptio.Store{Path: path, Keep: 1}).Save(data)
}

// LoadCheckpoint reads, validates and decodes a checkpoint file, accepting
// both enveloped snapshots and bare pre-envelope JSON files.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, _, err := (&ckptio.Store{Path: path, Keep: 1}).Load()
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data)
}

// ResumeContext continues an interrupted sequential enumeration from a
// checkpoint. The run's mode, cache count and strictness come from the
// checkpoint (opts.Strict is ignored); budgets, KeepReachable and the
// checkpoint options come from opts. An uninterrupted run and an
// interrupted-then-resumed run reach identical state counts.
func ResumeContext(ctx context.Context, p *fsm.Protocol, cp *Checkpoint, opts Options) (*Result, error) {
	b, frontier, err := resumeBFS(p, cp, opts)
	if err != nil {
		return nil, err
	}
	return b.runSeq(ctx, frontier)
}

// ResumeParallelContext continues an interrupted enumeration with the
// level-synchronous parallel engine. Checkpoints from either engine are
// accepted: the frontier is simply treated as the first level.
func ResumeParallelContext(ctx context.Context, p *fsm.Protocol, cp *Checkpoint, opts Options, workers int) (*Result, error) {
	b, frontier, err := resumeBFS(p, cp, opts)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = b.rc.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return b.runPar(ctx, frontier, workers)
}

// resumeBFS rebuilds the shared run state from a checkpoint.
func resumeBFS(p *fsm.Protocol, cp *Checkpoint, opts Options) (*bfs, []*fsm.Config, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if cp.Version != CheckpointVersion {
		return nil, nil, fmt.Errorf("enum: unsupported checkpoint version %d (this build reads version %d; checkpoints from older builds cannot be resumed — re-run the enumeration)", cp.Version, CheckpointVersion)
	}
	if cp.Protocol != p.Name {
		return nil, nil, fmt.Errorf("enum: checkpoint is for protocol %q, not %q", cp.Protocol, p.Name)
	}
	if cp.N < 1 {
		return nil, nil, fmt.Errorf("enum: checkpoint has invalid cache count %d", cp.N)
	}
	if err := validMode(cp.Mode); err != nil {
		return nil, nil, err
	}
	known := make(map[fsm.State]bool, len(p.States))
	for _, s := range p.States {
		known[s] = true
	}
	restoreConfig := func(cs ConfigState, what string) (*fsm.Config, error) {
		c, err := cs.config()
		if err != nil {
			return nil, err
		}
		if len(c.States) != cp.N {
			return nil, fmt.Errorf("enum: checkpoint %s config has %d caches, want %d", what, len(c.States), cp.N)
		}
		for _, s := range c.States {
			if !known[s] {
				return nil, fmt.Errorf("enum: checkpoint %s config references unknown state %q", what, s)
			}
		}
		return c, nil
	}

	if cp.N > 1<<16-1 {
		return nil, nil, fmt.Errorf("enum: checkpoint cache count %d exceeds the provenance-record limit %d", cp.N, 1<<16-1)
	}
	if len(cp.Parents) != len(cp.Visited) {
		return nil, nil, fmt.Errorf("enum: checkpoint has %d visited states but %d provenance records", len(cp.Visited), len(cp.Parents))
	}
	opts.Strict = cp.Strict
	rc := opts.runCtl()
	maxStates := rc.Budget.MaxStates
	if maxStates <= 0 {
		maxStates = opts.MaxStates
	}
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	opIx, err := buildOpIndex(p)
	if err != nil {
		return nil, nil, err
	}
	b := &bfs{
		p: p, n: cp.N, opts: opts, rc: rc, kc: newKeyCodec(p, cp.N, cp.Mode), mode: cp.Mode,
		orun:      rc.Sink().Run("enum-"+cp.Mode, p.Name),
		symmetric: cp.Mode == ModeCounting,
		maxStates: maxStates,
		opIx:      opIx,
		parents:   make([]parentRec, 0, len(cp.Parents)),
		res:       &Result{Protocol: p, N: cp.N, Visits: cp.Visits},
	}
	b.visited, b.tuples = newStores(b.kc, cp.N)
	// Re-inserting Visited in order reproduces the interrupted run's
	// admission ranks, which the provenance records reference. Every
	// record is validated (parent rank below its own, known op, cache in
	// range) so a corrupted file fails here instead of corrupting a run.
	for i, s := range cp.Visited {
		k, err := b.kc.parse(s)
		if err != nil {
			return nil, nil, err
		}
		if b.visited.has(k) {
			return nil, nil, fmt.Errorf("enum: checkpoint visited list repeats key %q", s)
		}
		b.visited.insert(k)
		ps := cp.Parents[i]
		if ps.Parent == -1 {
			b.parents = append(b.parents, parentRec{parent: noParent})
			continue
		}
		if ps.Parent < 0 || ps.Parent >= i {
			return nil, nil, fmt.Errorf("enum: checkpoint provenance %d has parent rank %d (want -1..%d)", i, ps.Parent, i-1)
		}
		if ps.Cache < 0 || ps.Cache >= cp.N {
			return nil, nil, fmt.Errorf("enum: checkpoint provenance %d has cache %d (want 0..%d)", i, ps.Cache, cp.N-1)
		}
		opi, ok := b.opIx[fsm.Op(ps.Op)]
		if !ok {
			return nil, nil, fmt.Errorf("enum: checkpoint provenance %d references unknown operation %q", i, ps.Op)
		}
		b.parents = append(b.parents, parentRec{parent: uint32(ps.Parent), cache: uint16(ps.Cache), op: opi})
	}
	for _, s := range cp.Tuples {
		k, err := b.kc.parseTuple(s)
		if err != nil {
			return nil, nil, err
		}
		if !b.tuples.has(k) {
			b.tuples.insert(k)
		}
	}
	frontier := make([]*fsm.Config, len(cp.Frontier))
	for i, cs := range cp.Frontier {
		c, err := restoreConfig(cs, "frontier")
		if err != nil {
			return nil, nil, err
		}
		if !b.visited.has(b.kc.key(c)) {
			return nil, nil, fmt.Errorf("enum: checkpoint frontier state %q not in visited set", b.kc.render(b.kc.key(c)))
		}
		frontier[i] = c
	}
	b.frontierLen = len(frontier)
	b.bytes = b.estBytes()
	for _, cs := range cp.Reachable {
		c, err := restoreConfig(cs, "reachable")
		if err != nil {
			return nil, nil, err
		}
		b.res.Reachable = append(b.res.Reachable, c)
	}
	for _, vs := range cp.Violations {
		c, err := restoreConfig(vs.Config, "violation")
		if err != nil {
			return nil, nil, err
		}
		v := Violation{Config: c}
		for _, d := range vs.Violations {
			v.Violations = append(v.Violations, fsm.Violation{Kind: fsm.ViolationKind(d.Kind), Detail: d.Detail})
		}
		for _, ps := range vs.Path {
			v.Path = append(v.Path, PathStep{Cache: ps.Cache, Op: fsm.Op(ps.Op), To: ps.To})
		}
		b.res.Violations = append(b.res.Violations, v)
	}
	for _, s := range cp.SpecErrors {
		b.res.SpecErrors = append(b.res.SpecErrors, fmt.Errorf("%s", s))
	}
	return b, frontier, nil
}
