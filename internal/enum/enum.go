package enum

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/runctl"
)

// Canonical data markers. Explicit-state enumeration would not terminate
// over ever-growing store version numbers, so after every step the versions
// are renamed onto the paper's abstract data domain: the latest version
// becomes canonFresh, every older version becomes canonObsolete, and
// fsm.NoData is kept. This is exactly the context-variable domain of
// Definition 4 and preserves the stale-read check (version == Latest).
const (
	canonFresh    int64 = 0
	canonObsolete int64 = -2
)

// Canonicalize rewrites the configuration's versions onto the abstract data
// domain, in place. Afterwards c.Latest == canonFresh.
func Canonicalize(c *fsm.Config) {
	ren := func(v int64) int64 {
		switch {
		case v == fsm.NoData:
			return fsm.NoData
		case v == c.Latest:
			return canonFresh
		default:
			return canonObsolete
		}
	}
	for i := range c.Versions {
		c.Versions[i] = ren(c.Versions[i])
	}
	c.MemVersion = ren(c.MemVersion)
	c.Latest = canonFresh
}

// Options tune an enumeration run. Run control (budgets, checkpoint
// cadence, parallelism defaults, observability) lives in the embedded
// runctl.RunConfig, shared with symbolic.Options:
//
//	enum.Options{RunConfig: runctl.RunConfig{Budget: b, Metrics: reg}}
//
// Cancellation, the deadline and the memory budget are checked at
// worklist-item granularity by the sequential engine and at level
// granularity by the parallel engine, so a stopped run always ends at a
// clean boundary and its partial Result (and checkpoint) covers whole
// expansion steps only.
type Options struct {
	runctl.RunConfig

	// MaxStates bounds the number of distinct states explored (0: 5_000_000).
	// RunConfig.Budget.MaxStates, when set, takes precedence. Unlike the
	// other budgets, the state cap is enforced per admitted state, so
	// Unique never exceeds it; a run stopped this way carries no
	// checkpoint.
	MaxStates int
	// KeepReachable retains every distinct canonical configuration in the
	// result, for cross-validation against the symbolic essential states.
	KeepReachable bool
	// Strict enables the CleanShared extension check.
	Strict bool
	// StopOnViolation aborts at the first erroneous state.
	StopOnViolation bool

	// OnCheckpoint receives the periodic snapshots requested by
	// RunConfig.CheckpointEvery (every that many expanded states for the
	// sequential engine, frontier states for the parallel one); a non-nil
	// return aborts the run with that error. It stays outside RunConfig
	// because the checkpoint type is engine-specific.
	OnCheckpoint func(*Checkpoint) error

	// Budget bounds the run.
	//
	// Deprecated: set RunConfig.Budget instead. This alias shadows the
	// embedded field, is honored when non-zero, and will be removed in the
	// next release.
	Budget runctl.Budget
	// CheckpointOnStop captures a resumable snapshot into Result.Checkpoint
	// when the run is stopped early at a clean boundary.
	//
	// Deprecated: set RunConfig.CheckpointOnStop instead. Honored when
	// true; removed in the next release.
	CheckpointOnStop bool
	// CheckpointEvery is the periodic snapshot cadence.
	//
	// Deprecated: set RunConfig.CheckpointEvery instead. Honored when
	// positive; removed in the next release.
	CheckpointEvery int
}

// runCtl resolves the effective run configuration: the embedded RunConfig,
// overridden by any of the deprecated top-level aliases that are set.
func (o Options) runCtl() runctl.RunConfig {
	rc := o.RunConfig
	if o.Budget != (runctl.Budget{}) {
		rc.Budget = o.Budget
	}
	if o.CheckpointOnStop {
		rc.CheckpointOnStop = true
	}
	if o.CheckpointEvery > 0 {
		rc.CheckpointEvery = o.CheckpointEvery
	}
	return rc
}

const defaultMaxStates = 5000000

// PathStep is one hop of a concrete witness path.
type PathStep struct {
	Cache int
	Op    fsm.Op
	To    string // canonical key of the state reached
}

// Violation pairs an erroneous concrete state with its violations and a
// witness path from the initial configuration.
type Violation struct {
	Config     *fsm.Config
	Violations []fsm.Violation
	Path       []PathStep
}

// Result reports an enumeration run.
type Result struct {
	// Protocol and N identify the run.
	Protocol *fsm.Protocol
	N        int
	// Unique counts distinct states explored under the run's equivalence
	// (strict tuples for Exhaustive, multisets for Counting).
	Unique int
	// Visits counts generated successor states, the metric of Section 3.1
	// (≈ n·k·mⁿ for exhaustive search without pruning of redundant visits).
	Visits int
	// TupleStates counts the distinct state-only tuples (ignoring data)
	// among the explored states.
	TupleStates int
	// Violations lists erroneous states found.
	Violations []Violation
	// SpecErrors records protocol-definition-level failures.
	SpecErrors []error
	// Reachable holds every distinct configuration when KeepReachable was
	// set, in discovery order.
	Reachable []*fsm.Config
	// Truncated reports that the run stopped before the frontier emptied.
	// StopReason carries the structured cause.
	Truncated bool
	// StopReason is nil for a complete run; otherwise it matches one of
	// the runctl sentinels (ErrCanceled, ErrDeadline, ErrStateBudget,
	// ErrMemBudget) via errors.Is.
	StopReason error
	// Checkpoint is a resumable snapshot of the interrupted run, present
	// when Options.CheckpointOnStop was set and the stop happened at a
	// worklist/level boundary (cancellation, deadline or memory budget;
	// the exact state cap stops mid-step and is not checkpointable).
	Checkpoint *Checkpoint
	// EstBytes is the run's final estimated resident footprint, the value
	// the memory budget was enforced against (see stateBytes).
	EstBytes int64
	// WorkerErrors records panics recovered in parallel BFS workers. The
	// affected frontier slices were re-expanded sequentially, so unless a
	// matching SpecError reports a persistent panic the results are
	// unaffected.
	WorkerErrors []*WorkerError
}

// OK reports whether the protocol verified cleanly at this cache count.
func (r *Result) OK() bool { return len(r.Violations) == 0 && len(r.SpecErrors) == 0 }

// strictKey is the legacy string identity of a configuration up to strict
// equality (Section 3.1). The engines key states by the packed Key of
// key.go instead; the string forms remain as the reference implementation
// the packed encoding is property-tested against, as the rendering of keys
// in checkpoints and witnesses, and as the fallback identity for runs too
// large to pack.
func strictKey(c *fsm.Config) string { return c.Key() }

// countingKey identifies configurations up to cache permutation
// (Definition 5, counting equivalence), extended with the per-cache data
// class so the data-consistency attributes survive the quotient.
func countingKey(c *fsm.Config) string {
	pairs := make([]string, len(c.States))
	for i, s := range c.States {
		pairs[i] = fmt.Sprintf("%s:%d", s, c.Versions[i])
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",") + fmt.Sprintf("|m:%d", c.MemVersion)
}

// CanonicalKey renders the canonical string identity of a canonicalized
// configuration under the given mode, in the exact format checkpoints and
// witness paths store (PathStep.To). It is computed by the legacy string
// reference implementation — not the packed fast-path codec — so an
// independent auditor (internal/campaign) replaying a witness through
// fsm.Step can match claimed keys without trusting the engine's packed
// encoding.
func CanonicalKey(c *fsm.Config, mode string) (string, error) {
	if err := validMode(mode); err != nil {
		return "", err
	}
	if mode == ModeCounting {
		return countingKey(c), nil
	}
	return strictKey(c), nil
}

// Enumeration modes, recorded in checkpoints so a resumed run re-selects
// the equivalence of the interrupted one.
const (
	ModeStrict   = "strict"
	ModeCounting = "counting"
)

func validMode(mode string) error {
	if mode != ModeStrict && mode != ModeCounting {
		return fmt.Errorf("enum: unknown mode %q", mode)
	}
	return nil
}

// Exhaustive runs the paper's Figure 2 algorithm: breadth-first exploration
// of all strict global states for n caches.
func Exhaustive(p *fsm.Protocol, n int, opts Options) (*Result, error) {
	return ExhaustiveContext(context.Background(), p, n, opts)
}

// ExhaustiveContext is Exhaustive under a context: cancellation and the
// context deadline stop the run at the next worklist item, returning the
// partial Result with a structured StopReason.
func ExhaustiveContext(ctx context.Context, p *fsm.Protocol, n int, opts Options) (*Result, error) {
	return run(ctx, p, n, opts, ModeStrict)
}

// Counting runs the same exploration under counting equivalence
// (Definition 5): permutations of a tuple collapse into one state, and
// symmetric caches are expanded only once.
func Counting(p *fsm.Protocol, n int, opts Options) (*Result, error) {
	return CountingContext(context.Background(), p, n, opts)
}

// CountingContext is Counting under a context.
func CountingContext(ctx context.Context, p *fsm.Protocol, n int, opts Options) (*Result, error) {
	return run(ctx, p, n, opts, ModeCounting)
}

// bfs is the shared state of one enumeration run, used identically by the
// sequential queue loop and the level-synchronous parallel loop (and
// rebuilt from a Checkpoint on resume), so budget enforcement and
// successor admission cannot drift between the engines.
type bfs struct {
	p         *fsm.Protocol
	n         int
	opts      Options
	rc        runctl.RunConfig // resolved run control (see Options.runCtl)
	orun      *obs.Run         // nil when unobserved: the allocation-free fast path
	kc        *keyCodec
	mode      string
	symmetric bool
	maxStates int

	// visited and tuples are the compact dedup sets (see store.go); a
	// state's rank in visited is its admission order. parents is the
	// rank-indexed provenance: parents[r] records how the state admitted
	// at rank r was first reached. opIx maps operations to their
	// Protocol.Ops index for the uint8 op field.
	visited visitedStore
	tuples  visitedStore
	parents []parentRec
	opIx    map[fsm.Op]uint8

	// frontierLen is the current worklist length, maintained by the run
	// loops for the footprint estimate.
	frontierLen int
	bytes       int64 // estimated worklist+visited footprint (estBytes)

	// memo caches the last parent-rank lookup: successors of one
	// expansion step share a parent, so commit resolves it once.
	memoKey  Key
	memoRank uint32
	memoOK   bool

	// Out-of-core state (parallel engine only, see spill.go). frontRanks
	// pins the current frontier's ranks in memory across spills;
	// nextRanks collects the next level's during reconcile.
	spill      *spillState
	frontRanks map[Key]uint32
	nextRanks  map[Key]uint32

	// sinceCp counts expanded states since the last periodic checkpoint.
	sinceCp int
	// dups counts successors discarded as identity duplicates by the
	// sequential engine (the parallel engine derives the same quantity from
	// Visits at level boundaries); it feeds LevelStats.Pruned.
	dups int

	res *Result
}

// cfgBytes estimates the resident cost of one frontier configuration: the
// fsm.Config struct, its States slice of string headers and its Versions
// slice. The constant is pinned against measured heap growth by
// TestStateBytesEstimate, which also covers the store estimates it is
// summed with in estBytes.
func cfgBytes(n int) int64 {
	return int64(24*n + 128)
}

// estBytes estimates the run's resident footprint: the visited and tuple
// sets, the provenance records and the frontier configurations.
func (b *bfs) estBytes() int64 {
	return b.visited.bytes() + b.tuples.bytes() +
		int64(cap(b.parents))*parentRecBytes +
		int64(b.frontierLen)*cfgBytes(b.n)
}

// newBFS validates the inputs and seeds the run with the initial
// configuration. done reports that the run already ended (initial-state
// violation under StopOnViolation).
func newBFS(p *fsm.Protocol, n int, opts Options, mode string) (b *bfs, init *fsm.Config, done bool, err error) {
	if err := p.Validate(); err != nil {
		return nil, nil, false, err
	}
	if n < 1 {
		return nil, nil, false, fmt.Errorf("enum: need at least one cache, got %d", n)
	}
	if err := validMode(mode); err != nil {
		return nil, nil, false, err
	}
	rc := opts.runCtl()
	maxStates := rc.Budget.MaxStates
	if maxStates <= 0 {
		maxStates = opts.MaxStates
	}
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	if n > 1<<16-1 {
		return nil, nil, false, fmt.Errorf("enum: cache count %d exceeds the provenance-record limit %d", n, 1<<16-1)
	}
	opIx, err := buildOpIndex(p)
	if err != nil {
		return nil, nil, false, err
	}
	b = &bfs{
		p: p, n: n, opts: opts, rc: rc, kc: newKeyCodec(p, n, mode), mode: mode,
		orun:      rc.Sink().Run("enum-"+mode, p.Name),
		symmetric: mode == ModeCounting,
		maxStates: maxStates,
		opIx:      opIx,
		res:       &Result{Protocol: p, N: n},
	}
	b.visited, b.tuples = newStores(b.kc, n)

	init = fsm.NewConfig(p, n)
	Canonicalize(init)
	b.visited.insert(b.kc.key(init))
	b.parents = append(b.parents, parentRec{parent: noParent})
	b.tuples.insert(b.kc.tupleKey(init))
	b.frontierLen = 1
	b.bytes = b.estBytes()
	if opts.KeepReachable {
		b.res.Reachable = append(b.res.Reachable, init.Clone())
	}
	if v := fsm.CheckConfig(p, init, opts.Strict); len(v) > 0 {
		b.res.Violations = append(b.res.Violations, Violation{Config: init.Clone(), Violations: v})
		b.orun.Event(obs.MetricViolations, 1)
		if opts.StopOnViolation {
			b.finish()
			return b, init, true, nil
		}
	}
	return b, init, false, nil
}

// stopCheck evaluates the boundary-granularity budgets: context liveness,
// wall-clock deadline and memory. The state cap is enforced exactly inside
// admit instead.
func (b *bfs) stopCheck(ctx context.Context) error {
	if err := runctl.FromContext(ctx); err != nil {
		return err
	}
	if err := b.rc.Budget.CheckDeadline(time.Now()); err != nil {
		return err
	}
	b.bytes = b.estBytes()
	return b.rc.Budget.CheckMem(b.bytes)
}

// stop finalizes an early stop at a clean boundary: frontier holds the
// states admitted but not yet expanded, so a checkpoint taken here resumes
// to results identical to an uninterrupted run.
func (b *bfs) stop(reason error, frontier []*fsm.Config) {
	b.res.StopReason = reason
	b.res.Truncated = true
	b.finish()
	if b.rc.CheckpointOnStop {
		cp, err := b.snapshot(frontier)
		if err != nil {
			b.res.SpecErrors = append(b.res.SpecErrors, fmt.Errorf("enum: capturing stop checkpoint: %w", err))
			return
		}
		b.res.Checkpoint = cp
	}
}

// maybeCheckpoint emits a periodic snapshot when due.
func (b *bfs) maybeCheckpoint(frontier []*fsm.Config) error {
	if b.opts.OnCheckpoint == nil || b.rc.CheckpointEvery <= 0 || b.sinceCp < b.rc.CheckpointEvery {
		return nil
	}
	b.sinceCp = 0
	b.orun.Event("checkpoints_total", 1)
	cp, err := b.snapshot(frontier)
	if err != nil {
		return err
	}
	return b.opts.OnCheckpoint(cp)
}

func (b *bfs) finish() {
	b.res.Unique = b.visited.size()
	b.res.TupleStates = b.tuples.size()
	b.bytes = b.estBytes()
	b.res.EstBytes = b.bytes
}

// admit merges one generated successor in the sequential engine: dedup,
// then the shared commit bookkeeping. It appends newly admitted states to
// *next and reports true when the run must end now (StopOnViolation or
// state budget). Duplicates return their configuration to the pool.
func (b *bfs) admit(it succItem, next *[]*fsm.Config) bool {
	b.res.Visits++
	if b.visited.has(it.key) {
		b.dups++
		releaseConfig(it.cfg)
		return false
	}
	return b.commit(it, fsm.CheckConfig(b.p, it.cfg, b.opts.Strict), next)
}

// parentRank resolves the admission rank of a parent key: the memoized
// last lookup (successors of one step share their parent), then the
// pinned frontier ranks of an out-of-core run (the parent may have been
// spilled), then the resident store.
func (b *bfs) parentRank(k Key) uint32 {
	if k.isZero() {
		return noParent
	}
	if b.memoOK && k == b.memoKey {
		return b.memoRank
	}
	r, ok := uint32(0), false
	if b.frontRanks != nil {
		r, ok = b.frontRanks[k]
	}
	if !ok {
		if r, ok = b.visited.rank(k); !ok {
			// Parents are always either resident or pinned in frontRanks;
			// reaching here means the run state is corrupt.
			panic("enum: internal error: parent state has no recorded rank")
		}
	}
	b.memoKey, b.memoRank, b.memoOK = k, r, true
	return r
}

// commit installs one deduplicated successor: provenance, tuple census,
// violation recording and the exact state cap. It is shared by the
// sequential admit and the parallel reconcile (which precomputes viol
// inside the workers), so the two engines cannot drift.
func (b *bfs) commit(it succItem, viol []fsm.Violation, next *[]*fsm.Config) bool {
	rank := b.visited.insert(it.key)
	b.parents = append(b.parents, parentRec{
		parent: b.parentRank(it.parent),
		cache:  uint16(it.cache),
		op:     b.opIx[it.op],
	})
	if b.nextRanks != nil {
		b.nextRanks[it.key] = rank
	}
	if !it.tupleDup {
		if tk := b.kc.tupleKey(it.cfg); !b.tuples.has(tk) {
			b.tuples.insert(tk)
		}
	}
	if len(viol) > 0 {
		b.res.Violations = append(b.res.Violations, Violation{
			Config:     it.cfg.Clone(),
			Violations: viol,
			Path:       b.witness(it.key, rank),
		})
		b.orun.Event(obs.MetricViolations, 1)
		if b.opts.StopOnViolation {
			b.finish()
			return true
		}
	}
	if b.opts.KeepReachable {
		b.res.Reachable = append(b.res.Reachable, it.cfg.Clone())
	}
	if b.visited.size() >= b.maxStates {
		b.res.StopReason = runctl.ErrStateBudget
		b.res.Truncated = true
		b.finish()
		return true
	}
	*next = append(*next, it.cfg)
	b.frontierLen++
	return false
}

// testItemHook, when set by tests, observes each sequential expansion step
// (called with the number of states expanded so far, before the step runs).
var testItemHook func(expanded int)

func run(ctx context.Context, p *fsm.Protocol, n int, opts Options, mode string) (*Result, error) {
	b, init, done, err := newBFS(p, n, opts, mode)
	if err != nil {
		return nil, err
	}
	if done {
		return b.res, nil
	}
	return b.runSeq(ctx, []*fsm.Config{init})
}

// runSeq drives the classic FIFO exploration of Figure 2. Budgets are
// checked before each expansion step, so every dequeued state is either
// fully expanded or still on the queue when the run stops. The successor
// buffer is reused across steps and fully expanded configurations return
// to the pool, so the steady-state loop allocates only for newly admitted
// frontier states.
func (b *bfs) runSeq(ctx context.Context, queue []*fsm.Config) (*Result, error) {
	sp := b.orun.Phase(obs.PhaseExpand)
	defer sp.End()
	expanded := 0
	// FIFO order expands the queue level by level, so the boundary where
	// the current level's last state has been dequeued and expanded is a
	// true BFS level boundary: everything left on the queue is the next
	// level's frontier. Visits may carry over from a resumed checkpoint;
	// level stats are relative to this run so registry counters never
	// double-count.
	level, remaining, visits0 := 0, len(queue), b.res.Visits
	var out workerOut
	for len(queue) > 0 {
		b.frontierLen = len(queue)
		if err := b.stopCheck(ctx); err != nil {
			b.stop(err, queue)
			return b.res, nil
		}
		if err := b.maybeCheckpoint(queue); err != nil {
			return nil, err
		}
		if testItemHook != nil {
			testItemHook(expanded)
		}
		cur := queue[0]
		queue = queue[1:]
		out.items = out.items[:0]
		out.specErrs = out.specErrs[:0]
		expandOne(b.kc, b.symmetric, cur, &out)
		b.res.SpecErrors = append(b.res.SpecErrors, out.specErrs...)
		if len(out.specErrs) > 0 {
			b.orun.Event("spec_errors_total", int64(len(out.specErrs)))
		}
		for _, it := range out.items {
			if b.admit(it, &queue) {
				return b.res, nil
			}
		}
		releaseConfig(cur)
		expanded++
		b.sinceCp++
		if remaining--; remaining == 0 {
			b.orun.Level(obs.LevelStats{
				Level:     level,
				Frontier:  len(queue),
				Essential: b.visited.size(),
				Visits:    b.res.Visits - visits0,
				Pruned:    b.dups,
				EstBytes:  b.bytes,
			})
			level++
			remaining = len(queue)
		}
	}
	b.finish()
	return b.res, nil
}

// SymmetryShadowed reports whether the engines' counting-mode expansion
// would skip cache i of c as permutation-equivalent to a lower-indexed
// sibling (see shadowedBySibling). Exported for the transition-graph
// export, which replays the engines' expansion policy.
func SymmetryShadowed(c *fsm.Config, i int) bool { return shadowedBySibling(c, i) }

// shadowedBySibling reports whether a lower-indexed cache is in the same
// (state, data) class as cache i; under counting equivalence expanding both
// produces permutation-equivalent successors, so only the first
// representative of each class is expanded.
func shadowedBySibling(c *fsm.Config, i int) bool {
	for j := 0; j < i; j++ {
		if c.States[j] == c.States[i] && c.Versions[j] == c.Versions[i] {
			return true
		}
	}
	return false
}

// witness reconstructs the path from the initial configuration to the
// state admitted at rank r with key k, walking the rank-indexed
// provenance records and rendering each hop's key in the legacy
// canonical string format (PathStep.To equals fsm.Config.Key of the
// state reached, in strict mode). Ancestor keys are recovered from
// their ranks with one pass over the store (plus the spill files of an
// out-of-core run) — violations are rare, so the scan is off the hot
// path.
func (b *bfs) witness(k Key, r uint32) []PathStep {
	var chain []uint32 // ranks from the violation up, excluding rank 0
	for cur := r; b.parents[cur].parent != noParent; cur = b.parents[cur].parent {
		chain = append(chain, cur)
		if len(chain) > 1000000 {
			break
		}
	}
	keys := map[uint32]Key{r: k}
	if len(chain) > 1 {
		wanted := make(map[uint32]bool, len(chain))
		for _, cr := range chain {
			if cr != r {
				wanted[cr] = true
			}
		}
		collect := func(kk Key, rr uint32) {
			if wanted[rr] {
				keys[rr] = kk
			}
		}
		b.visited.forEach(collect)
		if b.spill != nil {
			if err := b.forEachSpilled(b.spill.visitedFiles, collect); err != nil {
				b.res.SpecErrors = append(b.res.SpecErrors, fmt.Errorf("enum: resolving witness path: %w", err))
			}
		}
	}
	steps := make([]PathStep, len(chain))
	for i, cr := range chain {
		rec := b.parents[cr]
		steps[len(chain)-1-i] = PathStep{
			Cache: int(rec.cache),
			Op:    b.p.Ops[rec.op],
			To:    b.kc.render(keys[cr]),
		}
	}
	return steps
}
