package enum

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fsm"
)

// Canonical data markers. Explicit-state enumeration would not terminate
// over ever-growing store version numbers, so after every step the versions
// are renamed onto the paper's abstract data domain: the latest version
// becomes canonFresh, every older version becomes canonObsolete, and
// fsm.NoData is kept. This is exactly the context-variable domain of
// Definition 4 and preserves the stale-read check (version == Latest).
const (
	canonFresh    int64 = 0
	canonObsolete int64 = -2
)

// Canonicalize rewrites the configuration's versions onto the abstract data
// domain, in place. Afterwards c.Latest == canonFresh.
func Canonicalize(c *fsm.Config) {
	ren := func(v int64) int64 {
		switch {
		case v == fsm.NoData:
			return fsm.NoData
		case v == c.Latest:
			return canonFresh
		default:
			return canonObsolete
		}
	}
	for i := range c.Versions {
		c.Versions[i] = ren(c.Versions[i])
	}
	c.MemVersion = ren(c.MemVersion)
	c.Latest = canonFresh
}

// Options tune an enumeration run.
type Options struct {
	// MaxStates bounds the number of distinct states explored (0: 5_000_000).
	MaxStates int
	// KeepReachable retains every distinct canonical configuration in the
	// result, for cross-validation against the symbolic essential states.
	KeepReachable bool
	// Strict enables the CleanShared extension check.
	Strict bool
	// StopOnViolation aborts at the first erroneous state.
	StopOnViolation bool
}

const defaultMaxStates = 5000000

// PathStep is one hop of a concrete witness path.
type PathStep struct {
	Cache int
	Op    fsm.Op
	To    string // canonical key of the state reached
}

// Violation pairs an erroneous concrete state with its violations and a
// witness path from the initial configuration.
type Violation struct {
	Config     *fsm.Config
	Violations []fsm.Violation
	Path       []PathStep
}

// Result reports an enumeration run.
type Result struct {
	// Protocol and N identify the run.
	Protocol *fsm.Protocol
	N        int
	// Unique counts distinct states explored under the run's equivalence
	// (strict tuples for Exhaustive, multisets for Counting).
	Unique int
	// Visits counts generated successor states, the metric of Section 3.1
	// (≈ n·k·mⁿ for exhaustive search without pruning of redundant visits).
	Visits int
	// TupleStates counts the distinct state-only tuples (ignoring data)
	// among the explored states.
	TupleStates int
	// Violations lists erroneous states found.
	Violations []Violation
	// SpecErrors records protocol-definition-level failures.
	SpecErrors []error
	// Reachable holds every distinct configuration when KeepReachable was
	// set, in discovery order.
	Reachable []*fsm.Config
	// Truncated reports that MaxStates was hit before the frontier emptied.
	Truncated bool
}

// OK reports whether the protocol verified cleanly at this cache count.
func (r *Result) OK() bool { return len(r.Violations) == 0 && len(r.SpecErrors) == 0 }

// keyFunc maps a canonical configuration to its equivalence-class key.
type keyFunc func(*fsm.Config) string

// strictKey identifies configurations up to strict equality (Section 3.1).
func strictKey(c *fsm.Config) string { return c.Key() }

// countingKey identifies configurations up to cache permutation
// (Definition 5, counting equivalence), extended with the per-cache data
// class so the data-consistency attributes survive the quotient.
func countingKey(c *fsm.Config) string {
	pairs := make([]string, len(c.States))
	for i, s := range c.States {
		pairs[i] = fmt.Sprintf("%s:%d", s, c.Versions[i])
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",") + fmt.Sprintf("|m:%d", c.MemVersion)
}

// Exhaustive runs the paper's Figure 2 algorithm: breadth-first exploration
// of all strict global states for n caches.
func Exhaustive(p *fsm.Protocol, n int, opts Options) (*Result, error) {
	return run(p, n, opts, strictKey, false)
}

// Counting runs the same exploration under counting equivalence
// (Definition 5): permutations of a tuple collapse into one state, and
// symmetric caches are expanded only once.
func Counting(p *fsm.Protocol, n int, opts Options) (*Result, error) {
	return run(p, n, opts, countingKey, true)
}

type parent struct {
	key   string
	cache int
	op    fsm.Op
}

func run(p *fsm.Protocol, n int, opts Options, key keyFunc, symmetric bool) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("enum: need at least one cache, got %d", n)
	}
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	res := &Result{Protocol: p, N: n}

	init := fsm.NewConfig(p, n)
	Canonicalize(init)
	ik := key(init)

	visited := map[string]bool{ik: true}
	parents := map[string]parent{ik: {}}
	tuples := map[string]bool{init.StateKey(): true}
	queue := []*fsm.Config{init}
	if opts.KeepReachable {
		res.Reachable = append(res.Reachable, init.Clone())
	}
	if v := fsm.CheckConfig(p, init, opts.Strict); len(v) > 0 {
		res.Violations = append(res.Violations, Violation{Config: init.Clone(), Violations: v})
		if opts.StopOnViolation {
			res.Unique = len(visited)
			res.TupleStates = len(tuples)
			return res, nil
		}
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curKey := key(cur)

		for i := 0; i < n; i++ {
			if symmetric && shadowedBySibling(cur, i) {
				continue
			}
			for _, op := range p.Ops {
				if len(p.RulesFor(cur.States[i], op)) == 0 {
					continue
				}
				next := cur.Clone()
				if _, err := fsm.Step(p, next, i, op); err != nil {
					res.SpecErrors = append(res.SpecErrors, err)
					continue
				}
				Canonicalize(next)
				res.Visits++
				k := key(next)
				if visited[k] {
					continue
				}
				visited[k] = true
				parents[k] = parent{key: curKey, cache: i, op: op}
				tuples[next.StateKey()] = true
				if v := fsm.CheckConfig(p, next, opts.Strict); len(v) > 0 {
					res.Violations = append(res.Violations, Violation{
						Config:     next.Clone(),
						Violations: v,
						Path:       witness(parents, k),
					})
					if opts.StopOnViolation {
						res.Unique = len(visited)
						res.TupleStates = len(tuples)
						return res, nil
					}
				}
				if opts.KeepReachable {
					res.Reachable = append(res.Reachable, next.Clone())
				}
				if len(visited) >= maxStates {
					res.Truncated = true
					res.Unique = len(visited)
					res.TupleStates = len(tuples)
					return res, nil
				}
				queue = append(queue, next)
			}
		}
	}
	res.Unique = len(visited)
	res.TupleStates = len(tuples)
	return res, nil
}

// shadowedBySibling reports whether a lower-indexed cache is in the same
// (state, data) class as cache i; under counting equivalence expanding both
// produces permutation-equivalent successors, so only the first
// representative of each class is expanded.
func shadowedBySibling(c *fsm.Config, i int) bool {
	for j := 0; j < i; j++ {
		if c.States[j] == c.States[i] && c.Versions[j] == c.Versions[i] {
			return true
		}
	}
	return false
}

func witness(parents map[string]parent, k string) []PathStep {
	var rev []PathStep
	for {
		pi, ok := parents[k]
		if !ok || pi.key == "" {
			break
		}
		rev = append(rev, PathStep{Cache: pi.cache, Op: pi.op, To: k})
		k = pi.key
		if len(rev) > 1000000 {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
