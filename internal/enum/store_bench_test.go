package enum

import (
	"math/rand"
	"testing"
)

// BenchmarkVisitedStoreBytes inserts the same random packed-key
// population into the compact prefix-sharded store and the legacy
// map-backed store, and reports the resident bytes per state of each —
// the metric behind the out-of-core work. The compact layout holds
// width+4 bytes per state plus a fixed shard overhead, against the
// map's ~176-byte entries; the bytes/state columns of the two
// sub-benchmarks are the compression ratio.
func BenchmarkVisitedStoreBytes(b *testing.B) {
	const n = 8           // caches: width n+1 = 9 bytes per packed key
	const states = 200000 // population size, comparable to a mid-size Fig. 2 run
	rng := rand.New(rand.NewSource(1))
	seen := make(map[Key]bool, states)
	keys := make([]Key, 0, states)
	for len(keys) < states {
		var k Key
		for i := 0; i < n; i++ {
			k.packed[i] = byte(1 + rng.Intn(62))
		}
		k.packed[maxPackedCaches] = byte(rng.Intn(3))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for _, impl := range []struct {
		name string
		mk   func() visitedStore
	}{
		{"compact", func() visitedStore { return newCompactStore(n) }},
		{"legacy-map", func() visitedStore { return newMapStore() }},
	} {
		b.Run(impl.name, func(b *testing.B) {
			b.ReportAllocs()
			var perState float64
			for i := 0; i < b.N; i++ {
				st := impl.mk()
				for _, k := range keys {
					st.insert(k)
				}
				perState = float64(st.bytes()) / float64(st.size())
			}
			b.ReportMetric(perState, "bytes/state")
		})
	}
}
