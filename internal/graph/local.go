package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fsm"
)

// LocalEdge is one transition of the per-cache diagram (Figure 1 of the
// paper): the originator's state change under an operation, qualified by
// the guard (the sharing-detection function value for non-null F).
type LocalEdge struct {
	From, To fsm.State
	Op       fsm.Op
	Guard    fsm.Guard
	Rule     string
}

// Label renders the edge label, e.g. "R [∄other∈{...}]".
func (e LocalEdge) Label() string {
	if e.Guard.Kind == fsm.GuardAlways {
		return string(e.Op)
	}
	return fmt.Sprintf("%s [%s]", e.Op, e.Guard)
}

// Local is the per-cache transition diagram of a protocol.
type Local struct {
	Protocol *fsm.Protocol
	Edges    []LocalEdge
}

// BuildLocal extracts the per-cache transition diagram from the protocol's
// rules (the originator's view; coincident transitions of the other caches
// are not part of Figure 1).
func BuildLocal(p *fsm.Protocol) *Local {
	l := &Local{Protocol: p}
	for i := range p.Rules {
		r := &p.Rules[i]
		l.Edges = append(l.Edges, LocalEdge{
			From: r.From, To: r.Next, Op: r.On, Guard: r.Guard, Rule: r.Name,
		})
	}
	sort.Slice(l.Edges, func(i, j int) bool {
		a, b := l.Edges[i], l.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.To < b.To
	})
	return l
}

// HasEdge reports whether the local diagram moves a cache from one state to
// another under op (any guard).
func (l *Local) HasEdge(from, to fsm.State, op fsm.Op) bool {
	for _, e := range l.Edges {
		if e.From == from && e.To == to && e.Op == op {
			return true
		}
	}
	return false
}

// DOT renders the local diagram in Graphviz format.
func (l *Local) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", l.Protocol.Name+"-local")
	b.WriteString("  node [shape=ellipse, fontname=\"Helvetica\"];\n")
	for _, s := range l.Protocol.States {
		attrs := ""
		if s == l.Protocol.Initial {
			attrs = " [penwidth=2]"
		}
		fmt.Fprintf(&b, "  %q%s;\n", s, attrs)
	}
	for _, e := range l.Edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s\"];\n", e.From, e.To, escape(e.Label()))
	}
	b.WriteString("}\n")
	return b.String()
}
