package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fsm"
)

// The paper closes by noting that the global state graph "not only
// facilitates the verification of data consistency but also demonstrates
// the similarities and disparities among protocols". This file implements
// that comparison: operation-labelled graph isomorphism between global
// diagrams (state names differ across protocols, so only the operation
// labels and the graph shape are compared) and a structural diff for the
// non-isomorphic case.

// opEdge is an edge retaining only the comparable label parts.
type opEdge struct {
	from, to int
	op       fsm.Op
}

func opEdges(g *Global) map[opEdge]bool {
	out := make(map[opEdge]bool, len(g.Edges))
	for _, e := range g.Edges {
		out[opEdge{e.From, e.To, e.Op}] = true
	}
	return out
}

// signature computes a per-node invariant used to prune the isomorphism
// search: the multiset of (op, direction, self-loop) incidences.
func signature(g *Global, node int) string {
	var parts []string
	for _, e := range g.Edges {
		switch {
		case e.From == node && e.To == node:
			parts = append(parts, "s"+string(e.Op))
		case e.From == node:
			parts = append(parts, "o"+string(e.Op))
		case e.To == node:
			parts = append(parts, "i"+string(e.Op))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Isomorphic reports whether the two global diagrams are isomorphic as
// operation-labelled digraphs with matched initial states, returning the
// node mapping (a[i] in g1 corresponds to mapping[i] in g2) when they are.
func Isomorphic(g1, g2 *Global) ([]int, bool) {
	n := len(g1.Nodes)
	if n != len(g2.Nodes) || len(opEdges(g1)) != len(opEdges(g2)) {
		return nil, false
	}
	sig1 := make([]string, n)
	sig2 := make([]string, n)
	for i := 0; i < n; i++ {
		sig1[i] = signature(g1, i)
		sig2[i] = signature(g2, i)
	}
	e1 := opEdges(g1)
	e2 := opEdges(g2)

	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}

	// The initial states must correspond.
	var match func(i int) bool
	consistent := func(i, j int) bool {
		if sig1[i] != sig2[j] {
			return false
		}
		// Check all edges between already-mapped nodes and i.
		for e := range e1 {
			var other int
			switch {
			case e.from == i && e.to == i:
				if !e2[opEdge{j, j, e.op}] {
					return false
				}
				continue
			case e.from == i:
				other = e.to
			case e.to == i:
				other = e.from
			default:
				continue
			}
			if mapping[other] < 0 {
				continue
			}
			var want opEdge
			if e.from == i {
				want = opEdge{j, mapping[other], e.op}
			} else {
				want = opEdge{mapping[other], j, e.op}
			}
			if !e2[want] {
				return false
			}
		}
		// And the reverse direction: mapped g2 edges incident to j must
		// exist in g1.
		for e := range e2 {
			var otherJ int
			switch {
			case e.from == j && e.to == j:
				continue // covered above
			case e.from == j:
				otherJ = e.to
			case e.to == j:
				otherJ = e.from
			default:
				continue
			}
			otherI := -1
			for a, b := range mapping {
				if b == otherJ {
					otherI = a
				}
			}
			if otherI < 0 {
				continue
			}
			var want opEdge
			if e.from == j {
				want = opEdge{i, otherI, e.op}
			} else {
				want = opEdge{otherI, i, e.op}
			}
			if !e1[want] {
				return false
			}
		}
		return true
	}
	match = func(i int) bool {
		if i == n {
			return true
		}
		if i == g1.Initial {
			j := g2.Initial
			if used[j] || !consistent(i, j) {
				return false
			}
			mapping[i], used[j] = j, true
			if match(i + 1) {
				return true
			}
			mapping[i], used[j] = -1, false
			return false
		}
		for j := 0; j < n; j++ {
			if used[j] || j == g2.Initial {
				continue
			}
			if !consistent(i, j) {
				continue
			}
			mapping[i], used[j] = j, true
			if match(i + 1) {
				return true
			}
			mapping[i], used[j] = -1, false
		}
		return false
	}
	if !match(0) {
		return nil, false
	}
	return mapping, true
}

// Diff summarizes the structural disparities between two global diagrams.
type Diff struct {
	NodesA, NodesB int
	EdgesA, EdgesB int
	// OpCounts maps each operation to its edge counts in A and B.
	OpCounts map[fsm.Op][2]int
	// Isomorphic is true when the diagrams match as op-labelled digraphs;
	// Mapping then holds the node correspondence.
	Isomorphic bool
	Mapping    []int
}

// Compare builds the structural comparison between two global diagrams.
func Compare(a, b *Global) *Diff {
	d := &Diff{
		NodesA:   len(a.Nodes),
		NodesB:   len(b.Nodes),
		EdgesA:   len(a.Edges),
		EdgesB:   len(b.Edges),
		OpCounts: map[fsm.Op][2]int{},
	}
	for _, e := range a.Edges {
		c := d.OpCounts[e.Op]
		c[0]++
		d.OpCounts[e.Op] = c
	}
	for _, e := range b.Edges {
		c := d.OpCounts[e.Op]
		c[1]++
		d.OpCounts[e.Op] = c
	}
	d.Mapping, d.Isomorphic = Isomorphic(a, b)
	return d
}

// String renders the comparison.
func (d *Diff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes %d vs %d, edges %d vs %d\n", d.NodesA, d.NodesB, d.EdgesA, d.EdgesB)
	ops := make([]string, 0, len(d.OpCounts))
	for op := range d.OpCounts {
		ops = append(ops, string(op))
	}
	sort.Strings(ops)
	for _, op := range ops {
		c := d.OpCounts[fsm.Op(op)]
		fmt.Fprintf(&b, "  %s edges: %d vs %d\n", op, c[0], c[1])
	}
	if d.Isomorphic {
		fmt.Fprintf(&b, "isomorphic (node mapping %v)\n", d.Mapping)
	} else {
		b.WriteString("not isomorphic\n")
	}
	return b.String()
}

// StronglyConnected reports whether every node of the global diagram is
// reachable from every other — the lift of Definition 1's strong
// connectivity requirement to the global FSM.
func (g *Global) StronglyConnected() bool {
	n := len(g.Nodes)
	if n == 0 {
		return false
	}
	fwd := make(map[int][]int)
	rev := make(map[int][]int)
	for _, e := range g.Edges {
		fwd[e.From] = append(fwd[e.From], e.To)
		rev[e.To] = append(rev[e.To], e.From)
	}
	reach := func(adj map[int][]int) int {
		seen := map[int]bool{0: true}
		stack := []int{0}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if !seen[y] {
					seen[y] = true
					stack = append(stack, y)
				}
			}
		}
		return len(seen)
	}
	return reach(fwd) == n && reach(rev) == n
}

// LocalStronglyConnected checks Definition 1's requirement on the per-cache
// FSM: starting from any state there exists a path to every other state.
func LocalStronglyConnected(p *fsm.Protocol) bool {
	idx := make(map[fsm.State]int, len(p.States))
	for i, s := range p.States {
		idx[s] = i
	}
	n := len(p.States)
	fwd := make([][]int, n)
	rev := make([][]int, n)
	for i := range p.Rules {
		r := &p.Rules[i]
		a, b := idx[r.From], idx[r.Next]
		fwd[a] = append(fwd[a], b)
		rev[b] = append(rev[b], a)
		// Coincident transitions also move caches between states.
		for from, to := range r.Observe {
			a, b := idx[from], idx[to]
			fwd[a] = append(fwd[a], b)
			rev[b] = append(rev[b], a)
		}
	}
	reach := func(adj [][]int) int {
		seen := make([]bool, n)
		seen[0] = true
		stack := []int{0}
		count := 1
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range adj[x] {
				if !seen[y] {
					seen[y] = true
					count++
					stack = append(stack, y)
				}
			}
		}
		return count
	}
	return reach(fwd) == n && reach(rev) == n
}
