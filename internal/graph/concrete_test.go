package graph

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/enum"
	"repro/internal/protocols"
)

// TestConcreteMatchesEnumCensus pins the graph builder to the engines: for
// every built-in protocol, in both equivalence modes, the diagram's node set
// must equal the enumeration's distinct-state census, node for node in
// discovery order.
func TestConcreteMatchesEnumCensus(t *testing.T) {
	const n = 3
	for _, p := range protocols.All() {
		for _, mode := range []string{enum.ModeStrict, enum.ModeCounting} {
			g, err := BuildConcrete(p, n, mode, 0)
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name, mode, err)
			}
			opts := enum.Options{KeepReachable: true}
			var res *enum.Result
			if mode == enum.ModeCounting {
				res, err = enum.CountingContext(context.Background(), p, n, opts)
			} else {
				res, err = enum.ExhaustiveContext(context.Background(), p, n, opts)
			}
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name, mode, err)
			}
			if len(g.Nodes) != res.Unique {
				t.Errorf("%s %s: %d graph nodes, enum census %d", p.Name, mode, len(g.Nodes), res.Unique)
				continue
			}
			for i, c := range res.Reachable {
				key, err := enum.CanonicalKey(c, mode)
				if err != nil {
					t.Fatal(err)
				}
				if g.Nodes[i] != key {
					t.Errorf("%s %s: node %d = %q, enum discovered %q", p.Name, mode, i, g.Nodes[i], key)
					break
				}
			}
		}
	}
}

// TestConcreteDeterministicBytes requires two independent builds to render
// byte-identical DOT and JSON — the contract the service's graph memoization
// and the CLI goldens rely on.
func TestConcreteDeterministicBytes(t *testing.T) {
	build := func() *Concrete {
		p, err := protocols.ByName("illinois")
		if err != nil {
			t.Fatal(err)
		}
		g, err := BuildConcrete(p, 3, enum.ModeCounting, 0)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(), build()
	if a.DOT() != b.DOT() {
		t.Error("DOT rendering is not deterministic")
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Error("JSON rendering is not deterministic")
	}
}

func TestConcreteDOTShape(t *testing.T) {
	p, err := protocols.ByName("msi")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildConcrete(p, 2, enum.ModeStrict, 0)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{`digraph "MSI"`, "rankdir=LR", "penwidth=2", "c0 ["} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if g.Initial != 0 {
		t.Errorf("initial node = %d, want 0", g.Initial)
	}
}

func TestConcreteJSONShape(t *testing.T) {
	p, err := protocols.ByName("msi")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildConcrete(p, 2, enum.ModeStrict, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var e ExportJSON
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Schema != GraphSchema || e.Kind != "concrete" || e.Protocol != "MSI" ||
		e.N != 2 || e.Mode != enum.ModeStrict {
		t.Errorf("header = %+v", e)
	}
	if len(e.Nodes) != len(g.Nodes) || len(e.Edges) != len(g.Edges) {
		t.Errorf("%d/%d nodes, %d/%d edges", len(e.Nodes), len(g.Nodes), len(e.Edges), len(g.Edges))
	}
	if !e.Nodes[0].Initial {
		t.Error("node 0 not marked initial")
	}
	names := make(map[string]bool, len(e.Nodes))
	for _, nd := range e.Nodes {
		names[nd.Name] = true
	}
	for _, ed := range e.Edges {
		if !names[ed.From] || !names[ed.To] {
			t.Errorf("edge %+v references unknown node", ed)
		}
		if ed.Cache == nil {
			t.Errorf("edge %+v has no cache index", ed)
		}
	}
}

func TestGlobalJSONShape(t *testing.T) {
	_, g := illinoisGlobal(t)
	data, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("global JSON rendering is not deterministic")
	}
	var e ExportJSON
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Schema != GraphSchema || e.Kind != "global" || e.Protocol != "Illinois" {
		t.Errorf("header = %+v", e)
	}
	if len(e.Nodes) != len(g.Nodes) || len(e.Edges) != len(g.Edges) {
		t.Errorf("%d/%d nodes, %d/%d edges", len(e.Nodes), len(g.Nodes), len(e.Edges), len(g.Edges))
	}
	if e.Nodes[g.Initial].Initial != true {
		t.Error("initial node not marked")
	}
	for _, ed := range e.Edges {
		if ed.Cache != nil {
			t.Errorf("global edge %+v carries a concrete cache index", ed)
		}
	}
}

func TestBuildConcreteErrors(t *testing.T) {
	p, err := protocols.ByName("msi")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildConcrete(p, 0, enum.ModeStrict, 0); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := BuildConcrete(p, 2, "fuzzy", 0); err == nil {
		t.Error("unknown mode must error")
	}
}

func TestBuildConcreteTruncation(t *testing.T) {
	p, err := protocols.ByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildConcrete(p, 3, enum.ModeStrict, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Truncated {
		t.Error("4-state cap must truncate the illinois n=3 diagram")
	}
	if len(g.Nodes) > 4 {
		t.Errorf("%d nodes exceed the cap", len(g.Nodes))
	}
	for _, e := range g.Edges {
		if e.From >= len(g.Nodes) || e.To >= len(g.Nodes) {
			t.Errorf("edge %+v escapes the discovered node set", e)
		}
	}
}
