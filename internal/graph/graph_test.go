package graph

import (
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/symbolic"
)

func illinoisGlobal(t *testing.T) (*symbolic.Engine, *Global) {
	t.Helper()
	p := protocols.Illinois()
	eng, err := symbolic.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Expand(symbolic.Options{})
	if !res.OK() {
		t.Fatal("Illinois must verify clean")
	}
	g, err := BuildGlobal(eng, res.Essential)
	if err != nil {
		t.Fatal(err)
	}
	return eng, g
}

func TestGlobalIllinoisNodeSet(t *testing.T) {
	_, g := illinoisGlobal(t)
	if len(g.Nodes) != 5 {
		t.Fatalf("want 5 nodes, got %d", len(g.Nodes))
	}
	for _, want := range []string{
		"(Invalid+)",
		"(Invalid*, Valid-Exclusive)",
		"(Invalid*, Dirty)",
		"(Invalid*, Shared+)",
		"(Invalid+, Shared)",
	} {
		if g.FindNode(want) < 0 {
			t.Errorf("missing node %s", want)
		}
	}
	if g.FindNode("(Nonexistent)") != -1 {
		t.Error("FindNode must return -1 for unknown structures")
	}
}

func TestGlobalIllinoisInitialNode(t *testing.T) {
	_, g := illinoisGlobal(t)
	if g.Initial != g.FindNode("(Invalid+)") {
		t.Fatalf("initial node = %d (%s)", g.Initial,
			g.Nodes[g.Initial].StructureString(g.Protocol))
	}
}

// TestGlobalIllinoisPaperEdges asserts every edge of the paper's Figure 4 /
// Appendix A.2, translated to (source structure, op, originator class,
// target structure).
func TestGlobalIllinoisPaperEdges(t *testing.T) {
	_, g := illinoisGlobal(t)
	n := func(s string) int {
		i := g.FindNode(s)
		if i < 0 {
			t.Fatalf("missing node %s", s)
		}
		return i
	}
	s0 := n("(Invalid+)")
	s1 := n("(Invalid*, Valid-Exclusive)")
	s2 := n("(Invalid*, Dirty)")
	s3 := n("(Invalid*, Shared+)")
	s4 := n("(Invalid+, Shared)")

	type pe struct {
		from, to int
		op       fsm.Op
		origin   fsm.State
	}
	paper := []pe{
		// From (Invalid+).
		{s0, s2, fsm.OpWrite, "Invalid"},
		{s0, s1, fsm.OpRead, "Invalid"},
		// From (Dirty, Invalid*).
		{s2, s0, fsm.OpReplace, "Dirty"},
		{s2, s2, fsm.OpWrite, "Dirty"},
		{s2, s2, fsm.OpRead, "Dirty"},
		{s2, s2, fsm.OpWrite, "Invalid"},
		{s2, s3, fsm.OpRead, "Invalid"},
		// From (Valid-Exclusive, Invalid*).
		{s1, s0, fsm.OpReplace, "Valid-Exclusive"},
		{s1, s2, fsm.OpWrite, "Valid-Exclusive"},
		{s1, s1, fsm.OpRead, "Valid-Exclusive"},
		{s1, s2, fsm.OpWrite, "Invalid"},
		{s1, s3, fsm.OpRead, "Invalid"},
		// From (Shared+, Invalid*).
		{s3, s4, fsm.OpReplace, "Shared"},
		{s3, s2, fsm.OpWrite, "Shared"},
		{s3, s3, fsm.OpRead, "Shared"},
		{s3, s3, fsm.OpRead, "Invalid"},
		{s3, s2, fsm.OpWrite, "Invalid"},
		// From (Shared, Invalid+).
		{s4, s0, fsm.OpReplace, "Shared"},
		{s4, s2, fsm.OpWrite, "Shared"},
		{s4, s4, fsm.OpRead, "Shared"},
		{s4, s2, fsm.OpWrite, "Invalid"},
		{s4, s3, fsm.OpRead, "Invalid"},
	}
	for _, e := range paper {
		if !g.HasEdge(e.from, e.to, e.op, e.origin) {
			t.Errorf("missing paper edge %s --%s_%s--> %s",
				g.NodeName(e.from), e.op, e.origin, g.NodeName(e.to))
		}
	}
}

// TestGlobalIllinoisNStepAnnotations checks the four N-step edges the paper
// marks unambiguously.
func TestGlobalIllinoisNStepAnnotations(t *testing.T) {
	_, g := illinoisGlobal(t)
	s1 := g.FindNode("(Invalid*, Valid-Exclusive)")
	s2 := g.FindNode("(Invalid*, Dirty)")
	s3 := g.FindNode("(Invalid*, Shared+)")
	s4 := g.FindNode("(Invalid+, Shared)")

	nstepOf := func(from, to int, op fsm.Op, origin fsm.State) bool {
		for _, e := range g.Edges {
			if e.From == from && e.To == to && e.Op == op && e.Origin == origin {
				return e.NStep
			}
		}
		t.Fatalf("edge %d->%d %s_%s not found", from, to, op, origin)
		return false
	}
	// R^n_inv into (Shared+, Invalid*), from Dirty and V-Ex states.
	if !nstepOf(s2, s3, fsm.OpRead, "Invalid") {
		t.Error("(Dirty,Inv*) --R_inv--> (Shared+,Inv*) must be N-step")
	}
	if !nstepOf(s1, s3, fsm.OpRead, "Invalid") {
		t.Error("(V-Ex,Inv*) --R_inv--> (Shared+,Inv*) must be N-step")
	}
	// Rep^n_shared from (Shared+, Inv*) down to (Shared, Inv+).
	if !nstepOf(s3, s4, fsm.OpReplace, "Shared") {
		t.Error("(Shared+,Inv*) --Z_shared--> (Shared,Inv+) must be N-step")
	}
	// R^n_inv self-loop at (Shared+, Inv*).
	if !nstepOf(s3, s3, fsm.OpRead, "Invalid") {
		t.Error("(Shared+,Inv*) --R_inv--> self must be N-step")
	}
	// Negative cases: plain one-step edges.
	s0 := g.FindNode("(Invalid+)")
	if nstepOf(s0, s2, fsm.OpWrite, "Invalid") {
		t.Error("(Inv+) --W_inv--> (Dirty,Inv*) is a single step, not N-step")
	}
	if nstepOf(s0, s1, fsm.OpRead, "Invalid") {
		t.Error("(Inv+) --R_inv--> (V-Ex,Inv*) is a single step, not N-step")
	}
	if nstepOf(s3, s3, fsm.OpRead, "Shared") {
		t.Error("a read hit is never N-step")
	}
}

func TestGlobalEdgesSortedAndDeduped(t *testing.T) {
	_, g := illinoisGlobal(t)
	type key struct {
		f, t   int
		op     fsm.Op
		origin fsm.State
	}
	seen := map[key]bool{}
	for i, e := range g.Edges {
		k := key{e.From, e.To, e.Op, e.Origin}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
		if i > 0 {
			prev := g.Edges[i-1]
			if prev.From > e.From {
				t.Fatal("edges not sorted by source")
			}
		}
	}
}

func TestGlobalDOTOutput(t *testing.T) {
	_, g := illinoisGlobal(t)
	dot := g.DOT()
	for _, want := range []string{
		"digraph \"Illinois\"",
		"s0", "s4",
		"->",
		"(Invalid+)",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestGlobalAllProtocols(t *testing.T) {
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			eng, err := symbolic.NewEngine(p)
			if err != nil {
				t.Fatal(err)
			}
			res := eng.Expand(symbolic.Options{})
			g, err := BuildGlobal(eng, res.Essential)
			if err != nil {
				t.Fatal(err)
			}
			if g.Initial < 0 || g.Initial >= len(g.Nodes) {
				t.Fatalf("bad initial node %d", g.Initial)
			}
			if len(g.Edges) == 0 {
				t.Fatal("no edges")
			}
			// Every node must be reachable from the initial node — the
			// strong-connectivity premise of Definition 1 lifts to the
			// global diagram for these protocols.
			adj := make(map[int][]int)
			for _, e := range g.Edges {
				adj[e.From] = append(adj[e.From], e.To)
			}
			seen := map[int]bool{g.Initial: true}
			stack := []int{g.Initial}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, m := range adj[n] {
					if !seen[m] {
						seen[m] = true
						stack = append(stack, m)
					}
				}
			}
			if len(seen) != len(g.Nodes) {
				t.Fatalf("only %d/%d nodes reachable from the initial state", len(seen), len(g.Nodes))
			}
		})
	}
}

func TestBuildGlobalRejectsIncompleteEssentialSet(t *testing.T) {
	p := protocols.Illinois()
	eng, err := symbolic.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Expand(symbolic.Options{})
	// Drop one essential state: coverage must fail.
	if _, err := BuildGlobal(eng, res.Essential[:len(res.Essential)-1]); err == nil {
		t.Fatal("BuildGlobal must reject an incomplete essential set")
	}
	if _, err := BuildGlobal(eng, nil); err == nil {
		t.Fatal("BuildGlobal must reject an empty essential set")
	}
}

func TestLocalIllinoisDiagram(t *testing.T) {
	p := protocols.Illinois()
	l := BuildLocal(p)
	if len(l.Edges) != len(p.Rules) {
		t.Fatalf("local diagram has %d edges, want %d", len(l.Edges), len(p.Rules))
	}
	// Spot-check the Figure 1 adjacency.
	checks := []struct {
		from, to fsm.State
		op       fsm.Op
	}{
		{"Invalid", "Valid-Exclusive", fsm.OpRead},
		{"Invalid", "Shared", fsm.OpRead},
		{"Invalid", "Dirty", fsm.OpWrite},
		{"Valid-Exclusive", "Dirty", fsm.OpWrite},
		{"Shared", "Dirty", fsm.OpWrite},
		{"Dirty", "Invalid", fsm.OpReplace},
	}
	for _, c := range checks {
		if !l.HasEdge(c.from, c.to, c.op) {
			t.Errorf("missing local edge %s --%s--> %s", c.from, c.op, c.to)
		}
	}
	if l.HasEdge("Dirty", "Shared", fsm.OpWrite) {
		t.Error("phantom local edge Dirty --W--> Shared")
	}
}

func TestLocalDiagramSorted(t *testing.T) {
	l := BuildLocal(protocols.Illinois())
	for i := 1; i < len(l.Edges); i++ {
		if l.Edges[i-1].From > l.Edges[i].From {
			t.Fatal("local edges not sorted")
		}
	}
}

func TestLocalDOTOutput(t *testing.T) {
	l := BuildLocal(protocols.Illinois())
	dot := l.DOT()
	for _, want := range []string{"Illinois-local", "\"Invalid\"", "\"Dirty\"", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("local DOT missing %q", want)
		}
	}
}

func TestLocalEdgeLabelIncludesGuard(t *testing.T) {
	l := BuildLocal(protocols.Illinois())
	sawGuarded, sawPlain := false, false
	for _, e := range l.Edges {
		label := e.Label()
		if e.Guard.Kind == fsm.GuardAlways {
			if strings.Contains(label, "[") {
				t.Errorf("unguarded label %q should not show a guard", label)
			}
			sawPlain = true
		} else {
			if !strings.Contains(label, "[") {
				t.Errorf("guarded label %q should show the guard", label)
			}
			sawGuarded = true
		}
	}
	if !sawGuarded || !sawPlain {
		t.Error("expected both guarded and unguarded edges")
	}
}
