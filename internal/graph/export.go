package graph

import "encoding/json"

// This file renders both transition diagrams — the symbolic global diagram
// of Figure 4 (Global) and its concrete reachability counterpart (Concrete)
// — into one machine-readable JSON shape. The rendering is deterministic:
// nodes and edges are emitted in the diagrams' canonical orders and the
// encoder writes struct fields in declaration order, so equal diagrams
// produce byte-identical exports (the service pins this in its tests).

// GraphSchema versions the JSON export shape.
const GraphSchema = 1

// NodeJSON is one node of an exported diagram.
type NodeJSON struct {
	// Name is the short node name ("s0"/"c0", ...), the identifier edges
	// reference.
	Name string `json:"name"`
	// Label is the node's human-readable identity: the composite structure
	// string for global diagrams, the canonical configuration key for
	// concrete ones.
	Label string `json:"label"`
	// Context carries the global diagram's context variables ("" for
	// concrete diagrams).
	Context string `json:"context,omitempty"`
	Initial bool   `json:"initial,omitempty"`
}

// EdgeJSON is one labelled transition of an exported diagram.
type EdgeJSON struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Label string `json:"label"`
	Op    string `json:"op"`
	// Origin is the issuing cache's class (global diagrams); Cache is the
	// issuing cache's index (concrete diagrams).
	Origin string `json:"origin,omitempty"`
	Cache  *int   `json:"cache,omitempty"`
	NStep  bool   `json:"nstep,omitempty"`
	Rule   string `json:"rule,omitempty"`
}

// ExportJSON is the top-level JSON export shape shared by both diagrams.
type ExportJSON struct {
	Schema   int    `json:"schema"`
	Protocol string `json:"protocol"`
	// Kind is "global" (essential composite states, Figure 4) or
	// "concrete" (canonical configurations of an n-cache enumeration).
	Kind string `json:"kind"`
	// N and Mode describe a concrete diagram's geometry and equivalence
	// (absent for global diagrams).
	N         int        `json:"n,omitempty"`
	Mode      string     `json:"mode,omitempty"`
	Truncated bool       `json:"truncated,omitempty"`
	Nodes     []NodeJSON `json:"nodes"`
	Edges     []EdgeJSON `json:"edges"`
}

// marshal renders an export with a trailing newline, the byte form both
// diagrams serve.
func marshal(e *ExportJSON) ([]byte, error) {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// JSON renders the global diagram as deterministic bytes.
func (g *Global) JSON() ([]byte, error) {
	e := &ExportJSON{Schema: GraphSchema, Protocol: g.Protocol.Name, Kind: "global"}
	e.Nodes = make([]NodeJSON, len(g.Nodes))
	for i, n := range g.Nodes {
		e.Nodes[i] = NodeJSON{
			Name:    g.NodeName(i),
			Label:   n.StructureString(g.Protocol),
			Context: n.ContextString(g.Protocol),
			Initial: i == g.Initial,
		}
	}
	for _, ed := range g.Edges {
		e.Edges = append(e.Edges, EdgeJSON{
			From: g.NodeName(ed.From), To: g.NodeName(ed.To),
			Label: ed.Label(), Op: string(ed.Op), Origin: string(ed.Origin),
			NStep: ed.NStep, Rule: ed.Rule,
		})
	}
	return marshal(e)
}

// JSON renders the concrete diagram as deterministic bytes.
func (g *Concrete) JSON() ([]byte, error) {
	e := &ExportJSON{
		Schema: GraphSchema, Protocol: g.Protocol.Name, Kind: "concrete",
		N: g.N, Mode: g.Mode, Truncated: g.Truncated,
	}
	e.Nodes = make([]NodeJSON, len(g.Nodes))
	for i, key := range g.Nodes {
		e.Nodes[i] = NodeJSON{Name: g.NodeName(i), Label: key, Initial: i == g.Initial}
	}
	for _, ed := range g.Edges {
		cache := ed.Cache
		e.Edges = append(e.Edges, EdgeJSON{
			From: g.NodeName(ed.From), To: g.NodeName(ed.To),
			Label: ed.Label(), Op: string(ed.Op), Cache: &cache, Rule: ed.Rule,
		})
	}
	return marshal(e)
}
