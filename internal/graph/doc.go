// Package graph builds the global transition diagrams of the paper over a
// protocol's essential composite states (Figure 4) and the per-cache local
// transition diagram (Figure 1), and exports both to Graphviz DOT.
//
// The global diagram is computed in a second pass after the symbolic
// expansion: every essential state is expanded one step and each raw
// successor is mapped to the essential state that contains it (the mapping
// exists by Theorem 1). Edges carry the paper's labels: the operation
// (R/W/Z), the originating cache's state class as a subscript, and the
// N-step superscript where one edge stands for an arbitrary number of
// repetitions of the same event (rule 4 of Section 3.2.3). An edge is
// annotated N-step when the symbolic engine derived it from a copy-count
// downgrade branch, or when it is absorbing (re-applying the event at the
// target is a self-loop), which recovers the annotations of Figure 4 and
// Appendix A.2.
package graph
