package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fsm"
	"repro/internal/symbolic"
)

// Edge is one labelled transition of the global diagram between essential
// states.
type Edge struct {
	From, To int // node indexes
	Op       fsm.Op
	Origin   fsm.State
	NStep    bool
	Rule     string
}

// Label renders the edge label in the paper's notation (e.g. "R^n_Invalid").
func (e Edge) Label() string {
	return symbolic.Label{Op: e.Op, Origin: e.Origin, NStep: e.NStep}.String()
}

// Global is the global transition diagram over essential states (Figure 4).
type Global struct {
	Protocol *fsm.Protocol
	// Nodes are the essential states in canonical order (SortStates).
	Nodes []*symbolic.CState
	// Edges are deduplicated labelled transitions, sorted by (From, To, label).
	Edges []Edge
	// Initial is the node index of the initial state's representative.
	Initial int
}

// BuildGlobal recomputes the one-step successors of every essential state
// and maps each onto the containing essential state. Expansion must have
// verified the protocol already: every successor of an essential state must
// be covered by some essential state, otherwise BuildGlobal reports an
// error (a completeness failure).
func BuildGlobal(eng *symbolic.Engine, essential []*symbolic.CState) (*Global, error) {
	p := eng.Protocol()
	nodes := symbolic.SortStates(essential)
	index := make(map[string]int, len(nodes))
	for i, n := range nodes {
		index[n.Key()] = i
	}

	g := &Global{Protocol: p, Nodes: nodes, Initial: -1}
	init := eng.Initial()
	for i, n := range nodes {
		if symbolic.Contains(n, init) {
			g.Initial = i
			break
		}
	}
	if g.Initial < 0 {
		return nil, fmt.Errorf("graph: initial state %s not covered by any essential state", init.StructureString(p))
	}

	type edgeKey struct {
		from, to int
		op       fsm.Op
		origin   fsm.State
	}
	seen := make(map[edgeKey]*Edge)
	var order []edgeKey

	// accumulating reports whether applying (op, origin) at node keeps it
	// at node while growing (or shrinking) one class — the paper's N-steps
	// rule 4: an arbitrary number of repetitions of the same event stays in
	// the target family. Pure repetition requires the rule's coincident
	// transitions to be the identity on the classes the target populates
	// (e.g. consecutive read misses each add one Shared copy); events that
	// merely exchange roles between caches (a write miss replacing the
	// single Dirty owner) are not N-steps.
	accumCache := make(map[edgeKey]bool)
	accumulating := func(node int, op fsm.Op, origin fsm.State) bool {
		k := edgeKey{node, node, op, origin}
		if v, ok := accumCache[k]; ok {
			return v
		}
		target := g.Nodes[node]
		succs, _ := eng.Successors(target)
		res := false
		for _, su := range succs {
			if su.Label.Op != op || su.Label.Origin != origin {
				continue
			}
			if !symbolic.Contains(target, su.State) {
				continue
			}
			if su.Rule.From == su.Rule.Next {
				continue // a hit repeats nothing: no cache changes class
			}
			identity := true
			for i, st := range p.States {
				if target.Rep(i) != symbolic.RZero && su.Rule.ObservedNext(st) != st {
					identity = false
					break
				}
			}
			if identity {
				res = true
				break
			}
		}
		accumCache[k] = res
		return res
	}

	for fi, node := range nodes {
		succs, errs := eng.Successors(node)
		if len(errs) > 0 {
			return nil, fmt.Errorf("graph: expanding essential state %s: %v", node.StructureString(p), errs[0])
		}
		for _, su := range succs {
			target, ok := symbolic.CoveredBy(su.State, nodes)
			if !ok {
				return nil, fmt.Errorf("graph: successor %s of %s not covered by any essential state",
					su.State.StructureString(p), node.StructureString(p))
			}
			ti := index[target.Key()]
			nstep := su.Label.NStep
			if !nstep && accumulating(ti, su.Label.Op, su.Label.Origin) {
				nstep = true
			}
			k := edgeKey{fi, ti, su.Label.Op, su.Label.Origin}
			if prev, ok := seen[k]; ok {
				// Keep the strongest annotation for a duplicated edge.
				prev.NStep = prev.NStep || nstep
				continue
			}
			seen[k] = &Edge{From: fi, To: ti, Op: su.Label.Op, Origin: su.Label.Origin, NStep: nstep, Rule: su.Rule.Name}
			order = append(order, k)
		}
	}

	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		if a.op != b.op {
			return a.op < b.op
		}
		return a.origin < b.origin
	})
	for _, k := range order {
		g.Edges = append(g.Edges, *seen[k])
	}
	return g, nil
}

// NodeName returns a short name for node i ("s0", "s1", ...).
func (g *Global) NodeName(i int) string { return fmt.Sprintf("s%d", i) }

// HasEdge reports whether the diagram has an edge (from, to) labelled with
// op originated by origin, ignoring the N-step annotation.
func (g *Global) HasEdge(from, to int, op fsm.Op, origin fsm.State) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to && e.Op == op && e.Origin == origin {
			return true
		}
	}
	return false
}

// FindNode returns the index of the essential state whose structure string
// matches, or -1.
func (g *Global) FindNode(structure string) int {
	for i, n := range g.Nodes {
		if n.StructureString(g.Protocol) == structure {
			return i
		}
	}
	return -1
}

// DOT renders the diagram in Graphviz format, with one record per node
// showing the composite structure and the context variables.
func (g *Global) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Protocol.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for i, n := range g.Nodes {
		label := fmt.Sprintf("%s\\n%s\\n%s", g.NodeName(i),
			escape(n.StructureString(g.Protocol)), escape(n.ContextString(g.Protocol)))
		attrs := ""
		if i == g.Initial {
			attrs = ", penwidth=2"
		}
		fmt.Fprintf(&b, "  %s [label=\"%s\"%s];\n", g.NodeName(i), label, attrs)
	}
	// Pool parallel edges into one arrow with a combined label.
	type pair struct{ from, to int }
	labels := make(map[pair][]string)
	var pairs []pair
	for _, e := range g.Edges {
		pr := pair{e.From, e.To}
		if _, ok := labels[pr]; !ok {
			pairs = append(pairs, pr)
		}
		labels[pr] = append(labels[pr], e.Label())
	}
	for _, pr := range pairs {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%s\"];\n",
			g.NodeName(pr.from), g.NodeName(pr.to), escape(strings.Join(labels[pr], ", ")))
	}
	b.WriteString("}\n")
	return b.String()
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
