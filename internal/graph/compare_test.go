package graph

import (
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/symbolic"
)

func globalOf(t *testing.T, name string) *Global {
	t.Helper()
	p, err := protocols.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := symbolic.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Expand(symbolic.Options{})
	if !res.OK() {
		t.Fatalf("%s must verify clean", name)
	}
	g, err := BuildGlobal(eng, res.Essential)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIsomorphicReflexive(t *testing.T) {
	for _, name := range protocols.Names() {
		g := globalOf(t, name)
		mapping, ok := Isomorphic(g, g)
		if !ok {
			t.Errorf("%s: diagram not isomorphic to itself", name)
			continue
		}
		for i, j := range mapping {
			if i != j {
				t.Errorf("%s: self-isomorphism should be identity-compatible, got %v", name, mapping)
				break
			}
		}
	}
}

func TestRenamedProtocolIsIsomorphic(t *testing.T) {
	// A protocol with renamed states has the same global behavior; the
	// comparison must see through the names.
	p := protocols.MSI()
	q := p.Clone()
	q.Name = "MSI-renamed"
	ren := map[fsm.State]fsm.State{
		"Invalid": "Gone", "Shared": "Clean", "Modified": "Owned",
	}
	mapState := func(s fsm.State) fsm.State { return ren[s] }
	for i := range q.States {
		q.States[i] = mapState(q.States[i])
	}
	q.Initial = mapState(q.Initial)
	mapSet := func(set []fsm.State) {
		for i := range set {
			set[i] = mapState(set[i])
		}
	}
	mapSet(q.Inv.ValidCopy)
	mapSet(q.Inv.Readable)
	mapSet(q.Inv.Exclusive)
	mapSet(q.Inv.Owners)
	mapSet(q.Inv.CleanShared)
	for i := range q.Rules {
		r := &q.Rules[i]
		r.From = mapState(r.From)
		r.Next = mapState(r.Next)
		mapSet(r.Guard.States)
		mapSet(r.Data.Suppliers)
		obs := make(map[fsm.State]fsm.State, len(r.Observe))
		for a, b := range r.Observe {
			obs[mapState(a)] = mapState(b)
		}
		r.Observe = obs
	}
	q = q.Clone() // rebuild indexes
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}

	eng, err := symbolic.NewEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Expand(symbolic.Options{})
	gq, err := BuildGlobal(eng, res.Essential)
	if err != nil {
		t.Fatal(err)
	}
	gp := globalOf(t, "msi")
	mapping, ok := Isomorphic(gp, gq)
	if !ok {
		t.Fatal("a renamed protocol must be isomorphic to the original")
	}
	if mapping[gp.Initial] != gq.Initial {
		t.Error("initial states must correspond")
	}
}

func TestSynapseNotIsomorphicToMSI(t *testing.T) {
	// The two three-state protocols differ in exactly one behavior: on a
	// read miss, the Synapse Dirty holder writes back and invalidates
	// itself (edge to the one-copy family), whereas the MSI owner degrades
	// to Shared (edge to the many-copies family). The comparison must
	// report the disparity.
	syn := globalOf(t, "synapse")
	msi := globalOf(t, "msi")
	if _, ok := Isomorphic(syn, msi); ok {
		t.Fatal("Synapse's self-invalidating owner distinguishes it from MSI")
	}
	// The disparity is visible as the R-edge out of the dirty state.
	sd := syn.FindNode("(Invalid*, Dirty)")
	s0 := syn.FindNode("(Invalid+, Valid*)")
	if !syn.HasEdge(sd, s0, fsm.OpRead, "Invalid") {
		t.Error("Synapse: a read miss at the dirty state must fall back to the no-sharers family")
	}
	md := msi.FindNode("(Invalid*, Modified)")
	m1 := msi.FindNode("(Invalid*, Shared+)")
	if !msi.HasEdge(md, m1, fsm.OpRead, "Invalid") {
		t.Error("MSI: a read miss at the modified state must move to the shared family")
	}
}

func TestSuiteIsomorphismCensus(t *testing.T) {
	// Empirical "similarities and disparities" result over the whole suite:
	// the only op-isomorphic pair is Illinois/MESI, which share the state
	// machine and differ only in the data path (cache-to-cache vs memory
	// supply on clean misses); every other pair is behaviorally distinct.
	names := protocols.Names()
	var isoPairs [][2]string
	for i, a := range names {
		ga := globalOf(t, a)
		for _, b := range names[i+1:] {
			gb := globalOf(t, b)
			if _, ok := Isomorphic(ga, gb); ok {
				isoPairs = append(isoPairs, [2]string{a, b})
			}
		}
	}
	if len(isoPairs) != 1 || isoPairs[0] != [2]string{"illinois", "mesi"} {
		t.Fatalf("isomorphic pairs = %v, want exactly [illinois mesi]", isoPairs)
	}
}

func TestIllinoisNotIsomorphicToMSI(t *testing.T) {
	ill := globalOf(t, "illinois")
	msi := globalOf(t, "msi")
	if _, ok := Isomorphic(ill, msi); ok {
		t.Fatal("5-state Illinois cannot be isomorphic to 3-state MSI")
	}
}

func TestIllinoisVersusFireflyDisparity(t *testing.T) {
	// Both have 5 essential states and identical structure strings, but the
	// protocols behave differently (a Firefly write to a lone Shared block
	// goes to Valid-Exclusive, not Dirty; Firefly never invalidates).
	// Compare must report the disparity honestly, whatever it is, and the
	// op-census must differ or the mapping must exist — pin the measured
	// outcome so behavioral drifts become visible.
	ill := globalOf(t, "illinois")
	ff := globalOf(t, "firefly")
	d := Compare(ill, ff)
	if d.NodesA != 5 || d.NodesB != 5 {
		t.Fatalf("both should have 5 nodes: %+v", d)
	}
	if d.Isomorphic {
		t.Fatalf("Illinois and Firefly differ behaviorally; diagrams should not be op-isomorphic:\n%s", d)
	}
}

func TestCompareString(t *testing.T) {
	d := Compare(globalOf(t, "synapse"), globalOf(t, "msi"))
	s := d.String()
	if !strings.Contains(s, "isomorphic") || !strings.Contains(s, "edges") {
		t.Errorf("comparison rendering incomplete: %s", s)
	}
}

func TestGlobalDiagramsStronglyConnected(t *testing.T) {
	// Every protocol here can always return to (Invalid⁺) via replacements
	// and leave it via misses, so the global diagram is strongly connected.
	for _, name := range protocols.Names() {
		g := globalOf(t, name)
		if !g.StronglyConnected() {
			t.Errorf("%s: global diagram not strongly connected", name)
		}
	}
}

func TestLocalDiagramsStronglyConnected(t *testing.T) {
	// Definition 1 requires the per-cache FSM to be strongly connected.
	for _, p := range protocols.All() {
		if !LocalStronglyConnected(p) {
			t.Errorf("%s: per-cache FSM not strongly connected (Definition 1)", p.Name)
		}
	}
}

func TestLocalStronglyConnectedDetectsSinks(t *testing.T) {
	p := protocols.Illinois()
	// Remove every replacement rule: Dirty becomes inescapable only via
	// observation... it does not: writes by others invalidate it. Instead
	// remove all rules leaving Invalid: Invalid becomes a sink.
	var rules []int
	for i := range p.Rules {
		if p.Rules[i].From != "Invalid" {
			rules = append(rules, i)
		}
	}
	q := p.Clone()
	q.Rules = nil
	for _, i := range rules {
		q.Rules = append(q.Rules, p.Rules[i])
	}
	if LocalStronglyConnected(q) {
		t.Fatal("a protocol whose Invalid state is a sink must fail the check")
	}
}
