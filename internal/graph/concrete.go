package graph

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/compile"
	"repro/internal/enum"
	"repro/internal/fsm"
)

// ConcreteEdge is one labelled transition of the concrete reachability
// diagram between canonical configurations.
type ConcreteEdge struct {
	From, To int // node indexes
	Op       fsm.Op
	Cache    int // issuing cache index
	Rule     string
}

// Label renders the edge label ("R0", "W2", "Z1": op mnemonic + issuing
// cache index).
func (e ConcreteEdge) Label() string {
	return string(e.Op) + strconv.Itoa(e.Cache)
}

// Concrete is the transition diagram over the canonical configurations an
// explicit-state enumeration reaches: the concrete counterpart of the
// paper's Figure 4, with one node per distinct canonical configuration
// instead of one per essential composite state.
type Concrete struct {
	Protocol *fsm.Protocol
	N        int
	Mode     string // enum.ModeStrict or enum.ModeCounting
	// Nodes are the canonical configuration keys in BFS discovery order —
	// the engines' admission order, so node numbering is deterministic.
	Nodes []string
	// Edges are deduplicated labelled transitions in discovery order.
	Edges []ConcreteEdge
	// Initial is the node index of the initial configuration (always 0).
	Initial int
	// Truncated reports that MaxStates stopped discovery early; edges into
	// undiscovered configurations are omitted.
	Truncated bool
}

// BuildConcrete enumerates the canonical configurations of p with n caches
// under the given equivalence mode and returns the labelled transition
// diagram, expanding through the shared compiled representation with the
// engines' expansion policy (same op order, same counting-mode symmetry
// pruning), so the node set matches an enum run's distinct-state census
// exactly. maxStates > 0 bounds discovery; spec-level step errors fail the
// build, matching the engines' refusal to certify an ill-formed protocol.
func BuildConcrete(p *fsm.Protocol, n int, mode string, maxStates int) (*Concrete, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: need at least one cache, got %d", n)
	}
	if mode != enum.ModeStrict && mode != enum.ModeCounting {
		return nil, fmt.Errorf("graph: unknown equivalence mode %q", mode)
	}
	cp, err := compile.Compile(p)
	if err != nil {
		return nil, err
	}
	g := &Concrete{Protocol: p, N: n, Mode: mode}
	symmetric := mode == enum.ModeCounting

	init := fsm.NewConfig(p, n)
	enum.Canonicalize(init)
	initKey, err := enum.CanonicalKey(init, mode)
	if err != nil {
		return nil, err
	}
	index := map[string]int{initKey: 0}
	g.Nodes = append(g.Nodes, initKey)
	queue := []*fsm.Config{init}

	type edgeKey struct {
		from, to int
		op       fsm.Op
		cache    int
	}
	seen := make(map[edgeKey]bool)

	var base, work compile.Config
	var decoded fsm.Config
	for at := 0; at < len(queue); at++ {
		cur := queue[at]
		from := at
		if err := cp.Encode(cur, &base); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if symmetric && enum.SymmetryShadowed(cur, i) {
				continue
			}
			st := int(base.States[i])
			for k, op := range p.Ops {
				if !cp.HasRules(st, k) {
					continue
				}
				work.CopyFrom(&base)
				res, err := cp.Step(&work, i, k)
				if err != nil {
					return nil, fmt.Errorf("graph: expanding %s: %w", g.Nodes[from], err)
				}
				cp.Decode(&work, &decoded)
				enum.Canonicalize(&decoded)
				key, err := enum.CanonicalKey(&decoded, mode)
				if err != nil {
					return nil, err
				}
				to, ok := index[key]
				if !ok {
					if maxStates > 0 && len(g.Nodes) >= maxStates {
						g.Truncated = true
						continue
					}
					to = len(g.Nodes)
					index[key] = to
					g.Nodes = append(g.Nodes, key)
					queue = append(queue, decoded.Clone())
				}
				ek := edgeKey{from, to, op, i}
				if seen[ek] {
					continue
				}
				seen[ek] = true
				rule := ""
				if r := cp.Result(res).Rule; r != nil {
					rule = r.Name
				}
				g.Edges = append(g.Edges, ConcreteEdge{From: from, To: to, Op: op, Cache: i, Rule: rule})
			}
		}
	}
	return g, nil
}

// NodeName returns a short name for node i ("c0", "c1", ...).
func (g *Concrete) NodeName(i int) string { return fmt.Sprintf("c%d", i) }

// DOT renders the concrete diagram in Graphviz format. The output is
// deterministic: nodes in discovery order, parallel edges pooled into one
// arrow with a combined label in discovery order.
func (g *Concrete) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Protocol.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for i, key := range g.Nodes {
		attrs := ""
		if i == g.Initial {
			attrs = ", penwidth=2"
		}
		fmt.Fprintf(&b, "  %s [label=\"%s\\n%s\"%s];\n", g.NodeName(i), g.NodeName(i), escape(key), attrs)
	}
	type pair struct{ from, to int }
	labels := make(map[pair][]string)
	var pairs []pair
	for _, e := range g.Edges {
		pr := pair{e.From, e.To}
		if _, ok := labels[pr]; !ok {
			pairs = append(pairs, pr)
		}
		labels[pr] = append(labels[pr], e.Label())
	}
	for _, pr := range pairs {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%s\"];\n",
			g.NodeName(pr.from), g.NodeName(pr.to), escape(strings.Join(labels[pr], ", ")))
	}
	b.WriteString("}\n")
	return b.String()
}
