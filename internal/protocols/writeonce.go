package protocols

import "repro/internal/fsm"

// State symbols of Goodman's Write-Once protocol.
const (
	WOInvalid  fsm.State = "Invalid"
	WOValid    fsm.State = "Valid"
	WOReserved fsm.State = "Reserved"
	WODirty    fsm.State = "Dirty"
)

// WriteOnce returns Goodman's Write-Once protocol as described by Archibald
// and Baer. The first write to a Valid block is written through to memory
// (the "write once"), leaving the block Reserved and invalidating remote
// copies; subsequent writes are local and leave the block Dirty. The
// characteristic function is null: next states never depend on the global
// state, only the data path does (memory vs dirty-owner supply).
func WriteOnce() *fsm.Protocol {
	valid := []fsm.State{WOValid, WOReserved, WODirty}
	invAll := map[fsm.State]fsm.State{
		WOValid:    WOInvalid,
		WOReserved: WOInvalid,
		WODirty:    WOInvalid,
	}
	// On any bus read, exclusive clean/dirty holders degrade to Valid.
	readObs := map[fsm.State]fsm.State{
		WODirty:    WOValid,
		WOReserved: WOValid,
	}
	p := &fsm.Protocol{
		Name:           "Write-Once",
		States:         []fsm.State{WOInvalid, WOValid, WOReserved, WODirty},
		Initial:        WOInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharNull,
		Inv: fsm.Invariants{
			Exclusive:   []fsm.State{WOReserved, WODirty},
			Owners:      []fsm.State{WODirty},
			Readable:    valid,
			ValidCopy:   valid,
			CleanShared: []fsm.State{WOValid, WOReserved},
		},
		Rules: []fsm.Rule{
			// --- Reads ---
			{
				Name: "read-hit-valid", From: WOValid, On: fsm.OpRead,
				Guard: fsm.Always(), Next: WOValid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-reserved", From: WOReserved, On: fsm.OpRead,
				Guard: fsm.Always(), Next: WOReserved,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-dirty", From: WODirty, On: fsm.OpRead,
				Guard: fsm.Always(), Next: WODirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				// A Dirty owner inhibits memory, supplies the block and
				// writes it back; every copy ends Valid.
				Name: "read-miss-dirty-owner", From: WOInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(WODirty), Next: WOValid,
				Observe: readObs,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{WODirty},
					SupplierWriteBack: true,
				},
			},
			{
				Name: "read-miss-clean", From: WOInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(WODirty), Next: WOValid,
				Observe: readObs,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory},
			},
			// --- Writes ---
			{
				Name: "write-hit-dirty", From: WODirty, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: WODirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-hit-reserved", From: WOReserved, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: WODirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				// The write-once: write through to memory, invalidate remote
				// copies, keep the block Reserved.
				Name: "write-once", From: WOValid, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: WOReserved,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true, WriteThrough: true},
			},
			{
				Name: "write-miss-dirty-owner", From: WOInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(WODirty), Next: WODirty,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{WODirty},
					SupplierWriteBack: true, Store: true,
				},
			},
			{
				Name: "write-miss-clean", From: WOInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(WODirty), Next: WODirty,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			// --- Replacements ---
			{
				Name: "replace-dirty", From: WODirty, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: WOInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
			},
			{
				// Reserved blocks are consistent with memory thanks to the
				// write-through, so replacement is silent.
				Name: "replace-reserved", From: WOReserved, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: WOInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
			{
				Name: "replace-valid", From: WOValid, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: WOInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
		},
	}
	mustValidate(p)
	return p
}
