package protocols

import "repro/internal/fsm"

// State symbols of the Illinois protocol (paper Section 2.3 and Figure 1).
const (
	IllInvalid fsm.State = "Invalid"
	IllVEx     fsm.State = "Valid-Exclusive"
	IllShared  fsm.State = "Shared"
	IllDirty   fsm.State = "Dirty"
)

// Illinois returns the Illinois (MESI) protocol exactly as specified in
// Section 2.3 of the paper:
//
//   - Read hit: no coherence action.
//   - Read miss: a Dirty cache supplies the block and updates memory, both
//     end Shared; otherwise a Shared/Valid-Exclusive cache supplies and all
//     copies end Shared; otherwise memory supplies and the block loads
//     Valid-Exclusive. The choice depends on the sharing-detection function,
//     so the characteristic function F is non-null.
//   - Write hit: Dirty stays put; Valid-Exclusive silently becomes Dirty;
//     Shared invalidates all remote copies and becomes Dirty.
//   - Write miss: like a read miss but every remote copy is invalidated and
//     the block loads Dirty.
//   - Replacement: a Dirty block is written back to memory.
func Illinois() *fsm.Protocol {
	valid := []fsm.State{IllVEx, IllShared, IllDirty}
	invAll := map[fsm.State]fsm.State{
		IllVEx:    IllInvalid,
		IllShared: IllInvalid,
		IllDirty:  IllInvalid,
	}
	p := &fsm.Protocol{
		Name:           "Illinois",
		States:         []fsm.State{IllInvalid, IllVEx, IllShared, IllDirty},
		Initial:        IllInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharSharing,
		Inv: fsm.Invariants{
			Exclusive:   []fsm.State{IllVEx, IllDirty},
			Owners:      []fsm.State{IllDirty},
			Readable:    valid,
			ValidCopy:   valid,
			CleanShared: []fsm.State{IllVEx, IllShared},
		},
		Rules: []fsm.Rule{
			// --- Reads ---
			{
				Name: "read-hit-vex", From: IllVEx, On: fsm.OpRead,
				Guard: fsm.Always(), Next: IllVEx,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-shared", From: IllShared, On: fsm.OpRead,
				Guard: fsm.Always(), Next: IllShared,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-dirty", From: IllDirty, On: fsm.OpRead,
				Guard: fsm.Always(), Next: IllDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				// "If cache Cj has a Dirty copy, Cj supplies the missing
				// block and updates main memory at the same time; both Ci
				// and Cj end up in state Shared."
				Name: "read-miss-dirty-owner", From: IllInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(IllDirty), Next: IllShared,
				Observe: map[fsm.State]fsm.State{IllDirty: IllShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{IllDirty},
					SupplierWriteBack: true,
				},
			},
			{
				// "If there are Shared or Valid-Exclusive copies in other
				// caches, Ci gets the missing block from one of the caches
				// and all caches with a copy end up in state Shared."
				Name: "read-miss-from-cache", From: IllInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(IllShared, IllVEx), Next: IllShared,
				Observe: map[fsm.State]fsm.State{IllVEx: IllShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{IllShared, IllVEx},
				},
			},
			{
				// "If there is no cached copy, Ci receives a Valid-Exclusive
				// copy from main memory."
				Name: "read-miss-from-memory", From: IllInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(IllVEx, IllShared, IllDirty), Next: IllVEx,
				Data: fsm.DataEffect{Source: fsm.SrcMemory},
			},
			// --- Writes ---
			{
				Name: "write-hit-dirty", From: IllDirty, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: IllDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-hit-vex", From: IllVEx, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: IllDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-hit-shared", From: IllShared, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: IllDirty,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-miss-dirty-owner", From: IllInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(IllDirty), Next: IllDirty,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{IllDirty},
					Store: true,
				},
			},
			{
				Name: "write-miss-from-cache", From: IllInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(IllShared, IllVEx), Next: IllDirty,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{IllShared, IllVEx},
					Store: true,
				},
			},
			{
				Name: "write-miss-from-memory", From: IllInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(IllVEx, IllShared, IllDirty), Next: IllDirty,
				Data: fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			// --- Replacements ---
			{
				Name: "replace-dirty", From: IllDirty, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: IllInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
			},
			{
				Name: "replace-vex", From: IllVEx, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: IllInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
			{
				Name: "replace-shared", From: IllShared, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: IllInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
		},
	}
	mustValidate(p)
	return p
}
