package protocols

import "repro/internal/fsm"

// State symbols of the Xerox Dragon protocol.
const (
	DrInvalid     fsm.State = "Invalid"
	DrVEx         fsm.State = "Valid-Exclusive"
	DrSharedClean fsm.State = "Shared-Clean"
	DrSharedDirty fsm.State = "Shared-Dirty"
	DrDirty       fsm.State = "Dirty"
)

// Dragon returns the Xerox Dragon write-update protocol as described by
// Archibald and Baer. Like Firefly, writes to shared blocks are broadcast
// and update the other cached copies, but memory is NOT updated: the most
// recent writer becomes the block's owner (Shared-Dirty) and carries the
// write-back responsibility. The SharedLine is the sharing-detection
// characteristic function, so F is non-null.
func Dragon() *fsm.Protocol {
	valid := []fsm.State{DrVEx, DrSharedClean, DrSharedDirty, DrDirty}
	owners := []fsm.State{DrSharedDirty, DrDirty}
	p := &fsm.Protocol{
		Name:           "Dragon",
		States:         []fsm.State{DrInvalid, DrVEx, DrSharedClean, DrSharedDirty, DrDirty},
		Initial:        DrInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharSharing,
		Inv: fsm.Invariants{
			Exclusive: []fsm.State{DrVEx, DrDirty},
			Owners:    owners,
			Readable:  valid,
			ValidCopy: valid,
			// Only Valid-Exclusive asserts consistency with memory:
			// Shared-Clean copies may be newer than memory while an owner
			// exists.
			CleanShared: []fsm.State{DrVEx},
		},
		Rules: []fsm.Rule{
			// --- Reads ---
			{
				Name: "read-hit-vex", From: DrVEx, On: fsm.OpRead,
				Guard: fsm.Always(), Next: DrVEx,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-shared-clean", From: DrSharedClean, On: fsm.OpRead,
				Guard: fsm.Always(), Next: DrSharedClean,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-shared-dirty", From: DrSharedDirty, On: fsm.OpRead,
				Guard: fsm.Always(), Next: DrSharedDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-dirty", From: DrDirty, On: fsm.OpRead,
				Guard: fsm.Always(), Next: DrDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				// The owner supplies the block without a memory update and
				// degrades to Shared-Dirty; the requester loads Shared-Clean.
				Name: "read-miss-owned", From: DrInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(owners...), Next: DrSharedClean,
				Observe: map[fsm.State]fsm.State{DrDirty: DrSharedDirty, DrVEx: DrSharedClean},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: owners,
				},
			},
			{
				Name: "read-miss-shared-clean", From: DrInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(DrSharedClean, DrVEx), Next: DrSharedClean,
				Observe: map[fsm.State]fsm.State{DrVEx: DrSharedClean},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{DrSharedClean, DrVEx},
				},
			},
			{
				Name: "read-miss-from-memory", From: DrInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(valid...), Next: DrVEx,
				Data: fsm.DataEffect{Source: fsm.SrcMemory},
			},
			// --- Writes ---
			{
				Name: "write-hit-dirty", From: DrDirty, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: DrDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-hit-vex", From: DrVEx, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: DrDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				// Broadcast update; the writer takes ownership, a previous
				// owner degrades to Shared-Clean. Memory is not updated.
				Name: "write-hit-shared-dirty-line", From: DrSharedDirty, On: fsm.OpWrite,
				Guard: fsm.AnyOther(valid...), Next: DrSharedDirty,
				Data: fsm.DataEffect{
					Source: fsm.SrcKeep, Store: true, UpdateSharers: true,
				},
			},
			{
				Name: "write-hit-shared-dirty-alone", From: DrSharedDirty, On: fsm.OpWrite,
				Guard: fsm.NoOther(valid...), Next: DrDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-hit-shared-clean-line", From: DrSharedClean, On: fsm.OpWrite,
				Guard: fsm.AnyOther(valid...), Next: DrSharedDirty,
				Observe: map[fsm.State]fsm.State{DrSharedDirty: DrSharedClean},
				Data: fsm.DataEffect{
					Source: fsm.SrcKeep, Store: true, UpdateSharers: true,
				},
			},
			{
				Name: "write-hit-shared-clean-alone", From: DrSharedClean, On: fsm.OpWrite,
				Guard: fsm.NoOther(valid...), Next: DrDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-miss-owned", From: DrInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(owners...), Next: DrSharedDirty,
				Observe: map[fsm.State]fsm.State{
					DrDirty: DrSharedClean, DrSharedDirty: DrSharedClean, DrVEx: DrSharedClean,
				},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: owners,
					Store: true, UpdateSharers: true,
				},
			},
			{
				Name: "write-miss-shared-clean", From: DrInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(DrSharedClean, DrVEx), Next: DrSharedDirty,
				Observe: map[fsm.State]fsm.State{DrVEx: DrSharedClean},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{DrSharedClean, DrVEx},
					Store: true, UpdateSharers: true,
				},
			},
			{
				Name: "write-miss-from-memory", From: DrInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(valid...), Next: DrDirty,
				Data: fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			// --- Replacements ---
			{
				Name: "replace-dirty", From: DrDirty, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: DrInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
			},
			{
				Name: "replace-shared-dirty", From: DrSharedDirty, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: DrInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
			},
			{
				Name: "replace-shared-clean", From: DrSharedClean, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: DrInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
			{
				Name: "replace-vex", From: DrVEx, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: DrInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
		},
	}
	mustValidate(p)
	return p
}
