package protocols

import (
	"fmt"

	"repro/internal/fsm"
)

// Synthetic returns a parameterized write-invalidate protocol with `levels`
// clean shared states L1..Lk plus Invalid and Dirty. Read hits promote a
// clean copy one level (L1 → L2 → ... → Lk, saturating) — a caricature of
// protocols that track block "temperature" or generation in the state
// symbol. Coherence-wise it behaves like MSI: any write invalidates the
// remote copies and leaves the writer Dirty.
//
// The family exists to exercise the paper's closing claim that the symbolic
// method can handle "much more complex protocols with large numbers of
// cache states": |Q| = levels+2 grows without touching the protocol logic,
// and the scaling experiment (E11) measures how the essential-state count
// and visit count grow with |Q| while explicit enumeration grows like
// (levels+2)ⁿ.
func Synthetic(levels int) (*fsm.Protocol, error) {
	if levels < 1 {
		return nil, fmt.Errorf("protocols: synthetic protocol needs at least one level, got %d", levels)
	}
	const (
		inv = fsm.State("Invalid")
		dty = fsm.State("Dirty")
	)
	level := func(i int) fsm.State { return fsm.State(fmt.Sprintf("L%d", i)) }

	states := []fsm.State{inv}
	valid := []fsm.State{}
	clean := []fsm.State{}
	for i := 1; i <= levels; i++ {
		states = append(states, level(i))
		valid = append(valid, level(i))
		clean = append(clean, level(i))
	}
	states = append(states, dty)
	valid = append(valid, dty)

	invAll := make(map[fsm.State]fsm.State, levels+1)
	for _, s := range valid {
		invAll[s] = inv
	}

	p := &fsm.Protocol{
		Name:           fmt.Sprintf("Synthetic-%d", levels),
		States:         states,
		Initial:        inv,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharNull,
		Inv: fsm.Invariants{
			Exclusive:   []fsm.State{dty},
			Owners:      []fsm.State{dty},
			Readable:    valid,
			ValidCopy:   valid,
			CleanShared: clean,
		},
	}

	// Read hits: promote one level, saturating at Lk.
	for i := 1; i <= levels; i++ {
		next := level(i + 1)
		if i == levels {
			next = level(levels)
		}
		p.Rules = append(p.Rules, fsm.Rule{
			Name: fmt.Sprintf("read-hit-l%d", i), From: level(i), On: fsm.OpRead,
			Guard: fsm.Always(), Next: next,
			Data: fsm.DataEffect{Source: fsm.SrcKeep},
		})
	}
	p.Rules = append(p.Rules, fsm.Rule{
		Name: "read-hit-dirty", From: dty, On: fsm.OpRead,
		Guard: fsm.Always(), Next: dty,
		Data: fsm.DataEffect{Source: fsm.SrcKeep},
	})

	// Read miss: the dirty owner (if any) supplies and writes back,
	// degrading to L1; otherwise memory supplies. The requester loads L1.
	readObs := map[fsm.State]fsm.State{dty: level(1)}
	p.Rules = append(p.Rules,
		fsm.Rule{
			Name: "read-miss-owned", From: inv, On: fsm.OpRead,
			Guard: fsm.AnyOther(dty), Next: level(1),
			Observe: readObs,
			Data: fsm.DataEffect{
				Source: fsm.SrcCache, Suppliers: []fsm.State{dty},
				SupplierWriteBack: true,
			},
		},
		fsm.Rule{
			Name: "read-miss-clean", From: inv, On: fsm.OpRead,
			Guard: fsm.NoOther(dty), Next: level(1),
			Observe: readObs,
			Data:    fsm.DataEffect{Source: fsm.SrcMemory},
		},
	)

	// Writes: invalidate everything else, end Dirty.
	p.Rules = append(p.Rules, fsm.Rule{
		Name: "write-hit-dirty", From: dty, On: fsm.OpWrite,
		Guard: fsm.Always(), Next: dty,
		Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
	})
	for i := 1; i <= levels; i++ {
		p.Rules = append(p.Rules, fsm.Rule{
			Name: fmt.Sprintf("write-hit-l%d", i), From: level(i), On: fsm.OpWrite,
			Guard: fsm.Always(), Next: dty,
			Observe: invAll,
			Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
		})
	}
	p.Rules = append(p.Rules,
		fsm.Rule{
			Name: "write-miss-owned", From: inv, On: fsm.OpWrite,
			Guard: fsm.AnyOther(dty), Next: dty,
			Observe: invAll,
			Data: fsm.DataEffect{
				Source: fsm.SrcCache, Suppliers: []fsm.State{dty},
				SupplierWriteBack: true, Store: true,
			},
		},
		fsm.Rule{
			Name: "write-miss-clean", From: inv, On: fsm.OpWrite,
			Guard: fsm.NoOther(dty), Next: dty,
			Observe: invAll,
			Data:    fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
		},
	)

	// Replacements.
	p.Rules = append(p.Rules, fsm.Rule{
		Name: "replace-dirty", From: dty, On: fsm.OpReplace,
		Guard: fsm.Always(), Next: inv,
		Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
	})
	for i := 1; i <= levels; i++ {
		p.Rules = append(p.Rules, fsm.Rule{
			Name: fmt.Sprintf("replace-l%d", i), From: level(i), On: fsm.OpReplace,
			Guard: fsm.Always(), Next: inv,
			Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
		})
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("protocols: synthetic(%d): %w", levels, err)
	}
	return p, nil
}
