package protocols

import "repro/internal/fsm"

// State symbols of the DEC Firefly protocol.
const (
	FfInvalid fsm.State = "Invalid"
	FfVEx     fsm.State = "Valid-Exclusive"
	FfShared  fsm.State = "Shared"
	FfDirty   fsm.State = "Dirty"
)

// Firefly returns the DEC Firefly write-broadcast protocol as described by
// Archibald and Baer. Copies are never invalidated: writes to Shared blocks
// are broadcast on the bus, updating both memory (write-through) and every
// other cached copy. The SharedLine bus signal is the sharing-detection
// characteristic function, so F is non-null: a write to a Shared block whose
// SharedLine is no longer asserted promotes the block to Valid-Exclusive,
// and a read miss with no remote copy loads Valid-Exclusive.
func Firefly() *fsm.Protocol {
	valid := []fsm.State{FfVEx, FfShared, FfDirty}
	p := &fsm.Protocol{
		Name:           "Firefly",
		States:         []fsm.State{FfInvalid, FfVEx, FfShared, FfDirty},
		Initial:        FfInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharSharing,
		Inv: fsm.Invariants{
			Exclusive: []fsm.State{FfVEx, FfDirty},
			Owners:    []fsm.State{FfDirty},
			Readable:  valid,
			// Shared copies are clean thanks to write-through.
			ValidCopy:   valid,
			CleanShared: []fsm.State{FfVEx, FfShared},
		},
		Rules: []fsm.Rule{
			// --- Reads ---
			{
				Name: "read-hit-vex", From: FfVEx, On: fsm.OpRead,
				Guard: fsm.Always(), Next: FfVEx,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-shared", From: FfShared, On: fsm.OpRead,
				Guard: fsm.Always(), Next: FfShared,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-dirty", From: FfDirty, On: fsm.OpRead,
				Guard: fsm.Always(), Next: FfDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				// The Dirty holder supplies the block and writes it back;
				// both copies end Shared.
				Name: "read-miss-dirty-owner", From: FfInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(FfDirty), Next: FfShared,
				Observe: map[fsm.State]fsm.State{FfDirty: FfShared, FfVEx: FfShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{FfDirty},
					SupplierWriteBack: true,
				},
			},
			{
				Name: "read-miss-shared", From: FfInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(FfShared, FfVEx), Next: FfShared,
				Observe: map[fsm.State]fsm.State{FfVEx: FfShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{FfShared, FfVEx},
				},
			},
			{
				Name: "read-miss-from-memory", From: FfInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(valid...), Next: FfVEx,
				Data: fsm.DataEffect{Source: fsm.SrcMemory},
			},
			// --- Writes ---
			{
				Name: "write-hit-dirty", From: FfDirty, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: FfDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-hit-vex", From: FfVEx, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: FfDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				// Broadcast write: memory and every other copy are updated;
				// the block stays Shared while the SharedLine is asserted.
				Name: "write-hit-shared-line", From: FfShared, On: fsm.OpWrite,
				Guard: fsm.AnyOther(valid...), Next: FfShared,
				Data: fsm.DataEffect{
					Source: fsm.SrcKeep, Store: true,
					WriteThrough: true, UpdateSharers: true,
				},
			},
			{
				// SharedLine dropped: the copy is the only one left; the
				// write still goes through to memory, leaving the block
				// clean and exclusive.
				Name: "write-hit-shared-alone", From: FfShared, On: fsm.OpWrite,
				Guard: fsm.NoOther(valid...), Next: FfVEx,
				Data: fsm.DataEffect{
					Source: fsm.SrcKeep, Store: true, WriteThrough: true,
				},
			},
			{
				Name: "write-miss-dirty-owner", From: FfInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(FfDirty), Next: FfShared,
				Observe: map[fsm.State]fsm.State{FfDirty: FfShared, FfVEx: FfShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{FfDirty},
					SupplierWriteBack: true, Store: true,
					WriteThrough: true, UpdateSharers: true,
				},
			},
			{
				Name: "write-miss-shared", From: FfInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(FfShared, FfVEx), Next: FfShared,
				Observe: map[fsm.State]fsm.State{FfVEx: FfShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{FfShared, FfVEx},
					Store: true, WriteThrough: true, UpdateSharers: true,
				},
			},
			{
				Name: "write-miss-from-memory", From: FfInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(valid...), Next: FfDirty,
				Data: fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			// --- Replacements ---
			{
				Name: "replace-dirty", From: FfDirty, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: FfInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
			},
			{
				Name: "replace-vex", From: FfVEx, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: FfInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
			{
				Name: "replace-shared", From: FfShared, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: FfInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
		},
	}
	mustValidate(p)
	return p
}
