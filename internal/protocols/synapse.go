package protocols

import "repro/internal/fsm"

// State symbols of the Synapse N+1 protocol.
const (
	SynInvalid fsm.State = "Invalid"
	SynValid   fsm.State = "Valid"
	SynDirty   fsm.State = "Dirty"
)

// Synapse returns the Synapse N+1 protocol as described by Archibald and
// Baer. Its distinguishing behavior: when a miss finds a Dirty copy in
// another cache, that cache writes the block back to memory and invalidates
// its own copy; memory then services the miss. A write hit on a Valid block
// is handled like a write miss. The characteristic function is null.
func Synapse() *fsm.Protocol {
	valid := []fsm.State{SynValid, SynDirty}
	invAll := map[fsm.State]fsm.State{
		SynValid: SynInvalid,
		SynDirty: SynInvalid,
	}
	readObs := map[fsm.State]fsm.State{SynDirty: SynInvalid}
	p := &fsm.Protocol{
		Name:           "Synapse",
		States:         []fsm.State{SynInvalid, SynValid, SynDirty},
		Initial:        SynInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharNull,
		Inv: fsm.Invariants{
			Exclusive:   []fsm.State{SynDirty},
			Owners:      []fsm.State{SynDirty},
			Readable:    valid,
			ValidCopy:   valid,
			CleanShared: []fsm.State{SynValid},
		},
		Rules: []fsm.Rule{
			// --- Reads ---
			{
				Name: "read-hit-valid", From: SynValid, On: fsm.OpRead,
				Guard: fsm.Always(), Next: SynValid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-dirty", From: SynDirty, On: fsm.OpRead,
				Guard: fsm.Always(), Next: SynDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				// The Dirty holder writes back and invalidates itself;
				// the requester is then serviced with the (now fresh)
				// memory copy.
				Name: "read-miss-dirty-owner", From: SynInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(SynDirty), Next: SynValid,
				Observe: readObs,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{SynDirty},
					SupplierWriteBack: true,
				},
			},
			{
				Name: "read-miss-clean", From: SynInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(SynDirty), Next: SynValid,
				Observe: readObs,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory},
			},
			// --- Writes ---
			{
				Name: "write-hit-dirty", From: SynDirty, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: SynDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				// Synapse has no invalidation signal separate from the bus
				// transaction: a write hit on Valid runs a full write-miss
				// sequence, invalidating remote copies.
				Name: "write-hit-valid", From: SynValid, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: SynDirty,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-miss-dirty-owner", From: SynInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(SynDirty), Next: SynDirty,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{SynDirty},
					SupplierWriteBack: true, Store: true,
				},
			},
			{
				Name: "write-miss-clean", From: SynInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(SynDirty), Next: SynDirty,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			// --- Replacements ---
			{
				Name: "replace-dirty", From: SynDirty, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: SynInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
			},
			{
				Name: "replace-valid", From: SynValid, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: SynInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
		},
	}
	mustValidate(p)
	return p
}
