package protocols

import "repro/internal/fsm"

// State symbols of the MOESI protocol.
const (
	MoInvalid   fsm.State = "Invalid"
	MoShared    fsm.State = "Shared"
	MoExclusive fsm.State = "Exclusive"
	MoOwned     fsm.State = "Owned"
	MoModified  fsm.State = "Modified"
)

// MOESI returns the five-state MOESI protocol (the AMD-style generalization
// of Illinois/MESI with Berkeley-style ownership): a Modified block that is
// read by another cache degrades to Owned instead of writing back, keeping
// the write-back responsibility while Shared copies — possibly newer than
// memory — circulate. Post-dating the paper, it is included because it
// composes the two mechanisms (sharing detection AND dirty sharing) that
// the paper's protocols exhibit separately, stressing both at once.
func MOESI() *fsm.Protocol {
	valid := []fsm.State{MoShared, MoExclusive, MoOwned, MoModified}
	owners := []fsm.State{MoOwned, MoModified}
	invAll := map[fsm.State]fsm.State{
		MoShared: MoInvalid, MoExclusive: MoInvalid,
		MoOwned: MoInvalid, MoModified: MoInvalid,
	}
	p := &fsm.Protocol{
		Name:           "MOESI",
		States:         []fsm.State{MoInvalid, MoShared, MoExclusive, MoOwned, MoModified},
		Initial:        MoInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharSharing,
		Inv: fsm.Invariants{
			Exclusive: []fsm.State{MoExclusive, MoModified},
			Owners:    owners,
			Readable:  valid,
			ValidCopy: valid,
			// Only Exclusive asserts memory consistency: Shared copies may
			// be newer than memory while an Owned copy exists.
			CleanShared: []fsm.State{MoExclusive},
		},
		Rules: []fsm.Rule{
			// --- Reads ---
			{Name: "read-hit-shared", From: MoShared, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MoShared,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "read-hit-exclusive", From: MoExclusive, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MoExclusive,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "read-hit-owned", From: MoOwned, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MoOwned,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "read-hit-modified", From: MoModified, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MoModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{
				// An owner supplies without touching memory; a Modified
				// owner degrades to Owned and keeps the write-back duty.
				Name: "read-miss-owned", From: MoInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(owners...), Next: MoShared,
				Observe: map[fsm.State]fsm.State{MoModified: MoOwned, MoExclusive: MoShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: owners,
				},
			},
			{
				Name: "read-miss-clean", From: MoInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(MoExclusive, MoShared), Next: MoShared,
				Observe: map[fsm.State]fsm.State{MoExclusive: MoShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{MoShared, MoExclusive},
				},
			},
			{
				Name: "read-miss-from-memory", From: MoInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(valid...), Next: MoExclusive,
				Data: fsm.DataEffect{Source: fsm.SrcMemory},
			},
			// --- Writes ---
			{Name: "write-hit-modified", From: MoModified, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MoModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{Name: "write-hit-exclusive", From: MoExclusive, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MoModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{Name: "write-hit-owned", From: MoOwned, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MoModified, Observe: invAll,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{Name: "write-hit-shared", From: MoShared, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MoModified, Observe: invAll,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{
				Name: "write-miss-owned", From: MoInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(owners...), Next: MoModified,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: owners, Store: true,
				},
			},
			{
				Name: "write-miss-clean", From: MoInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(MoExclusive, MoShared), Next: MoModified,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{MoShared, MoExclusive},
					Store: true,
				},
			},
			{
				Name: "write-miss-from-memory", From: MoInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(valid...), Next: MoModified,
				Data: fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			// --- Replacements ---
			{Name: "replace-modified", From: MoModified, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MoInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true}},
			{Name: "replace-owned", From: MoOwned, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MoInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true}},
			{Name: "replace-exclusive", From: MoExclusive, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MoInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true}},
			{Name: "replace-shared", From: MoShared, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MoInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true}},
		},
	}
	mustValidate(p)
	return p
}
