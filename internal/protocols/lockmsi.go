package protocols

import "repro/internal/fsm"

// State symbols and extra operations of the Lock-MSI protocol.
const (
	LkInvalid  fsm.State = "Invalid"
	LkShared   fsm.State = "Shared"
	LkModified fsm.State = "Modified"
	LkLocked   fsm.State = "Locked"

	// OpAcquire is a test-and-set lock acquire; OpRelease releases it.
	OpAcquire fsm.Op = "L"
	OpRelease fsm.Op = "U"
)

// LockMSI returns an MSI protocol extended with a Locked state and
// acquire/release operations — the "protocols with locked states" the
// paper's conclusion names as a target for the method. A successful acquire
// behaves like a write (it invalidates remote copies and takes the only
// copy); an acquire that finds the block locked elsewhere SPINS: the
// requester stays put and retries, so mutual exclusion — at most one cache
// in Locked — is a protocol invariant the verifier can check (Locked is
// declared exclusive). Release retains the (modified) data as an ordinary
// Modified copy. Reads and writes by other processors spin while the block
// is locked, modelling a QOLB-style blocking lock.
func LockMSI() *fsm.Protocol {
	valid := []fsm.State{LkShared, LkModified, LkLocked}
	invAll := map[fsm.State]fsm.State{
		LkShared: LkInvalid, LkModified: LkInvalid, LkLocked: LkInvalid,
	}
	p := &fsm.Protocol{
		Name:    "Lock-MSI",
		States:  []fsm.State{LkInvalid, LkShared, LkModified, LkLocked},
		Initial: LkInvalid,
		Ops:     []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace, OpAcquire, OpRelease},
		// Acquire outcomes depend on the global state (locked elsewhere or
		// not), so the characteristic function is non-null.
		Characteristic: fsm.CharSharing,
		Inv: fsm.Invariants{
			Exclusive: []fsm.State{LkModified, LkLocked},
			Owners:    []fsm.State{LkModified, LkLocked},
			Readable:  valid,
			ValidCopy: valid,
		},
		Rules: []fsm.Rule{
			// --- Reads ---
			{Name: "read-hit-shared", From: LkShared, On: fsm.OpRead,
				Guard: fsm.Always(), Next: LkShared,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "read-hit-modified", From: LkModified, On: fsm.OpRead,
				Guard: fsm.Always(), Next: LkModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "read-hit-locked", From: LkLocked, On: fsm.OpRead,
				Guard: fsm.Always(), Next: LkLocked,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{
				// Reads spin while another cache holds the lock.
				Name: "read-miss-spin", From: LkInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(LkLocked), Next: LkInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcNone, Spin: true},
			},
			{
				Name: "read-miss-owned", From: LkInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(LkModified), Next: LkShared,
				Observe: map[fsm.State]fsm.State{LkModified: LkShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{LkModified},
					SupplierWriteBack: true,
				},
			},
			{
				Name: "read-miss-clean", From: LkInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(LkModified, LkLocked), Next: LkShared,
				Data: fsm.DataEffect{Source: fsm.SrcMemory},
			},
			// --- Writes ---
			{Name: "write-hit-modified", From: LkModified, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: LkModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{Name: "write-hit-locked", From: LkLocked, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: LkLocked,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{
				// Shared copies never coexist with a held lock (acquire
				// invalidates everything), so the upgrade is unconditional.
				Name: "write-hit-shared", From: LkShared, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: LkModified,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-miss-spin", From: LkInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(LkLocked), Next: LkInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcNone, Spin: true},
			},
			{
				Name: "write-miss-owned", From: LkInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(LkModified), Next: LkModified,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{LkModified},
					SupplierWriteBack: true, Store: true,
				},
			},
			{
				Name: "write-miss-clean", From: LkInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(LkModified, LkLocked), Next: LkModified,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			// --- Lock acquire ---
			{
				Name: "acquire-spin", From: LkInvalid, On: OpAcquire,
				Guard: fsm.AnyOther(LkLocked), Next: LkInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcNone, Spin: true},
			},
			{
				Name: "acquire-owned", From: LkInvalid, On: OpAcquire,
				Guard: fsm.AnyOther(LkModified), Next: LkLocked,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{LkModified},
					SupplierWriteBack: true, Store: true,
				},
			},
			{
				Name: "acquire-clean", From: LkInvalid, On: OpAcquire,
				Guard: fsm.NoOther(LkModified, LkLocked), Next: LkLocked,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			{
				// As above: a Shared copy proves no one holds the lock.
				Name: "acquire-from-shared", From: LkShared, On: OpAcquire,
				Guard: fsm.Always(), Next: LkLocked,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				// Acquiring through a Modified copy always succeeds: the
				// copy is exclusive, so no one else can hold the lock.
				Name: "acquire-from-modified", From: LkModified, On: OpAcquire,
				Guard: fsm.Always(), Next: LkLocked,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				// Recursive acquire while already holding the lock.
				Name: "acquire-reentrant", From: LkLocked, On: OpAcquire,
				Guard: fsm.Always(), Next: LkLocked,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			// --- Lock release ---
			{
				Name: "release", From: LkLocked, On: OpRelease,
				Guard: fsm.Always(), Next: LkModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			// --- Replacements ---
			{Name: "replace-modified", From: LkModified, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: LkInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true}},
			{Name: "replace-shared", From: LkShared, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: LkInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true}},
			// A Locked block is never replaced (it is pinned while held):
			// no rule for (Locked, Z), so the operation is a no-op.
		},
	}
	mustValidate(p)
	return p
}
