package protocols

import "repro/internal/fsm"

// State symbols of the Berkeley ownership protocol.
const (
	BerkInvalid     fsm.State = "Invalid"
	BerkValid       fsm.State = "Valid"
	BerkSharedDirty fsm.State = "Shared-Dirty"
	BerkDirty       fsm.State = "Dirty"
)

// Berkeley returns the Berkeley ownership protocol as described by Archibald
// and Baer. Misses are serviced by the block's owner (a cache in Dirty or
// Shared-Dirty) without updating memory, so Valid copies may be newer than
// the memory copy; the owner is responsible for the eventual write-back.
// The characteristic function is null.
func Berkeley() *fsm.Protocol {
	valid := []fsm.State{BerkValid, BerkSharedDirty, BerkDirty}
	owners := []fsm.State{BerkSharedDirty, BerkDirty}
	invAll := map[fsm.State]fsm.State{
		BerkValid:       BerkInvalid,
		BerkSharedDirty: BerkInvalid,
		BerkDirty:       BerkInvalid,
	}
	// On a bus read the owner degrades to Shared-Dirty (it keeps the
	// write-back responsibility).
	readObs := map[fsm.State]fsm.State{BerkDirty: BerkSharedDirty}
	p := &fsm.Protocol{
		Name:           "Berkeley",
		States:         []fsm.State{BerkInvalid, BerkValid, BerkSharedDirty, BerkDirty},
		Initial:        BerkInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharNull,
		Inv: fsm.Invariants{
			Exclusive: []fsm.State{BerkDirty},
			Owners:    owners,
			Readable:  valid,
			ValidCopy: valid,
			// No CleanShared states: Berkeley Valid copies may legitimately
			// be newer than memory.
		},
		Rules: []fsm.Rule{
			// --- Reads ---
			{
				Name: "read-hit-valid", From: BerkValid, On: fsm.OpRead,
				Guard: fsm.Always(), Next: BerkValid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-shared-dirty", From: BerkSharedDirty, On: fsm.OpRead,
				Guard: fsm.Always(), Next: BerkSharedDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-dirty", From: BerkDirty, On: fsm.OpRead,
				Guard: fsm.Always(), Next: BerkDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-miss-owned", From: BerkInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(owners...), Next: BerkValid,
				Observe: readObs,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: owners,
				},
			},
			{
				Name: "read-miss-unowned", From: BerkInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(owners...), Next: BerkValid,
				Observe: readObs,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory},
			},
			// --- Writes ---
			{
				Name: "write-hit-dirty", From: BerkDirty, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: BerkDirty,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-hit-shared-dirty", From: BerkSharedDirty, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: BerkDirty,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-hit-valid", From: BerkValid, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: BerkDirty,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-miss-owned", From: BerkInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(owners...), Next: BerkDirty,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: owners, Store: true,
				},
			},
			{
				Name: "write-miss-unowned", From: BerkInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(owners...), Next: BerkDirty,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			// --- Replacements ---
			{
				Name: "replace-dirty", From: BerkDirty, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: BerkInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
			},
			{
				Name: "replace-shared-dirty", From: BerkSharedDirty, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: BerkInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
			},
			{
				Name: "replace-valid", From: BerkValid, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: BerkInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
		},
	}
	mustValidate(p)
	return p
}
