package protocols

import (
	"testing"

	"repro/internal/fsm"
)

func TestLockMSIValidates(t *testing.T) {
	if err := LockMSI().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLockMSIHasFiveOperations(t *testing.T) {
	p := LockMSI()
	if len(p.Ops) != 5 {
		t.Fatalf("ops = %v", p.Ops)
	}
	found := map[fsm.Op]bool{}
	for _, op := range p.Ops {
		found[op] = true
	}
	if !found[OpAcquire] || !found[OpRelease] {
		t.Fatal("lock operations missing")
	}
}

func TestLockMSIAcquireSpinsWhileLocked(t *testing.T) {
	p := LockMSI()
	c := fsm.NewConfig(p, 3)
	// Cache 0 acquires the lock.
	res, err := fsm.Step(p, c, 0, OpAcquire)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rule.Name != "acquire-clean" || c.States[0] != LkLocked {
		t.Fatalf("first acquire: rule %s, state %s", res.Rule.Name, c.States[0])
	}
	// Cache 1 tries: must spin, leaving both states unchanged.
	res, err = fsm.Step(p, c, 1, OpAcquire)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rule.Name != "acquire-spin" || !res.Rule.Data.Spin {
		t.Fatalf("second acquire must spin, got rule %s", res.Rule.Name)
	}
	if c.States[0] != LkLocked || c.States[1] != LkInvalid {
		t.Fatalf("spin changed states: %v", c.States)
	}
	// Reads and writes by others spin too.
	if res, _ := fsm.Step(p, c, 2, fsm.OpRead); res.Rule == nil || !res.Rule.Data.Spin {
		t.Fatal("a read must spin while the block is locked")
	}
	if res, _ := fsm.Step(p, c, 2, fsm.OpWrite); res.Rule == nil || !res.Rule.Data.Spin {
		t.Fatal("a write must spin while the block is locked")
	}
	// Release hands the lock over.
	if _, err := fsm.Step(p, c, 0, OpRelease); err != nil {
		t.Fatal(err)
	}
	if c.States[0] != LkModified {
		t.Fatalf("release should retain the data Modified, got %s", c.States[0])
	}
	res, err = fsm.Step(p, c, 1, OpAcquire)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rule.Name != "acquire-owned" || c.States[1] != LkLocked || c.States[0] != LkInvalid {
		t.Fatalf("handover failed: rule %s, states %v", res.Rule.Name, c.States)
	}
}

func TestLockMSIMutualExclusionConcretely(t *testing.T) {
	// Brute-force random walks: no reachable configuration may hold two
	// locks, and lock data must never go stale.
	p := LockMSI()
	ops := []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace, OpAcquire, OpAcquire, OpRelease}
	state := uint64(99)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	for n := 2; n <= 4; n++ {
		c := fsm.NewConfig(p, n)
		for k := 0; k < 20000; k++ {
			i := next(n)
			op := ops[next(len(ops))]
			res, err := fsm.Step(p, c, i, op)
			if err != nil {
				t.Fatalf("n=%d step %d: %v", n, k, err)
			}
			locked := 0
			for _, s := range c.States {
				if s == LkLocked {
					locked++
				}
			}
			if locked > 1 {
				t.Fatalf("n=%d step %d: %d caches hold the lock in %s", n, k, locked, c)
			}
			if op == fsm.OpRead && res.Rule != nil && !res.Rule.Data.Spin &&
				res.ReadVersion != c.Latest {
				t.Fatalf("n=%d step %d: stale read", n, k)
			}
			if vs := fsm.CheckConfig(p, c, false); len(vs) != 0 {
				t.Fatalf("n=%d step %d: %v", n, k, vs[0])
			}
		}
	}
}

func TestLockMSIBrokenSpinGuardDetected(t *testing.T) {
	// Break the mutual exclusion: let an acquire succeed even while the
	// lock is held elsewhere. The verifier must refute it.
	p := LockMSI()
	for i := range p.Rules {
		if p.Rules[i].Name == "acquire-spin" {
			p.Rules[i].Next = LkLocked
			p.Rules[i].Data = fsm.DataEffect{Source: fsm.SrcMemory, Store: true}
		}
	}
	p = p.Clone()
	p.Name = "Lock-MSI!broken-spin"
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	c := fsm.NewConfig(p, 2)
	if _, err := fsm.Step(p, c, 0, OpAcquire); err != nil {
		t.Fatal(err)
	}
	if _, err := fsm.Step(p, c, 1, OpAcquire); err != nil {
		t.Fatal(err)
	}
	vs := fsm.CheckConfig(p, c, false)
	if len(vs) == 0 {
		t.Fatal("two holders must violate mutual exclusion concretely")
	}
}

func TestLockMSISpinValidation(t *testing.T) {
	// The fsm layer rejects malformed spin rules.
	p := LockMSI()
	for i := range p.Rules {
		if p.Rules[i].Name == "acquire-spin" {
			p.Rules[i].Next = LkLocked // spin must stay in place
		}
	}
	p = p.Clone()
	if err := p.Validate(); err == nil {
		t.Fatal("a spin rule that moves must be rejected")
	}
	q := LockMSI()
	for i := range q.Rules {
		if q.Rules[i].Name == "acquire-spin" {
			q.Rules[i].Data.Store = true
		}
	}
	q = q.Clone()
	if err := q.Validate(); err == nil {
		t.Fatal("a spin rule with side effects must be rejected")
	}
}
