package protocols

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fsm"
)

// mustValidate panics when a built-in protocol definition is ill-formed.
// Built-in definitions are program constants, so a failure here is a bug in
// this package, not a runtime condition.
func mustValidate(p *fsm.Protocol) {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("protocols: built-in definition invalid: %v", err))
	}
}

// Builder constructs a fresh protocol value.
type Builder func() *fsm.Protocol

var registry = map[string]Builder{
	"illinois":      Illinois,
	"write-once":    WriteOnce,
	"write-through": WriteThrough,
	"synapse":       Synapse,
	"berkeley":      Berkeley,
	"firefly":       Firefly,
	"dragon":        Dragon,
	"msi":           MSI,
	"moesi":         MOESI,
	"mesif":         MESIF,
	"mesi":          MESI,
	"lock-msi":      LockMSI,
}

// Names returns the registered protocol names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName returns a fresh instance of the named protocol. Lookup is
// case-insensitive and tolerates the conventional display names
// ("Illinois", "Write-Once").
func ByName(name string) (*fsm.Protocol, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	key = strings.ReplaceAll(key, "_", "-")
	key = strings.ReplaceAll(key, " ", "-")
	if b, ok := registry[key]; ok {
		return b(), nil
	}
	return nil, fmt.Errorf("protocols: unknown protocol %q (have %s)", name, strings.Join(Names(), ", "))
}

// All returns fresh instances of every registered protocol, sorted by name.
func All() []*fsm.Protocol {
	names := Names()
	out := make([]*fsm.Protocol, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n]())
	}
	return out
}
