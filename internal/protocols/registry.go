package protocols

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/compile"
	"repro/internal/fsm"
)

// mustValidate panics when a built-in protocol definition is ill-formed.
// Built-in definitions are program constants, so a failure here is a bug in
// this package, not a runtime condition.
func mustValidate(p *fsm.Protocol) {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("protocols: built-in definition invalid: %v", err))
	}
}

// Builder constructs a fresh protocol value.
type Builder func() *fsm.Protocol

// mu guards registry: the built-in table is extended at runtime by Register
// and LoadDir (e.g. ccserved -spec-dir), and read concurrently by lookups.
var mu sync.RWMutex

var registry = map[string]Builder{
	"illinois":      Illinois,
	"write-once":    WriteOnce,
	"write-through": WriteThrough,
	"synapse":       Synapse,
	"berkeley":      Berkeley,
	"firefly":       Firefly,
	"dragon":        Dragon,
	"msi":           MSI,
	"moesi":         MOESI,
	"mesif":         MESIF,
	"mesi":          MESI,
	"lock-msi":      LockMSI,
}

// canonicalName maps a protocol name to its registry key: lowercase,
// trimmed, with underscores and spaces folded to dashes. Registration and
// lookup share this mapping, so "Write-Once", "write_once" and
// "WRITE ONCE" all address the same entry.
func canonicalName(name string) string {
	key := strings.ToLower(strings.TrimSpace(name))
	key = strings.ReplaceAll(key, "_", "-")
	return strings.ReplaceAll(key, " ", "-")
}

// Names returns the registered protocol names in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName returns a fresh instance of the named protocol. Lookup is
// case-insensitive and tolerates the conventional display names
// ("Illinois", "Write-Once").
func ByName(name string) (*fsm.Protocol, error) {
	mu.RLock()
	b, ok := registry[canonicalName(name)]
	mu.RUnlock()
	if ok {
		return b(), nil
	}
	return nil, fmt.Errorf("protocols: unknown protocol %q (have %s)", name, strings.Join(Names(), ", "))
}

// Register adds a protocol under its canonical name. The protocol is
// validated once up front; builders then return deep copies so callers can
// never alias each other's state. Registering a name that is already taken
// (built-in or previously registered) is an error — the built-in library is
// authoritative and silent shadowing would change verdicts.
func Register(p *fsm.Protocol) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("protocols: registering %q: %w", p.Name, err)
	}
	key := canonicalName(p.Name)
	if key == "" {
		return fmt.Errorf("protocols: protocol has no name")
	}
	// Keep a detached master copy; the builder clones it so callers can
	// never alias each other's state (or the registrant's).
	master := p.Clone()
	mu.Lock()
	defer mu.Unlock()
	if _, taken := registry[key]; taken {
		return fmt.Errorf("protocols: name %q already registered", key)
	}
	registry[key] = func() *fsm.Protocol { return master.Clone() }
	return nil
}

// LoadDir registers every compiled protocol (*.ccfsm) in dir, returning the
// canonical names added, sorted. Files are loaded in name order so
// duplicate-name errors are deterministic; any unreadable, corrupt or
// conflicting file fails the whole load.
func LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("protocols: %w", err)
	}
	var added []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ccfsm") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		p, err := compile.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("protocols: loading %s: %w", path, err)
		}
		if err := Register(p); err != nil {
			return nil, fmt.Errorf("protocols: loading %s: %w", path, err)
		}
		added = append(added, canonicalName(p.Name))
	}
	sort.Strings(added)
	return added, nil
}

// All returns fresh instances of every registered protocol, sorted by name.
func All() []*fsm.Protocol {
	names := Names()
	mu.RLock()
	defer mu.RUnlock()
	out := make([]*fsm.Protocol, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n]())
	}
	return out
}
