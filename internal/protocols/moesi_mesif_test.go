package protocols

import (
	"testing"

	"repro/internal/fsm"
)

func TestMOESIModifiedDegradesToOwnedOnBusRead(t *testing.T) {
	p := MOESI()
	var owned *fsm.Rule
	for _, r := range p.RulesFor(MoInvalid, fsm.OpRead) {
		if r.Guard.Kind == fsm.GuardAnyOther && len(r.Guard.States) == 2 &&
			r.Guard.States[0] == MoOwned {
			owned = r
		}
	}
	if owned == nil {
		t.Fatal("missing owner-serviced read miss")
	}
	if owned.ObservedNext(MoModified) != MoOwned {
		t.Errorf("a bus read must degrade Modified to Owned, got %s",
			owned.ObservedNext(MoModified))
	}
	if owned.Data.SupplierWriteBack {
		t.Error("MOESI owners supply without a memory update (that is the point of O)")
	}
}

func TestMOESIOwnedWritesBackOnReplacement(t *testing.T) {
	p := MOESI()
	rules := p.RulesFor(MoOwned, fsm.OpReplace)
	if len(rules) != 1 || !rules[0].Data.WriteBackSelf {
		t.Fatal("replacing an Owned block must write back")
	}
}

func TestMESIFSharedCopiesNeverSupply(t *testing.T) {
	p := MESIF()
	for _, r := range p.RulesFor(MfInvalid, fsm.OpRead) {
		for _, s := range r.Data.Suppliers {
			if s == MfShared {
				t.Errorf("rule %s: plain Shared copies never respond in MESIF", r.Name)
			}
		}
	}
	// The shared-only branch must fetch from memory.
	found := false
	for _, r := range p.RulesFor(MfInvalid, fsm.OpRead) {
		if r.Guard.Kind == fsm.GuardAnyOther && len(r.Guard.States) == 1 &&
			r.Guard.States[0] == MfShared {
			found = true
			if r.Data.Source != fsm.SrcMemory {
				t.Error("with only Shared copies present, the miss must be serviced by memory")
			}
			if r.Next != MfForward {
				t.Error("the requester must pick up the forwarding duty")
			}
		}
	}
	if !found {
		t.Fatal("missing shared-only read-miss branch")
	}
}

func TestMESIFForwarderMovesToRequester(t *testing.T) {
	p := MESIF()
	for _, r := range p.RulesFor(MfInvalid, fsm.OpRead) {
		if r.Guard.Kind != fsm.GuardAnyOther {
			continue
		}
		for _, s := range r.Guard.States {
			if s == MfForward {
				if r.ObservedNext(MfForward) != MfShared {
					t.Error("the old forwarder must degrade to Shared")
				}
				if r.Next != MfForward {
					t.Error("the requester must become the forwarder")
				}
			}
		}
	}
}

func TestMESIFForwardIsCleanOwner(t *testing.T) {
	p := MESIF()
	inOwners, inClean := false, false
	for _, s := range p.Inv.Owners {
		if s == MfForward {
			inOwners = true
		}
	}
	for _, s := range p.Inv.CleanShared {
		if s == MfForward {
			inClean = true
		}
	}
	if !inOwners || !inClean {
		t.Fatal("Forward must be declared a clean, unique state")
	}
}
