package protocols

import "repro/internal/fsm"

// State symbols of the three-state MSI protocol.
const (
	MSIInvalid  fsm.State = "Invalid"
	MSIShared   fsm.State = "Shared"
	MSIModified fsm.State = "Modified"
)

// MSI returns a minimal three-state write-invalidate protocol, included as a
// pedagogical baseline (it is not part of Archibald & Baer's survey but is
// the simplest protocol exercising the verifier). Its characteristic
// function is null: a read miss always loads Shared.
func MSI() *fsm.Protocol {
	valid := []fsm.State{MSIShared, MSIModified}
	invAll := map[fsm.State]fsm.State{
		MSIShared:   MSIInvalid,
		MSIModified: MSIInvalid,
	}
	readObs := map[fsm.State]fsm.State{MSIModified: MSIShared}
	p := &fsm.Protocol{
		Name:           "MSI",
		States:         []fsm.State{MSIInvalid, MSIShared, MSIModified},
		Initial:        MSIInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharNull,
		Inv: fsm.Invariants{
			Exclusive:   []fsm.State{MSIModified},
			Owners:      []fsm.State{MSIModified},
			Readable:    valid,
			ValidCopy:   valid,
			CleanShared: []fsm.State{MSIShared},
		},
		Rules: []fsm.Rule{
			{
				Name: "read-hit-shared", From: MSIShared, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MSIShared,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-hit-modified", From: MSIModified, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MSIModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				Name: "read-miss-owned", From: MSIInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(MSIModified), Next: MSIShared,
				Observe: readObs,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{MSIModified},
					SupplierWriteBack: true,
				},
			},
			{
				Name: "read-miss-clean", From: MSIInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(MSIModified), Next: MSIShared,
				Observe: readObs,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory},
			},
			{
				Name: "write-hit-modified", From: MSIModified, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MSIModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-hit-shared", From: MSIShared, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MSIModified,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true},
			},
			{
				Name: "write-miss-owned", From: MSIInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(MSIModified), Next: MSIModified,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{MSIModified},
					SupplierWriteBack: true, Store: true,
				},
			},
			{
				Name: "write-miss-clean", From: MSIInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(MSIModified), Next: MSIModified,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			{
				Name: "replace-modified", From: MSIModified, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MSIInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true},
			},
			{
				Name: "replace-shared", From: MSIShared, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MSIInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
		},
	}
	mustValidate(p)
	return p
}
