package protocols

import "repro/internal/fsm"

// State symbols of the write-through-with-invalidate scheme.
const (
	WTInvalid fsm.State = "Invalid"
	WTValid   fsm.State = "Valid"
)

// WriteThrough returns the baseline write-through-with-invalidate scheme
// that opens Archibald and Baer's survey: every write goes straight to
// memory and invalidates all other cached copies, so memory always holds
// the freshest value and a cache block is only ever Invalid or Valid. It is
// the simplest coherent protocol and the degenerate case of the verifier:
// two composite states suffice.
func WriteThrough() *fsm.Protocol {
	invAll := map[fsm.State]fsm.State{WTValid: WTInvalid}
	p := &fsm.Protocol{
		Name:           "Write-Through",
		States:         []fsm.State{WTInvalid, WTValid},
		Initial:        WTInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharNull,
		Inv: fsm.Invariants{
			Readable:    []fsm.State{WTValid},
			ValidCopy:   []fsm.State{WTValid},
			CleanShared: []fsm.State{WTValid},
		},
		Rules: []fsm.Rule{
			{
				Name: "read-hit", From: WTValid, On: fsm.OpRead,
				Guard: fsm.Always(), Next: WTValid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep},
			},
			{
				// Memory is always fresh under write-through, so every
				// miss is serviced by memory.
				Name: "read-miss", From: WTInvalid, On: fsm.OpRead,
				Guard: fsm.Always(), Next: WTValid,
				Data: fsm.DataEffect{Source: fsm.SrcMemory},
			},
			{
				Name: "write-hit", From: WTValid, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: WTValid,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcKeep, Store: true, WriteThrough: true},
			},
			{
				Name: "write-miss", From: WTInvalid, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: WTValid,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory, Store: true, WriteThrough: true},
			},
			{
				// Valid blocks are always consistent with memory: silent drop.
				Name: "replace-valid", From: WTValid, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: WTInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true},
			},
		},
	}
	mustValidate(p)
	return p
}
