// Package protocols contains behavioral definitions of the classic snooping
// cache coherence protocols verified by Pong and Dubois (SPAA 1993) and by
// their companion technical report (USC CENG-92-20): the Illinois protocol
// of Section 2.3 of the paper, and the remaining protocols of Archibald and
// Baer's survey ("Cache Coherence Protocols: Evaluation Using a
// Multiprocessor Simulation Model", ACM TOCS 4(4), 1986): Write-Once,
// Synapse, Berkeley, Firefly, and Dragon. A minimal MSI protocol is included
// as a pedagogical baseline.
//
// Each protocol is an *fsm.Protocol value whose rules simultaneously drive
// the symbolic composite-state verifier (internal/symbolic), the
// explicit-state enumerators (internal/enum) and the concrete multiprocessor
// simulator (internal/sim), so there is a single source of truth for the
// protocol's behavior.
//
// State-naming follows the paper: Invalid subsumes both "not present" and
// "invalidated" (Section 2.1). Every definition passes (*fsm.Protocol).Validate
// and is registered in the package registry; use All or ByName to enumerate.
package protocols
