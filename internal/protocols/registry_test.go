package protocols

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/fsm"
)

func TestCanonicalName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"illinois", "illinois"},
		{"Illinois", "illinois"},
		{"  WRITE ONCE ", "write-once"},
		{"write_once", "write-once"},
		{"Lock-MSI", "lock-msi"},
	} {
		if got := canonicalName(tc.in); got != tc.want {
			t.Errorf("canonicalName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestByNameMixedCase pins the registration/lookup contract end to end:
// every registered protocol resolves under its display name, its upper-case
// form and underscore/space variants, to the same definition.
func TestByNameMixedCase(t *testing.T) {
	for _, name := range Names() {
		base, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range []string{
			strings.ToUpper(name),
			" " + name + " ",
			strings.ReplaceAll(name, "-", "_"),
			strings.ReplaceAll(name, "-", " "),
		} {
			p, err := ByName(variant)
			if err != nil {
				t.Errorf("ByName(%q): %v", variant, err)
				continue
			}
			if p.Name != base.Name {
				t.Errorf("ByName(%q) = %s, want %s", variant, p.Name, base.Name)
			}
		}
	}
}

// unregister removes a runtime registration so tests leave the global
// registry as they found it regardless of execution order.
func unregister(t *testing.T, name string) {
	t.Helper()
	t.Cleanup(func() {
		mu.Lock()
		delete(registry, canonicalName(name))
		mu.Unlock()
	})
}

// registerTestProto builds a small valid protocol under a unique name and
// registers it, failing the test on error.
func registerTestProto(t *testing.T, name string) *fsm.Protocol {
	t.Helper()
	p, err := ByName("msi")
	if err != nil {
		t.Fatal(err)
	}
	p.Name = name
	if err := Register(p); err != nil {
		t.Fatal(err)
	}
	unregister(t, name)
	return p
}

func TestRegisterAndLookup(t *testing.T) {
	p := registerTestProto(t, "Registry-Test-MSI")
	got, err := ByName("registry_test_msi")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name {
		t.Errorf("name = %s, want %s", got.Name, p.Name)
	}
	// Builders must hand out independent copies.
	other, err := ByName("registry-test-msi")
	if err != nil {
		t.Fatal(err)
	}
	if got == other || &got.Rules[0] == &other.Rules[0] {
		t.Error("registered builder returned aliased instances")
	}
	if !reflect.DeepEqual(got.States, other.States) {
		t.Error("copies disagree")
	}
	// Names that are taken, built-in or registered, are refused.
	if err := Register(p); err == nil {
		t.Error("re-registering a taken name must error")
	}
	msi, _ := ByName("msi")
	if err := Register(msi); err == nil {
		t.Error("shadowing a built-in must error")
	}
	found := false
	for _, n := range Names() {
		if n == "registry-test-msi" {
			found = true
		}
	}
	if !found {
		t.Error("registered name missing from Names()")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"LoadDir-A", "LoadDir-B"} {
		p, err := ByName("synapse")
		if err != nil {
			t.Fatal(err)
		}
		p.Name = name
		if err := compile.WriteFile(filepath.Join(dir, name+".ccfsm"), p); err != nil {
			t.Fatal(err)
		}
	}
	// Non-.ccfsm files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	added, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range added {
		unregister(t, name)
	}
	want := []string{"loaddir-a", "loaddir-b"}
	if !reflect.DeepEqual(added, want) {
		t.Fatalf("added = %v, want %v", added, want)
	}
	for _, name := range want {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q) after LoadDir: %v", name, err)
		}
	}
	// A second load of the same directory collides on every name.
	if _, err := LoadDir(dir); err == nil {
		t.Error("reloading the same directory must error on duplicate names")
	}
	// Corrupt files fail the load.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "bad.ccfsm"), []byte("not a ccfsm"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(bad); err == nil {
		t.Error("corrupt .ccfsm must fail the load")
	}
	if _, err := LoadDir(filepath.Join(bad, "missing")); err == nil {
		t.Error("missing directory must error")
	}
}
