package protocols

import "testing"

func TestSyntheticShapes(t *testing.T) {
	for _, levels := range []int{1, 2, 4, 8} {
		p, err := Synthetic(levels)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(p.States); got != levels+2 {
			t.Errorf("levels=%d: %d states, want %d", levels, got, levels+2)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("levels=%d: %v", levels, err)
		}
	}
}

func TestSyntheticRejectsZeroLevels(t *testing.T) {
	if _, err := Synthetic(0); err == nil {
		t.Fatal("zero levels must be rejected")
	}
	if _, err := Synthetic(-3); err == nil {
		t.Fatal("negative levels must be rejected")
	}
}

func TestSyntheticOneLevelBehavesLikeMSI(t *testing.T) {
	p, err := Synthetic(1)
	if err != nil {
		t.Fatal(err)
	}
	// With a single level there is no promotion; the rule census matches
	// the MSI structure (modulo naming).
	msi := MSI()
	if len(p.States) != len(msi.States) {
		t.Errorf("synthetic(1) has %d states, MSI has %d", len(p.States), len(msi.States))
	}
}

func TestSyntheticPromotionSaturates(t *testing.T) {
	p, err := Synthetic(3)
	if err != nil {
		t.Fatal(err)
	}
	r := p.RulesFor("L3", "R")
	if len(r) != 1 || r[0].Next != "L3" {
		t.Fatalf("top level must saturate on read hits, got %v", r)
	}
	r = p.RulesFor("L1", "R")
	if len(r) != 1 || r[0].Next != "L2" {
		t.Fatalf("read hit must promote L1 to L2, got %v", r)
	}
}
