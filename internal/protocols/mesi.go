package protocols

import "repro/internal/fsm"

// MESI returns the textbook MESI protocol: the same four states and the
// same state machine as Illinois, but with the commercial data path —
// misses on clean blocks are serviced by MEMORY rather than
// cache-to-cache. (The Illinois paper's distinguishing feature was
// precisely that caches supply clean blocks; most implementations dropped
// it.) Because only the data path differs, the global transition diagram of
// MESI is operation-isomorphic to Illinois's — a positive example for the
// "similarities among protocols" comparison — while the bus-traffic
// statistics of the simulator tell the two apart.
func MESI() *fsm.Protocol {
	p := Illinois()
	p.Name = "MESI"
	for i := range p.Rules {
		r := &p.Rules[i]
		switch r.Name {
		case "read-miss-from-cache", "write-miss-from-cache":
			// Clean copies are consistent with memory; let memory service
			// the miss instead of a cache.
			r.Data.Source = fsm.SrcMemory
			r.Data.Suppliers = nil
		}
	}
	q := p.Clone() // rebuild internal indexes after the edit
	mustValidate(q)
	return q
}
