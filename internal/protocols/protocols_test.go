package protocols

import (
	"strings"
	"testing"

	"repro/internal/fsm"
)

func TestAllProtocolsValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestRegistryNamesSortedAndComplete(t *testing.T) {
	names := Names()
	want := []string{"berkeley", "dragon", "firefly", "illinois", "lock-msi", "mesi", "mesif", "moesi", "msi", "synapse", "write-once", "write-through"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestByNameLookupVariants(t *testing.T) {
	for _, variant := range []string{"illinois", "Illinois", "ILLINOIS", " illinois "} {
		p, err := ByName(variant)
		if err != nil {
			t.Errorf("ByName(%q): %v", variant, err)
			continue
		}
		if p.Name != "Illinois" {
			t.Errorf("ByName(%q) = %s", variant, p.Name)
		}
	}
	for _, variant := range []string{"write-once", "Write-Once", "write_once", "write once"} {
		if _, err := ByName(variant); err != nil {
			t.Errorf("ByName(%q): %v", variant, err)
		}
	}
	if _, err := ByName("tokyo"); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Errorf("ByName(tokyo) = %v, want unknown-protocol error", err)
	}
}

func TestByNameReturnsFreshInstances(t *testing.T) {
	a, _ := ByName("illinois")
	b, _ := ByName("illinois")
	if a == b {
		t.Fatal("ByName must return fresh instances")
	}
	a.Rules[0].Next = "Dirty"
	if b.Rules[0].Next == "Dirty" {
		t.Fatal("instances must be independent")
	}
}

func TestProtocolShapes(t *testing.T) {
	cases := []struct {
		name       string
		states     int
		rules      int
		char       fsm.CharKind
		exclusive  int
		owners     int
		hasInitial fsm.State
	}{
		{"illinois", 4, 15, fsm.CharSharing, 2, 1, "Invalid"},
		{"write-once", 4, 13, fsm.CharNull, 2, 1, "Invalid"},
		{"synapse", 3, 10, fsm.CharNull, 1, 1, "Invalid"},
		{"berkeley", 4, 13, fsm.CharNull, 1, 2, "Invalid"},
		{"firefly", 4, 16, fsm.CharSharing, 2, 1, "Invalid"},
		{"dragon", 5, 20, fsm.CharSharing, 2, 2, "Invalid"},
		{"msi", 3, 10, fsm.CharNull, 1, 1, "Invalid"},
		{"write-through", 2, 5, fsm.CharNull, 0, 0, "Invalid"},
	}
	for _, tc := range cases {
		p, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(p.States); got != tc.states {
			t.Errorf("%s: %d states, want %d", tc.name, got, tc.states)
		}
		if got := len(p.Rules); got != tc.rules {
			t.Errorf("%s: %d rules, want %d", tc.name, got, tc.rules)
		}
		if p.Characteristic != tc.char {
			t.Errorf("%s: characteristic %v, want %v", tc.name, p.Characteristic, tc.char)
		}
		if got := len(p.Inv.Exclusive); got != tc.exclusive {
			t.Errorf("%s: %d exclusive states, want %d", tc.name, got, tc.exclusive)
		}
		if got := len(p.Inv.Owners); got != tc.owners {
			t.Errorf("%s: %d owner states, want %d", tc.name, got, tc.owners)
		}
		if p.Initial != tc.hasInitial {
			t.Errorf("%s: initial %s", tc.name, p.Initial)
		}
	}
}

func TestEveryValidStateIsReadable(t *testing.T) {
	// In all of these protocols a processor can read any resident copy.
	for _, p := range All() {
		readable := map[fsm.State]bool{}
		for _, s := range p.Inv.Readable {
			readable[s] = true
		}
		for _, s := range p.Inv.ValidCopy {
			if !readable[s] {
				t.Errorf("%s: valid state %s is not readable", p.Name, s)
			}
		}
	}
}

func TestEveryProtocolHasReplacementForDirtyStates(t *testing.T) {
	// Every owner state must have a replacement rule, and owners that are
	// not memory-consistent (not in CleanShared) must write back. (MESIF's
	// Forward state is a clean owner: uniqueness only, silent eviction.)
	for _, p := range All() {
		clean := map[fsm.State]bool{}
		for _, s := range p.Inv.CleanShared {
			clean[s] = true
		}
		for _, s := range p.Inv.Owners {
			rules := p.RulesFor(s, fsm.OpReplace)
			switch len(rules) {
			case 0:
				// Pinned states (Lock-MSI's Locked) are never replaced.
				if s != LkLocked {
					t.Errorf("%s: owner state %s has no replacement rule", p.Name, s)
				}
			case 1:
				if !clean[s] && !rules[0].Data.WriteBackSelf {
					t.Errorf("%s: replacing dirty owner state %s must write back", p.Name, s)
				}
			default:
				t.Errorf("%s: owner state %s has %d replacement rules", p.Name, s, len(rules))
			}
		}
	}
}

func TestIllinoisMatchesPaperFigure1(t *testing.T) {
	// The per-cache transitions of Figure 1, spelled out.
	p := Illinois()
	type edge struct {
		from fsm.State
		op   fsm.Op
		next fsm.State
	}
	want := []edge{
		{IllInvalid, fsm.OpRead, IllVEx},    // read miss, not shared
		{IllInvalid, fsm.OpRead, IllShared}, // read miss, shared
		{IllInvalid, fsm.OpWrite, IllDirty}, // write miss
		{IllVEx, fsm.OpRead, IllVEx},
		{IllVEx, fsm.OpWrite, IllDirty},
		{IllVEx, fsm.OpReplace, IllInvalid},
		{IllShared, fsm.OpRead, IllShared},
		{IllShared, fsm.OpWrite, IllDirty},
		{IllShared, fsm.OpReplace, IllInvalid},
		{IllDirty, fsm.OpRead, IllDirty},
		{IllDirty, fsm.OpWrite, IllDirty},
		{IllDirty, fsm.OpReplace, IllInvalid},
	}
	for _, e := range want {
		found := false
		for _, r := range p.RulesFor(e.from, e.op) {
			if r.Next == e.next {
				found = true
			}
		}
		if !found {
			t.Errorf("missing Figure 1 transition %s --%s--> %s", e.from, e.op, e.next)
		}
	}
}

func TestWriteOnceFirstWriteIsWriteThrough(t *testing.T) {
	p := WriteOnce()
	rules := p.RulesFor(WOValid, fsm.OpWrite)
	if len(rules) != 1 {
		t.Fatalf("want one write-hit rule on Valid, got %d", len(rules))
	}
	r := rules[0]
	if r.Next != WOReserved {
		t.Errorf("the write-once must leave the block Reserved, got %s", r.Next)
	}
	if !r.Data.WriteThrough || !r.Data.Store {
		t.Error("the write-once must write through to memory")
	}
	// Second write: Reserved -> Dirty without bus traffic.
	rules = p.RulesFor(WOReserved, fsm.OpWrite)
	if len(rules) != 1 || rules[0].Next != WODirty || rules[0].Data.WriteThrough {
		t.Error("the second write must be a local upgrade to Dirty")
	}
}

func TestSynapseDirtyOwnerYieldsToMemory(t *testing.T) {
	// Synapse's signature behavior: on a read miss the Dirty holder writes
	// back and invalidates itself.
	p := Synapse()
	for _, r := range p.RulesFor(SynInvalid, fsm.OpRead) {
		if r.ObservedNext(SynDirty) != SynInvalid {
			t.Errorf("rule %s: a bus read must invalidate the Dirty holder, got %s",
				r.Name, r.ObservedNext(SynDirty))
		}
	}
}

func TestBerkeleyOwnerSuppliesWithoutMemoryUpdate(t *testing.T) {
	p := Berkeley()
	var owned *fsm.Rule
	for _, r := range p.RulesFor(BerkInvalid, fsm.OpRead) {
		if r.Guard.Kind == fsm.GuardAnyOther {
			owned = r
		}
	}
	if owned == nil {
		t.Fatal("missing owned read-miss rule")
	}
	if owned.Data.SupplierWriteBack {
		t.Error("Berkeley owners supply without updating memory")
	}
	if owned.ObservedNext(BerkDirty) != BerkSharedDirty {
		t.Error("the owner must degrade to Shared-Dirty on a bus read")
	}
}

func TestFireflyNeverInvalidates(t *testing.T) {
	p := Firefly()
	for _, r := range p.Rules {
		if r.On == fsm.OpReplace {
			continue
		}
		for from, to := range r.Observe {
			if p.IsValidCopy(from) && !p.IsValidCopy(to) {
				t.Errorf("Firefly rule %s invalidates %s", r.Name, from)
			}
		}
	}
}

func TestFireflySharedWritesAreWriteThrough(t *testing.T) {
	p := Firefly()
	for _, r := range p.RulesFor(FfShared, fsm.OpWrite) {
		if !r.Data.WriteThrough {
			t.Errorf("rule %s: Firefly shared writes must update memory", r.Name)
		}
	}
}

func TestDragonSharedWritesSkipMemory(t *testing.T) {
	p := Dragon()
	for _, r := range p.RulesFor(DrSharedClean, fsm.OpWrite) {
		if r.Data.WriteThrough {
			t.Errorf("rule %s: Dragon shared writes must NOT update memory", r.Name)
		}
	}
	// The writer takes ownership when sharers remain.
	var line *fsm.Rule
	for _, r := range p.RulesFor(DrSharedClean, fsm.OpWrite) {
		if r.Guard.Kind == fsm.GuardAnyOther {
			line = r
		}
	}
	if line == nil || line.Next != DrSharedDirty {
		t.Fatal("a shared write with the line asserted must take ownership (Shared-Dirty)")
	}
	if line.ObservedNext(DrSharedDirty) != DrSharedClean {
		t.Error("the previous owner must yield ownership")
	}
}

func TestDragonNeverInvalidates(t *testing.T) {
	p := Dragon()
	for _, r := range p.Rules {
		if r.On == fsm.OpReplace {
			continue
		}
		for from, to := range r.Observe {
			if p.IsValidCopy(from) && !p.IsValidCopy(to) {
				t.Errorf("Dragon rule %s invalidates %s", r.Name, from)
			}
		}
	}
}

func TestInvalidateProtocolsHaveInvalidationOnWrite(t *testing.T) {
	for _, name := range []string{"illinois", "write-once", "synapse", "berkeley", "msi"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range p.Rules {
			if r.On != fsm.OpWrite {
				continue
			}
			for from, to := range r.Observe {
				if p.IsValidCopy(from) && !p.IsValidCopy(to) {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s: no write rule invalidates remote copies", name)
		}
	}
}
