package protocols

import (
	"testing"

	"repro/internal/fsm"
)

func TestMESISameMachineAsIllinois(t *testing.T) {
	ill, mesi := Illinois(), MESI()
	if len(ill.Rules) != len(mesi.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(ill.Rules), len(mesi.Rules))
	}
	for i := range ill.Rules {
		a, b := &ill.Rules[i], &mesi.Rules[i]
		if a.Name != b.Name || a.From != b.From || a.On != b.On || a.Next != b.Next {
			t.Errorf("rule %d: state machine differs (%s vs %s)", i, a.Name, b.Name)
		}
	}
}

func TestMESICleanMissesServicedByMemory(t *testing.T) {
	p := MESI()
	c := fsm.NewConfig(p, 3)
	if _, err := fsm.Step(p, c, 0, fsm.OpRead); err != nil {
		t.Fatal(err)
	}
	// Cache 1 misses while cache 0 holds a clean V-Ex copy: Illinois would
	// supply cache-to-cache; MESI must go to memory.
	res, err := fsm.Step(p, c, 1, fsm.OpRead)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supplier != -1 {
		t.Fatalf("MESI clean miss must be serviced by memory, got supplier %d", res.Supplier)
	}
	if c.States[0] != "Shared" || c.States[1] != "Shared" {
		t.Fatalf("state machine must still match Illinois: %v", c.States)
	}
	// Dirty misses are still cache-to-cache (the owner must supply).
	if _, err := fsm.Step(p, c, 1, fsm.OpWrite); err != nil {
		t.Fatal(err)
	}
	res, err = fsm.Step(p, c, 2, fsm.OpRead)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supplier != 1 {
		t.Fatalf("a dirty miss must be supplied by the owner, got %d", res.Supplier)
	}
}
