package protocols

import "repro/internal/fsm"

// State symbols of the MESIF protocol.
const (
	MfInvalid   fsm.State = "Invalid"
	MfShared    fsm.State = "Shared"
	MfExclusive fsm.State = "Exclusive"
	MfForward   fsm.State = "Forward"
	MfModified  fsm.State = "Modified"
)

// MESIF returns the five-state MESIF protocol (Intel's MESI variant):
// among the clean sharers, at most one holds the block in Forward and is
// the designated responder for misses; plain Shared copies never supply.
// The most recent requester becomes the forwarder. All shared states are
// consistent with memory (a Modified supplier writes back as it degrades),
// so when no Forward copy exists a miss falls through to memory even though
// Shared copies are present — the behavior that distinguishes MESIF's
// global diagram from MOESI's.
func MESIF() *fsm.Protocol {
	valid := []fsm.State{MfShared, MfExclusive, MfForward, MfModified}
	invAll := map[fsm.State]fsm.State{
		MfShared: MfInvalid, MfExclusive: MfInvalid,
		MfForward: MfInvalid, MfModified: MfInvalid,
	}
	p := &fsm.Protocol{
		Name:           "MESIF",
		States:         []fsm.State{MfInvalid, MfShared, MfExclusive, MfForward, MfModified},
		Initial:        MfInvalid,
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharSharing,
		Inv: fsm.Invariants{
			Exclusive: []fsm.State{MfExclusive, MfModified},
			// At most one cache may be the designated responder (Forward)
			// or the modified owner; the Owners invariant enforces the
			// at-most-one-total rule across both.
			Owners:      []fsm.State{MfForward, MfModified},
			Readable:    valid,
			ValidCopy:   valid,
			CleanShared: []fsm.State{MfShared, MfExclusive, MfForward},
		},
		Rules: []fsm.Rule{
			// --- Reads ---
			{Name: "read-hit-shared", From: MfShared, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MfShared,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "read-hit-exclusive", From: MfExclusive, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MfExclusive,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "read-hit-forward", From: MfForward, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MfForward,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "read-hit-modified", From: MfModified, On: fsm.OpRead,
				Guard: fsm.Always(), Next: MfModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{
				// A Modified holder supplies, writes back and degrades to
				// Shared; the requester becomes the forwarder.
				Name: "read-miss-modified", From: MfInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(MfModified), Next: MfForward,
				Observe: map[fsm.State]fsm.State{MfModified: MfShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{MfModified},
					SupplierWriteBack: true,
				},
			},
			{
				// The forwarder (or an Exclusive holder) supplies and
				// degrades to Shared; forwarding duty moves to the
				// requester.
				Name: "read-miss-forward", From: MfInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(MfForward, MfExclusive), Next: MfForward,
				Observe: map[fsm.State]fsm.State{MfForward: MfShared, MfExclusive: MfShared},
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{MfForward, MfExclusive},
				},
			},
			{
				// Plain Shared copies never respond: after the forwarder is
				// evicted, misses fall through to (consistent) memory and
				// the requester picks up the forwarding duty.
				Name: "read-miss-shared-memory", From: MfInvalid, On: fsm.OpRead,
				Guard: fsm.AnyOther(MfShared), Next: MfForward,
				Data: fsm.DataEffect{Source: fsm.SrcMemory},
			},
			{
				Name: "read-miss-from-memory", From: MfInvalid, On: fsm.OpRead,
				Guard: fsm.NoOther(valid...), Next: MfExclusive,
				Data: fsm.DataEffect{Source: fsm.SrcMemory},
			},
			// --- Writes ---
			{Name: "write-hit-modified", From: MfModified, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MfModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{Name: "write-hit-exclusive", From: MfExclusive, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MfModified,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{Name: "write-hit-forward", From: MfForward, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MfModified, Observe: invAll,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{Name: "write-hit-shared", From: MfShared, On: fsm.OpWrite,
				Guard: fsm.Always(), Next: MfModified, Observe: invAll,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, Store: true}},
			{
				Name: "write-miss-modified", From: MfInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(MfModified), Next: MfModified,
				Observe: invAll,
				Data: fsm.DataEffect{
					Source: fsm.SrcCache, Suppliers: []fsm.State{MfModified},
					Store: true,
				},
			},
			{
				// Clean copies exist: memory is consistent, fetch from it
				// and invalidate everyone.
				Name: "write-miss-clean", From: MfInvalid, On: fsm.OpWrite,
				Guard: fsm.AnyOther(MfForward, MfExclusive, MfShared), Next: MfModified,
				Observe: invAll,
				Data:    fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			{
				Name: "write-miss-from-memory", From: MfInvalid, On: fsm.OpWrite,
				Guard: fsm.NoOther(valid...), Next: MfModified,
				Data: fsm.DataEffect{Source: fsm.SrcMemory, Store: true},
			},
			// --- Replacements ---
			{Name: "replace-modified", From: MfModified, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MfInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, WriteBackSelf: true, DropSelf: true}},
			{Name: "replace-forward", From: MfForward, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MfInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true}},
			{Name: "replace-exclusive", From: MfExclusive, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MfInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true}},
			{Name: "replace-shared", From: MfShared, On: fsm.OpReplace,
				Guard: fsm.Always(), Next: MfInvalid,
				Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true}},
		},
	}
	mustValidate(p)
	return p
}
