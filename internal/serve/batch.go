package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/ccpsl"
	"repro/internal/fsm"
	"repro/internal/mutate"
	"repro/internal/protocols"
	"repro/internal/runctl"
)

// POST /v1/verify/batch: many verifications in one request, streamed back
// as NDJSON — one line per finished job (in completion order, not request
// order; lines carry the request index) and a trailing summary line. The
// job list is explicit (jobs) or expanded server-side from a sweep spec
// (protocols × optional mutation catalog). On a cluster, each job is
// routed by its content address: jobs this node does not own are forwarded
// to their owners, with a straggler re-dispatch to the local pool when an
// owner sits on a job past the adaptive hedge deadline. Every job is
// retried with jittered backoff on transient rejections before being
// reported failed, so one sick peer degrades throughput, not results.

// maxBatchRequestBytes bounds a batch request body; inline specs are
// small, and a sweep spec is tiny.
const maxBatchRequestBytes = 8 << 20

// maxBatchJobs bounds one request's expanded job count.
const maxBatchJobs = 4096

// BatchRequest is the body of POST /v1/verify/batch. At least one of Jobs
// and Sweep must be present; both together concatenate (Jobs first).
type BatchRequest struct {
	// Jobs lists explicit verification requests (same shape as
	// POST /v1/verify bodies; per-request TimeoutMS/NoCache are ignored in
	// favor of the batch-level settings).
	Jobs []Request `json:"jobs,omitempty"`
	// Sweep expands server-side into one job per protocol (× mutant).
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// TimeoutMS caps each job's wall clock, bounded by the server's
	// JobTimeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses cache reads for every job (results are still
	// stored).
	NoCache bool `json:"no_cache,omitempty"`
}

// SweepSpec is the server-side batch expansion: the named library
// protocols (all of them when empty), each verified under the embedded
// engine options, optionally joined by every mutant from the mutation
// catalog (the paper's fault-injection experiment as one request).
type SweepSpec struct {
	Protocols []string `json:"protocols,omitempty"`
	JobOptions
	// Mutants adds the mutation catalog of every swept protocol. Mutants
	// detectable only by the strict extension check are included only when
	// the sweep options set strict.
	Mutants bool `json:"mutants,omitempty"`
}

// Batch job dispositions, reported per job in the NDJSON stream. They
// name how the verdict was obtained, which is exactly what an operator
// debugging a slow or degraded batch needs to see.
const (
	BatchCached    = "cached"    // local cache hit
	BatchComputed  = "computed"  // ran on this node's pool
	BatchForwarded = "forwarded" // computed by (or cached on) a peer
	BatchRetried   = "retried"   // succeeded after at least one retry
	BatchFailed    = "failed"    // no attempt produced a verdict
)

// BatchLine is one NDJSON result line.
type BatchLine struct {
	Index       int    `json:"index"`
	Protocol    string `json:"protocol"`
	CacheKey    string `json:"cache_key"`
	State       string `json:"state"` // done | failed
	Disposition string `json:"disposition"`
	Attempts    int    `json:"attempts"`
	Error       string `json:"error,omitempty"`
	// Report is the verification report verbatim (absent on failure).
	Report json.RawMessage `json:"report,omitempty"`
}

// BatchSummary is the final NDJSON line: per-disposition counts and the
// failure total, so a client can assert batch health without parsing
// every line.
type BatchSummary struct {
	Summary      bool           `json:"summary"`
	Total        int            `json:"total"`
	Done         int            `json:"done"`
	Failed       int            `json:"failed"`
	Dispositions map[string]int `json:"dispositions"`
}

// batchJob is one expanded, spec-resolved batch entry.
type batchJob struct {
	Index     int
	Protocol  string // display name
	Proto     *fsm.Protocol
	Canonical string
	Opts      JobOptions
	Key       string
}

// expandBatch resolves a batch request into its job list, validating
// every spec up front: a batch with one malformed entry is rejected whole
// before any work starts, which is far cheaper to debug than a stream
// that fails halfway.
func (s *Server) expandBatch(req *BatchRequest) ([]batchJob, error) {
	var out []batchJob
	add := func(name string, p *fsm.Protocol, canonical string, opts JobOptions) error {
		if err := opts.normalize(); err != nil {
			return err
		}
		if len(out) >= maxBatchJobs {
			return fmt.Errorf("serve: batch expands past %d jobs", maxBatchJobs)
		}
		out = append(out, batchJob{
			Index:     len(out),
			Protocol:  name,
			Proto:     p,
			Canonical: canonical,
			Opts:      opts,
			Key:       CacheKey(canonical, opts),
		})
		return nil
	}
	for i, jr := range req.Jobs {
		p, canonical, err := ResolveSpec(jr.Protocol, jr.Spec)
		if err != nil {
			return nil, fmt.Errorf("serve: batch job %d: %w", i, err)
		}
		if err := add(p.Name, p, canonical, jr.JobOptions); err != nil {
			return nil, fmt.Errorf("serve: batch job %d: %w", i, err)
		}
	}
	if sw := req.Sweep; sw != nil {
		names := sw.Protocols
		if len(names) == 0 {
			names = protocols.Names()
		}
		sort.Strings(names)
		for _, name := range names {
			p, err := protocols.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("serve: batch sweep: %w", err)
			}
			if err := add(p.Name, p, ccpsl.Format(p), sw.JobOptions); err != nil {
				return nil, err
			}
			if !sw.Mutants {
				continue
			}
			for _, m := range mutate.Catalog(p) {
				if m.NeedsStrict && !sw.Strict {
					continue
				}
				// Mutant names carry "!" as the catalog's visual marker;
				// ccpsl identifiers only allow "-", and the canonical spec
				// must round-trip through the parser on a forwarding peer.
				m.Protocol.Name = strings.ReplaceAll(m.Protocol.Name, "!", "-")
				if err := add(m.Protocol.Name, m.Protocol, ccpsl.Format(m.Protocol), sw.JobOptions); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: batch request expands to no jobs")
	}
	return out, nil
}

// handleVerifyBatch is POST /v1/verify/batch.
func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchRequestBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad batch request: %w", err))
		return
	}
	jobs, err := s.expandBatch(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant := CanonicalTenant(r.Header.Get(TenantHeader))
	// One token per expanded job, charged before any work: a batch is not
	// a rate-limit loophole.
	if ok, after := s.buckets.take(tenant, float64(len(jobs))); !ok {
		s.stats.rateLimited.Add(1)
		s.metrics.Counter("tenant_rejected_total." + tenant).Add(1)
		writeSubmitError(w, &RetryAfterError{Err: ErrRateLimited, After: after})
		return
	}
	s.stats.batchRequests.Add(1)
	s.stats.batchJobs.Add(int64(len(jobs)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var wmu sync.Mutex
	emit := func(v any) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	summary := s.runBatch(r.Context(), jobs, tenant,
		time.Duration(req.TimeoutMS)*time.Millisecond, req.NoCache, emit)
	emit(summary)
}

// batchRun carries one batch request's orchestration state.
type batchRun struct {
	s       *Server
	tenant  string
	timeout time.Duration
	noCache bool
	hedge   *hedgeClock
	backoff runctl.Backoff
}

// runBatch drives every job with bounded parallelism, emitting one line
// per completion, and returns the summary.
func (s *Server) runBatch(ctx context.Context, jobs []batchJob, tenant string,
	timeout time.Duration, noCache bool, emit func(any)) BatchSummary {
	b := &batchRun{
		s:       s,
		tenant:  tenant,
		timeout: timeout,
		noCache: noCache,
		hedge:   newHedgeClock(s.cfg.BatchHedge),
		backoff: runctl.Backoff{Base: 50 * time.Millisecond, Factor: 2, Max: 2 * time.Second, Jitter: 0.5},
	}
	summary := BatchSummary{Summary: true, Total: len(jobs), Dispositions: map[string]int{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.cfg.BatchParallel)
	for i := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(bj *batchJob) {
			defer wg.Done()
			defer func() { <-sem }()
			line := b.runOne(ctx, bj)
			emit(line)
			mu.Lock()
			if line.State == StateDone {
				summary.Done++
			} else {
				summary.Failed++
			}
			summary.Dispositions[line.Disposition]++
			mu.Unlock()
		}(&jobs[i])
	}
	wg.Wait()
	return summary
}

// batchRetryable reports whether a failed attempt is worth repeating:
// admission rejections (busy, shed, share, rate) clear on their own as
// the queue drains; a verdict-level failure (bad spec cannot happen here,
// so: engine error, exceeded bound, canceled) will not.
func batchRetryable(err error) bool {
	return errors.Is(err, ErrBusy) || errors.Is(err, ErrShedBatch) ||
		errors.Is(err, ErrTenantShare) || errors.Is(err, ErrRateLimited)
}

// runOne runs one batch job to a verdict or a final failure, retrying
// transient rejections with jittered backoff.
func (b *batchRun) runOne(ctx context.Context, bj *batchJob) BatchLine {
	line := BatchLine{Index: bj.Index, Protocol: bj.Protocol, CacheKey: bj.Key}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		line.Attempts = attempt + 1
		payload, disposition, err := b.tryOnce(ctx, bj)
		if err == nil {
			line.State = StateDone
			line.Disposition = disposition
			if attempt > 0 {
				line.Disposition = BatchRetried
			}
			line.Report = payload
			return line
		}
		lastErr = err
		if attempt >= b.s.cfg.BatchRetries || !batchRetryable(err) {
			break
		}
		select {
		case <-time.After(b.backoff.Delay(attempt + 1)):
		case <-ctx.Done():
		}
	}
	line.State = StateFailed
	line.Disposition = BatchFailed
	if lastErr != nil {
		line.Error = lastErr.Error()
	}
	return line
}

// tryOnce makes one attempt at a job: owned keys go to the local pool
// (which may itself forward on saturation), keys owned elsewhere are
// forwarded to their owner with a straggler re-dispatch — if the owner
// has not answered by the hedge deadline, the forward is abandoned and
// the job runs locally instead. The owner keeps computing and caches its
// result, so an abandoned forward still warms the fleet.
func (b *batchRun) tryOnce(ctx context.Context, bj *batchJob) (json.RawMessage, string, error) {
	s := b.s
	cl := s.cluster
	if cl == nil || cl.SelfIsOwner(bj.Key) || s.hasInflight(bj.Key) {
		return b.local(ctx, bj)
	}
	if !b.noCache {
		if payload, hit, _ := s.cache.Get(bj.Key); hit {
			return payload, BatchCached, nil
		}
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	forward := make(chan []byte, 1)
	began := time.Now()
	go func() {
		payload, ok := s.forwardCompute(fctx, bj.Key, bj.Canonical, bj.Opts, b.timeout, b.tenant, true)
		if !ok {
			payload = nil
		}
		forward <- payload
	}()
	hedge := time.NewTimer(b.hedge.deadline())
	defer hedge.Stop()
	select {
	case payload := <-forward:
		if payload != nil {
			b.hedge.observe(time.Since(began))
			return payload, BatchForwarded, nil
		}
		// Every owner declined or failed; the local pool is the backstop.
	case <-hedge.C:
		s.stats.batchHedges.Add(1)
		cancel()
	case <-ctx.Done():
		return nil, "", ctx.Err()
	}
	return b.local(ctx, bj)
}

// local submits the job to this node's pool and waits for its verdict.
func (b *batchRun) local(ctx context.Context, bj *batchJob) (json.RawMessage, string, error) {
	s := b.s
	j, disposition, err := s.SubmitEx(bj.Proto, bj.Canonical, bj.Opts, SubmitOptions{
		Timeout: b.timeout,
		NoCache: b.noCache,
		Tenant:  b.tenant,
		Batch:   true,
		// The batch router already made the cluster decision for this job;
		// the pool must not second-guess it per attempt.
		NoForward:  true,
		NoPeerFill: true,
		// The batch charged the tenant's bucket once for all jobs.
		Internal: true,
	})
	if err != nil {
		return nil, "", err
	}
	select {
	case <-j.Done():
	case <-ctx.Done():
		return nil, "", ctx.Err()
	}
	state, _, errText, payload := j.snapshot()
	switch state {
	case StateDone:
		if disposition == DispositionHit {
			return payload, BatchCached, nil
		}
		return payload, BatchComputed, nil
	case StateCanceled:
		return nil, "", fmt.Errorf("serve: batch job canceled: %s", errText)
	default:
		return nil, "", fmt.Errorf("serve: batch job failed: %s", errText)
	}
}

// hedgeClock tracks recent forward latencies and derives the straggler
// re-dispatch deadline: three times the rolling p90, clamped to sane
// bounds. Until enough samples exist it answers a generous default — the
// cost of hedging late is bounded (the job just runs locally a bit later),
// while hedging early on a cold estimate would stampede the local pool.
type hedgeClock struct {
	fixed time.Duration // Config.BatchHedge override; 0 adapts

	mu   sync.Mutex
	ring [64]time.Duration
	n    int // samples stored (caps at len(ring))
	idx  int // next write position
}

// hedgeDefault is the deadline before enough samples exist.
const hedgeDefault = 2 * time.Second

func newHedgeClock(fixed time.Duration) *hedgeClock {
	return &hedgeClock{fixed: fixed}
}

// observe records one successful forward's wall time.
func (h *hedgeClock) observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ring[h.idx] = d
	h.idx = (h.idx + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
}

// deadline returns the current straggler deadline.
func (h *hedgeClock) deadline() time.Duration {
	if h.fixed > 0 {
		return h.fixed
	}
	h.mu.Lock()
	n := h.n
	samples := make([]time.Duration, n)
	copy(samples, h.ring[:n])
	h.mu.Unlock()
	if n < 8 {
		return hedgeDefault
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	d := 3 * samples[(n*9)/10] // (n*9)/10 < n for every n >= 1
	switch {
	case d < 100*time.Millisecond:
		d = 100 * time.Millisecond
	case d > 30*time.Second:
		d = 30 * time.Second
	}
	return d
}
