package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/replay"
)

// The simulate job type: POST /v1/simulate replays one trace through a set
// of library protocols with the trace-driven engine (internal/replay) and
// answers with the deterministic comparison report. The trace arrives
// inline as cctrace v1 text, or as a WorkloadSpec the server materializes —
// either way the result is a pure function of the request, so it enters the
// same content-addressed cache as verification verdicts (SimulateCacheKey),
// coalesces with identical in-flight runs, and obeys the same per-tenant
// admission control.

// maxSimulateBytes bounds a simulate request body. Inline traces are
// line-oriented text (~12 bytes per reference), so 16 MiB carries a trace
// of roughly 1.4M references.
const maxSimulateBytes = 16 << 20

// Simulation guardrails: the request shapes server-side work, so every
// dimension a client can grow is capped.
const (
	// maxSimulateOps bounds a server-generated workload's length.
	maxSimulateOps = 5_000_000
	// maxSimulateCaches bounds the simulated machine width.
	maxSimulateCaches = 64
	// maxSimulateBlocks bounds the distinct-block table (and with it the
	// per-protocol machine memory).
	maxSimulateBlocks = 1 << 16
	// maxSimulateProtocols bounds the fan-out width.
	maxSimulateProtocols = 16
)

// ErrSimulateRequest marks a simulate submission rejected for malformed
// input rather than admission pressure; the HTTP layer answers 400.
var ErrSimulateRequest = errors.New("serve: bad simulate request")

// SimOptions are the replay knobs that shape a simulation result and
// therefore participate in the cache key. Per-request execution knobs that
// cannot change a completed report (deadline, cache bypass) are excluded,
// exactly as in JobOptions.
type SimOptions struct {
	// BlockSize overrides the address→block granularity (0: the trace
	// header's blocksize, or 64).
	BlockSize int `json:"block_size,omitempty"`
	// MaxBlocks caps distinct blocks (0: 4096).
	MaxBlocks int `json:"max_blocks,omitempty"`
	// Capacity bounds blocks resident per cache, LRU-replaced (0:
	// unbounded).
	Capacity int `json:"capacity,omitempty"`
	// MaxOps replays at most this many references (0: the whole trace).
	MaxOps int64 `json:"max_ops,omitempty"`
	// Strict enables the CleanShared extension in the final invariants.
	Strict bool `json:"strict,omitempty"`
}

// normalize validates the options and canonicalizes defaults in place, so
// "omitted" and "explicit default" land on one cache entry.
func (o *SimOptions) normalize() error {
	if o.BlockSize < 0 {
		return fmt.Errorf("negative block_size %d", o.BlockSize)
	}
	if o.MaxBlocks < 0 || o.MaxBlocks > maxSimulateBlocks {
		return fmt.Errorf("max_blocks %d out of range [0, %d]", o.MaxBlocks, maxSimulateBlocks)
	}
	if o.MaxBlocks == 0 {
		o.MaxBlocks = replay.DefaultMaxBlocks
	}
	if o.Capacity < 0 {
		return fmt.Errorf("negative capacity %d", o.Capacity)
	}
	if o.MaxOps < 0 {
		return fmt.Errorf("negative max_ops %d", o.MaxOps)
	}
	return nil
}

// SimulateRequest is the body of POST /v1/simulate. Exactly one of Trace
// (inline cctrace v1 text) or Workload (a deterministic generator spec the
// server materializes) supplies the reference stream.
type SimulateRequest struct {
	// Trace is an inline cctrace v1 document. Plain text only: JSON strings
	// carry text, not bytes, so gzipped traces must be expanded client-side.
	Trace string `json:"trace,omitempty"`
	// Workload asks the server to materialize this spec instead of shipping
	// trace bytes. The spec's canonical rendering is the content identity,
	// so the cache key is independent of who generates the trace.
	Workload *replay.WorkloadSpec `json:"workload,omitempty"`
	// Protocols lists the library protocols to fan the trace out to, in
	// report order (empty: msi, mesi, moesi, dragon).
	Protocols []string `json:"protocols,omitempty"`
	SimOptions
	// TimeoutMS overrides the per-job deadline, capped by the server's
	// JobTimeout. Not part of the cache key: a deadline can only fail a
	// run, never change a completed report.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the cache read; the fresh report is still stored.
	NoCache bool `json:"no_cache,omitempty"`
}

// resolve validates the request in place (normalizing the options and the
// workload spec), resolves the protocol fan-out, and derives the trace
// identity the cache key digests. Every failure wraps ErrSimulateRequest.
func (req *SimulateRequest) resolve() (protos []*fsm.Protocol, names []string, identity string, err error) {
	badf := func(format string, args ...any) error {
		return fmt.Errorf("%w: "+format, append([]any{ErrSimulateRequest}, args...)...)
	}
	if err := req.SimOptions.normalize(); err != nil {
		return nil, nil, "", badf("%v", err)
	}
	if len(req.Protocols) == 0 {
		req.Protocols = []string{"msi", "mesi", "moesi", "dragon"}
	}
	if len(req.Protocols) > maxSimulateProtocols {
		return nil, nil, "", badf("%d protocols exceeds the fan-out cap %d", len(req.Protocols), maxSimulateProtocols)
	}
	for _, name := range req.Protocols {
		p, perr := protocols.ByName(strings.TrimSpace(name))
		if perr != nil {
			return nil, nil, "", badf("%v", perr)
		}
		protos = append(protos, p)
		names = append(names, p.Name)
	}
	switch {
	case req.Trace != "" && req.Workload != nil:
		return nil, nil, "", badf("trace and workload are mutually exclusive")
	case req.Trace != "":
		if len(req.Trace) > maxSimulateBytes {
			return nil, nil, "", badf("trace exceeds %d bytes", maxSimulateBytes)
		}
		sum := sha256.Sum256([]byte(req.Trace))
		identity = "trace:" + hex.EncodeToString(sum[:])
	case req.Workload != nil:
		if werr := req.Workload.Normalize(); werr != nil {
			return nil, nil, "", badf("%v", werr)
		}
		if req.Workload.Ops > maxSimulateOps {
			return nil, nil, "", badf("workload ops %d exceeds the cap %d", req.Workload.Ops, maxSimulateOps)
		}
		if req.Workload.Caches > maxSimulateCaches {
			return nil, nil, "", badf("workload caches %d exceeds the cap %d", req.Workload.Caches, maxSimulateCaches)
		}
		if req.Workload.Blocks > maxSimulateBlocks {
			return nil, nil, "", badf("workload blocks %d exceeds the cap %d", req.Workload.Blocks, maxSimulateBlocks)
		}
		identity = "workload:" + req.Workload.Canonical()
	default:
		return nil, nil, "", badf("request must set trace or workload")
	}
	return protos, names, identity, nil
}

// SubmitSimulate routes one simulation request through the shared admission
// pipeline: cache hit, coalesce onto an identical in-flight run, or admit a
// fresh replay job — under the same tenant rate, queue-share and shedding
// rules as verification. Simulate jobs are never forwarded to cluster peers
// on saturation (the trace bytes would have to travel with them), but peer
// cache fill still applies: the report carries schema and cache key, so a
// peer's cached comparison validates like any other result.
func (s *Server) SubmitSimulate(req *SimulateRequest, so SubmitOptions) (*Job, string, error) {
	s.stats.simRequests.Add(1)
	protos, names, identity, err := req.resolve()
	if err != nil {
		return nil, "", err
	}
	key := SimulateCacheKey(identity, names, req.SimOptions)
	return s.submit(submission{
		kind: jobSimulate,
		key:  key,
		runFn: func(ctx context.Context) ([]byte, bool, error) {
			return s.runSimulation(ctx, req, protos, key)
		},
	}, so)
}

// runSimulation executes one simulate job: obtain the reference stream
// (inline bytes or a materialized workload), fan it out to every requested
// protocol, and render the deterministic comparison report. A run stopped
// by budget or cancellation fails rather than caching a partial report; a
// run truncated by the request's own max_ops is complete by definition
// (max_ops is part of the key) and caches normally.
func (s *Server) runSimulation(ctx context.Context, req *SimulateRequest, protos []*fsm.Protocol, key string) ([]byte, bool, error) {
	var in io.Reader
	if req.Trace != "" {
		in = strings.NewReader(req.Trace)
	} else {
		var buf bytes.Buffer
		if _, err := replay.Materialize(&buf, *req.Workload); err != nil {
			return nil, false, err
		}
		in = &buf
	}
	opts := replay.Options{
		BlockSize: req.BlockSize,
		MaxBlocks: req.MaxBlocks,
		Capacity:  req.Capacity,
		MaxOps:    req.MaxOps,
		Strict:    req.Strict,
	}
	opts.Metrics = s.metrics
	cr, err := replay.Compare(ctx, in, protos, opts)
	if err != nil {
		return nil, false, err
	}
	for _, r := range cr.Results {
		if r.StopReason != nil {
			return nil, false, fmt.Errorf("serve: simulation stopped: %w", r.StopReason)
		}
	}
	rep := replay.NewReport(cr)
	rep.CacheKey = key
	payload, err := rep.Encode()
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// handleSimulate is POST /v1/simulate: decode the request, route through
// the shared admission pipeline, and answer with the job status (optionally
// waiting for completion with ?wait=1) — the same contract as /v1/verify,
// with the comparison report in the report field.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSimulateBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	j, disposition, err := s.SubmitSimulate(&req, SubmitOptions{
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		NoCache: req.NoCache,
		Tenant:  r.Header.Get(TenantHeader),
	})
	if err != nil {
		if errors.Is(err, ErrSimulateRequest) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeSubmitError(w, err)
		return
	}
	w.Header().Set("X-CC-Disposition", disposition)
	if wantWait(r) {
		awaitJob(r, j)
	}
	st, code := status(j, disposition)
	writeJSON(w, code, st)
}
