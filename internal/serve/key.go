package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"repro/internal/ccpsl"
	"repro/internal/fsm"
	"repro/internal/protocols"
)

// Engine names accepted by the service. They match the campaign engine
// vocabulary (internal/campaign.Engine).
const (
	EngineSymbolic     = "symbolic"
	EngineEnumStrict   = "enum-strict"
	EngineEnumCounting = "enum-counting"
)

// maxEnumN caps the cache count a request may ask an enumeration engine
// for; the state space grows as mⁿ, so an uncapped n is a denial-of-service
// knob.
const maxEnumN = 12

// maxWorkers caps the parallel width a request may ask for; goroutines are
// cheap but not free, and the engines gain nothing beyond the host's cores.
const maxWorkers = 16

// JobOptions are the engine-facing options that shape a verification
// result and therefore participate in the cache key. Per-request execution
// knobs that cannot change a completed verdict (deadline, cache bypass) are
// deliberately excluded.
type JobOptions struct {
	// Engine is symbolic (default), enum-strict or enum-counting.
	Engine string `json:"engine,omitempty"`
	// N is the cache count for enumeration engines (default 4, ignored
	// and zeroed for symbolic).
	N int `json:"n,omitempty"`
	// Strict enables the CleanShared memory-consistency extension check.
	Strict bool `json:"strict,omitempty"`
	// MaxStates bounds distinct states (enum) or state visits (symbolic);
	// 0 means the engine default. A run that trips it fails rather than
	// returning a partial verdict, so it is part of the key only for
	// completeness of the options rendering.
	MaxStates int `json:"max_states,omitempty"`
	// Workers selects the parallel engine width: > 1 runs the level-
	// synchronous parallel BFS (enum) or the speculation pipeline
	// (symbolic) with that many goroutines; 0 or 1 is sequential. The
	// parallel engines are bit-identical to the sequential ones, but the
	// knob still enters the cache key so a cached verdict always names the
	// exact configuration that produced it.
	Workers int `json:"workers,omitempty"`
}

// normalize fills defaults and validates the options in place.
func (o *JobOptions) normalize() error {
	if o.Engine == "" {
		o.Engine = EngineSymbolic
	}
	switch o.Engine {
	case EngineSymbolic:
		// The symbolic expansion is independent of the cache count; zero
		// it so "symbolic n=3" and "symbolic n=4" share a cache entry.
		o.N = 0
	case EngineEnumStrict, EngineEnumCounting:
		if o.N == 0 {
			o.N = 4
		}
		if o.N < 2 || o.N > maxEnumN {
			return fmt.Errorf("serve: n=%d out of range [2, %d]", o.N, maxEnumN)
		}
	default:
		return fmt.Errorf("serve: unknown engine %q (have %s, %s, %s)",
			o.Engine, EngineSymbolic, EngineEnumStrict, EngineEnumCounting)
	}
	if o.MaxStates < 0 {
		return fmt.Errorf("serve: negative max_states %d", o.MaxStates)
	}
	if o.Workers == 0 {
		// Sequential is the default; canonicalize so "workers omitted" and
		// "workers: 1" share a cache entry.
		o.Workers = 1
	}
	if o.Workers < 1 || o.Workers > maxWorkers {
		return fmt.Errorf("serve: workers=%d out of range [1, %d]", o.Workers, maxWorkers)
	}
	return nil
}

// keySchema versions the cache-key derivation. Bump it whenever the
// canonical spec rendering, the options rendering or the report schema
// changes meaning, so stale disk-tier entries from older builds can never
// be served as current results.
const keySchema = 3 // v3: the simulate job kind joined the key namespace

// CacheKey derives the content address of a verification result: the
// SHA-256 over a versioned rendering of the engine options followed by the
// canonical ccpsl specification. Deterministic by construction, and
// collision-resistant enough that the key alone identifies the result.
func CacheKey(canonicalSpec string, o JobOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "ccserve-key-v%d\x00engine=%s\x00n=%d\x00strict=%t\x00maxstates=%d\x00workers=%d\x00",
		keySchema, o.Engine, o.N, o.Strict, o.MaxStates, o.Workers)
	io.WriteString(h, canonicalSpec)
	return hex.EncodeToString(h.Sum(nil))
}

// SimulateCacheKey derives the content address of a simulation result: the
// SHA-256 over a versioned rendering of the protocol fan-out and the replay
// options, followed by the trace identity — "trace:" plus the digest of the
// submitted trace bytes, or "workload:" plus the canonical workload spec
// for server-generated traces. The protocol list is keyed in request order
// because the report preserves that order, and byte-identical cached
// responses are the contract. It shares keySchema with CacheKey, so a bump
// retires both namespaces together.
func SimulateCacheKey(identity string, protoNames []string, o SimOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "ccserve-simkey-v%d\x00protocols=%s\x00blocksize=%d\x00maxblocks=%d\x00capacity=%d\x00maxops=%d\x00strict=%t\x00",
		keySchema, strings.Join(protoNames, ","), o.BlockSize, o.MaxBlocks, o.Capacity, o.MaxOps, o.Strict)
	io.WriteString(h, identity)
	return hex.EncodeToString(h.Sum(nil))
}

// ResolveSpec turns a request's protocol source — a library protocol name
// or an inline ccpsl specification, exactly one of which must be set —
// into the parsed protocol and its canonical ccpsl rendering. The
// canonical form, not the submitted text, feeds CacheKey: Parse∘Format is
// idempotent, so every spelling of a protocol maps to one cache entry.
func ResolveSpec(protocol, spec string) (*fsm.Protocol, string, error) {
	var p *fsm.Protocol
	var err error
	switch {
	case protocol != "" && spec != "":
		return nil, "", fmt.Errorf("serve: request must set either protocol or spec, not both")
	case protocol != "":
		p, err = protocols.ByName(protocol)
	case spec != "":
		p, err = ccpsl.Parse(spec)
	default:
		return nil, "", fmt.Errorf("serve: request must set protocol or spec")
	}
	if err != nil {
		return nil, "", err
	}
	if err := p.Validate(); err != nil {
		return nil, "", err
	}
	return p, ccpsl.Format(p), nil
}
