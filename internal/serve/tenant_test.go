package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCanonicalTenant(t *testing.T) {
	for raw, want := range map[string]string{
		"":                       DefaultTenant,
		"team-a":                 "team-a",
		"Team.A_1":               "Team.A_1",
		"bad tenant!":            "bad_tenant_",
		"../../passwd":           ".._.._passwd",
		strings.Repeat("x", 100): strings.Repeat("x", maxTenantLen),
	} {
		if got := CanonicalTenant(raw); got != want {
			t.Errorf("CanonicalTenant(%q) = %q, want %q", raw, got, want)
		}
	}
}

func TestTokenBucketsRefillAndRetryAfter(t *testing.T) {
	tb := newTokenBuckets(10, 2) // 10/s, burst 2
	now := time.Unix(0, 0)
	tb.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := tb.take("a", 1); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, wait := tb.take("a", 1)
	if ok {
		t.Fatal("empty bucket admitted a request")
	}
	// One token refills in 100ms at 10/s; the advertised wait must cover it.
	if wait <= 0 || wait > 200*time.Millisecond {
		t.Fatalf("retry-after wait = %v, want ~100ms", wait)
	}
	// Tenants are isolated: b's bucket is untouched by a's exhaustion.
	if ok, _ := tb.take("b", 1); !ok {
		t.Fatal("tenant b refused because tenant a is exhausted")
	}
	now = now.Add(wait)
	if ok, _ := tb.take("a", 1); !ok {
		t.Fatal("bucket still empty after the advertised wait")
	}
}

func TestTokenBucketsOversizedBatchAdmittedIntoDebt(t *testing.T) {
	tb := newTokenBuckets(1, 2)
	now := time.Unix(0, 0)
	tb.now = func() time.Time { return now }

	// A batch larger than the burst can never fit a full bucket; admitting
	// it when the bucket is full (driving the balance negative) is the only
	// way such a batch ever runs. A second one must then wait.
	if ok, _ := tb.take("a", 10); !ok {
		t.Fatal("oversized batch refused against a full bucket")
	}
	if ok, wait := tb.take("a", 10); ok || wait <= 0 {
		t.Fatalf("second oversized batch: ok=%t wait=%v, want a refusal with backoff", ok, wait)
	}
}

// postTenant POSTs a verify request under a tenant identity and returns the
// decoded status, HTTP code and Retry-After header.
func (tc *testClient) postTenant(t *testing.T, body, tenant string, wait bool) (JobStatus, int, string) {
	t.Helper()
	url := "http://ccserved/v1/verify"
	if wait {
		url += "?wait=1"
	}
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding response (http %d): %v", resp.StatusCode, err)
	}
	return st, resp.StatusCode, resp.Header.Get("Retry-After")
}

// enumReq builds a distinct-cache-key request: the enum cache count is part
// of the content address, so varying n yields distinct jobs cheaply.
func enumReq(protocol string, n int) string {
	return fmt.Sprintf(`{"protocol": %q, "engine": "enum-strict", "n": %d}`, protocol, n)
}

// TestE2ETenantQueueShare is the starvation drill the admission control
// exists for: an aggressor tenant flooding distinct jobs is capped at its
// queue share (429 + Retry-After once it is reached), while a victim
// tenant's requests keep being admitted and finish.
func TestE2ETenantQueueShare(t *testing.T) {
	// QueueDepth 4, share 0.5 → one tenant may hold at most 2 queued jobs.
	srv, gate := blockingServer(t, Config{Workers: 1, QueueDepth: 4, TenantQueueShare: 0.5})
	tc := startUnixServer(t, srv)

	// Occupies the worker (its queue slot is released on dequeue).
	first, code, _ := tc.postTenant(t, enumReq("illinois", 2), "aggr", false)
	if code != http.StatusAccepted {
		t.Fatalf("first: http %d", code)
	}
	waitForState(t, tc, first.ID, StateRunning)

	// The aggressor fills its share with two queued jobs…
	for n := 3; n <= 4; n++ {
		if _, code, _ := tc.postTenant(t, enumReq("illinois", n), "aggr", false); code != http.StatusAccepted {
			t.Fatalf("aggressor job n=%d: http %d", n, code)
		}
	}
	// …and the next one is refused with backoff even though the queue has
	// free depth.
	_, code, retryAfter := tc.postTenant(t, enumReq("illinois", 5), "aggr", false)
	if code != http.StatusTooManyRequests {
		t.Fatalf("aggressor over share: http %d, want 429", code)
	}
	if retryAfter == "" {
		t.Error("tenant-share rejection missing Retry-After")
	}

	// The victim is unaffected: its job admits into the free depth and,
	// once the gate opens, completes.
	victim, code, _ := tc.postTenant(t, enumReq("dragon", 2), "victim", false)
	if code != http.StatusAccepted {
		t.Fatalf("victim: http %d, want admission despite the aggressor flood", code)
	}
	close(gate)
	waitForState(t, tc, victim.ID, StateDone)

	s := tc.stats(t)
	if s.TenantRejected != 1 {
		t.Errorf("tenant_rejected = %d, want 1", s.TenantRejected)
	}
	if s.RejectedBusy != 0 {
		t.Errorf("rejected_busy = %d; the share cap must fire before the queue fills", s.RejectedBusy)
	}
}

// TestE2ETenantRateLimit: a tenant past its token bucket gets 429 +
// Retry-After; other tenants' buckets are independent.
func TestE2ETenantRateLimit(t *testing.T) {
	srv := newServer(t, Config{Workers: 2, TenantRate: 0.01, TenantBurst: 2})
	tc := startUnixServer(t, srv)

	for i := 0; i < 2; i++ {
		if _, code, _ := tc.postTenant(t, `{"protocol": "illinois"}`, "greedy", true); code != http.StatusOK {
			t.Fatalf("request %d within burst: http %d", i, code)
		}
	}
	_, code, retryAfter := tc.postTenant(t, `{"protocol": "illinois"}`, "greedy", true)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: http %d, want 429", code)
	}
	if secs, err := time.ParseDuration(retryAfter + "s"); err != nil || secs < time.Second {
		t.Errorf("Retry-After = %q, want >= 1 second at 0.01 req/s", retryAfter)
	}
	if _, code, _ := tc.postTenant(t, `{"protocol": "illinois"}`, "modest", true); code != http.StatusOK {
		t.Fatalf("other tenant: http %d, want its own untouched bucket", code)
	}
	if s := tc.stats(t); s.RateLimited != 1 {
		t.Errorf("rate_limited = %d, want 1", s.RateLimited)
	}
}
