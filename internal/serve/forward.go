package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/ckptio"
	"repro/internal/cluster"
)

// computeRequest is the body of the cluster-internal POST
// /v1/cluster/compute call (cluster.ComputePath). The cluster layer ships
// it opaquely; both ends are this package, so the schema is the serve
// layer's to evolve. The spec travels in canonical form — the receiving
// node re-derives the cache key from it, so a forwarded job lands on
// exactly the content address the sender expects.
type computeRequest struct {
	Spec string `json:"spec"`
	JobOptions
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	Batch     bool   `json:"batch,omitempty"`
}

// handleClusterCompute serves a forwarded verification job: resolve the
// shipped spec, run it through the normal submit path (cache, coalesce,
// admission), wait for the terminal state, and answer with the report
// bytes in the CRC envelope. Requests must carry the forwarded marker,
// and the submission is pinned NoForward — one marker per hop and no
// second hop makes forwarding loops structurally impossible. A saturated
// or draining node answers 429/503, which the sender treats as a clean
// rejection (try the next owner, then queue locally) rather than a
// failure.
func (s *Server) handleClusterCompute(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(cluster.ForwardedHeader) == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: cluster-internal endpoint requires %s", cluster.ForwardedHeader))
		return
	}
	var req computeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad compute request: %w", err))
		return
	}
	p, canonical, err := ResolveSpec("", req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := req.JobOptions
	if err := opts.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	j, _, err := s.SubmitEx(p, canonical, opts, SubmitOptions{
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Tenant:  req.Tenant,
		Batch:   req.Batch,
		// No second hop, and no peer cache probe either: the sender already
		// routed this job to its owners — asking them back adds latency,
		// never information.
		NoForward:  true,
		NoPeerFill: true,
		// The origin node already charged the tenant's token bucket.
		Internal: true,
	})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		// The sender hedged away or timed out. The local job keeps running:
		// its result lands in the cache, where the next probe for this key
		// finds it — abandoning finished-soon work would waste the compute.
		return
	}
	state, _, errText, payload := j.snapshot()
	switch state {
	case StateDone:
		s.stats.peerComputeServed.Add(1)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(ckptio.Encode(payload))
	case StateCanceled:
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: forwarded job canceled: %s", errText))
	default:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: forwarded job failed: %s", errText))
	}
}
