package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ckptio"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/protocols"
)

// maxRequestBytes bounds a verify request body; specs are small.
const maxRequestBytes = 1 << 20

// Request is the body of POST /v1/verify. Exactly one of Protocol (a
// library name) or Spec (inline ccpsl source) selects the protocol.
type Request struct {
	Protocol string `json:"protocol,omitempty"`
	Spec     string `json:"spec,omitempty"`
	JobOptions
	// TimeoutMS overrides the per-job deadline, capped by the server's
	// JobTimeout. Not part of the cache key: a deadline can only fail a
	// run, never change a completed verdict.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the cache read; the fresh result is still stored.
	NoCache bool `json:"no_cache,omitempty"`
}

// JobStatus is the service's job-facing response document, returned by
// POST /v1/verify, GET /v1/jobs/{id} and DELETE /v1/jobs/{id}.
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheKey string `json:"cache_key"`
	// Cached: the report was served from the cache without an engine run.
	Cached bool `json:"cached,omitempty"`
	// Coalesced: this submission attached to an identical in-flight job.
	Coalesced bool   `json:"coalesced,omitempty"`
	Error     string `json:"error,omitempty"`
	// Report holds the verification report verbatim for done jobs.
	Report json.RawMessage `json:"report,omitempty"`
}

// errorDoc is the uniform error body.
type errorDoc struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/verify/batch", s.handleVerifyBatch)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST "+cluster.ComputePath, s.handleClusterCompute)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/graph", s.handleJobGraph)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	return mux
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the fixed document types; keep the contract.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

// writeError renders the uniform error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorDoc{Error: err.Error()})
}

// TenantHeader names the request header carrying the tenant identity for
// per-tenant admission control (see CanonicalTenant for how raw values are
// mapped).
const TenantHeader = "X-CC-Tenant"

// writeSubmitError maps a submission rejection to its HTTP response:
// every admission refusal (busy, rate limit, queue share, batch shed) is
// a 429 carrying Retry-After, drain is 503, anything else 500.
func writeSubmitError(w http.ResponseWriter, err error) {
	if secs, ok := retryAfterSeconds(err); ok {
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// status renders a job's current JobStatus; disposition tags the
// submission path that produced this response ("" for plain polls).
func status(j *Job, disposition string) (JobStatus, int) {
	state, cached, errText, payload := j.snapshot()
	st := JobStatus{
		ID:        j.ID,
		State:     state,
		CacheKey:  j.CacheKey,
		Cached:    cached,
		Coalesced: disposition == DispositionCoalesced,
		Error:     errText,
		Report:    payload,
	}
	code := http.StatusOK
	if state == StateQueued || state == StateRunning {
		code = http.StatusAccepted
	}
	return st, code
}

// wantWait reports the ?wait=1 polling-free mode.
func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// awaitJob blocks until the job reaches a terminal state or the client
// gives up; it returns false on client abandonment.
func awaitJob(r *http.Request, j *Job) bool {
	select {
	case <-j.Done():
		return true
	case <-r.Context().Done():
		return false
	}
}

// handleVerify is POST /v1/verify: resolve the spec, route through cache /
// dedup / admission, and answer with the job status (optionally waiting
// for completion with ?wait=1).
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	p, canonical, err := ResolveSpec(req.Protocol, req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := req.JobOptions
	if err := opts.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond

	j, disposition, err := s.SubmitEx(p, canonical, opts, SubmitOptions{
		Timeout: timeout,
		NoCache: req.NoCache,
		Tenant:  r.Header.Get(TenantHeader),
	})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	w.Header().Set("X-CC-Disposition", disposition)
	if wantWait(r) {
		awaitJob(r, j)
	}
	st, code := status(j, disposition)
	writeJSON(w, code, st)
}

// handleJobGet is GET /v1/jobs/{id}, with the same ?wait=1 contract as
// verify.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	if wantWait(r) {
		awaitJob(r, j)
	}
	st, code := status(j, "")
	writeJSON(w, code, st)
}

// handleJobCancel is DELETE /v1/jobs/{id}: cancel a queued or running job.
// Terminal jobs are unaffected; the response is the job's resulting state
// either way.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")))
		return
	}
	j.Cancel()
	st, code := status(j, "")
	writeJSON(w, code, st)
}

// protocolsDoc is the GET /v1/protocols body.
type protocolsDoc struct {
	Protocols []string `json:"protocols"`
}

// handleProtocols lists the built-in protocol library.
func (s *Server) handleProtocols(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, protocolsDoc{Protocols: protocols.Names()})
}

// handleHealthz reports liveness: 200 while serving, 503 while draining so
// load balancers stop routing to a terminating instance.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleStatsz serves the service counters.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics is GET /v1/metrics: the full observability-registry
// snapshot (service counters, per-protocol verify_latency_seconds.*
// histograms, and the engine counters of every verification run).
// ?scope=cluster widens it to a fleet rollup: every reachable peer's
// snapshot is scraped and merged into this node's (counters and gauges
// sum, histograms merge bucket-wise), with unreachable peers reported
// alongside instead of failing the rollup.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("scope") != "cluster" {
		writeJSON(w, http.StatusOK, s.metrics.Snapshot())
		return
	}
	doc := ClusterMetricsDoc{
		Scope:      "cluster",
		NodesTotal: 1,
		NodesOK:    1,
		Metrics:    s.metrics.Snapshot(),
	}
	if s.cluster != nil {
		for _, pm := range s.cluster.ScrapePeerMetrics(r.Context()) {
			doc.NodesTotal++
			if pm.Err != "" {
				doc.Unreachable = append(doc.Unreachable, UnreachablePeer{Addr: pm.Addr, Err: pm.Err})
				continue
			}
			doc.NodesOK++
			doc.Metrics.Merge(pm.Snapshot)
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// ClusterMetricsDoc is the GET /v1/metrics?scope=cluster body: the merged
// fleet snapshot plus scrape coverage, so a reader can tell a full rollup
// from a degraded one.
type ClusterMetricsDoc struct {
	Scope      string `json:"scope"`
	NodesTotal int    `json:"nodes_total"`
	NodesOK    int    `json:"nodes_ok"`
	// Unreachable lists peers whose snapshot could not be scraped; their
	// counters are missing from Metrics.
	Unreachable []UnreachablePeer `json:"unreachable,omitempty"`
	Metrics     obs.Snapshot      `json:"metrics"`
}

// UnreachablePeer is one failed scrape in a cluster metrics rollup.
type UnreachablePeer struct {
	Addr string `json:"addr"`
	Err  string `json:"error"`
}

// handleCacheGet is GET /v1/cache/{key}, the cluster-internal peer
// cache-fill endpoint: serve the cached report bytes for a content-address
// key, wrapped in the CRC32 ckptio envelope so the caller can verify
// integrity end to end. 404 means "not cached here" — never an error; the
// asking node just computes locally. The key is validated strictly before
// use because the disk cache tier maps keys to file names: anything but a
// lowercase SHA-256 hex string is rejected, closing path traversal by
// construction. Cache reads keep working during drain — handing out
// already-computed results costs nothing and helps the survivors.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := cluster.ValidateKey(key); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	payload, hit, _ := s.cache.Get(key)
	if !hit {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: key not cached"))
		return
	}
	s.stats.peerServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(ckptio.Encode(payload))
}
