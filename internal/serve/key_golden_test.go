package serve

import "testing"

// TestCacheKeyGolden pins the exact SHA-256 content address of the
// canonical illinois request under the two common engine configurations.
// These literals are the cluster's coordination contract: every node must
// derive the identical key for the identical request, or peer cache fill
// silently degrades to always-miss. If this test fails you have changed
// the key derivation — the canonical ccpsl rendering, the options
// rendering, or their framing. That is sometimes the right thing to do,
// but it MUST come with a keySchema bump (see key.go), so stale disk-tier
// and peer entries from older builds can never be served as current
// results; then re-pin these literals.
func TestCacheKeyGolden(t *testing.T) {
	if keySchema != 3 {
		t.Fatalf("keySchema = %d; these golden keys pin schema 3 — re-derive and re-pin them for the new schema", keySchema)
	}
	golden := []struct {
		name string
		opts JobOptions
		want string
	}{
		{
			name: "symbolic-default",
			opts: JobOptions{Engine: EngineSymbolic},
			want: "f328565fff5a58500fc58665a89666f39fa570b7429362eb44c89086bbee59fe",
		},
		{
			name: "enum-strict-n4",
			opts: JobOptions{Engine: EngineEnumStrict, N: 4},
			want: "eebe889990ffd93071430c5c809ae7d4955356ded9905cab10003e99ecc442a7",
		},
		{
			name: "symbolic-workers8",
			opts: JobOptions{Engine: EngineSymbolic, Workers: 8},
			want: "389a4c65cffcfe95fa8321f4b306b6a173a3420be981439ecad9094df60e76ef",
		},
	}
	_, canonical, err := ResolveSpec("illinois", "")
	if err != nil {
		t.Fatalf("ResolveSpec(illinois): %v", err)
	}
	for _, g := range golden {
		t.Run(g.name, func(t *testing.T) {
			opts := g.opts
			if err := opts.normalize(); err != nil {
				t.Fatalf("normalize: %v", err)
			}
			if got := CacheKey(canonical, opts); got != g.want {
				t.Errorf("CacheKey(illinois, %+v)\n  got  %s\n  want %s\nkey derivation changed without a keySchema bump", opts, got, g.want)
			}
		})
	}
	// The defaulted request ("engine omitted") must land on the same entry
	// as the explicit symbolic request — that equivalence is also contract.
	defaulted := JobOptions{}
	if err := defaulted.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if got := CacheKey(canonical, defaulted); got != golden[0].want {
		t.Errorf("defaulted options key %s diverged from explicit symbolic key %s", got, golden[0].want)
	}
}

// TestSimulateCacheKeyGolden pins one simulate-key literal under the same
// contract: the simulate namespace shares keySchema with verification, so a
// schema bump re-pins both tests together.
func TestSimulateCacheKeyGolden(t *testing.T) {
	if keySchema != 3 {
		t.Fatalf("keySchema = %d; this golden key pins schema 3 — re-derive and re-pin it for the new schema", keySchema)
	}
	opts := SimOptions{}
	if err := opts.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	identity := "workload:cctrace-workload-v1 kind=migratory seed=1993 caches=4 blocks=64 ops=100000 pwrite=0 hotfrac=0 burst=4 rpw=0 worklen=0"
	const want = "5f097d0c257939283e7a1dcd40b18ab768cf8fb7d676c1960f4652e64a57c104"
	if got := SimulateCacheKey(identity, []string{"MSI", "MESI"}, opts); got != want {
		t.Errorf("SimulateCacheKey\n  got  %s\n  want %s\nkey derivation changed without a keySchema bump", got, want)
	}
	// The defaulted options ("max_blocks omitted") must land on the same
	// entry as the canonicalized explicit form.
	explicit := SimOptions{MaxBlocks: 4096}
	if err := explicit.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if got := SimulateCacheKey(identity, []string{"MSI", "MESI"}, explicit); got != want {
		t.Errorf("explicit default max_blocks key %s diverged from defaulted key %s", got, want)
	}
}
