package serve

import "testing"

// TestCacheKeyGolden pins the exact SHA-256 content address of the
// canonical illinois request under the two common engine configurations.
// These literals are the cluster's coordination contract: every node must
// derive the identical key for the identical request, or peer cache fill
// silently degrades to always-miss. If this test fails you have changed
// the key derivation — the canonical ccpsl rendering, the options
// rendering, or their framing. That is sometimes the right thing to do,
// but it MUST come with a keySchema bump (see key.go), so stale disk-tier
// and peer entries from older builds can never be served as current
// results; then re-pin these literals.
func TestCacheKeyGolden(t *testing.T) {
	if keySchema != 2 {
		t.Fatalf("keySchema = %d; these golden keys pin schema 2 — re-derive and re-pin them for the new schema", keySchema)
	}
	golden := []struct {
		name string
		opts JobOptions
		want string
	}{
		{
			name: "symbolic-default",
			opts: JobOptions{Engine: EngineSymbolic},
			want: "6ec58d20f1f6c1efbb5a233f961240ceba323896bc3e3f649b159a5999eec3b6",
		},
		{
			name: "enum-strict-n4",
			opts: JobOptions{Engine: EngineEnumStrict, N: 4},
			want: "bd6811e8ceb42f1d0b475910a6043c8ef46563bb11223596ea4b86f7e6141c16",
		},
		{
			name: "symbolic-workers8",
			opts: JobOptions{Engine: EngineSymbolic, Workers: 8},
			want: "8393c490806f6c631f187ffea5de7458d917e596d312e6bde74f8a529c7a7795",
		},
	}
	_, canonical, err := ResolveSpec("illinois", "")
	if err != nil {
		t.Fatalf("ResolveSpec(illinois): %v", err)
	}
	for _, g := range golden {
		t.Run(g.name, func(t *testing.T) {
			opts := g.opts
			if err := opts.normalize(); err != nil {
				t.Fatalf("normalize: %v", err)
			}
			if got := CacheKey(canonical, opts); got != g.want {
				t.Errorf("CacheKey(illinois, %+v)\n  got  %s\n  want %s\nkey derivation changed without a keySchema bump", opts, got, g.want)
			}
		})
	}
	// The defaulted request ("engine omitted") must land on the same entry
	// as the explicit symbolic request — that equivalence is also contract.
	defaulted := JobOptions{}
	if err := defaulted.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if got := CacheKey(canonical, defaulted); got != golden[0].want {
		t.Errorf("defaulted options key %s diverged from explicit symbolic key %s", got, golden[0].want)
	}
}
