package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Per-tenant admission control. Every request carries a tenant identity
// (the X-CC-Tenant header; absent or unusable names map to "default"), and
// two independent mechanisms keep one tenant from monopolizing the node:
//
//   - a token bucket per tenant (Config.TenantRate / TenantBurst) bounds
//     sustained request rate, answering excess with 429 + Retry-After
//     sized to the bucket's actual refill deficit;
//   - a queue-share cap (Config.TenantQueueShare) bounds how many queued
//     jobs one tenant may hold, so a flooding tenant saturates its own
//     share while the remaining slots stay available to everyone else.
//
// Batch work is additionally shed before interactive work: batch
// submissions are refused once the queue passes Config.BatchShedFraction
// of its depth, reserving the rest of the queue for interactive verifies.

// DefaultTenant is the tenant identity of requests that carry none.
const DefaultTenant = "default"

// maxTenantLen bounds tenant names; they become metric-name suffixes, so
// unbounded client-chosen strings must not reach the registry.
const maxTenantLen = 32

// CanonicalTenant maps a raw X-CC-Tenant header value to the identity used
// for buckets, queue shares and metric names: empty becomes DefaultTenant,
// characters outside [A-Za-z0-9._-] become '_', and over-long names are
// truncated. Distinct raw names can therefore collide onto one identity;
// that only makes the colliding tenants share a budget, never exceed one.
func CanonicalTenant(raw string) string {
	if raw == "" {
		return DefaultTenant
	}
	if len(raw) > maxTenantLen {
		raw = raw[:maxTenantLen]
	}
	b := []byte(raw)
	for i, ch := range b {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z',
			ch >= '0' && ch <= '9', ch == '.', ch == '_', ch == '-':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// Typed admission rejections beyond ErrBusy/ErrDraining. All three arrive
// wrapped in a RetryAfterError carrying the client's retry hint.
var (
	// ErrRateLimited: the tenant's token bucket is empty.
	ErrRateLimited = errors.New("serve: tenant rate limit exceeded")
	// ErrTenantShare: the tenant already holds its full queue share.
	ErrTenantShare = errors.New("serve: tenant queue share exhausted")
	// ErrShedBatch: the queue is loaded enough that batch work is shed to
	// keep headroom for interactive verifies.
	ErrShedBatch = errors.New("serve: batch work shed under load")
)

// RetryAfterError wraps an admission rejection with the retry hint the
// HTTP layer renders as a Retry-After header. Unwrap preserves errors.Is
// against the sentinel rejections.
type RetryAfterError struct {
	Err   error
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// retryAfterSeconds renders an error's retry hint as whole seconds for the
// Retry-After header, at least 1; ok is false when err carries no hint.
func retryAfterSeconds(err error) (int, bool) {
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		return 0, false
	}
	secs := int(math.Ceil(ra.After.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs, true
}

// tokenBuckets is the per-tenant rate limiter: a classic token bucket per
// tenant identity, refilled continuously at rate tokens/second up to
// burst. The clock is injectable for tests.
type tokenBuckets struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newTokenBuckets builds the limiter; rate <= 0 means unlimited and
// returns nil (callers treat a nil limiter as always admitting).
func newTokenBuckets(rate float64, burst int) *tokenBuckets {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, 2*rate)
	}
	return &tokenBuckets{
		rate:    rate,
		burst:   b,
		now:     time.Now,
		buckets: map[string]*bucket{},
	}
}

// take attempts to spend cost tokens from tenant's bucket. On refusal it
// reports how long until the deficit refills — the Retry-After hint. A
// cost beyond the burst capacity can never succeed outright; it is
// admitted whenever the bucket is full, charging the bucket into debt, so
// one oversized batch is slowed rather than permanently refused.
func (tb *tokenBuckets) take(tenant string, cost float64) (bool, time.Duration) {
	if tb == nil {
		return true, 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	bk := tb.buckets[tenant]
	if bk == nil {
		bk = &bucket{tokens: tb.burst, last: now}
		tb.buckets[tenant] = bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens = math.Min(tb.burst, bk.tokens+dt*tb.rate)
	}
	bk.last = now
	switch {
	case bk.tokens >= cost:
		bk.tokens -= cost
		return true, 0
	case cost > tb.burst && bk.tokens >= tb.burst:
		// Full bucket, oversized request: admit into debt.
		bk.tokens -= cost
		return true, 0
	}
	need := cost
	if cost > tb.burst {
		need = tb.burst
	}
	wait := time.Duration((need - bk.tokens) / tb.rate * float64(time.Second))
	return false, wait
}
