package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/runctl"
)

// Config tunes a Server. The zero value is fully usable.
type Config struct {
	// Workers is the verification worker-pool width (<=0: GOMAXPROCS,
	// capped at 8 — verification is CPU-bound, so more workers than cores
	// only adds contention).
	Workers int
	// QueueDepth is the admission-control bound on queued jobs (<=0: 64).
	// A submit that finds the queue full is rejected with ErrBusy rather
	// than accepted into an unbounded backlog.
	QueueDepth int
	// JobTimeout is the per-job wall-clock deadline, and the cap on any
	// per-request deadline (<=0: 60s).
	JobTimeout time.Duration
	// CacheBytes is the memory cache budget (<=0: DefaultCacheBytes).
	CacheBytes int64
	// CacheDir enables the durable disk cache tier ("" disables it).
	CacheDir string
	// DiskCacheBytes bounds the disk tier by total bytes: startup runs an
	// LRU retention sweep (ckptio.SweepDir) evicting the oldest result
	// files until the tier fits. <=0 leaves the tier unbounded.
	DiskCacheBytes int64
	// KeepJobs bounds retained terminal job records for polling (<=0:
	// 1024); the oldest are forgotten first.
	KeepJobs int
	// Metrics is the observability registry backing the service counters,
	// the per-protocol verify_latency_seconds.* histograms and the engine
	// metrics of every verification run; /statsz and GET /v1/metrics read
	// from it. nil creates a private registry (the usual case); pass one to
	// aggregate several servers, or to scrape engine counters elsewhere.
	Metrics *obs.Registry
	// TenantRate is the per-tenant token-bucket refill rate in requests per
	// second (<=0 disables rate limiting). Each distinct X-CC-Tenant value
	// gets its own bucket; batch submissions charge one token per expanded
	// job.
	TenantRate float64
	// TenantBurst is the token-bucket capacity (<=0: max(1, 2*TenantRate)).
	TenantBurst int
	// TenantQueueShare is the fraction of QueueDepth one tenant may occupy
	// with queued jobs (<=0: 0.75; >=1 disables the cap). A tenant at its
	// share is rejected with ErrTenantShare while other tenants still
	// admit, so a flooding tenant cannot starve the rest of the queue.
	TenantQueueShare float64
	// BatchShedFraction is the queue occupancy above which batch-class
	// submissions are shed with ErrShedBatch, reserving the remaining
	// depth for interactive work (<=0: 0.5; >=1 disables shedding).
	BatchShedFraction float64
	// BatchParallel bounds how many jobs one POST /v1/verify/batch request
	// drives concurrently (<=0: 2*Workers, at least 4).
	BatchParallel int
	// BatchHedge fixes the straggler re-dispatch deadline for forwarded
	// batch jobs. <=0 (the default) adapts it from observed job latency.
	BatchHedge time.Duration
	// BatchRetries is how many times a failed batch job is retried with
	// jittered backoff before its verdict is reported failed (<0: 0; 0
	// defaults to 2).
	BatchRetries int
}

// withDefaults fills the zero-value fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.KeepJobs <= 0 {
		c.KeepJobs = 1024
	}
	if c.TenantQueueShare <= 0 {
		c.TenantQueueShare = 0.75
	}
	if c.BatchShedFraction <= 0 {
		c.BatchShedFraction = 0.5
	}
	if c.BatchParallel <= 0 {
		c.BatchParallel = 2 * c.Workers
		if c.BatchParallel < 4 {
			c.BatchParallel = 4
		}
	}
	if c.BatchRetries == 0 {
		c.BatchRetries = 2
	} else if c.BatchRetries < 0 {
		c.BatchRetries = 0
	}
	return c
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job kinds: what a worker runs when it dequeues the job.
const (
	jobVerify   = "verify"
	jobSimulate = "simulate"
)

// Job is one request's lifecycle record (verification or simulation).
// Identical concurrent requests share one Job (dedup): the first miss
// creates it, later arrivals coalesce onto it and poll the same ID.
type Job struct {
	ID       string
	CacheKey string

	kind  string
	proto *fsm.Protocol // verify jobs only
	opts  JobOptions    // verify jobs only
	// runFn, when set, is the job's entire execution (simulate jobs carry
	// their decoded request in this closure); nil jobs run the verification
	// path through Server.runJob.
	runFn   func(ctx context.Context) (payload []byte, cacheable bool, err error)
	timeout time.Duration
	noStore bool
	tenant  string // canonical tenant charged for the queue slot ("" for hits)

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	state   string
	cached  bool // result was served from the cache, no engine run
	errText string
	payload []byte // encoded Report, exactly as cached/served
	// graphs memoizes the rendered transition-graph exports by format
	// (see Server.JobGraph), so repeated graph requests are byte-identical
	// without re-expanding the state space.
	graphs map[string][]byte
}

// snapshot reads the job's terminal-relevant fields atomically.
func (j *Job) snapshot() (state string, cached bool, errText string, payload []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.cached, j.errText, j.payload
}

// setRunning flips a queued job to running; it reports false when the job
// was already canceled.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	return true
}

// Done exposes the completion channel (closed at any terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation of a queued or running job.
func (j *Job) Cancel() { j.cancel() }

// Submission dispositions.
const (
	DispositionHit       = "hit"       // served from cache, no job ran
	DispositionPeer      = "peer"      // filled from a cluster peer's cache, no job ran
	DispositionCoalesced = "coalesced" // attached to an in-flight identical job
	DispositionQueued    = "queued"    // admitted as a fresh job
	// DispositionForwarded: the local pool was saturated and a cluster
	// peer computed (or had cached) the result; no local job ran.
	DispositionForwarded = "forwarded"
)

// Typed submission rejections.
var (
	// ErrBusy: the admission queue is full; retry later.
	ErrBusy = errors.New("serve: queue full")
	// ErrDraining: the server is draining and accepts no new work.
	ErrDraining = errors.New("serve: draining")
)

// serverStats are the monotonic service counters. They live in the
// server's obs registry (so /statsz and GET /v1/metrics read one source of
// truth) but are resolved once at construction, keeping the hot paths free
// of registry map lookups.
type serverStats struct {
	requests         *obs.Counter // verify_requests_total
	cacheHits        *obs.Counter // cache_hits_total
	coalesced        *obs.Counter // coalesced_total
	admitted         *obs.Counter // admitted_total
	rejectedBusy     *obs.Counter // rejected_busy_total
	rejectedDraining *obs.Counter // rejected_draining_total
	engineRuns       *obs.Counter // engine_runs_total
	jobsDone         *obs.Counter // jobs_done_total
	jobsFailed       *obs.Counter // jobs_failed_total
	jobsCanceled     *obs.Counter // jobs_canceled_total
	auditRejected    *obs.Counter // audit_rejected_total
	panics           *obs.Counter // panics_total
	peerRejected     *obs.Counter // peer_fill_rejected_total
	peerServed       *obs.Counter // peer_cache_served_total

	forwarded         *obs.Counter // forwarded_total: saturated submits answered by a peer
	peerComputeServed *obs.Counter // peer_compute_served_total: forwarded jobs served here
	shedBatch         *obs.Counter // shed_batch_total
	rateLimited       *obs.Counter // rate_limited_total
	tenantRejected    *obs.Counter // tenant_rejected_total (queue-share refusals)
	batchRequests     *obs.Counter // batch_requests_total
	batchJobs         *obs.Counter // batch_jobs_total
	batchHedges       *obs.Counter // batch_hedges_total: straggler re-dispatches

	simRequests *obs.Counter // simulate_requests_total
	simRuns     *obs.Counter // simulate_runs_total: replay engine executions
	simHits     *obs.Counter // simulate_cache_hits_total
}

// newServerStats registers the service counters in reg.
func newServerStats(reg *obs.Registry) serverStats {
	return serverStats{
		requests:         reg.Counter("verify_requests_total"),
		cacheHits:        reg.Counter("cache_hits_total"),
		coalesced:        reg.Counter("coalesced_total"),
		admitted:         reg.Counter("admitted_total"),
		rejectedBusy:     reg.Counter("rejected_busy_total"),
		rejectedDraining: reg.Counter("rejected_draining_total"),
		engineRuns:       reg.Counter("engine_runs_total"),
		jobsDone:         reg.Counter("jobs_done_total"),
		jobsFailed:       reg.Counter("jobs_failed_total"),
		jobsCanceled:     reg.Counter("jobs_canceled_total"),
		auditRejected:    reg.Counter("audit_rejected_total"),
		panics:           reg.Counter("panics_total"),
		peerRejected:     reg.Counter("peer_fill_rejected_total"),
		peerServed:       reg.Counter("peer_cache_served_total"),

		forwarded:         reg.Counter("forwarded_total"),
		peerComputeServed: reg.Counter("peer_compute_served_total"),
		shedBatch:         reg.Counter("shed_batch_total"),
		rateLimited:       reg.Counter("rate_limited_total"),
		tenantRejected:    reg.Counter("tenant_rejected_total"),
		batchRequests:     reg.Counter("batch_requests_total"),
		batchJobs:         reg.Counter("batch_jobs_total"),
		batchHedges:       reg.Counter("batch_hedges_total"),

		simRequests: reg.Counter("simulate_requests_total"),
		simRuns:     reg.Counter("simulate_runs_total"),
		simHits:     reg.Counter("simulate_cache_hits_total"),
	}
}

// Server is the verification service: cache, dedup index, worker pool and
// job table. Create with New, start the pool with Start, serve HTTP via
// Handler, and stop with Drain.
type Server struct {
	cfg     Config
	cache   *Cache
	metrics *obs.Registry
	stats   serverStats
	start   time.Time

	// cluster, when set, is the peer cache-fill client consulted between
	// a local cache miss and a local engine run. Attached via SetCluster
	// before Start; nil keeps single-node behavior.
	cluster *cluster.Client

	// jobsCtx parents every job context; jobsCancel is the drain
	// deadline's force-stop.
	jobsCtx    context.Context
	jobsCancel context.CancelFunc

	// buckets is the per-tenant rate limiter (nil: unlimited); tenantCap
	// and batchWater are the queue-share and batch-shed thresholds derived
	// from Config at construction.
	buckets    *tokenBuckets
	tenantCap  int
	batchWater int

	mu           sync.Mutex
	draining     bool
	queue        chan *Job
	jobs         map[string]*Job // by ID, terminal records retained up to KeepJobs
	inflight     map[string]*Job // by cache key, queued or running only
	order        []string        // terminal job IDs, oldest first
	nextID       int64
	tenantQueued map[string]int // queued (not yet running) jobs per tenant

	wg sync.WaitGroup

	// runJob executes one verification; tests swap it to control timing
	// and count runs. The default is runVerification.
	runJob func(ctx context.Context, p *fsm.Protocol, key string, opts JobOptions) (*Report, bool, error)
}

// New builds a Server (cache preflighted, workers not yet started).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := NewCache(cfg.CacheBytes, cfg.CacheDir, cfg.DiskCacheBytes)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// The queue-share cap: at least one slot so a lone tenant is never
	// locked out, and the whole depth when sharing is disabled (>=1).
	tenantCap := int(math.Ceil(cfg.TenantQueueShare * float64(cfg.QueueDepth)))
	if tenantCap < 1 {
		tenantCap = 1
	}
	if cfg.TenantQueueShare >= 1 || tenantCap > cfg.QueueDepth {
		tenantCap = cfg.QueueDepth
	}
	batchWater := int(cfg.BatchShedFraction * float64(cfg.QueueDepth))
	if batchWater < 1 {
		batchWater = 1
	}
	if cfg.BatchShedFraction >= 1 || batchWater > cfg.QueueDepth {
		batchWater = cfg.QueueDepth
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:          cfg,
		cache:        cache,
		metrics:      reg,
		stats:        newServerStats(reg),
		start:        time.Now(),
		jobsCtx:      ctx,
		jobsCancel:   cancel,
		buckets:      newTokenBuckets(cfg.TenantRate, cfg.TenantBurst),
		tenantCap:    tenantCap,
		batchWater:   batchWater,
		queue:        make(chan *Job, cfg.QueueDepth),
		jobs:         map[string]*Job{},
		inflight:     map[string]*Job{},
		tenantQueued: map[string]int{},
		runJob: func(ctx context.Context, p *fsm.Protocol, key string, opts JobOptions) (*Report, bool, error) {
			return runVerification(ctx, p, key, opts, reg)
		},
	}, nil
}

// Metrics exposes the server's observability registry (the one /statsz and
// GET /v1/metrics read).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// SetCluster attaches the peer cache-fill client. Call it after New and
// before Start / serving traffic; the client should share this server's
// Metrics registry so the peer counters surface in GET /v1/metrics. The
// cluster layer is strictly an accelerator: every peer outcome other than
// a validated hit falls through to the local worker pool, so a node whose
// whole peer set is dead behaves exactly like a single-node server.
func (s *Server) SetCluster(c *cluster.Client) { s.cluster = c }

// Cluster returns the attached peer client (nil for a single node).
func (s *Server) Cluster() *cluster.Client { return s.cluster }

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Drain stops intake and waits for every queued and running job to finish.
// When ctx expires first, the remaining jobs are canceled and Drain still
// waits for the workers to observe that, then reports the forced stop.
// Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		s.jobsCancel()
		<-finished
		return fmt.Errorf("serve: drain deadline exceeded; in-flight jobs canceled")
	}
}

// Draining reports whether intake is closed.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SubmitOptions refine a submission beyond the job's engine options.
type SubmitOptions struct {
	// Timeout caps the job's wall clock (<=0 or beyond JobTimeout: the
	// server's JobTimeout).
	Timeout time.Duration
	// NoCache bypasses the cache read (the result is still stored).
	NoCache bool
	// Tenant is the raw tenant identity (canonicalized internally); it is
	// charged for rate and queue share.
	Tenant string
	// Batch marks batch-class work, which is shed before interactive work
	// under queue pressure.
	Batch bool
	// NoForward suppresses compute forwarding on saturation. Set on every
	// request that already carries the cluster forwarded marker, making a
	// second hop — and therefore a forwarding loop — structurally
	// impossible.
	NoForward bool
	// NoPeerFill suppresses the peer cache-fill probe on a local miss
	// (used where the caller has already made the routing decision).
	NoPeerFill bool
	// Internal marks cluster-internal and batch-expanded submissions that
	// were already charged against the tenant's token bucket upstream;
	// queue-share caps still apply.
	Internal bool
}

// Submit routes one verification request: cache hit, coalesce onto an
// identical in-flight job, or admit a fresh job — in that order. timeout
// <= 0 means the server's JobTimeout; larger values are capped by it.
// noCache bypasses the cache read (the result is still stored).
func (s *Server) Submit(p *fsm.Protocol, canonical string, opts JobOptions, timeout time.Duration, noCache bool) (*Job, string, error) {
	return s.SubmitEx(p, canonical, opts, SubmitOptions{Timeout: timeout, NoCache: noCache})
}

// SubmitEx is Submit with tenancy, work class and cluster routing control.
// The full admission order: tenant rate limit, cache, peer cache fill,
// drain check, coalesce, saturation (forward to a peer or reject busy),
// batch shed, tenant queue share, enqueue. Rejections after the rate gate
// arrive as RetryAfterError wrapping ErrBusy / ErrShedBatch /
// ErrTenantShare, so the HTTP layer can emit 429 + Retry-After uniformly.
func (s *Server) SubmitEx(p *fsm.Protocol, canonical string, opts JobOptions, so SubmitOptions) (*Job, string, error) {
	s.stats.requests.Add(1)
	key := CacheKey(canonical, opts)
	sub := submission{kind: jobVerify, key: key, proto: p, opts: opts}
	if !so.NoForward {
		sub.forward = func(timeout time.Duration, tenant string, batch bool) ([]byte, bool) {
			return s.forwardCompute(s.jobsCtx, key, canonical, opts, timeout, tenant, batch)
		}
	}
	return s.submit(sub, so)
}

// submission is one unit of work entering the generic admission pipeline
// (submit). The verify and simulate endpoints both reduce to it, so cache
// lookup, peer fill, coalescing, saturation handling and per-tenant
// admission behave identically for every job kind.
type submission struct {
	kind  string
	key   string
	proto *fsm.Protocol // verify only
	opts  JobOptions    // verify only
	runFn func(ctx context.Context) ([]byte, bool, error)
	// forward, when non-nil, may ship the job to a cluster peer once the
	// local queue is full; nil falls straight through to the busy rejection.
	forward func(timeout time.Duration, tenant string, batch bool) ([]byte, bool)
}

// submit is the kind-agnostic admission pipeline shared by every submission
// endpoint; see SubmitEx for the admission order.
func (s *Server) submit(sub submission, so SubmitOptions) (*Job, string, error) {
	tenant := CanonicalTenant(so.Tenant)
	timeout := so.Timeout
	if timeout <= 0 || timeout > s.cfg.JobTimeout {
		timeout = s.cfg.JobTimeout
	}
	key := sub.key

	if !so.Internal {
		if ok, after := s.buckets.take(tenant, 1); !ok {
			s.stats.rateLimited.Add(1)
			s.metrics.Counter("tenant_rejected_total." + tenant).Add(1)
			return nil, "", &RetryAfterError{Err: ErrRateLimited, After: after}
		}
	}
	if !so.NoCache {
		if payload, hit, _ := s.cache.Get(key); hit {
			s.stats.cacheHits.Add(1)
			if sub.kind == jobSimulate {
				s.stats.simHits.Add(1)
			}
			return s.recordHit(sub, payload, DispositionHit)
		}
		if !so.NoPeerFill {
			if payload, ok := s.peerFill(key); ok {
				s.cache.Put(key, payload)
				return s.recordHit(sub, payload, DispositionPeer)
			}
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.stats.rejectedDraining.Add(1)
		return nil, "", ErrDraining
	}
	if j, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.stats.coalesced.Add(1)
		return j, DispositionCoalesced, nil
	}
	// Saturation outranks the per-tenant checks: a full queue is a node
	// property, and the remedy (hand the job to a peer with headroom) is
	// the same whoever pushed it over.
	qlen := len(s.queue)
	if qlen >= s.cfg.QueueDepth {
		s.mu.Unlock()
		return s.saturated(sub, timeout, tenant, so)
	}
	if so.Batch && qlen >= s.batchWater {
		s.mu.Unlock()
		s.stats.shedBatch.Add(1)
		return nil, "", &RetryAfterError{Err: ErrShedBatch, After: time.Second}
	}
	if s.tenantQueued[tenant] >= s.tenantCap {
		s.mu.Unlock()
		s.stats.tenantRejected.Add(1)
		s.metrics.Counter("tenant_rejected_total." + tenant).Add(1)
		return nil, "", &RetryAfterError{Err: ErrTenantShare, After: time.Second}
	}
	jctx, cancel := context.WithCancel(s.jobsCtx)
	j := &Job{
		ID:       fmt.Sprintf("j-%06d", s.nextID+1),
		CacheKey: key,
		kind:     sub.kind,
		proto:    sub.proto,
		opts:     sub.opts,
		runFn:    sub.runFn,
		timeout:  timeout,
		noStore:  false,
		tenant:   tenant,
		ctx:      jctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    StateQueued,
	}
	select {
	case s.queue <- j:
	default:
		// The len check above raced a concurrent enqueue; same outcome as
		// finding the queue full outright.
		cancel()
		s.mu.Unlock()
		return s.saturated(sub, timeout, tenant, so)
	}
	s.nextID++
	s.jobs[j.ID] = j
	s.inflight[key] = j
	s.tenantQueued[tenant]++
	s.metrics.Gauge("tenant_queued." + tenant).Add(1)
	s.stats.admitted.Add(1)
	s.mu.Unlock()
	return j, DispositionQueued, nil
}

// saturated handles a submission that found the queue full: forward the
// job to a cluster peer with headroom when allowed, otherwise reject busy.
// Forwarding failing for any reason degrades to the rejection — the
// client retries exactly as on a single node.
func (s *Server) saturated(sub submission, timeout time.Duration, tenant string, so SubmitOptions) (*Job, string, error) {
	if sub.forward != nil && s.cluster != nil {
		if payload, ok := sub.forward(timeout, tenant, so.Batch); ok {
			s.stats.forwarded.Add(1)
			return s.recordHit(sub, payload, DispositionForwarded)
		}
	}
	s.stats.rejectedBusy.Add(1)
	return nil, "", &RetryAfterError{Err: ErrBusy, After: time.Second}
}

// forwardCompute ships one job to the least-loaded healthy owner of key
// via the cluster compute endpoint and validates the returned report the
// same way a peer cache fill is validated. A validated result is cached
// locally before being returned.
func (s *Server) forwardCompute(ctx context.Context, key, canonical string, opts JobOptions, timeout time.Duration, tenant string, batch bool) ([]byte, bool) {
	if s.cluster == nil {
		return nil, false
	}
	body, err := json.Marshal(computeRequest{
		Spec:       canonical,
		JobOptions: opts,
		TimeoutMS:  int(timeout / time.Millisecond),
		Tenant:     tenant,
		Batch:      batch,
	})
	if err != nil {
		return nil, false
	}
	payload, ok := s.cluster.Compute(ctx, key, body)
	if !ok {
		return nil, false
	}
	if !s.validReport(key, payload) {
		s.stats.peerRejected.Add(1)
		return nil, false
	}
	s.cache.Put(key, payload)
	return payload, true
}

// recordHit registers a pre-completed job record for a local or peer
// cache hit, so the response carries a pollable job ID like every other
// disposition. The submission's kind, protocol and options are retained so
// derived views of the result (the transition-graph endpoint) work on hit
// jobs exactly as on freshly computed ones.
func (s *Server) recordHit(sub submission, payload []byte, disposition string) (*Job, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := &Job{
		ID:       fmt.Sprintf("j-%06d", s.nextID),
		CacheKey: sub.key,
		kind:     sub.kind,
		proto:    sub.proto,
		opts:     sub.opts,
		done:     make(chan struct{}),
		state:    StateDone,
		cached:   true,
		payload:  payload,
		cancel:   func() {},
	}
	close(j.done)
	s.jobs[j.ID] = j
	s.retireLocked(j.ID)
	return j, disposition, nil
}

// peerFill consults the cluster for a missing key: ask the key's owners
// (hedged, breaker-gated, CRC-checked — see internal/cluster), then
// validate that the returned bytes really are a current-schema report for
// exactly this key. Any failure is a miss: the caller computes locally.
// An identical in-flight local job wins over a remote ask — coalescing is
// free, a fetch is not.
func (s *Server) peerFill(key string) ([]byte, bool) {
	if s.cluster == nil || s.hasInflight(key) {
		return nil, false
	}
	payload, ok := s.cluster.Fetch(s.jobsCtx, key)
	if !ok {
		return nil, false
	}
	if !s.validReport(key, payload) {
		s.stats.peerRejected.Add(1)
		return nil, false
	}
	return payload, true
}

// validReport is the belt over the CRC envelope's braces: the envelope
// proved the bytes arrived intact, this proves they are the right result —
// a confused or malicious peer answering with a different key's (valid)
// report must be rejected, never served or cached. Applied to every
// payload a peer hands back, whether cache fill or forwarded compute.
func (s *Server) validReport(key string, payload []byte) bool {
	var probe struct {
		Schema   int    `json:"schema"`
		CacheKey string `json:"cache_key"`
	}
	return json.Unmarshal(payload, &probe) == nil &&
		probe.Schema == ReportSchema && probe.CacheKey == key
}

// hasInflight reports whether an identical job is queued or running.
func (s *Server) hasInflight(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.inflight[key]
	return ok
}

// JobByID looks up a job record.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.execute(j)
	}
}

// execute runs one job to a terminal state with panic isolation.
func (s *Server) execute(j *Job) {
	s.releaseTenantSlot(j)
	if j.ctx.Err() != nil || !j.setRunning() {
		s.finish(j, StateCanceled, nil, "canceled before start")
		return
	}
	ctx, cancel := context.WithTimeout(j.ctx, j.timeout)
	defer cancel()
	if j.kind == jobSimulate {
		s.stats.simRuns.Add(1)
	} else {
		s.stats.engineRuns.Add(1)
	}
	began := time.Now()
	payload, cacheable, err := s.safeRun(ctx, j)
	s.metrics.Histogram(j.latencyMetric()).Observe(time.Since(began).Seconds())
	switch {
	case err == nil:
		if cacheable {
			s.cache.Put(j.CacheKey, payload)
		} else {
			s.stats.auditRejected.Add(1)
		}
		s.finish(j, StateDone, payload, "")
	case errors.Is(err, runctl.ErrCanceled), errors.Is(err, context.Canceled):
		s.finish(j, StateCanceled, nil, err.Error())
	default:
		s.finish(j, StateFailed, nil, err.Error())
	}
}

// latencyMetric names the job's latency histogram: per-protocol for
// verifications, one series for simulations (whose cost is set by the
// trace, not the protocol fan-out).
func (j *Job) latencyMetric() string {
	if j.kind == jobSimulate {
		return "simulate_latency_seconds"
	}
	return "verify_latency_seconds." + j.proto.Name
}

// safeRun executes the job's work with panic isolation — a panicking run
// fails its own job and leaves the worker, the pool and every other job
// intact — and returns the encoded report payload exactly as it will be
// cached and served.
func (s *Server) safeRun(ctx context.Context, j *Job) (payload []byte, cacheable bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.stats.panics.Add(1)
			payload, cacheable = nil, false
			err = fmt.Errorf("serve: %s run panicked: %v", j.kind, r)
		}
	}()
	if j.runFn != nil {
		return j.runFn(ctx)
	}
	rep, cacheable, err := s.runJob(ctx, j.proto, j.CacheKey, j.opts)
	if err != nil {
		return nil, false, err
	}
	payload, eerr := encodeReport(rep)
	if eerr != nil {
		return nil, false, eerr
	}
	return payload, cacheable, nil
}

// finish moves a job to its terminal state and retires it from the dedup
// index so later identical requests miss the inflight table (and hit the
// cache instead, when the job succeeded).
func (s *Server) finish(j *Job, state string, payload []byte, errText string) {
	j.mu.Lock()
	j.state = state
	j.payload = payload
	j.errText = errText
	j.mu.Unlock()
	j.cancel() // release the context resources

	s.mu.Lock()
	if s.inflight[j.CacheKey] == j {
		delete(s.inflight, j.CacheKey)
	}
	s.retireLocked(j.ID)
	s.mu.Unlock()

	switch state {
	case StateDone:
		s.stats.jobsDone.Add(1)
	case StateCanceled:
		s.stats.jobsCanceled.Add(1)
	default:
		s.stats.jobsFailed.Add(1)
	}
	close(j.done)
}

// releaseTenantSlot returns a job's queue-share slot to its tenant the
// moment a worker dequeues it: the share cap bounds queued work (the
// resource one tenant can hoard), not running work (bounded by Workers).
func (s *Server) releaseTenantSlot(j *Job) {
	if j.tenant == "" {
		return
	}
	s.mu.Lock()
	if n := s.tenantQueued[j.tenant]; n > 1 {
		s.tenantQueued[j.tenant] = n - 1
	} else if n == 1 {
		delete(s.tenantQueued, j.tenant)
	}
	s.mu.Unlock()
	s.metrics.Gauge("tenant_queued." + j.tenant).Add(-1)
}

// retireLocked appends a terminal job to the retention ring and forgets
// the oldest records beyond KeepJobs. Callers hold s.mu.
func (s *Server) retireLocked(id string) {
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.KeepJobs {
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

// StatszSchema versions the /statsz JSON layout (see docs/service.md for
// the compatibility contract).
const StatszSchema = 1

// Stats is the statsz document. Field names are snake_case and stable:
// existing names never change meaning; new fields may be added alongside a
// Schema bump only for incompatible reshapes.
type Stats struct {
	Schema           int     `json:"schema"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Draining         bool    `json:"draining"`
	Workers          int     `json:"workers"`
	QueueCap         int     `json:"queue_cap"`
	Queued           int     `json:"queued"`
	Inflight         int     `json:"inflight"`
	Requests         int64   `json:"requests"`
	CacheHits        int64   `json:"cache_hits"`
	Coalesced        int64   `json:"coalesced"`
	Admitted         int64   `json:"admitted"`
	RejectedBusy     int64   `json:"rejected_busy"`
	RejectedDraining int64   `json:"rejected_draining"`
	EngineRuns       int64   `json:"engine_runs"`
	JobsDone         int64   `json:"jobs_done"`
	JobsFailed       int64   `json:"jobs_failed"`
	JobsCanceled     int64   `json:"jobs_canceled"`
	AuditRejected    int64   `json:"audit_rejected"`
	Panics           int64   `json:"panics"`
	// PeerRejected counts peer-fill payloads that arrived intact (CRC ok)
	// but failed report validation (wrong key or schema) and were discarded.
	PeerRejected int64 `json:"peer_rejected"`
	// PeerServed counts cache entries this node handed to asking peers via
	// GET /v1/cache/{key}.
	PeerServed int64 `json:"peer_served"`
	// Forwarded counts saturated submissions answered by forwarding the
	// job to a cluster peer's compute endpoint.
	Forwarded int64 `json:"forwarded"`
	// PeerComputeServed counts forwarded jobs this node computed (or
	// served from cache) on behalf of saturated peers.
	PeerComputeServed int64 `json:"peer_compute_served"`
	// ShedBatch counts batch-class submissions shed to protect interactive
	// headroom.
	ShedBatch int64 `json:"shed_batch"`
	// RateLimited counts submissions refused by a tenant's token bucket.
	RateLimited int64 `json:"rate_limited"`
	// TenantRejected counts submissions refused by the per-tenant queue
	// share cap.
	TenantRejected int64 `json:"tenant_rejected"`
	// BatchRequests / BatchJobs count POST /v1/verify/batch requests and
	// the jobs they expanded to; BatchHedges counts straggler re-dispatches
	// of forwarded batch jobs.
	BatchRequests int64 `json:"batch_requests"`
	BatchJobs     int64 `json:"batch_jobs"`
	BatchHedges   int64 `json:"batch_hedges"`
	// SimulateRequests / SimulateRuns / SimulateCacheHits count POST
	// /v1/simulate submissions, the replay-engine executions they caused,
	// and the ones answered straight from the result cache.
	SimulateRequests  int64 `json:"simulate_requests"`
	SimulateRuns      int64 `json:"simulate_runs"`
	SimulateCacheHits int64 `json:"simulate_cache_hits"`
	// Cluster is the attached peer client's snapshot; absent on a
	// single-node server.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	CacheStats
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	queued := len(s.queue)
	inflight := len(s.inflight)
	draining := s.draining
	s.mu.Unlock()
	var cstats *cluster.Stats
	if s.cluster != nil {
		snap := s.cluster.Stats()
		cstats = &snap
	}
	return Stats{
		Schema:           StatszSchema,
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Draining:         draining,
		Workers:          s.cfg.Workers,
		QueueCap:         s.cfg.QueueDepth,
		Queued:           queued,
		Inflight:         inflight,
		Requests:         s.stats.requests.Value(),
		CacheHits:        s.stats.cacheHits.Value(),
		Coalesced:        s.stats.coalesced.Value(),
		Admitted:         s.stats.admitted.Value(),
		RejectedBusy:     s.stats.rejectedBusy.Value(),
		RejectedDraining: s.stats.rejectedDraining.Value(),
		EngineRuns:       s.stats.engineRuns.Value(),
		JobsDone:         s.stats.jobsDone.Value(),
		JobsFailed:       s.stats.jobsFailed.Value(),
		JobsCanceled:     s.stats.jobsCanceled.Value(),
		AuditRejected:    s.stats.auditRejected.Value(),
		Panics:           s.stats.panics.Value(),
		PeerRejected:     s.stats.peerRejected.Value(),
		PeerServed:       s.stats.peerServed.Value(),

		Forwarded:         s.stats.forwarded.Value(),
		PeerComputeServed: s.stats.peerComputeServed.Value(),
		ShedBatch:         s.stats.shedBatch.Value(),
		RateLimited:       s.stats.rateLimited.Value(),
		TenantRejected:    s.stats.tenantRejected.Value(),
		BatchRequests:     s.stats.batchRequests.Value(),
		BatchJobs:         s.stats.batchJobs.Value(),
		BatchHedges:       s.stats.batchHedges.Value(),
		SimulateRequests:  s.stats.simRequests.Value(),
		SimulateRuns:      s.stats.simRuns.Value(),
		SimulateCacheHits: s.stats.simHits.Value(),

		Cluster:    cstats,
		CacheStats: s.cache.Stats(),
	}
}
