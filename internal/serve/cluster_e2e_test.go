package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/runctl"
)

// chaosNode is one in-process ccserved node: a Server fronted by an
// httptest.Server whose middleware can wedge (accept-then-hang) or corrupt
// the cluster-internal /v1/cache responses mid-traffic. Killing a node is
// just closing its HTTP front end.
type chaosNode struct {
	srv *Server
	reg *obs.Registry
	hs  *httptest.Server
	cl  *cluster.Client

	wedged      atomic.Bool
	corrupt     atomic.Bool
	release     chan struct{} // closed to unwedge hanging handlers
	releaseOnce sync.Once
}

// handler wraps the server's mux with the chaos middleware. Chaos is
// scoped to the cluster-internal paths (peer cache fill and compute
// forwarding): a wedged or corrupting node keeps answering client traffic,
// which is exactly the nasty partial-failure shape the cluster layer must
// survive.
func (n *chaosNode) handler() http.Handler {
	inner := n.srv.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, cluster.CachePathPrefix) || r.URL.Path == cluster.ComputePath {
			if n.wedged.Load() {
				select {
				case <-r.Context().Done(): // caller's CallTimeout fired
				case <-n.release:
				}
				return
			}
			if n.corrupt.Load() {
				rec := httptest.NewRecorder()
				inner.ServeHTTP(rec, r)
				body := rec.Body.Bytes()
				if rec.Code == http.StatusOK && len(body) > 0 {
					body[len(body)/2] ^= 0xff // CRC must catch this
				}
				for k, vs := range rec.Header() {
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(rec.Code)
				w.Write(body)
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
}

// unwedge releases any handlers currently hanging in a wedge.
func (n *chaosNode) unwedge() {
	n.wedged.Store(false)
	n.releaseOnce.Do(func() { close(n.release) })
}

// kill closes the node's HTTP front end: in-flight peer calls fail,
// future ones get connection errors — a crashed process, as seen from the
// rest of the cluster.
func (n *chaosNode) kill() {
	n.unwedge()
	n.hs.CloseClientConnections()
	n.hs.Close()
}

// verify POSTs a waiting verify request to this node and returns the
// terminal JobStatus plus the submission disposition.
func (n *chaosNode) verify(t *testing.T, body string) (JobStatus, string) {
	t.Helper()
	resp, err := http.Post(n.hs.URL+"/v1/verify?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding verify response (http %d): %v", resp.StatusCode, err)
	}
	return st, resp.Header.Get("X-CC-Disposition")
}

func (n *chaosNode) counters() map[string]int64 { return n.reg.Snapshot().Counters }

// startChaosCluster brings up size nodes, each serve.Server sharing one
// obs registry with its cluster client (the production wiring: one
// /v1/metrics shows both sides), all peering with everyone. Timeouts are
// tight so failure detection, hedging and breaker trips happen in test
// time, not production time.
func startChaosCluster(t *testing.T, size int) []*chaosNode {
	t.Helper()
	return startChaosClusterCfg(t, size, func(int) Config { return Config{Workers: 2} })
}

// startChaosClusterCfg is startChaosCluster with per-node server Config
// (Metrics is always overridden with the node's shared registry).
func startChaosClusterCfg(t *testing.T, size int, cfgFor func(i int) Config) []*chaosNode {
	t.Helper()
	nodes := make([]*chaosNode, size)
	urls := make([]string, size)
	for i := range nodes {
		reg := obs.NewRegistry()
		cfg := cfgFor(i)
		cfg.Metrics = reg
		n := &chaosNode{
			srv:     newServer(t, cfg),
			reg:     reg,
			release: make(chan struct{}),
		}
		n.hs = httptest.NewServer(n.handler())
		nodes[i] = n
		urls[i] = n.hs.URL
	}
	for i, n := range nodes {
		cl, err := cluster.New(cluster.Config{
			Self:            n.hs.URL,
			Peers:           urls, // identical list everywhere; Self is filtered
			Metrics:         n.reg,
			FetchTimeout:    1500 * time.Millisecond,
			CallTimeout:     200 * time.Millisecond,
			HedgeDelay:      25 * time.Millisecond,
			BackoffBase:     5 * time.Millisecond,
			BackoffMax:      20 * time.Millisecond,
			BreakerCooldown: 250 * time.Millisecond,
			ProbeInterval:   100 * time.Millisecond,
			ComputeTimeout:  2 * time.Second,
			Seed:            int64(i + 1),
		})
		if err != nil {
			t.Fatalf("cluster.New(node %d): %v", i, err)
		}
		n.cl = cl
		n.srv.SetCluster(cl)
		n.srv.Start()
		cl.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.unwedge()
			n.cl.Close()
			n.hs.Close()
		}
	})
	return nodes
}

const illinoisReq = `{"protocol": "illinois"}`

// TestClusterPeerFillServesRemoteHit: a key verified on one node is
// answered by every other node from the peer cache — byte-identical, no
// second engine run — and the peer counters surface in GET /v1/metrics on
// both sides of the transfer.
func TestClusterPeerFillServesRemoteHit(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	a, b := nodes[0], nodes[1]

	first, disp := a.verify(t, illinoisReq)
	if first.State != StateDone || disp != DispositionQueued {
		t.Fatalf("seed verify on A: state=%s disposition=%s, want done/queued", first.State, disp)
	}

	filled, disp := b.verify(t, illinoisReq)
	if filled.State != StateDone || disp != DispositionPeer {
		t.Fatalf("verify on B: state=%s disposition=%s, want done/peer", filled.State, disp)
	}
	if string(filled.Report) != string(first.Report) {
		t.Errorf("peer-filled report differs from the origin's:\n%s\nvs\n%s", filled.Report, first.Report)
	}
	if got := b.counters()["engine_runs_total"]; got != 0 {
		t.Errorf("B ran the engine %d times for a peer-fillable key, want 0", got)
	}
	if got := b.counters()["peer_fill_hits_total"]; got < 1 {
		t.Errorf("B peer_fill_hits_total = %d, want >= 1", got)
	}
	if got := a.counters()["peer_cache_served_total"]; got < 1 {
		t.Errorf("A peer_cache_served_total = %d, want >= 1", got)
	}

	// The fill was cached locally: the next identical request is a plain
	// local hit, no cluster round trip.
	again, disp := b.verify(t, illinoisReq)
	if disp != DispositionHit || string(again.Report) != string(first.Report) {
		t.Errorf("repeat on B: disposition=%s, want hit with identical report", disp)
	}

	// The production scrape path agrees with the in-process registry.
	resp, err := http.Get(b.hs.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["peer_fill_hits_total"] < 1 {
		t.Errorf("GET /v1/metrics on B does not surface peer_fill_hits_total >= 1: %v", snap.Counters["peer_fill_hits_total"])
	}
}

// TestClusterDeadPeerDegradesToLocal: with every peer dead, a node
// answers correctly by local compute — a 1-node-alive cluster is exactly
// a single-node ccserved.
func TestClusterDeadPeerDegradesToLocal(t *testing.T) {
	nodes := startChaosCluster(t, 2)
	a, b := nodes[0], nodes[1]

	first, _ := a.verify(t, illinoisReq)
	if first.State != StateDone {
		t.Fatalf("seed verify on A: state=%s", first.State)
	}
	a.kill()

	began := time.Now()
	st, disp := b.verify(t, illinoisReq)
	elapsed := time.Since(began)
	if st.State != StateDone || disp != DispositionQueued {
		t.Fatalf("verify on B after A died: state=%s disposition=%s, want done/queued (local compute)", st.State, disp)
	}
	if string(st.Report) != string(first.Report) {
		t.Errorf("survivor's locally computed report differs from A's:\n%s\nvs\n%s", st.Report, first.Report)
	}
	// Bounded degradation: the dead peer costs at most the fetch budget
	// (1.5s here) on the very first miss, not an unbounded hang.
	if elapsed > 5*time.Second {
		t.Errorf("degraded verify took %v, want bounded", elapsed)
	}
	if got := b.counters()["peer_fill_hits_total"]; got != 0 {
		t.Errorf("B claims %d peer fills from a dead cluster", got)
	}
}

// TestClusterCorruptPeerNeverWrongAnswer: a peer serving bit-flipped
// cache responses is detected by the CRC envelope; the asking node treats
// it as a miss and computes the correct answer locally. Zero wrong
// verdicts, ever.
func TestClusterCorruptPeerNeverWrongAnswer(t *testing.T) {
	nodes := startChaosCluster(t, 2)
	a, b := nodes[0], nodes[1]

	first, _ := a.verify(t, illinoisReq)
	if first.State != StateDone {
		t.Fatalf("seed verify on A: state=%s", first.State)
	}
	a.corrupt.Store(true)

	st, disp := b.verify(t, illinoisReq)
	if st.State != StateDone || disp != DispositionQueued {
		t.Fatalf("verify on B against corrupt A: state=%s disposition=%s, want done/queued", st.State, disp)
	}
	if string(st.Report) != string(first.Report) {
		t.Errorf("report after corruption fallback differs from the truth:\n%s\nvs\n%s", st.Report, first.Report)
	}
	if got := b.counters()["peer_fill_corrupt_total"]; got < 1 {
		t.Errorf("B peer_fill_corrupt_total = %d, want >= 1 (corruption went undetected)", got)
	}
	if got := b.counters()["peer_fill_hits_total"]; got != 0 {
		t.Errorf("B counted %d peer fill hits from a corrupt-only peer", got)
	}
}

// TestClusterWedgedPeerHedged: the key's first-ranked owner accepts and
// hangs; the hedge deadline fires and the second owner answers. The
// client still gets a peer fill, quickly.
func TestClusterWedgedPeerHedged(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	b := nodes[1]

	// Seed the key on both of B's peers so whichever ranks second can
	// rescue the wedged first.
	first, _ := nodes[0].verify(t, illinoisReq)
	if first.State != StateDone {
		t.Fatalf("seed on node 0: state=%s", first.State)
	}
	if st, _ := nodes[2].verify(t, illinoisReq); st.State != StateDone {
		t.Fatalf("seed on node 2: state=%s", st.State)
	}

	// Wedge B's first-ranked owner for this key. Rank over the same URL
	// strings the clients were built from reproduces their owner order.
	key := first.CacheKey
	owners := cluster.Rank([]string{nodes[0].hs.URL, nodes[2].hs.URL}, key)
	for _, n := range []*chaosNode{nodes[0], nodes[2]} {
		if n.hs.URL == owners[0] {
			n.wedged.Store(true)
		}
	}

	began := time.Now()
	st, disp := b.verify(t, illinoisReq)
	elapsed := time.Since(began)
	if st.State != StateDone || disp != DispositionPeer {
		t.Fatalf("verify on B with wedged owner: state=%s disposition=%s, want done/peer", st.State, disp)
	}
	if string(st.Report) != string(first.Report) {
		t.Errorf("hedged report differs from the origin's")
	}
	if got := b.counters()["peer_fill_hedges_total"]; got < 1 {
		t.Errorf("B peer_fill_hedges_total = %d, want >= 1", got)
	}
	// The wedge costs at most the hedge delay plus the healthy peer's
	// round trip — far under the 200ms wedge-detector timeout.
	if elapsed > 2*time.Second {
		t.Errorf("hedged verify took %v, want well bounded", elapsed)
	}
}

// TestClusterChaosUnderTraffic is the full drill: three nodes under
// concurrent mixed traffic while one peer wedges and another is killed
// mid-stream. Every response must be a terminal done with a report
// byte-identical to every other response for the same key (Theorem 1
// determinism makes byte equality the strongest possible "no wrong
// verdicts" check), and peer fill must have actually happened before the
// kill.
func TestClusterChaosUnderTraffic(t *testing.T) {
	nodes := startChaosCluster(t, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]

	requests := []string{
		illinoisReq,
		`{"protocol": "mesi"}`,
		`{"protocol": "synapse"}`,
		`{"protocol": "berkeley"}`,
		`{"protocol": "msi", "engine": "enum-strict", "n": 3}`,
	}
	// Seed everything on A so the early phase is pure peer fill from A.
	for _, req := range requests {
		if st, _ := a.verify(t, req); st.State != StateDone {
			t.Fatalf("seeding %s on A: state=%s error=%s", req, st.State, st.Error)
		}
	}

	var mu sync.Mutex
	reports := map[string]string{} // cache key -> first report seen
	record := func(st JobStatus) {
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := reports[st.CacheKey]; ok {
			if prev != string(st.Report) {
				t.Errorf("divergent reports for key %s under chaos", st.CacheKey)
			}
			return
		}
		reports[st.CacheKey] = string(st.Report)
	}

	const perWorker = 12
	var filledBeforeKill int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Traffic targets the two survivors; A only serves peer fills
			// (and then dies).
			target := []*chaosNode{b, c}[w%2]
			for i := 0; i < perWorker; i++ {
				st, _ := target.verify(t, requests[(w+i)%len(requests)])
				if st.State != StateDone {
					t.Errorf("worker %d request %d on node: state=%s error=%s", w, i, st.State, st.Error)
					continue
				}
				record(st)
				if i == perWorker/3 && w == 0 {
					// Mid-traffic chaos, phase 1: C's cache endpoint wedges.
					atomic.StoreInt64(&filledBeforeKill,
						b.counters()["peer_fill_hits_total"]+c.counters()["peer_fill_hits_total"])
					c.wedged.Store(true)
				}
				if i == 2*perWorker/3 && w == 0 {
					// Phase 2: A dies outright.
					a.kill()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := atomic.LoadInt64(&filledBeforeKill); got < 1 {
		t.Errorf("no peer fill happened before the chaos phases (hits=%d); the drill never exercised the cluster path", got)
	}
	if len(reports) != len(requests) {
		t.Errorf("saw %d distinct keys, want %d", len(reports), len(requests))
	}
	// The survivors must still answer cleanly after the dust settles.
	c.unwedge()
	for _, n := range []*chaosNode{b, c} {
		st, _ := n.verify(t, illinoisReq)
		if st.State != StateDone {
			t.Errorf("post-chaos verify: state=%s error=%s", st.State, st.Error)
		}
		record(st)
	}
}

// submit POSTs a verify request to this node without waiting and returns
// the status, HTTP code, and the Retry-After and disposition headers.
func (n *chaosNode) submit(t *testing.T, body string) (JobStatus, int, http.Header) {
	t.Helper()
	resp, err := http.Post(n.hs.URL+"/v1/verify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response (http %d): %v", resp.StatusCode, err)
	}
	return st, resp.StatusCode, resp.Header
}

// waitRunning polls a job on this node until it is running.
func (n *chaosNode) waitRunning(t *testing.T, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.hs.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// TestClusterSaturationForwardsCompute is the tentpole's overload path: a
// node whose pool and queue are full hands the job to a peer with headroom
// and answers the peer's (validated) result, instead of rejecting. With no
// reachable peer the same submission degrades to the single-node 429 +
// Retry-After.
func TestClusterSaturationForwardsCompute(t *testing.T) {
	nodes := startChaosClusterCfg(t, 2, func(i int) Config {
		if i == 1 {
			return Config{Workers: 1, QueueDepth: 1}
		}
		return Config{Workers: 2}
	})
	a, b := nodes[0], nodes[1]

	// Wedge B's own pool (not its HTTP surface): its worker blocks until
	// the gate opens, so B is saturated but alive — the exact state where
	// forwarding must kick in.
	gate := make(chan struct{})
	defer close(gate)
	b.srv.runJob = func(ctx context.Context, _ *fsm.Protocol, key string, _ JobOptions) (*Report, bool, error) {
		select {
		case <-gate:
			return &Report{CacheKey: key, Verdict: VerdictClean}, true, nil
		case <-ctx.Done():
			return nil, false, runctl.FromContext(ctx)
		}
	}

	first, code, _ := b.submit(t, `{"protocol": "illinois", "engine": "enum-strict", "n": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("first: http %d", code)
	}
	b.waitRunning(t, first.ID)
	if _, code, _ := b.submit(t, `{"protocol": "illinois", "engine": "enum-strict", "n": 3}`); code != http.StatusAccepted {
		t.Fatalf("second: http %d", code)
	}

	// Queue full: the distinct third job is forwarded to A, which computes
	// it for real; B answers done immediately with A's validated report.
	st, code, hdr := b.submit(t, `{"protocol": "dragon"}`)
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("saturated submit: http %d state %s error %q, want forwarded completion", code, st.State, st.Error)
	}
	if disp := hdr.Get("X-CC-Disposition"); disp != DispositionForwarded {
		t.Fatalf("disposition = %q, want %q", disp, DispositionForwarded)
	}
	if len(st.Report) == 0 || !strings.Contains(string(st.Report), `"verdict":"clean"`) {
		t.Fatalf("forwarded report: %s", st.Report)
	}
	if got := b.counters()["forwarded_total"]; got != 1 {
		t.Errorf("B forwarded_total = %d, want 1", got)
	}
	if got := a.counters()["peer_compute_served_total"]; got != 1 {
		t.Errorf("A peer_compute_served_total = %d, want 1", got)
	}

	// A cached what it computed; its own answer is byte-identical.
	fromA, _ := a.verify(t, `{"protocol": "dragon"}`)
	if string(fromA.Report) != string(st.Report) {
		t.Error("A's own report differs from what it served the saturated peer")
	}

	// With the only peer dead, saturation degrades to the single-node
	// rejection: 429 carrying Retry-After.
	a.kill()
	_, code, hdr = b.submit(t, `{"protocol": "synapse"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit with dead peer: http %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("degraded rejection missing Retry-After")
	}
}

// TestClusterBatchChaos is the acceptance drill: a full protocols×mutants
// sweep (53 jobs) streamed from one node of a three-node cluster while one
// peer is killed and the other wedges mid-batch. Every job must finish with
// a verdict byte-identical to an isolated single-node baseline, the summary
// must report zero failures with honest dispositions, and the chaos must
// not leak goroutines.
func TestClusterBatchChaos(t *testing.T) {
	// Baseline: the same sweep on an isolated single node, keyed by content
	// address. Theorem-1 determinism makes byte equality the strongest
	// possible "no wrong verdicts" check.
	baseTC := startUnixServer(t, newServer(t, Config{Workers: 4}))
	baseLines, baseSummary, code := baseTC.batchStream(t, fullSweepBody, "")
	if code != http.StatusOK || baseSummary.Failed != 0 {
		t.Fatalf("baseline sweep: http %d summary %+v", code, baseSummary)
	}
	baseline := make(map[string]string, len(baseLines))
	for _, l := range baseLines {
		baseline[l.CacheKey] = string(l.Report)
	}

	nodes := startChaosClusterCfg(t, 3, func(int) Config {
		// A short fixed hedge keeps straggler re-dispatch (against the
		// wedged peer) inside test time.
		return Config{Workers: 2, BatchHedge: 250 * time.Millisecond}
	})
	a, b, c := nodes[0], nodes[1], nodes[2]
	g0 := runtime.NumGoroutine()

	resp, err := http.Post(b.hs.URL+"/v1/verify/batch", "application/json", strings.NewReader(fullSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: http %d", resp.StatusCode)
	}
	var (
		lines   []BatchLine
		summary BatchSummary
		total   = baseSummary.Total
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", raw, err)
		}
		if probe.Summary {
			if err := json.Unmarshal(raw, &summary); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var line BatchLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
		switch len(lines) {
		case total / 3:
			a.kill() // SIGKILL equivalent: the process vanishes mid-batch
		case 2 * total / 3:
			c.wedged.Store(true) // and the other peer stops answering
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading batch stream: %v", err)
	}

	if summary.Total != total || summary.Failed != 0 || summary.Done != total {
		t.Fatalf("summary = %+v, want %d done and zero failed despite the chaos", summary, total)
	}
	if total < 50 {
		t.Fatalf("sweep expanded to %d jobs, want >= 50", total)
	}
	valid := map[string]bool{BatchCached: true, BatchComputed: true, BatchForwarded: true, BatchRetried: true}
	for _, l := range lines {
		if l.State != StateDone {
			t.Errorf("job %d (%s): state %s error %q", l.Index, l.Protocol, l.State, l.Error)
		}
		if !valid[l.Disposition] {
			t.Errorf("job %d: disposition %q", l.Index, l.Disposition)
		}
		want, ok := baseline[l.CacheKey]
		if !ok {
			t.Errorf("job %d: key %s missing from the baseline sweep", l.Index, l.CacheKey)
			continue
		}
		if string(l.Report) != want {
			t.Errorf("job %d (%s): report differs from the single-node baseline", l.Index, l.Protocol)
		}
	}
	// The drill must actually have exercised the cluster path: before the
	// chaos phases both peers were healthy owners for ~2/3 of the keys.
	if got := b.counters()["compute_forward_hits_total"]; got < 1 {
		t.Errorf("compute_forward_hits_total = %d on the batch node, want >= 1", got)
	}

	// No goroutine leaks: once the wedge is released and the stream has
	// ended, everything the chaos spawned must drain.
	c.unwedge()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= g0+16 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: %d at start, %d after chaos drill", g0, runtime.NumGoroutine())
}
