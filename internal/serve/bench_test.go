package serve

import (
	"testing"
	"time"

	"repro/internal/protocols"
)

// The cache hit / cache miss pair quantifies what the content-addressed
// cache buys: a hit is a map lookup plus a payload copy, a miss is a full
// symbolic verification. ccbench publishes them as BENCH_PR4.json.

func benchServer(b *testing.B) (*Server, func()) {
	b.Helper()
	srv, err := New(Config{Workers: 2, QueueDepth: 64, KeepJobs: 16})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	return srv, func() {}
}

func benchSubmit(b *testing.B, srv *Server, noCache bool) {
	b.Helper()
	p, err := protocols.ByName("illinois")
	if err != nil {
		b.Fatal(err)
	}
	_, canonical, err := ResolveSpec("illinois", "")
	if err != nil {
		b.Fatal(err)
	}
	opts := JobOptions{Engine: EngineSymbolic}
	if err := opts.normalize(); err != nil {
		b.Fatal(err)
	}
	// Warm run so the hit benchmark measures hits from iteration one.
	j, _, err := srv.Submit(p, canonical, opts, 30*time.Second, false)
	if err != nil {
		b.Fatal(err)
	}
	<-j.Done()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, _, err := srv.Submit(p, canonical, opts, 30*time.Second, noCache)
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
	}
}

func BenchmarkServeCacheHit(b *testing.B) {
	srv, done := benchServer(b)
	defer done()
	benchSubmit(b, srv, false)
}

func BenchmarkServeCacheMiss(b *testing.B) {
	srv, done := benchServer(b)
	defer done()
	benchSubmit(b, srv, true)
}
