// Package serve implements ccserved, the long-running verification
// service: an HTTP/JSON front end over the repository's verification
// engines (internal/symbolic, internal/enum) with a content-addressed
// result cache, a bounded worker pool with admission control, and
// coalescing of concurrent identical requests.
//
// The design leans on Theorem 1 of Pong & Dubois: the reduction from a
// protocol specification to its essential states is deterministic, so a
// verification result is a pure function of the canonically formatted
// specification plus the engine options. That makes results perfectly
// cacheable by content — the cache key is the SHA-256 of the canonical
// ccpsl rendering of the protocol (ccpsl.Format, which normalizes away
// whitespace, rule order artifacts and syntactic sugar) concatenated with
// the engine options, so two textually different specifications of the
// same protocol share one cache entry.
//
// Trust mirrors internal/campaign: before a violation verdict is admitted
// to the cache, every witness is confirmed by the campaign package's
// engine-independent concrete replay. A verdict whose witnesses fail the
// audit is still served to the requester (flagged unconfirmed) but never
// cached, so a bookkeeping bug in an engine cannot poison the cache.
//
// Results are cached and served as the exact bytes of their first
// rendering, so a cache hit is byte-identical to the fresh response, and
// the optional disk tier reuses internal/ckptio's checksummed envelope and
// atomic writes — a torn or corrupted cache file is detected and treated
// as a miss, never served.
package serve
