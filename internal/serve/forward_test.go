package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/ccpsl"
	"repro/internal/ckptio"
	"repro/internal/cluster"
	"repro/internal/protocols"
)

// TestClusterComputeEndpoint pins the compute-forward receiving side: a
// request without the forwarded marker is refused outright (the structural
// loop-prevention guarantee — no marker, no hop), and a marked request runs
// the job and answers the report bytes in the CRC envelope.
func TestClusterComputeEndpoint(t *testing.T) {
	srv := newServer(t, Config{Workers: 2})
	tc := startUnixServer(t, srv)

	p, err := protocols.ByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	canonical := ccpsl.Format(p)
	body, err := json.Marshal(computeRequest{Spec: canonical})
	if err != nil {
		t.Fatal(err)
	}
	post := func(marker bool) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, "http://ccserved"+cluster.ComputePath, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if marker {
			req.Header.Set(cluster.ForwardedHeader, "1")
		}
		resp, err := tc.c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	// No marker: 400, and no job ran. A forwarded job re-forwarded to this
	// endpoint would arrive markerless only through a bug — refusing it is
	// what makes a forwarding loop structurally impossible.
	resp, _ := post(false)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("markerless compute: http %d, want 400", resp.StatusCode)
	}
	if s := tc.stats(t); s.EngineRuns != 0 {
		t.Fatalf("markerless compute ran the engine %d times", s.EngineRuns)
	}

	resp, data := post(true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded compute: http %d (%s)", resp.StatusCode, data)
	}
	payload, legacy, err := ckptio.Decode("compute-response", data)
	if err != nil || legacy {
		t.Fatalf("decoding compute envelope: legacy=%t err=%v", legacy, err)
	}
	opts := JobOptions{}
	if err := opts.normalize(); err != nil {
		t.Fatal(err)
	}
	key := CacheKey(canonical, opts)
	if !srv.validReport(key, payload) {
		t.Fatalf("compute answered an invalid report for its own key: %s", payload)
	}
	s := tc.stats(t)
	if s.PeerComputeServed != 1 {
		t.Errorf("peer_compute_served = %d, want 1", s.PeerComputeServed)
	}
	// The computed result was cached: an interactive request for the same
	// job is now a hit.
	st, code := tc.post(t, `{"protocol": "illinois"}`, true)
	if code != http.StatusOK || !st.Cached {
		t.Errorf("verify after forwarded compute: http %d cached %t, want a cache hit", code, st.Cached)
	}
}
