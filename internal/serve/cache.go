package serve

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/ckptio"
)

// DefaultCacheBytes is the memory tier's byte budget when Config leaves it
// zero: enough for thousands of reports without threatening the engines'
// own working memory.
const DefaultCacheBytes = 64 << 20

// Cache is the content-addressed result cache: an in-memory LRU bounded by
// a byte budget, with an optional disk tier underneath. Disk entries are
// written through internal/ckptio (checksummed envelope, atomic
// temp+fsync+rename), so a crash mid-write or a bit-flipped file reads
// back as a typed validation failure — treated as a miss — rather than as
// a corrupt result.
type Cache struct {
	maxBytes int64
	dir      string // "" disables the disk tier

	mu    sync.Mutex
	bytes int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	memHits, diskHits, misses, evictions, diskErrors int64
	diskSwept, diskSweptBytes                        int64 // startup retention pass
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key     string
	payload []byte
}

// diskSuffix is the disk tier's result-file suffix; the startup sweep
// only ever touches files carrying it.
const diskSuffix = ".ccres"

// NewCache builds a cache with the given memory budget (<=0:
// DefaultCacheBytes) and optional disk tier directory. The directory is
// created if missing and preflighted with ckptio.PreflightDir, so an
// unwritable cache directory fails service startup instead of every job's
// store-back. diskMaxBytes > 0 bounds the disk tier: a startup retention
// sweep (ckptio.SweepDir) evicts the oldest-written result files until the
// tier fits, so long-lived nodes reclaim space every restart instead of
// growing without limit.
func NewCache(maxBytes int64, dir string, diskMaxBytes int64) (*Cache, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	c := &Cache{
		maxBytes: maxBytes,
		dir:      dir,
		ll:       list.New(),
		items:    map[string]*list.Element{},
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := ckptio.PreflightDir(dir); err != nil {
			return nil, err
		}
		if diskMaxBytes > 0 {
			swept, err := ckptio.SweepDir(dir, diskSuffix, diskMaxBytes)
			if err != nil {
				return nil, err
			}
			c.diskSwept = int64(swept.Removed)
			c.diskSweptBytes = swept.FreedBytes
		}
	}
	return c, nil
}

// diskPath maps a key to its disk-tier file. Keys are lowercase hex, so
// they are safe path components as-is.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+diskSuffix)
}

// Get returns the cached payload for key. disk reports that the hit came
// from the disk tier (and was promoted into memory).
func (c *Cache) Get(key string) (payload []byte, hit, disk bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.memHits++
		payload = el.Value.(*cacheEntry).payload
		c.mu.Unlock()
		return payload, true, false
	}
	c.mu.Unlock()

	if c.dir != "" {
		store := &ckptio.Store{Path: c.diskPath(key), Keep: 1}
		data, _, err := store.Load()
		if err == nil {
			c.mu.Lock()
			c.diskHits++
			c.insertLocked(key, data)
			c.mu.Unlock()
			return data, true, true
		}
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false, false
}

// Put stores a payload under key in the memory tier and, when configured,
// durably in the disk tier. Disk failures do not fail the put — the memory
// tier already holds the result — but are counted for statsz.
func (c *Cache) Put(key string, payload []byte) {
	c.mu.Lock()
	c.insertLocked(key, payload)
	c.mu.Unlock()
	if c.dir != "" {
		store := &ckptio.Store{Path: c.diskPath(key), Keep: 1}
		if err := store.Save(payload); err != nil {
			c.mu.Lock()
			c.diskErrors++
			c.mu.Unlock()
		}
	}
}

// insertLocked adds or refreshes an entry and evicts from the LRU tail
// until the byte budget holds. The newest entry always stays resident even
// if it alone exceeds the budget, so one oversized report cannot wedge the
// cache into rejecting everything.
func (c *Cache) insertLocked(key string, payload []byte) {
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(payload)) - int64(len(ent.payload))
		ent.payload = payload
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, payload: payload})
		c.bytes += int64(len(payload))
	}
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.payload))
		c.evictions++
	}
}

// CacheStats is the cache's statsz slice.
type CacheStats struct {
	Entries    int   `json:"cache_entries"`
	Bytes      int64 `json:"cache_bytes"`
	MaxBytes   int64 `json:"cache_max_bytes"`
	MemHits    int64 `json:"cache_mem_hits"`
	DiskHits   int64 `json:"cache_disk_hits"`
	Misses     int64 `json:"cache_misses"`
	Evictions  int64 `json:"cache_evictions"`
	DiskErrors int64 `json:"cache_disk_errors"`
	DiskTier   bool  `json:"cache_disk_tier"`
	// DiskSwept / DiskSweptBytes report the startup retention pass over
	// the disk tier (0 when the tier is unbounded or disabled).
	DiskSwept      int64 `json:"cache_disk_swept"`
	DiskSweptBytes int64 `json:"cache_disk_swept_bytes"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:        c.ll.Len(),
		Bytes:          c.bytes,
		MaxBytes:       c.maxBytes,
		MemHits:        c.memHits,
		DiskHits:       c.diskHits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		DiskErrors:     c.diskErrors,
		DiskTier:       c.dir != "",
		DiskSwept:      c.diskSwept,
		DiskSweptBytes: c.diskSweptBytes,
	}
}
