package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ccpsl"
	"repro/internal/fsm"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/runctl"
)

// testClient drives a Server over a real unix-domain socket, the
// deployment shape the e2e acceptance criteria pin down.
type testClient struct {
	c *http.Client
}

// startUnixServer starts srv's worker pool and HTTP front end on a unix
// socket and returns a client bound to it. Cleanup stops the HTTP side;
// tests that care about drain call srv.Drain themselves.
func startUnixServer(t *testing.T, srv *Server) *testClient {
	t.Helper()
	dir, err := os.MkdirTemp("", "ccserve") // short path: sun_path is ~104 bytes
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	sock := filepath.Join(dir, "s.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return &testClient{c: &http.Client{
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", sock)
			},
		},
	}}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// post POSTs a verify request and decodes the JobStatus.
func (tc *testClient) post(t *testing.T, body string, wait bool) (JobStatus, int) {
	t.Helper()
	url := "http://ccserved/v1/verify"
	if wait {
		url += "?wait=1"
	}
	resp, err := tc.c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding response (http %d): %v", resp.StatusCode, err)
	}
	return st, resp.StatusCode
}

// get GETs a path and returns the body and status code.
func (tc *testClient) get(t *testing.T, path string) ([]byte, int) {
	t.Helper()
	resp, err := tc.c.Get("http://ccserved" + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp.StatusCode
}

func (tc *testClient) stats(t *testing.T) Stats {
	t.Helper()
	data, code := tc.get(t, "/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz: http %d", code)
	}
	var s Stats
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestE2EUnixSocket is the acceptance e2e: concurrent identical requests
// over a unix socket trigger exactly one engine run (dedup), repeats are
// served from the cache byte-identically, different requests miss, and a
// slow job can be canceled — all under -race via the CI test flags.
func TestE2EUnixSocket(t *testing.T) {
	srv := newServer(t, Config{Workers: 4, QueueDepth: 32})
	tc := startUnixServer(t, srv)

	// Phase 1: N concurrent identical requests → exactly one engine run.
	const clients = 12
	reports := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := tc.c.Post("http://ccserved/v1/verify?wait=1", "application/json",
				strings.NewReader(`{"protocol": "illinois"}`))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			if st.State != StateDone {
				t.Errorf("client %d: state %s (err %q)", i, st.State, st.Error)
				return
			}
			reports[i] = string(st.Report)
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if reports[i] != reports[0] {
			t.Fatalf("client %d report differs from client 0:\n%s\nvs\n%s", i, reports[i], reports[0])
		}
	}
	// Report bytes travel embedded in the JobStatus envelope, so what must
	// be byte-identical across responses is the full Report field; the
	// substring check just pins the verdict.
	if reports[0] == "" || !strings.Contains(reports[0], `"verdict":"clean"`) {
		t.Fatalf("unexpected report: %s", reports[0])
	}
	st := tc.stats(t)
	if st.EngineRuns != 1 {
		t.Errorf("engine runs = %d, want exactly 1 (dedup)", st.EngineRuns)
	}
	if st.CacheHits+st.Coalesced != clients-1 {
		t.Errorf("hits %d + coalesced %d, want %d", st.CacheHits, st.Coalesced, clients-1)
	}

	// Phase 2: repeat request → cache hit, byte-identical report.
	rep, code := tc.post(t, `{"protocol": "illinois"}`, true)
	if code != http.StatusOK || !rep.Cached || rep.State != StateDone {
		t.Fatalf("repeat: http %d cached %t state %s", code, rep.Cached, rep.State)
	}
	if string(rep.Report) != reports[0] {
		t.Errorf("cached report not byte-identical to fresh report")
	}

	// Phase 3: a different protocol and different options both miss.
	dragon, code := tc.post(t, `{"protocol": "dragon"}`, true)
	if code != http.StatusOK || dragon.Cached || dragon.State != StateDone {
		t.Fatalf("dragon: http %d cached %t state %s err %q", code, dragon.Cached, dragon.State, dragon.Error)
	}
	if dragon.CacheKey == rep.CacheKey {
		t.Error("dragon shares illinois cache key")
	}
	enumRep, code := tc.post(t, `{"protocol": "illinois", "engine": "enum-strict", "n": 3}`, true)
	if code != http.StatusOK || enumRep.Cached || enumRep.State != StateDone {
		t.Fatalf("enum: http %d cached %t state %s err %q", code, enumRep.Cached, enumRep.State, enumRep.Error)
	}
	if !strings.Contains(string(enumRep.Report), `"engine":"enum-strict"`) {
		t.Errorf("enum report: %s", enumRep.Report)
	}

	// Phase 4: inline spec spelled differently from the library protocol
	// still hits the library protocol's cache entry (content addressing
	// over the canonical form).
	p, err := protocols.ByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(ccpsl.Format(p))
	if err != nil {
		t.Fatal(err)
	}
	inline, code := tc.post(t, fmt.Sprintf(`{"spec": %s}`, spec), true)
	if code != http.StatusOK || !inline.Cached {
		t.Fatalf("inline spec: http %d cached %t", code, inline.Cached)
	}
	if string(inline.Report) != reports[0] {
		t.Error("inline spec report differs from protocol-name report")
	}

	// Phase 5: protocols listing and health.
	names, code := tc.get(t, "/v1/protocols")
	if code != http.StatusOK || !strings.Contains(string(names), "illinois") {
		t.Fatalf("protocols: http %d %s", code, names)
	}
	if body, code := tc.get(t, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: http %d %s", code, body)
	}
}

// blockingServer installs a runJob stub that blocks until its gate closes
// (or its context is canceled), for cancel/drain/admission tests.
func blockingServer(t *testing.T, cfg Config) (*Server, chan struct{}) {
	srv := newServer(t, cfg)
	gate := make(chan struct{})
	srv.runJob = func(ctx context.Context, _ *fsm.Protocol, key string, _ JobOptions) (*Report, bool, error) {
		select {
		case <-gate:
			return &Report{CacheKey: key, Verdict: VerdictClean}, true, nil
		case <-ctx.Done():
			return nil, false, runctl.FromContext(ctx)
		}
	}
	return srv, gate
}

func TestE2ECancel(t *testing.T) {
	srv, gate := blockingServer(t, Config{Workers: 1, QueueDepth: 8})
	defer close(gate)
	tc := startUnixServer(t, srv)

	st, code := tc.post(t, `{"protocol": "illinois"}`, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: http %d", code)
	}
	req, err := http.NewRequest(http.MethodDelete, "http://ccserved/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	data, code := tc.get(t, "/v1/jobs/"+st.ID+"?wait=1")
	if code != http.StatusOK {
		t.Fatalf("poll after cancel: http %d %s", code, data)
	}
	var final JobStatus
	if err := json.Unmarshal(data, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	if s := tc.stats(t); s.JobsCanceled != 1 {
		t.Errorf("jobs_canceled = %d", s.JobsCanceled)
	}
}

func TestE2EAdmissionControl(t *testing.T) {
	srv, gate := blockingServer(t, Config{Workers: 1, QueueDepth: 1})
	tc := startUnixServer(t, srv)

	// First job occupies the worker; distinct second job fills the queue.
	first, code := tc.post(t, `{"protocol": "illinois"}`, false)
	if code != http.StatusAccepted {
		t.Fatalf("first: http %d", code)
	}
	waitForState(t, tc, first.ID, StateRunning)
	if _, code := tc.post(t, `{"protocol": "dragon"}`, false); code != http.StatusAccepted {
		t.Fatalf("second: http %d", code)
	}
	// Queue full → 429 carrying Retry-After, so well-behaved clients back
	// off instead of hammering a saturated node.
	resp, err := tc.c.Post("http://ccserved/v1/verify", "application/json",
		strings.NewReader(`{"protocol": "firefly"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third: http %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 rejection missing the Retry-After header")
	}
	st, code := tc.post(t, `{"protocol": "dragon"}`, false)
	if code != http.StatusAccepted || !st.Coalesced {
		t.Fatalf("coalesce under pressure: http %d coalesced %t", code, st.Coalesced)
	}
	close(gate)
	waitForState(t, tc, first.ID, StateDone)
	if s := tc.stats(t); s.RejectedBusy != 1 {
		t.Errorf("rejected_busy = %d", s.RejectedBusy)
	}
}

func waitForState(t *testing.T, tc *testClient, id, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		data, _ := tc.get(t, "/v1/jobs/"+id)
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestE2EDrain pins the drain semantics: intake closes (healthz 503, new
// verifies rejected), in-flight jobs run to completion, Drain returns nil.
func TestE2EDrain(t *testing.T) {
	srv, gate := blockingServer(t, Config{Workers: 2, QueueDepth: 8})
	tc := startUnixServer(t, srv)

	st, code := tc.post(t, `{"protocol": "illinois"}`, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: http %d", code)
	}
	waitForState(t, tc, st.ID, StateRunning)

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitForDraining(t, tc)

	if _, code := tc.get(t, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: http %d, want 503", code)
	}
	if _, code := tc.post(t, `{"protocol": "dragon"}`, false); code != http.StatusServiceUnavailable {
		t.Errorf("verify while draining: http %d, want 503", code)
	}

	close(gate) // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitForState(t, tc, st.ID, StateDone)
}

// TestE2EForcedDrain: when the drain deadline expires, in-flight jobs are
// canceled and Drain reports the forced stop.
func TestE2EForcedDrain(t *testing.T) {
	srv, gate := blockingServer(t, Config{Workers: 1, QueueDepth: 8})
	defer close(gate)
	tc := startUnixServer(t, srv)

	st, code := tc.post(t, `{"protocol": "illinois"}`, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: http %d", code)
	}
	waitForState(t, tc, st.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("forced drain must report an error")
	}
	waitForState(t, tc, st.ID, StateCanceled)
}

func waitForDraining(t *testing.T, tc *testClient) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tc.stats(t).Draining {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("server never started draining")
}

// TestViolationVerdictAuditedAndCached: a fault-injected mutant yields a
// violations verdict whose witnesses the campaign auditor confirms; the
// confirmed verdict is cached and the repeat request hits byte-identically.
func TestViolationVerdictAuditedAndCached(t *testing.T) {
	p, err := protocols.ByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, Config{Workers: 2, QueueDepth: 8})
	tc := startUnixServer(t, srv)

	found := false
	for _, m := range mutate.Catalog(p) {
		if m.NeedsStrict {
			continue
		}
		// Mutant names carry a "!" marker the ccpsl grammar rejects.
		m.Protocol.Name = strings.ReplaceAll(m.Protocol.Name, "!", "-")
		spec, err := json.Marshal(ccpsl.Format(m.Protocol))
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf(`{"spec": %s, "engine": "enum-strict", "n": 3}`, spec)
		st, code := tc.post(t, body, true)
		if code != http.StatusOK || st.State != StateDone {
			// Some mutants break the spec outright; those fail, which is fine.
			continue
		}
		var rep Report
		if err := json.Unmarshal(st.Report, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Verdict != VerdictViolations {
			continue
		}
		found = true
		for _, v := range rep.Violations {
			if !v.Confirmed {
				t.Errorf("mutant %s!%s: witness unconfirmed: %s", m.Kind, m.Rule, v.AuditNote)
			}
		}
		// Confirmed violation verdicts are cacheable: repeat must hit.
		again, code := tc.post(t, body, true)
		if code != http.StatusOK || !again.Cached {
			t.Errorf("mutant %s!%s repeat: http %d cached %t", m.Kind, m.Rule, code, again.Cached)
		}
		if string(again.Report) != string(st.Report) {
			t.Errorf("mutant %s!%s: cached violation report not byte-identical", m.Kind, m.Rule)
		}
		break
	}
	if !found {
		t.Fatal("no mutant produced a violations verdict")
	}
	if s := tc.stats(t); s.AuditRejected != 0 {
		t.Errorf("audit_rejected = %d, want 0", s.AuditRejected)
	}
}

// TestAuditRejectedVerdictNotCached: a verdict flagged uncacheable (the
// audit-before-cache gate) is served but never stored, so the repeat
// request runs the engine again.
func TestAuditRejectedVerdictNotCached(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, QueueDepth: 8})
	runs := 0
	var mu sync.Mutex
	srv.runJob = func(_ context.Context, _ *fsm.Protocol, key string, _ JobOptions) (*Report, bool, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		return &Report{CacheKey: key, Verdict: VerdictViolations}, false, nil
	}
	tc := startUnixServer(t, srv)

	for i := 0; i < 2; i++ {
		st, code := tc.post(t, `{"protocol": "illinois"}`, true)
		if code != http.StatusOK || st.State != StateDone || st.Cached {
			t.Fatalf("round %d: http %d state %s cached %t", i, code, st.State, st.Cached)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 2 {
		t.Errorf("engine ran %d times, want 2 (uncacheable verdict)", runs)
	}
	if s := tc.stats(t); s.AuditRejected != 2 {
		t.Errorf("audit_rejected = %d", s.AuditRejected)
	}
}

// TestPanicIsolation: a panicking verification fails its own job only; the
// worker survives and serves the next request.
func TestPanicIsolation(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, QueueDepth: 8})
	first := true
	srv.runJob = func(_ context.Context, _ *fsm.Protocol, key string, _ JobOptions) (*Report, bool, error) {
		if first {
			first = false
			panic("engine bug")
		}
		return &Report{CacheKey: key, Verdict: VerdictClean}, true, nil
	}
	tc := startUnixServer(t, srv)

	st, _ := tc.post(t, `{"protocol": "illinois"}`, true)
	if st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("state %s err %q", st.State, st.Error)
	}
	st, _ = tc.post(t, `{"protocol": "illinois", "no_cache": true}`, true)
	if st.State != StateDone {
		t.Fatalf("after panic: state %s err %q", st.State, st.Error)
	}
	if s := tc.stats(t); s.Panics != 1 {
		t.Errorf("panics = %d", s.Panics)
	}
}

// TestBadRequests pins the 400 surface.
func TestBadRequests(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, QueueDepth: 2})
	tc := startUnixServer(t, srv)
	for _, body := range []string{
		`{`, // malformed JSON
		`{}`,
		`{"protocol": "illinois", "spec": "protocol X"}`,
		`{"protocol": "no-such-protocol"}`,
		`{"protocol": "illinois", "engine": "bogus"}`,
		`{"protocol": "illinois", "engine": "enum-strict", "n": 99}`,
	} {
		if _, code := tc.post(t, body, true); code != http.StatusBadRequest {
			t.Errorf("body %q: http %d, want 400", body, code)
		}
	}
	if _, code := tc.get(t, "/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job: http %d", code)
	}
}

// TestMetricsEndpoint: GET /v1/metrics serves the observability-registry
// snapshot — the service counters under their canonical *_total names, the
// per-protocol latency histogram, and the engine counters of the
// verification runs — while /statsz reads the same counters under its
// stable snake_case names plus the schema stamp.
func TestMetricsEndpoint(t *testing.T) {
	srv := newServer(t, Config{Workers: 2})
	tc := startUnixServer(t, srv)

	st, code := tc.post(t, `{"protocol": "illinois"}`, true)
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("verify: http %d state %s (%s)", code, st.State, st.Error)
	}
	if st, _ = tc.post(t, `{"protocol": "illinois"}`, true); !st.Cached {
		t.Fatal("second identical request was not served from the cache")
	}

	data, code := tc.get(t, "/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: http %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != obs.SnapshotSchema {
		t.Errorf("snapshot schema = %d, want %d", snap.Schema, obs.SnapshotSchema)
	}
	for name, want := range map[string]int64{
		"verify_requests_total": 2,
		"cache_hits_total":      1,
		"engine_runs_total":     1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Counters["expand_levels_total"] == 0 {
		t.Error("engine counters missing from the server registry (expand_levels_total = 0)")
	}
	if snap.Histograms["verify_latency_seconds.Illinois"].Count != 1 {
		t.Errorf("verify_latency_seconds.Illinois count = %d, want 1 (histograms: %v)",
			snap.Histograms["verify_latency_seconds.Illinois"].Count, snap.Histograms)
	}

	s := tc.stats(t)
	if s.Schema != StatszSchema {
		t.Errorf("statsz schema = %d, want %d", s.Schema, StatszSchema)
	}
	if s.Requests != 2 || s.CacheHits != 1 || s.EngineRuns != 1 {
		t.Errorf("statsz requests=%d cache_hits=%d engine_runs=%d, want 2/1/1",
			s.Requests, s.CacheHits, s.EngineRuns)
	}
}

// TestSharedMetricsRegistry: a caller-supplied Config.Metrics registry is
// used as-is, so several servers (or a host process) can aggregate.
func TestSharedMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newServer(t, Config{Metrics: reg})
	if srv.Metrics() != reg {
		t.Fatal("server did not adopt the supplied registry")
	}
	srv.stats.requests.Inc()
	if got := reg.Counter("verify_requests_total").Value(); got != 1 {
		t.Errorf("shared registry verify_requests_total = %d, want 1", got)
	}
}
