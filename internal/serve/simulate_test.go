package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/replay"
)

// postSimulate POSTs a simulate request and decodes the JobStatus, also
// returning the disposition header.
func (tc *testClient) postSimulate(t *testing.T, body string, wait bool) (JobStatus, int, string) {
	t.Helper()
	url := "http://ccserved/v1/simulate"
	if wait {
		url += "?wait=1"
	}
	resp, err := tc.c.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding response (http %d): %v", resp.StatusCode, err)
	}
	return st, resp.StatusCode, resp.Header.Get("X-CC-Disposition")
}

// TestSimulateE2E is the simulate acceptance path: a workload-spec
// submission runs the replay fan-out to completion, and the second
// identical submission is a cache hit answered with byte-identical report
// bytes and no second engine run.
func TestSimulateE2E(t *testing.T) {
	srv := newServer(t, Config{Workers: 2})
	tc := startUnixServer(t, srv)

	body := `{"workload":{"kind":"migratory","seed":1993,"caches":4,"blocks":16,"ops":20000},"capacity":8}`
	st, code, disp := tc.postSimulate(t, body, true)
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("first submit: http %d, state %q, err %q", code, st.State, st.Error)
	}
	if disp != DispositionQueued {
		t.Errorf("first disposition = %q, want %q", disp, DispositionQueued)
	}
	rep, err := replay.DecodeReport(st.Report)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != replay.ReportSchema || rep.CacheKey != st.CacheKey {
		t.Fatalf("report schema=%d cache_key=%q, want schema=%d cache_key=%q",
			rep.Schema, rep.CacheKey, replay.ReportSchema, st.CacheKey)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("got %d result rows, want the 4 default protocols", len(rep.Results))
	}
	if rep.Ops != 20000 {
		t.Errorf("report ops = %d, want 20000", rep.Ops)
	}
	for _, r := range rep.Results {
		if r.Violations != 0 || r.StaleReads != 0 || r.Truncated {
			t.Errorf("%s: violations=%d stale=%d truncated=%v, want a clean complete run",
				r.Protocol, r.Violations, r.StaleReads, r.Truncated)
		}
	}

	st2, code2, disp2 := tc.postSimulate(t, body, true)
	if code2 != http.StatusOK || st2.State != StateDone {
		t.Fatalf("second submit: http %d, state %q, err %q", code2, st2.State, st2.Error)
	}
	if disp2 != DispositionHit || !st2.Cached {
		t.Errorf("second disposition = %q cached=%v, want %q cached=true", disp2, st2.Cached, DispositionHit)
	}
	if !bytes.Equal(st.Report, st2.Report) {
		t.Error("cached report bytes differ from the fresh run")
	}

	stats := tc.stats(t)
	if stats.SimulateRequests != 2 || stats.SimulateRuns != 1 || stats.SimulateCacheHits != 1 {
		t.Errorf("simulate counters = requests %d, runs %d, hits %d; want 2, 1, 1",
			stats.SimulateRequests, stats.SimulateRuns, stats.SimulateCacheHits)
	}
}

// TestSimulateInlineTrace ships trace bytes instead of a spec: the report
// must match a local replay of the same trace, and the digest-based key
// means an identical inline submission also hits the cache.
func TestSimulateInlineTrace(t *testing.T) {
	srv := newServer(t, Config{Workers: 2})
	tc := startUnixServer(t, srv)

	var trace bytes.Buffer
	spec := replay.WorkloadSpec{Kind: replay.KindProducerConsumer, Seed: 7, Caches: 4, Blocks: 8, Ops: 5000}
	if _, err := replay.Materialize(&trace, spec); err != nil {
		t.Fatal(err)
	}
	req := SimulateRequest{Trace: trace.String(), Protocols: []string{"mesi", "dragon"}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	st, code, _ := tc.postSimulate(t, string(body), true)
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit: http %d, state %q, err %q", code, st.State, st.Error)
	}
	rep, err := replay.DecodeReport(st.Report)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || rep.Results[0].Protocol != "MESI" || rep.Results[1].Protocol != "Dragon" {
		t.Fatalf("rows = %+v, want MESI then Dragon (request order)", rep.Results)
	}
	if rep.Results[0].Ops != 5000 {
		t.Errorf("ops = %d, want 5000", rep.Results[0].Ops)
	}

	st2, _, disp := tc.postSimulate(t, string(body), true)
	if disp != DispositionHit || !bytes.Equal(st.Report, st2.Report) {
		t.Errorf("identical inline trace: disposition %q, bytes equal %v; want a byte-identical hit",
			disp, bytes.Equal(st.Report, st2.Report))
	}
}

// TestSimulateMaxOpsTruncationCaches pins the budget semantics: a run
// truncated by the request's own max_ops is complete by definition (the
// knob is part of the cache key), so the report flags the rows truncated
// and still enters the cache.
func TestSimulateMaxOpsTruncationCaches(t *testing.T) {
	srv := newServer(t, Config{Workers: 1})
	tc := startUnixServer(t, srv)

	body := `{"workload":{"kind":"uniform","seed":1,"caches":2,"blocks":8,"ops":10000},"protocols":["msi"],"max_ops":1000}`
	st, code, _ := tc.postSimulate(t, body, true)
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit: http %d, state %q, err %q", code, st.State, st.Error)
	}
	rep, err := replay.DecodeReport(st.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Results[0].Truncated || rep.Results[0].StopReason != "" || rep.Results[0].Ops != 1000 {
		t.Fatalf("row = %+v, want truncated at 1000 ops with no stop reason", rep.Results[0])
	}
	_, _, disp := tc.postSimulate(t, body, true)
	if disp != DispositionHit {
		t.Errorf("repeat disposition = %q, want %q (max_ops results are cacheable)", disp, DispositionHit)
	}
}

// TestSimulateValidation rejects malformed requests with 400, not 429/500.
func TestSimulateValidation(t *testing.T) {
	srv := newServer(t, Config{Workers: 1})
	tc := startUnixServer(t, srv)

	bad := []string{
		`{}`, // neither trace nor workload
		`{"trace":"# cctrace v1\n# caches: 2\n0 r 0\n","workload":{"kind":"uniform","seed":1,"caches":2,"blocks":2,"ops":10}}`,
		`{"workload":{"kind":"zipf","seed":1,"caches":2,"blocks":2,"ops":10}}`,
		`{"workload":{"kind":"uniform","seed":1,"caches":2,"blocks":2,"ops":10},"protocols":["mesi2000"]}`,
		`{"workload":{"kind":"uniform","seed":1,"caches":2,"blocks":2,"ops":10},"capacity":-1}`,
		`{"workload":{"kind":"uniform","seed":1,"caches":2,"blocks":2,"ops":6000000}}`, // over the ops cap
	}
	for i, body := range bad {
		resp, err := tc.c.Post("http://ccserved/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %d: http %d, want 400", i, resp.StatusCode)
		}
	}

	// A malformed trace fails the job at run time with a line-numbered
	// parse error, not a hung or panicking worker.
	st, code, _ := tc.postSimulate(t, `{"trace":"not a cctrace\n","protocols":["msi"]}`, true)
	if code != http.StatusOK || st.State != StateFailed || !strings.Contains(st.Error, "line 1") {
		t.Errorf("malformed trace: http %d, state %q, err %q; want a failed job naming line 1", code, st.State, st.Error)
	}
}
