package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// batchStream POSTs a batch request and decodes the NDJSON stream into its
// result lines and trailing summary.
func (tc *testClient) batchStream(t *testing.T, body, tenant string) ([]BatchLine, BatchSummary, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://ccserved/v1/verify/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, BatchSummary{}, resp.StatusCode
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch content type = %q, want application/x-ndjson", ct)
	}
	lines, summary := decodeBatchNDJSON(t, bufio.NewScanner(resp.Body))
	return lines, summary, resp.StatusCode
}

// decodeBatchNDJSON splits an NDJSON batch stream into result lines and the
// summary, failing on anything malformed.
func decodeBatchNDJSON(t *testing.T, sc *bufio.Scanner) ([]BatchLine, BatchSummary) {
	t.Helper()
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lines []BatchLine
	var summary BatchSummary
	sawSummary := false
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if sawSummary {
			t.Fatalf("line after the summary: %s", raw)
		}
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", raw, err)
		}
		if probe.Summary {
			if err := json.Unmarshal(raw, &summary); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var line BatchLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading batch stream: %v", err)
	}
	if !sawSummary {
		t.Fatal("batch stream ended without a summary line")
	}
	return lines, summary
}

// fullSweepBody is the paper's fault-injection experiment as one request:
// every library protocol plus its whole mutation catalog under enum n=3.
const fullSweepBody = `{"sweep": {"mutants": true, "engine": "enum-strict", "n": 3}, "timeout_ms": 30000}`

// TestE2EBatchSweepSingleNode: a server-side sweep expands protocols ×
// mutants, streams one line per job plus a summary, finishes every job, and
// a repeated batch is answered entirely from the cache.
func TestE2EBatchSweepSingleNode(t *testing.T) {
	srv := newServer(t, Config{Workers: 4})
	tc := startUnixServer(t, srv)

	body := `{"sweep": {"protocols": ["illinois", "msi"], "mutants": true, "engine": "enum-strict", "n": 3}}`
	lines, summary, code := tc.batchStream(t, body, "")
	if code != http.StatusOK {
		t.Fatalf("batch: http %d", code)
	}
	// illinois carries 4 mutants, msi 3: 2 base + 7 mutant jobs.
	const wantJobs = 9
	if summary.Total != wantJobs || summary.Done != wantJobs || summary.Failed != 0 {
		t.Fatalf("summary = %+v, want %d done, 0 failed", summary, wantJobs)
	}
	seen := map[int]bool{}
	for _, l := range lines {
		if l.State != StateDone || len(l.Report) == 0 {
			t.Errorf("job %d (%s): state %s error %q", l.Index, l.Protocol, l.State, l.Error)
		}
		if l.Disposition != BatchComputed && l.Disposition != BatchCached {
			t.Errorf("job %d: disposition %q on a single node", l.Index, l.Disposition)
		}
		if seen[l.Index] {
			t.Errorf("job %d reported twice", l.Index)
		}
		seen[l.Index] = true
	}
	if len(seen) != wantJobs {
		t.Fatalf("stream carried %d result lines, want %d", len(seen), wantJobs)
	}

	// Identical repeat: nothing recomputes.
	_, again, _ := tc.batchStream(t, body, "")
	if again.Failed != 0 || again.Dispositions[BatchCached] != wantJobs {
		t.Fatalf("repeat summary = %+v, want all %d cached", again, wantJobs)
	}
	s := tc.stats(t)
	if s.BatchRequests != 2 || s.BatchJobs != 2*wantJobs {
		t.Errorf("batch_requests=%d batch_jobs=%d, want 2 and %d", s.BatchRequests, s.BatchJobs, 2*wantJobs)
	}
}

// TestE2EBatchExplicitJobsAndBadRequests pins the explicit-jobs path and
// the 400 surface: one bad entry rejects the whole batch before any work.
func TestE2EBatchExplicitJobs(t *testing.T) {
	srv := newServer(t, Config{Workers: 2})
	tc := startUnixServer(t, srv)

	body := `{"jobs": [{"protocol": "illinois"}, {"protocol": "dragon", "engine": "enum-strict", "n": 3}]}`
	lines, summary, code := tc.batchStream(t, body, "")
	if code != http.StatusOK || summary.Total != 2 || summary.Failed != 0 {
		t.Fatalf("batch: http %d summary %+v", code, summary)
	}
	for _, l := range lines {
		if l.CacheKey == "" || l.State != StateDone {
			t.Errorf("job %d: key %q state %s", l.Index, l.CacheKey, l.State)
		}
	}

	for _, bad := range []string{
		`{}`, // expands to no jobs
		`{"jobs": [{"protocol": "illinois"}, {"protocol": "no-such"}]}`,
		`{"jobs": [{"protocol": "illinois", "engine": "enum-strict", "n": 99}]}`,
		`{"sweep": {"protocols": ["bogus"]}}`,
	} {
		if _, _, code := tc.batchStream(t, bad, ""); code != http.StatusBadRequest {
			t.Errorf("body %s: http %d, want 400", bad, code)
		}
	}
	if s := tc.stats(t); s.EngineRuns != 2 {
		t.Errorf("engine_runs = %d; rejected batches must not start work", s.EngineRuns)
	}
}

// TestE2EBatchRateLimitedUpfront: the tenant bucket is charged one token
// per expanded job before the stream starts, so a batch is not a rate-limit
// loophole — and the refusal carries Retry-After.
func TestE2EBatchRateLimitedUpfront(t *testing.T) {
	srv := newServer(t, Config{Workers: 2, TenantRate: 0.01, TenantBurst: 2})
	tc := startUnixServer(t, srv)

	body := `{"jobs": [{"protocol": "illinois"}, {"protocol": "dragon"}]}`
	if _, summary, code := tc.batchStream(t, body, "bulk"); code != http.StatusOK || summary.Failed != 0 {
		t.Fatalf("first batch within burst: http %d summary %+v", code, summary)
	}
	req, err := http.NewRequest(http.MethodPost, "http://ccserved/v1/verify/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, "bulk")
	resp, err := tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second batch: http %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("batch rate refusal missing Retry-After")
	}
	if s := tc.stats(t); s.EngineRuns != 2 {
		t.Errorf("engine_runs = %d; the refused batch must not have started", s.EngineRuns)
	}
}

// TestE2EBatchShedUnderQueuePressure: batch-class jobs are shed (and
// retried) once the queue passes the shed watermark, so interactive work
// keeps headroom; the batch still completes once pressure clears.
func TestE2EBatchShedUnderQueuePressure(t *testing.T) {
	// Watermark 0.5 * depth 4 = shed batch work at 2 queued jobs.
	srv, gate := blockingServer(t, Config{
		Workers: 1, QueueDepth: 4, BatchShedFraction: 0.5, BatchRetries: 8,
	})
	tc := startUnixServer(t, srv)

	// Fill to the watermark: one running, two queued.
	first, code, _ := tc.postTenant(t, enumReq("illinois", 2), "fg", false)
	if code != http.StatusAccepted {
		t.Fatalf("first: http %d", code)
	}
	waitForState(t, tc, first.ID, StateRunning)
	for n := 3; n <= 4; n++ {
		if _, code, _ := tc.postTenant(t, enumReq("illinois", n), "fg", false); code != http.StatusAccepted {
			t.Fatalf("filler n=%d: http %d", n, code)
		}
	}

	// The batch hits the shed watermark and backs off; open the gate
	// shortly after so its retries find a drained queue and finish.
	go func() {
		time.Sleep(150 * time.Millisecond)
		close(gate)
	}()
	_, summary, code := tc.batchStream(t, `{"jobs": [{"protocol": "dragon"}]}`, "bulk")
	if code != http.StatusOK || summary.Failed != 0 || summary.Done != 1 {
		t.Fatalf("batch under pressure: http %d summary %+v, want it to finish after backoff", code, summary)
	}
	s := tc.stats(t)
	if s.ShedBatch == 0 {
		t.Error("shed_batch = 0; the batch was never shed despite queue pressure")
	}
	if summary.Dispositions[BatchRetried] != 1 {
		t.Errorf("dispositions = %v, want the shed job reported retried", summary.Dispositions)
	}
}
