package serve

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ccpsl"
	"repro/internal/ckptio"
	"repro/internal/protocols"
)

func TestCacheKeyDiscriminates(t *testing.T) {
	base := JobOptions{Engine: EngineSymbolic}
	keys := map[string]string{
		"base":      CacheKey("spec", base),
		"spec":      CacheKey("spec2", base),
		"engine":    CacheKey("spec", JobOptions{Engine: EngineEnumStrict, N: 4}),
		"n":         CacheKey("spec", JobOptions{Engine: EngineEnumStrict, N: 5}),
		"strict":    CacheKey("spec", JobOptions{Engine: EngineSymbolic, Strict: true}),
		"maxstates": CacheKey("spec", JobOptions{Engine: EngineSymbolic, MaxStates: 7}),
		"workers":   CacheKey("spec", JobOptions{Engine: EngineSymbolic, Workers: 8}),
	}
	seen := map[string]string{}
	for dim, k := range keys {
		if len(k) != 64 {
			t.Errorf("%s: key %q is not hex sha256", dim, k)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("dimensions %s and %s collide on %s", dim, prev, k)
		}
		seen[k] = dim
	}
	if CacheKey("spec", base) != keys["base"] {
		t.Error("CacheKey is not deterministic")
	}
}

// TestResolveSpecCanonicalizes: the protocol name, the canonical rendering
// and a reformatted spelling of the same spec all map to one canonical
// form, hence one cache key.
func TestResolveSpecCanonicalizes(t *testing.T) {
	_, fromName, err := ResolveSpec("illinois", "")
	if err != nil {
		t.Fatal(err)
	}
	p2, fromSpec, err := ResolveSpec("", fromName)
	if err != nil {
		t.Fatal(err)
	}
	if fromSpec != fromName {
		t.Error("Parse∘Format is not idempotent: canonical forms differ")
	}
	// A cosmetically different spelling (extra blank lines between
	// declarations) still canonicalizes to the same form.
	variant := strings.Replace(fromName, "\n\n", "\n\n\n", 1)
	if variant == fromName {
		t.Fatal("test variant did not change the spec text")
	}
	_, fromVariant, err := ResolveSpec("", variant)
	if err != nil {
		t.Fatal(err)
	}
	if fromVariant != fromName {
		t.Error("respaced spec canonicalizes differently")
	}
	if ccpsl.Format(p2) != fromName {
		t.Error("Format of the reparsed protocol differs")
	}
}

func TestResolveSpecErrors(t *testing.T) {
	cases := []struct{ protocol, spec string }{
		{"", ""},
		{"illinois", "protocol X"},
		{"no-such-protocol", ""},
		{"", "not a spec"},
	}
	for _, c := range cases {
		if _, _, err := ResolveSpec(c.protocol, c.spec); err == nil {
			t.Errorf("ResolveSpec(%q, %q): want error", c.protocol, c.spec)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(100, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	pay := bytes.Repeat([]byte("x"), 40)
	c.Put("a", pay)
	c.Put("b", pay)
	// Touch "a" so "b" is the LRU victim when "c" overflows the budget.
	if _, hit, _ := c.Get("a"); !hit {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", pay)
	if _, hit, _ := c.Get("b"); hit {
		t.Error("b survived eviction despite being LRU")
	}
	for _, k := range []string{"a", "c"} {
		if _, hit, _ := c.Get(k); !hit {
			t.Errorf("%s evicted, want resident", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
	// An oversized payload still becomes resident (evicting everything
	// else) rather than wedging the cache.
	huge := bytes.Repeat([]byte("y"), 500)
	c.Put("huge", huge)
	if got, hit, _ := c.Get("huge"); !hit || !bytes.Equal(got, huge) {
		t.Error("oversized entry not resident")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries after oversized put = %d", st.Entries)
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"verdict":"clean"}` + "\n")
	c1.Put("k1", payload)

	// A fresh cache over the same directory — a service restart — serves
	// the entry from disk, byte-identically, and promotes it to memory.
	c2, err := NewCache(0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, hit, disk := c2.Get("k1")
	if !hit || !disk || !bytes.Equal(got, payload) {
		t.Fatalf("disk read: hit %t disk %t payload %q", hit, disk, got)
	}
	if got, hit, disk := c2.Get("k1"); !hit || disk || !bytes.Equal(got, payload) {
		t.Fatalf("promoted read: hit %t disk %t", hit, disk)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.MemHits != 1 || !st.DiskTier {
		t.Errorf("stats = %+v", st)
	}
}

// TestCacheDiskSweepBoundsTier: a restart with DiskCacheBytes set evicts
// the oldest result files until the tier fits, keeps the newest, and
// reports the sweep in the stats.
func TestCacheDiskSweepBoundsTier(t *testing.T) {
	dir := t.TempDir()
	writer, err := NewCache(0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	keys := []string{"aa", "bb", "cc", "dd"}
	var total int64
	for i, k := range keys {
		writer.Put(k, payload)
		// Pin write order into mtimes so the LRU sweep order is exact even
		// on coarse filesystem clocks.
		when := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(writer.diskPath(k), when, when); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(writer.diskPath(k))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}

	// Budget for half the entries: the two oldest must go.
	swept, err := NewCache(0, dir, total/2)
	if err != nil {
		t.Fatal(err)
	}
	st := swept.Stats()
	if st.DiskSwept != 2 || st.DiskSweptBytes == 0 {
		t.Fatalf("sweep stats = %+v, want 2 files swept", st)
	}
	for _, k := range keys[:2] {
		if _, hit, _ := swept.Get(k); hit {
			t.Errorf("evicted key %s still readable", k)
		}
	}
	for _, k := range keys[2:] {
		if _, hit, disk := swept.Get(k); !hit || !disk {
			t.Errorf("surviving key %s: hit %t disk %t", k, hit, disk)
		}
	}
}

// TestCacheDiskCorruptionIsMiss: a truncated or bit-flipped disk entry must
// read as a miss (ckptio's checksum envelope rejects it), never as a
// result.
func TestCacheDiskCorruptionIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k1", []byte("payload"))
	path := filepath.Join(dir, "k1.ccres")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := NewCache(0, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := fresh.Get("k1"); hit {
		t.Fatal("corrupted disk entry served as a hit")
	}
	if st := fresh.Stats(); st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestNewCachePreflight: an unusable disk-tier path fails cache (and hence
// service) construction with the ckptio typed error instead of failing
// every later store-back.
func TestNewCachePreflight(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCache(0, file, 0); err == nil {
		t.Fatal("NewCache over a plain file: want error")
	}
	// The preflight itself (reached when MkdirAll succeeds but the path is
	// unusable) reports the ckptio typed error.
	if err := ckptio.PreflightDir(file); !errors.Is(err, ckptio.ErrUnwritable) {
		t.Errorf("PreflightDir error %v is not ckptio.ErrUnwritable", err)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	var o JobOptions
	if err := o.normalize(); err != nil {
		t.Fatal(err)
	}
	if o.Engine != EngineSymbolic || o.N != 0 {
		t.Errorf("zero options normalized to %+v", o)
	}
	sym := JobOptions{Engine: EngineSymbolic, N: 5}
	if err := sym.normalize(); err != nil {
		t.Fatal(err)
	}
	if sym.N != 0 {
		t.Error("symbolic options keep n; cache entries would needlessly split")
	}
	en := JobOptions{Engine: EngineEnumCounting}
	if err := en.normalize(); err != nil {
		t.Fatal(err)
	}
	if en.N != 4 {
		t.Errorf("enum default n = %d, want 4", en.N)
	}
	for _, bad := range []JobOptions{
		{Engine: "bogus"},
		{Engine: EngineEnumStrict, N: 1},
		{Engine: EngineEnumStrict, N: maxEnumN + 1},
		{Engine: EngineSymbolic, MaxStates: -1},
	} {
		b := bad
		if err := b.normalize(); err == nil {
			t.Errorf("normalize(%+v): want error", bad)
		}
	}
}

// Keep the protocols import honest: the canonical test protocol must exist.
func TestLibraryHasIllinois(t *testing.T) {
	if _, err := protocols.ByName("illinois"); err != nil {
		t.Fatal(err)
	}
}
