package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/graph"
)

// getGraph fetches a job's graph and returns body, status and content type.
func (tc *testClient) getGraph(t *testing.T, id, format string) ([]byte, int, string) {
	t.Helper()
	url := "http://ccserved/v1/jobs/" + id + "/graph"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := tc.c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode, resp.Header.Get("Content-Type")
}

// TestE2EJobGraph exercises GET /v1/jobs/{id}/graph over both engines and
// both formats, pinning determinism: repeated fetches (served from the
// per-job memo) and a cache-hit resubmission (rebuilt from scratch) must
// return byte-identical documents.
func TestE2EJobGraph(t *testing.T) {
	srv := newServer(t, Config{Workers: 2, QueueDepth: 8})
	tc := startUnixServer(t, srv)

	// Symbolic job: the global diagram of Figure 4.
	st, _ := tc.post(t, `{"protocol":"illinois"}`, true)
	if st.State != StateDone {
		t.Fatalf("job state %s", st.State)
	}
	dot, code, ctype := tc.getGraph(t, st.ID, "")
	if code != 200 {
		t.Fatalf("graph status %d: %s", code, dot)
	}
	if !strings.Contains(ctype, "graphviz") {
		t.Errorf("content type %q", ctype)
	}
	if !strings.Contains(string(dot), `digraph "Illinois"`) {
		t.Errorf("unexpected DOT:\n%s", dot)
	}
	dot2, _, _ := tc.getGraph(t, st.ID, "dot")
	if !bytes.Equal(dot, dot2) {
		t.Error("repeated DOT fetches differ")
	}

	jsDoc, code, ctype := tc.getGraph(t, st.ID, "json")
	if code != 200 || ctype != "application/json" {
		t.Fatalf("json graph status %d type %q", code, ctype)
	}
	var e graph.ExportJSON
	if err := json.Unmarshal(jsDoc, &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "global" || e.Schema != graph.GraphSchema || len(e.Nodes) != 5 {
		t.Errorf("global export = kind %s schema %d %d nodes", e.Kind, e.Schema, len(e.Nodes))
	}

	// A cache-hit resubmission is a distinct Job with no memo; its graph
	// must still render to the same bytes.
	st2, _ := tc.post(t, `{"protocol":"illinois"}`, true)
	if st2.ID == st.ID || !st2.Cached {
		t.Fatalf("resubmission: id %s cached %v", st2.ID, st2.Cached)
	}
	dot3, code, _ := tc.getGraph(t, st2.ID, "dot")
	if code != 200 {
		t.Fatalf("cache-hit graph status %d: %s", code, dot3)
	}
	if !bytes.Equal(dot, dot3) {
		t.Error("cache-hit job renders a different graph")
	}

	// Enumeration job: the concrete reachability diagram.
	st3, _ := tc.post(t, `{"protocol":"msi","engine":"enum-counting","n":3}`, true)
	if st3.State != StateDone {
		t.Fatalf("enum job state %s", st3.State)
	}
	cj, code, _ := tc.getGraph(t, st3.ID, "json")
	if code != 200 {
		t.Fatalf("enum graph status %d: %s", code, cj)
	}
	var ce graph.ExportJSON
	if err := json.Unmarshal(cj, &ce); err != nil {
		t.Fatal(err)
	}
	if ce.Kind != "concrete" || ce.N != 3 || ce.Mode != "counting" || len(ce.Nodes) == 0 {
		t.Errorf("concrete export = %+v", ce)
	}
}

// TestE2EJobGraphErrors pins the endpoint's rejection contract: 404 for
// unknown jobs and graph-less kinds, 400 for unknown formats, 409 for jobs
// that have not completed.
func TestE2EJobGraphErrors(t *testing.T) {
	srv := newServer(t, Config{Workers: 1, QueueDepth: 8})
	tc := startUnixServer(t, srv)

	if _, code, _ := tc.getGraph(t, "nope", ""); code != 404 {
		t.Errorf("unknown job: %d, want 404", code)
	}

	st, _ := tc.post(t, `{"protocol":"msi"}`, true)
	if _, code, _ := tc.getGraph(t, st.ID, "svg"); code != 400 {
		t.Errorf("bad format: %d, want 400", code)
	}

	// Simulate jobs have no transition graph.
	sim, code, _ := tc.postSimulate(t, `{"workload":{"kind":"uniform","seed":1,"caches":2,"blocks":8,"ops":5000},"protocols":["msi"]}`, true)
	if code != 200 || sim.State != StateDone {
		t.Fatalf("simulate: %d %s", code, sim.State)
	}
	if _, code, _ := tc.getGraph(t, sim.ID, ""); code != 404 {
		t.Errorf("simulate job graph: %d, want 404", code)
	}

	// A job that has not finished is a 409.
	bsrv, gate := blockingServer(t, Config{Workers: 1, QueueDepth: 8})
	btc := startUnixServer(t, bsrv)
	defer close(gate)
	pend, _ := btc.post(t, `{"protocol":"illinois"}`, false)
	if _, code, _ := btc.getGraph(t, pend.ID, ""); code != 409 {
		t.Errorf("pending job graph: %d, want 409", code)
	}
}
