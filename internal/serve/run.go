package serve

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/symbolic"
)

// ReportSchema versions the result JSON; it rides inside every report so
// clients and the disk tier can detect incompatible producers.
const ReportSchema = 1

// Report is the verification result the service returns and caches. It is
// rendered exactly once per verdict (see encodeReport) and from then on
// moved around as opaque bytes, which is what makes cached and fresh
// responses byte-identical. It deliberately contains nothing
// run-dependent: no timestamps, durations or host data.
type Report struct {
	Schema         int    `json:"schema"`
	Protocol       string `json:"protocol"`
	Characteristic string `json:"characteristic"`
	Engine         string `json:"engine"`
	N              int    `json:"n,omitempty"`
	Strict         bool   `json:"strict,omitempty"`
	MaxStates      int    `json:"max_states,omitempty"`
	// Workers is the parallel engine width the result was produced with
	// (omitted when 1, the sequential default); the parallel engines are
	// bit-identical to the sequential ones, so it documents cost, not
	// verdict.
	Workers int `json:"workers,omitempty"`
	// CacheKey is the content address of this result.
	CacheKey string `json:"cache_key"`
	// Verdict is "clean" or "violations".
	Verdict string `json:"verdict"`
	// Essential counts essential states (symbolic) or distinct states
	// (enumeration); Visits is the engine's state-visit counter.
	Essential int `json:"essential"`
	Visits    int `json:"visits"`
	// EssentialStates lists the essential composite states in canonical
	// order (symbolic engine only).
	EssentialStates []string `json:"essential_states,omitempty"`
	// Violations lists erroneous states with audit outcomes.
	Violations []ViolationReport `json:"violations,omitempty"`
}

// ViolationReport is one erroneous state, its witness and the outcome of
// the engine-independent audit replay.
type ViolationReport struct {
	State   string   `json:"state"`
	Kinds   []string `json:"kinds"`
	Witness []string `json:"witness,omitempty"`
	// Confirmed reports that the campaign auditor reproduced the
	// violation by concrete replay. Unconfirmed violations are served but
	// never cached.
	Confirmed bool   `json:"confirmed"`
	AuditNote string `json:"audit_note,omitempty"`
}

// encodeReport is the single rendering point for Report bytes.
func encodeReport(rep *Report) ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// runVerification executes one verification job and renders its report.
// cacheable is false when the verdict must not enter the cache: the run
// was truncated, or a violation witness failed its independent audit.
// Errors follow the runctl taxonomy: a stopped run returns an error
// matching the runctl sentinels via errors.Is. Engine counters (level,
// visit and pruning totals) accumulate into reg, the server's registry.
func runVerification(ctx context.Context, p *fsm.Protocol, key string, opts JobOptions, reg *obs.Registry) (rep *Report, cacheable bool, err error) {
	switch opts.Engine {
	case EngineSymbolic:
		rep, err = runSymbolic(ctx, p, opts, reg)
	default:
		rep, err = runEnum(ctx, p, opts, reg)
	}
	if err != nil {
		return nil, false, err
	}
	rep.Schema = ReportSchema
	rep.Protocol = p.Name
	rep.Characteristic = p.Characteristic.String()
	rep.Engine = opts.Engine
	rep.N = opts.N
	rep.Strict = opts.Strict
	rep.MaxStates = opts.MaxStates
	if opts.Workers > 1 {
		rep.Workers = opts.Workers
	}
	rep.CacheKey = key
	rep.Verdict = VerdictClean
	cacheable = true
	for _, v := range rep.Violations {
		rep.Verdict = VerdictViolations
		if !v.Confirmed {
			cacheable = false
		}
	}
	return rep, cacheable, nil
}

// Report verdicts.
const (
	VerdictClean      = "clean"
	VerdictViolations = "violations"
)

// runSymbolic runs the Figure 3 symbolic expansion and audits any
// violations by concretization.
func runSymbolic(ctx context.Context, p *fsm.Protocol, opts JobOptions, reg *obs.Registry) (*Report, error) {
	eng, err := symbolic.NewEngine(p)
	if err != nil {
		return nil, err
	}
	sopts := symbolic.Options{
		RunConfig: runctl.RunConfig{Metrics: reg, Workers: opts.Workers},
		Strict:    opts.Strict,
		MaxVisits: opts.MaxStates,
	}
	var res *symbolic.Result
	if opts.Workers > 1 {
		res, err = eng.ExpandParallelContext(ctx, sopts, opts.Workers)
	} else {
		res, err = eng.ExpandContext(ctx, sopts)
	}
	if err != nil {
		return nil, err
	}
	if res.Truncated {
		return nil, fmt.Errorf("serve: symbolic expansion stopped: %w", res.StopReason)
	}
	if len(res.SpecErrors) > 0 {
		return nil, fmt.Errorf("serve: specification error: %v", res.SpecErrors[0])
	}
	rep := &Report{Essential: len(res.Essential), Visits: res.Visits}
	for _, s := range symbolic.SortStates(res.Essential) {
		rep.EssentialStates = append(rep.EssentialStates, s.StructureString(p))
	}
	for _, v := range res.Violations {
		vr := ViolationReport{State: v.State.StructureString(p)}
		for _, viol := range v.Violations {
			vr.Kinds = append(vr.Kinds, viol.Kind.String())
		}
		for _, st := range v.Path {
			vr.Witness = append(vr.Witness, st.Label.String()+" -> "+st.To.StructureString(p))
		}
		vr.Confirmed, vr.AuditNote = campaign.ConfirmSymbolicWitness(p, opts.Strict, v)
		rep.Violations = append(rep.Violations, vr)
	}
	return rep, nil
}

// runEnum runs an explicit-state enumeration (Figure 2 strict or
// Definition 5 counting) and audits any violations by step replay.
func runEnum(ctx context.Context, p *fsm.Protocol, opts JobOptions, reg *obs.Registry) (*Report, error) {
	eopts := enum.Options{
		RunConfig: runctl.RunConfig{Metrics: reg},
		Strict:    opts.Strict,
		MaxStates: opts.MaxStates,
	}
	eopts.RunConfig.Workers = opts.Workers
	var res *enum.Result
	var err error
	mode := enum.ModeStrict
	switch {
	case opts.Engine == EngineEnumCounting && opts.Workers > 1:
		mode = enum.ModeCounting
		res, err = enum.CountingParallelContext(ctx, p, opts.N, eopts, opts.Workers)
	case opts.Engine == EngineEnumCounting:
		mode = enum.ModeCounting
		res, err = enum.CountingContext(ctx, p, opts.N, eopts)
	case opts.Workers > 1:
		res, err = enum.ExhaustiveParallelContext(ctx, p, opts.N, eopts, opts.Workers)
	default:
		res, err = enum.ExhaustiveContext(ctx, p, opts.N, eopts)
	}
	if err != nil {
		return nil, err
	}
	if res.Truncated {
		return nil, fmt.Errorf("serve: enumeration stopped: %w", res.StopReason)
	}
	if len(res.SpecErrors) > 0 {
		return nil, fmt.Errorf("serve: specification error: %v", res.SpecErrors[0])
	}
	rep := &Report{Essential: res.Unique, Visits: res.Visits}
	for _, v := range res.Violations {
		vr := ViolationReport{State: v.Config.Key()}
		for _, viol := range v.Violations {
			vr.Kinds = append(vr.Kinds, viol.Kind.String())
		}
		for _, st := range v.Path {
			vr.Witness = append(vr.Witness, fmt.Sprintf("%d%s -> %s", st.Cache, st.Op, st.To))
		}
		vr.Confirmed, vr.AuditNote = campaign.ConfirmEnumWitness(p, opts.N, mode, opts.Strict, v)
		rep.Violations = append(rep.Violations, vr)
	}
	return rep, nil
}
