package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/enum"
	"repro/internal/graph"
	"repro/internal/runctl"
	"repro/internal/symbolic"
)

// Transition-graph export formats (GET /v1/jobs/{id}/graph?format=...).
const (
	GraphFormatDOT  = "dot"
	GraphFormatJSON = "json"
)

// Content types of the graph formats.
const (
	graphContentDOT  = "text/vnd.graphviz; charset=utf-8"
	graphContentJSON = "application/json"
)

// Typed graph-endpoint rejections.
var (
	// ErrNoGraph: the job kind has no transition graph (simulate jobs).
	ErrNoGraph = errors.New("serve: job has no transition graph")
	// ErrGraphNotReady: the job has not completed successfully yet.
	ErrGraphNotReady = errors.New("serve: job has not completed successfully")
	// ErrGraphFormat: unknown ?format value.
	ErrGraphFormat = errors.New("serve: unknown graph format")
)

// JobGraph renders the transition graph of a completed verification job:
// the global diagram over essential states (the paper's Figure 4) for
// symbolic jobs, the concrete reachability diagram over canonical
// configurations for enumeration jobs. The graph is computed on demand from
// the job's retained protocol and options — reports stay pure verdict
// documents — and memoized per format on the job, so repeated requests
// return byte-identical bytes without re-expansion. The returned string is
// the response content type.
func (s *Server) JobGraph(ctx context.Context, id, format string) ([]byte, string, error) {
	j, ok := s.JobByID(id)
	if !ok {
		return nil, "", fmt.Errorf("serve: unknown job %q", id)
	}
	switch format {
	case GraphFormatDOT, GraphFormatJSON:
	case "":
		format = GraphFormatDOT
	default:
		return nil, "", fmt.Errorf("%w %q (want %q or %q)", ErrGraphFormat, format, GraphFormatDOT, GraphFormatJSON)
	}
	ctype := graphContentDOT
	if format == GraphFormatJSON {
		ctype = graphContentJSON
	}
	if j.kind != jobVerify || j.proto == nil {
		return nil, "", ErrNoGraph
	}
	state, _, errText, _ := j.snapshot()
	if state != StateDone || errText != "" {
		return nil, "", fmt.Errorf("%w (state %s)", ErrGraphNotReady, state)
	}

	j.mu.Lock()
	cached := j.graphs[format]
	j.mu.Unlock()
	if cached != nil {
		return cached, ctype, nil
	}

	data, err := buildJobGraph(ctx, j, format)
	if err != nil {
		return nil, "", err
	}
	j.mu.Lock()
	if j.graphs == nil {
		j.graphs = make(map[string][]byte, 2)
	}
	j.graphs[format] = data
	j.mu.Unlock()
	return data, ctype, nil
}

// buildJobGraph recomputes the job's reachable structure and renders it.
// Verification already proved the expansion terminates within the job's
// bounds, so the rebuild is at most as expensive as the original run.
func buildJobGraph(ctx context.Context, j *Job, format string) ([]byte, error) {
	if j.opts.Engine == EngineSymbolic {
		eng, err := symbolic.NewEngine(j.proto)
		if err != nil {
			return nil, err
		}
		sopts := symbolic.Options{
			RunConfig: runctl.RunConfig{},
			Strict:    j.opts.Strict,
			MaxVisits: j.opts.MaxStates,
		}
		res, err := eng.ExpandContext(ctx, sopts)
		if err != nil {
			return nil, err
		}
		if res.Truncated {
			return nil, fmt.Errorf("serve: graph expansion stopped: %w", res.StopReason)
		}
		g, err := graph.BuildGlobal(eng, res.Essential)
		if err != nil {
			return nil, err
		}
		if format == GraphFormatJSON {
			return g.JSON()
		}
		return []byte(g.DOT()), nil
	}

	mode := enum.ModeStrict
	if j.opts.Engine == EngineEnumCounting {
		mode = enum.ModeCounting
	}
	g, err := graph.BuildConcrete(j.proto, j.opts.N, mode, j.opts.MaxStates)
	if err != nil {
		return nil, err
	}
	if g.Truncated {
		return nil, fmt.Errorf("serve: graph enumeration truncated at %d states", len(g.Nodes))
	}
	if format == GraphFormatJSON {
		return g.JSON()
	}
	return []byte(g.DOT()), nil
}

// handleJobGraph is GET /v1/jobs/{id}/graph: the transition-graph view of
// a completed verification job, as Graphviz DOT (the default) or JSON.
func (s *Server) handleJobGraph(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, ctype, err := s.JobGraph(r.Context(), id, r.URL.Query().Get("format"))
	if err != nil {
		switch {
		case errors.Is(err, ErrGraphFormat):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrNoGraph):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrGraphNotReady):
			writeError(w, http.StatusConflict, err)
		default:
			if _, ok := s.JobByID(id); !ok {
				writeError(w, http.StatusNotFound, err)
				return
			}
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(data)
}
