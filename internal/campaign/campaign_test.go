package campaign

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/enum"
	"repro/internal/mutate"
	"repro/internal/protocols"
)

// quietPolicy is the base test policy: no real sleeping, deterministic
// seed, durable checkpoints in a test-scoped directory.
func quietPolicy(t *testing.T) Policy {
	t.Helper()
	return Policy{
		Seed:            1993,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 8,
		MaxAttempts:     4,
		sleep:           func(time.Duration) {},
	}
}

func mustRun(t *testing.T, spec Spec) *Report {
	t.Helper()
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCleanSweep: correct protocols verify clean on every engine, without
// degradation, and the essential-state counts match direct engine runs.
func TestCleanSweep(t *testing.T) {
	spec := Spec{
		Policy: quietPolicy(t),
		Jobs: []JobSpec{
			{Protocol: "illinois", Engine: EngineEnumStrict, N: 3},
			{Protocol: "illinois", Engine: EngineEnumCounting, N: 3},
			{Protocol: "illinois", Engine: EngineSymbolic},
		},
	}
	rep := mustRun(t, spec)
	if rep.Total.Clean != 3 || rep.Total.Jobs != 3 {
		t.Fatalf("totals = %+v, want 3 clean of 3", rep.Total)
	}
	p, err := protocols.ByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	want, err := enum.Exhaustive(p, 3, enum.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range rep.Jobs {
		if j.Degraded {
			t.Errorf("%s: degraded on a clean run", j.Name)
		}
		if j.Name == "illinois-enum-strict-n3" && j.Essential != want.Unique {
			t.Errorf("essential = %d, direct run says %d", j.Essential, want.Unique)
		}
	}
}

// TestChaosCrashAndCorruptionPreservesVerdicts is the PR's acceptance
// criterion: a campaign whose newest checkpoint is corrupted (and another
// whose newest is deleted) right before a simulated crash must still
// produce exactly the per-job verdicts, essential-state counts and visit
// counts of an undisturbed campaign — recovered through the store's
// generation fallback plus resume.
func TestChaosCrashAndCorruptionPreservesVerdicts(t *testing.T) {
	jobs := []JobSpec{{Protocol: "illinois", Engine: EngineEnumStrict, N: 4}}

	clean := mustRun(t, Spec{Policy: quietPolicy(t), Jobs: jobs})

	for _, kind := range []string{"corrupt", "delete"} {
		pol := quietPolicy(t)
		pol.Chaos = []ChaosOp{
			{Kind: kind, Job: "illinois-enum-strict-n4", AtSave: 2},
			{Kind: "kill", Job: "illinois-enum-strict-n4", AtSave: 2},
		}
		chaos := mustRun(t, Spec{Policy: pol, Jobs: jobs})

		var cb, xb bytes.Buffer
		if err := clean.WriteVerdictLines(&cb); err != nil {
			t.Fatal(err)
		}
		if err := chaos.WriteVerdictLines(&xb); err != nil {
			t.Fatal(err)
		}
		if cb.String() != xb.String() {
			t.Errorf("%s: verdict lines diverged\nclean:\n%s\nchaos:\n%s", kind, cb.String(), xb.String())
		}
		j := chaos.Jobs[0]
		if j.Resumes == 0 {
			t.Errorf("%s: chaos run never resumed from a snapshot", kind)
		}
		if kind == "corrupt" && j.RecoveredCorruption == 0 {
			t.Errorf("corrupt: store never reported a fallback recovery")
		}
		if len(j.Attempts) < 2 {
			t.Errorf("%s: expected a failed first attempt, got %+v", kind, j.Attempts)
		}
		if got := j.Attempts[0].Class; got != ClassTransient {
			t.Errorf("%s: injected crash classified %q, want %q", kind, got, ClassTransient)
		}
	}
}

// TestQuarantine: a permanently wedged job is quarantined after
// MaxAttempts with jittered, monotonically growing backoff, and does not
// prevent the rest of the fleet from finishing.
func TestQuarantine(t *testing.T) {
	pol := quietPolicy(t)
	pol.MaxAttempts = 3
	// Save after every expanded state so the wedge fires on every
	// attempt — otherwise the per-attempt progress of CheckpointEvery
	// states would let a short job outrun the injected fault.
	pol.CheckpointEvery = 1
	pol.Chaos = []ChaosOp{{Kind: "wedge", Job: "illinois-enum-strict-n4", AtSave: 1}}
	rep := mustRun(t, Spec{Policy: pol, Jobs: []JobSpec{
		{Protocol: "illinois", Engine: EngineEnumStrict, N: 4},
		{Protocol: "illinois", Engine: EngineSymbolic},
	}})
	if rep.Total.Quarantined != 1 || rep.Total.Clean != 1 {
		t.Fatalf("totals = %+v, want 1 quarantined + 1 clean", rep.Total)
	}
	var q *JobResult
	for _, j := range rep.Jobs {
		if j.Verdict == VerdictQuarantined {
			q = j
		}
	}
	if len(q.Attempts) != pol.MaxAttempts {
		t.Fatalf("quarantined after %d attempts, want %d", len(q.Attempts), pol.MaxAttempts)
	}
	var prev time.Duration
	for i, a := range q.Attempts {
		if a.Class != ClassTransient {
			t.Errorf("attempt %d class %q, want transient", i+1, a.Class)
		}
		if a.Backoff <= 0 {
			t.Errorf("attempt %d has no backoff", i+1)
		}
		if a.Backoff <= prev {
			// ×2 growth with ±20% jitter is strictly increasing.
			t.Errorf("backoff not growing: %v then %v", prev, a.Backoff)
		}
		prev = a.Backoff
	}
}

// TestDegradationLadder: a job whose state budget is too small for its
// cache count walks down the ladder (resume is pointless for the
// deterministic state cap) until a cheaper configuration fits, and the
// result records the degradation.
func TestDegradationLadder(t *testing.T) {
	p, err := protocols.ByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	at3, err := enum.Exhaustive(p, 3, enum.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pol := quietPolicy(t)
	pol.MaxStates = at3.Unique + 1 // fits n=3, not n=4
	pol.MaxAttempts = 6
	rep := mustRun(t, Spec{Policy: pol, Jobs: []JobSpec{
		{Protocol: "illinois", Engine: EngineEnumStrict, N: 4},
	}})
	j := rep.Jobs[0]
	if j.Verdict != VerdictClean {
		t.Fatalf("verdict = %s (%s), want clean; attempts: %+v", j.Verdict, j.FailError, j.Attempts)
	}
	if !j.Degraded || j.FinalRung != "shrink-n3" {
		t.Fatalf("final rung = %q degraded=%v, want shrink-n3 after budget exhaustion", j.FinalRung, j.Degraded)
	}
	if j.Essential != at3.Unique {
		t.Fatalf("degraded essential = %d, want n=3 count %d", j.Essential, at3.Unique)
	}
	if got := j.Attempts[0].Class; got != ClassResource {
		t.Fatalf("budget exhaustion classified %q, want %q", got, ClassResource)
	}
}

// TestFaultInjectionWitnessesConfirmed is the fault-injection property:
// over the mutant catalogs of two protocols and both engine families,
// every mutant either verifies clean or yields a witness the independent
// concrete replay confirms. A plausible-but-wrong witness would fail the
// audit and this test.
func TestFaultInjectionWitnessesConfirmed(t *testing.T) {
	for _, proto := range []string{"illinois", "dragon"} {
		p, err := protocols.ByName(proto)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []JobSpec
		for _, m := range mutate.Catalog(p) {
			jobs = append(jobs,
				JobSpec{
					Name:  JobName(m.Protocol.Name+"!"+m.Rule, EngineEnumStrict, 3),
					Proto: m.Protocol, Engine: EngineEnumStrict, N: 3,
					Strict: m.NeedsStrict,
				},
				JobSpec{
					Name:  JobName(m.Protocol.Name+"!"+m.Rule, EngineSymbolic, 0),
					Proto: m.Protocol, Engine: EngineSymbolic,
					Strict: m.NeedsStrict,
				})
		}
		pol := quietPolicy(t)
		pol.CheckpointDir = "" // tiny runs; no snapshots needed
		rep := mustRun(t, Spec{Policy: pol, Jobs: jobs})
		for _, j := range rep.Jobs {
			switch j.Verdict {
			case VerdictClean:
			case VerdictViolations:
				for _, w := range j.Violations {
					if !w.Confirmed {
						t.Errorf("%s: unconfirmed witness for %v at %s: %s",
							j.Name, w.Kinds, w.State, w.AuditNote)
					}
				}
			default:
				t.Errorf("%s: verdict %s (%s), want clean or violations",
					j.Name, j.Verdict, j.FailError)
			}
		}
		if !rep.Audited() {
			t.Errorf("%s: campaign audit failed: %+v", proto, rep.Audit)
		}
	}
}

// TestReportDeterministic: two runs of the same spec produce
// byte-identical reports — the foundation of the CI chaos diff.
func TestReportDeterministic(t *testing.T) {
	mkSpec := func() Spec {
		pol := quietPolicy(t)
		pol.Chaos = []ChaosOp{{Kind: "kill", Job: "illinois-enum-strict-n4", AtSave: 2}}
		return Spec{Policy: pol, Jobs: []JobSpec{
			{Protocol: "illinois", Engine: EngineEnumStrict, N: 4},
			{Protocol: "firefly", Engine: EngineSymbolic},
		}}
	}
	a := mustRun(t, mkSpec())
	b := mustRun(t, mkSpec())
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("reports diverged:\n%s\n----\n%s", aj, bj)
	}
}

// TestCanceledCampaign: campaign-level cancellation yields canceled
// verdicts, not retries.
func TestCanceledCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pol := quietPolicy(t)
	rep, err := Run(ctx, Spec{Policy: pol, Jobs: []JobSpec{
		{Protocol: "illinois", Engine: EngineEnumStrict, N: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs[0].Verdict != VerdictCanceled {
		t.Fatalf("verdict = %s, want canceled", rep.Jobs[0].Verdict)
	}
	if len(rep.Jobs[0].Attempts) > 1 {
		t.Fatalf("canceled job kept retrying: %+v", rep.Jobs[0].Attempts)
	}
}

// TestUnknownProtocolFails: a bad registry name is a spec failure, not a
// retry loop.
func TestUnknownProtocolFails(t *testing.T) {
	rep := mustRun(t, Spec{Policy: quietPolicy(t), Jobs: []JobSpec{
		{Protocol: "no-such-protocol", Engine: EngineSymbolic},
	}})
	j := rep.Jobs[0]
	if j.Verdict != VerdictFailed || j.FailClass != ClassSpec {
		t.Fatalf("verdict = %s class %s, want failed/spec", j.Verdict, j.FailClass)
	}
}
