package campaign

import (
	"encoding/json"
	"fmt"
	"io"
)

// Totals aggregates job verdicts.
type Totals struct {
	Jobs        int `json:"jobs"`
	Clean       int `json:"clean"`
	Violations  int `json:"violations"`
	Quarantined int `json:"quarantined"`
	Canceled    int `json:"canceled"`
	Failed      int `json:"failed"`
	Degraded    int `json:"degraded"`
	Resumes     int `json:"resumes"`
	// RecoveredCorruption counts checkpoint loads that fell back past a
	// bad newest snapshot — the durability machinery earning its keep.
	RecoveredCorruption int `json:"recovered_corruption"`
}

// AuditTotals aggregates witness confirmation across the campaign.
type AuditTotals struct {
	Witnesses int `json:"witnesses"`
	Confirmed int `json:"confirmed"`
}

// Report is the deterministic outcome of a campaign: jobs sorted by name,
// no wall-clock fields, stable JSON encoding. Two runs of the same spec
// (same seed, same chaos plan) produce byte-identical reports — the
// property the crash-recovery CI job diffs on.
type Report struct {
	Seed  int64        `json:"seed"`
	Jobs  []*JobResult `json:"jobs"`
	Total Totals       `json:"totals"`
	Audit AuditTotals  `json:"audit"`
}

// tally recomputes the aggregate sections from the job list.
func (r *Report) tally() {
	r.Total = Totals{Jobs: len(r.Jobs)}
	r.Audit = AuditTotals{}
	for _, j := range r.Jobs {
		switch j.Verdict {
		case VerdictClean:
			r.Total.Clean++
		case VerdictViolations:
			r.Total.Violations++
		case VerdictQuarantined:
			r.Total.Quarantined++
		case VerdictCanceled:
			r.Total.Canceled++
		case VerdictFailed:
			r.Total.Failed++
		}
		if j.Degraded {
			r.Total.Degraded++
		}
		r.Total.Resumes += j.Resumes
		r.Total.RecoveredCorruption += j.RecoveredCorruption
		for _, w := range j.Violations {
			r.Audit.Witnesses++
			if w.Confirmed {
				r.Audit.Confirmed++
			}
		}
	}
}

// Audited reports whether every reported violation in the campaign
// carries a replay-confirmed witness.
func (r *Report) Audited() bool { return r.Audit.Confirmed == r.Audit.Witnesses }

// JSON renders the report as stable, indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", " ")
}

// WriteVerdictLines emits one grep- and diff-friendly line per job plus a
// campaign summary line. The lines carry only deterministic fields, so
// diffing the output of a clean run against a chaos run is exactly the
// "corruption changes nothing" acceptance check.
func (r *Report) WriteVerdictLines(w io.Writer) error {
	for _, j := range r.Jobs {
		confirmed := 0
		for _, wit := range j.Violations {
			if wit.Confirmed {
				confirmed++
			}
		}
		if _, err := fmt.Fprintf(w, "JOB %s VERDICT %s RUNG %s ESSENTIAL %d VISITS %d VIOLATIONS %d AUDIT %d/%d\n",
			j.Name, j.Verdict, j.FinalRung, j.Essential, j.Visits,
			len(j.Violations), confirmed, len(j.Violations)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "CAMPAIGN jobs=%d clean=%d violations=%d quarantined=%d canceled=%d failed=%d audit=%d/%d\n",
		r.Total.Jobs, r.Total.Clean, r.Total.Violations, r.Total.Quarantined,
		r.Total.Canceled, r.Total.Failed, r.Audit.Confirmed, r.Audit.Witnesses)
	return err
}
