// Witness auditing: every violation a campaign reports is re-validated
// independently of the engine that found it, by replaying its witness path
// through the concrete FSM semantics of internal/fsm and re-checking the
// Definition 3 data-consistency invariants with fsm.CheckConfig. The audit
// deliberately avoids the engines' fast paths (packed keys, containment
// pruning): it trusts only fsm.Step, enum.Canonicalize and the legacy
// string key rendering, so a bug in an engine's bookkeeping cannot confirm
// its own spurious witness.
package campaign

import (
	"fmt"

	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/symbolic"
)

// auditMaxN bounds the cache counts the symbolic auditor tries when
// concretizing a class-level witness path.
const auditMaxN = 5

// auditFrontierCap bounds the guided search frontier; a path whose
// concretizations exceed it fails the audit loudly rather than silently
// passing.
const auditFrontierCap = 20000

// ConfirmEnumWitness independently confirms one enumeration violation by
// replaying its witness path step-by-step through the concrete FSM
// semantics for n caches under the given equivalence mode (enum.ModeStrict
// or enum.ModeCounting). It is the exported form of the campaign runner's
// own audit, shared with the verification service so no violation verdict
// enters a result cache without an engine-independent confirmation. A false
// return carries a note explaining the failed confirmation.
func ConfirmEnumWitness(p *fsm.Protocol, n int, mode string, strict bool, v enum.Violation) (confirmed bool, note string) {
	return replayEnumWitness(p, n, mode, strict, v)
}

// ConfirmSymbolicWitness independently confirms one symbolic violation by
// concretizing its class-level witness path at small cache counts (n =
// 2..5). Exported for the same cache-trust reason as ConfirmEnumWitness.
func ConfirmSymbolicWitness(p *fsm.Protocol, strict bool, v symbolic.StateViolation) (confirmed bool, note string) {
	return concretizeSymbolicWitness(p, strict, v)
}

// auditEnum replays each enumeration witness step-by-step. A witness is
// confirmed when every hop's replayed canonical key equals the recorded
// one and the final configuration violates every invariant the engine
// claimed it does.
func (r *runner) auditEnum(rg rung, vs []enum.Violation) []WitnessRecord {
	if len(vs) > 0 && !r.policy.NoAudit {
		sp := r.orun.Phase(obs.PhaseAudit)
		defer sp.End()
	}
	mode := enumMode(rg.engine)
	out := make([]WitnessRecord, 0, len(vs))
	for _, v := range vs {
		w := WitnessRecord{
			State:   v.Config.Key(),
			Kinds:   kindNames(v.Violations),
			PathLen: len(v.Path),
		}
		if r.policy.NoAudit {
			out = append(out, w)
			continue
		}
		w.Confirmed, w.AuditNote = replayEnumWitness(r.proto, rg.n, mode, r.job.Strict, v)
		out = append(out, w)
	}
	return out
}

// replayEnumWitness is the concrete replay at the heart of the enum audit.
func replayEnumWitness(p *fsm.Protocol, n int, mode string, strict bool, v enum.Violation) (bool, string) {
	cfg := fsm.NewConfig(p, n)
	enum.Canonicalize(cfg)
	for i, step := range v.Path {
		if step.Cache < 0 || step.Cache >= n {
			return false, fmt.Sprintf("step %d: cache %d out of range for n=%d", i, step.Cache, n)
		}
		if _, err := fsm.Step(p, cfg, step.Cache, step.Op); err != nil {
			return false, fmt.Sprintf("step %d (%d%s): %v", i, step.Cache, step.Op, err)
		}
		enum.Canonicalize(cfg)
		key, err := enum.CanonicalKey(cfg, mode)
		if err != nil {
			return false, err.Error()
		}
		if key != step.To {
			return false, fmt.Sprintf("step %d (%d%s): replay reached %q, witness claims %q",
				i, step.Cache, step.Op, key, step.To)
		}
	}
	// The replayed endpoint must be the claimed erroneous state…
	key, err := enum.CanonicalKey(cfg, mode)
	if err != nil {
		return false, err.Error()
	}
	claimed := v.Config.Clone()
	enum.Canonicalize(claimed)
	claimedKey, err := enum.CanonicalKey(claimed, mode)
	if err != nil {
		return false, err.Error()
	}
	if key != claimedKey {
		return false, fmt.Sprintf("replay endpoint %q is not the claimed state %q", key, claimedKey)
	}
	// …and must independently violate every claimed invariant.
	got := map[fsm.ViolationKind]bool{}
	for _, viol := range fsm.CheckConfig(p, cfg, strict) {
		got[viol.Kind] = true
	}
	for _, claimedViol := range v.Violations {
		if !got[claimedViol.Kind] {
			return false, fmt.Sprintf("replayed state does not violate claimed invariant %s", claimedViol.Kind)
		}
	}
	return true, ""
}

// auditSymbolic confirms class-level symbolic witnesses by concretizing
// them: a guided breadth-limited search follows the path's labels through
// the concrete FSM at small cache counts until some concrete run reaches a
// state violating a claimed invariant.
func (r *runner) auditSymbolic(vs []symbolic.StateViolation) []WitnessRecord {
	if len(vs) > 0 && !r.policy.NoAudit {
		sp := r.orun.Phase(obs.PhaseAudit)
		defer sp.End()
	}
	out := make([]WitnessRecord, 0, len(vs))
	for _, v := range vs {
		w := WitnessRecord{
			State:   v.State.Key(),
			Kinds:   kindNames(v.Violations),
			PathLen: len(v.Path),
		}
		if r.policy.NoAudit {
			out = append(out, w)
			continue
		}
		w.Confirmed, w.AuditNote = concretizeSymbolicWitness(r.proto, r.job.Strict, v)
		out = append(out, w)
	}
	return out
}

// concretizeSymbolicWitness tries n = 2..auditMaxN cache counts; the
// witness is confirmed as soon as one concretization works.
func concretizeSymbolicWitness(p *fsm.Protocol, strict bool, v symbolic.StateViolation) (bool, string) {
	var lastNote string
	for n := 2; n <= auditMaxN; n++ {
		ok, note := concretizeAtN(p, n, strict, v)
		if ok {
			return true, ""
		}
		lastNote = fmt.Sprintf("n=%d: %s", n, note)
	}
	return false, lastNote
}

// concretizeAtN follows the witness path's labels concretely for n caches.
// Each label constrains which caches may act (those whose current state is
// the label's originating class); an N-step label applies the operation to
// the class's members one after another, keeping every intermediate prefix
// as a candidate, mirroring rule 4 of Section 3.2.3. The search succeeds
// when a configuration reached after the full path violates one of the
// claimed invariants.
func concretizeAtN(p *fsm.Protocol, n int, strict bool, v symbolic.StateViolation) (bool, string) {
	claimed := map[fsm.ViolationKind]bool{}
	for _, viol := range v.Violations {
		claimed[viol.Kind] = true
	}
	hasClaimed := func(c *fsm.Config) bool {
		for _, viol := range fsm.CheckConfig(p, c, strict) {
			if claimed[viol.Kind] {
				return true
			}
		}
		return false
	}

	init := fsm.NewConfig(p, n)
	enum.Canonicalize(init)
	frontier := []*fsm.Config{init}
	for i, step := range v.Path {
		var next []*fsm.Config
		seen := map[string]bool{}
		admit := func(c *fsm.Config) {
			k := c.Key()
			if !seen[k] && len(next) < auditFrontierCap {
				seen[k] = true
				next = append(next, c)
			}
		}
		// One symbolic transition can stand for several concrete
		// applications of its operation: the class repetition operators
		// absorb any number of caches (a single R_Invalid edge covers
		// configurations with 2, 3, … sharers), and the explicit N-step
		// labels of rule 4 (Section 3.2.3) make the multi-application
		// reading first-class. So each path step closes the frontier
		// under 1..n applications of the operation by distinct caches
		// of the originating class, admitting every intermediate. The
		// closure only guides the search — soundness comes from every
		// admitted configuration being built by real fsm.Step calls
		// from the initial state, plus the endpoint invariant check.
		for _, cur := range frontier {
			type branch struct {
				c     *fsm.Config
				acted uint32
			}
			work := []branch{{c: cur, acted: 0}}
			stepSeen := map[string]bool{}
			for len(work) > 0 {
				b := work[0]
				work = work[1:]
				for j := 0; j < n; j++ {
					if b.acted&(1<<j) != 0 {
						continue
					}
					if step.Label.Origin != "" && b.c.States[j] != step.Label.Origin {
						continue
					}
					c := b.c.Clone()
					if _, err := fsm.Step(p, c, j, step.Label.Op); err != nil {
						continue
					}
					enum.Canonicalize(c)
					acted := b.acted | 1<<j
					bk := fmt.Sprintf("%s#%d", c.Key(), acted)
					if stepSeen[bk] {
						continue
					}
					stepSeen[bk] = true
					admit(c)
					work = append(work, branch{c: c, acted: acted})
				}
			}
		}
		if len(next) == 0 {
			return false, fmt.Sprintf("path step %d (%s) has no concrete counterpart", i, step.Label)
		}
		frontier = next
	}
	for _, c := range frontier {
		if hasClaimed(c) {
			return true, ""
		}
	}
	// The path may end one derivation short of the erroneous state when
	// the violation is already visible along the way; accept a violating
	// intermediate only at the endpoint to stay conservative.
	return false, "no concretization of the path endpoint violates a claimed invariant"
}

// kindNames renders violation kinds deterministically.
func kindNames(vs []fsm.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Kind.String()
	}
	return out
}
