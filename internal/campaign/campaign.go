// Package campaign runs fleets of verification jobs to completion in the
// presence of failures. A campaign is a list of jobs (protocol × engine ×
// cache count) plus a policy; the runner gives every job a deadline,
// retries transient failures with exponential backoff, degrades jobs that
// exhaust their resources down a ladder of cheaper configurations
// (parallel → sequential enumeration → smaller n → symbolic expansion),
// and quarantines jobs that keep failing so one pathological input cannot
// stall the fleet.
//
// Durability comes from the checkpoint store of internal/ckptio: every job
// persists periodic snapshots through it, a retried attempt resumes from
// the newest valid snapshot, and the store's rotation + fallback mean a
// truncated or corrupted newest snapshot costs at most the work since the
// previous good one — never the verdict. Both engines guarantee that an
// interrupted-then-resumed run reaches counts identical to an
// uninterrupted one, so checkpoint corruption can change neither final
// verdicts nor essential-state counts.
//
// Trust comes from the witness auditor of audit.go: every violation a
// campaign reports is re-validated by replaying its witness path
// step-by-step through the concrete FSM semantics (internal/fsm) and
// re-checking the Definition 3 data-consistency invariants, independently
// of the engine that produced it.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/ckptio"
	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/runctl"
	"repro/internal/symbolic"
)

// Engine selects how a job verifies its protocol.
type Engine string

const (
	// EngineEnumStrict is explicit-state search under strict tuple
	// equivalence (the paper's Figure 2).
	EngineEnumStrict Engine = "enum-strict"
	// EngineEnumCounting is explicit-state search under counting
	// equivalence (Definition 5).
	EngineEnumCounting Engine = "enum-counting"
	// EngineSymbolic is the symbolic state expansion of Figure 3.
	EngineSymbolic Engine = "symbolic"
)

// enumMode maps an enumeration engine to its equivalence mode string.
func enumMode(e Engine) string {
	if e == EngineEnumCounting {
		return enum.ModeCounting
	}
	return enum.ModeStrict
}

// JobSpec describes one verification job.
type JobSpec struct {
	// Name identifies the job in reports, chaos plans and checkpoint
	// files; JobName builds the canonical "<proto>-<engine>-n<k>" form.
	Name string
	// Protocol is a registry name (internal/protocols). Ignored when
	// Proto is set.
	Protocol string
	// Proto overrides the registry lookup with an explicit protocol —
	// how fault-injection campaigns run internal/mutate mutants.
	Proto *fsm.Protocol
	// Engine selects the verification method.
	Engine Engine
	// N is the cache count for enumeration engines (ignored by symbolic).
	N int
	// Strict enables the CleanShared extension check.
	Strict bool
}

// JobName renders the canonical job name.
func JobName(protocol string, e Engine, n int) string {
	if e == EngineSymbolic {
		return fmt.Sprintf("%s-%s", protocol, e)
	}
	return fmt.Sprintf("%s-%s-n%d", protocol, e, n)
}

// ChaosOp injects one fault into a running campaign, for tests and the CI
// chaos job. Ops fire inside a job's periodic checkpoint hook, after the
// durable save of the AtSave-th snapshot of the attempt, so an injected
// crash always has a snapshot to come back to — exactly the situation a
// real crash-under-checkpointing produces.
type ChaosOp struct {
	// Kind is one of "corrupt" (truncate and scribble over the newest
	// snapshot generation on disk), "delete" (remove it), "kill" (abort
	// the first attempt with a transient error — a simulated crash), or
	// "wedge" (abort every attempt — a job that can never finish, for
	// exercising quarantine).
	Kind string
	// Job is the target job's name.
	Job string
	// AtSave is the 1-based periodic-save ordinal the op fires at.
	AtSave int
}

// Policy tunes retry, degradation, durability and auditing for every job
// in the campaign.
type Policy struct {
	// MaxAttempts bounds the attempts per job before quarantine
	// (default 4).
	MaxAttempts int
	// AttemptTimeout is the per-attempt wall-clock deadline (0: none).
	AttemptTimeout time.Duration
	// BackoffBase, BackoffFactor and BackoffMax shape the exponential
	// backoff between retries (defaults 10ms, ×2, 2s).
	BackoffBase   time.Duration
	BackoffFactor float64
	BackoffMax    time.Duration
	// Jitter is the ± fraction applied to each backoff, drawn from a
	// per-job RNG seeded by Seed and the job name, so reruns of the same
	// campaign back off identically (default 0.2).
	Jitter float64
	// Seed makes backoff jitter (the campaign's only randomness)
	// deterministic.
	Seed int64
	// MaxStates is the per-attempt distinct-state budget (0: engine
	// default). A job that exhausts it degrades down the ladder.
	MaxStates int
	// Workers is the parallel-enumeration width of the ladder's first
	// rung (≤1: start at the sequential rung).
	Workers int
	// MinN bounds how far the shrink-n rungs descend (default 2).
	MinN int
	// NoSymbolicFallback removes the final symbolic rung from
	// enumeration ladders.
	NoSymbolicFallback bool
	// CheckpointDir, when set, gives every job a durable snapshot store
	// at <dir>/<job>.ckpt; attempts save periodic snapshots there and
	// retries resume from the newest valid one.
	CheckpointDir string
	// CheckpointEvery is the periodic snapshot cadence in expanded
	// states (default 512 when CheckpointDir is set).
	CheckpointEvery int
	// Keep is the snapshot generations the store retains (default
	// ckptio.DefaultKeep).
	Keep int
	// NoAudit skips the independent witness confirmation pass.
	NoAudit bool
	// Chaos lists faults to inject, for tests and the CI chaos job.
	Chaos []ChaosOp

	// Observer receives phase/level/event callbacks from the campaign
	// itself (campaign_attempts_total, campaign_resumes_total, audit
	// phases) and from every engine attempt it launches; nil disables them.
	Observer obs.Observer
	// Metrics, when non-nil, accumulates the campaign's counters and the
	// engines' run metrics in one shared registry.
	Metrics *obs.Registry

	// sleep replaces time.Sleep in tests; nil means real sleeping.
	sleep func(time.Duration)
}

// withDefaults fills the zero-value policy fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 10 * time.Millisecond
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = 2
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	if p.MinN < 2 {
		p.MinN = 2
	}
	if p.CheckpointEvery <= 0 {
		p.CheckpointEvery = 512
	}
	if p.Keep <= 0 {
		p.Keep = ckptio.DefaultKeep
	}
	if p.sleep == nil {
		p.sleep = time.Sleep
	}
	return p
}

// Spec is a whole campaign: the jobs and the policy they run under.
type Spec struct {
	Jobs   []JobSpec
	Policy Policy
}

// FailureClass is the structured error taxonomy every failed attempt is
// classified into; the class decides the recovery action.
type FailureClass string

const (
	// ClassTransient: injected faults, recovered worker panics,
	// checkpoint-sink failures — retry the same rung after backoff.
	ClassTransient FailureClass = "transient"
	// ClassResource: a budget (deadline, states, memory) ran out —
	// resume from the checkpoint once, then degrade down the ladder.
	ClassResource FailureClass = "resource"
	// ClassCanceled: the campaign itself was canceled — stop everything.
	ClassCanceled FailureClass = "canceled"
	// ClassCorrupt: the checkpoint store had no valid snapshot left —
	// restart the rung from scratch.
	ClassCorrupt FailureClass = "corrupt"
	// ClassSpec: the protocol definition is broken — no retry can help.
	ClassSpec FailureClass = "spec"
	// ClassInternal: anything else.
	ClassInternal FailureClass = "internal"
)

// errInjected marks chaos-injected failures; Classify maps it to
// ClassTransient, the same class a real crash-and-restart presents as.
var errInjected = errors.New("campaign: injected fault")

// Classify maps an attempt error into the taxonomy.
func Classify(err error) FailureClass {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, runctl.ErrCanceled):
		return ClassCanceled
	case errors.Is(err, runctl.ErrDeadline),
		errors.Is(err, runctl.ErrStateBudget),
		errors.Is(err, runctl.ErrMemBudget):
		return ClassResource
	case errors.Is(err, errInjected):
		return ClassTransient
	case errors.Is(err, ckptio.ErrCorrupt),
		errors.Is(err, ckptio.ErrUnsupportedVersion),
		errors.Is(err, ckptio.ErrNoSnapshot):
		return ClassCorrupt
	case errors.Is(err, errSpec):
		return ClassSpec
	default:
		return ClassInternal
	}
}

// rung is one level of a job's degradation ladder.
type rung struct {
	desc    string
	engine  Engine
	n       int
	workers int
}

// ladder builds the degradation ladder for a job: the requested
// configuration first, then strictly cheaper fallbacks. Symbolic jobs have
// a single rung — the method's cost is independent of the cache count, so
// there is nothing to shrink.
func ladder(j JobSpec, p Policy) []rung {
	if j.Engine == EngineSymbolic {
		// The parallel speculation pipeline is bit-identical to the
		// sequential driver, so the worker width needs no fallback rung.
		return []rung{{desc: "symbolic", engine: EngineSymbolic, workers: p.Workers}}
	}
	var out []rung
	if p.Workers > 1 {
		out = append(out, rung{desc: fmt.Sprintf("parallel×%d", p.Workers), engine: j.Engine, n: j.N, workers: p.Workers})
	}
	out = append(out, rung{desc: "sequential", engine: j.Engine, n: j.N, workers: 1})
	for n := j.N - 1; n >= p.MinN; n-- {
		out = append(out, rung{desc: fmt.Sprintf("shrink-n%d", n), engine: j.Engine, n: n, workers: 1})
	}
	if !p.NoSymbolicFallback {
		out = append(out, rung{desc: "symbolic-fallback", engine: EngineSymbolic, workers: p.Workers})
	}
	return out
}

// AttemptRecord documents one attempt of one job.
type AttemptRecord struct {
	Attempt  int           `json:"attempt"`
	Rung     int           `json:"rung"`
	RungDesc string        `json:"rung_desc"`
	Resumed  bool          `json:"resumed,omitempty"`
	Class    FailureClass  `json:"class,omitempty"`
	Error    string        `json:"error,omitempty"`
	Backoff  time.Duration `json:"backoff_ns,omitempty"`
}

// WitnessRecord is one reported violation with its audit outcome.
type WitnessRecord struct {
	// State is the canonical rendering of the erroneous state.
	State string `json:"state"`
	// Kinds lists the violated invariants.
	Kinds []string `json:"kinds"`
	// PathLen is the witness path length in transitions.
	PathLen int `json:"path_len"`
	// Confirmed reports that the independent concrete replay reproduced
	// the erroneous state and at least one claimed invariant violation.
	Confirmed bool `json:"confirmed"`
	// AuditNote explains a failed confirmation.
	AuditNote string `json:"audit_note,omitempty"`
}

// Job verdicts.
const (
	VerdictClean       = "clean"
	VerdictViolations  = "violations"
	VerdictQuarantined = "quarantined"
	VerdictCanceled    = "canceled"
	VerdictFailed      = "failed"
)

// JobResult is the final record of one job.
type JobResult struct {
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	Engine   Engine `json:"engine"`
	N        int    `json:"n,omitempty"`
	Strict   bool   `json:"strict,omitempty"`

	// Verdict is clean, violations, quarantined, canceled or failed.
	Verdict string `json:"verdict"`
	// FinalRung and Degraded record where on the ladder the job ended.
	FinalRung string `json:"final_rung"`
	Degraded  bool   `json:"degraded,omitempty"`
	// Essential is the job's essential-state count: distinct states for
	// enumeration rungs, the history list length for symbolic rungs.
	Essential int `json:"essential"`
	// Visits is the engine's state-visit counter.
	Visits int `json:"visits"`
	// Resumes counts attempts that continued from a durable snapshot;
	// RecoveredCorruption counts loads that had to fall back past a bad
	// newest generation.
	Resumes             int `json:"resumes,omitempty"`
	RecoveredCorruption int `json:"recovered_corruption,omitempty"`

	Attempts   []AttemptRecord `json:"attempts"`
	Violations []WitnessRecord `json:"violations,omitempty"`
	// FailClass and FailError describe the terminal failure of a
	// quarantined, canceled or failed job.
	FailClass FailureClass `json:"fail_class,omitempty"`
	FailError string       `json:"fail_error,omitempty"`
}

// Audited reports whether every reported violation carries a confirmed
// witness.
func (r *JobResult) Audited() bool {
	for _, w := range r.Violations {
		if !w.Confirmed {
			return false
		}
	}
	return true
}

// runner carries one job's mutable campaign state.
type runner struct {
	ctx     context.Context
	policy  Policy
	job     JobSpec
	proto   *fsm.Protocol
	rungs   []rung
	store   *ckptio.Store // nil when checkpointing is off
	rng     *rand.Rand
	attempt int      // current attempt ordinal, for chaos "kill" scoping
	orun    *obs.Run // nil when the policy carries no observer/registry
	res     *JobResult
}

// Run executes the campaign: every job, in order, through retries,
// degradation and quarantine, then the witness audit. It returns a Report
// whose encoding is deterministic for a fixed spec. Run fails only on
// campaign-level misconfiguration; per-job failures are verdicts, not
// errors.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	pol := spec.Policy.withDefaults()
	if pol.CheckpointDir != "" {
		if err := os.MkdirAll(pol.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: checkpoint dir: %w", err)
		}
		// Fail before the first job starts, not at its first periodic save.
		if err := ckptio.PreflightDir(pol.CheckpointDir); err != nil {
			return nil, fmt.Errorf("campaign: checkpoint dir: %w", err)
		}
	}
	seen := map[string]bool{}
	rep := &Report{Seed: pol.Seed}
	for _, j := range spec.Jobs {
		if j.Name == "" {
			j.Name = JobName(j.Protocol, j.Engine, j.N)
		}
		if seen[j.Name] {
			return nil, fmt.Errorf("campaign: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		rep.Jobs = append(rep.Jobs, runJob(ctx, pol, j))
	}
	sort.Slice(rep.Jobs, func(a, b int) bool { return rep.Jobs[a].Name < rep.Jobs[b].Name })
	rep.tally()
	return rep, nil
}

// jobSeed derives the per-job RNG seed from the campaign seed and the job
// name, so jitter is deterministic per (campaign, job) and independent of
// job order.
func jobSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// runJob drives one job to a verdict.
func runJob(ctx context.Context, pol Policy, j JobSpec) *JobResult {
	r := &runner{
		ctx:    ctx,
		policy: pol,
		job:    j,
		rng:    rand.New(rand.NewSource(jobSeed(pol.Seed, j.Name))),
		orun:   obs.Sink{Observer: pol.Observer, Metrics: pol.Metrics}.Run("campaign", j.Protocol),
		res: &JobResult{
			Name: j.Name, Protocol: j.Protocol, Engine: j.Engine,
			N: j.N, Strict: j.Strict,
		},
	}
	r.orun.Event("campaign_jobs_total", 1)
	r.proto = j.Proto
	if r.proto == nil {
		p, err := protocols.ByName(j.Protocol)
		if err != nil {
			r.res.Verdict = VerdictFailed
			r.res.FailClass = ClassSpec
			r.res.FailError = err.Error()
			return r.res
		}
		r.proto = p
	}
	if r.res.Protocol == "" {
		r.res.Protocol = r.proto.Name
	}
	r.rungs = ladder(j, pol)
	if pol.CheckpointDir != "" {
		r.store = &ckptio.Store{
			Path: filepath.Join(pol.CheckpointDir, j.Name+".ckpt"),
			Keep: pol.Keep,
		}
	}
	r.run()
	if r.store != nil {
		// The job is decided; its snapshots have served their purpose.
		_ = r.store.Remove()
	}
	return r.res
}

// run is the retry/degradation loop. Recovery policy by class:
// transient and corrupt failures retry the same rung after backoff (a
// durable snapshot, when one survived, makes the retry a resume); a
// resource failure resumes once per rung and then degrades, except the
// state budget, whose stop is deterministic and mid-step (never
// checkpointable), so it degrades immediately; cancellation and spec
// failures end the job.
func (r *runner) run() {
	rungIdx := 0
	resumedOnRung := false
	for attempt := 1; ; attempt++ {
		if attempt > r.policy.MaxAttempts {
			r.res.Verdict = VerdictQuarantined
			r.orun.Event("campaign_quarantined_total", 1)
			return
		}
		if err := runctl.FromContext(r.ctx); err != nil {
			r.res.Verdict = VerdictCanceled
			r.res.FailClass = ClassCanceled
			r.res.FailError = err.Error()
			return
		}
		r.attempt = attempt
		rg := r.rungs[rungIdx]
		rec := AttemptRecord{Attempt: attempt, Rung: rungIdx, RungDesc: rg.desc}
		r.orun.Event("campaign_attempts_total", 1)
		if attempt > 1 {
			r.orun.Event("campaign_retries_total", 1)
		}
		done, resumed, err := r.attemptRung(rg)
		rec.Resumed = resumed
		if resumed {
			r.res.Resumes++
			r.orun.Event("campaign_resumes_total", 1)
		}
		if done {
			r.res.Attempts = append(r.res.Attempts, rec)
			r.res.FinalRung = rg.desc
			r.res.Degraded = rungIdx > 0
			if len(r.res.Violations) > 0 {
				r.res.Verdict = VerdictViolations
			} else {
				r.res.Verdict = VerdictClean
			}
			return
		}
		class := Classify(err)
		rec.Class = class
		rec.Error = err.Error()
		switch class {
		case ClassCanceled:
			r.res.Attempts = append(r.res.Attempts, rec)
			r.res.Verdict = VerdictCanceled
			r.res.FailClass = class
			r.res.FailError = err.Error()
			return
		case ClassSpec, ClassInternal:
			r.res.Attempts = append(r.res.Attempts, rec)
			r.res.Verdict = VerdictFailed
			r.res.FailClass = class
			r.res.FailError = err.Error()
			return
		case ClassResource:
			stateBudget := errors.Is(err, runctl.ErrStateBudget)
			canResume := r.hasSnapshot() && !stateBudget
			if canResume && !resumedOnRung {
				resumedOnRung = true
			} else if rungIdx+1 < len(r.rungs) {
				rungIdx++
				resumedOnRung = false
				r.dropSnapshot() // incompatible with the next rung's shape
			} else {
				r.res.Attempts = append(r.res.Attempts, rec)
				r.res.Verdict = VerdictQuarantined
				r.orun.Event("campaign_quarantined_total", 1)
				r.res.FailClass = class
				r.res.FailError = err.Error()
				return
			}
		case ClassTransient, ClassCorrupt:
			// Same rung again; backoff below.
		}
		rec.Backoff = r.backoff(attempt)
		r.res.Attempts = append(r.res.Attempts, rec)
		if rec.Backoff > 0 {
			r.policy.sleep(rec.Backoff)
		}
	}
}

// backoff computes the jittered exponential delay before the next attempt
// through the shared runctl.Backoff shape.
func (r *runner) backoff(attempt int) time.Duration {
	return runctl.Backoff{
		Base:   r.policy.BackoffBase,
		Factor: r.policy.BackoffFactor,
		Max:    r.policy.BackoffMax,
		Jitter: r.policy.Jitter,
		Rand:   r.rng,
	}.Delay(attempt)
}

// hasSnapshot reports whether the store holds any loadable snapshot.
func (r *runner) hasSnapshot() bool {
	if r.store == nil {
		return false
	}
	_, _, err := r.store.Load()
	return err == nil
}

// dropSnapshot discards all snapshot generations (degrading changes the
// run's shape, so old snapshots no longer apply).
func (r *runner) dropSnapshot() {
	if r.store != nil {
		_ = r.store.Remove()
	}
}

// attemptRung runs one attempt at one rung. done=true means the attempt
// produced a final result (recorded into r.res); otherwise err says why it
// failed. resumed reports whether the attempt continued from a snapshot.
func (r *runner) attemptRung(rg rung) (done, resumed bool, err error) {
	budget := runctl.Budget{MaxStates: r.policy.MaxStates}
	if r.policy.AttemptTimeout > 0 {
		budget.Deadline = time.Now().Add(r.policy.AttemptTimeout)
	}
	if rg.engine == EngineSymbolic {
		return r.attemptSymbolic(rg, budget)
	}
	return r.attemptEnum(rg, budget)
}

// loadSnapshot pulls the newest valid snapshot payload from the store,
// counting fallback recoveries. A missing snapshot returns (nil, nil); a
// store with only invalid snapshots returns the typed corrupt error.
func (r *runner) loadSnapshot() ([]byte, error) {
	if r.store == nil {
		return nil, nil
	}
	data, info, err := r.store.Load()
	if errors.Is(err, ckptio.ErrNoSnapshot) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if info.Generation > 0 || len(info.Skipped) > 0 {
		r.res.RecoveredCorruption++
	}
	return data, nil
}

// chaosFire applies this job's chaos ops due at the save-th periodic save
// of the current attempt. The durable save has already happened, so
// "corrupt" and "delete" attack the newest on-disk generation and "kill"
// simulates the process dying right after persisting — the canonical
// crash-recovery scenario.
func (r *runner) chaosFire(save int) error {
	for _, op := range r.policy.Chaos {
		if op.Job != r.job.Name || op.AtSave != save {
			continue
		}
		switch op.Kind {
		case "corrupt":
			if r.store != nil {
				corruptFile(r.store.Path)
			}
		case "delete":
			if r.store != nil {
				_ = os.Remove(r.store.Path)
			}
		case "kill":
			if r.attempt == 1 {
				return fmt.Errorf("%w: kill at save %d", errInjected, save)
			}
		case "wedge":
			return fmt.Errorf("%w: wedge at save %d", errInjected, save)
		}
	}
	return nil
}

// corruptFile truncates the file to half and scribbles over its tail,
// simulating a torn write plus media corruption.
func corruptFile(path string) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return
	}
	data = data[:len(data)/2+1]
	for i := len(data) / 2; i < len(data); i++ {
		data[i] ^= 0xA5
	}
	_ = os.WriteFile(path, data, 0o644)
}

// attemptEnum runs one enumeration attempt (sequential or parallel,
// strict or counting) with durable periodic snapshots and chaos firing.
func (r *runner) attemptEnum(rg rung, budget runctl.Budget) (bool, bool, error) {
	opts := enum.Options{
		RunConfig: runctl.RunConfig{
			Budget:           budget,
			CheckpointOnStop: r.store != nil,
			Observer:         r.policy.Observer,
			Metrics:          r.policy.Metrics,
		},
		Strict: r.job.Strict,
	}
	if r.store != nil {
		saves := 0
		opts.RunConfig.CheckpointEvery = r.policy.CheckpointEvery
		opts.OnCheckpoint = func(cp *enum.Checkpoint) error {
			data, err := cp.Encode()
			if err != nil {
				return err
			}
			if err := r.store.Save(data); err != nil {
				return err
			}
			saves++
			return r.chaosFire(saves)
		}
	}

	var cp *enum.Checkpoint
	if payload, err := r.loadSnapshot(); err != nil {
		// No valid snapshot survived; restart the rung from scratch.
		r.dropSnapshot()
	} else if payload != nil {
		decoded, err := enum.DecodeCheckpoint(payload)
		// A snapshot from a different shape (engine switch, shrunk n)
		// cannot seed this rung.
		if err == nil && decoded.Mode == enumMode(rg.engine) &&
			decoded.N == rg.n && decoded.Protocol == r.proto.Name {
			cp = decoded
		}
	}

	var res *enum.Result
	var err error
	switch {
	case cp != nil && rg.workers > 1:
		res, err = enum.ResumeParallelContext(r.ctx, r.proto, cp, opts, rg.workers)
	case cp != nil:
		res, err = enum.ResumeContext(r.ctx, r.proto, cp, opts)
	case rg.workers > 1 && rg.engine == EngineEnumCounting:
		res, err = enum.CountingParallelContext(r.ctx, r.proto, rg.n, opts, rg.workers)
	case rg.workers > 1:
		res, err = enum.ExhaustiveParallelContext(r.ctx, r.proto, rg.n, opts, rg.workers)
	case rg.engine == EngineEnumCounting:
		res, err = enum.CountingContext(r.ctx, r.proto, rg.n, opts)
	default:
		res, err = enum.ExhaustiveContext(r.ctx, r.proto, rg.n, opts)
	}
	resumed := cp != nil
	if err != nil {
		return false, resumed, err
	}
	if res.Truncated {
		if r.store != nil && res.Checkpoint != nil {
			if data, eerr := res.Checkpoint.Encode(); eerr == nil {
				_ = r.store.Save(data)
			}
		}
		return false, resumed, fmt.Errorf("enumeration stopped: %w", res.StopReason)
	}
	if len(res.SpecErrors) > 0 {
		return false, resumed, fmt.Errorf("%w: %v", errSpec, res.SpecErrors[0])
	}
	r.res.Essential = res.Unique
	r.res.Visits = res.Visits
	r.res.Violations = r.auditEnum(rg, res.Violations)
	return true, resumed, nil
}

// attemptSymbolic runs one symbolic expansion attempt with the same
// durability and chaos plumbing as attemptEnum. rg.workers > 1 selects
// the parallel speculation pipeline (bit-identical results).
func (r *runner) attemptSymbolic(rg rung, budget runctl.Budget) (bool, bool, error) {
	eng, err := symbolic.NewEngine(r.proto)
	if err != nil {
		return false, false, fmt.Errorf("%w: %v", errSpec, err)
	}
	opts := symbolic.Options{
		RunConfig: runctl.RunConfig{
			Budget:           budget,
			CheckpointOnStop: r.store != nil,
			Observer:         r.policy.Observer,
			Metrics:          r.policy.Metrics,
		},
		Strict: r.job.Strict,
	}
	if r.policy.MaxStates > 0 {
		opts.MaxVisits = r.policy.MaxStates
	}
	if r.store != nil {
		saves := 0
		opts.RunConfig.CheckpointEvery = r.policy.CheckpointEvery
		opts.OnCheckpoint = func(cp *symbolic.Checkpoint) error {
			data, err := cp.Encode()
			if err != nil {
				return err
			}
			if err := r.store.Save(data); err != nil {
				return err
			}
			saves++
			return r.chaosFire(saves)
		}
	}

	var cp *symbolic.Checkpoint
	if payload, lerr := r.loadSnapshot(); lerr != nil {
		r.dropSnapshot()
	} else if payload != nil {
		decoded, derr := symbolic.DecodeCheckpoint(payload)
		if derr == nil && decoded.Protocol == r.proto.Name {
			cp = decoded
		}
	}

	opts.RunConfig.Workers = rg.workers
	var res *symbolic.Result
	switch {
	case cp != nil && rg.workers > 1:
		res, err = eng.ResumeParallelContext(r.ctx, cp, opts, rg.workers)
	case cp != nil:
		res, err = eng.ResumeContext(r.ctx, cp, opts)
	case rg.workers > 1:
		res, err = eng.ExpandParallelContext(r.ctx, opts, rg.workers)
	default:
		res, err = eng.ExpandContext(r.ctx, opts)
	}
	resumed := cp != nil
	if err != nil {
		return false, resumed, err
	}
	if res.Truncated {
		if r.store != nil && res.Checkpoint != nil {
			if data, eerr := res.Checkpoint.Encode(); eerr == nil {
				_ = r.store.Save(data)
			}
		}
		return false, resumed, fmt.Errorf("expansion stopped: %w", res.StopReason)
	}
	if len(res.SpecErrors) > 0 {
		return false, resumed, fmt.Errorf("%w: %v", errSpec, res.SpecErrors[0])
	}
	r.res.Essential = len(res.Essential)
	r.res.Visits = res.Visits
	r.res.Violations = r.auditSymbolic(res.Violations)
	return true, resumed, nil
}

// errSpec marks protocol-definition failures (ClassSpec).
var errSpec = errors.New("campaign: protocol specification error")
