package runctl

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFromContext(t *testing.T) {
	if err := FromContext(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := FromContext(canceled); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled context -> %v, want ErrCanceled", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if err := FromContext(expired); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired context -> %v, want ErrDeadline", err)
	}
}

func TestBudgetChecks(t *testing.T) {
	var zero Budget
	if err := zero.Check(context.Background(), 1<<30, 1<<40); err != nil {
		t.Fatalf("zero budget must be unlimited, got %v", err)
	}

	b := Budget{MaxStates: 10}
	if err := b.CheckStates(9); err != nil {
		t.Fatalf("under budget: %v", err)
	}
	if err := b.CheckStates(10); !errors.Is(err, ErrStateBudget) {
		t.Fatalf("at budget -> %v, want ErrStateBudget", err)
	}

	m := Budget{MaxBytes: 100}
	if err := m.CheckMem(99); err != nil {
		t.Fatalf("under mem budget: %v", err)
	}
	if err := m.CheckMem(100); !errors.Is(err, ErrMemBudget) {
		t.Fatalf("at mem budget -> %v, want ErrMemBudget", err)
	}

	d := Budget{Deadline: time.Now().Add(-time.Minute)}
	if err := d.CheckDeadline(time.Now()); !errors.Is(err, ErrDeadline) {
		t.Fatalf("past deadline -> %v, want ErrDeadline", err)
	}
	if err := (Budget{Deadline: time.Now().Add(time.Hour)}).CheckDeadline(time.Now()); err != nil {
		t.Fatalf("future deadline: %v", err)
	}
}

func TestCancellationWinsOverBudget(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Budget{MaxStates: 1, MaxBytes: 1, Deadline: time.Now().Add(-time.Hour)}
	if err := b.Check(ctx, 100, 100); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled to win", err)
	}
}

func TestIsStop(t *testing.T) {
	for _, err := range []error{ErrCanceled, ErrDeadline, ErrStateBudget, ErrMemBudget} {
		if !IsStop(err) {
			t.Errorf("IsStop(%v) = false", err)
		}
	}
	if IsStop(errors.New("other")) || IsStop(nil) {
		t.Error("IsStop must reject non-stop errors")
	}
}
