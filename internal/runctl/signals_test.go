package runctl

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

// TestExitCodeContract pins the process exit codes every binary exposes:
// 0 clean, 1 usage/internal, 2 violations, 3 stopped early. Changing any
// value breaks scripts and CI — this test is the contract.
func TestExitCodeContract(t *testing.T) {
	if ExitClean != 0 || ExitUsage != 1 || ExitViolation != 2 || ExitStopped != 3 {
		t.Fatalf("exit codes = %d/%d/%d/%d, contract is 0/1/2/3",
			ExitClean, ExitUsage, ExitViolation, ExitStopped)
	}
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitClean},
		{ErrCanceled, ExitStopped},
		{ErrDeadline, ExitStopped},
		{ErrStateBudget, ExitStopped},
		{ErrMemBudget, ExitStopped},
		{fmt.Errorf("run stopped: %w", ErrDeadline), ExitStopped},
		{errors.New("flag provided but not defined"), ExitUsage},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestWithSignalsTimeout(t *testing.T) {
	ctx, cancel := WithSignals(context.Background(), 10*time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("timeout never fired")
	}
	if err := FromContext(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("stop reason = %v, want ErrDeadline", err)
	}
	if ExitCode(FromContext(ctx)) != ExitStopped {
		t.Fatal("a timed-out run must exit with the stopped code")
	}
}

func TestWithSignalsSignal(t *testing.T) {
	ctx, cancel := WithSignals(context.Background(), 0)
	defer cancel()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the context")
	}
	if err := FromContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("stop reason = %v, want ErrCanceled", err)
	}
	if ExitCode(FromContext(ctx)) != ExitStopped {
		t.Fatal("a signaled run must exit with the stopped code")
	}
}

func TestWithSignalsParentCancel(t *testing.T) {
	parent, pcancel := context.WithCancel(context.Background())
	ctx, cancel := WithSignals(parent, time.Hour)
	defer cancel()
	pcancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
	if err := FromContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("stop reason = %v, want ErrCanceled", err)
	}
}
