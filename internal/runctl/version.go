package runctl

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// readBuildInfo is swapped in tests to exercise every build-info shape.
var readBuildInfo = debug.ReadBuildInfo

// VersionString renders the shared -version output of every binary in this
// repository: the binary name, the module version, and — when the binary
// was built from a VCS checkout — the revision, its commit time and a
// +dirty marker for modified working trees. All of it comes from
// runtime/debug.ReadBuildInfo, so the string is accurate for `go build`,
// `go install` and `go run` alike without any linker-flag plumbing.
func VersionString(binary string) string {
	info, ok := readBuildInfo()
	if !ok {
		return binary + " version unknown (no build info)"
	}
	version := info.Main.Version
	if version == "" {
		version = "(devel)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", binary, version)
	var revision, modified, vcsTime string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value
		case "vcs.time":
			vcsTime = s.Value
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		fmt.Fprintf(&b, " (%s", revision)
		if vcsTime != "" {
			fmt.Fprintf(&b, " %s", vcsTime)
		}
		if modified == "true" {
			b.WriteString(" +dirty")
		}
		b.WriteString(")")
	}
	fmt.Fprintf(&b, " %s", info.GoVersion)
	return b.String()
}
