package runctl

import (
	"runtime/debug"
	"strings"
	"testing"
)

// withBuildInfo swaps the build-info source for one test.
func withBuildInfo(t *testing.T, info *debug.BuildInfo, ok bool) {
	t.Helper()
	orig := readBuildInfo
	readBuildInfo = func() (*debug.BuildInfo, bool) { return info, ok }
	t.Cleanup(func() { readBuildInfo = orig })
}

func TestVersionStringNoBuildInfo(t *testing.T) {
	withBuildInfo(t, nil, false)
	got := VersionString("ccserved")
	if got != "ccserved version unknown (no build info)" {
		t.Errorf("got %q", got)
	}
}

func TestVersionStringDevelWithVCS(t *testing.T) {
	withBuildInfo(t, &debug.BuildInfo{
		GoVersion: "go1.22.0",
		Main:      debug.Module{Path: "repro", Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.time", Value: "2026-08-06T00:00:00Z"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	got := VersionString("ccenum")
	want := "ccenum (devel) (0123456789ab 2026-08-06T00:00:00Z +dirty) go1.22.0"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestVersionStringTaggedClean(t *testing.T) {
	withBuildInfo(t, &debug.BuildInfo{
		GoVersion: "go1.22.0",
		Main:      debug.Module{Path: "repro", Version: "v1.4.0"},
	}, true)
	got := VersionString("ccverify")
	if got != "ccverify v1.4.0 go1.22.0" {
		t.Errorf("got %q", got)
	}
}

// TestVersionStringReal exercises the live ReadBuildInfo path: under `go
// test` build info is always present, so the output must lead with the
// binary name and never be the unknown form.
func TestVersionStringReal(t *testing.T) {
	got := VersionString("cctool")
	if !strings.HasPrefix(got, "cctool ") || strings.Contains(got, "version unknown") {
		t.Errorf("got %q", got)
	}
}
