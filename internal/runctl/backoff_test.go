package runctl

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffExponentialShape(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Factor: 2, Max: 50 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond, // capped
		50 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffZeroBaseDisables(t *testing.T) {
	b := Backoff{Factor: 2, Max: time.Second, Jitter: 0.2}
	for attempt := 0; attempt < 5; attempt++ {
		if got := b.Delay(attempt); got != 0 {
			t.Errorf("Delay(%d) with zero base = %v, want 0", attempt, got)
		}
	}
}

func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	mk := func() Backoff {
		return Backoff{
			Base: 100 * time.Millisecond, Factor: 2, Max: time.Second,
			Jitter: 0.2, Rand: rand.New(rand.NewSource(42)),
		}
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 8; attempt++ {
		da, db := a.Delay(attempt), b.Delay(attempt)
		if da != db {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", attempt, da, db)
		}
		base := Backoff{Base: 100 * time.Millisecond, Factor: 2, Max: time.Second}.Delay(attempt)
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if da < lo || da > hi {
			t.Errorf("attempt %d: jittered delay %v outside [%v, %v]", attempt, da, lo, hi)
		}
	}
}

func TestBackoffSubUnityFactorClamped(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Factor: 0.5}
	if got := b.Delay(4); got != 10*time.Millisecond {
		t.Errorf("Delay(4) with factor 0.5 = %v, want base (clamped to 1)", got)
	}
}
