package runctl

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Process exit codes shared by every binary in this repository. The
// contract is part of the CLI surface (scripts and CI branch on it) and is
// pinned by TestExitCodeContract.
const (
	// ExitClean: the run completed and the protocol verified clean.
	ExitClean = 0
	// ExitUsage: a usage or internal error prevented a verdict.
	ExitUsage = 1
	// ExitViolation: the run completed and found violations.
	ExitViolation = 2
	// ExitStopped: the run was stopped early (timeout, signal or budget)
	// before reaching a verdict.
	ExitStopped = 3
)

// ExitCode maps a run-ending error to the shared contract: nil is
// ExitClean, any of the stop sentinels is ExitStopped, and everything else
// is ExitUsage. Violations are a verdict, not an error, so callers report
// ExitViolation themselves.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitClean
	case IsStop(err):
		return ExitStopped
	default:
		return ExitUsage
	}
}

// WithSignals is the shared CLI run-control wiring: the returned context
// is canceled on SIGINT or SIGTERM and, when timeout is positive, after
// the wall-clock timeout. Classify the resulting ctx.Err with FromContext
// (ErrCanceled for signals, ErrDeadline for the timeout) and exit with
// ExitCode. The cancel function releases the signal handler and must be
// called when the run ends.
func WithSignals(parent context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}
