package runctl

import (
	"math"
	"math/rand"
	"time"
)

// Backoff computes jittered exponential retry delays. It is the one
// backoff shape shared by every retry loop in the repository — the
// campaign runner's attempt ladder and the cluster layer's peer
// retries — so tuning and testing live in one place.
//
// Delay(1) is Base, each later attempt multiplies by Factor up to Max,
// and Jitter spreads the result by a ± fraction so synchronized retries
// from many clients do not stampede in lockstep.
type Backoff struct {
	// Base is the first attempt's delay. Base <= 0 disables backoff:
	// Delay always returns 0.
	Base time.Duration
	// Factor is the per-attempt multiplier (values < 1 behave as 1).
	Factor float64
	// Max caps the pre-jitter delay (<= 0: uncapped).
	Max time.Duration
	// Jitter is the ± fraction applied to each delay, in [0, 1); values
	// outside that range disable jitter.
	Jitter float64
	// Rand supplies the jitter randomness. nil uses the process-global
	// source; pass a seeded *rand.Rand for deterministic schedules.
	// A non-nil Rand is not synchronized — callers that share one across
	// goroutines must serialize Delay themselves.
	Rand *rand.Rand
}

// Delay returns the jittered delay before retry number attempt
// (1-based: attempt 1 is the delay after the first failure).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	factor := b.Factor
	if factor < 1 {
		factor = 1
	}
	d := float64(b.Base) * math.Pow(factor, float64(attempt-1))
	if max := float64(b.Max); b.Max > 0 && d > max {
		d = max
	}
	if b.Jitter > 0 && b.Jitter < 1 {
		u := rand.Float64
		if b.Rand != nil {
			u = b.Rand.Float64
		}
		d *= 1 + b.Jitter*(2*u()-1)
	}
	return time.Duration(d)
}
