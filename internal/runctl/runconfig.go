package runctl

import "repro/internal/obs"

// RunConfig is the run-control and observability configuration shared by
// every engine's Options struct. enum.Options and symbolic.Options embed
// it, so the budget/checkpoint/parallelism knobs are declared once and
// read identically everywhere:
//
//	opts := enum.Options{RunConfig: runctl.RunConfig{
//		Budget:  runctl.Budget{MaxStates: 1 << 20},
//		Workers: 8,
//		Metrics: reg,
//	}}
//
// The zero value runs unbounded, sequential and unobserved.
type RunConfig struct {
	// Budget bounds the run (wall clock, states, estimated bytes); the zero
	// Budget is unlimited.
	Budget Budget

	// CheckpointOnStop asks the engine to capture a resumable checkpoint in
	// its Result when the run stops early (budget, cancellation).
	CheckpointOnStop bool

	// CheckpointEvery, when > 0, additionally snapshots the run every that
	// many expanded states through the engine's checkpoint callback
	// (enum.Options.OnCheckpoint / symbolic.Options.OnCheckpoint — the
	// callback stays on the engine's Options because the checkpoint types
	// differ).
	CheckpointEvery int

	// Workers is the default parallelism for engines with a parallel mode:
	// it is used when the caller passes workers <= 0 to the *Parallel*
	// entry points (0 here means GOMAXPROCS, matching their contract).
	Workers int

	// SpillDir, when set together with Budget.MaxBytes, lets engines with
	// out-of-core support (the parallel enumeration) spill cold visited-set
	// shards to CRC-checked files under this directory once the estimated
	// resident bytes approach the budget, instead of stopping with
	// ErrMemBudget. Spilled entries are streamed back for deduplication at
	// level boundaries, so results stay bit-identical to an in-memory run.
	// Engines without spill support ignore it.
	SpillDir string

	// Observer receives phase/level/event callbacks during the run; nil
	// disables them with a single nil check (allocation-free fast path).
	Observer obs.Observer

	// Metrics, when non-nil, accumulates the run's counters, gauges and
	// per-phase timing histograms (see internal/obs for the name catalog).
	Metrics *obs.Registry
}

// Sink bundles the config's observability outputs for obs.Sink.Run.
func (c RunConfig) Sink() obs.Sink {
	return obs.Sink{Observer: c.Observer, Metrics: c.Metrics}
}
