package runctl

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath and arranges a heap profile
// to be written to memPath; either path may be empty to disable that profile.
// It returns a stop function that finalizes both files. The commands share it
// behind their -cpuprofile/-memprofile flags.
//
// stop must run on every exit path: os.Exit skips deferred calls, so callers
// invoke it explicitly before choosing an exit code rather than deferring it.
// Calling stop with no profiles active is a no-op, so a single unconditional
// call site suffices.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("runctl: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("runctl: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("runctl: cpu profile: %w", err)
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("runctl: mem profile: %w", err)
			}
			// Flush garbage so the profile reflects live retained memory.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("runctl: mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("runctl: mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
