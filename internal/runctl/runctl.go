// Package runctl is the run-control layer shared by every long-running
// engine of the verifier: the explicit-state enumerators (internal/enum),
// the symbolic expansion (internal/symbolic), the verification pipeline
// (internal/core) and the simulator (internal/sim).
//
// The state spaces explored by the paper's algorithms grow as mⁿ
// (Section 3.1), so a run's cost is unknown a priori. Production model
// checking treats resource exhaustion as an expected, reportable outcome
// rather than a crash: every engine accepts a context.Context plus a
// Budget and, when either trips, stops at a clean boundary (one worklist
// item or one BFS level) and returns its partial results tagged with one
// of the sentinel stop reasons below. Callers classify the outcome with
// errors.Is.
package runctl

import (
	"context"
	"errors"
	"time"
)

// Sentinel stop reasons. Engine results wrap exactly one of these when a
// run is stopped early; match with errors.Is.
var (
	// ErrCanceled: the run's context was canceled.
	ErrCanceled = errors.New("run canceled")
	// ErrDeadline: the context deadline or the Budget wall-clock deadline
	// expired.
	ErrDeadline = errors.New("run deadline exceeded")
	// ErrStateBudget: the state (or visit) budget was exhausted.
	ErrStateBudget = errors.New("state budget exhausted")
	// ErrMemBudget: the estimated worklist memory budget was exhausted.
	ErrMemBudget = errors.New("memory budget exhausted")
)

// IsStop reports whether err is one of the run-control stop reasons.
func IsStop(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrStateBudget) || errors.Is(err, ErrMemBudget)
}

// Budget bounds a run. The zero value is unlimited: every field is
// optional and a zero field imposes no bound.
type Budget struct {
	// Deadline is an absolute wall-clock stop time (zero: none). Engines
	// also honor the deadline of their context; Budget.Deadline exists so
	// a deadline can be carried inside option structs that are built far
	// from where the context is available.
	Deadline time.Time
	// MaxStates bounds the number of distinct states explored (0: engine
	// default, which may itself be a safety cap).
	MaxStates int
	// MaxBytes bounds the estimated number of bytes held by the run's
	// worklist and visited structures (0: unlimited). The estimate is
	// computed from configuration sizes, not measured from the allocator,
	// so it is deterministic across runs.
	MaxBytes int64
}

// FromContext classifies ctx.Err() as a stop reason: nil when the context
// is live, ErrCanceled or ErrDeadline otherwise.
func FromContext(ctx context.Context) error {
	switch ctx.Err() {
	case nil:
		return nil
	case context.DeadlineExceeded:
		return ErrDeadline
	default:
		return ErrCanceled
	}
}

// CheckDeadline returns ErrDeadline when the budget's deadline has passed.
func (b Budget) CheckDeadline(now time.Time) error {
	if !b.Deadline.IsZero() && now.After(b.Deadline) {
		return ErrDeadline
	}
	return nil
}

// CheckStates returns ErrStateBudget when states meets or exceeds
// MaxStates.
func (b Budget) CheckStates(states int) error {
	if b.MaxStates > 0 && states >= b.MaxStates {
		return ErrStateBudget
	}
	return nil
}

// CheckMem returns ErrMemBudget when the estimated bytes meet or exceed
// MaxBytes.
func (b Budget) CheckMem(bytes int64) error {
	if b.MaxBytes > 0 && bytes >= b.MaxBytes {
		return ErrMemBudget
	}
	return nil
}

// Check runs every bound at once: context liveness first (cancellation
// must win over budget exhaustion so an interrupted run reports what the
// user did), then the wall clock, the state budget and the memory budget.
// It returns nil when the run may continue.
func (b Budget) Check(ctx context.Context, states int, bytes int64) error {
	if err := FromContext(ctx); err != nil {
		return err
	}
	if err := b.CheckDeadline(time.Now()); err != nil {
		return err
	}
	if err := b.CheckStates(states); err != nil {
		return err
	}
	return b.CheckMem(bytes)
}
