package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/ckptio"
	"repro/internal/obs"
)

// ComputePath is the cluster-internal compute-forwarding endpoint: POST
// <peer><ComputePath> with a serve-layer compute request body runs the job
// on the peer (or serves it from the peer's cache) and returns the
// canonical report bytes in ckptio's CRC32 envelope. Unlike CachePathPrefix
// this endpoint does compute — it is how a saturated node hands work to an
// idle one, and how a batch sweep shards jobs to their content-address
// owners.
const ComputePath = "/v1/cluster/compute"

// ForwardedHeader marks a cluster-internal forwarded request. A node
// serving a request that carries it never forwards again — with one
// mandatory marker per hop and no second hop, forwarding loops are
// structurally impossible.
const ForwardedHeader = "X-CC-Forwarded"

// computeStats are the forwarded-compute counters, resolved once.
type computeStats struct {
	attempts *obs.Counter // compute_forward_attempts_total
	hits     *obs.Counter // compute_forward_hits_total
	rejected *obs.Counter // compute_forward_rejected_total
	errors   *obs.Counter // compute_forward_errors_total
	corrupt  *obs.Counter // compute_forward_corrupt_total
	latency  *obs.Histogram
}

func newComputeStats(reg *obs.Registry) computeStats {
	return computeStats{
		attempts: reg.Counter("compute_forward_attempts_total"),
		hits:     reg.Counter("compute_forward_hits_total"),
		rejected: reg.Counter("compute_forward_rejected_total"),
		errors:   reg.Counter("compute_forward_errors_total"),
		corrupt:  reg.Counter("compute_forward_corrupt_total"),
		latency:  reg.Histogram("compute_forward_latency_seconds"),
	}
}

// SelfIsOwner reports whether this node rendezvous-owns key, considering
// itself plus every configured peer regardless of health (ownership is a
// pure hash property; health only decides whether a forward is attempted).
// A node with no advertised Self address owns everything: without an
// identity it cannot claim a shard, so it computes locally and leaves
// sharding to the peers that can.
func (c *Client) SelfIsOwner(key string) bool {
	if c.self == "" {
		return true
	}
	selfScore := hrwScore(c.self, key)
	for _, p := range c.peers {
		s := hrwScore(p.url, key)
		if s > selfScore || (s == selfScore && p.url < c.self) {
			return false
		}
	}
	return true
}

// computeCandidates returns the owners a forwarded job may go to: the
// key's top-ranked peers whose breakers currently admit a request, at most
// Replicas of them, ordered least-loaded first (outstanding forwarded
// calls ascending, rendezvous rank breaking ties). The least-loaded pick
// is what spreads a hot key's overflow across the fleet instead of piling
// every forward onto one owner.
func (c *Client) computeCandidates(key string) []*peer {
	now := c.now()
	var out []*peer
	for _, p := range rankPeers(c.peers, key) {
		if !p.allow(now) {
			continue
		}
		out = append(out, p)
		if len(out) == c.cfg.Replicas {
			break
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].inflight.Load() < out[b].inflight.Load()
	})
	return out
}

// Compute forwards one verification job to the least-loaded healthy owner
// of key and returns the peer's CRC-validated report bytes, or ok=false
// when no peer produced one. body is the serve-layer compute request,
// shipped opaquely. Candidates are tried in least-loaded order; a peer
// that rejects the job (429 admission, 503 drain) stays healthy and the
// next candidate is tried, while transport errors and corrupt envelopes
// feed the failure detector. Every failure mode degrades to ok=false —
// the caller queues locally, exactly like a cache-fill miss. Compute
// NEVER blocks past ComputeTimeout.
func (c *Client) Compute(ctx context.Context, key string, body []byte) ([]byte, bool) {
	if len(c.peers) == 0 {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ComputeTimeout)
	defer cancel()
	for _, p := range c.computeCandidates(key) {
		if ctx.Err() != nil {
			break
		}
		began := time.Now()
		payload, outcome := c.attemptCompute(ctx, p, body)
		if outcome == computeOK {
			c.comp.hits.Add(1)
			c.comp.latency.Observe(time.Since(began).Seconds())
			return payload, true
		}
	}
	return nil, false
}

// computeOutcome classifies one forwarded-compute attempt.
type computeOutcome int

const (
	computeOK computeOutcome = iota
	computeRejected
	computeFailed
)

// attemptCompute POSTs one compute request to one peer under the remaining
// context budget and validates the enveloped response. The peer's
// failure detector sees transport errors, bad statuses and corrupt
// envelopes; clean rejections (429/503) leave health untouched — a node
// shedding load is alive and doing its job.
func (c *Client) attemptCompute(ctx context.Context, p *peer, body []byte) ([]byte, computeOutcome) {
	c.comp.attempts.Add(1)
	p.requests.Add(1)
	p.inflight.Add(1)
	p.inflightG.Add(1)
	defer func() {
		p.inflight.Add(-1)
		p.inflightG.Add(-1)
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+ComputePath, bytes.NewReader(body))
	if err != nil {
		p.failure(c.now())
		c.comp.errors.Add(1)
		return nil, computeFailed
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	resp, err := c.httpc.Do(req)
	if err != nil {
		p.failure(c.now())
		c.comp.errors.Add(1)
		return nil, computeFailed
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		// Validated below.
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		p.success()
		c.comp.rejected.Add(1)
		return nil, computeRejected
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		p.failure(c.now())
		c.comp.errors.Add(1)
		return nil, computeFailed
	}

	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBytes+1))
	if err != nil || len(raw) > maxFetchBytes {
		p.failure(c.now())
		c.comp.errors.Add(1)
		return nil, computeFailed
	}
	// Same wire contract as cache fill: the CRC envelope is mandatory, and
	// an unverifiable response is a failure, never an answer.
	payload, legacy, err := ckptio.Decode(p.url+ComputePath, raw)
	if err != nil || legacy {
		p.failure(c.now())
		c.comp.corrupt.Add(1)
		c.comp.errors.Add(1)
		return nil, computeFailed
	}
	p.success()
	return payload, computeOK
}

// PeerMetrics is one node's scrape result in a cluster metrics rollup.
type PeerMetrics struct {
	// Addr is the peer's metrics label (URL without the scheme).
	Addr string
	// Snapshot is the peer's local registry snapshot; zero when Err is set.
	Snapshot obs.Snapshot
	// Err describes why the scrape failed ("" on success).
	Err string
}

// ScrapePeerMetrics fetches every peer's local GET /v1/metrics snapshot
// concurrently, each under the per-call timeout. Breakers are deliberately
// bypassed and outcomes do not feed the failure detector: a rollup is a
// read-only observation, and an operator asking "what does the fleet look
// like" wants the freshest possible answer about sick peers too.
// Unreachable peers come back with Err set, so the caller can report
// partial coverage instead of failing the rollup.
func (c *Client) ScrapePeerMetrics(ctx context.Context) []PeerMetrics {
	out := make([]PeerMetrics, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			out[i] = c.scrapeOne(ctx, p)
		}(i, p)
	}
	wg.Wait()
	return out
}

// scrapeOne fetches one peer's local metrics snapshot.
func (c *Client) scrapeOne(ctx context.Context, p *peer) PeerMetrics {
	pm := PeerMetrics{Addr: p.label}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/v1/metrics", nil)
	if err != nil {
		pm.Err = err.Error()
		return pm
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		pm.Err = err.Error()
		return pm
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		pm.Err = resp.Status
		return pm
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxFetchBytes)).Decode(&pm.Snapshot); err != nil {
		pm.Err = err.Error()
		return pm
	}
	return pm
}
