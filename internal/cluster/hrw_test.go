package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRankDeterministicAndPermutationInvariant(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	key := "58ed09aabbccdd"
	want := Rank(nodes, key)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		got := Rank(shuffled, key)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("permutation %d changed ranking: got %v want %v", i, got, want)
			}
		}
	}
}

// TestRankStableUnderNodeRemoval pins the rendezvous property: removing a
// node only reassigns the keys it owned; every other key keeps its owner.
func TestRankStableUnderNodeRemoval(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	removed := nodes[2]
	var survivors []string
	for _, n := range nodes {
		if n != removed {
			survivors = append(survivors, n)
		}
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%04d", i)
		before := Rank(nodes, key)[0]
		after := Rank(survivors, key)[0]
		if before != removed && before != after {
			t.Fatalf("key %s moved from %s to %s though %s was removed", key, before, after, removed)
		}
	}
}

// TestRankSpreadsKeys: rendezvous hashing should give every node a
// non-trivial share of the keyspace (no node starved, no node hogging).
func TestRankSpreadsKeys(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[Rank(nodes, fmt.Sprintf("key-%05d", i))[0]]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys, outside [15%%, 55%%] (counts %v)", n, share*100, counts)
		}
	}
}
