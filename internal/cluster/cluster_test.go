package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ckptio"
)

// Fake peer modes.
const (
	modeOK      = iota // serve the enveloped payload
	modeMissing        // 404
	modeCorrupt        // serve the envelope with flipped payload bytes
	modeHang           // accept, then block until the request dies
	mode500            // internal error
)

// fakePeer is a controllable ccserved stand-in: it serves the internal
// cache endpoint and /healthz, with a switchable failure mode.
type fakePeer struct {
	ts      *httptest.Server
	mode    atomic.Int32
	healthy atomic.Bool
	// failFirst > 0 makes that many cache requests fail with 500 before
	// the configured mode applies (transient-failure simulation).
	failFirst atomic.Int32
	payload   []byte
	requests  atomic.Int32
}

func newFakePeer(t *testing.T, payload []byte) *fakePeer {
	t.Helper()
	p := &fakePeer{payload: payload}
	p.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if !p.healthy.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET "+CachePathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		p.requests.Add(1)
		if p.failFirst.Load() > 0 {
			p.failFirst.Add(-1)
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		switch p.mode.Load() {
		case modeOK:
			w.Write(ckptio.Encode(p.payload))
		case modeMissing:
			http.NotFound(w, r)
		case modeCorrupt:
			env := ckptio.Encode(p.payload)
			env[len(env)-1] ^= 0xff // flip a payload byte; CRC must catch it
			w.Write(env)
		case modeHang:
			<-r.Context().Done()
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	})
	p.ts = httptest.NewServer(mux)
	t.Cleanup(p.ts.Close)
	return p
}

// testKey returns a plausible 64-hex content address varying with i.
func testKey(i int) string {
	return fmt.Sprintf("%064x", 0xdeadbeef00+i)
}

// keyOwnedBy searches for a key whose HRW owner is the given peer URL.
func keyOwnedBy(t *testing.T, owner string, urls []string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		k := testKey(i)
		if Rank(urls, k)[0] == owner {
			return k
		}
	}
	t.Fatal("no key found owned by " + owner)
	return ""
}

func newTestClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewFiltersSelfAndDuplicates(t *testing.T) {
	c := newTestClient(t, Config{
		Self: "http://me:1",
		Peers: []string{
			"http://me:1/", "http://a:1", "a:1", " http://b:2 ", "", "http://b:2",
		},
	})
	if c.NumPeers() != 2 {
		t.Fatalf("NumPeers = %d, want 2 (self and duplicates dropped)", c.NumPeers())
	}
}

func TestFetchHitServesValidatedBytes(t *testing.T) {
	payload := []byte(`{"verdict":"clean"}` + "\n")
	peer := newFakePeer(t, payload)
	c := newTestClient(t, Config{Peers: []string{peer.ts.URL}})

	got, ok := c.Fetch(context.Background(), testKey(1))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Fetch: ok %t payload %q, want the peer's bytes", ok, got)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 0 || s.Errors != 0 {
		t.Errorf("stats = %+v, want exactly one hit", s)
	}
}

func TestFetchMissWhenNoPeerHoldsKey(t *testing.T) {
	peer := newFakePeer(t, nil)
	peer.mode.Store(modeMissing)
	c := newTestClient(t, Config{Peers: []string{peer.ts.URL}, Retries: -1})

	if _, ok := c.Fetch(context.Background(), testKey(1)); ok {
		t.Fatal("Fetch reported a hit from a 404-ing peer")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Errors != 0 {
		t.Errorf("stats = %+v, want a clean miss", s)
	}
	// A 404 is an answer, not a failure: the peer must stay healthy.
	if st := s.Peers[0]; st.Health != "healthy" || st.Breaker != "closed" {
		t.Errorf("peer after 404: %+v, want healthy/closed", st)
	}
}

// TestFetchCorruptResponseIsMissNeverWrong is the integrity contract: a
// peer serving bit-flipped bytes yields a miss and a failure mark — the
// corrupt payload must never escape Fetch.
func TestFetchCorruptResponseIsMissNeverWrong(t *testing.T) {
	peer := newFakePeer(t, []byte(`{"verdict":"clean"}`))
	peer.mode.Store(modeCorrupt)
	c := newTestClient(t, Config{Peers: []string{peer.ts.URL}, Retries: -1})

	payload, ok := c.Fetch(context.Background(), testKey(1))
	if ok || payload != nil {
		t.Fatalf("Fetch returned ok=%t payload=%q from a corrupt peer", ok, payload)
	}
	s := c.Stats()
	if s.Corrupt == 0 || s.Errors == 0 {
		t.Errorf("stats = %+v, want corrupt and error counts", s)
	}
	if st := s.Peers[0]; st.Health == "healthy" {
		t.Errorf("peer serving garbage still healthy: %+v", st)
	}
}

// TestFetchUnenvelopedResponseRejected: raw JSON without the checksummed
// envelope carries no CRC and must be refused, even though it would parse.
func TestFetchUnenvelopedResponseRejected(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+CachePathPrefix+"{key}", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"verdict":"clean"}`)) // looks fine, not verifiable
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := newTestClient(t, Config{Peers: []string{ts.URL}, Retries: -1})

	if _, ok := c.Fetch(context.Background(), testKey(1)); ok {
		t.Fatal("Fetch accepted an unenveloped (CRC-less) response")
	}
	if s := c.Stats(); s.Corrupt == 0 {
		t.Errorf("stats = %+v, want the response counted corrupt", s)
	}
}

// TestFetchHedgesPastWedgedOwner: the key's owner accepts and hangs; the
// hedge fires at the deadline, the replica answers, and the total latency
// is far below the per-call timeout the wedged owner would have burned.
func TestFetchHedgesPastWedgedOwner(t *testing.T) {
	payload := []byte(`{"verdict":"clean"}` + "\n")
	a, b := newFakePeer(t, payload), newFakePeer(t, payload)
	urls := []string{a.ts.URL, b.ts.URL}
	key := keyOwnedBy(t, a.ts.URL, urls)
	a.mode.Store(modeHang)

	c := newTestClient(t, Config{
		Peers:       urls,
		HedgeDelay:  20 * time.Millisecond,
		CallTimeout: 2 * time.Second,
	})
	began := time.Now()
	got, ok := c.Fetch(context.Background(), key)
	elapsed := time.Since(began)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("hedged fetch: ok %t payload %q", ok, got)
	}
	if elapsed > time.Second {
		t.Errorf("hedged fetch took %v; the wedged owner's timeout leaked into the caller", elapsed)
	}
	if s := c.Stats(); s.Hedges == 0 {
		t.Errorf("stats = %+v, want a recorded hedge", s)
	}
}

// TestFetchLatencyBoundedByWedgedCluster: every peer wedges; the fetch
// must miss within CallTimeout + slack, not FetchTimeout, and never hang.
func TestFetchLatencyBoundedByWedgedCluster(t *testing.T) {
	a, b := newFakePeer(t, nil), newFakePeer(t, nil)
	a.mode.Store(modeHang)
	b.mode.Store(modeHang)
	c := newTestClient(t, Config{
		Peers:        []string{a.ts.URL, b.ts.URL},
		CallTimeout:  150 * time.Millisecond,
		FetchTimeout: 5 * time.Second,
		HedgeDelay:   10 * time.Millisecond,
		Retries:      -1,
	})
	began := time.Now()
	if _, ok := c.Fetch(context.Background(), testKey(3)); ok {
		t.Fatal("fetch against an all-wedged cluster reported a hit")
	}
	if elapsed := time.Since(began); elapsed > time.Second {
		t.Errorf("all-wedged fetch took %v, want ≈ the 150ms per-call timeout", elapsed)
	}
}

// TestFetchRetriesRecoverTransientFailure: the only peer 500s once; the
// bounded retry round succeeds.
func TestFetchRetriesRecoverTransientFailure(t *testing.T) {
	payload := []byte(`{"verdict":"clean"}` + "\n")
	peer := newFakePeer(t, payload)
	peer.failFirst.Store(1)
	c := newTestClient(t, Config{
		Peers:       []string{peer.ts.URL},
		Retries:     1,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	got, ok := c.Fetch(context.Background(), testKey(4))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("retry fetch: ok %t payload %q", ok, got)
	}
	if peer.requests.Load() != 2 {
		t.Errorf("peer saw %d requests, want 2 (failure + retried success)", peer.requests.Load())
	}
}

// TestBreakerShortCircuitsDeadCluster: once consecutive failures open
// every breaker, Fetch degrades immediately instead of re-paying dial
// timeouts on every request.
func TestBreakerShortCircuitsDeadCluster(t *testing.T) {
	dead := newFakePeer(t, nil)
	dead.ts.Close() // connection refused from here on
	c := newTestClient(t, Config{
		Peers:           []string{dead.ts.URL},
		Retries:         -1,
		BreakerFailures: 2,
		BreakerCooldown: time.Hour,
	})
	for i := 0; i < 2; i++ {
		c.Fetch(context.Background(), testKey(i))
	}
	s := c.Stats()
	if st := s.Peers[0]; st.Breaker != "open" {
		t.Fatalf("breaker %s after repeated connection failures, want open", st.Breaker)
	}
	began := time.Now()
	if _, ok := c.Fetch(context.Background(), testKey(99)); ok {
		t.Fatal("hit from a dead cluster")
	}
	if elapsed := time.Since(began); elapsed > 50*time.Millisecond {
		t.Errorf("open-breaker fetch took %v, want instant degradation", elapsed)
	}
	if c.Stats().Degraded == 0 {
		t.Error("degraded counter not incremented on breaker short-circuit")
	}
}

// TestProbeDetectsFailureAndHealsRecovery drives the full failure-detector
// loop: a sick peer is marked down and its breaker opens from probes
// alone; recovery is then discovered by a probe and the peer heals.
func TestProbeDetectsFailureAndHealsRecovery(t *testing.T) {
	peer := newFakePeer(t, nil)
	peer.healthy.Store(false)
	c := newTestClient(t, Config{
		Peers:           []string{peer.ts.URL},
		ProbeInterval:   5 * time.Millisecond,
		BreakerFailures: 2,
		DownAfter:       2,
		BreakerCooldown: time.Hour, // only a probe can heal within the test
	})
	c.Start()

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats().Peers[0]
		if st.Health == "down" && st.Breaker == "open" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never marked the sick peer down: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	peer.healthy.Store(true)
	for {
		st := c.Stats().Peers[0]
		if st.Health == "healthy" && st.Breaker == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never healed the recovered peer: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestValidateKey(t *testing.T) {
	good := strings.Repeat("a1", 32)
	if err := ValidateKey(good); err != nil {
		t.Errorf("ValidateKey(%q) = %v", good, err)
	}
	bad := []string{
		"",
		"short",
		strings.Repeat("a", 63),
		strings.Repeat("a", 65),
		strings.Repeat("A", 64),          // uppercase is not canonical
		strings.Repeat("a", 62) + "..",   // traversal bytes
		strings.Repeat("a", 60) + "/etc", // separator
		strings.Repeat("a", 63) + "g",    // non-hex
	}
	for _, k := range bad {
		if err := ValidateKey(k); err == nil {
			t.Errorf("ValidateKey(%q) accepted a bad key", k)
		}
	}
}
