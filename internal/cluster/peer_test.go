package cluster

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// testPeer builds a peer with tight, explicit thresholds.
func testPeer(t *testing.T) *peer {
	t.Helper()
	cfg := Config{
		SuspectAfter:    1,
		DownAfter:       3,
		BreakerFailures: 3,
		BreakerCooldown: 10 * time.Second,
	}.withDefaults()
	return newPeer("http://p:1", cfg, obs.NewRegistry())
}

func TestHealthMachineWalksDownAndHealsInstantly(t *testing.T) {
	p := testPeer(t)
	now := time.Unix(1000, 0)
	if got := p.status(); got.Health != "healthy" {
		t.Fatalf("born %s, want healthy", got.Health)
	}
	p.failure(now)
	if got := p.status(); got.Health != "suspect" {
		t.Fatalf("after 1 failure: %s, want suspect", got.Health)
	}
	p.failure(now)
	p.failure(now)
	if got := p.status(); got.Health != "down" {
		t.Fatalf("after 3 failures: %s, want down", got.Health)
	}
	p.success()
	if got := p.status(); got.Health != "healthy" || got.ConsecutiveFailures != 0 {
		t.Fatalf("after success: %+v, want healthy with streak reset", got)
	}
}

func TestBreakerOpensHalfOpensAndCloses(t *testing.T) {
	p := testPeer(t)
	now := time.Unix(1000, 0)

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if !p.allow(now) {
			t.Fatalf("closed breaker denied request %d", i)
		}
		p.failure(now)
	}
	if got := p.status(); got.Breaker != "open" {
		t.Fatalf("breaker %s after %d failures, want open", got.Breaker, 3)
	}
	if p.allow(now.Add(time.Second)) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Past the cooldown it half-opens and admits exactly one trial.
	later := now.Add(11 * time.Second)
	if !p.allow(later) {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	if got := p.status(); got.Breaker != "half-open" {
		t.Fatalf("breaker %s, want half-open", got.Breaker)
	}
	if p.allow(later) {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// A successful trial closes it.
	p.success()
	if got := p.status(); got.Breaker != "closed" || got.Health != "healthy" {
		t.Fatalf("after trial success: %+v, want closed/healthy", got)
	}
	if !p.allow(later) {
		t.Fatal("closed breaker denied a request")
	}
}

func TestBreakerReopensOnFailedTrial(t *testing.T) {
	p := testPeer(t)
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		p.failure(now)
	}
	later := now.Add(11 * time.Second)
	if !p.allow(later) {
		t.Fatal("no half-open trial")
	}
	p.failure(later)
	if got := p.status(); got.Breaker != "open" {
		t.Fatalf("breaker %s after failed trial, want open", got.Breaker)
	}
	// The fresh cooldown counts from the failed trial, not the first trip.
	if p.allow(later.Add(9 * time.Second)) {
		t.Fatal("re-opened breaker admitted a request before a full new cooldown")
	}
	if !p.allow(later.Add(11 * time.Second)) {
		t.Fatal("re-opened breaker never half-opened again")
	}
}

func TestLatencyTrackerQuantile(t *testing.T) {
	tr := &latencyTracker{}
	if _, ok := tr.quantile(0.9); ok {
		t.Fatal("quantile with no samples reported ok")
	}
	for i := 1; i <= 10; i++ {
		tr.observe(time.Duration(i) * time.Millisecond)
	}
	p90, ok := tr.quantile(0.9)
	if !ok {
		t.Fatal("quantile with 10 samples not ok")
	}
	if p90 < 8*time.Millisecond || p90 > 10*time.Millisecond {
		t.Errorf("p90 of 1..10ms = %v, want in [8ms, 10ms]", p90)
	}
	// The window slides: flooding with large samples moves the quantile up.
	for i := 0; i < latencyRing; i++ {
		tr.observe(time.Second)
	}
	if p90, _ := tr.quantile(0.9); p90 != time.Second {
		t.Errorf("p90 after window turnover = %v, want 1s", p90)
	}
}
