package cluster

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/ckptio"
	"repro/internal/obs"
	"repro/internal/runctl"
)

// CachePathPrefix is the internal peer cache-fill endpoint: GET
// <peer><CachePathPrefix><key> returns the peer's locally cached report
// bytes for a content-address key, wrapped in ckptio's checksummed
// envelope, or 404 when the peer does not hold them. The endpoint never
// computes — it only reads the peer's local cache tiers.
const CachePathPrefix = "/v1/cache/"

// maxFetchBytes bounds a peer response body; reports are small, and a
// peer streaming garbage must cost bounded memory.
const maxFetchBytes = 32 << 20

// defaultHedgeDelay is the hedge deadline used until the latency tracker
// has enough samples for an adaptive percentile.
const defaultHedgeDelay = 50 * time.Millisecond

// Config tunes a cluster Client. The zero value (plus Peers) is fully
// usable; every knob has a production-shaped default.
type Config struct {
	// Self is this node's own advertised base URL; it is filtered out of
	// Peers, so every node of a cluster can share one identical peer list.
	Self string
	// Peers are the other nodes' base URLs (for example
	// "http://10.0.0.2:8344"; a bare host:port gets "http://"). May
	// include Self. An empty remote set is legal: every Fetch degrades to
	// a miss and the node behaves as a single-node ccserved.
	Peers []string
	// Replicas is how many top-ranked owners a lookup consults (default
	// 2, clamped to the peer count).
	Replicas int
	// FetchTimeout is the strict wall-clock budget for one whole Fetch,
	// across all hedges and retries (default 2s).
	FetchTimeout time.Duration
	// CallTimeout is the per-HTTP-attempt deadline — the wedge detector:
	// a peer that accepts and hangs costs at most this (default 500ms).
	CallTimeout time.Duration
	// ComputeTimeout is the wall-clock budget for one whole Compute —
	// forwarding a verification job to a peer and waiting for the verdict
	// (default 120s). Compute runs real engine work on the peer, so the
	// 500ms wedge detector cannot apply; a wedged compute peer costs at
	// most this, and the batch layer's straggler hedge usually far less.
	ComputeTimeout time.Duration
	// HedgeDelay, when > 0, is the fixed deadline after which a lookup is
	// hedged to the next owner. 0 (the default) hedges adaptively at the
	// p90 of recent successful fetch latencies.
	HedgeDelay time.Duration
	// Retries is the number of extra lookup rounds after the first
	// (default 1; negative disables retries).
	Retries int
	// BackoffBase / BackoffMax shape the jittered exponential delay
	// between retry rounds via runctl.Backoff (defaults 25ms / 250ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter is the backoff's ± fraction (default 0.2).
	Jitter float64
	// Seed makes the retry jitter deterministic for tests.
	Seed int64
	// SuspectAfter / DownAfter are the consecutive-failure thresholds of
	// the health state machine (defaults 1 / 3).
	SuspectAfter int
	DownAfter    int
	// BreakerFailures opens a peer's circuit breaker after that many
	// consecutive failures (default 3); BreakerCooldown is how long it
	// stays open before half-opening for a trial (default 5s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// ProbeInterval is the background /healthz prober cadence started by
	// Start (default 2s).
	ProbeInterval time.Duration
	// Metrics receives the cluster's counters, gauges and the
	// peer_fetch_latency_seconds histogram. Pass the serving node's
	// registry so GET /v1/metrics surfaces them; nil creates a private
	// registry.
	Metrics *obs.Registry
	// Transport overrides the HTTP transport (tests). nil uses a private
	// keep-alive transport.
	Transport http.RoundTripper
}

// withDefaults fills the zero-value fields.
func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 2 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 500 * time.Millisecond
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = 120 * time.Second
	}
	switch {
	case c.Retries == 0:
		c.Retries = 1
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		c.Jitter = 0.2
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	return c
}

// normalizeURL gives a peer address a scheme and strips the trailing
// slash, so list entries compare and concatenate predictably.
func normalizeURL(u string) string {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// clusterStats are the aggregate fill counters, resolved once.
type clusterStats struct {
	hits     *obs.Counter // peer_fill_hits_total
	misses   *obs.Counter // peer_fill_misses_total
	errors   *obs.Counter // peer_fill_errors_total
	corrupt  *obs.Counter // peer_fill_corrupt_total
	hedges   *obs.Counter // peer_fill_hedges_total
	degraded *obs.Counter // peer_fill_degraded_total
	latency  *obs.Histogram
}

// Client is one node's view of the cluster: the remote peer set with
// failure detectors, and the Fetch protocol over it. Create with New,
// start the background prober with Start, stop it with Close.
type Client struct {
	cfg   Config
	self  string // normalized Self address; "" when the node has no identity
	peers []*peer
	httpc *http.Client
	reg   *obs.Registry
	stats clusterStats
	comp  computeStats
	lat   *latencyTracker

	rngMu sync.Mutex
	rng   *rand.Rand

	// now is the breaker clock; tests freeze it.
	now func() time.Time

	stopOnce sync.Once
	stop     chan struct{}
	probing  sync.WaitGroup
}

// New builds a Client over cfg.Peers minus cfg.Self. Duplicate and empty
// entries are dropped.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	self := normalizeURL(cfg.Self)
	seen := map[string]bool{}
	var peers []*peer
	for _, raw := range cfg.Peers {
		u := normalizeURL(raw)
		if u == "" || u == self || seen[u] {
			continue
		}
		seen[u] = true
		peers = append(peers, newPeer(u, cfg, reg))
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{MaxIdleConnsPerHost: 4}
	}
	return &Client{
		cfg:   cfg,
		self:  self,
		peers: peers,
		httpc: &http.Client{Transport: transport},
		reg:   reg,
		comp:  newComputeStats(reg),
		stats: clusterStats{
			hits:     reg.Counter("peer_fill_hits_total"),
			misses:   reg.Counter("peer_fill_misses_total"),
			errors:   reg.Counter("peer_fill_errors_total"),
			corrupt:  reg.Counter("peer_fill_corrupt_total"),
			hedges:   reg.Counter("peer_fill_hedges_total"),
			degraded: reg.Counter("peer_fill_degraded_total"),
			latency:  reg.Histogram("peer_fetch_latency_seconds"),
		},
		lat:  &latencyTracker{},
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		now:  time.Now,
		stop: make(chan struct{}),
	}, nil
}

// NumPeers reports the remote peer count after self-filtering.
func (c *Client) NumPeers() int { return len(c.peers) }

// Metrics exposes the registry the client records into.
func (c *Client) Metrics() *obs.Registry { return c.reg }

// Start launches the background health prober. Idempotent restarts are
// not supported; call it once, and Close to stop.
func (c *Client) Start() {
	if len(c.peers) == 0 || c.cfg.ProbeInterval <= 0 {
		return
	}
	c.probing.Add(1)
	go c.probeLoop()
}

// Close stops the prober and releases idle connections. Safe to call more
// than once and without Start.
func (c *Client) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probing.Wait()
	c.httpc.CloseIdleConnections()
}

// probeLoop drives the failure detector between requests: every
// ProbeInterval each peer's /healthz is probed under CallTimeout, and the
// outcome feeds the same health machine as request traffic. This is what
// half-opens stuck breakers and heals recovered peers even on an idle
// node.
func (c *Client) probeLoop() {
	defer c.probing.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			for _, p := range c.peers {
				c.probe(p)
			}
		}
	}
}

// probe checks one peer's liveness. A probe bypasses the breaker — it is
// the mechanism that discovers recovery — and a 200 fully heals the peer.
func (c *Client) probe(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.CallTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		p.failure(c.now())
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		p.success()
	} else {
		// A live-but-refusing peer (draining 503) is as unusable as a
		// dead one for cache fills.
		p.failure(c.now())
	}
}

// hedgeDelay is the deadline after which a round consults the next owner:
// the fixed Config.HedgeDelay when set, otherwise the p90 of recent
// successful fetches, clamped to [1ms, CallTimeout].
func (c *Client) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	d, ok := c.lat.quantile(0.9)
	if !ok {
		return defaultHedgeDelay
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > c.cfg.CallTimeout {
		d = c.cfg.CallTimeout
	}
	return d
}

// backoff computes the jittered delay before retry round attempt.
func (c *Client) backoff(attempt int) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return runctl.Backoff{
		Base:   c.cfg.BackoffBase,
		Factor: 2,
		Max:    c.cfg.BackoffMax,
		Jitter: c.cfg.Jitter,
		Rand:   c.rng,
	}.Delay(attempt)
}

// owners returns the key's top-ranked peers whose breakers currently
// admit a request, at most Replicas of them.
func (c *Client) owners(key string) []*peer {
	now := c.now()
	var out []*peer
	for _, p := range rankPeers(c.peers, key) {
		if !p.allow(now) {
			continue
		}
		out = append(out, p)
		if len(out) == c.cfg.Replicas {
			break
		}
	}
	return out
}

// Fetch asks the key's owners for the canonical cached report bytes and
// returns them CRC-validated, or ok=false for a miss. It NEVER returns
// unvalidated bytes and NEVER blocks past FetchTimeout: every failure
// mode — no usable peer, timeouts, corrupt responses, a wedged or dead
// peer — degrades to a miss the caller answers with local compute.
func (c *Client) Fetch(ctx context.Context, key string) ([]byte, bool) {
	if len(c.peers) == 0 {
		c.stats.degraded.Add(1)
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	began := time.Now()
	for attempt := 0; ; attempt++ {
		owners := c.owners(key)
		if len(owners) == 0 {
			// Every candidate breaker is open: the cluster is (from this
			// node's view) gone; fall back to local compute immediately.
			c.stats.degraded.Add(1)
			return nil, false
		}
		if payload, ok := c.round(ctx, key, owners); ok {
			d := time.Since(began)
			c.stats.hits.Add(1)
			c.stats.latency.Observe(d.Seconds())
			c.lat.observe(d)
			return payload, true
		}
		if attempt >= c.cfg.Retries || ctx.Err() != nil {
			break
		}
		select {
		case <-time.After(c.backoff(attempt + 1)):
		case <-ctx.Done():
		}
	}
	c.stats.misses.Add(1)
	return nil, false
}

// round runs one hedged lookup across owners: the top owner first, the
// next after the hedge deadline (or immediately when the previous attempt
// fails fast), first validated success wins and cancels the rest.
func (c *Client) round(ctx context.Context, key string, owners []*peer) ([]byte, bool) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		payload []byte
		ok      bool
	}
	results := make(chan result, len(owners))
	launch := func(p *peer) {
		go func() {
			payload, ok := c.attempt(rctx, p, key)
			results <- result{payload, ok}
		}()
	}
	launch(owners[0])
	outstanding, next := 1, 1

	hedge := time.NewTimer(c.hedgeDelay())
	defer hedge.Stop()

	for outstanding > 0 {
		select {
		case r := <-results:
			outstanding--
			if r.ok {
				return r.payload, true
			}
			// A fast failure frees the slot: consult the next owner
			// without waiting for the hedge deadline.
			if next < len(owners) {
				launch(owners[next])
				next++
				outstanding++
			}
		case <-hedge.C:
			if next < len(owners) {
				c.stats.hedges.Add(1)
				launch(owners[next])
				next++
				outstanding++
			}
		case <-rctx.Done():
			return nil, false
		}
	}
	return nil, false
}

// attempt performs one GET /v1/cache/{key} against one peer under the
// strict per-call timeout, validates the envelope CRC, and feeds the
// outcome to the peer's failure detector. 404 is a clean miss (the peer
// answered; it just doesn't hold the key); everything else — transport
// errors, timeouts, bad statuses, corrupt envelopes — is a peer failure.
func (c *Client) attempt(ctx context.Context, p *peer, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	p.requests.Add(1)

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+CachePathPrefix+key, nil)
	if err != nil {
		p.failure(c.now())
		c.stats.errors.Add(1)
		return nil, false
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		p.failure(c.now())
		c.stats.errors.Add(1)
		return nil, false
	}
	defer resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		// Validated below.
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		p.success()
		return nil, false
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		p.failure(c.now())
		c.stats.errors.Add(1)
		return nil, false
	}

	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFetchBytes+1))
	if err != nil || len(body) > maxFetchBytes {
		p.failure(c.now())
		c.stats.errors.Add(1)
		return nil, false
	}
	// The wire format is ckptio's checksummed envelope, and a bare legacy
	// payload is NOT accepted here: without the envelope there is no CRC,
	// and an unverifiable peer response must be a miss, never an answer.
	payload, legacy, err := ckptio.Decode(p.url+CachePathPrefix+key, body)
	if err != nil || legacy {
		p.failure(c.now())
		c.stats.corrupt.Add(1)
		c.stats.errors.Add(1)
		return nil, false
	}
	p.success()
	p.hits.Add(1)
	return payload, true
}

// Stats is the cluster's statsz document.
type Stats struct {
	Peers    []PeerStatus `json:"peers"`
	Hits     int64        `json:"peer_fill_hits"`
	Misses   int64        `json:"peer_fill_misses"`
	Errors   int64        `json:"peer_fill_errors"`
	Corrupt  int64        `json:"peer_fill_corrupt"`
	Hedges   int64        `json:"peer_fill_hedges"`
	Degraded int64        `json:"peer_fill_degraded"`
	// Forwarded-compute counters: attempts made, validated verdicts
	// received, clean admission rejections (peer busy or draining), and
	// hard failures (transport, status, corrupt envelope).
	ComputeAttempts int64 `json:"compute_forward_attempts"`
	ComputeHits     int64 `json:"compute_forward_hits"`
	ComputeRejected int64 `json:"compute_forward_rejected"`
	ComputeErrors   int64 `json:"compute_forward_errors"`
}

// Stats snapshots the peer states and aggregate counters.
func (c *Client) Stats() Stats {
	s := Stats{
		Hits:            c.stats.hits.Value(),
		Misses:          c.stats.misses.Value(),
		Errors:          c.stats.errors.Value(),
		Corrupt:         c.stats.corrupt.Value(),
		Hedges:          c.stats.hedges.Value(),
		Degraded:        c.stats.degraded.Value(),
		ComputeAttempts: c.comp.attempts.Value(),
		ComputeHits:     c.comp.hits.Value(),
		ComputeRejected: c.comp.rejected.Value(),
		ComputeErrors:   c.comp.errors.Value(),
	}
	for _, p := range c.peers {
		s.Peers = append(s.Peers, p.status())
	}
	return s
}

// ValidateKey reports whether key is a plausible content address: 64
// lowercase hex characters. The serve layer uses it to reject foreign
// path components before a client-supplied key touches the disk tier.
func ValidateKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("cluster: cache key must be 64 hex characters, got %d", len(key))
	}
	for i := 0; i < len(key); i++ {
		ch := key[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return fmt.Errorf("cluster: cache key has non-hex byte %q at %d", ch, i)
		}
	}
	return nil
}
